#!/usr/bin/env bash
# lint: every module belonging to a (library ...) stanza under lib/ or
# devtools/ must ship an explicit .mli interface. Modules that are
# co-located executables (listed as an (executable (name ...)) in the same
# dune file, e.g. devtools/bench_diff/bench_diff.ml) are exempt.
set -u
fail=0
for dunef in $(find lib devtools -name dune | sort); do
  dir=$(dirname "$dunef")
  grep -q '(library' "$dunef" || continue
  exes=$(tr '\n' ' ' <"$dunef" |
    grep -oE '\(executable[^)]*\(name +[a-z0-9_]+' |
    grep -oE '[a-z0-9_]+$')
  for ml in "$dir"/*.ml; do
    [ -e "$ml" ] || continue
    base=$(basename "$ml" .ml)
    skip=0
    for e in $exes; do
      [ "$base" = "$e" ] && skip=1
    done
    [ "$skip" -eq 1 ] && continue
    if [ ! -f "$dir/$base.mli" ]; then
      echo "lint: $dir/$base.ml has no interface ($dir/$base.mli missing)" >&2
      fail=1
    fi
  done
done
exit $fail
