module Sha256 = Alpenhorn_crypto.Sha256
module Util = Alpenhorn_crypto.Util

type t = { bits : Bytes.t; nbits : int; k : int; mutable n : int }

let target_fp_rate = 1e-10

(* At the optimal point, bits/element = -log2(fp)/ln 2 ≈ 47.9 -> 48, and
   k = bits/element * ln 2 ≈ 33. *)
let bits_per_element = 48
let optimal_hashes = 33

let create ~expected_elements =
  let n = Stdlib.max 1 expected_elements in
  let nbits = n * bits_per_element in
  { bits = Bytes.make ((nbits + 7) / 8) '\000'; nbits; k = optimal_hashes; n = 0 }

let create_custom ~bits ~hashes =
  if bits <= 0 || hashes <= 0 then invalid_arg "Bloom.create_custom";
  { bits = Bytes.make ((bits + 7) / 8) '\000'; nbits = bits; k = hashes; n = 0 }

(* Derive k indices via double hashing over two independent 64-bit values
   (Kirsch-Mitzenmacher), which preserves the asymptotic FP rate. *)
let indices_of_digest t d =
  let h1 = Util.read_be64 d 0 land max_int and h2 = Util.read_be64 d 8 land max_int in
  let h2 = if h2 mod t.nbits = 0 then h2 + 1 else h2 in
  Array.init t.k (fun i -> abs (h1 + (i * h2)) mod t.nbits)

let indices t elem = indices_of_digest t (Sha256.digest ("bloom" ^ elem))

(* Same digest as [indices], streamed over a slice of a flat buffer: the
   sharded distribution paths add millions of tokens straight out of one
   preallocated [Bytes.t] without a substring per token. *)
let indices_sub t buf ~pos ~len =
  let c = Sha256.init () in
  Sha256.update c "bloom";
  Sha256.update_bytes c buf pos len;
  indices_of_digest t (Sha256.finalize c)

let set_bit b i = Bytes.set b (i / 8) (Char.chr (Char.code (Bytes.get b (i / 8)) lor (1 lsl (i mod 8))))
let get_bit b i = (Char.code (Bytes.get b (i / 8)) lsr (i mod 8)) land 1 = 1

let add t elem =
  Array.iter (set_bit t.bits) (indices t elem);
  t.n <- t.n + 1

let mem t elem = Array.for_all (get_bit t.bits) (indices t elem)

let add_sub t buf ~pos ~len =
  Array.iter (set_bit t.bits) (indices_sub t buf ~pos ~len);
  t.n <- t.n + 1

let mem_sub t buf ~pos ~len = Array.for_all (get_bit t.bits) (indices_sub t buf ~pos ~len)

let fill_ratio t =
  let set = ref 0 in
  Bytes.iter
    (fun c ->
      let x = Char.code c in
      (* popcount of one byte *)
      let x = x - ((x lsr 1) land 0x55) in
      let x = (x land 0x33) + ((x lsr 2) land 0x33) in
      set := !set + ((x + (x lsr 4)) land 0x0f))
    t.bits;
  float_of_int !set /. float_of_int t.nbits

let size_bits t = t.nbits
let size_bytes t = Bytes.length t.bits + 12 (* header included, matching to_bytes *)
let num_hashes t = t.k
let count t = t.n

let to_bytes t = Util.be32 t.nbits ^ Util.be32 t.k ^ Util.be32 t.n ^ Bytes.to_string t.bits

let of_bytes s =
  if String.length s < 12 then None
  else begin
    let nbits = Util.read_be32 s 0 and k = Util.read_be32 s 4 and n = Util.read_be32 s 8 in
    if nbits <= 0 || k <= 0 || String.length s <> 12 + ((nbits + 7) / 8) then None
    else Some { bits = Bytes.of_string (String.sub s 12 (String.length s - 12)); nbits; k; n }
  end

let false_positive_estimate t =
  let frac = 1.0 -. exp (-.float_of_int (t.k * t.n) /. float_of_int t.nbits) in
  frac ** float_of_int t.k
