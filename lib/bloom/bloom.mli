(** Bloom filter encoding of dialing mailboxes (paper §5.2).

    The last mixnet server packs each dialing mailbox's 32-byte dial tokens
    into a Bloom filter so clients download ~48 bits per token instead of
    256. Parameters follow the paper: target false-positive rate 1e-10,
    which at the optimal operating point costs ~48 bits and ~33 hash
    functions per element. No false negatives: a call is never missed.

    Index derivation is deterministic from the element bytes (SHA-256
    expanded), so the server that builds the filter and the client that
    queries it need no shared state beyond the filter itself. *)

type t

val target_fp_rate : float
(** 1e-10, the paper's setting. *)

val bits_per_element : int
(** 48, the paper's setting. *)

val create : expected_elements:int -> t
(** Filter sized for [expected_elements] at the paper's operating point.
    At least one element is always provisioned. *)

val create_custom : bits:int -> hashes:int -> t
(** Explicit geometry, for ablations. *)

val add : t -> string -> unit
val mem : t -> string -> bool

val add_sub : t -> bytes -> pos:int -> len:int -> unit
(** [add] of the slice [buf[pos, pos+len)], hashed by streaming — no
    substring allocation. Byte-compatible with [add (Bytes.sub_string buf
    pos len)]; the flat-buffer sharded distribution path at 1M+ tokens. *)

val mem_sub : t -> bytes -> pos:int -> len:int -> bool
(** Slice variant of [mem]; see {!add_sub}. *)

val fill_ratio : t -> float
(** Fraction of bits set — the direct load measurement behind
    {!false_positive_estimate} ([fill_ratio^k] is the empirical FP rate). *)

val size_bits : t -> int
val size_bytes : t -> int
val num_hashes : t -> int
val count : t -> int
(** Number of elements added. *)

val to_bytes : t -> string
(** Wire format: geometry header + bit array. *)

val of_bytes : string -> t option

val false_positive_estimate : t -> float
(** Expected FP rate at the current load. *)
