(** A miniature Vuvuzela-style conversation layer (paper §8.5).

    Alpenhorn is purely a bootstrapping protocol; the conversation happens
    in a system like Vuvuzela. This module is the integration target: a
    dead-drop message exchange keyed entirely by the session key that
    Alpenhorn's [Call] hands to the application — the ~200-line surface the
    paper describes for the Vuvuzela port.

    Per conversation round, each peer derives the same dead-drop id from
    the shared session key and deposits one fixed-size encrypted message;
    the (untrusted) server swaps the contents of matching dead drops. A
    peer with nothing to say deposits padding, so conversation traffic is
    constant-rate. *)

type server
(** The untrusted dead-drop exchange. *)

val create_server : unit -> server

type conversation
(** One endpoint's state: session key + round counter. *)

val start : session_key:string -> role:[ `Caller | `Callee ] -> conversation
(** Both sides call this with the same Alpenhorn session key; [role] breaks
    the tie of which deposit slot each side reads. *)

val message_size : int
(** Fixed plaintext capacity per round (240 bytes; longer messages must be
    split by the application). *)

val round : conversation -> int

val deposit : conversation -> server -> string option -> unit
(** Queue this round's message ([None] deposits padding).
    @raise Invalid_argument if the message exceeds {!message_size} or we
    already deposited this round. *)

val exchange : server -> unit
(** End the round on the server: swap matching dead drops. *)

val retrieve : conversation -> server -> string option option
(** Collect the peer's message for the round just exchanged and advance to
    the next round. [None]: nothing arrived (peer offline). [Some None]:
    peer deposited padding. [Some (Some m)]: a real message. *)
