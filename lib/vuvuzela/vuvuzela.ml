module Hmac = Alpenhorn_crypto.Hmac
module Aead = Alpenhorn_crypto.Aead
module Util = Alpenhorn_crypto.Util

let message_size = 240

type server = {
  (* dead-drop id -> slot deposits for the current round *)
  pending : (string, (int * string) list) Hashtbl.t;
  mutable delivered : (string, (int * string) list) Hashtbl.t;
}

let create_server () = { pending = Hashtbl.create 64; delivered = Hashtbl.create 64 }

type conversation = {
  session_key : string;
  slot : int; (* 0 = caller, 1 = callee *)
  mutable round_num : int;
  mutable deposited : bool;
}

let start ~session_key ~role =
  if String.length session_key <> 32 then invalid_arg "Vuvuzela.start: session key must be 32 bytes";
  { session_key; slot = (match role with `Caller -> 0 | `Callee -> 1); round_num = 0; deposited = false }

let round c = c.round_num

let dead_drop c = Hmac.hmac_sha256 ~key:c.session_key ("dead-drop" ^ Util.be32 c.round_num)

let msg_key c = Hmac.hmac_sha256 ~key:c.session_key ("msg-key" ^ Util.be32 c.round_num)

let nonce_of slot = String.make 11 '\000' ^ String.make 1 (Char.chr slot)

(* 1 length byte + payload padded to message_size, then AEAD *)
let encode_plain msg =
  let m = match msg with None -> "" | Some m -> m in
  if String.length m > message_size then invalid_arg "Vuvuzela.deposit: message too long";
  String.make 1 (Char.chr (String.length m land 0xff))
  ^ String.make 1 (Char.chr (String.length m lsr 8))
  ^ m
  ^ String.make (message_size - String.length m) '\000'

let decode_plain p =
  let n = Char.code p.[0] lor (Char.code p.[1] lsl 8) in
  if n = 0 then None else Some (String.sub p 2 n)

let deposit c server msg =
  if c.deposited then invalid_arg "Vuvuzela.deposit: already deposited this round";
  let boxed = Aead.seal ~key:(msg_key c) ~nonce:(nonce_of c.slot) (encode_plain msg) in
  let dd = dead_drop c in
  let existing = Option.value ~default:[] (Hashtbl.find_opt server.pending dd) in
  Hashtbl.replace server.pending dd ((c.slot, boxed) :: existing);
  c.deposited <- true

let exchange server =
  (* swap: each deposit becomes retrievable by the opposite slot *)
  let swapped = Hashtbl.create (Hashtbl.length server.pending) in
  Hashtbl.iter
    (fun dd deposits ->
      let flipped = List.map (fun (slot, boxed) -> (1 - slot, boxed)) deposits in
      Hashtbl.replace swapped dd flipped)
    server.pending;
  Hashtbl.reset server.pending;
  server.delivered <- swapped

let retrieve c server =
  let dd = dead_drop c in
  let mine =
    match Hashtbl.find_opt server.delivered dd with
    | None -> None
    | Some deposits -> List.assoc_opt c.slot deposits
  in
  let result =
    match mine with
    | None -> None
    | Some boxed ->
      (* peer encrypted with their slot's nonce *)
      (match Aead.open_ ~key:(msg_key c) ~nonce:(nonce_of (1 - c.slot)) boxed with
       | None -> None
       | Some plain -> Some (decode_plain plain))
  in
  c.round_num <- c.round_num + 1;
  c.deposited <- false;
  result
