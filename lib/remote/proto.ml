(* The Alpenhorn RPC vocabulary (DESIGN.md §13): message tags and payload
   codecs for the PKG and mixer server processes, plus blocking client
   wrappers over [Rpc.Client].

   Conventions:

   - a response frame reuses its request's tag; [Rpc.error_tag] (0xff) is
     reserved for handler crashes;
   - every response payload begins with a status byte: 0 = success,
     1 = a {!Pkg.error} follows (the app-level failure of PKG ops);
   - group elements (BLS keys/signatures, IBE keys, DH round keys) ride
     as their canonical byte serializations and are re-validated by the
     receiver — a peer is never trusted to send well-formed points;
   - [now] is explicit in the requests that consult the clock
     (registration lockout, liveness), because rounds run on the
     orchestrator's logical clock, not the server's wall clock. *)

module Framing = Alpenhorn_net.Framing
module Rpc = Alpenhorn_net.Rpc
module F = Framing.Fields
module Params = Alpenhorn_pairing.Params
module Bls = Alpenhorn_bls.Bls
module Ibe = Alpenhorn_ibe.Ibe
module Dh = Alpenhorn_dh.Dh
module Pkg = Alpenhorn_pkg.Pkg

(* ---- message tags ---- *)

let tag_pkg_info = 0x10
let tag_pkg_register = 0x11
let tag_pkg_inbox = 0x12
let tag_pkg_confirm = 0x13
let tag_pkg_begin_round = 0x14
let tag_pkg_reveal = 0x15
let tag_pkg_extract = 0x16
let tag_pkg_end_round = 0x17

let tag_mix_info = 0x20
let tag_mix_new_round = 0x21
let tag_mix_process = 0x22
let tag_mix_end_round = 0x23
let tag_mix_ping = 0x24

(* span names for server-side tracing: the same vocabulary the fleet
   trace timelines print, so a stitched trace reads as protocol steps *)
let tag_name tag =
  if tag = tag_pkg_info then "pkg.info"
  else if tag = tag_pkg_register then "pkg.register"
  else if tag = tag_pkg_inbox then "pkg.inbox"
  else if tag = tag_pkg_confirm then "pkg.confirm"
  else if tag = tag_pkg_begin_round then "pkg.begin_round"
  else if tag = tag_pkg_reveal then "pkg.reveal"
  else if tag = tag_pkg_extract then "pkg.extract"
  else if tag = tag_pkg_end_round then "pkg.end_round"
  else if tag = tag_mix_info then "mix.info"
  else if tag = tag_mix_new_round then "mix.new_round"
  else if tag = tag_mix_process then "mix.process"
  else if tag = tag_mix_end_round then "mix.end_round"
  else if tag = tag_mix_ping then "mix.ping"
  else Printf.sprintf "rpc.0x%02x" tag

type chain = Af | Dial

let chain_byte = function Af -> 0 | Dial -> 1
let chain_of_byte = function 0 -> Some Af | 1 -> Some Dial | _ -> None

(* ---- Pkg.error codec ---- *)

let pkg_error_bytes b (e : Pkg.error) =
  match e with
  | Pkg.Unknown_account -> F.u8 b 0
  | Pkg.Not_confirmed -> F.u8 b 1
  | Pkg.Already_registered -> F.u8 b 2
  | Pkg.Bad_token -> F.u8 b 3
  | Pkg.Bad_signature -> F.u8 b 4
  | Pkg.Locked_out s ->
    F.u8 b 5;
    F.u32 b s
  | Pkg.Wrong_round -> F.u8 b 6
  | Pkg.Not_revealed -> F.u8 b 7
  | Pkg.Unknown_provider -> F.u8 b 8

let pkg_error_of_cursor c : Pkg.error option =
  match F.get_u8 c with
  | Some 0 -> Some Pkg.Unknown_account
  | Some 1 -> Some Pkg.Not_confirmed
  | Some 2 -> Some Pkg.Already_registered
  | Some 3 -> Some Pkg.Bad_token
  | Some 4 -> Some Pkg.Bad_signature
  | Some 5 -> (match F.get_u32 c with Some s -> Some (Pkg.Locked_out s) | None -> None)
  | Some 6 -> Some Pkg.Wrong_round
  | Some 7 -> Some Pkg.Not_revealed
  | Some 8 -> Some Pkg.Unknown_provider
  | Some _ | None -> None

(* ---- response envelope ---- *)

let ok_payload fill =
  let b = Buffer.create 64 in
  F.u8 b 0;
  fill b;
  Buffer.contents b

let err_payload e =
  let b = Buffer.create 8 in
  F.u8 b 1;
  pkg_error_bytes b e;
  Buffer.contents b

let respond tag = function
  | Ok fill -> { Framing.tag; payload = ok_payload fill }
  | Error e -> { Framing.tag; payload = err_payload e }

(* Client side: one RPC round trip, unwrapping the envelope. [read] parses
   the success body from the cursor; a [Pkg.error] status surfaces as
   [Ok (Error e)] so protocol failures stay distinct from transport ones. *)
let call conn ~tag ~payload ~read =
  match Rpc.Client.call conn { Framing.tag; payload } with
  | Error _ as e -> e
  | Ok resp ->
    if resp.Framing.tag = Rpc.error_tag then Error ("server error: " ^ resp.Framing.payload)
    else if resp.Framing.tag <> tag then
      Error (Printf.sprintf "unexpected response tag 0x%02x" resp.Framing.tag)
    else begin
      let c = F.cursor resp.Framing.payload in
      match F.get_u8 c with
      | Some 0 -> (
        match read c with
        | Some v when F.finished c -> Ok (Ok v)
        | Some _ | None -> Error "malformed response body")
      | Some 1 -> (
        match pkg_error_of_cursor c with
        | Some e when F.finished c -> Ok (Error e)
        | Some _ | None -> Error "malformed error body")
      | Some _ | None -> Error "malformed response status"
    end

let req fill =
  let b = Buffer.create 64 in
  fill b;
  Buffer.contents b

(* Unwrap ops that cannot fail at the protocol level: a [Pkg.error] from
   one of them is a peer bug, reported as a transport error. *)
let no_protocol_error = function
  | Error _ as e -> e
  | Ok (Ok v) -> Ok v
  | Ok (Error e) -> Error ("unexpected protocol error: " ^ Pkg.error_to_string e)

(* ---- PKG operations: client side ---- *)

let pkg_info conn ~params =
  no_protocol_error
  @@ call conn ~tag:tag_pkg_info ~payload:""
       ~read:(fun c ->
         match F.get_str c with
         | None -> None
         | Some pk -> Bls.public_of_bytes params pk)

let pkg_register conn ~params ~now ~email ~pk =
  call conn ~tag:tag_pkg_register
    ~payload:
      (req (fun b ->
           F.u32 b now;
           F.str b email;
           F.str b (Bls.public_bytes params pk)))
    ~read:(fun _ -> Some ())

let pkg_inbox conn ~email =
  no_protocol_error
  @@ call conn ~tag:tag_pkg_inbox
       ~payload:(req (fun b -> F.str b email))
       ~read:F.get_strs

let pkg_confirm conn ~now ~email ~token =
  call conn ~tag:tag_pkg_confirm
    ~payload:
      (req (fun b ->
           F.u32 b now;
           F.str b email;
           F.str b token))
    ~read:(fun _ -> Some ())

let pkg_begin_round conn ~round =
  no_protocol_error
  @@ call conn ~tag:tag_pkg_begin_round ~payload:(req (fun b -> F.u32 b round)) ~read:F.get_str

let pkg_reveal conn ~params ~round =
  call conn ~tag:tag_pkg_reveal
    ~payload:(req (fun b -> F.u32 b round))
    ~read:(fun c ->
      match (F.get_str c, F.get_str c) with
      | Some mpk, Some opening -> (
        match Ibe.master_public_of_bytes params mpk with
        | Some mpk -> Some (mpk, opening)
        | None -> None)
      | _ -> None)

let pkg_extract conn ~params ~now ~round ~email ~signature =
  call conn ~tag:tag_pkg_extract
    ~payload:
      (req (fun b ->
           F.u32 b now;
           F.u32 b round;
           F.str b email;
           F.str b (Bls.signature_bytes params signature)))
    ~read:(fun c ->
      match (F.get_str c, F.get_str c) with
      | Some ik, Some att -> (
        match (Ibe.identity_key_of_bytes params ik, Bls.signature_of_bytes params att) with
        | Some ik, Some att -> Some (ik, att)
        | _ -> None)
      | _ -> None)

let pkg_end_round conn ~round =
  no_protocol_error
  @@ call conn ~tag:tag_pkg_end_round
       ~payload:(req (fun b -> F.u32 b round))
       ~read:(fun _ -> Some ())

(* ---- mixer operations: client side ---- *)

let mix_info conn =
  no_protocol_error
  @@ call conn ~tag:tag_mix_info ~payload:""
       ~read:(fun c ->
         match (F.get_u32 c, F.get_u32 c) with
         | Some position, Some chain_length -> Some (position, chain_length)
         | _ -> None)

let mix_new_round conn ~params ~chain =
  no_protocol_error
  @@ call conn ~tag:tag_mix_new_round
       ~payload:(req (fun b -> F.u8 b (chain_byte chain)))
       ~read:(fun c ->
         match F.get_str c with None -> None | Some pk -> Dh.public_of_bytes params pk)

let mix_process conn ~params ~chain ~downstream_pks ~noise_mu ~laplace_b ~num_mailboxes
    ~mpk_agg ~batch =
  no_protocol_error
  @@ call conn ~tag:tag_mix_process
       ~payload:
         (req (fun b ->
              F.u8 b (chain_byte chain);
              F.strs b (List.map (Dh.public_bytes params) downstream_pks);
              F.f64 b noise_mu;
              F.f64 b laplace_b;
              F.u32 b num_mailboxes;
              F.str b mpk_agg;
              F.strs b (Array.to_list batch)))
       ~read:(fun c ->
         match (F.get_u32 c, F.get_strs c) with
         | Some noise, Some out -> Some (Array.of_list out, noise)
         | _ -> None)

let mix_end_round conn ~chain =
  no_protocol_error
  @@ call conn ~tag:tag_mix_end_round
       ~payload:(req (fun b -> F.u8 b (chain_byte chain)))
       ~read:(fun _ -> Some ())

let mix_ping conn =
  no_protocol_error @@ call conn ~tag:tag_mix_ping ~payload:"" ~read:(fun _ -> Some ())
