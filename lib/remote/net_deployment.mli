(** Network-backed Alpenhorn deployment: the round sequencing of
    {!Alpenhorn_core.Deployment} with the PKGs and mixnet servers reached
    over framed TCP RPC ({!Proto}) instead of function calls.

    Clients live in the orchestrator process — the client library is
    transport-agnostic — while each PKG and each mixnet chain position is
    a separate server (an OS process spawned by [alpenhorn_cli serve-pkg]
    / [serve-mixer], or an {!Alpenhorn_net.Rpc.Server} in a test domain).

    {b Determinism.} Built from the same seed, this deployment reproduces
    the in-process one's client-visible protocol results — the same
    per-client events and session keys, round for round — provided both
    run the same fault schedule (client RNG consumption on aborted
    attempts must match). Noise bytes and post-respawn round keys differ;
    no client event depends on them.

    {b Faults.} The same {!Alpenhorn_core.Deployment.fault_view} schedule
    drives {e real process kills}: a crash entry invokes the mixer's
    [kill] callback, the abort is detected as a transport failure, and
    recovery invokes [restart] and re-runs the round after deterministic
    backoff on the logical clock — the full
    {!Alpenhorn_core.Deployment.with_recovery} loop over live sockets. *)

module Bloom = Alpenhorn_bloom.Bloom
module Config = Alpenhorn_core.Config
module Client = Alpenhorn_core.Client
module Deployment = Alpenhorn_core.Deployment
module Params = Alpenhorn_pairing.Params
module Pkg = Alpenhorn_pkg.Pkg

type endpoint = { host : string; port : int }

type mixer = {
  mutable ep : endpoint;  (** updated by the recovery loop after [restart] *)
  kill : unit -> unit;  (** terminate the server (SIGKILL + reap, or server stop) *)
  restart : unit -> endpoint;  (** respawn it; returns the new endpoint *)
}

type t

val create :
  ?call_timeout:float ->
  config:Config.t ->
  seed:string ->
  pkgs:endpoint array ->
  mixers:mixer array ->
  unit ->
  t
(** [pkgs] must have [config.n_pkgs] entries and [mixers]
    [config.chain_length] (mixer [i] serves position [i] of both chains).
    Connections are opened lazily and cached per endpoint.
    @raise Invalid_argument on a bad config or count mismatch. *)

val close : t -> unit
(** Close every cached connection (servers are not touched). *)

val config : t -> Config.t
val params : t -> Params.t
val now : t -> int
val advance_clock : t -> seconds:int -> unit
val addfriend_round_number : t -> int
val dialing_round_number : t -> int

val set_faults : t -> Deployment.fault_view option -> unit
val set_retry_policy : t -> Client.retry_policy -> unit
val retry_policy : t -> Client.retry_policy

val set_tracer : t -> Alpenhorn_telemetry.Trace.t option -> unit
(** Attach a tracer (default none): each round then runs under a root
    [net.round] span, every RPC emits a client-side [rpc.call] span and
    carries a child context to the server on the frame envelope
    ({!Alpenhorn_net.Framing.encode_traced}), and mailbox distribution is
    a [mailbox.publish] child span — so the fleet collector stitches one
    cross-process timeline per round. All span ids are minted here, on
    the orchestrator; servers replay carried identities verbatim.
    Contexts ride only the RPC envelope, never protocol payloads
    (DESIGN.md §9/§14). *)

val pkg_public_keys : t -> Alpenhorn_bls.Bls.public list
(** Fetched over RPC ({!Proto.pkg_info}), then treated as pre-distributed
    (§3.3). *)

val new_client : t -> email:string -> callbacks:Client.callbacks -> Client.t
(** Same DRBG derivation as {!Alpenhorn_core.Deployment.new_client}. *)

val register : t -> Client.t -> (unit, Pkg.error) result
(** Register with every PKG over RPC, completing each confirmation-token
    flow through the PKG's simulated provider ({!Proto.pkg_inbox}). *)

val run_addfriend_round : t -> ?participants:Client.t list -> unit -> Deployment.af_stats
(** One complete add-friend round (Algorithm 1) over the wire: PKG
    commit/reveal RPCs, per-client extraction RPCs, one [process] RPC per
    mixer hop, local mailbox distribution and scanning. Under a fault
    schedule the round may abort (a mixer process dies) and re-run after
    [restart]; [af_attempts] reports the tries.
    @raise Deployment.Round_failed when the retry budget is exhausted.
    @raise Failure on a PKG transport failure (PKGs are trusted
    infrastructure in this harness; only mixers are killable). *)

val run_dialing_round : t -> ?participants:Client.t list -> unit -> Deployment.dial_stats
(** One dialing round (§5) over the wire; same recovery semantics, plus
    the archived-filter replay for returning offline clients. *)

val archived_filter : t -> round:int -> email:string -> Bloom.t option
