(** Server-process logic for the framed RPC protocol (DESIGN.md §13): a
    PKG process and a mixer process, each a state record plus a
    [Framing.frame -> Framing.frame] handler for {!Alpenhorn_net.Rpc}.

    Determinism: a server derives its DRBG from the deployment seed along
    the exact path the in-process {!Alpenhorn_core.Deployment} uses
    ({!Alpenhorn_crypto.Drbg.derive} is a pure HMAC fork), so a
    multi-process deployment reproduces the in-process protocol results —
    same client events, same session keys. Only noise bytes differ: each
    mixer samples noise from its own local stream. *)

module Framing = Alpenhorn_net.Framing
module Params = Alpenhorn_pairing.Params
module Pkg = Alpenhorn_pkg.Pkg
module Server = Alpenhorn_mixnet.Server
module Config = Alpenhorn_core.Config

(** One PKG plus its simulated email provider (confirmation tokens are
    read back over the {!Proto.pkg_inbox} op). *)
module Pkg_server : sig
  type t

  val create : config:Config.t -> seed:string -> index:int -> t
  (** [index] selects the ["pkg-<index>"] DRBG derivation, matching PKG
      [index] of an in-process deployment created from the same seed. *)

  val pkg : t -> Pkg.t
  val handler : t -> Framing.frame -> Framing.frame
  (** Raises [Failure] on malformed or unknown requests; {!Alpenhorn_net.Rpc}
      turns that into an error frame. *)

  val handler_traced : t -> trace:(string * string) list option -> Framing.frame -> Framing.frame
  (** {!handler}, plus one span per traced request: when the RPC envelope
      carried trace labels, the handler is timed and a span named by
      {!Proto.tag_name} is emitted on {!Alpenhorn_telemetry.Telemetry.default}
      under those labels verbatim (span identity is minted only by the
      orchestrator). Shaped for {!Alpenhorn_net.Rpc.Server.create_traced}. *)
end

(** One chain position of {e both} mixnet chains (add-friend and dialing),
    as deployed: a mixer operator runs one process per position. *)
module Mixer_server : sig
  type t

  val create : config:Config.t -> seed:string -> position:int -> t
  (** @raise Invalid_argument when [position] is outside the configured
      chain length. *)

  val handler : t -> Framing.frame -> Framing.frame

  val handler_traced : t -> trace:(string * string) list option -> Framing.frame -> Framing.frame
  (** As {!Pkg_server.handler_traced}. *)
end
