(** The Alpenhorn RPC vocabulary (DESIGN.md §13): frame tags, payload
    codecs, and blocking client wrappers for the PKG and mixer server
    processes.

    Every response reuses its request's tag and opens with a status byte
    (0 = success, 1 = a {!Pkg.error} follows); {!Alpenhorn_net.Rpc}'s
    error tag is reserved for handler crashes. Group elements travel as
    canonical bytes and are re-validated on receipt — peers are never
    trusted to send well-formed points. [now] is explicit wherever the
    PKG consults a clock, because rounds run on the orchestrator's
    logical clock.

    Client wrappers return [(_, string) result] for transport/peer
    failures; the PKG ops that can fail at the protocol level
    ({!pkg_register}, {!pkg_confirm}, {!pkg_reveal}, {!pkg_extract})
    nest the {!Pkg.error} so the two failure kinds stay distinct. *)

module Framing = Alpenhorn_net.Framing
module Rpc = Alpenhorn_net.Rpc
module Params = Alpenhorn_pairing.Params
module Bls = Alpenhorn_bls.Bls
module Ibe = Alpenhorn_ibe.Ibe
module Dh = Alpenhorn_dh.Dh
module Pkg = Alpenhorn_pkg.Pkg

(** {1 Message tags} *)

val tag_pkg_info : int
val tag_pkg_register : int
val tag_pkg_inbox : int
val tag_pkg_confirm : int
val tag_pkg_begin_round : int
val tag_pkg_reveal : int
val tag_pkg_extract : int
val tag_pkg_end_round : int
val tag_mix_info : int
val tag_mix_new_round : int
val tag_mix_process : int
val tag_mix_end_round : int
val tag_mix_ping : int

val tag_name : int -> string
(** Human-readable span name for a request tag ([0x16] → ["pkg.extract"],
    [0x22] → ["mix.process"]); unknown tags render as ["rpc.0xNN"]. The
    traced server handlers name their spans with this, so a stitched
    cross-process trace reads as protocol steps. *)

(** A mixer process hosts one chain position of {e both} mixnet chains;
    requests select which. *)
type chain = Af | Dial

val chain_byte : chain -> int
val chain_of_byte : int -> chain option

(** {1 Server-side helpers} *)

val pkg_error_bytes : Buffer.t -> Pkg.error -> unit
val pkg_error_of_cursor : Framing.Fields.cursor -> Pkg.error option

val respond : int -> ((Buffer.t -> unit, Pkg.error) result) -> Framing.frame
(** Build the [tag]ged response frame: status 0 plus the filled body, or
    status 1 plus the encoded error. *)

(** {1 PKG operations (client side)} *)

val pkg_info : Rpc.Client.t -> params:Params.t -> (Bls.public, string) result
(** The PKG's long-term signing key. *)

val pkg_register :
  Rpc.Client.t -> params:Params.t -> now:int -> email:string -> pk:Bls.public ->
  ((unit, Pkg.error) result, string) result

val pkg_inbox : Rpc.Client.t -> email:string -> (string list, string) result
(** Confirmation tokens the PKG's simulated email provider delivered to
    [email], most recent first. *)

val pkg_confirm :
  Rpc.Client.t -> now:int -> email:string -> token:string ->
  ((unit, Pkg.error) result, string) result

val pkg_begin_round : Rpc.Client.t -> round:int -> (string, string) result
(** Returns the commitment to the round's IBE master public key. *)

val pkg_reveal :
  Rpc.Client.t -> params:Params.t -> round:int ->
  ((Ibe.master_public * string, Pkg.error) result, string) result
(** Returns the master public key and the commitment opening. *)

val pkg_extract :
  Rpc.Client.t -> params:Params.t -> now:int -> round:int -> email:string ->
  signature:Bls.signature ->
  ((Ibe.identity_key * Bls.signature, Pkg.error) result, string) result

val pkg_end_round : Rpc.Client.t -> round:int -> (unit, string) result

(** {1 Mixer operations (client side)} *)

val mix_info : Rpc.Client.t -> (int * int, string) result
(** [(position, chain_length)]. *)

val mix_new_round : Rpc.Client.t -> params:Params.t -> chain:chain -> (Dh.public, string) result

val mix_process :
  Rpc.Client.t -> params:Params.t -> chain:chain -> downstream_pks:Dh.public list ->
  noise_mu:float -> laplace_b:float -> num_mailboxes:int -> mpk_agg:string ->
  batch:string array -> (string array * int, string) result
(** One unwrap/noise/shuffle hop; returns the outgoing batch and the
    noise count. [mpk_agg] (the serialized aggregate IBE master key)
    is non-empty only for faithful add-friend noise. *)

val mix_end_round : Rpc.Client.t -> chain:chain -> (unit, string) result
val mix_ping : Rpc.Client.t -> (unit, string) result
