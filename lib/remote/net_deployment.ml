(* Network-backed deployment orchestrator: the round sequencing of
   [Alpenhorn_core.Deployment], with the PKGs and mixnet servers reached
   over framed TCP RPC instead of function calls. Clients live in this
   process (the client library is transport-agnostic); the orchestrator
   plays the role [Chain.run_round] plays in-process — it threads the
   batch through the mixer processes hop by hop and distributes the final
   payloads into mailboxes locally.

   Determinism: created from the same seed, this deployment and the
   in-process one produce the same client-visible protocol results (events
   and session keys) — server processes derive their DRBGs along the same
   paths ([Servers]), clients are derived identically here, and the
   recovery loop mirrors [Deployment.with_recovery] step for step
   (including backoff arithmetic on the logical clock), so client RNG
   consumption matches even across aborted attempts. Wire-level bytes
   (noise, round keys after a process respawn) legitimately differ.

   Faults: the same [Deployment.fault_view] schedule drives real process
   kills here — a crash entry SIGKILLs the mixer (via the harness's [kill]
   callback) and recovery respawns it ([restart]). The anytrust abort is
   detected as a transport failure: a dead mixer fails the pre-processing
   ping (mirroring [Chain.run_round]'s up-front down-check, so no mixer
   processes a batch on an aborted attempt) or a mid-pipeline call. *)

module Drbg = Alpenhorn_crypto.Drbg
module Params = Alpenhorn_pairing.Params
module Bls = Alpenhorn_bls.Bls
module Ibe = Alpenhorn_ibe.Ibe
module Pkg = Alpenhorn_pkg.Pkg
module Config = Alpenhorn_core.Config
module Client = Alpenhorn_core.Client
module Deployment = Alpenhorn_core.Deployment
module Wire = Alpenhorn_core.Wire
module Mailbox = Alpenhorn_mixnet.Mailbox
module Bloom = Alpenhorn_bloom.Bloom
module Rpc = Alpenhorn_net.Rpc
module Events = Alpenhorn_telemetry.Events
module Tel = Alpenhorn_telemetry.Telemetry
module Trace = Alpenhorn_telemetry.Trace

type endpoint = { host : string; port : int }

type mixer = {
  mutable ep : endpoint;
  kill : unit -> unit;
  restart : unit -> endpoint;
}

type t = {
  config : Config.t;
  params : Params.t;
  rng : Drbg.t; (* deployment root; only pure derivations are taken here *)
  pkg_eps : endpoint array;
  mixers : mixer array;
  conns : (string, Rpc.Client.t) Hashtbl.t;
  call_timeout : float;
  dial_archive : (int, Bloom.t array * int) Hashtbl.t;
  killed : bool array;
  mutable clients : Client.t list;
  mutable af_round : int;
  mutable dial_round : int;
  mutable clock : int;
  mutable faults : Deployment.fault_view option;
  mutable policy : Client.retry_policy;
  mutable tracer : Trace.t option;
  mutable round_ctx : Trace.ctx option; (* root ctx of the round in flight *)
}

exception Aborted of int
exception Stall_timeout

let create ?(call_timeout = 10.0) ~config ~seed ~pkgs ~mixers () =
  (match Config.validate config with
  | Ok () -> ()
  | Error m -> invalid_arg ("Net_deployment.create: " ^ m));
  if Array.length pkgs <> config.Config.n_pkgs then
    invalid_arg "Net_deployment.create: pkg endpoint count <> n_pkgs";
  if Array.length mixers <> config.Config.chain_length then
    invalid_arg "Net_deployment.create: mixer count <> chain_length";
  {
    config;
    params = Config.params config;
    rng = Drbg.create ~seed:("deployment" ^ seed);
    pkg_eps = pkgs;
    mixers;
    conns = Hashtbl.create 8;
    call_timeout;
    dial_archive = Hashtbl.create 16;
    killed = Array.make (Array.length mixers) false;
    clients = [];
    af_round = 0;
    dial_round = 0;
    clock = 0;
    faults = None;
    policy = Client.default_retry_policy;
    tracer = None;
    round_ctx = None;
  }

let config t = t.config
let params t = t.params
let now t = t.clock
let advance_clock t ~seconds = t.clock <- t.clock + seconds
let addfriend_round_number t = t.af_round
let dialing_round_number t = t.dial_round
let set_faults t fv = t.faults <- fv
let set_retry_policy t p = t.policy <- p
let retry_policy t = t.policy
let set_tracer t tr = t.tracer <- tr

(* ---- cross-process trace propagation (DESIGN.md §14) ----

   The orchestrator's tracer mints every span id in the fleet. Each RPC
   under a traced round gets two child contexts: [call_ctx] names the
   client-side "rpc.call" span, and [wire_ctx] (its child) rides the
   frame envelope to the server, which emits its handler span under that
   identity verbatim. Merged fleet snapshots therefore stitch
   client → server spans into one timeline with correct parentage.
   Contexts never touch protocol payloads — only the RPC envelope — so
   onions and mailbox entries stay byte-identical (§9 invariant). *)

let traced_rpc t ~peer c f =
  match (t.tracer, t.round_ctx) with
  | Some tr, Some ctx ->
    let call_ctx = Trace.child tr ctx in
    let wire_ctx = Trace.child tr call_ctx in
    Rpc.Client.set_trace c (Some (Trace.labels_of wire_ctx));
    let reg = Trace.registry tr in
    let t0 = Tel.now reg in
    let finish () =
      Trace.emit tr call_ctx
        ~labels:[ ("peer", peer) ]
        ~name:"rpc.call" ~ts:t0
        ~dur:(Tel.now reg -. t0)
        ()
    in
    (match f c with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e)
  | _ -> f c

(* A child span of the round for orchestrator-local work (mailbox
   distribution). *)
let traced_local t ~name f =
  match (t.tracer, t.round_ctx) with
  | Some tr, Some ctx -> Trace.with_ tr (Trace.child tr ctx) name f
  | _ -> f ()

(* The per-round root span: sample one context for the whole round
   (retries included) and run [f] under it as "net.round". *)
let with_round_trace t ~phase ~round f =
  match t.tracer with
  | None -> f ()
  | Some tr ->
    let ctx = Trace.sample tr in
    t.round_ctx <- ctx;
    Fun.protect
      ~finally:(fun () -> t.round_ctx <- None)
      (fun () ->
        match ctx with
        | None -> f ()
        | Some ctx ->
          Trace.with_ tr ctx
            ~labels:[ ("phase", phase); ("round", string_of_int round) ]
            "net.round" f)

(* ---- connection cache ---- *)

let ep_key ep = Printf.sprintf "%s:%d" ep.host ep.port

let drop_conn t ep =
  let key = ep_key ep in
  match Hashtbl.find_opt t.conns key with
  | None -> ()
  | Some conn ->
    Rpc.Client.close conn;
    Hashtbl.remove t.conns key

let conn t ep =
  let key = ep_key ep in
  match Hashtbl.find_opt t.conns key with
  | Some c -> Ok c
  | None -> (
    match Rpc.Client.connect ~timeout:t.call_timeout ~host:ep.host ~port:ep.port () with
    | Ok c ->
      Hashtbl.replace t.conns key c;
      Ok c
    | Error _ as e -> e)

let close t =
  Hashtbl.iter (fun _ c -> Rpc.Client.close c) t.conns;
  Hashtbl.reset t.conns

(* PKG processes are trusted infrastructure in this harness (the fault
   grammar targets mixers and clients); a PKG transport failure is fatal. *)
let pkg_call t i f =
  let ep = t.pkg_eps.(i) in
  match conn t ep with
  | Error m -> failwith (Printf.sprintf "pkg %d: %s" i m)
  | Ok c -> (
    match traced_rpc t ~peer:(Printf.sprintf "pkg-%d" i) c f with
    | Ok v -> v
    | Error m ->
      drop_conn t ep;
      failwith (Printf.sprintf "pkg %d: %s" i m))

(* A mixer transport failure is the anytrust abort signal. *)
let mixer_call t i f =
  let ep = t.mixers.(i).ep in
  match conn t ep with
  | Error _ ->
    drop_conn t ep;
    raise (Aborted i)
  | Ok c -> (
    match traced_rpc t ~peer:(Printf.sprintf "mixer-%d" i) c f with
    | Ok v -> v
    | Error _ ->
      drop_conn t ep;
      raise (Aborted i))

(* ---- clients and registration ---- *)

let pkg_public_keys t =
  Array.to_list
    (Array.mapi (fun i _ -> pkg_call t i (fun c -> Proto.pkg_info c ~params:t.params)) t.pkg_eps)

(* Same derivation as [Deployment.new_client]; [Drbg.derive] is pure, so
   the client stream matches the in-process one byte for byte. *)
let new_client t ~email ~callbacks =
  Client.create ~config:t.config
    ~rng:(Drbg.derive t.rng ("client-" ^ email))
    ~email ~pkg_public_keys:(pkg_public_keys t) ~callbacks

let register t client =
  let email = Client.email client in
  let pk = Client.signing_public client in
  let rec per_pkg i =
    if i = Array.length t.pkg_eps then Ok ()
    else begin
      match pkg_call t i (fun c -> Proto.pkg_register c ~params:t.params ~now:t.clock ~email ~pk) with
      | Error e -> Error e
      | Ok () ->
        (* the user reads the confirmation email and echoes the token *)
        let token =
          match pkg_call t i (fun c -> Proto.pkg_inbox c ~email) with
          | tok :: _ -> tok
          | [] -> "" (* no email delivered: confirmation will fail below *)
        in
        (match pkg_call t i (fun c -> Proto.pkg_confirm c ~now:t.clock ~email ~token) with
        | Error e -> Error e
        | Ok () -> per_pkg (i + 1))
    end
  in
  match per_pkg 0 with
  | Error e -> Error e
  | Ok () ->
    if not (List.memq client t.clients) then t.clients <- t.clients @ [ client ];
    Ok ()

(* ---- fault injection and recovery (mirrors Deployment) ---- *)

let kill_mixer t s =
  if not t.killed.(s) then begin
    drop_conn t t.mixers.(s).ep;
    t.mixers.(s).kill ();
    t.killed.(s) <- true;
    Events.log Events.default ~severity:Warn
      ~labels:[ ("server", string_of_int s) ]
      ~detail:"mixer process killed by fault schedule" "net.mixer_killed"
  end

let restart_killed t =
  Array.iteri
    (fun s killed ->
      if killed then begin
        t.mixers.(s).ep <- t.mixers.(s).restart ();
        t.killed.(s) <- false;
        Events.log Events.default
          ~labels:[ ("server", string_of_int s) ]
          ~detail:(Printf.sprintf "mixer respawned on port %d" t.mixers.(s).ep.port)
          "net.mixer_restarted"
      end)
    t.killed

(* Same injection point and stall arithmetic as [Deployment.inject_faults];
   a crash entry kills the OS process instead of flipping a flag. *)
let inject_faults t ~round ~attempt =
  match t.faults with
  | None -> ()
  | Some fv ->
    for s = 0 to Array.length t.mixers - 1 do
      if fv.Deployment.fv_crash_attempts ~round ~server:s >= attempt then kill_mixer t s
    done;
    if attempt = 1 then begin
      let stall = ref 0.0 in
      for s = 0 to Array.length t.mixers - 1 do
        stall := !stall +. fv.Deployment.fv_stall_seconds ~round ~server:s
      done;
      if !stall > 0.0 then begin
        let timeout = t.policy.Client.round_timeout in
        if !stall > timeout then begin
          advance_clock t ~seconds:(int_of_float (Float.ceil timeout));
          raise Stall_timeout
        end
        else advance_clock t ~seconds:(int_of_float (Float.ceil !stall))
      end
    end

(* End-of-round key erasure on every mixer that still answers; a killed
   process lost its round key with the process — the same forward-secrecy
   outcome [Chain.abort_round] forces. *)
let abort_chain t ~chain =
  Array.iteri
    (fun s _ ->
      if not t.killed.(s) then
        try mixer_call t s (fun c -> Proto.mix_end_round c ~chain) with Aborted _ -> ())
    t.mixers

let with_recovery t ~phase ~round ~chain ~clients ~cleanup body =
  let policy = t.policy in
  let seed = match t.faults with Some fv -> fv.Deployment.fv_seed | None -> "faults" in
  let checkpoints = List.map (fun c -> (c, Client.checkpoint c)) clients in
  let rec attempt n =
    match body ~after_begin:(fun () -> inject_faults t ~round ~attempt:n) with
    | result -> (result, n)
    | exception (Aborted _ | Stall_timeout) ->
      abort_chain t ~chain;
      restart_killed t;
      List.iter (fun (c, cp) -> Client.rollback c cp) checkpoints;
      cleanup ();
      if n >= policy.Client.max_attempts then
        raise (Deployment.Round_failed { phase; round; attempts = n })
      else begin
        (* identical backoff seed and ceil-to-seconds clock advance as the
           in-process loop: logical clocks stay in lockstep *)
        let delay =
          Client.backoff_delay policy
            ~seed:(Printf.sprintf "%s:%s:%d" seed phase round)
            ~attempt:n
        in
        advance_clock t ~seconds:(int_of_float (Float.ceil delay));
        Events.log Events.default ~severity:Warn
          ~labels:[ ("phase", phase); ("round", string_of_int round) ]
          ~detail:(Printf.sprintf "attempt %d aborted; retrying after %.1f s backoff" n delay)
          "round.retry";
        attempt (n + 1)
      end
  in
  attempt 1

let online_clients t ~round clients =
  match t.faults with
  | None -> (clients, [])
  | Some fv ->
    let index c =
      let rec go i = function [] -> -1 | x :: rest -> if x == c then i else go (i + 1) rest in
      go 0 t.clients
    in
    List.partition
      (fun c ->
        let i = index c in
        i < 0 || not (fv.Deployment.fv_client_offline ~round ~client:i))
      clients

(* ---- the mixnet round over RPC ---- *)

let begin_chain_round t ~chain =
  Array.to_list
    (Array.mapi
       (fun i _ -> mixer_call t i (fun c -> Proto.mix_new_round c ~params:t.params ~chain))
       t.mixers)

(* [Chain.run_round]'s processing half, distributed: up-front liveness
   check (ping), then one [process] RPC per hop threading the batch, then
   key erasure everywhere, then local mailbox distribution. *)
let run_chain t ~chain ~mode ~noise_mu ~laplace_b ~num_mailboxes ~mpk_agg ~server_pks batch =
  let n = Array.length t.mixers in
  for i = 0 to n - 1 do
    if t.killed.(i) then raise (Aborted i);
    mixer_call t i Proto.mix_ping
  done;
  let pks = Array.of_list server_pks in
  let total_noise = ref 0 in
  let current = ref batch in
  for i = 0 to n - 1 do
    let downstream_pks = Array.to_list (Array.sub pks (i + 1) (n - i - 1)) in
    let out, noise =
      mixer_call t i (fun c ->
          Proto.mix_process c ~params:t.params ~chain ~downstream_pks ~noise_mu ~laplace_b
            ~num_mailboxes ~mpk_agg ~batch:!current)
    in
    total_noise := !total_noise + noise;
    current := out
  done;
  Array.iteri
    (fun i _ -> mixer_call t i (fun c -> Proto.mix_end_round c ~chain))
    t.mixers;
  let mailboxes, dropped =
    traced_local t ~name:"mailbox.publish" (fun () ->
        Mailbox.distribute ~num_mailboxes ~mode !current)
  in
  (mailboxes, !total_noise, dropped)

(* ---- add-friend round (Algorithm 1 over the wire) ---- *)

let num_af_mailboxes t ~participants =
  let expected_real =
    int_of_float (Float.round (float_of_int participants *. t.config.Config.active_fraction))
  in
  Mailbox.num_mailboxes_for ~expected_real ~noise_mu:t.config.Config.addfriend_noise_mu
    ~chain_length:t.config.Config.chain_length

let run_addfriend_round t ?participants () =
  let clients = match participants with Some l -> l | None -> t.clients in
  t.af_round <- t.af_round + 1;
  let round = t.af_round in
  let clients, _offline = online_clients t ~round clients in
  let body ~after_begin =
    (* 1. PKGs rotate master keys: commit, then reveal; verify the openings *)
    let commitments =
      Array.mapi (fun i _ -> pkg_call t i (fun c -> Proto.pkg_begin_round c ~round)) t.pkg_eps
    in
    let mpks =
      Array.to_list
        (Array.mapi
           (fun i _ ->
             match pkg_call t i (fun c -> Proto.pkg_reveal c ~params:t.params ~round) with
             | Error e -> failwith ("Net_deployment: reveal failed: " ^ Pkg.error_to_string e)
             | Ok (mpk, opening) ->
               if
                 not
                   (Pkg.verify_commitment t.params ~commitment:commitments.(i) ~mpk ~opening)
               then failwith "Net_deployment: PKG commitment mismatch";
               mpk)
           t.pkg_eps)
    in
    let mpk_agg = Ibe.aggregate_public t.params mpks in
    let num_mailboxes = num_af_mailboxes t ~participants:(List.length clients) in
    (* 2. every client extracts identity keys over RPC and submits one onion *)
    let server_pks = begin_chain_round t ~chain:Proto.Af in
    after_begin ();
    let contexts =
      List.map
        (fun cl ->
          let result =
            Client.begin_addfriend_round_with cl ~round ~n_pkgs:(Array.length t.pkg_eps)
              ~extract:(fun i ~email ~signature ->
                pkg_call t i (fun c ->
                    Proto.pkg_extract c ~params:t.params ~now:t.clock ~round ~email ~signature))
          in
          match result with
          | Error e -> failwith ("Net_deployment: extraction failed: " ^ Pkg.error_to_string e)
          | Ok ctx -> (cl, ctx))
        clients
    in
    let batch =
      Array.of_list
        (List.map
           (fun (cl, ctx) ->
             Client.addfriend_submission cl ctx ~mpk_agg ~num_mailboxes ~server_pks)
           contexts)
    in
    (* 3. the mixer processes run the round *)
    let mailboxes, noise_added, dropped =
      run_chain t ~chain:Proto.Af ~mode:`AddFriend ~noise_mu:t.config.Config.addfriend_noise_mu
        ~laplace_b:t.config.Config.laplace_b ~num_mailboxes
        ~mpk_agg:(if t.config.Config.faithful_noise then Ibe.master_public_bytes t.params mpk_agg else "")
        ~server_pks batch
    in
    let buckets = Mailbox.plain_exn mailboxes in
    (* 4-6. every client downloads its mailbox and scans *)
    let events =
      List.concat_map
        (fun (cl, ctx) ->
          let mb = Mailbox.mailbox_of_identity (Client.email cl) ~num_mailboxes in
          List.map
            (fun ev -> (Client.email cl, ev))
            (Client.scan_addfriend_mailbox cl ctx buckets.(mb)))
        contexts
    in
    (* PKGs erase master secrets *)
    Array.iteri (fun i _ -> pkg_call t i (fun c -> Proto.pkg_end_round c ~round)) t.pkg_eps;
    advance_clock t ~seconds:t.config.Config.addfriend_round_seconds;
    {
      Deployment.af_round = round;
      af_attempts = 1;
      requests_in = Array.length batch;
      noise_added;
      dropped;
      num_mailboxes;
      mailbox_bytes = Mailbox.size_bytes mailboxes;
      events;
    }
  in
  let stats, attempts =
    with_round_trace t ~phase:"addfriend" ~round (fun () ->
        with_recovery t ~phase:"addfriend" ~round ~chain:Proto.Af ~clients
          ~cleanup:(fun () ->
            Array.iteri (fun i _ -> pkg_call t i (fun c -> Proto.pkg_end_round c ~round)) t.pkg_eps)
          body)
  in
  { stats with Deployment.af_attempts = attempts }

(* ---- dialing round (§5 over the wire) ---- *)

let num_dial_mailboxes t ~participants =
  let expected_real =
    int_of_float (Float.round (float_of_int participants *. t.config.Config.active_fraction))
  in
  Mailbox.num_mailboxes_for ~expected_real ~noise_mu:t.config.Config.dialing_noise_mu
    ~chain_length:t.config.Config.chain_length

let run_dialing_round t ?participants () =
  let clients = match participants with Some l -> l | None -> t.clients in
  let round = t.dial_round + 1 in
  let clients, _offline = online_clients t ~round clients in
  (* returning offline clients replay the archived filters they missed,
     before this round runs (§5.1/§5.3) — as in [Deployment] *)
  let recovered =
    if t.faults = None then []
    else
      List.concat_map
        (fun cl ->
          let first = Client.dialing_round cl + 1 in
          if first > t.dial_round then []
          else begin
            let through =
              List.init
                (t.dial_round - first + 1)
                (fun i ->
                  let r = first + i in
                  match Hashtbl.find_opt t.dial_archive r with
                  | None -> (r, None)
                  | Some (filters, k) ->
                    ( r,
                      Some filters.(Mailbox.mailbox_of_identity (Client.email cl) ~num_mailboxes:k)
                    ))
            in
            List.map (fun ev -> (Client.email cl, ev)) (Client.catch_up_dialing cl ~through)
          end)
        clients
  in
  t.dial_round <- round;
  let body ~after_begin =
    let num_mailboxes = num_dial_mailboxes t ~participants:(List.length clients) in
    List.iter (fun cl -> Client.advance_dialing cl ~round) clients;
    let server_pks = begin_chain_round t ~chain:Proto.Dial in
    after_begin ();
    let batch =
      Array.of_list
        (List.map (fun cl -> Client.dialing_submission cl ~num_mailboxes ~server_pks) clients)
    in
    let mailboxes, noise_added, dropped =
      run_chain t ~chain:Proto.Dial ~mode:`Dialing ~noise_mu:t.config.Config.dialing_noise_mu
        ~laplace_b:t.config.Config.laplace_b ~num_mailboxes ~mpk_agg:"" ~server_pks batch
    in
    let filters = Mailbox.filters_exn mailboxes in
    Hashtbl.replace t.dial_archive round (filters, num_mailboxes);
    Hashtbl.remove t.dial_archive (round - t.config.Config.dial_archive_rounds);
    let calls =
      List.concat_map
        (fun cl ->
          let mb = Mailbox.mailbox_of_identity (Client.email cl) ~num_mailboxes in
          List.map (fun ev -> (Client.email cl, ev)) (Client.scan_dialing_mailbox cl filters.(mb)))
        clients
    in
    advance_clock t ~seconds:t.config.Config.dialing_round_seconds;
    {
      Deployment.dial_round = round;
      dial_attempts = 1;
      tokens_in = Array.length batch;
      dial_noise_added = noise_added;
      dial_dropped = dropped;
      dial_num_mailboxes = num_mailboxes;
      filter_bytes = Mailbox.size_bytes mailboxes;
      calls;
    }
  in
  let stats, attempts =
    with_round_trace t ~phase:"dialing" ~round (fun () ->
        with_recovery t ~phase:"dialing" ~round ~chain:Proto.Dial ~clients
          ~cleanup:(fun () -> ())
          body)
  in
  { stats with Deployment.dial_attempts = attempts; calls = recovered @ stats.Deployment.calls }

let archived_filter t ~round ~email =
  match Hashtbl.find_opt t.dial_archive round with
  | None -> None
  | Some (filters, k) -> Some filters.(Mailbox.mailbox_of_identity email ~num_mailboxes:k)
