(* Server-process logic for the framed RPC protocol: a PKG process and a
   mixer process, each as a state record plus a pure-ish
   [Framing.frame -> Framing.frame] handler that [Rpc.Server] dispatches.

   Determinism contract (DESIGN.md §13): a server process derives its DRBG
   from the deployment seed exactly like the in-process [Deployment] does
   (the derivation is a pure HMAC fork, consuming nothing), so a
   multi-process deployment reproduces the in-process protocol results:
   clients see the same events and session keys. Noise is the exception —
   each mixer samples noise from its own ["net-noise-*"] stream instead of
   the orchestrator's, which changes noise bytes but never a client-visible
   event. *)

module Framing = Alpenhorn_net.Framing
module Rpc = Alpenhorn_net.Rpc
module F = Framing.Fields
module Drbg = Alpenhorn_crypto.Drbg
module Params = Alpenhorn_pairing.Params
module Bls = Alpenhorn_bls.Bls
module Ibe = Alpenhorn_ibe.Ibe
module Dh = Alpenhorn_dh.Dh
module Pkg = Alpenhorn_pkg.Pkg
module Server = Alpenhorn_mixnet.Server
module Wire = Alpenhorn_core.Wire
module Config = Alpenhorn_core.Config

let root_rng ~seed = Drbg.create ~seed:("deployment" ^ seed)

module Tel = Alpenhorn_telemetry.Telemetry

let malformed () = failwith "malformed request"

(* Trace propagation (DESIGN.md §14): when the RPC envelope carried
   trace labels, time the handler and emit one span under those labels
   verbatim. Span ids are minted only by the orchestrator's tracer — a
   server never mints, it replays the carried identity — so spans
   emitted by every process of the fleet stitch into one timeline when
   the collector merges their snapshots. Emitted even when the handler
   raises: a failed protocol step still shows up in its trace. *)
let traced handler ~trace (request : Framing.frame) =
  match trace with
  | None -> handler request
  | Some labels ->
    let t0 = Tel.now Tel.default in
    let finish () =
      Tel.Span.emit Tel.default ~labels
        ~name:(Proto.tag_name request.Framing.tag)
        ~ts:t0
        ~dur:(Tel.now Tel.default -. t0)
        ()
    in
    (match handler request with
    | resp ->
      finish ();
      resp
    | exception e ->
      finish ();
      raise e)

let expect_done c v = if F.finished c then v else malformed ()

(* ---- PKG process ---- *)

module Pkg_server = struct
  type t = {
    params : Params.t;
    pkg : Pkg.t;
    inboxes : (string, string list ref) Hashtbl.t; (* simulated provider, local *)
  }

  (* Same derivation path as [Deployment.create]: PKG [index]'s rng is
     ["pkg-<index>"] off the deployment root. *)
  let create ~config ~seed ~index =
    let params = Config.params config in
    let inboxes = Hashtbl.create 16 in
    let deliver ~to_ ~token =
      let box =
        match Hashtbl.find_opt inboxes to_ with
        | Some b -> b
        | None ->
          let b = ref [] in
          Hashtbl.replace inboxes to_ b;
          b
      in
      box := token :: !box
    in
    let rng = Drbg.derive (root_rng ~seed) (Printf.sprintf "pkg-%d" index) in
    { params; pkg = Pkg.create params ~rng ~send_email:deliver (); inboxes }

  let pkg t = t.pkg

  let handler t (request : Framing.frame) =
    let tag = request.Framing.tag in
    let c = F.cursor request.Framing.payload in
    let get f = match f c with Some v -> v | None -> malformed () in
    if tag = Proto.tag_pkg_info then begin
      let () = expect_done c () in
      Proto.respond tag (Ok (fun b -> F.str b (Bls.public_bytes t.params (Pkg.long_term_public t.pkg))))
    end
    else if tag = Proto.tag_pkg_register then begin
      let now = get F.get_u32 in
      let email = get F.get_str in
      let pk_bytes = get F.get_str in
      let () = expect_done c () in
      let pk = match Bls.public_of_bytes t.params pk_bytes with Some pk -> pk | None -> malformed () in
      match Pkg.register t.pkg ~now ~email ~pk with
      | Ok () -> Proto.respond tag (Ok (fun _ -> ()))
      | Error e -> Proto.respond tag (Error e)
    end
    else if tag = Proto.tag_pkg_inbox then begin
      let email = get F.get_str in
      let () = expect_done c () in
      let tokens = match Hashtbl.find_opt t.inboxes email with Some b -> !b | None -> [] in
      Proto.respond tag (Ok (fun b -> F.strs b tokens))
    end
    else if tag = Proto.tag_pkg_confirm then begin
      let now = get F.get_u32 in
      let email = get F.get_str in
      let token = get F.get_str in
      let () = expect_done c () in
      match Pkg.confirm t.pkg ~now ~email ~token with
      | Ok () -> Proto.respond tag (Ok (fun _ -> ()))
      | Error e -> Proto.respond tag (Error e)
    end
    else if tag = Proto.tag_pkg_begin_round then begin
      let round = get F.get_u32 in
      let () = expect_done c () in
      let commitment = Pkg.begin_round t.pkg ~round in
      Proto.respond tag (Ok (fun b -> F.str b commitment))
    end
    else if tag = Proto.tag_pkg_reveal then begin
      let round = get F.get_u32 in
      let () = expect_done c () in
      match Pkg.reveal_round t.pkg ~round with
      | Ok (mpk, opening) ->
        Proto.respond tag
          (Ok
             (fun b ->
               F.str b (Ibe.master_public_bytes t.params mpk);
               F.str b opening))
      | Error e -> Proto.respond tag (Error e)
    end
    else if tag = Proto.tag_pkg_extract then begin
      let now = get F.get_u32 in
      let round = get F.get_u32 in
      let email = get F.get_str in
      let sig_bytes = get F.get_str in
      let () = expect_done c () in
      let signature =
        match Bls.signature_of_bytes t.params sig_bytes with Some s -> s | None -> malformed ()
      in
      match Pkg.extract t.pkg ~now ~round ~email ~signature with
      | Ok (ik, att) ->
        Proto.respond tag
          (Ok
             (fun b ->
               F.str b (Ibe.identity_key_bytes t.params ik);
               F.str b (Bls.signature_bytes t.params att)))
      | Error e -> Proto.respond tag (Error e)
    end
    else if tag = Proto.tag_pkg_end_round then begin
      let round = get F.get_u32 in
      let () = expect_done c () in
      Pkg.end_round t.pkg ~round;
      Proto.respond tag (Ok (fun _ -> ()))
    end
    else failwith (Printf.sprintf "unknown PKG request tag 0x%02x" tag)

  let handler_traced t = traced (handler t)
end

(* ---- mixer process ---- *)

module Mixer_server = struct
  type t = {
    params : Params.t;
    position : int;
    chain_length : int;
    af : Server.t;
    dial : Server.t;
    noise_rng : Drbg.t; (* mixer-local noise stream; see module header *)
  }

  (* Chain position [position]'s servers derive exactly like
     [Deployment.create] → [Chain.create]: ["af-chain"]/["dial-chain"] off
     the root, then ["mix-server-<position>"]. *)
  let create ~config ~seed ~position =
    let params = Config.params config in
    let chain_length = config.Config.chain_length in
    if position < 0 || position >= chain_length then
      invalid_arg "Mixer_server.create: position out of range";
    let root = root_rng ~seed in
    let server_of chain_label =
      Server.create params
        ~rng:(Drbg.derive (Drbg.derive root chain_label) (Printf.sprintf "mix-server-%d" position))
        ~position ~chain_length
    in
    {
      params;
      position;
      chain_length;
      af = server_of "af-chain";
      dial = server_of "dial-chain";
      noise_rng = Drbg.derive root (Printf.sprintf "net-noise-%d" position);
    }

  let server t = function Proto.Af -> t.af | Proto.Dial -> t.dial

  (* The noise bodies [Deployment] builds for the in-process chains, drawn
     from this mixer's own stream: faithful IBE noise when the round's
     aggregate master key rides in (§4.3 ciphertext anonymity), sized
     random bytes otherwise. *)
  let noise_body t ~chain ~mpk_agg : Server.noise_body =
    match chain with
    | Proto.Dial -> fun ~mailbox:_ -> Drbg.bytes t.noise_rng Wire.dial_token_size
    | Proto.Af -> (
      match mpk_agg with
      | None -> fun ~mailbox:_ -> Drbg.bytes t.noise_rng (Wire.request_ciphertext_size t.params)
      | Some mpk ->
        fun ~mailbox:_ ->
          let id = "noise-" ^ Alpenhorn_crypto.Util.to_hex (Drbg.bytes t.noise_rng 8) in
          let body = Drbg.bytes t.noise_rng (Wire.request_plaintext_size t.params) in
          Ibe.encrypt t.params t.noise_rng mpk ~id body)

  let handler t (request : Framing.frame) =
    let tag = request.Framing.tag in
    let c = F.cursor request.Framing.payload in
    let get f = match f c with Some v -> v | None -> malformed () in
    let get_chain () =
      match Proto.chain_of_byte (get F.get_u8) with Some ch -> ch | None -> malformed ()
    in
    if tag = Proto.tag_mix_info then begin
      let () = expect_done c () in
      Proto.respond tag
        (Ok
           (fun b ->
             F.u32 b t.position;
             F.u32 b t.chain_length))
    end
    else if tag = Proto.tag_mix_new_round then begin
      let ch = get_chain () in
      let () = expect_done c () in
      let pk = Server.new_round (server t ch) in
      Proto.respond tag (Ok (fun b -> F.str b (Dh.public_bytes t.params pk)))
    end
    else if tag = Proto.tag_mix_process then begin
      let ch = get_chain () in
      let pk_bytes = get F.get_strs in
      let noise_mu = get F.get_f64 in
      let laplace_b = get F.get_f64 in
      let num_mailboxes = get F.get_u32 in
      let mpk_bytes = get F.get_str in
      let batch = Array.of_list (get F.get_strs) in
      let () = expect_done c () in
      let downstream_pks =
        List.map
          (fun s ->
            match Dh.public_of_bytes t.params s with Some pk -> pk | None -> malformed ())
          pk_bytes
      in
      let mpk_agg =
        if mpk_bytes = "" then None
        else
          match Ibe.master_public_of_bytes t.params mpk_bytes with
          | Some mpk -> Some mpk
          | None -> malformed ()
      in
      let out, noise =
        Server.process (server t ch) ~downstream_pks ~noise_mu ~laplace_b ~num_mailboxes
          ~noise_body:(noise_body t ~chain:ch ~mpk_agg)
          batch
      in
      Proto.respond tag
        (Ok
           (fun b ->
             F.u32 b noise;
             F.strs b (Array.to_list out)))
    end
    else if tag = Proto.tag_mix_end_round then begin
      let ch = get_chain () in
      let () = expect_done c () in
      Server.end_round (server t ch);
      Proto.respond tag (Ok (fun _ -> ()))
    end
    else if tag = Proto.tag_mix_ping then begin
      let () = expect_done c () in
      Proto.respond tag (Ok (fun _ -> ()))
    end
    else failwith (Printf.sprintf "unknown mixer request tag 0x%02x" tag)

  let handler_traced t = traced (handler t)
end
