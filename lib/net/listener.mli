(** Zero-dependency TCP listener: a non-blocking [Unix.select] loop with
    length-bounded HTTP/1.1 request parsing and graceful shutdown
    (DESIGN.md §12).

    This is the first brick of the real wire deployment (ROADMAP item 1):
    the PKG and mixnet server binaries will reuse this loop verbatim for
    their control/metrics planes, which is why it lives in [lib/net]
    rather than inside the telemetry library. It serves the live
    telemetry endpoints today ({!Alpenhorn_telemetry.Expose} supplies the
    handler).

    Shape: {!create} binds and listens (port [0] picks an ephemeral port
    — read it back with {!port}); {!run} drives the select loop until
    {!stop}; {!poll} runs a single bounded iteration for callers that own
    their own loop (tests, a simulator pumping between rounds). One
    domain runs the loop; {!stop} is safe from any other domain (it wakes
    the loop through a self-pipe). Connections are handled to completion:
    read until the header terminator (bounded by [max_request_bytes] —
    oversized requests get HTTP 431 and the connection is closed), parse
    the request line and headers, percent-decode the query, call the
    handler, write the response with [Connection: close]. A graceful
    {!stop} first stops accepting, then finishes writing every in-flight
    response (bounded by a 2-second drain deadline) before closing.

    Telemetry: [net.requests{status}] counters, a [net.request_seconds]
    histogram (accept-to-last-byte, registry clock) and the
    [net.open_connections] gauge — the listener observes itself through
    the same registry it usually serves.

    {!fetch} is the matching minimal HTTP/1.1 client (used by the [top]
    dashboard, the CI endpoint smoke test and the [--probe] self-check —
    no curl anywhere). *)

type request = {
  meth : string;  (** uppercased, e.g. ["GET"] *)
  path : string;  (** percent-decoded, query stripped, e.g. ["/metrics"] *)
  query : (string * string) list;  (** percent-decoded key/value pairs *)
  headers : (string * string) list;  (** names lowercased *)
}

type response = { status : int; content_type : string; body : string }

type handler = request -> response
(** Must not raise; a raising handler is answered with a plain 500 and
    the exception is swallowed (the loop must survive any request). *)

type t

val create :
  ?host:string -> ?backlog:int -> ?max_request_bytes:int -> port:int -> handler -> t
(** Bind [host] (default ["127.0.0.1"]) on [port] ([0] = ephemeral) and
    listen ([backlog] default 16). [max_request_bytes] (default 8192)
    bounds the buffered request head; longer requests are rejected with
    431 before parsing.
    @raise Unix.Unix_error when binding fails (port in use, permission). *)

val port : t -> int
(** The actually bound port — the ephemeral port when created with
    [port:0]. *)

val poll : t -> timeout:float -> int
(** One select iteration waiting at most [timeout] seconds; accepts,
    reads, dispatches and writes whatever is ready. Returns the number
    of descriptors progressed (0 on pure timeout). *)

val run : t -> unit
(** Loop {!poll} until {!stop}, then drain in-flight responses and close
    every descriptor. Blocks; typically [Domain.spawn (fun () -> run t)]. *)

val stop : t -> unit
(** Request graceful shutdown from any domain; idempotent. {!run}
    returns once drained. If no [run] is active, the next {!poll} stops
    accepting and a final {!close} reclaims descriptors. *)

val close : t -> unit
(** Force-close every descriptor now. {!run} calls it on exit; needed
    only by {!poll}-style callers. Idempotent. *)

val fetch :
  ?timeout:float -> ?host:string -> port:int -> string -> (int * string, string) result
(** [fetch ~port path]: one blocking HTTP/1.1 GET against
    [host] (default ["127.0.0.1"]), returning [(status, body)].
    [timeout] (default 5 s) bounds connect, write and read. The [Error]
    string is prefixed with its failure class so callers (the fleet
    scraper's staleness logic) can distinguish a dead process from a
    hung one: ["refused: ..."] when nothing is listening,
    ["timeout: ..."] when a peer exists but never answers (including a
    server that accepts the connection and then goes silent), and
    ["read: ..."] / ["write: ..."] / ["error: ..."] /
    ["malformed response: ..."] otherwise. *)

val url_decode : string -> string
(** Percent-decoding with [+] as space; invalid escapes pass through
    verbatim. Exposed for tests. *)
