(* Framed request/response RPC over TCP: the Listener's select machinery
   generalized from HTTP to length-prefixed binary streams (DESIGN.md
   §13). Differences from the HTTP listener:

   - connections are persistent: a client sends any number of request
     frames and receives one response frame per request, in order;
   - partial reads accumulate through the framing decoder (with an
     explicit consumed-offset so nothing is rescanned), partial writes
     drain through per-connection output state;
   - a [Corrupt] verdict from the decoder drops the connection — framing
     errors are not recoverable mid-stream.

   Zero opam dependencies: Unix + the in-tree telemetry registry. *)

module Tel = Alpenhorn_telemetry.Telemetry

type handler = Framing.frame -> Framing.frame

type traced_handler = trace:(string * string) list option -> Framing.frame -> Framing.frame

let error_tag = 0xff

let error_frame msg = { Framing.tag = error_tag; payload = msg }

module Server = struct
  type conn = {
    fd : Unix.file_descr;
    inbuf : Buffer.t;
    mutable consumed : int; (* frames before this offset are already handled *)
    mutable out : string;
    mutable out_off : int;
  }

  (* Per-tag telemetry handles, resolved once per tag per server: the
     registration path (Counter.v / Histogram.v) hashes, the hit path is a
     lone atomic or a histogram lock. *)
  type tag_metrics = {
    tm_calls : Tel.Counter.t;
    tm_seconds : Tel.Histogram.t;
    tm_bytes : Tel.Histogram.t;
  }

  type t = {
    listen_fd : Unix.file_descr;
    bound_port : int;
    handler : traced_handler;
    max_payload : int;
    conns : (Unix.file_descr, conn) Hashtbl.t; (* loop-domain only *)
    stop_flag : bool Atomic.t;
    pipe_rd : Unix.file_descr;
    pipe_wr : Unix.file_descr;
    mutable accepting : bool;
    mutable closed : bool;
    c_calls : Tel.Counter.t;
    c_errors : Tel.Counter.t;
    g_open : Tel.Gauge.t;
    by_tag : (int, tag_metrics) Hashtbl.t; (* loop-domain only *)
  }

  let create_traced ?(host = "127.0.0.1") ?(backlog = 16)
      ?(max_payload = Framing.default_max_payload) ~port handler =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    (try Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
     with e ->
       Unix.close fd;
       raise e);
    Unix.listen fd backlog;
    Unix.set_nonblock fd;
    let bound_port =
      match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | Unix.ADDR_UNIX _ -> port
    in
    let pipe_rd, pipe_wr = Unix.pipe () in
    Unix.set_nonblock pipe_rd;
    Unix.set_nonblock pipe_wr;
    let reg = Tel.default in
    {
      listen_fd = fd;
      bound_port;
      handler;
      max_payload;
      conns = Hashtbl.create 16;
      stop_flag = Atomic.make false;
      pipe_rd;
      pipe_wr;
      accepting = true;
      closed = false;
      c_calls = Tel.Counter.v reg "rpc.calls";
      c_errors = Tel.Counter.v reg "rpc.errors";
      g_open = Tel.Gauge.v reg "rpc.open_connections";
      by_tag = Hashtbl.create 16;
    }

  let create ?host ?backlog ?max_payload ~port handler =
    create_traced ?host ?backlog ?max_payload ~port (fun ~trace:_ req -> handler req)

  let port t = t.bound_port

  let tag_metrics t tag =
    match Hashtbl.find_opt t.by_tag tag with
    | Some m -> m
    | None ->
      let reg = Tel.default in
      let labels = [ ("tag", Printf.sprintf "0x%02x" tag) ] in
      let m =
        {
          tm_calls = Tel.Counter.v reg ~labels "rpc.call";
          tm_seconds = Tel.Histogram.v reg ~labels "rpc.request_seconds";
          tm_bytes = Tel.Histogram.v reg ~labels "rpc.payload_bytes";
        }
      in
      Hashtbl.replace t.by_tag tag m;
      m

  let close_conn t c =
    Hashtbl.remove t.conns c.fd;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    Tel.Gauge.set t.g_open (float_of_int (Hashtbl.length t.conns))

  (* Handle every complete frame sitting in the input buffer, appending
     responses to the output state; then compact the buffer so the consumed
     prefix is not rescanned (or re-held) on the next chunk. *)
  let drain_frames t c =
    let data = Buffer.contents c.inbuf in
    let responses = Buffer.create 64 in
    let rec go pos =
      match Framing.decode ~max_payload:t.max_payload data ~pos with
      | Framing.Frame (req, next) ->
        Tel.Counter.inc t.c_calls;
        (* a trace envelope is transport framing, not protocol: unwrap it
           here so handlers and per-tag metrics see the inner request *)
        let trace, req =
          if req.Framing.tag = Framing.trace_tag then
            match Framing.split_traced ~max_payload:t.max_payload req with
            | Some (labels, inner) -> (Some labels, inner)
            | None -> (None, req) (* malformed envelope: dispatch as-is, handler rejects *)
          else (None, req)
        in
        let m = tag_metrics t req.Framing.tag in
        Tel.Counter.inc m.tm_calls;
        Tel.Histogram.observe m.tm_bytes (float_of_int (String.length req.Framing.payload));
        let t0 = Unix.gettimeofday () in
        let resp =
          try t.handler ~trace req
          with e ->
            Tel.Counter.inc t.c_errors;
            error_frame (Printexc.to_string e)
        in
        Tel.Histogram.observe m.tm_seconds (Unix.gettimeofday () -. t0);
        Buffer.add_string responses (Framing.encode ~max_payload:t.max_payload resp);
        go next
      | Framing.Need_more -> `Keep_from pos
      | Framing.Corrupt _ ->
        Tel.Counter.inc t.c_errors;
        `Drop
    in
    match go c.consumed with
    | `Drop -> close_conn t c
    | `Keep_from pos ->
      if pos > 0 then begin
        let rest = String.sub data pos (String.length data - pos) in
        Buffer.clear c.inbuf;
        Buffer.add_string c.inbuf rest
      end;
      c.consumed <- 0;
      if Buffer.length responses > 0 then c.out <- c.out ^ Buffer.contents responses

  let handle_readable t c =
    let chunk = Bytes.create 4096 in
    match Unix.read c.fd chunk 0 4096 with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> close_conn t c
    | 0 -> close_conn t c
    | n ->
      Buffer.add_subbytes c.inbuf chunk 0 n;
      drain_frames t c

  let handle_writable t c =
    let remaining = String.length c.out - c.out_off in
    match Unix.write_substring c.fd c.out c.out_off remaining with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> close_conn t c
    | n ->
      c.out_off <- c.out_off + n;
      if c.out_off >= String.length c.out then begin
        c.out <- "";
        c.out_off <- 0
      end

  let accept_ready t =
    let rec go n =
      match Unix.accept t.listen_fd with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> n
      | exception Unix.Unix_error (_, _, _) -> n
      | fd, _ ->
        Unix.set_nonblock fd;
        Hashtbl.replace t.conns fd
          { fd; inbuf = Buffer.create 256; consumed = 0; out = ""; out_off = 0 };
        Tel.Gauge.set t.g_open (float_of_int (Hashtbl.length t.conns));
        go (n + 1)
    in
    go 0

  let drain_pipe t =
    let buf = Bytes.create 64 in
    let rec go () =
      match Unix.read t.pipe_rd buf 0 64 with
      | exception Unix.Unix_error _ -> ()
      | 0 -> ()
      | _ -> go ()
    in
    go ()

  let poll t ~timeout =
    if t.closed then 0
    else begin
      if Atomic.get t.stop_flag then t.accepting <- false;
      let readers = ref [ t.pipe_rd ] and writers = ref [] in
      if t.accepting then readers := t.listen_fd :: !readers;
      Hashtbl.iter
        (fun fd c ->
          if c.out <> "" then writers := fd :: !writers else readers := fd :: !readers)
        t.conns;
      match Unix.select !readers !writers [] timeout with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> 0
      | rs, ws, _ ->
        let progressed = ref 0 in
        List.iter
          (fun fd ->
            incr progressed;
            if fd = t.pipe_rd then drain_pipe t
            else if fd = t.listen_fd then ignore (accept_ready t)
            else
              match Hashtbl.find_opt t.conns fd with Some c -> handle_readable t c | None -> ())
          rs;
        List.iter
          (fun fd ->
            incr progressed;
            match Hashtbl.find_opt t.conns fd with Some c -> handle_writable t c | None -> ())
          ws;
        !progressed
    end

  let close t =
    if not t.closed then begin
      t.closed <- true;
      (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
      (try Unix.close t.pipe_rd with Unix.Unix_error _ -> ());
      (try Unix.close t.pipe_wr with Unix.Unix_error _ -> ());
      Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) t.conns;
      Hashtbl.reset t.conns;
      Tel.Gauge.set t.g_open 0.0
    end

  let stop t =
    Atomic.set t.stop_flag true;
    (try ignore (Unix.write_substring t.pipe_wr "x" 0 1) with Unix.Unix_error _ -> ())

  let pending_writes t =
    Hashtbl.fold (fun _ c n -> if c.out <> "" then n + 1 else n) t.conns 0

  let run t =
    while not (Atomic.get t.stop_flag) do
      ignore (poll t ~timeout:0.25)
    done;
    (* graceful drain: flush in-flight responses, bounded; idle persistent
       connections are simply closed — the peer sees EOF on its next call *)
    let deadline = Unix.gettimeofday () +. 1.0 in
    while pending_writes t > 0 && Unix.gettimeofday () < deadline do
      ignore (poll t ~timeout:0.05)
    done;
    close t
end

module Client = struct
  type t = {
    fd : Unix.file_descr;
    max_payload : int;
    inbuf : Buffer.t;
    mutable closed : bool;
    mutable trace : (string * string) list option; (* consumed by the next call *)
  }

  let connect ?(timeout = 5.0) ?(max_payload = Framing.default_max_payload)
      ?(host = "127.0.0.1") ~port () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout;
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
    with
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "connect %s:%d: %s" host port (Unix.error_message e))
    | () -> Ok { fd; max_payload; inbuf = Buffer.create 256; closed = false; trace = None }

  let set_trace t labels = t.trace <- labels

  let close t =
    if not t.closed then begin
      t.closed <- true;
      try Unix.close t.fd with Unix.Unix_error _ -> ()
    end

  let write_all t s =
    let rec go off =
      if off >= String.length s then Ok ()
      else
        match Unix.write_substring t.fd s off (String.length s - off) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          Error "write: timeout"
        | exception Unix.Unix_error (e, _, _) -> Error ("write: " ^ Unix.error_message e)
        | n -> go (off + n)
    in
    go 0

  (* Read until exactly one frame decodes; responses arrive strictly one
     per request, so leftover bytes belong to the next response's prefix. *)
  let read_frame t =
    let chunk = Bytes.create 4096 in
    let rec go () =
      match Framing.decode ~max_payload:t.max_payload (Buffer.contents t.inbuf) ~pos:0 with
      | Framing.Frame (f, stop) ->
        let data = Buffer.contents t.inbuf in
        let rest = String.sub data stop (String.length data - stop) in
        Buffer.clear t.inbuf;
        Buffer.add_string t.inbuf rest;
        Ok f
      | Framing.Corrupt m -> Error ("corrupt response: " ^ m)
      | Framing.Need_more -> (
        match Unix.read t.fd chunk 0 4096 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          Error "read: timeout"
        | exception Unix.Unix_error (e, _, _) -> Error ("read: " ^ Unix.error_message e)
        | 0 -> Error "read: connection closed"
        | n ->
          Buffer.add_subbytes t.inbuf chunk 0 n;
          go ())
    in
    go ()

  let call t frame =
    if t.closed then Error "call on closed connection"
    else begin
      let trace = t.trace in
      t.trace <- None;
      match write_all t (Framing.encode_traced ~max_payload:t.max_payload ?trace frame) with
      | Error _ as e -> e
      | Ok () -> read_frame t
    end
end
