(* From-scratch select-loop HTTP listener. Single-domain loop, non-blocking
   sockets, bounded buffering, self-pipe wakeup for cross-domain stop.
   No opam dependencies: Unix + the in-tree telemetry registry. *)

module Tel = Alpenhorn_telemetry.Telemetry

type request = {
  meth : string;
  path : string;
  query : (string * string) list;
  headers : (string * string) list;
}

type response = { status : int; content_type : string; body : string }
type handler = request -> response

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  opened_at : float;
  mutable scanned : int; (* head-terminator search resumes here, not at 0 *)
  mutable out : string;
  mutable out_off : int;
  mutable writing : bool;
}

type t = {
  listen_fd : Unix.file_descr;
  bound_port : int;
  handler : handler;
  max_request_bytes : int;
  conns : (Unix.file_descr, conn) Hashtbl.t; (* loop-domain only *)
  stop_flag : bool Atomic.t;
  pipe_rd : Unix.file_descr;
  pipe_wr : Unix.file_descr;
  mutable accepting : bool;
  mutable closed : bool;
  c_requests : int -> Tel.Counter.t;
  h_request : Tel.Histogram.t;
  g_open : Tel.Gauge.t;
}

let create ?(host = "127.0.0.1") ?(backlog = 16) ?(max_request_bytes = 8192) ~port handler =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  (try Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     Unix.close fd;
     raise e);
  Unix.listen fd backlog;
  Unix.set_nonblock fd;
  let bound_port =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | Unix.ADDR_UNIX _ -> port
  in
  let pipe_rd, pipe_wr = Unix.pipe () in
  Unix.set_nonblock pipe_rd;
  Unix.set_nonblock pipe_wr;
  let reg = Tel.default in
  {
    listen_fd = fd;
    bound_port;
    handler;
    max_request_bytes;
    conns = Hashtbl.create 16;
    stop_flag = Atomic.make false;
    pipe_rd;
    pipe_wr;
    accepting = true;
    closed = false;
    c_requests =
      (fun status ->
        Tel.Counter.v reg ~labels:[ ("status", string_of_int status) ] "net.requests");
    h_request = Tel.Histogram.v reg "net.request_seconds";
    g_open = Tel.Gauge.v reg "net.open_connections";
  }

let port t = t.bound_port

(* ---- request parsing ---- *)

let url_decode s =
  let n = String.length s in
  let b = Buffer.create n in
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None
  in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '+' -> Buffer.add_char b ' '
    | '%' when !i + 2 < n -> (
      match (hex s.[!i + 1], hex s.[!i + 2]) with
      | Some h, Some l ->
        Buffer.add_char b (Char.chr ((h * 16) + l));
        i := !i + 2
      | _ -> Buffer.add_char b '%')
    | c -> Buffer.add_char b c);
    incr i
  done;
  Buffer.contents b

let parse_query qs =
  String.split_on_char '&' qs
  |> List.filter_map (fun kv ->
         if kv = "" then None
         else
           match String.index_opt kv '=' with
           | None -> Some (url_decode kv, "")
           | Some i ->
             Some
               ( url_decode (String.sub kv 0 i),
                 url_decode (String.sub kv (i + 1) (String.length kv - i - 1)) ))

let parse_request head =
  let lines = String.split_on_char '\n' head |> List.map (fun l -> String.trim l) in
  match lines with
  | [] -> None
  | reqline :: rest -> (
    match String.split_on_char ' ' reqline |> List.filter (fun s -> s <> "") with
    | [ meth; target; version ]
      when String.length version >= 5 && String.sub version 0 5 = "HTTP/" ->
      let path_raw, query =
        match String.index_opt target '?' with
        | None -> (target, [])
        | Some i ->
          ( String.sub target 0 i,
            parse_query (String.sub target (i + 1) (String.length target - i - 1)) )
      in
      let headers =
        List.filter_map
          (fun l ->
            match String.index_opt l ':' with
            | None -> None
            | Some i ->
              Some
                ( String.lowercase_ascii (String.trim (String.sub l 0 i)),
                  String.trim (String.sub l (i + 1) (String.length l - i - 1)) ))
          rest
      in
      Some { meth = String.uppercase_ascii meth; path = url_decode path_raw; query; headers }
    | _ -> None)

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Status"

let render_response (r : response) =
  Printf.sprintf "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    r.status (status_text r.status) r.content_type (String.length r.body) r.body

(* ---- the loop ---- *)

let close_conn t c =
  Hashtbl.remove t.conns c.fd;
  (try Unix.close c.fd with Unix.Unix_error _ -> ());
  Tel.Gauge.set t.g_open (float_of_int (Hashtbl.length t.conns))

let respond t c (resp : response) =
  Tel.Counter.inc (t.c_requests resp.status);
  c.out <- render_response resp;
  c.out_off <- 0;
  c.writing <- true

(* The header terminator; tolerate bare-LF clients. The scan resumes at
   [c.scanned] (rewound 3 bytes so a terminator split across chunks is
   still seen) instead of offset 0 — a slow-trickle client used to cost a
   full rescan of the buffer per received chunk. [Buffer.nth] is O(1), so
   nothing is materialized until a terminator is actually found. *)
let head_complete (c : conn) =
  let b = c.inbuf in
  let n = Buffer.length b in
  let ch i = Buffer.nth b i in
  let rec find i =
    if i + 1 >= n then begin
      c.scanned <- Stdlib.max 0 (n - 3);
      None
    end
    else if i + 3 < n && ch i = '\r' && ch (i + 1) = '\n' && ch (i + 2) = '\r' && ch (i + 3) = '\n'
    then Some (Buffer.sub b 0 i)
    else if ch i = '\n' && ch (i + 1) = '\n' then Some (Buffer.sub b 0 i)
    else find (i + 1)
  in
  find c.scanned

let handle_readable t c =
  let chunk = Bytes.create 4096 in
  match Unix.read c.fd chunk 0 4096 with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> close_conn t c
  | 0 -> close_conn t c (* peer closed before completing a request *)
  | n -> (
    Buffer.add_subbytes c.inbuf chunk 0 n;
    if Buffer.length c.inbuf > t.max_request_bytes then
      respond t c
        {
          status = 431;
          content_type = "text/plain; charset=utf-8";
          body = "request head too large\n";
        }
    else
      match head_complete c with
      | None -> ()
      | Some head -> (
        match parse_request head with
        | None ->
          respond t c
            { status = 400; content_type = "text/plain; charset=utf-8"; body = "bad request\n" }
        | Some req ->
          let resp =
            try t.handler req
            with _ ->
              {
                status = 500;
                content_type = "text/plain; charset=utf-8";
                body = "internal error\n";
              }
          in
          respond t c resp))

let handle_writable t c =
  let remaining = String.length c.out - c.out_off in
  match Unix.write_substring c.fd c.out c.out_off remaining with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> close_conn t c
  | n ->
    c.out_off <- c.out_off + n;
    if c.out_off >= String.length c.out then begin
      Tel.Histogram.observe t.h_request (Unix.gettimeofday () -. c.opened_at);
      close_conn t c
    end

let accept_ready t =
  let rec go n =
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> n
    | exception Unix.Unix_error (_, _, _) -> n
    | fd, _ ->
      Unix.set_nonblock fd;
      Hashtbl.replace t.conns fd
        {
          fd;
          inbuf = Buffer.create 256;
          opened_at = Unix.gettimeofday ();
          scanned = 0;
          out = "";
          out_off = 0;
          writing = false;
        };
      Tel.Gauge.set t.g_open (float_of_int (Hashtbl.length t.conns));
      go (n + 1)
  in
  go 0

let drain_pipe t =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read t.pipe_rd buf 0 64 with
    | exception Unix.Unix_error _ -> ()
    | 0 -> ()
    | _ -> go ()
  in
  go ()

let poll t ~timeout =
  if t.closed then 0
  else begin
    if Atomic.get t.stop_flag then t.accepting <- false;
    let readers = ref [ t.pipe_rd ] and writers = ref [] in
    if t.accepting then readers := t.listen_fd :: !readers;
    Hashtbl.iter
      (fun fd c -> if c.writing then writers := fd :: !writers else readers := fd :: !readers)
      t.conns;
    match Unix.select !readers !writers [] timeout with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> 0
    | rs, ws, _ ->
      let progressed = ref 0 in
      List.iter
        (fun fd ->
          incr progressed;
          if fd = t.pipe_rd then drain_pipe t
          else if fd = t.listen_fd then ignore (accept_ready t)
          else match Hashtbl.find_opt t.conns fd with Some c -> handle_readable t c | None -> ())
        rs;
      List.iter
        (fun fd ->
          incr progressed;
          match Hashtbl.find_opt t.conns fd with Some c -> handle_writable t c | None -> ())
        ws;
      !progressed
  end

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (try Unix.close t.pipe_rd with Unix.Unix_error _ -> ());
    (try Unix.close t.pipe_wr with Unix.Unix_error _ -> ());
    Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) t.conns;
    Hashtbl.reset t.conns;
    Tel.Gauge.set t.g_open 0.0
  end

let stop t =
  Atomic.set t.stop_flag true;
  (* wake a parked select; harmless if nobody is parked *)
  try ignore (Unix.write_substring t.pipe_wr "x" 0 1) with Unix.Unix_error _ -> ()

let run t =
  while not (Atomic.get t.stop_flag) do
    ignore (poll t ~timeout:0.25)
  done;
  (* graceful drain: no new accepts (poll clears [accepting]); finish
     in-flight responses, bounded *)
  let deadline = Unix.gettimeofday () +. 2.0 in
  while Hashtbl.length t.conns > 0 && Unix.gettimeofday () < deadline do
    ignore (poll t ~timeout:0.05)
  done;
  close t

(* ---- minimal blocking HTTP client ---- *)

let fetch ?(timeout = 5.0) ?(host = "127.0.0.1") ~port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
  Fun.protect ~finally @@ fun () ->
  match
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout;
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
  with
  | exception Unix.Unix_error (e, _, _) ->
    (* The scraper's staleness logic keys on the failure class, so name
       it: "refused" = nothing listening (process dead), "timeout" = a
       peer that exists but does not answer (hung, or still booting). *)
    let klass =
      match e with
      | Unix.ECONNREFUSED -> "refused"
      | Unix.ETIMEDOUT | Unix.EINPROGRESS | Unix.EAGAIN | Unix.EWOULDBLOCK -> "timeout"
      | _ -> "error"
    in
    Error (Printf.sprintf "%s: connect %s:%d: %s" klass host port (Unix.error_message e))
  | () -> (
    let req = Printf.sprintf "GET %s HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n" path host in
    (* [Unix.write_substring] may send fewer bytes than asked (signal, small
       socket buffer): loop until the whole request is out. *)
    let rec write_all off =
      if off >= String.length req then Ok ()
      else
        match Unix.write_substring fd req off (String.length req - off) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all off
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          Error (Printf.sprintf "timeout: write stalled for %gs" timeout)
        | exception Unix.Unix_error (e, _, _) -> Error ("write: " ^ Unix.error_message e)
        | n -> write_all (off + n)
    in
    match write_all 0 with
    | Error _ as e -> e
    | Ok () -> (
      let buf = Bytes.create 65536 in
      let b = Buffer.create 4096 in
      let rec read_all () =
        match Unix.read fd buf 0 (Bytes.length buf) with
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          (* connected but silent: the accepted-then-hung case, distinct
             from "refused" above *)
          Error (Printf.sprintf "timeout: no response within %gs" timeout)
        | exception Unix.Unix_error (e, _, _) -> Error ("read: " ^ Unix.error_message e)
        | 0 -> Ok ()
        | n ->
          Buffer.add_subbytes b buf 0 n;
          read_all ()
      in
      match read_all () with
      | Error _ as e -> e
      | Ok () -> (
        let s = Buffer.contents b in
        (* split head/body on the first blank line *)
        let split =
          let rec find i =
            if i + 3 < String.length s && String.sub s i 4 = "\r\n\r\n" then Some (i, 4)
            else if i + 1 < String.length s && String.sub s i 2 = "\n\n" then Some (i, 2)
            else if i + 1 >= String.length s then None
            else find (i + 1)
          in
          find 0
        in
        match split with
        | None -> Error "malformed response: no header terminator"
        | Some (i, sep) -> (
          let head = String.sub s 0 i in
          let body = String.sub s (i + sep) (String.length s - i - sep) in
          match String.split_on_char ' ' (List.hd (String.split_on_char '\n' head)) with
          | _http :: code :: _ -> (
            match int_of_string_opt (String.trim code) with
            | Some status -> Ok (status, body)
            | None -> Error "malformed response: bad status code")
          | _ -> Error "malformed response: bad status line"))))
