(* Length-prefixed binary framing for the Alpenhorn wire protocol
   (DESIGN.md §13). A frame is

     len:u32be  tag:u8  payload:(len-1 bytes)

   [len] counts the tag byte plus the payload, so the minimum legal value
   is 1. The decoder is total: every input either yields a frame, asks for
   more bytes, or is rejected as corrupt — nothing raises on attacker
   bytes. An explicit payload ceiling turns absurd length prefixes into
   [Corrupt] immediately instead of buffering toward them. *)

type frame = { tag : int; payload : string }

let default_max_payload = 8 * 1024 * 1024

let be32 v =
  String.init 4 (fun i -> Char.chr ((v lsr (8 * (3 - i))) land 0xff))

let read_be32 s pos =
  (Char.code s.[pos] lsl 24)
  lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

let encode ?(max_payload = default_max_payload) { tag; payload } =
  if tag < 0 || tag > 0xff then invalid_arg "Framing.encode: tag out of range";
  if String.length payload > max_payload then invalid_arg "Framing.encode: payload too large";
  let b = Buffer.create (5 + String.length payload) in
  Buffer.add_string b (be32 (1 + String.length payload));
  Buffer.add_char b (Char.chr tag);
  Buffer.add_string b payload;
  Buffer.contents b

type decode_result =
  | Frame of frame * int
  | Need_more
  | Corrupt of string

let decode ?(max_payload = default_max_payload) s ~pos =
  let n = String.length s in
  if pos < 0 || pos > n then Corrupt "bad offset"
  else if n - pos < 4 then Need_more
  else begin
    let len = read_be32 s pos in
    if len < 1 then Corrupt "frame length 0"
    else if len - 1 > max_payload then
      Corrupt (Printf.sprintf "frame of %d bytes exceeds the %d-byte bound" (len - 1) max_payload)
    else if n - pos - 4 < len then Need_more
    else begin
      let tag = Char.code s.[pos + 4] in
      Frame ({ tag; payload = String.sub s (pos + 5) (len - 1) }, pos + 4 + len)
    end
  end

(* Total single-frame decoder: exactly one frame, nothing before or after. *)
let of_string ?max_payload s =
  match decode ?max_payload s ~pos:0 with
  | Frame (f, stop) when stop = String.length s -> Some f
  | Frame _ | Need_more | Corrupt _ -> None

(* ---- trace envelope (DESIGN.md §14) ----

   Cross-process trace propagation rides as a reserved wrapper tag, not a
   payload suffix: a suffix inside the frame length would be ambiguous
   against protocol bytes that happen to end in the trailer magic. A
   traced frame is one ordinary frame whose tag is [trace_tag] and whose
   payload is the label list (string pairs, [Fields] codec) followed by
   the complete encoding of the inner frame. The inner bytes are exactly
   [encode inner] — so the protocol payload an RPC handler sees is
   byte-identical with tracing on or off, and [encode_traced ~trace:None]
   IS [encode] (enforced by test). Trace labels never enter protocol
   payloads; they live only in this RPC transport envelope between
   orchestrator and servers (never inside onions or mailbox entries). *)

let trace_tag = 0xfe

let encode_labels labels =
  let b = Buffer.create 64 in
  let u32 v =
    if v < 0 || v > 0x3fffffff then invalid_arg "Framing.encode_traced: label size";
    Buffer.add_string b (be32 v)
  in
  let str s =
    u32 (String.length s);
    Buffer.add_string b s
  in
  u32 (List.length labels);
  List.iter
    (fun (k, v) ->
      str k;
      str v)
    labels;
  Buffer.contents b

let encode_traced ?max_payload ?trace frame =
  match trace with
  | None -> encode ?max_payload frame
  | Some labels ->
    let inner = encode ?max_payload frame in
    encode ?max_payload { tag = trace_tag; payload = encode_labels labels ^ inner }

let split_traced ?max_payload (f : frame) =
  if f.tag <> trace_tag then None
  else begin
    let src = f.payload in
    let pos = ref 0 in
    let remaining () = String.length src - !pos in
    let get_u32 () =
      if remaining () < 4 then None
      else begin
        let v = read_be32 src !pos in
        pos := !pos + 4;
        if v < 0 then None else Some v
      end
    in
    let get_str () =
      match get_u32 () with
      | None -> None
      | Some n ->
        if n > remaining () then None
        else begin
          let v = String.sub src !pos n in
          pos := !pos + n;
          Some v
        end
    in
    match get_u32 () with
    | None -> None
    | Some n ->
      (* bound the pair count by the bytes present: each pair costs at
         least its two 4-byte length prefixes *)
      if n > remaining () / 8 then None
      else begin
        let rec pairs i acc =
          if i = 0 then Some (List.rev acc)
          else
            match get_str () with
            | None -> None
            | Some k -> (
              match get_str () with
              | None -> None
              | Some v -> pairs (i - 1) ((k, v) :: acc))
        in
        match pairs n [] with
        | None -> None
        | Some labels -> (
          match of_string ?max_payload (String.sub src !pos (remaining ())) with
          | None -> None
          | Some inner -> if inner.tag = trace_tag then None else Some (labels, inner))
      end
  end

(* ---- field codec for frame payloads ----

   The same cursor style as the rest of the tree (Persist): a writer over
   [Buffer.t] and a total option-returning reader. Integers are u32be,
   floats ride as their IEEE-754 bits, strings and lists are
   length-prefixed. *)

module Fields = struct
  let u8 b v =
    if v < 0 || v > 0xff then invalid_arg "Fields.u8";
    Buffer.add_char b (Char.chr v)

  let u32 b v =
    if v < 0 || v > 0x3fffffff then invalid_arg "Fields.u32";
    Buffer.add_string b (be32 v)

  let f64 b v =
    let bits = Int64.bits_of_float v in
    for i = 7 downto 0 do
      Buffer.add_char b (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xffL)))
    done

  let str b s =
    u32 b (String.length s);
    Buffer.add_string b s

  let strs b l =
    u32 b (List.length l);
    List.iter (str b) l

  type cursor = { src : string; mutable pos : int }

  let cursor src = { src; pos = 0 }
  let finished c = c.pos = String.length c.src

  let get_u8 c =
    if c.pos + 1 > String.length c.src then None
    else begin
      let v = Char.code c.src.[c.pos] in
      c.pos <- c.pos + 1;
      Some v
    end

  let get_u32 c =
    if c.pos + 4 > String.length c.src then None
    else begin
      let v = read_be32 c.src c.pos in
      c.pos <- c.pos + 4;
      if v < 0 then None else Some v
    end

  let get_f64 c =
    if c.pos + 8 > String.length c.src then None
    else begin
      let bits = ref 0L in
      for i = 0 to 7 do
        bits := Int64.logor (Int64.shift_left !bits 8) (Int64.of_int (Char.code c.src.[c.pos + i]))
      done;
      c.pos <- c.pos + 8;
      Some (Int64.float_of_bits !bits)
    end

  let get_str c =
    match get_u32 c with
    | None -> None
    | Some n ->
      if c.pos + n > String.length c.src then None
      else begin
        let v = String.sub c.src c.pos n in
        c.pos <- c.pos + n;
        Some v
      end

  let get_strs c =
    match get_u32 c with
    | None -> None
    | Some n ->
      let rec go i acc =
        if i = 0 then Some (List.rev acc)
        else match get_str c with None -> None | Some s -> go (i - 1) (s :: acc)
      in
      (* bound list headers by the bytes actually present: each element
         costs at least its 4-byte length prefix *)
      if n > (String.length c.src - c.pos) / 4 then None else go n []
end
