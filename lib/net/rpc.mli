(** Framed request/response RPC over TCP (DESIGN.md §13).

    The {!Server} generalizes the {!Listener}'s non-blocking select
    machinery from HTTP to {!Framing} streams: connections are
    persistent, each request frame yields exactly one response frame (in
    order), and every connection carries its own partial-read and
    partial-write state so slow or bursty peers never block the loop. A
    [Corrupt] framing verdict drops the connection — stream framing
    errors are not recoverable.

    The {!Client} is deliberately blocking (socket timeouts bound every
    syscall): RPC callers in this tree are orchestrators issuing one call
    at a time per connection.

    Handler exceptions are caught and returned to the peer as an
    {!error_tag} frame carrying the exception text. *)

type handler = Framing.frame -> Framing.frame

type traced_handler = trace:(string * string) list option -> Framing.frame -> Framing.frame
(** A handler that also receives the trace labels carried by a
    {!Framing.trace_tag} envelope, when the request arrived in one. The
    frame it sees is always the inner protocol frame — byte-identical
    whether or not an envelope was present. *)

val error_tag : int
(** 0xff — response tag for handler failures; the payload is the error
    message. *)

val error_frame : string -> Framing.frame

module Server : sig
  type t

  val create :
    ?host:string -> ?backlog:int -> ?max_payload:int -> port:int -> handler -> t
  (** Bind and listen (non-blocking). [~port:0] picks an ephemeral port;
      read it back with {!port}. [host] defaults to localhost.
      @raise Unix.Unix_error when the bind fails. *)

  val create_traced :
    ?host:string -> ?backlog:int -> ?max_payload:int -> port:int -> traced_handler -> t
  (** Like {!create}, but the handler sees the trace labels of
      enveloped requests ([trace = None] for plain ones). {!create} is
      [create_traced] ignoring the labels. *)

  val port : t -> int

  val run : t -> unit
  (** Serve until {!stop}, then flush in-flight responses (bounded) and
      close every descriptor. Run this in its own domain or process. *)

  val poll : t -> timeout:float -> int
  (** One select iteration — accept, read, dispatch, write — returning
      the number of descriptors that made progress. {!run} is a loop over
      this; tests can single-step it instead. *)

  val stop : t -> unit
  (** Signal {!run} to finish. Safe from any domain or signal handler:
      sets an atomic flag and pokes the loop's wakeup pipe. *)

  val close : t -> unit
  (** Close all descriptors now. Idempotent; {!run} calls it on exit. *)
end

module Client : sig
  type t

  val connect :
    ?timeout:float -> ?max_payload:int -> ?host:string -> port:int -> unit ->
    (t, string) result
  (** TCP connect with [timeout] (default 5s) applied to every subsequent
      read and write on the connection. *)

  val set_trace : t -> (string * string) list option -> unit
  (** Arm (or disarm) the trace labels for the {e next} {!call} only: the
      call wraps its request in a {!Framing.trace_tag} envelope and
      clears the armament, so an untraced caller path never pays for
      tracing and protocol payload bytes are never touched. *)

  val call : t -> Framing.frame -> (Framing.frame, string) result
  (** Send one request frame, block for the one response frame. Partial
      writes and reads are looped; [EINTR] is retried; a timeout,
      connection loss, or corrupt response surfaces as [Error]. *)

  val close : t -> unit
end
