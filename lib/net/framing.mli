(** Length-prefixed binary framing for the Alpenhorn wire protocol
    (DESIGN.md §13).

    A frame on the wire is [len:u32be · tag:u8 · payload], where [len]
    counts the tag byte plus the payload. The decoder is {e total}:
    attacker-controlled bytes yield a frame, a request for more input, or
    a [Corrupt] verdict — never an exception — and a configurable payload
    ceiling rejects absurd length prefixes before any buffering happens.

    {!Fields} is the companion codec for frame payloads: u32be integers,
    IEEE-754 floats, length-prefixed strings and string lists, read back
    through a total option-returning cursor. *)

type frame = { tag : int; payload : string }

val default_max_payload : int
(** 8 MiB. *)

val encode : ?max_payload:int -> frame -> string
(** @raise Invalid_argument when the tag is outside [0, 255] or the
    payload exceeds the bound. *)

type decode_result =
  | Frame of frame * int  (** decoded frame and the offset just past it *)
  | Need_more  (** a prefix of a valid frame; read more bytes *)
  | Corrupt of string  (** not a frame; the connection should be dropped *)

val decode : ?max_payload:int -> string -> pos:int -> decode_result
(** Decode the frame starting at [pos]. Total: never raises on malformed
    input (a [pos] outside the string is reported as [Corrupt]). *)

val of_string : ?max_payload:int -> string -> frame option
(** Total single-frame decoder: [Some] iff the input is exactly one
    well-formed frame with no trailing bytes. *)

(** {1 Trace envelope (DESIGN.md §14)}

    Cross-process trace propagation rides as a reserved wrapper tag: a
    traced frame is an ordinary frame tagged {!trace_tag} whose payload
    is a label list followed by the {e complete, unmodified} encoding of
    the inner protocol frame. Protocol payload bytes are therefore
    byte-identical with tracing on or off (enforced by test), and trace
    labels exist only in the orchestrator↔server RPC transport — never
    inside onions, friend requests or mailbox entries (the Trace privacy
    invariant, DESIGN.md §9). *)

val trace_tag : int
(** 0xfe — reserved; protocol tags must avoid it (and {!Rpc.error_tag}
    0xff). *)

val encode_traced :
  ?max_payload:int -> ?trace:(string * string) list -> frame -> string
(** With [trace] absent this is exactly {!encode} — not one byte differs.
    With [trace] present, the frame is wrapped in a {!trace_tag} envelope
    carrying the labels. *)

val split_traced : ?max_payload:int -> frame -> ((string * string) list * frame) option
(** Unwrap a {!trace_tag} envelope into its labels and inner frame.
    [None] when the frame is not an envelope, or the envelope is
    malformed (truncated labels, trailing bytes, nested envelope) —
    total, like every decoder here. *)

(** Payload field codec: writers over [Buffer.t], total cursor readers. *)
module Fields : sig
  val u8 : Buffer.t -> int -> unit
  val u32 : Buffer.t -> int -> unit
  val f64 : Buffer.t -> float -> unit
  val str : Buffer.t -> string -> unit
  (** 4-byte length prefix, then the bytes. *)

  val strs : Buffer.t -> string list -> unit
  (** 4-byte count, then each string via {!str}. *)

  type cursor

  val cursor : string -> cursor
  val finished : cursor -> bool
  (** True when every byte has been consumed — callers reject trailing
      garbage with this. *)

  val get_u8 : cursor -> int option
  val get_u32 : cursor -> int option
  val get_f64 : cursor -> float option
  val get_str : cursor -> string option
  val get_strs : cursor -> string list option
end
