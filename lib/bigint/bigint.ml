(* Arbitrary-precision integers on 31-bit limbs.

   Representation invariant: [mag] is little-endian with no leading zero
   limb; [sign] is 0 iff [mag] is empty, otherwise -1 or 1. All functions
   below preserve this invariant via [make]. *)

let limb_bits = 31
let base = 1 lsl limb_bits
let mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

(* ---- magnitude helpers (arrays of limbs, unsigned) ---- *)

let mag_normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let make sign mag =
  let mag = mag_normalize mag in
  if Array.length mag = 0 then zero else { sign; mag }

let mag_compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land mask;
    carry := s lsr limb_bits
  done;
  r

(* requires a >= b *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if s < 0 then begin r.(i) <- s + base; borrow := 1 end
    else begin r.(i) <- s; borrow := 0 end
  done;
  assert (!borrow = 0);
  r

let mag_mul_schoolbook a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          (* ai*bj <= (2^31-1)^2 < 2^62; adding two limbs keeps it < 2^63 *)
          let s = (ai * b.(j)) + r.(i + j) + !carry in
          r.(i + j) <- s land mask;
          carry := s lsr limb_bits
        done;
        let k = ref (i + lb) in
        while !carry <> 0 do
          let s = r.(!k) + !carry in
          r.(!k) <- s land mask;
          carry := s lsr limb_bits;
          incr k
        done
      end
    done;
    r
  end

let karatsuba_threshold = 32

let rec mag_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else if la < karatsuba_threshold || lb < karatsuba_threshold then mag_mul_schoolbook a b
  else begin
    (* Karatsuba: split at half of the larger operand. *)
    let h = (Stdlib.max la lb + 1) / 2 in
    let lo x = mag_normalize (Array.sub x 0 (Stdlib.min h (Array.length x))) in
    let hi x = if Array.length x <= h then [||] else Array.sub x h (Array.length x - h) in
    let a0 = lo a and a1 = hi a and b0 = lo b and b1 = hi b in
    let z0 = mag_mul a0 b0 in
    let z2 = mag_mul a1 b1 in
    let sa = mag_normalize (mag_add a0 a1) and sb = mag_normalize (mag_add b0 b1) in
    let z1full = mag_mul sa sb in
    (* z1 = z1full - z0 - z2 *)
    let z1 = mag_normalize (mag_sub (mag_normalize z1full) (mag_normalize z0)) in
    let z1 = mag_normalize (mag_sub z1 (mag_normalize z2)) in
    let r = Array.make (la + lb + 1) 0 in
    let add_at ofs x =
      let carry = ref 0 in
      let lx = Array.length x in
      for i = 0 to lx - 1 do
        let s = r.(ofs + i) + x.(i) + !carry in
        r.(ofs + i) <- s land mask;
        carry := s lsr limb_bits
      done;
      let k = ref (ofs + lx) in
      while !carry <> 0 do
        let s = r.(!k) + !carry in
        r.(!k) <- s land mask;
        carry := s lsr limb_bits;
        incr k
      done
    in
    add_at 0 (mag_normalize z0);
    add_at h z1;
    add_at (2 * h) (mag_normalize z2);
    r
  end

let mag_shift_left a n =
  let la = Array.length a in
  if la = 0 then [||]
  else begin
    let limbs = n / limb_bits and bits = n mod limb_bits in
    let r = Array.make (la + limbs + 1) 0 in
    if bits = 0 then Array.blit a 0 r limbs la
    else
      for i = 0 to la - 1 do
        let v = a.(i) lsl bits in
        r.(i + limbs) <- r.(i + limbs) lor (v land mask);
        r.(i + limbs + 1) <- r.(i + limbs + 1) lor (v lsr limb_bits)
      done;
    r
  end

let mag_shift_right a n =
  let la = Array.length a in
  let limbs = n / limb_bits and bits = n mod limb_bits in
  if limbs >= la then [||]
  else begin
    let lr = la - limbs in
    let r = Array.make lr 0 in
    if bits = 0 then Array.blit a limbs r 0 lr
    else
      for i = 0 to lr - 1 do
        let lo = a.(i + limbs) lsr bits in
        let hi = if i + limbs + 1 < la then (a.(i + limbs + 1) lsl (limb_bits - bits)) land mask else 0 in
        r.(i) <- lo lor hi
      done;
    r
  end

let mag_numbits a =
  let la = Array.length a in
  if la = 0 then 0
  else begin
    let top = a.(la - 1) in
    let rec bits v acc = if v = 0 then acc else bits (v lsr 1) (acc + 1) in
    ((la - 1) * limb_bits) + bits top 0
  end

(* Knuth TAOCP vol 2, Algorithm D. [u] / [v] with len v >= 2, returns (q, r)
   magnitudes. *)
let mag_divmod_knuth u v =
  let n = Array.length v in
  let shift = limb_bits - (mag_numbits v - (n - 1) * limb_bits) in
  let v = mag_normalize (mag_shift_left v shift) in
  let u = mag_shift_left u shift in
  let m = (let lu = mag_numbits u in ((lu + limb_bits - 1) / limb_bits)) - n in
  let m = if m < 0 then 0 else m in
  let u = Array.append (Array.sub u 0 (Stdlib.min (Array.length u) (m + n))) [| 0 |] in
  let u =
    if Array.length u < m + n + 1 then Array.append u (Array.make (m + n + 1 - Array.length u) 0) else u
  in
  let q = Array.make (m + 1) 0 in
  let vtop = v.(n - 1) in
  let vtop2 = if n >= 2 then v.(n - 2) else 0 in
  for j = m downto 0 do
    (* Estimate qhat from the top two limbs of the current remainder. *)
    let num = (u.(j + n) lsl limb_bits) lor u.(j + n - 1) in
    let qhat = ref (num / vtop) and rhat = ref (num mod vtop) in
    if !qhat >= base then begin qhat := base - 1; rhat := num - !qhat * vtop end;
    let continue = ref true in
    while !continue && !rhat < base do
      if !qhat * vtop2 > (!rhat lsl limb_bits) lor (if n >= 2 then u.(j + n - 2) else 0) then begin
        decr qhat;
        rhat := !rhat + vtop
      end else continue := false
    done;
    (* Multiply and subtract: u[j..j+n] -= qhat * v *)
    let borrow = ref 0 and carry = ref 0 in
    for i = 0 to n - 1 do
      let p = !qhat * v.(i) + !carry in
      carry := p lsr limb_bits;
      let s = u.(i + j) - (p land mask) - !borrow in
      if s < 0 then begin u.(i + j) <- s + base; borrow := 1 end
      else begin u.(i + j) <- s; borrow := 0 end
    done;
    let s = u.(j + n) - !carry - !borrow in
    if s < 0 then begin
      (* qhat was one too large: add back *)
      u.(j + n) <- s + base;
      decr qhat;
      let c = ref 0 in
      for i = 0 to n - 1 do
        let t = u.(i + j) + v.(i) + !c in
        u.(i + j) <- t land mask;
        c := t lsr limb_bits
      done;
      u.(j + n) <- (u.(j + n) + !c) land mask
    end else u.(j + n) <- s;
    q.(j) <- !qhat
  done;
  let r = mag_shift_right (mag_normalize (Array.sub u 0 n)) shift in
  (mag_normalize q, mag_normalize r)

(* Division by a single limb. *)
let mag_divmod1 u d =
  let lu = Array.length u in
  let q = Array.make lu 0 in
  let r = ref 0 in
  for i = lu - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor u.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (mag_normalize q, !r)

let mag_divmod u v =
  match Array.length v with
  | 0 -> raise Division_by_zero
  | 1 ->
    let q, r = mag_divmod1 u v.(0) in
    (q, if r = 0 then [||] else [| r |])
  | _ ->
    if mag_compare u v < 0 then ([||], Array.copy u)
    else mag_divmod_knuth u v

(* ---- signed layer ---- *)

let sign t = t.sign
let is_zero t = t.sign = 0

(* Expose the 31-bit limb magnitude so fixed-width kernels (Montgomery
   arithmetic in lib/pairing) can convert without going through bytes. *)
let to_limbs t = Array.copy t.mag
let of_limbs limbs = make 1 (Array.copy limbs)

let of_int n =
  if n = 0 then zero
  else begin
    let s = if n < 0 then -1 else 1 in
    let n = abs n in
    let rec limbs n acc = if n = 0 then acc else limbs (n lsr limb_bits) ((n land mask) :: acc) in
    make s (Array.of_list (List.rev (limbs n [])))
  end

let one = of_int 1
let two = of_int 2

let to_int t =
  let l = Array.length t.mag in
  if l > 3 then failwith "Bigint.to_int: overflow"
  else begin
    let v = ref 0 in
    for i = l - 1 downto 0 do
      if !v > max_int lsr limb_bits then failwith "Bigint.to_int: overflow";
      v := (!v lsl limb_bits) lor t.mag.(i)
    done;
    !v * t.sign
  end

let compare a b =
  if a.sign <> b.sign then compare a.sign b.sign
  else if a.sign >= 0 then mag_compare a.mag b.mag
  else mag_compare b.mag a.mag

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let neg t = if t.sign = 0 then t else { t with sign = -t.sign }
let abs t = if t.sign < 0 then neg t else t

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then make a.sign (mag_add a.mag b.mag)
  else begin
    let c = mag_compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.sign (mag_sub a.mag b.mag)
    else make b.sign (mag_sub b.mag a.mag)
  end

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero else make (a.sign * b.sign) (mag_mul a.mag b.mag)

let mul_int a n = mul a (of_int n)
let sqr a = mul a a

let is_even t = Array.length t.mag = 0 || t.mag.(0) land 1 = 0

(* Euclidean divmod: remainder always in [0, |b|). *)
let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  let qm, rm = mag_divmod a.mag b.mag in
  let q = make (a.sign * b.sign) qm and r = make a.sign rm in
  if r.sign >= 0 then (q, r)
  else if b.sign > 0 then (sub q one, add r b)
  else (add q one, sub r b)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let shift_left t n =
  if n < 0 then invalid_arg "Bigint.shift_left" else make t.sign (mag_shift_left t.mag n)

let shift_right t n =
  if n < 0 then invalid_arg "Bigint.shift_right"
  else if t.sign >= 0 then make t.sign (mag_shift_right t.mag n)
  else begin
    (* arithmetic shift for negatives: floor division by 2^n *)
    let q, r = divmod t (shift_left one n) in
    ignore r; q
  end

let testbit t n =
  let limb = n / limb_bits and bit = n mod limb_bits in
  limb < Array.length t.mag && (t.mag.(limb) lsr bit) land 1 = 1

let numbits t = mag_numbits t.mag

let pow a n =
  if n < 0 then invalid_arg "Bigint.pow";
  let rec go acc base n =
    if n = 0 then acc
    else begin
      let acc = if n land 1 = 1 then mul acc base else acc in
      go acc (mul base base) (n lsr 1)
    end
  in
  go one a n

let mod_pow base_ exp m =
  if m.sign <= 0 then invalid_arg "Bigint.mod_pow: modulus";
  if exp.sign < 0 then invalid_arg "Bigint.mod_pow: exponent";
  let nb = numbits exp in
  let b = ref (rem base_ m) and acc = ref one in
  for i = 0 to nb - 1 do
    if testbit exp i then acc := rem (mul !acc !b) m;
    b := rem (mul !b !b) m
  done;
  !acc

let rec gcd a b = if is_zero b then abs a else gcd b (rem a b)

let mod_inv a m =
  (* extended Euclid on (a mod m, m) *)
  let rec go r0 r1 s0 s1 = if is_zero r1 then (r0, s0) else begin
    let q = div r0 r1 in
    go r1 (sub r0 (mul q r1)) s1 (sub s0 (mul q s1))
  end
  in
  let a = rem a m in
  let g, s = go a m one zero in
  if not (equal g one) then raise Division_by_zero;
  rem s m

(* ---- strings and bytes ---- *)

let of_bytes_be s =
  let n = String.length s in
  let acc = ref zero in
  for i = 0 to n - 1 do
    acc := add (shift_left !acc 8) (of_int (Char.code s.[i]))
  done;
  !acc

let to_bytes_be ?len t =
  let t = abs t in
  let nbytes = (numbits t + 7) / 8 in
  let nbytes = Stdlib.max nbytes 1 in
  let out_len = match len with
    | None -> nbytes
    | Some l -> if l < nbytes then invalid_arg "Bigint.to_bytes_be: len too small" else l
  in
  let b = Bytes.make out_len '\000' in
  let cur = ref t in
  for i = out_len - 1 downto 0 do
    if not (is_zero !cur) then begin
      let q, r = divmod !cur (of_int 256) in
      Bytes.set b i (Char.chr (to_int r));
      cur := q
    end
  done;
  Bytes.to_string b

let to_hex t =
  if is_zero t then "0"
  else begin
    let buf = Buffer.create 32 in
    if t.sign < 0 then Buffer.add_char buf '-';
    let bytes = to_bytes_be t in
    let started = ref false in
    String.iter
      (fun c ->
        let v = Char.code c in
        if !started then Buffer.add_string buf (Printf.sprintf "%02x" v)
        else if v <> 0 then begin started := true; Buffer.add_string buf (Printf.sprintf "%x" v) end)
      bytes;
    Buffer.contents buf
  end

let to_string t =
  if is_zero t then "0"
  else begin
    (* extract 9 decimal digits at a time *)
    let chunk = of_int 1_000_000_000 in
    let rec go v acc =
      if is_zero v then acc
      else begin
        let q, r = divmod v chunk in
        go q (to_int r :: acc)
      end
    in
    let parts = go (abs t) [] in
    let buf = Buffer.create 32 in
    if t.sign < 0 then Buffer.add_char buf '-';
    (match parts with
     | [] -> assert false
     | first :: rest ->
       Buffer.add_string buf (string_of_int first);
       List.iter (fun p -> Buffer.add_string buf (Printf.sprintf "%09d" p)) rest);
    Buffer.contents buf
  end

let of_string s =
  let fail () = invalid_arg "Bigint.of_string" in
  if String.length s = 0 then fail ();
  let negative = s.[0] = '-' in
  let s = if negative then String.sub s 1 (String.length s - 1) else s in
  if String.length s = 0 then fail ();
  let v =
    if String.length s > 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then begin
      let acc = ref zero in
      String.iter
        (fun c ->
          let d =
            match c with
            | '0' .. '9' -> Char.code c - Char.code '0'
            | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
            | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
            | '_' -> -1
            | _ -> fail ()
          in
          if d >= 0 then acc := add (shift_left !acc 4) (of_int d))
        (String.sub s 2 (String.length s - 2));
      !acc
    end
    else begin
      let acc = ref zero in
      String.iter
        (fun c ->
          match c with
          | '0' .. '9' -> acc := add (mul_int !acc 10) (of_int (Char.code c - Char.code '0'))
          | '_' -> ()
          | _ -> fail ())
        s;
      !acc
    end
  in
  if negative then neg v else v

(* ---- randomness and primality ---- *)

let random_bits ~rand_bytes bits =
  if bits <= 0 then zero
  else begin
    let nbytes = (bits + 7) / 8 in
    let s = rand_bytes nbytes in
    let excess = nbytes * 8 - bits in
    let b = Bytes.of_string s in
    Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) land (0xff lsr excess)));
    of_bytes_be (Bytes.to_string b)
  end

let random_below ~rand_bytes bound =
  if compare bound zero <= 0 then invalid_arg "Bigint.random_below";
  let bits = numbits bound in
  let rec go () =
    let v = random_bits ~rand_bytes bits in
    if compare v bound < 0 then v else go ()
  in
  go ()

let is_probable_prime ?(rounds = 24) ~rand n =
  let n = abs n in
  if compare n two < 0 then false
  else if equal n two || equal n (of_int 3) then true
  else if is_even n then false
  else begin
    (* n - 1 = d * 2^s *)
    let nm1 = sub n one in
    let rec split d s = if is_even d then split (shift_right d 1) (s + 1) else (d, s) in
    let d, s = split nm1 0 in
    let witness a =
      let a = rem a n in
      if is_zero a then false
      else begin
        let x = ref (mod_pow a d n) in
        if equal !x one || equal !x nm1 then false
        else begin
          let composite = ref true in
          (try
             for _ = 1 to s - 1 do
               x := rem (mul !x !x) n;
               if equal !x nm1 then begin composite := false; raise Exit end
             done
           with Exit -> ());
          !composite
        end
      end
    in
    if witness two || witness (of_int 3) then false
    else begin
      let bits = numbits n in
      let rec loop i =
        if i = 0 then true
        else begin
          let a = add two (rem (rand ~bits) (sub n (of_int 4))) in
          if witness a then false else loop (i - 1)
        end
      in
      loop rounds
    end
  end

let pp fmt t = Format.pp_print_string fmt (to_string t)
