(** Arbitrary-precision signed integers.

    Replaces [zarith] (unavailable in this sealed environment). Numbers are
    immutable; magnitudes are little-endian arrays of 31-bit limbs so that a
    limb product fits in OCaml's 63-bit native [int].

    This module backs all field arithmetic in the pairing and IBE layers, so
    the operations that matter are [mul], [divmod], [mod_pow] and [mod_inv].
    None of the operations here are constant-time; see {!Alpenhorn_crypto}
    for the timing-sensitivity discussion. *)

type t

(** {1 Constants and conversions} *)

val zero : t
val one : t
val two : t

val of_int : int -> t

val to_int : t -> int
(** @raise Failure if the value does not fit in a native [int]. *)

val of_string : string -> t
(** Decimal, with optional leading [-]; or hex with [0x] prefix.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string
(** Decimal representation. *)

val to_hex : t -> string
(** Lowercase hex, no [0x] prefix, ["0"] for zero. *)

val of_bytes_be : string -> t
(** Big-endian unsigned magnitude. *)

val to_limbs : t -> int array
(** Little-endian array of 31-bit limbs of the magnitude, no leading zero
    limb ([[||]] for zero). Fresh copy; safe to mutate. *)

val of_limbs : int array -> t
(** Non-negative value from little-endian 31-bit limbs (each in
    [[0, 2^31)]); leading zero limbs are allowed and stripped. *)

val to_bytes_be : ?len:int -> t -> string
(** Big-endian unsigned magnitude of the absolute value, left-padded with
    zero bytes to [len] when given.
    @raise Invalid_argument if the value needs more than [len] bytes. *)

(** {1 Comparisons} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool
val is_even : t -> bool
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val mul_int : t -> int -> t
val sqr : t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r] and [0 <= r < |b|]
    (Euclidean remainder, always non-negative).
    @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val pow : t -> int -> t
(** [pow a n] for [n >= 0]. @raise Invalid_argument on negative exponent. *)

(** {1 Bit operations} *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t
val testbit : t -> int -> bool
val numbits : t -> int
(** Number of significant bits of the magnitude; 0 for zero. *)

(** {1 Modular arithmetic} *)

val mod_pow : t -> t -> t -> t
(** [mod_pow base exp m] = [base^exp mod m] for [exp >= 0], [m > 0]. *)

val mod_inv : t -> t -> t
(** [mod_inv a m] is the inverse of [a] modulo [m].
    @raise Division_by_zero if [gcd a m <> 1]. *)

val gcd : t -> t -> t

(** {1 Number theory} *)

val is_probable_prime : ?rounds:int -> rand:(bits:int -> t) -> t -> bool
(** Miller-Rabin with 2 and 3 as fixed bases plus [rounds] random bases drawn
    from [rand] (default 24). *)

val random_bits : rand_bytes:(int -> string) -> int -> t
(** Uniform in [\[0, 2^bits)]. *)

val random_below : rand_bytes:(int -> string) -> t -> t
(** Uniform in [\[0, bound)] by rejection sampling. [bound > 0]. *)

(** {1 Pretty-printing} *)

val pp : Format.formatter -> t -> unit
