(** Lightweight runtime telemetry: counters, gauges, log-scale histograms
    and spans behind a zero-dependency registry.

    Design goals (DESIGN.md §7):

    - {b Cheap enough to leave on.} A counter hit is one lock-free atomic
      increment on a pre-resolved handle — no hashing, no allocation.
      Registration ([Counter.v] etc.) is the only slow path and happens
      once, at component construction.
    - {b Domain-safe.} Counters and gauges are atomics; histogram
      observations take a per-histogram mutex and the registry table /
      span list are mutex-guarded, so the parallel execution layer
      (DESIGN.md §11) can record metrics from worker domains. Clock swaps
      ({!set_clock} / {!with_clock}) are still reserved to the
      orchestrating domain, between parallel regions.
    - {b Clock-agnostic.} Every registry carries a clock. The default is
      wall time ({!wall_clock}); the discrete-event simulator swaps in the
      {!Alpenhorn_sim.Des} clock via {!with_clock}, so a simulated round
      emits the same trace schema as a real one. Each span records which
      clock it was measured on.
    - {b Snapshot / reset between rounds.} {!Snapshot.take} captures an
      immutable view; with [~reset:true] it also zeroes the live metrics,
      so per-round deltas are just snapshots.
    - {b Mergeable histograms.} All histograms share one fixed log-2
      bucket layout, so merging two snapshots is pointwise addition —
      associative and commutative, safe to combine across shards.

    Exporters: a human-readable table ({!Snapshot.pp_table}), a JSON
    snapshot ({!Snapshot.to_json}, consumed by [bench/]), and Chrome
    [trace_event] JSON ({!Snapshot.to_chrome_trace}) loadable in
    [about:tracing] / Perfetto for flamegraph viewing. *)

type registry

val create : ?clock:(unit -> float) -> ?clock_kind:string -> unit -> registry
(** A fresh registry. [clock] defaults to {!wall_clock} with kind
    ["wall"]; pass the DES clock with [~clock_kind:"sim"] for simulated
    time. *)

val default : registry
(** The process-wide registry all built-in instrumentation uses. *)

val wall_clock : unit -> float
(** [Unix.gettimeofday]. *)

val now : registry -> float
(** Current reading of the registry's clock. *)

val since_epoch : registry -> float
(** Current clock reading relative to the registry epoch — the timebase
    spans and structured events are recorded on. *)

val clock_kind : registry -> string

val set_clock : registry -> kind:string -> (unit -> float) -> unit
(** Swap the clock and re-anchor the epoch (span timestamps are relative
    to the moment of the swap). *)

val with_clock : registry -> kind:string -> (unit -> float) -> (unit -> 'a) -> 'a
(** Run a thunk under a temporary clock, restoring the previous clock,
    kind and epoch afterwards (exception-safe). Spans recorded inside keep
    their simulated timestamps. *)

(** {1 Metrics} *)

type labels = (string * string) list
(** Label sets distinguish instances of a metric (e.g.
    [("server", "0")]). They are sorted at registration, so order never
    matters. *)

module Counter : sig
  type t

  val v : registry -> ?labels:labels -> string -> t
  (** Find-or-create. Returns the {e same} handle for the same
      name + labels, so increments from different components aggregate.
      @raise Invalid_argument if the name is already registered as a
      different metric kind. *)

  val inc : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val v : registry -> ?labels:labels -> string -> t
  val set : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  (** Fixed log-2 bucket layout shared by every histogram: bucket [i]
      covers [[2^(i-32), 2^(i-31))], clamped at both ends — fine-grained
      enough for nanosecond latencies and million-message batch sizes
      alike. *)

  val bucket_count : int
  val bucket_of : float -> int
  val bucket_lower : int -> float
  (** Lower bound of bucket [i]. *)

  val v : registry -> ?labels:labels -> string -> t
  val observe : t -> float -> unit

  (** Immutable capture of a histogram; the mergeable form. *)
  type snap = {
    count : int;
    sum : float;
    min_v : float;  (** [infinity] when [count = 0] *)
    max_v : float;  (** [neg_infinity] when [count = 0] *)
    buckets : int array;
  }

  val empty : snap
  val snapshot : t -> snap

  val merge : snap -> snap -> snap
  (** Pointwise bucket addition; associative and commutative with
      [empty] as identity. *)

  val mean : snap -> float
  (** 0 when empty. *)

  val quantile : snap -> float -> float
  (** [quantile s q] with [q] in [0, 1]: estimate by linear interpolation
      inside the covering bucket, clamped to the observed min/max.
      0 when empty. *)
end

(** {1 Spans} *)

module Span : sig
  val with_ : registry -> ?labels:labels -> string -> (unit -> 'a) -> 'a
  (** Time a lexical scope on the registry clock. Nesting depth is
      tracked, so child spans render inside their parent in the trace
      view. Exception-safe: the span is recorded even if the thunk
      raises.

      A span is timed entirely on the clock in effect when it {e opens}:
      the epoch-relative start, the duration clock and the recorded clock
      kind are all captured at open. Swapping the registry clock
      ({!set_clock} / {!with_clock}) while a span is open therefore cannot
      mix timebases — the straddling span keeps its opening clock. *)

  val emit :
    registry -> ?labels:labels -> ?depth:int -> name:string -> ts:float -> dur:float -> unit -> unit
  (** Record a span with explicit timing — for event-driven code (the DES
      replay) where begin/end do not share a lexical scope. [ts] is an
      absolute clock reading; it is stored relative to the registry
      epoch. *)
end

(** {1 Snapshots and exporters} *)

module Snapshot : sig
  type span = {
    name : string;
    labels : labels;
    ts : float;  (** seconds since the registry epoch *)
    dur : float;  (** seconds *)
    depth : int;
    clock : string;  (** clock kind in effect when recorded *)
  }

  type t = {
    clock : string;  (** registry clock kind at capture time *)
    counters : (string * labels * int) list;
    gauges : (string * labels * float) list;
    histograms : (string * labels * Histogram.snap) list;
    spans : span list;  (** in recording order *)
    dropped_spans : int;
  }

  val take : ?reset:bool -> registry -> t
  (** Capture every metric and span, deterministically ordered by
      (name, labels). [~reset:true] zeroes counters, gauges and
      histograms, clears spans and re-anchors the epoch —
      snapshot-and-reset is how per-round deltas are produced.

      Reset is {e linearizable against concurrent writers}: each
      counter/gauge is captured and zeroed in a single atomic exchange,
      and each histogram in one critical section under its own lock, so
      an increment racing the reset lands either in this snapshot or in
      the live metric afterwards — never in both and never lost. Summing
      a series of reset snapshots plus the final live values therefore
      always equals everything ever recorded, regardless of how many
      worker domains are writing (the conservation law the 4-domain
      regression test in test_telemetry.ml asserts). Spans enqueued by
      another domain while [take] runs are not similarly protected:
      [push_span] takes the registry mutex, so a span lands wholly before
      or wholly after the snapshot. *)

  val counter_sum : t -> string -> int
  (** Sum over all label sets of a counter name (0 if absent). *)

  val find_counter : t -> ?labels:labels -> string -> int option
  val hist_sum : t -> string -> float
  (** Summed [sum] over all label sets of a histogram name. *)

  val span_total : t -> string -> float
  (** Total duration over all spans with this name. *)

  val span_count : t -> string -> int

  val pp_table : Format.formatter -> t -> unit
  (** Human-readable per-round table: counters, gauges, histogram
      count/mean/p50/p99/max, and per-name span rollups. *)

  val to_json : t -> string
  (** Self-contained JSON document (no dependencies; schema in
      DESIGN.md §7). *)

  val to_chrome_trace : t -> string
  (** Chrome [trace_event] JSON: one ["ph":"X"] complete event per span,
      timestamps in microseconds, track chosen from the ["server"] label
      when present. Loadable in [about:tracing]. *)
end

(** {1 Minimal JSON parser} *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val parse : string -> t option
  (** Strict RFC 8259 parser (no external dependencies). String escapes
      are decoded ([\uXXXX] to UTF-8, surrogate pairs combined, lone
      surrogates to U+FFFD). [None] on any deviation from the grammar. *)

  val is_valid : string -> bool
  (** [parse s <> None] — used by tests and the bench smoke target to
      validate emitted snapshots. *)

  val member : string -> t -> t option
  (** Object field lookup; [None] on non-objects. *)

  val index : int -> t -> t option
  val to_num : t -> float option
  val to_str : t -> string option

  val number_leaves : t -> (string * float) list
  (** Every numeric leaf with its dotted path (array elements indexed), in
      document order — the flattening {!Alpenhorn_bench_diff} compares
      across benchmark snapshots. *)
end
