(* Runtime/GC sampling: quick_stat deltas -> counters, heap levels ->
   gauges, a Gc alarm at every major-cycle end, and a forced-minor pause
   probe. No Gc.Memprof, no dependencies beyond Unix for the wall clock.

   The pause probe is deliberately honest about what it measures: a
   forced minor collection is a real stop-the-world evacuation of
   whatever the minor heap currently holds, so the observed duration is a
   genuine pause the program would have paid shortly anyway — we only
   choose the moment. It under-reports the worst case when the probe
   fires on a nearly-empty minor heap; the max over many samples
   converges on the true pause ceiling, which is what the SLO rule
   bounds. *)

module Tel = Telemetry

type t = {
  reg : Tel.registry;
  mu : Mutex.t; (* [sample] runs from both the orchestrator and the scrape domain *)
  mutable prev : Gc.stat;
  mutable alarm : Gc.alarm option;
  mutable last_probe : float; (* wall time of the last pause probe *)
  min_probe_interval : float;
  mutable max_pause : float; (* all-time, unaffected by registry resets *)
  (* end of the previous major cycle, wall time; written by whichever
     domain ends a cycle, hence atomic *)
  last_major_end : float Atomic.t;
  c_minor : Tel.Counter.t;
  c_major : Tel.Counter.t;
  c_compact : Tel.Counter.t;
  c_forced : Tel.Counter.t;
  c_minor_words : Tel.Counter.t;
  c_promoted : Tel.Counter.t;
  c_major_words : Tel.Counter.t;
  g_heap : Tel.Gauge.t;
  g_top_heap : Tel.Gauge.t;
  g_stack : Tel.Gauge.t;
  g_live : Tel.Gauge.t;
  g_free : Tel.Gauge.t;
  g_max_pause : Tel.Gauge.t;
  h_pause : Tel.Histogram.t;
  h_cycle : Tel.Histogram.t;
}

let install ?(registry = Tel.default) ?(min_probe_interval = 0.5) () =
  let reg = registry in
  let t =
    {
      reg;
      mu = Mutex.create ();
      prev = Gc.quick_stat ();
      alarm = None;
      last_probe = 0.0;
      min_probe_interval;
      max_pause = 0.0;
      last_major_end = Atomic.make (Unix.gettimeofday ());
      c_minor = Tel.Counter.v reg "runtime.gc.minor_collections";
      c_major = Tel.Counter.v reg "runtime.gc.major_collections";
      c_compact = Tel.Counter.v reg "runtime.gc.compactions";
      c_forced = Tel.Counter.v reg "runtime.gc.forced_major_collections";
      c_minor_words = Tel.Counter.v reg "runtime.alloc.minor_words";
      c_promoted = Tel.Counter.v reg "runtime.alloc.promoted_words";
      c_major_words = Tel.Counter.v reg "runtime.alloc.major_words";
      g_heap = Tel.Gauge.v reg "runtime.heap_words";
      g_top_heap = Tel.Gauge.v reg "runtime.top_heap_words";
      g_stack = Tel.Gauge.v reg "runtime.stack_words";
      g_live = Tel.Gauge.v reg "runtime.live_words";
      g_free = Tel.Gauge.v reg "runtime.free_words";
      g_max_pause = Tel.Gauge.v reg "runtime.gc.max_pause_seconds";
      h_pause = Tel.Histogram.v reg "runtime.gc.pause_seconds";
      h_cycle = Tel.Histogram.v reg "runtime.gc.major_cycle_seconds";
    }
  in
  let alarm =
    Gc.create_alarm (fun () ->
        (* end of a major cycle: observe the interval since the last one *)
        let now = Unix.gettimeofday () in
        let prev = Atomic.exchange t.last_major_end now in
        let dt = now -. prev in
        if dt > 0.0 then Tel.Histogram.observe t.h_cycle dt)
  in
  t.alarm <- Some alarm;
  t

(* Word-count deltas arrive as floats from quick_stat; saturate to int. *)
let word_delta cur prev =
  let d = cur -. prev in
  if d <= 0.0 then 0
  else if d >= float_of_int max_int then max_int
  else int_of_float d

let probe_pause t now =
  if now -. t.last_probe >= t.min_probe_interval then begin
    t.last_probe <- now;
    let t0 = Unix.gettimeofday () in
    Gc.minor ();
    let pause = Unix.gettimeofday () -. t0 in
    Tel.Histogram.observe t.h_pause pause;
    if pause > t.max_pause then t.max_pause <- pause;
    (* window max: the gauge is zeroed by snapshot resets, so keep it at
       the largest probe of the current window *)
    if pause > Tel.Gauge.value t.g_max_pause then Tel.Gauge.set t.g_max_pause pause
  end

let sample ?(full = false) t =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) @@ fun () ->
  let s = if full then Gc.stat () else Gc.quick_stat () in
  let p = t.prev in
  t.prev <- s;
  Tel.Counter.add t.c_minor (max 0 (s.Gc.minor_collections - p.Gc.minor_collections));
  Tel.Counter.add t.c_major (max 0 (s.Gc.major_collections - p.Gc.major_collections));
  Tel.Counter.add t.c_compact (max 0 (s.Gc.compactions - p.Gc.compactions));
  Tel.Counter.add t.c_forced
    (max 0 (s.Gc.forced_major_collections - p.Gc.forced_major_collections));
  Tel.Counter.add t.c_minor_words (word_delta s.Gc.minor_words p.Gc.minor_words);
  Tel.Counter.add t.c_promoted (word_delta s.Gc.promoted_words p.Gc.promoted_words);
  Tel.Counter.add t.c_major_words (word_delta s.Gc.major_words p.Gc.major_words);
  Tel.Gauge.set t.g_heap (float_of_int s.Gc.heap_words);
  Tel.Gauge.set t.g_top_heap (float_of_int s.Gc.top_heap_words);
  Tel.Gauge.set t.g_stack (float_of_int s.Gc.stack_size);
  if full then begin
    Tel.Gauge.set t.g_live (float_of_int s.Gc.live_words);
    Tel.Gauge.set t.g_free (float_of_int s.Gc.free_words)
  end;
  probe_pause t (Unix.gettimeofday ())

(* Process-wide sampler on the default registry, installed on first use.
   Guarded by a mutex rather than Lazy: first use can race between the
   orchestrating domain and a scrape domain. *)
let default_mu = Mutex.create ()
let default_ref : t option ref = ref None

let get_default () =
  Mutex.lock default_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock default_mu) @@ fun () ->
  match !default_ref with
  | Some t -> t
  | None ->
    let t = install () in
    default_ref := Some t;
    t

let uninstall t =
  match t.alarm with
  | Some a ->
    Gc.delete_alarm a;
    t.alarm <- None
  | None -> ()

let max_pause_seconds t = t.max_pause
