(** Fleet collector: an orchestrator-side scraper that polls the
    [/metrics.json] endpoint of every process in a multi-process
    deployment, merges the per-process snapshots into one fleet snapshot
    under [instance]/[role] labels, keeps fleet history in a
    {!Timeseries} ring, and evaluates fleet-wide SLO rules over the
    merged view (DESIGN.md §14).

    The HTTP client is {e injected}: [lib/net] depends on this library,
    so the collector takes a {!fetch} function ([Listener.fetch] in the
    CLI, a canned-document function in tests). The orchestrator's own
    registry joins the fleet as a {!Local} instance — no loopback HTTP
    round trip for the process doing the scraping.

    Staleness semantics: a failed scrape freezes the instance's last
    good snapshot in the merged view (cumulative metrics stay truthful)
    while two synthetic gauges report the failure —
    [fleet.instance_up{instance,role}] drops to [0] and
    [fleet.staleness_seconds{instance,role}] climbs — so the stock
    {!Slo} engine turns a dead or hung process into an SLO breach with
    no new machinery. The fetch error's class prefix ([refused] = dead,
    [timeout] = hung) is kept in the instance status for operators. *)

type fetch = host:string -> port:int -> string -> (int * string, string) result
(** The shape of {!Alpenhorn_net.Listener.fetch} applied to a path:
    [(status, body)] on success, a class-prefixed message on failure. *)

type target =
  | Remote of { host : string; port : int }  (** scrape [GET /metrics.json] *)
  | Local of Telemetry.registry  (** snapshot in-process, no HTTP *)

type instance = { name : string; role : string; mutable target : target }

val instance : ?role:string -> name:string -> target -> instance
(** [role] defaults to the [name] prefix before the first ['-']
    (["mixer-2"] → ["mixer"]), or the whole name without one. *)

type status =
  | Fresh  (** the last scrape succeeded *)
  | Stale of string  (** scraped successfully before; now failing (reason) *)
  | Never of string  (** no successful scrape yet (reason) *)

type t

val create : ?capacity:int -> ?clock:(unit -> float) -> fetch:fetch -> instance list -> t
(** [capacity] (default 720) sizes the fleet {!Timeseries} ring; [clock]
    (default {!Telemetry.wall_clock}) timestamps scrapes and staleness.
    @raise Invalid_argument on an empty list or duplicate names. *)

val instances : t -> instance list

val set_target : t -> name:string -> target -> unit
(** Repoint one instance — a respawned server comes back on fresh
    ephemeral ports. @raise Invalid_argument on an unknown name. *)

val scrape : t -> unit
(** Poll every instance once, rebuild the merged fleet snapshot
    (instance labels + liveness gauges) and append it to the ring.
    Failures are recorded per instance, never raised. *)

val merged : t -> Telemetry.Snapshot.t
(** The fleet snapshot from the most recent {!scrape} (empty before the
    first). Every metric and span carries the owning instance's labels;
    the synthetic [fleet.instance_up] / [fleet.staleness_seconds] gauges
    cover all instances, scraped or not. *)

val ring : t -> Timeseries.t
val scrapes : t -> int

val status : t -> (string * status * float) list
(** Per instance: name, scrape status and seconds since last success. *)

val fleet_rules :
  ?max_staleness:float ->
  ?rpc_p99_ceiling:float ->
  ?rpc_max_ceiling:float ->
  ?round_ceiling:float ->
  unit ->
  Slo.rule list
(** Fleet-wide rules over the merged snapshot: zero [rpc.errors] summed
    over every instance, every [fleet.instance_up] at [1] (Gauge_min —
    the worst instance), stalest instance under [max_staleness],
    label-merged [rpc.request_seconds] p99 and single-invocation max
    under their ceilings, and the orchestrator's [net.round] span max
    under [round_ceiling]. All ceilings default to [infinity] (armed
    only when passed). *)

val evaluate : t -> Slo.rule list -> Slo.report
(** The rules against the current merged snapshot. *)

val traces : t -> (int * (Trace.ctx * Telemetry.Snapshot.span) list) list
(** {!Trace.traces} over the merged snapshot: spans emitted by different
    processes under the same trace id stitch into one timeline, each
    span still carrying its [instance] label. *)

val trace_instances : (Trace.ctx * Telemetry.Snapshot.span) list -> string list
(** Distinct [instance] labels appearing in one stitched trace, sorted. *)

val cross_process_traces :
  ?min_instances:int -> t -> (int * (Trace.ctx * Telemetry.Snapshot.span) list) list
(** Traces whose spans cover at least [min_instances] (default 2)
    distinct instances — the proof that propagation crossed processes. *)

(** {1 Dashboard rows} *)

type row = {
  row_name : string;
  row_role : string;
  row_up : bool;
  row_status : string;  (** ["up"], or the class-prefixed fetch error *)
  row_staleness : float;
  row_rpc_calls : int;
  row_rpc_errors : int;
  row_rpc_p99 : float;  (** seconds; [0.] before any request *)
  row_spans : int;
  row_heap_words : float;  (** [0.] when the instance samples no runtime stats *)
}

val rows : t -> row list
(** One row per instance from its last known snapshot — the [top
    --fleet] data source. *)

(** {1 Parsing (exposed for tests)} *)

val snapshot_of_json : Telemetry.Json.t -> (Telemetry.Snapshot.t, string) result
(** Parse a [/metrics.json] document (bare, or wrapped under a
    ["telemetry"] member) back into a snapshot. *)

val merge_snapshots : (string * string * Telemetry.Snapshot.t) list -> Telemetry.Snapshot.t
(** [(name, role, snapshot)] parts merged under instance labels —
    {!scrape}'s merge step without the polling. *)
