(** Fixed-capacity time-series ring over telemetry snapshots, with
    windowed queries (DESIGN.md §12).

    Snapshots are point-in-time; an operator watching a live deployment
    needs {e history}: rounds per second over the last minute, the p99
    unwrap latency of the last five minutes, the heap-growth trend. A
    {!t} is a ring of timestamped samples — each sample is the cumulative
    counters, gauges and histogram states of one
    {!Telemetry.Snapshot.take} — recorded at round boundaries (and on
    scrape by the metrics listener). The ring overwrites its oldest
    sample when full, so recording is O(metrics) forever and a server
    that runs for months keeps a bounded sliding window.

    Windowed queries work on {e deltas between consecutive samples},
    clamped at zero, so they stay correct across
    [Snapshot.take ~reset:true] boundaries (a reset makes the next
    cumulative value smaller; the clamp discards exactly that
    discontinuity and nothing else):

    - {!rate}: counter increase per second over the window.
    - {!gauge_stats}: min / max / last of a gauge over the window.
    - {!hist_window} / {!quantile}: the merged {e delta} histogram of the
      window (bucket-wise, the increments of each consecutive pair), so
      p50/p99 describe only observations inside the window.
    - {!points}: one value per sample for sparklines — a counter yields
      its per-interval rate, a gauge its level, a histogram its
      per-interval observation count.

    Metric keys are [name] or [name{k=v,...}] (labels sorted): an exact
    labeled key selects one instance, a bare name label-merges every
    instance (counters sum, gauges max, histograms merge).

    Timestamps come from the owning registry's clock, so a DES-driven
    simulation records simulated seconds and a live deployment wall
    seconds — the queries and the [top] dashboard work identically on
    both. {!to_jsonl}/{!of_jsonl} round-trip the ring as JSON-lines (one
    sample per line), which is how [serve-metrics --record] persists a
    run and [top --replay] watches it offline. *)

type t

val create : ?capacity:int -> Telemetry.registry -> t
(** Ring of [capacity] samples (default 720) recording from the given
    registry.
    @raise Invalid_argument if [capacity < 2] (windows need pairs). *)

val create_detached : ?capacity:int -> unit -> t
(** A ring not bound to a registry — populated via {!record_snapshot},
    {!record_json} or {!of_jsonl} (replay and remote-poll modes).
    {!record} on a detached ring raises [Invalid_argument]. *)

val default : t
(** Process-wide ring on {!Telemetry.default}; [Deployment] and
    [Round_sim] record into it at every round close, so it fills during
    real rounds with no configuration. *)

val record : t -> unit
(** Append one sample: [Snapshot.take] (no reset) at the registry
    clock's current reading. A clock reading {e earlier} than the newest
    retained sample means the registry clock was restarted (a new DES
    run): the ring clears and starts a new epoch, so windows never mix
    two timelines. Thread-safe. *)

val record_snapshot : t -> ts:float -> Telemetry.Snapshot.t -> unit
(** Append an externally captured snapshot at an explicit timestamp.
    @raise Invalid_argument if [ts] precedes the newest sample. *)

val record_json : t -> ts:float -> Telemetry.Json.t -> (unit, string) result
(** Append a sample parsed from a [/metrics.json] document (the
    {!Telemetry.Snapshot.to_json} schema, or the [--metrics-json]
    wrapper with a ["telemetry"] member) — the [top] dashboard's remote
    polling path. *)

val capacity : t -> int
val length : t -> int
val clear : t -> unit

val last_ts : t -> float option
(** Timestamp of the newest sample. *)

val span_seconds : t -> float
(** [newest ts - oldest ts]; [0.] with fewer than two samples. *)

val names : t -> string list
(** Every metric key observed across retained samples (bare and labeled
    forms), sorted. *)

val matches : q:string -> string -> bool
(** [matches ~q key]: does ring key [key] answer query [q]? True on an
    exact match, or when [q] is a bare name and [key] a labeled instance
    of it ([q ^ "{...}"]). *)

val rate : t -> ?window:float -> string -> float
(** Counter increase per second over the trailing [window] seconds
    (default: the whole ring), reset-tolerant as described above. [0.]
    when the key is absent or the window holds fewer than two samples. *)

val gauge_stats : t -> ?window:float -> string -> (float * float * float) option
(** [(min, max, last)] of a gauge over the window; [None] if absent. *)

val hist_window : t -> ?window:float -> string -> Telemetry.Histogram.snap
(** Merged delta histogram of the window ({!Telemetry.Histogram.empty}
    when absent). Bucket bounds are the shared log-2 layout; [min_v] /
    [max_v] are bucket-resolution estimates. *)

val quantile : t -> ?window:float -> string -> float -> float
(** [quantile t name q] over {!hist_window}; [0.] when empty. *)

val points : t -> ?window:float -> string -> (float * float) list
(** Sparkline series, oldest first (see above for the per-kind value).
    Counter and histogram series have one point per consecutive pair
    (timestamped at the newer sample); gauges one per sample. *)

val to_jsonl : t -> string
(** One self-contained JSON object per retained sample, oldest first;
    every line satisfies {!Telemetry.Json.is_valid}. *)

val of_jsonl : string -> (t, string) result
(** Parse a {!to_jsonl} dump into a detached ring sized to fit it
    exactly. [Error] names the first offending line. *)
