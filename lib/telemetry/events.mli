(** Structured event log: a fixed-capacity ring of severity-tagged events
    (DESIGN.md §9).

    Metrics aggregate; events narrate. Round starts and closes, chunk
    forwards, rate-limit trips, cache evictions and decode failures land
    here with a timestamp on the owning registry's clock (epoch-relative,
    like spans), a severity, optional labels and a free-form detail
    string. The ring overwrites its oldest entry when full — logging is
    O(1) forever, and the number of overwritten events is reported as
    {!dropped} — so the log is safe to leave enabled in a server that runs
    for months.

    The JSON-lines exporter ({!to_jsonl}) emits one self-contained JSON
    object per line; the [--events FILE] CLI flag writes it, and a
    simulated round produces the same schema as a wall-clock one (the
    [clock] field tells them apart). *)

type severity = Debug | Info | Warn | Error

val severity_to_string : severity -> string
val severity_of_string : string -> severity option

type event = {
  ts : float;  (** seconds since the registry epoch, on its clock *)
  clock : string;  (** clock kind at logging time ("wall" / "sim") *)
  severity : severity;
  name : string;  (** dotted event name, e.g. ["round.close"] *)
  labels : Telemetry.labels;
  detail : string;
}

type t

val create : ?capacity:int -> Telemetry.registry -> t
(** Ring of [capacity] slots (default 4096) timestamped on [reg]'s
    clock.
    @raise Invalid_argument if [capacity < 1]. *)

val default : t
(** Process-wide log all built-in instrumentation writes to, bound to
    {!Telemetry.default}. *)

val log :
  t -> ?severity:severity -> ?labels:Telemetry.labels -> ?detail:string -> string -> unit
(** Append one event ([severity] defaults to [Info]). O(1); overwrites
    the oldest event when the ring is full. *)

val capacity : t -> int
val length : t -> int

val dropped : t -> int
(** Events overwritten since creation (or the last {!clear}). *)

val to_list : t -> event list
(** Retained events, oldest first. *)

val clear : t -> unit

val event_to_json : event -> string
(** One event as a self-contained JSON object (no trailing newline). *)

val to_jsonl : t -> string
(** JSON-lines: every retained event, oldest first, one object per line.
    Each line individually satisfies {!Telemetry.Json.is_valid}. *)
