(** Per-message causal tracing (DESIGN.md §9).

    A sampled message gets a {!ctx} — (trace id, span id, parent) — that
    follows it out-of-band as it flows client → entry → each mixnet hop →
    mailbox → recipient scan. Each stage records an ordinary
    {!Telemetry.Span} whose labels carry the context ([trace], [span],
    [parent]), so every existing exporter (table, JSON, Chrome
    [trace_event]) already understands traced spans, and the spans of one
    message stitch into a causal chain across servers and even across
    clock domains (a simulated round and a wall-clock round produce the
    same schema).

    {b Privacy invariant: a context never touches the wire.} Contexts are
    OCaml values carried alongside messages; serialized onions, friend
    requests and mailbox entries are byte-identical with tracing enabled
    or disabled (enforced by test). A trace id inside a ciphertext or
    header would be a linkable tag that defeats the mixnet — see
    DESIGN.md §9.

    Sampling uses a private deterministic generator, never the protocol
    DRBG, so enabling tracing cannot perturb a seeded run. *)

type ctx = {
  trace_id : int;  (** one per sampled message *)
  span_id : int;  (** unique within the tracer *)
  parent : int option;  (** parent span id; [None] for the root *)
}

type t
(** A tracer: sampling state plus the registry traced spans land in. *)

val create : ?rate:float -> ?seed:int -> Telemetry.registry -> t
(** [rate] in [0, 1] is the fraction of candidate messages that get a
    context (default 1.0 — trace everything); [seed] makes the sampling
    sequence reproducible.
    @raise Invalid_argument if [rate] is outside [0, 1]. *)

val rate : t -> float
val registry : t -> Telemetry.registry

val sample : t -> ctx option
(** Sampling decision for one candidate message: a fresh root context, or
    [None] (the message flows untraced). Deterministic given [seed]. *)

val child : t -> ctx -> ctx
(** A child context for the next causal stage of the same trace. *)

(** {1 Recording} *)

val emit :
  t -> ctx -> ?labels:Telemetry.labels -> name:string -> ts:float -> dur:float -> unit -> unit
(** Record a span for this context with explicit timing (event-driven
    code, e.g. the DES replay). [ts] is an absolute reading of the
    registry clock, as for {!Telemetry.Span.emit}. *)

val with_ : t -> ctx -> ?labels:Telemetry.labels -> string -> (unit -> 'a) -> 'a
(** Time a lexical scope as a span of this context. *)

(** {1 Label encoding} *)

val labels_of : ctx -> Telemetry.labels
val ctx_of_labels : Telemetry.labels -> ctx option

(** {1 Stitching a snapshot back into traces} *)

val spans_of : Telemetry.Snapshot.t -> (ctx * Telemetry.Snapshot.span) list
(** Every traced span in the snapshot, with its decoded context. *)

val traces : Telemetry.Snapshot.t -> (int * (ctx * Telemetry.Snapshot.span) list) list
(** Traced spans grouped by trace id, each group sorted by start time —
    the stitched causal timeline of one message. *)

val find_span : Telemetry.Snapshot.t -> trace_id:int -> span_id:int -> (ctx * Telemetry.Snapshot.span) option

val pp_timelines : Format.formatter -> Telemetry.Snapshot.t -> unit
(** Human-readable per-message timeline summary: one block per trace,
    one line per span ([ts +dur [span <-parent] name{labels} (clock)]). *)
