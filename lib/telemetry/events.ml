(* Fixed-capacity structured event log. A ring buffer so a long-lived
   server can leave it on: when full, the oldest event is overwritten and
   counted in [dropped] — logging stays O(1) and allocation-bounded no
   matter how long the process runs. *)

type severity = Debug | Info | Warn | Error

let severity_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let severity_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type event = {
  ts : float;
  clock : string;
  severity : severity;
  name : string;
  labels : Telemetry.labels;
  detail : string;
}

type t = {
  mu : Mutex.t; (* the ring is logged to from pool worker domains *)
  reg : Telemetry.registry;
  ring : event option array;
  mutable head : int; (* next write position *)
  mutable len : int;
  mutable dropped : int;
}

let default_capacity = 4096

let create ?(capacity = default_capacity) reg =
  if capacity < 1 then invalid_arg "Events.create: capacity";
  { mu = Mutex.create (); reg; ring = Array.make capacity None; head = 0; len = 0; dropped = 0 }

let default = create Telemetry.default

let capacity t = Array.length t.ring
let length t = t.len
let dropped t = t.dropped

let log t ?(severity = Info) ?(labels = []) ?(detail = "") name =
  let cap = Array.length t.ring in
  let ev =
    {
      ts = Telemetry.since_epoch t.reg;
      clock = Telemetry.clock_kind t.reg;
      severity;
      name;
      labels = List.sort_uniq compare labels;
      detail;
    }
  in
  Mutex.lock t.mu;
  if t.len = cap then t.dropped <- t.dropped + 1 else t.len <- t.len + 1;
  t.ring.(t.head) <- Some ev;
  t.head <- (t.head + 1) mod cap;
  Mutex.unlock t.mu

let to_list t =
  Mutex.lock t.mu;
  let cap = Array.length t.ring in
  let start = (t.head - t.len + cap) mod cap in
  let l =
    List.init t.len (fun i ->
        match t.ring.((start + i) mod cap) with
        | Some ev -> ev
        | None -> assert false (* len counts only written slots *))
  in
  Mutex.unlock t.mu;
  l

let clear t =
  Mutex.lock t.mu;
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0;
  Mutex.unlock t.mu

(* ---- JSON-lines exporter ---- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f = if Float.is_finite f then Printf.sprintf "%.9g" f else "0"

let event_to_json ev =
  let labels =
    String.concat ","
      (List.map
         (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
         ev.labels)
  in
  Printf.sprintf
    "{\"ts\":%s,\"clock\":\"%s\",\"severity\":\"%s\",\"name\":\"%s\",\"labels\":{%s},\"detail\":\"%s\"}"
    (json_float ev.ts) (json_escape ev.clock)
    (severity_to_string ev.severity)
    (json_escape ev.name) labels (json_escape ev.detail)

let to_jsonl t =
  let b = Buffer.create 4096 in
  List.iter
    (fun ev ->
      Buffer.add_string b (event_to_json ev);
      Buffer.add_char b '\n')
    (to_list t);
  Buffer.contents b
