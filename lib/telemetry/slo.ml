(* Declarative SLO rules evaluated over immutable snapshots: the health
   engine never touches live metrics, so evaluation is free of
   observer effects and a simulated round is checked by exactly the same
   rules as a wall-clock one. *)

type source =
  | Counter of string
  | Gauge of string
  | Gauge_min of string
  | Hist_mean of string
  | Hist_p99 of string
  | Hist_max of string
  | Span_total of string
  | Span_max of string
  | Span_count of string
  | Hit_rate of string * string

type cmp = Le | Ge

type rule = { name : string; description : string; source : source; cmp : cmp; threshold : float }

let rule ~name ~description source cmp threshold = { name; description; source; cmp; threshold }

(* Gauges keep one value per label set; health cares about the worst.
   For a ceiling the worst is the max, for a floor it is the min. *)
let gauge_fold f (snap : Telemetry.Snapshot.t) name =
  List.fold_left
    (fun acc (n, _, v) -> if n = name then Some (match acc with None -> v | Some a -> f a v) else acc)
    None snap.gauges

let gauge_max snap name = gauge_fold Float.max snap name
let gauge_min snap name = gauge_fold Float.min snap name

let hist_merged (snap : Telemetry.Snapshot.t) name =
  let merged =
    List.fold_left
      (fun acc (n, _, s) -> if n = name then Telemetry.Histogram.merge acc s else acc)
      Telemetry.Histogram.empty snap.histograms
  in
  if merged.Telemetry.Histogram.count = 0 then None else Some merged

let span_max (snap : Telemetry.Snapshot.t) name =
  List.fold_left
    (fun acc (sp : Telemetry.Snapshot.span) ->
      if sp.name = name then Some (match acc with None -> sp.dur | Some a -> Float.max a sp.dur)
      else acc)
    None snap.spans

let counter_opt (snap : Telemetry.Snapshot.t) name =
  if List.exists (fun (n, _, _) -> n = name) snap.counters then
    Some (float_of_int (Telemetry.Snapshot.counter_sum snap name))
  else None

let rec value_of snap = function
  | Counter n -> counter_opt snap n
  | Gauge n -> gauge_max snap n
  | Gauge_min n -> gauge_min snap n
  | Hist_mean n -> Option.map Telemetry.Histogram.mean (hist_merged snap n)
  | Hist_p99 n -> Option.map (fun s -> Telemetry.Histogram.quantile s 0.99) (hist_merged snap n)
  | Hist_max n -> Option.map (fun s -> s.Telemetry.Histogram.max_v) (hist_merged snap n)
  | Span_total n ->
    if Telemetry.Snapshot.span_count snap n = 0 then None
    else Some (Telemetry.Snapshot.span_total snap n)
  | Span_max n -> span_max snap n
  | Span_count n -> Some (float_of_int (Telemetry.Snapshot.span_count snap n))
  | Hit_rate (hits, misses) -> begin
    match (value_of snap (Counter hits), value_of snap (Counter misses)) with
    | None, None -> None
    | h, m ->
      let h = Option.value ~default:0.0 h and m = Option.value ~default:0.0 m in
      if h +. m <= 0.0 then None else Some (h /. (h +. m))
  end

type check = { rule : rule; value : float option; pass : bool }

type report = { checks : check list; healthy : bool }

let check_rule snap r =
  match value_of snap r.source with
  | None -> { rule = r; value = None; pass = true } (* metric absent: rule does not apply *)
  | Some v ->
    let pass = match r.cmp with Le -> v <= r.threshold | Ge -> v >= r.threshold in
    { rule = r; value = Some v; pass }

let evaluate rules snap =
  let checks = List.map (check_rule snap) rules in
  { checks; healthy = List.for_all (fun c -> c.pass) checks }

(* ---- Alpenhorn's built-in rule set ---- *)

let default_rules ?(addfriend_deadline = infinity) ?(dialing_deadline = infinity)
    ?(mailbox_ceiling = infinity) ?(cache_hit_floor = 0.0) ?(max_consecutive_aborts = infinity)
    ?(recovery_ceiling = infinity) ?(gc_pause_ceiling = infinity) ?(heap_words_ceiling = infinity)
    ?(pool_util_floor = 0.0) ?(scale_bytes_per_client_ceiling = infinity)
    ?(scale_words_per_client_ceiling = infinity) () =
  [
    rule ~name:"round.addfriend.deadline"
      ~description:"slowest add-friend round finishes within its deadline"
      (Span_max "round.addfriend") Le addfriend_deadline;
    rule ~name:"round.dialing.deadline"
      ~description:"slowest dialing round finishes within its deadline"
      (Span_max "round.dialing") Le dialing_deadline;
    rule ~name:"faults.consecutive_aborts"
      ~description:"worst streak of aborted round attempts stays bounded"
      (Gauge "faults.consecutive_aborts") Le max_consecutive_aborts;
    rule ~name:"faults.recovery_time"
      ~description:"slowest abort-to-publish recovery stays under its ceiling"
      (Hist_max "faults.recovery_seconds") Le recovery_ceiling;
    rule ~name:"mailbox.load"
      ~description:"fullest mailbox stays under the section-6 load ceiling"
      (Gauge "mailbox.max_load") Le mailbox_ceiling;
    rule ~name:"pairing.cache_hit_rate"
      ~description:"fixed-argument pairing cache keeps its hit-rate floor"
      (Hit_rate ("pairing.cache_hits", "pairing.cache_misses"))
      Ge cache_hit_floor;
    rule ~name:"mix.drops" ~description:"no onion failed to decrypt at any hop"
      (Counter "mix.onions_dropped") Le 0.0;
    rule ~name:"sim.quiescent" ~description:"DES event queue drained at snapshot time"
      (Gauge "sim.des_pending") Le 0.0;
    rule ~name:"runtime.gc_pause"
      ~description:"longest observed GC pause stays under its ceiling"
      (Gauge "runtime.gc.max_pause_seconds") Le gc_pause_ceiling;
    rule ~name:"runtime.heap" ~description:"major heap stays under its word ceiling"
      (Gauge "runtime.heap_words") Le heap_words_ceiling;
    rule ~name:"parallel.pool_util"
      ~description:"least-utilized pool domain keeps its utilization floor"
      (Gauge_min "parallel.domain_util") Ge pool_util_floor;
    rule ~name:"scale.bytes_per_client"
      ~description:"per-client shard download stays under its byte budget (§5.1)"
      (Gauge "scale.bytes_per_client") Le scale_bytes_per_client_ceiling;
    rule ~name:"scale.words_per_client"
      ~description:"server-side peak heap per client stays under its word budget"
      (Gauge "scale.words_per_client") Le scale_words_per_client_ceiling;
  ]

(* ---- rendering ---- *)

let cmp_to_string = function Le -> "<=" | Ge -> ">="

let pp_report fmt r =
  Format.fprintf fmt "SLO health report: %s@\n" (if r.healthy then "HEALTHY" else "UNHEALTHY");
  List.iter
    (fun c ->
      let status = if not c.pass then "FAIL" else if c.value = None then "skip" else "ok" in
      let value = match c.value with None -> "-" | Some v -> Printf.sprintf "%g" v in
      Format.fprintf fmt "  [%-4s] %-28s %10s %s %g  (%s)@\n" status c.rule.name value
        (cmp_to_string c.rule.cmp) c.rule.threshold c.rule.description)
    r.checks

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f = if Float.is_finite f then Printf.sprintf "%.9g" f else "null"

let report_to_json r =
  let check_json c =
    Printf.sprintf
      "{\"rule\":\"%s\",\"description\":\"%s\",\"cmp\":\"%s\",\"threshold\":%s,\"value\":%s,\"pass\":%b}"
      (json_escape c.rule.name)
      (json_escape c.rule.description)
      (cmp_to_string c.rule.cmp)
      (json_float c.rule.threshold)
      (match c.value with None -> "null" | Some v -> json_float v)
      c.pass
  in
  Printf.sprintf "{\"healthy\":%b,\"checks\":[%s]}" r.healthy
    (String.concat "," (List.map check_json r.checks))
