(** Metric exposition: Prometheus text format 0.0.4 and the JSON / SLO /
    time-series endpoints, as pure request-to-response functions
    (DESIGN.md §12).

    This module renders; it owns no sockets. The from-scratch TCP
    listener in [lib/net] (or a unit test, byte-for-byte identically)
    routes [GET] requests into {!handle}:

    - [/metrics] — the registry snapshot in Prometheus text exposition
      format 0.0.4: dotted metric names sanitized to the
      [[a-zA-Z_:][a-zA-Z0-9_:]*] alphabet, label values escaped
      (backslash, double quote, newline), histograms emitted as
      {e cumulative} [_bucket] series keyed by [le] over the shared
      log-2 layout plus
      [_sum]/[_count], and non-finite gauges spelled [+Inf]/[-Inf]/[NaN].
    - [/metrics.json] — {!Telemetry.Snapshot.to_json} verbatim.
    - [/slo] — the configured rules evaluated over a fresh snapshot;
      HTTP 200 when healthy, 503 when not, body
      {!Slo.report_to_json} either way — a load-balancer health check
      and an alerting hook in one.
    - [/series?name=METRIC&window=SECONDS] — windowed rate, p50/p99 and
      sparkline points from the attached {!Timeseries} ring.

    When a {!Runtime_stats} sampler is attached, each [/metrics] or
    [/metrics.json] scrape samples it first, so GC and heap readings are
    fresh even while the orchestrating domain is busy inside a round.
    Everything else is read-only: scraping never resets metrics, and
    enabling the endpoint changes no wire bytes anywhere in the
    protocol. *)

type response = { status : int; content_type : string; body : string }

type config

val config :
  ?registry:Telemetry.registry ->
  ?series:Timeseries.t ->
  ?slo_rules:Slo.rule list ->
  ?runtime:Runtime_stats.t ->
  ?labels:(string * string) list ->
  unit ->
  config
(** [registry] defaults to {!Telemetry.default}; [slo_rules] to
    {!Slo.default_rules}[ ()]; [series] and [runtime] to absent
    ([/series] then answers 404, and scrapes do not sample the
    runtime). [labels] (default none) are constant per-process labels —
    e.g. [instance]/[role] on a fleet member — merged into every
    [/metrics] sample (a metric's own label of the same name wins) and
    wrapped around [/metrics.json] as
    [{"labels":{...},"telemetry":<snapshot>}]. *)

val handle :
  config -> meth:string -> path:string -> query:(string * string) list -> unit -> response
(** Route one request. Non-GET methods get 405; unknown paths 404;
    malformed [/series] queries 400. Never raises. *)

(** {1 Rendering internals (exposed for tests)} *)

val sanitize_name : string -> string
(** Map a dotted metric name into the Prometheus name alphabet
    ([mix.onions_in] → [mix_onions_in]; a leading invalid byte gets a
    [_] prefix). *)

val escape_label_value : string -> string
(** The three exposition-format escapes: backslash, double quote,
    newline. *)

val metrics_text : ?labels:(string * string) list -> Telemetry.Snapshot.t -> string
(** A full snapshot in text exposition format 0.0.4 (the [/metrics]
    body). [labels] are constant labels rendered inside every sample's
    braces, ahead of the metric's own labels; on a name collision the
    metric's own label wins. *)
