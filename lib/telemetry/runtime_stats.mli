(** Live OCaml runtime/GC observability: periodic sampling of
    [Gc.quick_stat] (and optionally the heap-walking [Gc.stat]) into the
    telemetry registry, plus an end-of-major-cycle alarm hook and a
    stop-the-world pause probe (DESIGN.md §12).

    Alpenhorn is meant to run for months sustaining millions of users
    (§7), and its round latency budget lives or dies on allocation rate,
    heap growth and GC pauses — none of which the protocol-level metrics
    (PRs 1, 3) see. This module closes that gap with zero dependencies
    and no [Gc.Memprof] (which would conflict with any future memory
    profiler the operator attaches):

    - {b Deltas as counters.} Each {!sample} diffs the previous
      [Gc.quick_stat] against the current one and adds the increments to
      [runtime.gc.minor_collections], [runtime.gc.major_collections],
      [runtime.gc.compactions], [runtime.alloc.minor_words],
      [runtime.alloc.promoted_words] and [runtime.alloc.major_words]
      (word counters are saturating on 63-bit ints — a non-issue in
      practice). Counters survive {!Telemetry.Snapshot.take}
      [~reset:true] as per-window deltas, exactly like the protocol
      counters.
    - {b Levels as gauges.} [runtime.heap_words], [runtime.top_heap_words]
      and [runtime.stack_words] track the current heap; a [~full:true]
      sample also walks the heap ([Gc.stat]) for [runtime.live_words] and
      [runtime.free_words].
    - {b Major-cycle alarm.} {!install} registers a [Gc.create_alarm]
      hook; at the end of every major cycle it observes the wall-clock
      interval since the previous cycle end into
      [runtime.gc.major_cycle_seconds] — the cadence of full-heap marking.
    - {b Pause probe.} Each {!sample} (at most once per
      [min_probe_interval]) times one forced minor collection —
      a genuine stop-the-world pause, merely moved in time — into
      [runtime.gc.pause_seconds], and mirrors the largest observation
      since the last registry reset into the [runtime.gc.max_pause_seconds]
      gauge the SLO engine reads. The probe measures real evacuation work
      the program was about to do anyway; its cost is bounded by the
      minor-heap size (microseconds at the default 256k words).

    Sampling is driven by whoever owns a loop: the metrics listener
    samples on scrape, [Deployment] and [Round_sim] sample at round
    close, and [bench e2e] samples per round so BENCH snapshots carry
    allocation and pause data. All metrics land in the registry given to
    {!install}, so they ride the existing exporters, the time-series ring
    and the SLO rules unchanged.

    Statistics are per-domain in OCaml 5: [Gc.quick_stat] reports the
    calling domain's minor counts plus the shared major heap. Install and
    sample from the orchestrating domain (worker-domain minor allocation
    is promoted through the shared major heap, which {e is} visible
    here); the alarm fires on whichever domain ends the major cycle and
    only touches its own atomic. *)

type t

val install : ?registry:Telemetry.registry -> ?min_probe_interval:float -> unit -> t
(** Register the gauges/counters/histograms (on {!Telemetry.default} by
    default), take the baseline [Gc.quick_stat], and hook the major-cycle
    alarm. [min_probe_interval] (seconds of wall time, default [0.5])
    rate-limits the forced-minor pause probe; [0.] probes on every
    sample. Multiple installs coexist (each owns its own alarm and
    baseline). *)

val get_default : unit -> t
(** The process-wide sampler on {!Telemetry.default}, installed on first
    use (safe to call from any domain). [Deployment], [Round_sim] and
    the metrics endpoint share this instance, so the alarm hook is
    registered exactly once. *)

val sample : ?full:bool -> t -> unit
(** Diff [Gc.quick_stat] against the previous sample and publish (see
    above). [~full:true] additionally runs the heap-walking [Gc.stat]
    for [runtime.live_words]/[runtime.free_words] — noticeably more
    expensive; reserve it for round boundaries. *)

val uninstall : t -> unit
(** Delete the major-cycle alarm. Idempotent; metrics keep their last
    values. *)

val max_pause_seconds : t -> float
(** Largest probed pause since {!install} (not affected by registry
    resets); [0.] before the first probe. *)
