(* Domain-safe metrics registry. Hot paths (counter/gauge hits) are lock-free
   atomics on handles resolved once at registration; histograms take a
   per-histogram mutex, and the registry hashtable/span list are guarded by a
   registry mutex consulted by [v], [push_span] and [Snapshot.take]. Clock
   swaps ([set_clock]/[with_clock]) remain single-domain operations: they are
   only ever called from the orchestrating domain between parallel regions. *)

type labels = (string * string) list

let wall_clock = Unix.gettimeofday

(* ---- histogram bucket layout (shared by all histograms) ---- *)

let n_buckets = 64

(* bucket i covers [2^(i-32), 2^(i-31)); <= 2^-32 lands in bucket 0 and
   >= 2^31 in the last — spans ~0.2 ns to ~2e9 in whatever unit is used *)
let bucket_of v =
  if v <= 0.0 || Float.is_nan v then 0
  else begin
    let _, e = Float.frexp v in
    (* v = m * 2^e with m in [0.5, 1), so v in [2^(e-1), 2^e) *)
    let i = e + 31 in
    if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i
  end

let bucket_lower i = Float.ldexp 1.0 (i - 32)

type counter = int Atomic.t
type gauge = float Atomic.t

type histogram = {
  hmu : Mutex.t;
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  counts : int array;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type span_rec = {
  sp_name : string;
  sp_labels : labels;
  sp_ts : float;
  sp_dur : float;
  sp_depth : int;
  sp_clock : string;
}

let max_spans = 100_000

type registry = {
  mu : Mutex.t; (* guards metrics table, span list and depth *)
  mutable clock : unit -> float;
  mutable ckind : string;
  mutable epoch : float;
  metrics : (string * labels, metric) Hashtbl.t;
  mutable spans : span_rec list; (* reversed *)
  mutable n_spans : int;
  mutable dropped_spans : int;
  mutable depth : int;
}

let create ?(clock = wall_clock) ?(clock_kind = "wall") () =
  {
    mu = Mutex.create ();
    clock;
    ckind = clock_kind;
    epoch = clock ();
    metrics = Hashtbl.create 64;
    spans = [];
    n_spans = 0;
    dropped_spans = 0;
    depth = 0;
  }

let locked r f =
  Mutex.lock r.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock r.mu) f

let default = create ()
let now r = r.clock ()
let since_epoch r = r.clock () -. r.epoch
let clock_kind r = r.ckind

let set_clock r ~kind clock =
  r.clock <- clock;
  r.ckind <- kind;
  r.epoch <- clock ()

let with_clock r ~kind clock f =
  let old_clock = r.clock and old_kind = r.ckind and old_epoch = r.epoch in
  set_clock r ~kind clock;
  Fun.protect
    ~finally:(fun () ->
      r.clock <- old_clock;
      r.ckind <- old_kind;
      r.epoch <- old_epoch)
    f

let normalize_labels labels = List.sort_uniq compare labels

let find_or_register r ~labels name make select =
  let key = (name, normalize_labels labels) in
  locked r (fun () ->
      match Hashtbl.find_opt r.metrics key with
      | Some m -> begin
        match select m with
        | Some h -> h
        | None ->
          invalid_arg (Printf.sprintf "Telemetry: %S already registered with another kind" name)
      end
      | None ->
        let m, h = make () in
        Hashtbl.replace r.metrics key m;
        h)

module Counter = struct
  type t = counter

  let v r ?(labels = []) name =
    find_or_register r ~labels name
      (fun () ->
        let c = Atomic.make 0 in
        (Counter c, c))
      (function Counter c -> Some c | _ -> None)

  let inc t = Atomic.incr t
  let add t n = ignore (Atomic.fetch_and_add t n)
  let value t = Atomic.get t
end

module Gauge = struct
  type t = gauge

  let v r ?(labels = []) name =
    find_or_register r ~labels name
      (fun () ->
        let g = Atomic.make 0.0 in
        (Gauge g, g))
      (function Gauge g -> Some g | _ -> None)

  let set t x = Atomic.set t x
  let value t = Atomic.get t
end

module Histogram = struct
  type t = histogram

  let bucket_count = n_buckets
  let bucket_of = bucket_of
  let bucket_lower = bucket_lower

  let v r ?(labels = []) name =
    find_or_register r ~labels name
      (fun () ->
        let h =
          {
            hmu = Mutex.create ();
            count = 0;
            sum = 0.0;
            min_v = infinity;
            max_v = neg_infinity;
            counts = Array.make n_buckets 0;
          }
        in
        (Histogram h, h))
      (function Histogram h -> Some h | _ -> None)

  let observe t x =
    Mutex.lock t.hmu;
    t.count <- t.count + 1;
    t.sum <- t.sum +. x;
    if x < t.min_v then t.min_v <- x;
    if x > t.max_v then t.max_v <- x;
    let b = bucket_of x in
    t.counts.(b) <- t.counts.(b) + 1;
    Mutex.unlock t.hmu

  type snap = { count : int; sum : float; min_v : float; max_v : float; buckets : int array }

  let empty =
    { count = 0; sum = 0.0; min_v = infinity; max_v = neg_infinity; buckets = Array.make n_buckets 0 }

  let snapshot (t : t) =
    Mutex.lock t.hmu;
    let s =
      { count = t.count; sum = t.sum; min_v = t.min_v; max_v = t.max_v; buckets = Array.copy t.counts }
    in
    Mutex.unlock t.hmu;
    s

  let merge a b =
    {
      count = a.count + b.count;
      sum = a.sum +. b.sum;
      min_v = Float.min a.min_v b.min_v;
      max_v = Float.max a.max_v b.max_v;
      buckets = Array.init n_buckets (fun i -> a.buckets.(i) + b.buckets.(i));
    }

  let mean s = if s.count = 0 then 0.0 else s.sum /. float_of_int s.count

  let quantile s q =
    if s.count = 0 then 0.0
    else begin
      let q = Float.max 0.0 (Float.min 1.0 q) in
      let target = q *. float_of_int s.count in
      let clamp v = Float.max s.min_v (Float.min s.max_v v) in
      let rec walk i seen =
        if i >= n_buckets then clamp s.max_v
        else begin
          let c = s.buckets.(i) in
          if float_of_int (seen + c) >= target && c > 0 then begin
            (* interpolate inside bucket i between its bounds *)
            let lo = bucket_lower i and hi = bucket_lower (i + 1) in
            let frac = (target -. float_of_int seen) /. float_of_int c in
            clamp (lo +. (frac *. (hi -. lo)))
          end
          else walk (i + 1) (seen + c)
        end
      in
      walk 0 0
    end
end

(* ---- spans ---- *)

let push_span r sp =
  locked r (fun () ->
      if r.n_spans >= max_spans then r.dropped_spans <- r.dropped_spans + 1
      else begin
        r.spans <- sp :: r.spans;
        r.n_spans <- r.n_spans + 1
      end)

module Span = struct
  (* A span is timed entirely on the clock in effect when it opens: the
     epoch-relative start, the clock function used for the duration and the
     recorded clock kind are all captured at open, so a [set_clock] /
     [with_clock] swap while the span is open cannot mix two timebases
     (regression-tested in test_telemetry.ml). *)
  let with_ r ?(labels = []) name f =
    let labels = normalize_labels labels in
    let clock0 = r.clock and kind0 = r.ckind in
    let t0 = clock0 () in
    let ts_rel = t0 -. r.epoch in
    let depth =
      locked r (fun () ->
          let d = r.depth in
          r.depth <- d + 1;
          d)
    in
    Fun.protect
      ~finally:(fun () ->
        locked r (fun () -> r.depth <- depth);
        push_span r
          {
            sp_name = name;
            sp_labels = labels;
            sp_ts = ts_rel;
            sp_dur = clock0 () -. t0;
            sp_depth = depth;
            sp_clock = kind0;
          })
      f

  let emit r ?(labels = []) ?(depth = 0) ~name ~ts ~dur () =
    push_span r
      {
        sp_name = name;
        sp_labels = normalize_labels labels;
        sp_ts = ts -. r.epoch;
        sp_dur = dur;
        sp_depth = depth;
        sp_clock = r.ckind;
      }
end

(* ---- snapshots ---- *)

module Snapshot = struct
  type span = { name : string; labels : labels; ts : float; dur : float; depth : int; clock : string }

  type t = {
    clock : string;
    counters : (string * labels * int) list;
    gauges : (string * labels * float) list;
    histograms : (string * labels * Histogram.snap) list;
    spans : span list;
    dropped_spans : int;
  }

  (* Capture-and-reset must be a single atomic step per metric: the registry
     mutex serializes [take] against registration, but counter/gauge hits from
     worker domains never take that mutex. A read-then-zero reset would lose
     every increment that lands between the two operations (regression-tested
     with a 4-domain hammer in test_telemetry.ml), so the captured value IS
     the exchanged value: [Atomic.exchange] for counters and gauges, and one
     snapshot-and-zero critical section under the histogram's own lock.
     Conservation law: sum of all reset snapshots + the live value afterwards
     = everything ever recorded, no matter how many domains are writing. *)
  let hist_take_reset (h : histogram) reset =
    Mutex.lock h.hmu;
    let s =
      {
        Histogram.count = h.count;
        sum = h.sum;
        min_v = h.min_v;
        max_v = h.max_v;
        buckets = Array.copy h.counts;
      }
    in
    if reset then begin
      h.count <- 0;
      h.sum <- 0.0;
      h.min_v <- infinity;
      h.max_v <- neg_infinity;
      Array.fill h.counts 0 n_buckets 0
    end;
    Mutex.unlock h.hmu;
    s

  let take ?(reset = false) r =
    Mutex.lock r.mu;
    let counters = ref [] and gauges = ref [] and hists = ref [] in
    Hashtbl.iter
      (fun (name, labels) m ->
        match m with
        | Counter c ->
          let v = if reset then Atomic.exchange c 0 else Atomic.get c in
          counters := (name, labels, v) :: !counters
        | Gauge g ->
          let v = if reset then Atomic.exchange g 0.0 else Atomic.get g in
          gauges := (name, labels, v) :: !gauges
        | Histogram h -> hists := (name, labels, hist_take_reset h reset) :: !hists)
      r.metrics;
    let by_key (n1, l1, _) (n2, l2, _) = compare (n1, l1) (n2, l2) in
    let spans =
      List.rev_map
        (fun sp ->
          {
            name = sp.sp_name;
            labels = sp.sp_labels;
            ts = sp.sp_ts;
            dur = sp.sp_dur;
            depth = sp.sp_depth;
            clock = sp.sp_clock;
          })
        r.spans
    in
    let snap =
      {
        clock = r.ckind;
        counters = List.sort by_key !counters;
        gauges = List.sort by_key !gauges;
        histograms = List.sort by_key !hists;
        spans;
        dropped_spans = r.dropped_spans;
      }
    in
    if reset then begin
      (* metric values were already captured-and-zeroed above *)
      r.spans <- [];
      r.n_spans <- 0;
      r.dropped_spans <- 0;
      r.epoch <- r.clock ()
    end;
    Mutex.unlock r.mu;
    snap

  let counter_sum t name =
    List.fold_left (fun acc (n, _, v) -> if n = name then acc + v else acc) 0 t.counters

  let find_counter t ?labels name =
    let labels = Option.map normalize_labels labels in
    List.find_map
      (fun (n, l, v) ->
        if n = name && (labels = None || labels = Some l) then Some v else None)
      t.counters

  let hist_sum t name =
    List.fold_left
      (fun acc (n, _, (s : Histogram.snap)) -> if n = name then acc +. s.sum else acc)
      0.0 t.histograms

  let span_total t name =
    List.fold_left (fun acc (sp : span) -> if sp.name = name then acc +. sp.dur else acc) 0.0 t.spans

  let span_count t name =
    List.fold_left (fun acc (sp : span) -> if sp.name = name then acc + 1 else acc) 0 t.spans

  (* ---- table exporter ---- *)

  let label_suffix = function
    | [] -> ""
    | labels -> "{" ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels) ^ "}"

  let human_seconds s =
    if s = 0.0 then "0"
    else if Float.abs s < 1e-6 then Printf.sprintf "%.0f ns" (s *. 1e9)
    else if Float.abs s < 1e-3 then Printf.sprintf "%.1f us" (s *. 1e6)
    else if Float.abs s < 1.0 then Printf.sprintf "%.1f ms" (s *. 1e3)
    else Printf.sprintf "%.2f s" s

  let pp_table fmt t =
    let line name cells =
      Format.fprintf fmt "  %-44s %s@\n" name
        (String.concat "" (List.map (fun c -> Printf.sprintf "%12s" c) cells))
    in
    Format.fprintf fmt "telemetry snapshot (%s clock)@\n" t.clock;
    if t.counters <> [] then begin
      Format.fprintf fmt "counters:@\n";
      List.iter (fun (n, l, v) -> line (n ^ label_suffix l) [ string_of_int v ]) t.counters
    end;
    if t.gauges <> [] then begin
      Format.fprintf fmt "gauges:@\n";
      List.iter (fun (n, l, v) -> line (n ^ label_suffix l) [ Printf.sprintf "%g" v ]) t.gauges
    end;
    if t.histograms <> [] then begin
      Format.fprintf fmt "histograms:@\n";
      line "" [ "count"; "mean"; "p50"; "p99"; "max" ];
      List.iter
        (fun (n, l, (s : Histogram.snap)) ->
          (* name the unit from the metric name: "*_seconds" is a duration *)
          let render =
            if Filename.check_suffix n "_seconds" then human_seconds
            else fun v -> Printf.sprintf "%g" v
          in
          if s.count > 0 then
            line (n ^ label_suffix l)
              [
                string_of_int s.count;
                render (Histogram.mean s);
                render (Histogram.quantile s 0.5);
                render (Histogram.quantile s 0.99);
                render s.max_v;
              ])
        t.histograms
    end;
    if t.spans <> [] then begin
      Format.fprintf fmt "spans:@\n";
      line "" [ "count"; "total" ];
      let names = List.sort_uniq compare (List.map (fun (sp : span) -> sp.name) t.spans) in
      List.iter
        (fun n -> line n [ string_of_int (span_count t n); human_seconds (span_total t n) ])
        names
    end;
    if t.dropped_spans > 0 then Format.fprintf fmt "  (%d spans dropped)@\n" t.dropped_spans

  (* ---- JSON exporters (hand-rolled; no dependencies) ---- *)

  let json_escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let json_float f = if Float.is_finite f then Printf.sprintf "%.9g" f else "0"

  let json_labels labels =
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)) labels)
    ^ "}"

  let to_json t =
    let b = Buffer.create 4096 in
    let add = Buffer.add_string b in
    add (Printf.sprintf "{\"clock\":\"%s\",\"counters\":[" (json_escape t.clock));
    add
      (String.concat ","
         (List.map
            (fun (n, l, v) ->
              Printf.sprintf "{\"name\":\"%s\",\"labels\":%s,\"value\":%d}" (json_escape n)
                (json_labels l) v)
            t.counters));
    add "],\"gauges\":[";
    add
      (String.concat ","
         (List.map
            (fun (n, l, v) ->
              Printf.sprintf "{\"name\":\"%s\",\"labels\":%s,\"value\":%s}" (json_escape n)
                (json_labels l) (json_float v))
            t.gauges));
    add "],\"histograms\":[";
    add
      (String.concat ","
         (List.map
            (fun (n, l, (s : Histogram.snap)) ->
              Printf.sprintf
                "{\"name\":\"%s\",\"labels\":%s,\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"buckets\":[%s]}"
                (json_escape n) (json_labels l) s.count (json_float s.sum)
                (json_float (if s.count = 0 then 0.0 else s.min_v))
                (json_float (if s.count = 0 then 0.0 else s.max_v))
                (String.concat "," (List.map string_of_int (Array.to_list s.buckets))))
            t.histograms));
    add "],\"spans\":[";
    add
      (String.concat ","
         (List.map
            (fun (sp : span) ->
              Printf.sprintf
                "{\"name\":\"%s\",\"labels\":%s,\"ts\":%s,\"dur\":%s,\"depth\":%d,\"clock\":\"%s\"}"
                (json_escape sp.name) (json_labels sp.labels) (json_float sp.ts) (json_float sp.dur)
                sp.depth (json_escape sp.clock))
            t.spans));
    add (Printf.sprintf "],\"dropped_spans\":%d}" t.dropped_spans);
    Buffer.contents b

  let to_chrome_trace t =
    let tid (sp : span) =
      match List.assoc_opt "server" sp.labels with
      | Some s -> (match int_of_string_opt s with Some i -> i + 1 | None -> 0)
      | None -> 0
    in
    let event (sp : span) =
      let args =
        ("clock", sp.clock) :: sp.labels
        |> List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
        |> String.concat ","
      in
      Printf.sprintf
        "{\"name\":\"%s\",\"cat\":\"alpenhorn\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":0,\"tid\":%d,\"args\":{%s}}"
        (json_escape sp.name)
        (json_float (sp.ts *. 1e6))
        (json_float (sp.dur *. 1e6))
        (tid sp) args
    in
    "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
    ^ String.concat "," (List.map event t.spans)
    ^ "]}"
end

(* ---- minimal JSON parser (strict RFC 8259) ---- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let expect c = if peek () = Some c then advance () else raise Bad in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let literal lit =
      String.iter (fun c -> expect c) lit
    in
    let digits () =
      let start = !pos in
      let rec go () =
        match peek () with
        | Some ('0' .. '9') ->
          advance ();
          go ()
        | _ -> ()
      in
      go ();
      if !pos = start then raise Bad
    in
    let int_part () =
      (* RFC 8259: a leading zero may not be followed by more digits *)
      match peek () with
      | Some '0' -> (
        advance ();
        match peek () with Some ('0' .. '9') -> raise Bad | _ -> ())
      | Some ('1' .. '9') -> digits ()
      | _ -> raise Bad
    in
    let number () =
      let start = !pos in
      if peek () = Some '-' then advance ();
      int_part ();
      if peek () = Some '.' then begin
        advance ();
        digits ()
      end;
      (match peek () with
      | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
      | _ -> ());
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> raise Bad
    in
    (* UTF-8-encode one code point into [b] *)
    let add_utf8 b cp =
      if cp < 0x80 then Buffer.add_char b (Char.chr cp)
      else if cp < 0x800 then begin
        Buffer.add_char b (Char.chr (0xc0 lor (cp lsr 6)));
        Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
      end
      else if cp < 0x10000 then begin
        Buffer.add_char b (Char.chr (0xe0 lor (cp lsr 12)));
        Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
        Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
      end
      else begin
        Buffer.add_char b (Char.chr (0xf0 lor (cp lsr 18)));
        Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
        Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
        Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
      end
    in
    let hex4 () =
      let v = ref 0 in
      for _ = 1 to 4 do
        (match peek () with
        | Some ('0' .. '9' as c) -> v := (!v * 16) + (Char.code c - Char.code '0')
        | Some ('a' .. 'f' as c) -> v := (!v * 16) + (Char.code c - Char.code 'a' + 10)
        | Some ('A' .. 'F' as c) -> v := (!v * 16) + (Char.code c - Char.code 'A' + 10)
        | _ -> raise Bad);
        advance ()
      done;
      !v
    in
    let string_lit () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> raise Bad
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          (match peek () with
          | Some ('"' as c) | Some ('\\' as c) | Some ('/' as c) ->
            Buffer.add_char b c;
            advance ();
            go ()
          | Some 'b' -> Buffer.add_char b '\b'; advance (); go ()
          | Some 'f' -> Buffer.add_char b '\012'; advance (); go ()
          | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
          | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
          | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
          | Some 'u' ->
            advance ();
            let cp = hex4 () in
            (* combine a surrogate pair when one follows; otherwise keep the
               lone escape as U+FFFD *)
            let cp =
              if cp >= 0xd800 && cp <= 0xdbff
                 && !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u' then begin
                advance ();
                advance ();
                let lo = hex4 () in
                if lo >= 0xdc00 && lo <= 0xdfff then
                  0x10000 + ((cp - 0xd800) lsl 10) + (lo - 0xdc00)
                else 0xfffd
              end
              else if cp >= 0xd800 && cp <= 0xdfff then 0xfffd
              else cp
            in
            add_utf8 b cp;
            go ()
          | _ -> raise Bad)
        | Some c when Char.code c < 0x20 -> raise Bad
        | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
      in
      go ();
      Buffer.contents b
    in
    let rec value () =
      skip_ws ();
      let v =
        match peek () with
        | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let rec members acc =
              skip_ws ();
              let k = string_lit () in
              skip_ws ();
              expect ':';
              let v = value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                advance ();
                members ((k, v) :: acc)
              | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
              | _ -> raise Bad
            in
            Obj (members [])
          end
        | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            Arr []
          end
          else begin
            let rec elements acc =
              let v = value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                advance ();
                elements (v :: acc)
              | Some ']' ->
                advance ();
                List.rev (v :: acc)
              | _ -> raise Bad
            in
            Arr (elements [])
          end
        | Some '"' -> Str (string_lit ())
        | Some 't' ->
          literal "true";
          Bool true
        | Some 'f' ->
          literal "false";
          Bool false
        | Some 'n' ->
          literal "null";
          Null
        | Some ('-' | '0' .. '9') -> number ()
        | _ -> raise Bad
      in
      skip_ws ();
      v
    in
    match
      let v = value () in
      if !pos <> n then raise Bad;
      v
    with
    | v -> Some v
    | exception Bad -> None

  let is_valid s = parse s <> None

  let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
  let index i = function Arr vs -> List.nth_opt vs i | _ -> None
  let to_num = function Num f -> Some f | _ -> None
  let to_str = function Str s -> Some s | _ -> None

  let number_leaves v =
    let rec walk path v acc =
      let key k = if path = "" then k else path ^ "." ^ k in
      match v with
      | Num f -> (path, f) :: acc
      | Obj kvs -> List.fold_left (fun acc (k, v) -> walk (key k) v acc) acc kvs
      | Arr vs ->
        snd (List.fold_left (fun (i, acc) v -> (i + 1, walk (key (string_of_int i)) v acc)) (0, acc) vs)
      | Null | Bool _ | Str _ -> acc
    in
    List.rev (walk "" v [])
end
