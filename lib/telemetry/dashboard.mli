(** ANSI [top]-style dashboard rendering over the time-series ring
    (DESIGN.md §12).

    Pure rendering: {!render} turns a {!Timeseries.t} (live, remote-polled
    or replayed from JSONL — the ring does not care) and an optional SLO
    report into one textual frame — rounds/s, onion unwraps/s, GC-pause
    and heap sparklines, pool utilization, and a colored SLO status line.
    The CLI [top] subcommand owns the poll loop and prepends {!ansi_clear}
    between frames; tests render frames with [~color:false] and assert on
    the text. Works identically on wall-clock and DES-clock rings because
    every query is expressed in ring time. *)

val render :
  ?width:int ->
  ?color:bool ->
  ?window:float ->
  ring:Timeseries.t ->
  slo:Slo.report option ->
  unit ->
  string
(** One frame, newline-terminated lines truncated to [width] (default
    100) bytes (sparkline glyphs are cut at UTF-8 boundaries).
    [window] (default 60 ring-clock seconds) scopes every rate, quantile
    and sparkline. [color:false] suppresses all escape sequences. *)

val sparkline : float list -> string
(** Normalized eight-level block glyphs (▁▂▃▄▅▆▇█); a constant series
    renders mid-height, an empty one as [""]. Exposed for tests. *)

val ansi_clear : string
(** Clear screen + cursor home; what the CLI emits between frames. *)

val fmt_si : float -> string
(** [1234567.] → ["1.23M"] — axis labels for humans. *)

val fmt_seconds : float -> string
(** Seconds with an adaptive unit: ["1.50s"], ["2.30ms"], ["15us"]. *)
