(* Per-message causal tracing on top of the span registry.

   A trace context is three integers (trace id, span id, parent span id)
   carried strictly OUT OF BAND: contexts live in OCaml values alongside
   messages and are encoded as span labels, never serialized into any wire
   format. In a metadata-private system a trace id on the wire would be a
   linkable tag defeating the mixnet, so the wire-format byte-identity
   property is enforced by test (test_trace.ml) and documented in
   DESIGN.md §9. *)

type ctx = { trace_id : int; span_id : int; parent : int option }

type t = {
  reg : Telemetry.registry;
  rate : float;
  mutable next_trace_id : int;
  mutable next_span_id : int;
  mutable lcg : int;
}

let create ?(rate = 1.0) ?(seed = 0x5eed) reg =
  if Float.is_nan rate || rate < 0.0 || rate > 1.0 then invalid_arg "Trace.create: rate";
  { reg; rate; next_trace_id = 1; next_span_id = 1; lcg = seed land 0x3fffffff }

let rate t = t.rate
let registry t = t.reg

(* Deterministic 31-bit LCG (Lehmer-style constants): sampling decisions
   must not consume protocol randomness, or enabling tracing would change
   the wire bytes of a seeded run. *)
let next_uniform t =
  t.lcg <- ((t.lcg * 1103515245) + 12345) land 0x3fffffff;
  float_of_int t.lcg /. float_of_int 0x40000000

let fresh_span t =
  let id = t.next_span_id in
  t.next_span_id <- id + 1;
  id

let sample t =
  if t.rate > 0.0 && next_uniform t < t.rate then begin
    let trace_id = t.next_trace_id in
    t.next_trace_id <- trace_id + 1;
    Some { trace_id; span_id = fresh_span t; parent = None }
  end
  else None

let child t ctx = { trace_id = ctx.trace_id; span_id = fresh_span t; parent = Some ctx.span_id }

(* ---- label encoding (how contexts ride on ordinary spans) ---- *)

let labels_of ctx =
  let base =
    [ ("trace", string_of_int ctx.trace_id); ("span", string_of_int ctx.span_id) ]
  in
  match ctx.parent with
  | None -> base
  | Some p -> ("parent", string_of_int p) :: base

let ctx_of_labels labels =
  match (List.assoc_opt "trace" labels, List.assoc_opt "span" labels) with
  | Some tr, Some sp -> begin
    match (int_of_string_opt tr, int_of_string_opt sp) with
    | Some trace_id, Some span_id ->
      let parent = Option.bind (List.assoc_opt "parent" labels) int_of_string_opt in
      Some { trace_id; span_id; parent }
    | _ -> None
  end
  | _ -> None

let emit t ctx ?(labels = []) ~name ~ts ~dur () =
  Telemetry.Span.emit t.reg ~labels:(labels_of ctx @ labels) ~depth:1 ~name ~ts ~dur ()

let with_ t ctx ?(labels = []) name f =
  Telemetry.Span.with_ t.reg ~labels:(labels_of ctx @ labels) name f

(* ---- snapshot side: stitching and the timeline summary ---- *)

let spans_of (snap : Telemetry.Snapshot.t) =
  List.filter_map
    (fun (sp : Telemetry.Snapshot.span) ->
      Option.map (fun ctx -> (ctx, sp)) (ctx_of_labels sp.labels))
    snap.spans

let traces snap =
  let tagged = spans_of snap in
  let ids = List.sort_uniq compare (List.map (fun (c, _) -> c.trace_id) tagged) in
  List.map
    (fun id ->
      let spans = List.filter (fun (c, _) -> c.trace_id = id) tagged in
      let spans =
        List.stable_sort
          (fun (_, (a : Telemetry.Snapshot.span)) (_, b) -> compare a.ts b.ts)
          spans
      in
      (id, spans))
    ids

let find_span snap ~trace_id ~span_id =
  List.find_opt (fun ((c : ctx), _) -> c.trace_id = trace_id && c.span_id = span_id) (spans_of snap)

let pp_timelines fmt snap =
  let plain_labels (sp : Telemetry.Snapshot.span) =
    List.filter (fun (k, _) -> k <> "trace" && k <> "span" && k <> "parent") sp.labels
  in
  List.iter
    (fun (id, spans) ->
      Format.fprintf fmt "trace %d (%d spans):@\n" id (List.length spans);
      List.iter
        (fun ((c : ctx), (sp : Telemetry.Snapshot.span)) ->
          let labels =
            match plain_labels sp with
            | [] -> ""
            | l -> "{" ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) l) ^ "}"
          in
          let parent = match c.parent with None -> "root" | Some p -> Printf.sprintf "<-%d" p in
          Format.fprintf fmt "  %12.6f +%10.6f  [%d %s] %s%s (%s)@\n" sp.ts sp.dur c.span_id
            parent sp.name labels sp.clock)
        spans)
    (traces snap)
