(* Orchestrator-side fleet scraper (DESIGN.md §14): poll every process of
   a multi-process deployment over its /metrics.json endpoint, merge the
   per-process snapshots into one fleet snapshot under instance labels,
   keep fleet history in a Timeseries ring, and evaluate fleet-wide SLO
   rules over the merged view.

   Dependency direction: lib/net depends on this library, so the
   collector cannot call Listener.fetch itself — the HTTP GET is injected
   as a [fetch] function (the CLI passes Listener.fetch; tests pass a
   synthetic one serving canned documents). An instance can also be
   [Local] (a registry in this process): the orchestrator itself is a
   fleet member without a port.

   Staleness semantics: a failed scrape never erases an instance's last
   good snapshot — its metrics freeze in the merged view while the
   synthetic [fleet.instance_up{instance=...}] gauge drops to 0 and
   [fleet.staleness_seconds{instance=...}] climbs, so one Gauge_min /
   Gauge rule pair turns "a process died" into an SLO breach without any
   new engine. The fetch error's class prefix ("refused" = process dead,
   "timeout" = hung) is preserved in the status for operators. *)

module Tel = Telemetry

type fetch = host:string -> port:int -> string -> (int * string, string) result

type target = Remote of { host : string; port : int } | Local of Tel.registry

type instance = { name : string; role : string; mutable target : target }

let instance ?(role = "") ~name target =
  let role =
    if role <> "" then role
    else match String.index_opt name '-' with Some i -> String.sub name 0 i | None -> name
  in
  { name; role; target }

type status = Fresh | Stale of string | Never of string

type state = {
  inst : instance;
  mutable last_snap : Tel.Snapshot.t option;
  mutable last_ok : float; (* clock reading of the last successful scrape *)
  mutable status : status;
}

type t = {
  fetch : fetch;
  clock : unit -> float;
  states : state list;
  ring : Timeseries.t;
  mutable merged : Tel.Snapshot.t;
  mutable scrapes : int;
}

let empty_snapshot =
  {
    Tel.Snapshot.clock = "wall";
    counters = [];
    gauges = [];
    histograms = [];
    spans = [];
    dropped_spans = 0;
  }

let create ?(capacity = 720) ?(clock = Tel.wall_clock) ~fetch instances =
  let now = clock () in
  if instances = [] then invalid_arg "Collector.create: no instances";
  let names = List.map (fun i -> i.name) instances in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Collector.create: duplicate instance names";
  {
    fetch;
    clock;
    states =
      List.map
        (fun inst -> { inst; last_snap = None; last_ok = now; status = Never "not scraped yet" })
        instances;
    ring = Timeseries.create_detached ~capacity ();
    merged = empty_snapshot;
    scrapes = 0;
  }

let instances t = List.map (fun s -> s.inst) t.states

let set_target t ~name target =
  match List.find_opt (fun s -> s.inst.name = name) t.states with
  | None -> invalid_arg ("Collector.set_target: unknown instance " ^ name)
  | Some s -> s.inst.target <- target

(* ---- /metrics.json back into a Snapshot.t ---- *)

let json_labels j =
  match j with
  | Tel.Json.Obj fields ->
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | (k, Tel.Json.Str v) :: rest -> go ((k, v) :: acc) rest
      | _ -> None
    in
    go [] fields
  | _ -> None

let mem name j = Tel.Json.member name j

let num name j = Option.bind (mem name j) Tel.Json.to_num
let str name j = Option.bind (mem name j) Tel.Json.to_str

let metric_row j =
  match (str "name" j, Option.bind (mem "labels" j) json_labels) with
  | Some name, Some labels -> Some (name, labels)
  | _ -> None

let hist_of_json j =
  match mem "buckets" j with
  | Some (Tel.Json.Arr bs) ->
    let parsed = List.filter_map Tel.Json.to_num bs in
    if List.length parsed <> List.length bs then None
    else begin
      (* defensively size to the shared layout: a foreign document with a
         different bucket count still merges pointwise *)
      let buckets = Array.make Tel.Histogram.bucket_count 0 in
      List.iteri
        (fun i v -> if i < Array.length buckets then buckets.(i) <- int_of_float v)
        parsed;
      match (num "count" j, num "sum" j, num "min" j, num "max" j) with
      | Some count, Some sum, Some min_v, Some max_v ->
        let count = int_of_float count in
        Some
          {
            Tel.Histogram.count;
            sum;
            min_v = (if count = 0 then infinity else min_v);
            max_v = (if count = 0 then neg_infinity else max_v);
            buckets;
          }
      | _ -> None
    end
  | _ -> None

let span_of_json j =
  match (str "name" j, Option.bind (mem "labels" j) json_labels) with
  | Some name, Some labels -> (
    match (num "ts" j, num "dur" j, num "depth" j, str "clock" j) with
    | Some ts, Some dur, Some depth, Some clock ->
      Some { Tel.Snapshot.name; labels; ts; dur; depth = int_of_float depth; clock }
    | _ -> None)
  | _ -> None

let arr_members name j = match mem name j with Some (Tel.Json.Arr l) -> Some l | _ -> None

let snapshot_of_json j =
  (* tolerate the wrappers the tree emits: the --metrics-json machine
     wrapper and the labeled /metrics.json both nest under "telemetry" *)
  let j = match mem "telemetry" j with Some inner -> inner | None -> j in
  match (arr_members "counters" j, arr_members "gauges" j, arr_members "histograms" j) with
  | Some counters, Some gauges, Some histograms ->
    let parse what of_json rows =
      let parsed = List.filter_map of_json rows in
      if List.length parsed <> List.length rows then Error ("malformed " ^ what) else Ok parsed
    in
    let ( let* ) = Result.bind in
    let* counters =
      parse "counter" (fun r ->
          match (metric_row r, num "value" r) with
          | Some (n, l), Some v -> Some (n, l, int_of_float v)
          | _ -> None)
        counters
    in
    let* gauges =
      parse "gauge" (fun r ->
          match (metric_row r, num "value" r) with
          | Some (n, l), Some v -> Some (n, l, v)
          | _ -> None)
        gauges
    in
    let* histograms =
      parse "histogram" (fun r ->
          match (metric_row r, hist_of_json r) with
          | Some (n, l), Some h -> Some (n, l, h)
          | _ -> None)
        histograms
    in
    let spans =
      match arr_members "spans" j with
      | Some rows -> List.filter_map span_of_json rows
      | None -> []
    in
    Ok
      {
        Tel.Snapshot.clock = (match str "clock" j with Some c -> c | None -> "wall");
        counters;
        gauges;
        histograms;
        spans;
        dropped_spans = (match num "dropped_spans" j with Some d -> int_of_float d | None -> 0);
      }
  | _ -> Error "not a telemetry snapshot (missing counters/gauges/histograms)"

(* ---- merging under instance labels ---- *)

let with_instance ~name ~role own =
  let constant =
    [ ("instance", name) ] @ (if role = "" then [] else [ ("role", role) ])
  in
  List.filter (fun (k, _) -> not (List.mem_assoc k own)) constant @ own

let merge_snapshots parts =
  let map f = List.concat_map (fun (name, role, (s : Tel.Snapshot.t)) -> f name role s) parts in
  let sort l = List.sort (fun (a, al, _) (b, bl, _) -> compare (a, al) (b, bl)) l in
  {
    Tel.Snapshot.clock = "wall";
    counters =
      sort (map (fun n r s -> List.map (fun (m, l, v) -> (m, with_instance ~name:n ~role:r l, v)) s.counters));
    gauges =
      sort (map (fun n r s -> List.map (fun (m, l, v) -> (m, with_instance ~name:n ~role:r l, v)) s.gauges));
    histograms =
      sort (map (fun n r s -> List.map (fun (m, l, v) -> (m, with_instance ~name:n ~role:r l, v)) s.histograms));
    spans =
      map (fun n r s ->
          List.map
            (fun (sp : Tel.Snapshot.span) ->
              { sp with labels = with_instance ~name:n ~role:r sp.labels })
            s.spans);
    dropped_spans = List.fold_left (fun acc (_, _, s) -> acc + s.Tel.Snapshot.dropped_spans) 0 parts;
  }

(* ---- one scrape of the whole fleet ---- *)

let scrape_instance t s =
  let result =
    match s.inst.target with
    | Local reg -> Ok (Tel.Snapshot.take reg)
    | Remote { host; port } -> (
      match t.fetch ~host ~port "/metrics.json" with
      | Error e -> Error e
      | Ok (status, _) when status <> 200 -> Error (Printf.sprintf "http %d" status)
      | Ok (_, body) -> (
        match Tel.Json.parse body with
        | None -> Error "unparseable /metrics.json body"
        | Some j -> snapshot_of_json j))
  in
  match result with
  | Ok snap ->
    s.last_snap <- Some snap;
    s.last_ok <- t.clock ();
    s.status <- Fresh
  | Error e -> s.status <- (if s.last_snap = None then Never e else Stale e)

let scrape t =
  List.iter (scrape_instance t) t.states;
  let now = t.clock () in
  let parts =
    List.filter_map
      (fun s -> Option.map (fun snap -> (s.inst.name, s.inst.role, snap)) s.last_snap)
      t.states
  in
  let merged = merge_snapshots parts in
  (* synthetic per-instance liveness gauges: the SLO hooks for staleness *)
  let health =
    List.concat_map
      (fun s ->
        let labels = with_instance ~name:s.inst.name ~role:s.inst.role [] in
        [
          ("fleet.instance_up", labels, if s.status = Fresh then 1.0 else 0.0);
          ("fleet.staleness_seconds", labels, Float.max 0.0 (now -. s.last_ok));
        ])
      t.states
  in
  let merged = { merged with Tel.Snapshot.gauges = merged.Tel.Snapshot.gauges @ health } in
  t.merged <- merged;
  t.scrapes <- t.scrapes + 1;
  (* the ring indexes by timestamp; wall clocks can step backwards (NTP),
     and record_snapshot rejects that — clamp forward instead *)
  let ts =
    match Timeseries.last_ts t.ring with
    | Some last when now <= last -> last +. 1e-6
    | _ -> now
  in
  Timeseries.record_snapshot t.ring ~ts merged

let merged t = t.merged
let ring t = t.ring
let scrapes t = t.scrapes

let status t =
  List.map
    (fun s -> (s.inst.name, s.status, Float.max 0.0 (t.clock () -. s.last_ok)))
    t.states

(* ---- fleet SLO rules over the merged snapshot ---- *)

let fleet_rules ?(max_staleness = infinity) ?(rpc_p99_ceiling = infinity)
    ?(rpc_max_ceiling = infinity) ?(round_ceiling = infinity) () =
  [
    (* fleet-wide sum over every instance and tag: any server-side handler
       failure or corrupt frame anywhere in the fleet breaches *)
    Slo.rule ~name:"fleet.zero_rpc_errors"
      ~description:"no RPC handler failures or corrupt frames on any instance"
      (Slo.Counter "rpc.errors") Slo.Le 0.0;
    (* Gauge_min = the worst instance: one dead process breaches *)
    Slo.rule ~name:"fleet.instances_up" ~description:"every instance answered its last scrape"
      (Slo.Gauge_min "fleet.instance_up") Slo.Ge 1.0;
    (* Gauge = the stalest instance *)
    Slo.rule ~name:"fleet.staleness_seconds"
      ~description:"seconds since the stalest instance last answered a scrape"
      (Slo.Gauge "fleet.staleness_seconds") Slo.Le max_staleness;
    (* label-merged across instances and tags: fleet-wide request latency *)
    Slo.rule ~name:"fleet.rpc_p99_seconds"
      ~description:"p99 RPC handler latency over every instance and tag"
      (Slo.Hist_p99 "rpc.request_seconds") Slo.Le rpc_p99_ceiling;
    (* cross-instance max: the slowest single handler invocation anywhere
       (dominated by mix.process — the per-mixer round-latency ceiling) *)
    Slo.rule ~name:"fleet.rpc_max_seconds"
      ~description:"slowest single RPC handler invocation over all mixers and PKGs"
      (Slo.Hist_max "rpc.request_seconds") Slo.Le rpc_max_ceiling;
    (* orchestrator-side end-to-end round span, when tracing is on *)
    Slo.rule ~name:"fleet.round_seconds" ~description:"slowest end-to-end round on the orchestrator"
      (Slo.Span_max "net.round") Slo.Le round_ceiling;
  ]

let evaluate t rules = Slo.evaluate rules t.merged

(* ---- cross-process trace stitching ---- *)

let traces t = Trace.traces t.merged

let trace_instances spans =
  List.sort_uniq compare
    (List.filter_map
       (fun ((_ : Trace.ctx), (sp : Tel.Snapshot.span)) -> List.assoc_opt "instance" sp.labels)
       spans)

let cross_process_traces ?(min_instances = 2) t =
  List.filter (fun (_, spans) -> List.length (trace_instances spans) >= min_instances) (traces t)

(* ---- per-process dashboard rows ---- *)

type row = {
  row_name : string;
  row_role : string;
  row_up : bool;
  row_status : string; (* "up", or the failure-class-prefixed fetch error *)
  row_staleness : float;
  row_rpc_calls : int;
  row_rpc_errors : int;
  row_rpc_p99 : float; (* seconds; 0 when no requests were observed *)
  row_spans : int;
  row_heap_words : float; (* 0 when the instance samples no runtime stats *)
}

let rows t =
  let now = t.clock () in
  List.map
    (fun s ->
      let snap = match s.last_snap with Some sn -> sn | None -> empty_snapshot in
      let hist name =
        List.fold_left
          (fun acc (n, _, h) -> if n = name then Tel.Histogram.merge acc h else acc)
          Tel.Histogram.empty snap.Tel.Snapshot.histograms
      in
      let gauge name =
        List.fold_left
          (fun acc (n, _, v) -> if n = name then Float.max acc v else acc)
          0.0 snap.Tel.Snapshot.gauges
      in
      let lat = hist "rpc.request_seconds" in
      {
        row_name = s.inst.name;
        row_role = s.inst.role;
        row_up = s.status = Fresh;
        row_status =
          (match s.status with Fresh -> "up" | Stale e -> e | Never e -> e);
        row_staleness = Float.max 0.0 (now -. s.last_ok);
        row_rpc_calls = Tel.Snapshot.counter_sum snap "rpc.calls";
        row_rpc_errors = Tel.Snapshot.counter_sum snap "rpc.errors";
        row_rpc_p99 = (if lat.Tel.Histogram.count = 0 then 0.0 else Tel.Histogram.quantile lat 0.99);
        row_spans = List.length snap.Tel.Snapshot.spans;
        row_heap_words = gauge "runtime.heap_words";
      })
    t.states
