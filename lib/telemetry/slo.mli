(** SLO / health engine: declarative rules evaluated over snapshots
    (DESIGN.md §9).

    A {!rule} names a scalar {!source} derived from a
    {!Telemetry.Snapshot.t} (counter sum, worst gauge, histogram
    statistic, span statistic, or a hit-rate over two counters), a
    comparison and a threshold. {!evaluate} turns a rule list and a
    snapshot into a pass/fail {!report}. Rules whose metric is absent
    from the snapshot are {e skipped} (reported with [value = None],
    passing), so one rule set serves wall-clock rounds, simulated rounds
    and partial deployments alike.

    {!default_rules} is Alpenhorn's built-in set: round-deadline misses
    for both phases, the §6 mailbox-load ceiling, the pairing-cache
    hit-rate floor, zero undecryptable onions, and DES queue quiescence. *)

type source =
  | Counter of string  (** {!Telemetry.Snapshot.counter_sum} *)
  | Gauge of string  (** max over the gauge's label sets *)
  | Gauge_min of string
      (** min over the gauge's label sets — the worst reading when the
          rule is a floor (e.g. per-domain pool utilization) *)
  | Hist_mean of string  (** mean of label-merged histogram *)
  | Hist_p99 of string
  | Hist_max of string
  | Span_total of string  (** summed duration of spans with this name *)
  | Span_max of string  (** slowest single span *)
  | Span_count of string
  | Hit_rate of string * string
      (** [Hit_rate (hits, misses)] = hits / (hits + misses); absent when
          both counters are missing or their sum is zero *)

type cmp = Le | Ge

type rule = {
  name : string;
  description : string;
  source : source;
  cmp : cmp;
  threshold : float;
}

val rule : name:string -> description:string -> source -> cmp -> float -> rule

val value_of : Telemetry.Snapshot.t -> source -> float option
(** The scalar a source denotes in this snapshot; [None] when the
    underlying metric is absent (or a hit-rate has no observations). *)

type check = {
  rule : rule;
  value : float option;  (** [None] = metric absent, rule skipped *)
  pass : bool;
}

type report = { checks : check list; healthy : bool }

val check_rule : Telemetry.Snapshot.t -> rule -> check
val evaluate : rule list -> Telemetry.Snapshot.t -> report

val default_rules :
  ?addfriend_deadline:float ->
  ?dialing_deadline:float ->
  ?mailbox_ceiling:float ->
  ?cache_hit_floor:float ->
  ?max_consecutive_aborts:float ->
  ?recovery_ceiling:float ->
  ?gc_pause_ceiling:float ->
  ?heap_words_ceiling:float ->
  ?pool_util_floor:float ->
  ?scale_bytes_per_client_ceiling:float ->
  ?scale_words_per_client_ceiling:float ->
  unit ->
  rule list
(** Alpenhorn's built-in rule set. Deadlines, the mailbox ceiling and the
    failure-model bounds ([max_consecutive_aborts] over the
    [faults.consecutive_aborts] gauge, [recovery_ceiling] in seconds over
    the [faults.recovery_seconds] histogram — DESIGN.md §10) default to
    [infinity] (never fail) and the cache floor to [0.0], so callers opt
    into exactly the bounds they can justify; the zero-drop and
    DES-quiescence rules are always armed. Fault metrics are absent in a
    fault-free run, so those rules skip rather than pass vacuously.

    Runtime rules (DESIGN.md §12) follow the same pattern:
    [gc_pause_ceiling] bounds the [runtime.gc.max_pause_seconds] gauge,
    [heap_words_ceiling] the [runtime.heap_words] gauge (both default
    [infinity]), and [pool_util_floor] (default [0.0]) puts a
    {!Gauge_min} floor under [parallel.domain_util] — every rule skips
    when no {!Runtime_stats} sampler or domain pool has populated its
    metric.

    Scale rules guard million-user rounds (DESIGN.md §15):
    [scale_bytes_per_client_ceiling] bounds the [scale.bytes_per_client]
    gauge (a client's §5.1 shard download) and
    [scale_words_per_client_ceiling] the [scale.words_per_client] gauge
    (server-side peak heap amortized per client); both default [infinity]
    and skip when no scale round has run. *)

val pp_report : Format.formatter -> report -> unit
(** One line per rule: [[ok|FAIL|skip] name value cmp threshold]. *)

val report_to_json : report -> string
(** Self-contained JSON document; non-finite thresholds serialize as
    [null]. *)
