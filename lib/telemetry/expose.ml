(* HTTP-facing views of the registry: Prometheus text exposition 0.0.4,
   the JSON snapshot, the SLO health endpoint and time-series queries.
   This module only renders — it knows nothing about sockets; the
   lib/net listener (or a test) routes requests into [handle]. *)

module Tel = Telemetry

type response = { status : int; content_type : string; body : string }

(* ---- Prometheus text exposition format 0.0.4 ---- *)

(* metric names: [a-zA-Z_:][a-zA-Z0-9_:]*; we map every other byte
   (dots included) to '_' and prefix '_' when the first byte is invalid *)
let sanitize_name name =
  if name = "" then "_"
  else begin
    let ok_first c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':' in
    let ok c = ok_first c || (c >= '0' && c <= '9') in
    let b = Buffer.create (String.length name + 1) in
    if not (ok_first name.[0]) then Buffer.add_char b '_';
    String.iter (fun c -> Buffer.add_char b (if ok c then c else '_')) name;
    Buffer.contents b
  end

(* label names are stricter: no ':' *)
let sanitize_label_name name =
  let s = sanitize_name name in
  String.map (fun c -> if c = ':' then '_' else c) s

(* label values: escape backslash, double quote and newline (the three
   escapes the exposition format defines) *)
let escape_label_value v =
  let b = Buffer.create (String.length v + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let prom_float f =
  if Float.is_nan f then "NaN"
  else if f = infinity then "+Inf"
  else if f = neg_infinity then "-Inf"
  else Printf.sprintf "%.17g" f

let render_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf "%s=\"%s\"" (sanitize_label_name k) (escape_label_value v))
           labels)
    ^ "}"

(* extra goes inside the braces alongside the metric's own labels (the
   histogram "le" bound) *)
let render_labels_with labels extra =
  let all = labels @ extra in
  render_labels all

let add_type b name kind seen =
  if not (Hashtbl.mem seen name) then begin
    Hashtbl.replace seen name ();
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind)
  end

let metrics_text ?(labels = []) (snap : Tel.Snapshot.t) =
  (* [labels] are constant per-process labels (instance, role): they go
     inside the braces ahead of each metric's own labels, so one fleet
     scrape config distinguishes every process. A name collision keeps
     the metric's own label (more specific wins). *)
  let merge own = labels |> List.filter (fun (k, _) -> not (List.mem_assoc k own)) |> fun c -> c @ own in
  let render_labels own = render_labels (merge own) in
  let render_labels_with own extra = render_labels_with (merge own) extra in
  let b = Buffer.create 4096 in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (name, labels, v) ->
      let n = sanitize_name name in
      add_type b n "counter" seen;
      Buffer.add_string b (Printf.sprintf "%s%s %d\n" n (render_labels labels) v))
    snap.Tel.Snapshot.counters;
  List.iter
    (fun (name, labels, v) ->
      let n = sanitize_name name in
      add_type b n "gauge" seen;
      Buffer.add_string b (Printf.sprintf "%s%s %s\n" n (render_labels labels) (prom_float v)))
    snap.Tel.Snapshot.gauges;
  List.iter
    (fun (name, labels, (h : Tel.Histogram.snap)) ->
      let n = sanitize_name name in
      add_type b n "histogram" seen;
      (* cumulative buckets over the shared log-2 layout; only buckets
         that hold observations are emitted (cumulative counts remain
         correct — a skipped bucket adds nothing), plus the mandatory
         +Inf bucket equal to the total count *)
      let cum = ref 0 in
      Array.iteri
        (fun i c ->
          if c > 0 then begin
            cum := !cum + c;
            Buffer.add_string b
              (Printf.sprintf "%s_bucket%s %d\n" n
                 (render_labels_with labels
                    [ ("le", prom_float (Tel.Histogram.bucket_lower (i + 1))) ])
                 !cum)
          end)
        h.Tel.Histogram.buckets;
      Buffer.add_string b
        (Printf.sprintf "%s_bucket%s %d\n" n
           (render_labels_with labels [ ("le", "+Inf") ])
           h.Tel.Histogram.count);
      Buffer.add_string b
        (Printf.sprintf "%s_sum%s %s\n" n (render_labels labels) (prom_float h.Tel.Histogram.sum));
      Buffer.add_string b
        (Printf.sprintf "%s_count%s %d\n" n (render_labels labels) h.Tel.Histogram.count))
    snap.Tel.Snapshot.histograms;
  Buffer.contents b

(* ---- endpoint routing ---- *)

type config = {
  registry : Tel.registry;
  series : Timeseries.t option;
  slo_rules : Slo.rule list;
  runtime : Runtime_stats.t option;
  labels : (string * string) list;
}

let config ?(registry = Tel.default) ?series ?(slo_rules = Slo.default_rules ()) ?runtime
    ?(labels = []) () =
  { registry; series; slo_rules; runtime; labels }

let text_response status body = { status; content_type = "text/plain; charset=utf-8"; body }
let json_response status body = { status; content_type = "application/json"; body }

let prom_content_type = "text/plain; version=0.0.4; charset=utf-8"

let index_body =
  "alpenhorn metrics endpoint\n\
   GET /metrics       Prometheus text exposition format 0.0.4\n\
   GET /metrics.json  telemetry snapshot as JSON\n\
   GET /slo           SLO health report (200 healthy / 503 unhealthy)\n\
   GET /series?name=METRIC[&window=SECONDS]  time-series ring query\n"

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let series_response cfg query =
  match cfg.series with
  | None -> text_response 404 "no time-series ring attached\n"
  | Some ring -> (
    match List.assoc_opt "name" query with
    | None | Some "" -> text_response 400 "missing required query parameter: name\n"
    | Some name -> (
      match
        match List.assoc_opt "window" query with
        | None -> Ok None
        | Some w -> (
          match float_of_string_opt w with
          | Some f when f > 0.0 -> Ok (Some f)
          | _ -> Error ())
      with
      | Error () -> text_response 400 "window must be a positive number of seconds\n"
      | Ok window ->
        (* a bare name also matches labeled instances, so check both forms *)
        let known =
          List.exists (fun k -> k = name || Timeseries.matches ~q:name k) (Timeseries.names ring)
        in
        if not known then text_response 404 (Printf.sprintf "unknown series: %s\n" name)
        else begin
          let pts = Timeseries.points ring ?window name in
          (* %.17g: wall-clock point timestamps need full double precision *)
          let jf f = if Float.is_finite f then Printf.sprintf "%.17g" f else "0" in
          let body =
            Printf.sprintf
              "{\"name\":\"%s\",\"samples\":%d,\"rate_per_s\":%s,\"p50\":%s,\"p99\":%s,\"points\":[%s]}"
              (json_escape name) (Timeseries.length ring)
              (jf (Timeseries.rate ring ?window name))
              (jf (Timeseries.quantile ring ?window name 0.5))
              (jf (Timeseries.quantile ring ?window name 0.99))
              (String.concat ","
                 (List.map (fun (ts, v) -> Printf.sprintf "[%s,%s]" (jf ts) (jf v)) pts))
          in
          json_response 200 body
        end))

let handle cfg ~meth ~path ~query () =
  if String.uppercase_ascii meth <> "GET" then text_response 405 "only GET is supported\n"
  else begin
    (* scrapes should carry fresh runtime/GC readings even while the
       orchestrating domain is busy inside a round *)
    (match cfg.runtime with
    | Some rs when path = "/metrics" || path = "/metrics.json" -> Runtime_stats.sample rs
    | _ -> ());
    match path with
    | "/" | "/index" -> text_response 200 index_body
    | "/metrics" ->
      let snap = Tel.Snapshot.take cfg.registry in
      { status = 200; content_type = prom_content_type; body = metrics_text ~labels:cfg.labels snap }
    | "/metrics.json" ->
      let snap = Tel.Snapshot.take cfg.registry in
      let body = Tel.Snapshot.to_json snap in
      (* constant labels ride in a wrapper, never inside the snapshot:
         Timeseries.record_json and the fleet collector both unwrap the
         "telemetry" member *)
      let body =
        if cfg.labels = [] then body
        else
          Printf.sprintf "{\"labels\":{%s},\"telemetry\":%s}"
            (String.concat ","
               (List.map
                  (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
                  cfg.labels))
            body
      in
      json_response 200 body
    | "/slo" ->
      let snap = Tel.Snapshot.take cfg.registry in
      let report = Slo.evaluate cfg.slo_rules snap in
      json_response (if report.Slo.healthy then 200 else 503) (Slo.report_to_json report)
    | "/series" -> series_response cfg query
    | _ -> text_response 404 "not found\n"
  end
