(* Time-series ring: cumulative samples in, windowed deltas out.

   Storage is cumulative (each sample is a full snapshot of the
   registry); every query works on consecutive-pair deltas clamped at
   zero. The clamp is what makes the ring indifferent to
   [Snapshot.take ~reset:true] elsewhere in the process: a reset shows up
   as one negative delta, which the clamp maps to "no increase in that
   interval" — observations recorded after the reset are unaffected.

   A mutex guards the ring: the orchestrating domain records at round
   close while the metrics listener's domain answers /series queries. *)

module Tel = Telemetry

type sample = {
  ts : float;
  counters : (string * int) list; (* key = name or name{k=v,...}, sorted *)
  gauges : (string * float) list;
  hists : (string * Tel.Histogram.snap) list;
}

type t = {
  reg : Tel.registry option;
  cap : int;
  ring : sample option array;
  mutable head : int; (* next write slot *)
  mutable len : int;
  mu : Mutex.t;
}

let make ?(capacity = 720) reg =
  if capacity < 2 then invalid_arg "Timeseries.create: capacity must be >= 2";
  { reg; cap = capacity; ring = Array.make capacity None; head = 0; len = 0; mu = Mutex.create () }

let create ?capacity reg = make ?capacity (Some reg)
let create_detached ?capacity () = make ?capacity None
let default = create Tel.default

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let capacity t = t.cap
let length t = locked t (fun () -> t.len)

let clear t =
  locked t (fun () ->
      Array.fill t.ring 0 t.cap None;
      t.head <- 0;
      t.len <- 0)

(* oldest-first list of retained samples; call under the lock *)
let samples_unlocked t =
  let out = ref [] in
  for i = t.len downto 1 do
    let idx = (t.head - i + (t.cap * 2)) mod t.cap in
    match t.ring.(idx) with Some s -> out := s :: !out | None -> ()
  done;
  List.rev !out

let newest_unlocked t =
  if t.len = 0 then None else t.ring.((t.head - 1 + t.cap) mod t.cap)

let last_ts t = locked t (fun () -> Option.map (fun s -> s.ts) (newest_unlocked t))

let span_seconds t =
  locked t (fun () ->
      match samples_unlocked t with
      | [] | [ _ ] -> 0.0
      | first :: _ as all -> (List.nth all (List.length all - 1)).ts -. first.ts)

let key name labels =
  match labels with
  | [] -> name
  | l ->
    name ^ "{" ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) (List.sort compare l)) ^ "}"

let sample_of_snapshot ~ts (snap : Tel.Snapshot.t) =
  {
    ts;
    counters = List.map (fun (n, l, v) -> (key n l, v)) snap.Tel.Snapshot.counters;
    gauges = List.map (fun (n, l, v) -> (key n l, v)) snap.Tel.Snapshot.gauges;
    hists = List.map (fun (n, l, s) -> (key n l, s)) snap.Tel.Snapshot.histograms;
  }

let push_unlocked t s =
  t.ring.(t.head) <- Some s;
  t.head <- (t.head + 1) mod t.cap;
  if t.len < t.cap then t.len <- t.len + 1

let append t s =
  locked t (fun () ->
      (match newest_unlocked t with
      | Some prev when s.ts < prev.ts ->
        invalid_arg
          (Printf.sprintf "Timeseries: sample at %g precedes newest sample at %g" s.ts prev.ts)
      | _ -> ());
      push_unlocked t s)

let record t =
  match t.reg with
  | None -> invalid_arg "Timeseries.record: detached ring (use record_snapshot)"
  | Some reg ->
    let snap = Tel.Snapshot.take reg in
    let s = sample_of_snapshot ~ts:(Tel.now reg) snap in
    (* A backward clock reading means the registry clock was restarted (a
       new DES run): begin a new ring epoch rather than rejecting the
       sample — windows must not mix two simulated timelines. *)
    locked t (fun () ->
        (match newest_unlocked t with
        | Some prev when s.ts < prev.ts ->
          Array.fill t.ring 0 t.cap None;
          t.head <- 0;
          t.len <- 0
        | _ -> ());
        push_unlocked t s)

let record_snapshot t ~ts snap = append t (sample_of_snapshot ~ts snap)

(* ---- key matching: exact labeled key, or bare-name label merge ---- *)

let matches ~q k =
  q = k
  || String.length k > String.length q
     && String.sub k 0 (String.length q) = q
     && k.[String.length q] = '{'
     && not (String.contains q '{')

let counter_at s q =
  match List.filter (fun (k, _) -> matches ~q k) s.counters with
  | [] -> None
  | l -> Some (List.fold_left (fun acc (_, v) -> acc + v) 0 l)

let gauge_at s q =
  match List.filter (fun (k, _) -> matches ~q k) s.gauges with
  | [] -> None
  | l -> Some (List.fold_left (fun acc (_, v) -> Float.max acc v) neg_infinity l)

let hist_at s q =
  match List.filter (fun (k, _) -> matches ~q k) s.hists with
  | [] -> None
  | l -> Some (List.fold_left (fun acc (_, h) -> Tel.Histogram.merge acc h) Tel.Histogram.empty l)

(* trailing-window slice, oldest first *)
let window_samples t window =
  locked t (fun () ->
      let all = samples_unlocked t in
      match (window, newest_unlocked t) with
      | None, _ | _, None -> all
      | Some w, Some newest -> List.filter (fun s -> s.ts >= newest.ts -. w) all)

let names t =
  let keys = Hashtbl.create 64 in
  List.iter
    (fun s ->
      List.iter (fun (k, _) -> Hashtbl.replace keys k ()) s.counters;
      List.iter (fun (k, _) -> Hashtbl.replace keys k ()) s.gauges;
      List.iter (fun (k, _) -> Hashtbl.replace keys k ()) s.hists)
    (window_samples t None);
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) keys [])

let rec pairs = function
  | a :: (b :: _ as rest) -> (a, b) :: pairs rest
  | [] | [ _ ] -> []

let rate t ?window name =
  match window_samples t window with
  | [] | [ _ ] -> 0.0
  | first :: _ as all ->
    let last = List.nth all (List.length all - 1) in
    let elapsed = last.ts -. first.ts in
    if elapsed <= 0.0 then 0.0
    else
      let total =
        List.fold_left
          (fun acc (s1, s2) ->
            match (counter_at s1 name, counter_at s2 name) with
            | Some c1, Some c2 -> acc + max 0 (c2 - c1)
            | None, Some c2 -> acc + max 0 c2 (* key appeared mid-window *)
            | _ -> acc)
          0 (pairs all)
      in
      float_of_int total /. elapsed

let gauge_stats t ?window name =
  List.fold_left
    (fun acc s ->
      match gauge_at s name with
      | None -> acc
      | Some v -> (
        match acc with
        | None -> Some (v, v, v)
        | Some (mn, mx, _) -> Some (Float.min mn v, Float.max mx v, v)))
    None (window_samples t window)

(* increment of a histogram between two cumulative states: bucket-wise
   clamped difference; min/max reconstructed at bucket resolution *)
let hist_delta (h1 : Tel.Histogram.snap option) (h2 : Tel.Histogram.snap) =
  let b1 = match h1 with Some h -> h.Tel.Histogram.buckets | None -> [||] in
  let nb = Tel.Histogram.bucket_count in
  let buckets =
    Array.init nb (fun i ->
        let prev = if i < Array.length b1 then b1.(i) else 0 in
        max 0 (h2.Tel.Histogram.buckets.(i) - prev))
  in
  let count = Array.fold_left ( + ) 0 buckets in
  if count = 0 then Tel.Histogram.empty
  else begin
    let sum =
      let s1 = match h1 with Some h -> h.Tel.Histogram.sum | None -> 0.0 in
      Float.max 0.0 (h2.Tel.Histogram.sum -. s1)
    in
    let lo = ref (nb - 1) and hi = ref 0 in
    Array.iteri
      (fun i c ->
        if c > 0 then begin
          if i < !lo then lo := i;
          if i > !hi then hi := i
        end)
      buckets;
    {
      Tel.Histogram.count;
      sum;
      min_v = Tel.Histogram.bucket_lower !lo;
      max_v = Tel.Histogram.bucket_lower (!hi + 1);
      buckets;
    }
  end

let hist_window t ?window name =
  let all = window_samples t window in
  List.fold_left
    (fun acc (s1, s2) ->
      match hist_at s2 name with
      | None -> acc
      | Some h2 -> Tel.Histogram.merge acc (hist_delta (hist_at s1 name) h2))
    Tel.Histogram.empty (pairs all)

let quantile t ?window name q = Tel.Histogram.quantile (hist_window t ?window name) q

let points t ?window name =
  let all = window_samples t window in
  (* kind from the newest sample that carries the key *)
  let kind =
    List.fold_left
      (fun acc s ->
        if counter_at s name <> None then `Counter
        else if gauge_at s name <> None then `Gauge
        else if hist_at s name <> None then `Hist
        else acc)
      `Absent all
  in
  match kind with
  | `Absent -> []
  | `Gauge ->
    List.filter_map (fun s -> Option.map (fun v -> (s.ts, v)) (gauge_at s name)) all
  | `Counter ->
    List.filter_map
      (fun (s1, s2) ->
        match (counter_at s1 name, counter_at s2 name) with
        | Some c1, Some c2 ->
          let dt = s2.ts -. s1.ts in
          Some (s2.ts, if dt > 0.0 then float_of_int (max 0 (c2 - c1)) /. dt else 0.0)
        | _ -> None)
      (pairs all)
  | `Hist ->
    List.filter_map
      (fun (s1, s2) ->
        match hist_at s2 name with
        | None -> None
        | Some h2 ->
          Some (s2.ts, float_of_int (hist_delta (hist_at s1 name) h2).Tel.Histogram.count))
      (pairs all)

(* ---- JSONL round-trip ---- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* %.17g round-trips every finite double: wall-clock epochs need more
   than 9 significant digits to keep sub-second spacing between samples *)
let json_float f = if Float.is_finite f then Printf.sprintf "%.17g" f else "0"

let sample_to_json s =
  let obj fields = "{" ^ String.concat "," fields ^ "}" in
  let kv render (k, v) = Printf.sprintf "\"%s\":%s" (json_escape k) (render v) in
  let hist (h : Tel.Histogram.snap) =
    obj
      [
        Printf.sprintf "\"count\":%d" h.Tel.Histogram.count;
        Printf.sprintf "\"sum\":%s" (json_float h.Tel.Histogram.sum);
        Printf.sprintf "\"min\":%s"
          (json_float (if h.Tel.Histogram.count = 0 then 0.0 else h.Tel.Histogram.min_v));
        Printf.sprintf "\"max\":%s"
          (json_float (if h.Tel.Histogram.count = 0 then 0.0 else h.Tel.Histogram.max_v));
        Printf.sprintf "\"buckets\":[%s]"
          (String.concat ","
             (List.map string_of_int (Array.to_list h.Tel.Histogram.buckets)));
      ]
  in
  obj
    [
      Printf.sprintf "\"ts\":%s" (json_float s.ts);
      Printf.sprintf "\"counters\":%s" (obj (List.map (kv string_of_int) s.counters));
      Printf.sprintf "\"gauges\":%s" (obj (List.map (kv json_float) s.gauges));
      Printf.sprintf "\"hists\":%s" (obj (List.map (kv hist) s.hists));
    ]

let to_jsonl t =
  let all = window_samples t None in
  String.concat "" (List.map (fun s -> sample_to_json s ^ "\n") all)

let hist_of_json j =
  let num k = Option.bind (Tel.Json.member k j) Tel.Json.to_num in
  match (num "count", num "sum") with
  | Some count, Some sum ->
    let buckets = Array.make Tel.Histogram.bucket_count 0 in
    (match Tel.Json.member "buckets" j with
    | Some (Tel.Json.Arr l) ->
      List.iteri
        (fun i v ->
          if i < Tel.Histogram.bucket_count then
            match Tel.Json.to_num v with Some f -> buckets.(i) <- int_of_float f | None -> ())
        l
    | _ -> ());
    let count = int_of_float count in
    Some
      {
        Tel.Histogram.count;
        sum;
        min_v =
          (if count = 0 then infinity else Option.value ~default:0.0 (num "min"));
        max_v =
          (if count = 0 then neg_infinity else Option.value ~default:0.0 (num "max"));
        buckets;
      }
  | _ -> None

let sample_of_json ~ts j =
  let fields section f =
    match Tel.Json.member section j with
    | Some (Tel.Json.Obj kvs) -> List.filter_map (fun (k, v) -> Option.map (fun v -> (k, v)) (f v)) kvs
    | _ -> []
  in
  {
    ts;
    counters = fields "counters" (fun v -> Option.map int_of_float (Tel.Json.to_num v));
    gauges = fields "gauges" Tel.Json.to_num;
    hists = fields "hists" hist_of_json;
  }

let of_jsonl text =
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "")
  in
  let rec go acc i = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match Tel.Json.parse line with
      | None -> Error (Printf.sprintf "line %d: not valid JSON" i)
      | Some j -> (
        match Option.bind (Tel.Json.member "ts" j) Tel.Json.to_num with
        | None -> Error (Printf.sprintf "line %d: missing ts" i)
        | Some ts -> go (sample_of_json ~ts j :: acc) (i + 1) rest))
  in
  match go [] 1 lines with
  | Error _ as e -> e
  | Ok samples ->
    let t = create_detached ~capacity:(max 2 (List.length samples)) () in
    List.iter (fun s -> locked t (fun () -> push_unlocked t s)) samples;
    Ok t

(* ---- /metrics.json ingestion (remote-poll mode) ---- *)

let record_json t ~ts j =
  let doc = match Tel.Json.member "telemetry" j with Some inner -> inner | None -> j in
  let entry v =
    match (Tel.Json.member "name" v, Tel.Json.member "labels" v) with
    | Some (Tel.Json.Str name), labels ->
      let l =
        match labels with
        | Some (Tel.Json.Obj kvs) ->
          List.filter_map
            (fun (k, v) -> Option.map (fun s -> (k, s)) (Tel.Json.to_str v))
            kvs
        | _ -> []
      in
      Some (key name l, v)
    | _ -> None
  in
  let section name =
    match Tel.Json.member name doc with
    | Some (Tel.Json.Arr l) -> List.filter_map entry l
    | _ -> []
  in
  match Tel.Json.member "counters" doc with
  | None -> Error "not a telemetry snapshot document (no counters member)"
  | Some _ ->
    let num_of v = Option.bind (Tel.Json.member "value" v) Tel.Json.to_num in
    let s =
      {
        ts;
        counters =
          List.filter_map
            (fun (k, v) -> Option.map (fun f -> (k, int_of_float f)) (num_of v))
            (section "counters");
        gauges = List.filter_map (fun (k, v) -> Option.map (fun f -> (k, f)) (num_of v))
            (section "gauges");
        hists =
          List.filter_map (fun (k, v) -> Option.map (fun h -> (k, h)) (hist_of_json v))
            (section "histograms");
      }
    in
    append t s;
    Ok ()
