(* ANSI terminal dashboard over the time-series ring. Pure rendering:
   ring in, string out — the CLI owns the poll loop and the terminal,
   Alcotest renders frames without one. *)

type palette = { dim : string; bold : string; good : string; bad : string; reset : string }

let colors = { dim = "\x1b[2m"; bold = "\x1b[1m"; good = "\x1b[32m"; bad = "\x1b[31m"; reset = "\x1b[0m" }
let plain = { dim = ""; bold = ""; good = ""; bad = ""; reset = "" }
let ansi_clear = "\x1b[2J\x1b[H"

(* eight block glyphs, lowest to highest; a constant series renders as
   mid-height rather than a degenerate all-max row *)
let blocks = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline values =
  match values with
  | [] -> ""
  | vs ->
    let lo = List.fold_left Float.min infinity vs in
    let hi = List.fold_left Float.max neg_infinity vs in
    let b = Buffer.create (8 * List.length vs) in
    List.iter
      (fun v ->
        let i =
          if not (Float.is_finite v) then 0
          else if hi <= lo then 3
          else
            let r = (v -. lo) /. (hi -. lo) in
            Stdlib.min 7 (Stdlib.max 0 (int_of_float (r *. 7.99)))
        in
        Buffer.add_string b blocks.(i))
      vs;
    Buffer.contents b

(* 1234567 -> "1.23M"; keeps small magnitudes plain *)
let fmt_si v =
  let a = Float.abs v in
  if not (Float.is_finite v) then Printf.sprintf "%g" v
  else if a >= 1e9 then Printf.sprintf "%.2fG" (v /. 1e9)
  else if a >= 1e6 then Printf.sprintf "%.2fM" (v /. 1e6)
  else if a >= 1e3 then Printf.sprintf "%.2fk" (v /. 1e3)
  else if a >= 1.0 || a = 0.0 then Printf.sprintf "%.2f" v
  else Printf.sprintf "%.4f" v

let fmt_seconds v =
  if v >= 1.0 then Printf.sprintf "%.2fs" v
  else if v >= 1e-3 then Printf.sprintf "%.2fms" (v *. 1e3)
  else if v > 0.0 then Printf.sprintf "%.0fus" (v *. 1e6)
  else "0"

let truncate_line width s =
  (* byte-oriented truncation is fine for the ASCII gutter; sparklines sit
     at end of line and are cut at a glyph boundary *)
  if String.length s <= width then s
  else
    let cut = ref (Stdlib.min width (String.length s)) in
    while !cut > 0 && Char.code s.[!cut - 1] land 0xC0 = 0x80 do decr cut done;
    String.sub s 0 !cut

let spark_of_points points = sparkline (List.map snd points)

let render ?(width = 100) ?(color = true) ?(window = 60.0) ~ring ~slo () =
  let p = if color then colors else plain in
  let module Ts = Timeseries in
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (truncate_line width s); Buffer.add_char b '\n') fmt in
  let now = match Ts.last_ts ring with Some t -> t | None -> 0.0 in
  let w = window in
  line "%salpenhorn top%s  t=%s  window=%gs  samples=%d/%d  span=%s" p.bold p.reset
    (fmt_seconds (Float.abs now)) window (Ts.length ring) (Ts.capacity ring)
    (fmt_seconds (Ts.span_seconds ring));
  let counter_row label key =
    let r = Ts.rate ring ~window:w key in
    line "  %-12s %10s/s  %s%s%s" label (fmt_si r) p.dim
      (spark_of_points (Ts.points ring ~window:w key))
      p.reset
  in
  counter_row "rounds" "round.completed";
  counter_row "unwraps" "mix.onions_in";
  counter_row "noise" "mix.noise_generated";
  counter_row "extractions" "pkg.extractions";
  (match Ts.gauge_stats ring ~window:w "runtime.gc.max_pause_seconds" with
  | None -> line "  %-12s %10s" "gc pause" "-"
  | Some (_, max_v, last) ->
    line "  %-12s %10s    %s%s%s  window max %s" "gc pause" (fmt_seconds last) p.dim
      (spark_of_points (Ts.points ring ~window:w "runtime.gc.max_pause_seconds"))
      p.reset (fmt_seconds max_v));
  (match Ts.gauge_stats ring ~window:w "runtime.heap_words" with
  | None -> line "  %-12s %10s" "heap" "-"
  | Some (min_v, max_v, last) ->
    line "  %-12s %9sw    %s%s%s  min %sw max %sw" "heap" (fmt_si last) p.dim
      (spark_of_points (Ts.points ring ~window:w "runtime.heap_words"))
      p.reset (fmt_si min_v) (fmt_si max_v));
  (match Ts.gauge_stats ring ~window:w "parallel.domain_util" with
  | None -> ()
  | Some (_, _, last) ->
    line "  %-12s %10s    %s%s%s" "pool util" (fmt_si last) p.dim
      (spark_of_points (Ts.points ring ~window:w "parallel.domain_util"))
      p.reset);
  let p99 = Ts.quantile ring ~window:w "mix.unwrap_seconds" 0.99 in
  if p99 > 0.0 then line "  %-12s %10s    p50 %s" "unwrap p99" (fmt_seconds p99)
      (fmt_seconds (Ts.quantile ring ~window:w "mix.unwrap_seconds" 0.5));
  (match slo with
  | None -> line "  %-12s %10s" "slo" "-"
  | Some (r : Slo.report) ->
    let failed =
      List.filter_map
        (fun (c : Slo.check) -> if c.pass then None else Some c.rule.Slo.name)
        r.Slo.checks
    in
    let skipped =
      List.length (List.filter (fun (c : Slo.check) -> c.value = None) r.Slo.checks)
    in
    if r.Slo.healthy then
      line "  %-12s %s%10s%s  (%d rules, %d skipped)" "slo" p.good "HEALTHY" p.reset
        (List.length r.Slo.checks) skipped
    else
      line "  %-12s %s%10s%s  failing: %s" "slo" p.bad "UNHEALTHY" p.reset
        (String.concat ", " failed));
  Buffer.contents b
