module Bigint = Alpenhorn_bigint.Bigint
module Drbg = Alpenhorn_crypto.Drbg
module Params = Alpenhorn_pairing.Params
module Curve = Alpenhorn_pairing.Curve
module Pairing = Alpenhorn_pairing.Pairing
module Fp2 = Alpenhorn_pairing.Fp2

type secret = Bigint.t
type public = Curve.point
type signature = Curve.point

let keygen (params : Params.t) rng =
  let s = Bigint.add Bigint.one (Drbg.bigint_below rng (Bigint.sub params.q Bigint.one)) in
  (s, Params.mul_g params s)

let public_of_secret (params : Params.t) s = Params.mul_g params s

let hash_msg (params : Params.t) msg = Pairing.hash_to_group params ("bls-msg" ^ msg)

let sign (params : Params.t) sk msg = Curve.mul params.fp sk (hash_msg params msg)

let verify (params : Params.t) pk msg sg =
  match (pk, sg) with
  | Curve.Inf, _ | _, Curve.Inf -> false
  | _ ->
    (* re-verifying the same attestation (same signer key, same round
       message) recurs across clients in a round: both pairings memoize *)
    Curve.is_on_curve params.fp sg
    && Fp2.equal
         (Pairing.pair_cached params sg params.g)
         (Pairing.pair_cached params (hash_msg params msg) pk)

let aggregate (params : Params.t) sigs = List.fold_left (Curve.add params.fp) Curve.infinity sigs
let aggregate_public = aggregate

let verify_multi (params : Params.t) pks msg sg = verify params (aggregate_public params pks) msg sg

let public_bytes (params : Params.t) pk = Curve.to_bytes params.fp pk
let public_of_bytes (params : Params.t) s = Curve.of_bytes params.fp s
let signature_bytes = public_bytes
let signature_of_bytes = public_of_bytes
