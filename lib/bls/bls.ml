module Bigint = Alpenhorn_bigint.Bigint
module Drbg = Alpenhorn_crypto.Drbg
module Params = Alpenhorn_pairing.Params
module Curve = Alpenhorn_pairing.Curve
module Pairing = Alpenhorn_pairing.Pairing
module Fp2 = Alpenhorn_pairing.Fp2

type secret = Bigint.t
type public = Curve.point
type signature = Curve.point

let keygen (params : Params.t) rng =
  let s = Bigint.add Bigint.one (Drbg.bigint_below rng (Bigint.sub params.q Bigint.one)) in
  (s, Params.mul_g params s)

let public_of_secret (params : Params.t) s = Params.mul_g params s

let hash_msg (params : Params.t) msg = Pairing.hash_to_group params ("bls-msg" ^ msg)

let sign (params : Params.t) sk msg = Curve.mul params.fp sk (hash_msg params msg)

let verify (params : Params.t) pk msg sg =
  match (pk, sg) with
  | Curve.Inf, _ | _, Curve.Inf -> false
  | _ ->
    (* re-verifying the same attestation (same signer key, same round
       message) recurs across clients in a round: both pairings memoize *)
    Curve.is_on_curve params.fp sg
    && Fp2.equal
         (Pairing.pair_cached params sg params.g)
         (Pairing.pair_cached params (hash_msg params msg) pk)

(* Small-exponent batch verification: with random scalars r_i, all of
   e(sg_i, g) = e(H(m_i), pk_i) hold iff (with probability 1 - 2^-63 over
   the r_i) e(Σ r_i·sg_i, g) · Π e(-r_i·H(m_i), pk_i) = 1.  The product of
   pairings shares one final exponentiation across the whole batch
   (Pairing.pair_product), so a batch of n costs ~n+1 Miller loops + 1
   final exponentiation instead of 2n of each.  The scalars are derived by
   a DRBG seeded from the entire batch (Fiat-Shamir style): no signature in
   the batch can be chosen as a function of its own scalar. *)
let verify_batch (params : Params.t) items =
  let fp = params.fp in
  match Array.length items with
  | 0 -> true
  | 1 ->
    let pk, msg, sg = items.(0) in
    verify params pk msg sg
  | _ ->
    let structurally_ok (pk, _, sg) =
      match (pk, sg) with
      | Curve.Inf, _ | _, Curve.Inf -> false
      | _ -> Curve.is_on_curve fp sg
    in
    Array.for_all structurally_ok items
    && begin
      let seed = Buffer.create 256 in
      Buffer.add_string seed "bls-batch";
      Array.iter
        (fun (pk, msg, sg) ->
          Buffer.add_string seed (Curve.to_bytes fp pk);
          Buffer.add_string seed (string_of_int (String.length msg));
          Buffer.add_char seed ':';
          Buffer.add_string seed msg;
          Buffer.add_string seed (Curve.to_bytes fp sg))
        items;
      let rng = Drbg.create ~seed:(Buffer.contents seed) in
      (* scalars must be nonzero and < q; q can be as small as 64 bits in
         the test parameter set, so clamp the bit-length below it *)
      let bits = min 64 (Bigint.numbits params.q - 1) in
      let scalars =
        Array.map
          (fun _ ->
            let r = Drbg.bigint_bits rng bits in
            if Bigint.is_zero r then Bigint.one else r)
          items
      in
      let s =
        Curve.msm fp
          (List.mapi (fun i (_, _, sg) -> (scalars.(i), sg)) (Array.to_list items))
      in
      (* group the hash side by signer: e(A, pk)·e(B, pk) = e(A+B, pk), so
         signatures sharing a key (the dominant Alpenhorn shape — a small
         anytrust PKG set attesting many announcements) collapse to one
         pairing per distinct key. Each group's Σ r_i·H(m_i) comes from one
         multi-scalar ladder, and all groups share one affine-conversion
         inversion (msm_batch). *)
      let order = ref [] (* distinct pks, first-seen order *) in
      let by_pk = Hashtbl.create (Array.length items) in
      Array.iteri
        (fun i (pk, msg, _) ->
          let key = Curve.to_bytes fp pk in
          let term = (scalars.(i), hash_msg params msg) in
          match Hashtbl.find_opt by_pk key with
          | Some terms -> terms := term :: !terms
          | None ->
            order := (key, pk) :: !order;
            Hashtbl.add by_pk key (ref [ term ]))
        items;
      let groups = List.rev !order in
      let sums = Curve.msm_batch fp (List.map (fun (key, _) -> !(Hashtbl.find by_pk key)) groups) in
      (* a zero sum contributes e(Inf, ·) = 1, so its factor is omitted;
         same for Σ r_i·sg_i (e.g. signatures cancelling) *)
      let hashes =
        List.concat
          (List.map2
             (fun (_, pk) sum ->
               match sum with Curve.Inf -> [] | _ -> [ (Curve.neg fp sum, pk) ])
             groups sums)
      in
      let pairs =
        match s with Curve.Inf -> hashes | _ -> (s, params.g) :: hashes
      in
      Fp2.equal (Pairing.pair_product params pairs) Fp2.one
    end

let aggregate (params : Params.t) sigs = List.fold_left (Curve.add params.fp) Curve.infinity sigs
let aggregate_public = aggregate

let verify_multi (params : Params.t) pks msg sg = verify params (aggregate_public params pks) msg sg

let public_bytes (params : Params.t) pk = Curve.to_bytes params.fp pk
let public_of_bytes (params : Params.t) s = Curve.of_bytes params.fp s
let signature_bytes = public_bytes
let signature_of_bytes = public_of_bytes
