(** Blind BLS signatures (paper §9, DoS mitigation).

    The paper proposes rate-limiting mixnet submissions by having servers
    "issue a limited number of blinded signatures to each user every day,
    and reject any requests that don't have a valid unblinded signature";
    blinding keeps the tokens unlinkable to the issuance, so the scheme
    leaks no metadata.

    Construction (Boldyreva-style on our symmetric pairing): to get a
    signature on serial [m] without revealing it, the user sends
    [B = H(m) + r·g]; the signer returns [s·B]; the user removes the
    blinding with [s·B − r·pk = s·H(m)] — an ordinary BLS signature that
    {!Bls.verify} accepts. The signer saw only a uniformly random group
    element. *)

module Bigint = Alpenhorn_bigint.Bigint
module Drbg = Alpenhorn_crypto.Drbg
module Params = Alpenhorn_pairing.Params
module Curve = Alpenhorn_pairing.Curve

type blinded = Curve.point
type unblinder = Bigint.t

val blind : Params.t -> Drbg.t -> msg:string -> blinded * unblinder
(** Blind the hash of [msg] with a fresh random factor. *)

val sign_blinded : Params.t -> Bls.secret -> blinded -> Curve.point
(** The signer's side: multiply by the secret key. The signer learns
    nothing about the underlying message. *)

val unblind :
  Params.t -> Bls.public -> signed:Curve.point -> unblinder -> Bls.signature
(** Remove the blinding; the result verifies as a plain BLS signature on
    the original message under the signer's public key. *)

val message_hash_prefix : string
(** Domain separator: blind-signed messages live in a different hash
    domain from ordinary BLS messages, so a blind-signing oracle cannot be
    abused to forge protocol signatures. *)

val verify : Params.t -> Bls.public -> msg:string -> Bls.signature -> bool
(** Verification in the blind domain. *)
