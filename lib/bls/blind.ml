module Bigint = Alpenhorn_bigint.Bigint
module Drbg = Alpenhorn_crypto.Drbg
module Params = Alpenhorn_pairing.Params
module Curve = Alpenhorn_pairing.Curve
module Pairing = Alpenhorn_pairing.Pairing
module Fp2 = Alpenhorn_pairing.Fp2

type blinded = Curve.point
type unblinder = Bigint.t

let message_hash_prefix = "bls-blind"

let hash_msg (params : Params.t) msg = Pairing.hash_to_group params (message_hash_prefix ^ msg)

let blind (params : Params.t) rng ~msg =
  let r = Bigint.add Bigint.one (Drbg.bigint_below rng (Bigint.sub params.q Bigint.one)) in
  let blinded = Curve.add params.fp (hash_msg params msg) (Params.mul_g params r) in
  (blinded, r)

let sign_blinded (params : Params.t) sk blinded = Curve.mul params.fp sk blinded

let unblind (params : Params.t) pk ~signed r =
  Curve.add params.fp signed (Curve.neg params.fp (Curve.mul params.fp r pk))

let verify (params : Params.t) pk ~msg signature =
  match (pk, signature) with
  | Curve.Inf, _ | _, Curve.Inf -> false
  | _ ->
    Curve.is_on_curve params.fp signature
    && Fp2.equal
         (Pairing.pair_cached params signature params.g)
         (Pairing.pair_cached params (hash_msg params msg) pk)
