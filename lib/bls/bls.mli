(** BLS signatures and same-message multisignatures on the pairing curve.

    Used twice by Alpenhorn: user long-term signing keys (SenderSig on
    friend requests, PKG authentication) and the PKG attestation
    multisignature PKGSigs (§4.5): each PKG signs (id, user long-term key,
    round); the client sums the n signatures into one compact value, and a
    verifier needs only the sum of the PKG public keys. With at least one
    honest PKG, a valid multisignature proves that every PKG — in
    particular the honest one — attested to the binding.

    Rogue-key caveat: multi-verification is only used for the fixed,
    pre-announced set of PKG keys (shipped with the client, §3.3), the
    setting where rogue-key attacks do not apply. *)

module Bigint = Alpenhorn_bigint.Bigint
module Drbg = Alpenhorn_crypto.Drbg
module Params = Alpenhorn_pairing.Params
module Curve = Alpenhorn_pairing.Curve

type secret = Bigint.t
type public = Curve.point
type signature = Curve.point

val keygen : Params.t -> Drbg.t -> secret * public
val public_of_secret : Params.t -> secret -> public

val sign : Params.t -> secret -> string -> signature
val verify : Params.t -> public -> string -> signature -> bool

val verify_batch : Params.t -> (public * string * signature) array -> bool
(** Small-exponent batch verification of independent (key, message,
    signature) triples: true iff every triple verifies, except with
    probability ≤ 2⁻⁶³ (over DRBG scalars derived Fiat-Shamir style from
    the whole batch, so no adversarial signature can depend on its own
    scalar) where an invalid batch may pass. Shares a single final
    exponentiation across the batch via {!Pairing.pair_product}, so a
    batch of n costs roughly (n+1) Miller loops + 1 final exponentiation
    instead of 2n pairings. Empty batches verify; singletons defer to
    {!verify}. *)

val aggregate : Params.t -> signature list -> signature
(** Sum of signatures over the {e same} message. *)

val aggregate_public : Params.t -> public list -> public

val verify_multi : Params.t -> public list -> string -> signature -> bool
(** Verify an aggregated same-message multisignature. *)

val public_bytes : Params.t -> public -> string
val public_of_bytes : Params.t -> string -> public option
val signature_bytes : Params.t -> signature -> string
val signature_of_bytes : Params.t -> string -> signature option
