module Bigint = Alpenhorn_bigint.Bigint
module Drbg = Alpenhorn_crypto.Drbg
module Sha256 = Alpenhorn_crypto.Sha256
module Hmac = Alpenhorn_crypto.Hmac
module Chacha20 = Alpenhorn_crypto.Chacha20
module Util = Alpenhorn_crypto.Util
module Pairing = Alpenhorn_pairing.Pairing
module Params = Alpenhorn_pairing.Params
module Curve = Alpenhorn_pairing.Curve
module Field = Alpenhorn_pairing.Field

type master_secret = Bigint.t
type master_public = Curve.point
type identity_key = Curve.point

let setup (params : Params.t) rng =
  let s = Bigint.add Bigint.one (Drbg.bigint_below rng (Bigint.sub params.q Bigint.one)) in
  (s, Params.mul_g params s)

let master_public_of_secret (params : Params.t) s = Params.mul_g params s

let extract (params : Params.t) s id = Curve.mul params.fp s (Pairing.hash_to_group params id)

let aggregate_public (params : Params.t) pubs =
  List.fold_left (Curve.add params.fp) Curve.infinity pubs

let aggregate_identity = aggregate_public

(* FullIdent random oracles, all derived from SHA-256 with distinct labels. *)
let h2 gt_bytes = Sha256.digest ("bf-h2" ^ gt_bytes) (* GT -> 32-byte mask *)

let h3 (params : Params.t) sigma msg =
  (* (σ, m) -> scalar in [1, q): the FO encryption randomness *)
  Pairing.hash_to_scalar params ("bf-h3" ^ sigma ^ msg)

let h4 sigma = Sha256.digest ("bf-h4" ^ sigma) (* σ -> symmetric key *)

let stream_nonce = String.make 12 '\000'

let ciphertext_overhead (params : Params.t) = Curve.point_bytes params.fp + 32

let encrypt (params : Params.t) rng mpk ~id msg =
  let fp = params.fp in
  let sigma = Drbg.bytes rng 32 in
  let r = h3 params sigma msg in
  let u = Params.mul_g params r in
  (* e(H(id), mpk) is fixed per (recipient, PKG) — every request to the
     same master key hits the pairing cache *)
  let g_id = Pairing.pair_cached params (Pairing.hash_to_group params id) mpk in
  let mask = h2 (Pairing.gt_bytes params (Alpenhorn_pairing.Fp2.pow fp g_id r)) in
  let v = Util.xor sigma mask in
  let w = Chacha20.xor_stream ~key:(h4 sigma) ~nonce:stream_nonce msg in
  Curve.to_bytes fp u ^ v ^ w

let decrypt (params : Params.t) d_id ctxt =
  let fp = params.fp in
  let pb = Curve.point_bytes fp in
  if String.length ctxt < pb + 32 then None
  else begin
    match Curve.of_bytes fp (String.sub ctxt 0 pb) with
    | None | Some Curve.Inf -> None
    | Some u ->
      if Curve.equal d_id Curve.Inf then None
      else begin
        let v = String.sub ctxt pb 32 in
        let w = String.sub ctxt (pb + 32) (String.length ctxt - pb - 32) in
        let mask = h2 (Pairing.gt_bytes params (Pairing.pair params d_id u)) in
        let sigma = Util.xor v mask in
        let msg = Chacha20.xor_stream ~key:(h4 sigma) ~nonce:stream_nonce w in
        let r = h3 params sigma msg in
        (* Fujisaki-Okamoto consistency check: U must equal rP *)
        if Curve.equal u (Params.mul_g params r) then Some msg else None
      end
  end

let master_public_bytes (params : Params.t) pk = Curve.to_bytes params.fp pk
let master_public_of_bytes (params : Params.t) s = Curve.of_bytes params.fp s
let identity_key_bytes = master_public_bytes
let identity_key_of_bytes = master_public_of_bytes
