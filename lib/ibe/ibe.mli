(** Boneh-Franklin identity-based encryption with the Fujisaki-Okamoto
    transform (FullIdent), plus Alpenhorn's Anytrust-IBE aggregation (§4.2,
    Appendix A).

    The scheme is ciphertext-anonymous (§4.3): a ciphertext is a uniformly
    random G1 point plus pseudorandom bytes, revealing nothing about the
    recipient identity — the property Alpenhorn relies on for both mailbox
    privacy and mixnet noise generation.

    Anytrust aggregation is plain group linearity: encrypt under the {e sum}
    of the PKGs' master public keys; decrypt with the sum of the per-PKG
    identity keys. Compromising n−1 of n PKGs reveals nothing (Theorem 1 of
    the paper). *)

module Bigint = Alpenhorn_bigint.Bigint
module Drbg = Alpenhorn_crypto.Drbg
module Pairing = Alpenhorn_pairing.Pairing
module Params = Alpenhorn_pairing.Params
module Curve = Alpenhorn_pairing.Curve

type master_secret = Bigint.t
type master_public = Curve.point
type identity_key = Curve.point

val setup : Params.t -> Drbg.t -> master_secret * master_public
(** One PKG's master keypair: [s ∈ Z_q*], [s·g]. *)

val master_public_of_secret : Params.t -> master_secret -> master_public

val extract : Params.t -> master_secret -> string -> identity_key
(** [extract params msk id] = [s·H1(id)], the identity private key. *)

val aggregate_public : Params.t -> master_public list -> master_public
(** Sum of master public keys (Anytrust-IBE encryption key). *)

val aggregate_identity : Params.t -> identity_key list -> identity_key
(** Sum of per-PKG identity keys (Anytrust-IBE decryption key). *)

val ciphertext_overhead : Params.t -> int
(** Bytes added to the plaintext: compressed G1 point + 32-byte mask. *)

val encrypt : Params.t -> Drbg.t -> master_public -> id:string -> string -> string
(** FullIdent encryption of an arbitrary-length message to [id]. *)

val decrypt : Params.t -> identity_key -> string -> string option
(** [None] if the ciphertext is malformed, was encrypted to a different
    identity, or fails the Fujisaki-Okamoto consistency check. Constant
    shape regardless of failure mode (mailbox scanning calls this on every
    ciphertext, §3.1 step 6). *)

val master_public_bytes : Params.t -> master_public -> string
val master_public_of_bytes : Params.t -> string -> master_public option
val identity_key_bytes : Params.t -> identity_key -> string
val identity_key_of_bytes : Params.t -> string -> identity_key option
