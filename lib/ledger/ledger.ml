module Sha256 = Alpenhorn_crypto.Sha256
module Util = Alpenhorn_crypto.Util

(* Certificate-Transparency-style Merkle tree (RFC 6962 shape): leaves
   prefixed 0x00, interior nodes 0x01; an odd node at any level is promoted
   unchanged. *)

type t = {
  mutable leaves : string array; (* leaf hashes *)
  mutable n : int;
  index : (string, (int * string) list) Hashtbl.t; (* identity -> bindings *)
}

type proof = { path : string list (* sibling hashes, leaf-to-root order *) }

let create () = { leaves = Array.make 16 ""; n = 0; index = Hashtbl.create 64 }

let leaf_hash ~identity ~key_bytes =
  Sha256.digest ("\x00" ^ Util.be32 (String.length identity) ^ identity ^ key_bytes)

let node_hash l r = Sha256.digest ("\x01" ^ l ^ r)

let append t ~identity ~key_bytes =
  if t.n = Array.length t.leaves then begin
    let bigger = Array.make (2 * t.n) "" in
    Array.blit t.leaves 0 bigger 0 t.n;
    t.leaves <- bigger
  end;
  t.leaves.(t.n) <- leaf_hash ~identity ~key_bytes;
  let existing = Option.value ~default:[] (Hashtbl.find_opt t.index identity) in
  Hashtbl.replace t.index identity ((t.n, key_bytes) :: existing);
  t.n <- t.n + 1;
  t.n - 1

let size t = t.n

(* root of leaves[lo, lo+len) *)
let rec subtree_root leaves lo len =
  if len = 1 then leaves.(lo)
  else begin
    (* split at the largest power of two < len (RFC 6962) *)
    let k = ref 1 in
    while 2 * !k < len do
      k := 2 * !k
    done;
    node_hash (subtree_root leaves lo !k) (subtree_root leaves (lo + !k) (len - !k))
  end

let root t = if t.n = 0 then "" else subtree_root t.leaves 0 t.n

(* the RFC 6962 split point: largest power of two strictly below len *)
let split len =
  let k = ref 1 in
  while 2 * !k < len do
    k := 2 * !k
  done;
  !k

let prove t i =
  if i < 0 || i >= t.n then invalid_arg "Ledger.prove: index";
  (* audit path within leaves[lo, lo+len) for absolute index i; collected
     while descending, so the result is leaf-to-root order *)
  let rec path lo len i acc =
    if len = 1 then acc
    else begin
      let k = split len in
      if i < lo + k then path lo k i (subtree_root t.leaves (lo + k) (len - k) :: acc)
      else path (lo + k) (len - k) i (subtree_root t.leaves lo k :: acc)
    end
  in
  { path = path 0 t.n i [] }

(* Which side each sibling sits on is a function of (size, index) alone —
   the verifier derives it rather than trusting the proof, so a proof for
   one index can never verify under another. Leaf-to-root order, [`R] when
   the sibling is the right subtree. *)
let audit_sides ~size ~index =
  let rec go lo len acc =
    if len = 1 then acc
    else begin
      let k = split len in
      if index < lo + k then go lo k (`R :: acc) else go (lo + k) (len - k) (`L :: acc)
    end
  in
  go 0 size []

let verify_inclusion ~root:expected ~size ~index ~leaf proof =
  if size <= 0 || index < 0 || index >= size then false
  else begin
    let sides = audit_sides ~size ~index in
    List.length sides = List.length proof.path
    && List.for_all (fun h -> String.length h = 32) proof.path
    &&
    let acc =
      List.fold_left2
        (fun acc side h -> match side with `R -> node_hash acc h | `L -> node_hash h acc)
        leaf sides proof.path
    in
    Util.const_time_eq acc expected
  end

let proof_size proof = List.length proof.path

let bindings_for t ~identity =
  Option.value ~default:[] (Hashtbl.find_opt t.index identity) |> List.rev

let consistent t ~old_size ~old_root =
  if old_size < 0 || old_size > t.n then false
  else if old_size = 0 then old_root = ""
  else Util.const_time_eq (subtree_root t.leaves 0 old_size) old_root
