(** A verifiable key ledger (paper §3.2, worst-case security).

    The paper's third worst-case defense — left unimplemented in the
    prototype — is registering long-term keys "in a verifiable ledger
    (such as Keybase or Namecoin)" and sending new friends a proof of
    registration, so that even with {e every} Alpenhorn server compromised
    a man-in-the-middle needs to publish a conflicting binding where the
    victim can detect it.

    This module implements that ledger as an append-only Merkle log of
    (identity, key) bindings, in the Certificate-Transparency style:

    - anyone can {!append} a binding and obtain its index;
    - {!root} summarizes the whole log in 32 bytes — the value users
      gossip or pin;
    - {!prove} produces a logarithmic inclusion proof that
      {!verify_inclusion} checks against a pinned root;
    - {!consistent} proves one root extends another, so a monitoring
      client can advance its pin without trusting the log operator.

    A user detecting impersonation (§3.2) is exactly a user monitoring
    the log for bindings of their own identity under keys they never
    registered: {!bindings_for}. *)

type t

type proof
(** Inclusion proof: the Merkle audit path for one leaf. *)

val create : unit -> t

val append : t -> identity:string -> key_bytes:string -> int
(** Append a binding; returns its leaf index. Duplicate identities are
    allowed (that is the point: conflicting bindings must be visible). *)

val size : t -> int

val root : t -> string
(** 32-byte Merkle root of the current log ("" for an empty log). *)

val leaf_hash : identity:string -> key_bytes:string -> string
(** Domain-separated leaf hash (second-preimage-resistant: leaves and
    interior nodes use distinct prefixes). *)

val prove : t -> int -> proof
(** @raise Invalid_argument if the index is out of range. *)

val verify_inclusion :
  root:string -> size:int -> index:int -> leaf:string -> proof -> bool
(** Check that [leaf] is the [index]-th of [size] leaves under [root]. *)

val proof_size : proof -> int
(** Number of hashes in the audit path (log₂ of the tree size). *)

val bindings_for : t -> identity:string -> (int * string) list
(** All (index, key_bytes) bindings published for an identity — what a
    monitoring client checks to detect impersonation. *)

val consistent : t -> old_size:int -> old_root:string -> bool
(** Does the current log extend the log that had [old_root] at
    [old_size]? (Recomputed directly; a production log would serve
    CT-style consistency proofs, which carry the same information.) *)
