module Drbg = Alpenhorn_crypto.Drbg
module Sha256 = Alpenhorn_crypto.Sha256
module Util = Alpenhorn_crypto.Util
module Params = Alpenhorn_pairing.Params
module Ibe = Alpenhorn_ibe.Ibe
module Bls = Alpenhorn_bls.Bls
module Tel = Alpenhorn_telemetry.Telemetry
module Pairing = Alpenhorn_pairing.Pairing
module Parallel = Alpenhorn_parallel.Parallel

(* Shared across all PKG instances: the paper's trust model makes the PKGs
   symmetric, so aggregated counts are what the evaluation reads. *)
let m_extractions = Tel.Counter.v Tel.default "pkg.extractions"
let m_extract_errors = Tel.Counter.v Tel.default "pkg.extract_errors"
let m_verifications = Tel.Counter.v Tel.default "pkg.verifications"
let m_registrations = Tel.Counter.v Tel.default "pkg.registrations"
let m_extract_seconds = Tel.Histogram.v Tel.default "pkg.extract_seconds"
let m_extract_batch_seconds = Tel.Histogram.v Tel.default "pkg.extract_batch_seconds"

type error =
  | Unknown_account
  | Not_confirmed
  | Already_registered
  | Bad_token
  | Bad_signature
  | Locked_out of int
  | Wrong_round
  | Not_revealed
  | Unknown_provider

let error_to_string = function
  | Unknown_account -> "unknown account"
  | Not_confirmed -> "account not confirmed"
  | Already_registered -> "already registered"
  | Bad_token -> "bad confirmation token"
  | Bad_signature -> "bad signature"
  | Locked_out s -> Printf.sprintf "locked out for %d more seconds" s
  | Wrong_round -> "wrong round"
  | Not_revealed -> "round key not revealed"
  | Unknown_provider -> "untrusted email provider"

let pp_error fmt e = Format.pp_print_string fmt (error_to_string e)

let default_lockout = 30 * 24 * 3600

type account_state =
  | Pending of { pk : Bls.public; token : string }
  | Active of { pk : Bls.public; mutable last_seen : int }
  | Lockout of { until : int }

type round_state = {
  msk : Ibe.master_secret option ref; (* None once erased *)
  mpk : Ibe.master_public;
  opening : string;
  mutable revealed : bool;
}

type t = {
  params : Params.t;
  rng : Drbg.t;
  lockout : int;
  send_email : to_:string -> token:string -> unit;
  sk : Bls.secret;
  pk : Bls.public;
  accounts : (string, account_state) Hashtbl.t;
  rounds : (int, round_state) Hashtbl.t;
  providers : (string, Bls.public) Hashtbl.t; (* DKIM keys by email domain *)
}

let create params ~rng ?(lockout = default_lockout) ~send_email () =
  let sk, pk = Bls.keygen params (Drbg.derive rng "pkg-longterm") in
  {
    params;
    rng;
    lockout;
    send_email;
    sk;
    pk;
    accounts = Hashtbl.create 1024;
    rounds = Hashtbl.create 16;
    providers = Hashtbl.create 8;
  }

let long_term_public t = t.pk

(* ---- registration ---- *)

let register t ~now ~email ~pk =
  let start_pending () =
    let token = Util.to_hex (Drbg.bytes t.rng 16) in
    Hashtbl.replace t.accounts email (Pending { pk; token });
    t.send_email ~to_:email ~token;
    Ok ()
  in
  match Hashtbl.find_opt t.accounts email with
  | None -> start_pending ()
  | Some (Pending _) -> start_pending () (* restart with a fresh token *)
  | Some (Active a) ->
    (* 30-day liveness rule: a stale account can be re-registered (§4.6) *)
    if now - a.last_seen > t.lockout then start_pending () else Error Already_registered
  | Some (Lockout l) -> if now >= l.until then start_pending () else Error (Locked_out (l.until - now))

let trust_provider t ~domain ~key = Hashtbl.replace t.providers domain key

let dkim_message ~email ~pk_bytes = "dkim-register" ^ Util.be32 (String.length email) ^ email ^ pk_bytes

let domain_of email =
  match String.index_opt email '@' with
  | Some i when i < String.length email - 1 -> Some (String.sub email (i + 1) (String.length email - i - 1))
  | Some _ | None -> None

(* Same admission rules as [register], but authenticated by the provider's
   DKIM signature instead of a confirmation-token round trip. *)
let register_dkim t ~now ~email ~pk ~signature =
  let admissible =
    match Hashtbl.find_opt t.accounts email with
    | None | Some (Pending _) -> Ok ()
    | Some (Active a) -> if now - a.last_seen > t.lockout then Ok () else Error Already_registered
    | Some (Lockout l) -> if now >= l.until then Ok () else Error (Locked_out (l.until - now))
  in
  match admissible with
  | Error e -> Error e
  | Ok () -> begin
    match Option.bind (domain_of email) (fun d -> Hashtbl.find_opt t.providers d) with
    | None -> Error Unknown_provider
    | Some provider_key ->
      let msg = dkim_message ~email ~pk_bytes:(Bls.public_bytes t.params pk) in
      Tel.Counter.inc m_verifications;
      if Bls.verify t.params provider_key msg signature then begin
        Hashtbl.replace t.accounts email (Active { pk; last_seen = now });
        Tel.Counter.inc m_registrations;
        Ok ()
      end
      else Error Bad_signature
  end

let confirm t ~now ~email ~token =
  match Hashtbl.find_opt t.accounts email with
  | None -> Error Unknown_account
  | Some (Active _) -> Error Already_registered
  | Some (Lockout l) -> Error (Locked_out (Stdlib.max 0 (l.until - now)))
  | Some (Pending p) ->
    if Util.const_time_eq p.token token then begin
      Hashtbl.replace t.accounts email (Active { pk = p.pk; last_seen = now });
      Tel.Counter.inc m_registrations;
      Ok ()
    end
    else Error Bad_token

let deregister t ~now ~email ~signature =
  match Hashtbl.find_opt t.accounts email with
  | None | Some (Pending _) -> Error Unknown_account
  | Some (Lockout l) -> Error (Locked_out (Stdlib.max 0 (l.until - now)))
  | Some (Active a) ->
    Tel.Counter.inc m_verifications;
    if Bls.verify t.params a.pk ("deregister" ^ email) signature then begin
      Hashtbl.replace t.accounts email (Lockout { until = now + t.lockout });
      Ok ()
    end
    else Error Bad_signature

let is_registered t ~email =
  match Hashtbl.find_opt t.accounts email with Some (Active _) -> true | _ -> false

let registered_key t ~email =
  match Hashtbl.find_opt t.accounts email with Some (Active a) -> Some a.pk | _ -> None

(* ---- rounds ---- *)

let commitment_of t ~mpk ~opening =
  Sha256.digest ("pkg-commit" ^ Ibe.master_public_bytes t.params mpk ^ opening)

let begin_round t ~round =
  let msk, mpk = Ibe.setup t.params (Drbg.derive t.rng (Printf.sprintf "pkg-round-%d" round)) in
  let opening = Drbg.bytes t.rng 32 in
  Hashtbl.replace t.rounds round { msk = ref (Some msk); mpk; opening; revealed = false };
  commitment_of t ~mpk ~opening

let reveal_round t ~round =
  match Hashtbl.find_opt t.rounds round with
  | None -> Error Wrong_round
  | Some rs ->
    rs.revealed <- true;
    Ok (rs.mpk, rs.opening)

let verify_commitment params ~commitment ~mpk ~opening =
  Util.const_time_eq commitment
    (Sha256.digest ("pkg-commit" ^ Ibe.master_public_bytes params mpk ^ opening))

let end_round t ~round =
  match Hashtbl.find_opt t.rounds round with
  | None -> ()
  | Some rs -> rs.msk := None

let master_public t ~round =
  match Hashtbl.find_opt t.rounds round with
  | Some rs when rs.revealed -> Some rs.mpk
  | Some _ | None -> None

(* ---- extraction ---- *)

let extraction_request_message ~email ~round = "extract" ^ Util.be32 round ^ email

let attestation_message ~email ~pk_bytes ~round = "attest" ^ Util.be32 round ^ Util.be32 (String.length email) ^ email ^ pk_bytes

let extract_inner t ~now ~round ~email ~signature =
  match Hashtbl.find_opt t.accounts email with
  | None | Some (Lockout _) -> Error Unknown_account
  | Some (Pending _) -> Error Not_confirmed
  | Some (Active a) ->
    Tel.Counter.inc m_verifications;
    if not (Bls.verify t.params a.pk (extraction_request_message ~email ~round) signature) then
      Error Bad_signature
    else begin
      match Hashtbl.find_opt t.rounds round with
      | None -> Error Wrong_round
      | Some rs ->
        if not rs.revealed then Error Not_revealed
        else begin
          match !(rs.msk) with
          | None -> Error Wrong_round (* master secret already erased *)
          | Some msk ->
            a.last_seen <- now;
            let d_id = Ibe.extract t.params msk email in
            let pk_bytes = Bls.public_bytes t.params a.pk in
            let att = Bls.sign t.params t.sk (attestation_message ~email ~pk_bytes ~round) in
            Ok (d_id, att)
        end
    end

let extract t ~now ~round ~email ~signature =
  let t0 = Tel.now Tel.default in
  let result = extract_inner t ~now ~round ~email ~signature in
  Tel.Histogram.observe m_extract_seconds (Tel.now Tel.default -. t0);
  (match result with
  | Ok _ -> Tel.Counter.inc m_extractions
  | Error _ -> Tel.Counter.inc m_extract_errors);
  result

(* Batched extraction across the domain pool.  Safe to parallelize: each
   request reads the accounts/rounds tables (not resized during a round —
   registration and round setup happen between rounds) and the only write,
   [a.last_seen <- now], stores the same [now] for a given account however
   many domains race on it.  Nothing here draws from [t.rng], so results —
   and the DRBG stream — are identical to a sequential [extract] loop. *)
let extract_batch t ~now ~round requests =
  let t0 = Tel.now Tel.default in
  let pool = Parallel.get () in
  if Parallel.size pool > 1 then Pairing.warmup t.params;
  let results =
    Parallel.map pool
      (fun (email, signature) -> extract_inner t ~now ~round ~email ~signature)
      requests
  in
  Tel.Histogram.observe m_extract_batch_seconds (Tel.now Tel.default -. t0);
  Array.iter
    (function
      | Ok _ -> Tel.Counter.inc m_extractions
      | Error _ -> Tel.Counter.inc m_extract_errors)
    results;
  results
