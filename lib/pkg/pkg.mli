(** A private-key generator server (paper §4.6, §9).

    Each PKG independently: registers email addresses (confirmation-token
    flow through the user's email provider), locks each address to a
    long-term signing key, rotates an IBE master keypair every add-friend
    round (commit-then-reveal, Appendix A), extracts identity private keys
    for authenticated users, attests to (email, long-term key, round)
    bindings with a BLS signature, and erases master secrets when the round
    ends.

    Trust: Alpenhorn needs just one of the N PKGs to be honest. Nothing in
    this module coordinates between PKGs — each instance is fully
    independent, as deployment requires.

    Time is an explicit [now] parameter (seconds), so the simulator controls
    the clock; the 30-day lockout policy (§4.6) falls out of ordinary unit
    tests. *)

module Drbg = Alpenhorn_crypto.Drbg
module Params = Alpenhorn_pairing.Params
module Ibe = Alpenhorn_ibe.Ibe
module Bls = Alpenhorn_bls.Bls

type t

type error =
  | Unknown_account
  | Not_confirmed
  | Already_registered
  | Bad_token
  | Bad_signature
  | Locked_out of int  (** seconds until re-registration opens *)
  | Wrong_round
  | Not_revealed
  | Unknown_provider  (** DKIM registration from an untrusted email domain *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val default_lockout : int
(** 30 days, in seconds. *)

val create :
  Params.t ->
  rng:Drbg.t ->
  ?lockout:int ->
  send_email:(to_:string -> token:string -> unit) ->
  unit ->
  t

val long_term_public : t -> Bls.public
(** The PKG's signing key, assumed pre-distributed to all clients (§3.3). *)

(** {1 Account registration (§4.6)} *)

val register : t -> now:int -> email:string -> pk:Bls.public -> (unit, error) result
(** Start registration: a confirmation token is sent via [send_email].
    Fails with [Already_registered] if the address is locked to a key and
    the lockout window has not expired; re-registration after lockout and
    re-confirmation of a pending registration are allowed. *)

val confirm : t -> now:int -> email:string -> token:string -> (unit, error) result

val trust_provider : t -> domain:string -> key:Bls.public -> unit
(** Pin an email provider's DKIM signing key for [domain]. Like the PKG
    keys themselves (§3.3), provider keys ship out of band. *)

val dkim_message : email:string -> pk_bytes:string -> string
(** The bytes a provider signs to attest "this mailbox sent this key". *)

val register_dkim :
  t -> now:int -> email:string -> pk:Bls.public -> signature:Bls.signature -> (unit, error) result
(** One-shot registration via a DKIM-signed email (§4.6 footnote 4): the
    user sends a single message signed by their provider, and every PKG
    verifies it independently — no per-PKG confirmation round trips. Same
    lockout rules as {!register}; the account becomes active immediately. *)

val deregister : t -> now:int -> email:string -> signature:Bls.signature -> (unit, error) result
(** Signed with the account's long-term key ("deregister" ‖ email). Puts
    the address into a fresh lockout window (§9: prevents an adversary who
    compromised the email account from instantly re-registering). *)

val is_registered : t -> email:string -> bool
val registered_key : t -> email:string -> Bls.public option

(** {1 Round lifecycle (§4.4 + Appendix A)} *)

val begin_round : t -> round:int -> string
(** Generate the round's IBE master keypair and return a binding
    {e commitment} to the master public key. *)

val reveal_round : t -> round:int -> (Ibe.master_public * string, error) result
(** Reveal the master public key and the commitment opening. Clients check
    [commitment = H(mpk ‖ opening)]. *)

val verify_commitment : Params.t -> commitment:string -> mpk:Ibe.master_public -> opening:string -> bool

val end_round : t -> round:int -> unit
(** Erase the round's master secret (forward secrecy, §4.4). *)

val master_public : t -> round:int -> Ibe.master_public option

(** {1 Key extraction (Algorithm 1, step 1)} *)

val extraction_request_message : email:string -> round:int -> string
(** What the user signs to authenticate an extraction request. *)

val attestation_message : email:string -> pk_bytes:string -> round:int -> string
(** What each PKG signs to attest the (email, key, round) binding; clients
    verify the sum of these signatures against the sum of PKG keys
    (PKGSigs, §4.5). *)

val extract :
  t ->
  now:int ->
  round:int ->
  email:string ->
  signature:Bls.signature ->
  (Ibe.identity_key * Bls.signature, error) result
(** Returns the identity private key for this round and the PKG's
    attestation signature. Refreshes the account's liveness timestamp
    (the 30-day lockout clock, §4.6). *)

val extract_batch :
  t ->
  now:int ->
  round:int ->
  (string * Bls.signature) array ->
  (Ibe.identity_key * Bls.signature, error) result array
(** [extract] for a whole round's worth of [(email, signature)] requests at
    once, fanned out across the domain pool (result order matches request
    order). Semantically identical to mapping {!extract} — extraction draws
    no randomness — but the per-request verify/extract/sign work runs on
    every available domain. Batch duration lands on the
    ["pkg.extract_batch_seconds"] histogram. *)
