(** Ephemeral Diffie-Hellman key exchange over the pairing curve's G1.

    Two uses in Alpenhorn: the [DialingKey] in friend requests, from which
    both clients derive the initial keywheel secret (§4.7), and the
    per-round onion-layer keys between clients and mixnet servers
    (Algorithm 1 step 3).

    Note: G1 on a supersingular curve has MOV reduction to [F_p²], so the
    effective DH security is that of a [~2·|p|]-bit finite field — below the
    128-bit target of the paper's deployment. Acceptable for this
    reproduction; swapping in X25519 would be a drop-in change behind this
    interface. *)

module Bigint = Alpenhorn_bigint.Bigint
module Drbg = Alpenhorn_crypto.Drbg
module Params = Alpenhorn_pairing.Params

type secret = Bigint.t
type public = Alpenhorn_pairing.Curve.point

val keygen : Params.t -> Drbg.t -> secret * public
val public_of_secret : Params.t -> secret -> public

val shared_secret : Params.t -> secret -> public -> string
(** 32-byte shared key: KDF of the compressed shared point. Both sides
    compute the same value; never returns the identity encoding for honest
    inputs.
    @raise Invalid_argument if the peer key is the point at infinity. *)

val public_bytes : Params.t -> public -> string
val public_of_bytes : Params.t -> string -> public option
(** Rejects malformed encodings, off-curve points and the point at
    infinity. *)

val public_size : Params.t -> int
