module Bigint = Alpenhorn_bigint.Bigint
module Drbg = Alpenhorn_crypto.Drbg
module Hmac = Alpenhorn_crypto.Hmac
module Params = Alpenhorn_pairing.Params
module Curve = Alpenhorn_pairing.Curve

type secret = Bigint.t
type public = Curve.point

let keygen (params : Params.t) rng =
  let s = Bigint.add Bigint.one (Drbg.bigint_below rng (Bigint.sub params.q Bigint.one)) in
  (s, Params.mul_g params s)

let public_of_secret (params : Params.t) s = Params.mul_g params s

let shared_secret (params : Params.t) sk peer =
  match peer with
  | Curve.Inf -> invalid_arg "Dh.shared_secret: infinity"
  | _ ->
    let shared = Curve.mul params.fp sk peer in
    Hmac.hkdf ~info:"alpenhorn-dh" ~len:32 (Curve.to_bytes params.fp shared)

let public_bytes (params : Params.t) pk = Curve.to_bytes params.fp pk

let public_of_bytes (params : Params.t) s =
  match Curve.of_bytes params.fp s with
  | None | Some Curve.Inf -> None
  | Some p -> Some p

let public_size (params : Params.t) = Curve.point_bytes params.fp
