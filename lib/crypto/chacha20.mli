(** ChaCha20 stream cipher (RFC 8439).

    Used as the symmetric cipher inside onion layers and the hybrid part of
    IBE FullIdent ciphertexts, and as the core of {!Drbg}. Validated against
    the RFC 8439 test vector. *)

val block : key:string -> nonce:string -> counter:int -> string
(** One 64-byte keystream block. [key] is 32 bytes, [nonce] 12 bytes. *)

val xor_stream : key:string -> nonce:string -> ?counter:int -> string -> string
(** Encrypt/decrypt: XOR the input with the keystream starting at [counter]
    (default 1, the RFC convention for AEAD payloads). *)
