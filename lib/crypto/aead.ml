let overhead = 16

let mac_key ~key ~nonce = Hmac.hmac_sha256 ~key ("aead-mac" ^ nonce)

let tag ~key ~nonce ~ad body =
  String.sub
    (Hmac.hmac_sha256 ~key:(mac_key ~key ~nonce) (Util.be64 (String.length ad) ^ ad ^ body))
    0 16

let seal ~key ~nonce ?(ad = "") msg =
  let body = Chacha20.xor_stream ~key ~nonce msg in
  body ^ tag ~key ~nonce ~ad body

let open_ ~key ~nonce ?(ad = "") ctxt =
  let n = String.length ctxt in
  if n < overhead then None
  else begin
    let body = String.sub ctxt 0 (n - overhead) in
    let t = String.sub ctxt (n - overhead) overhead in
    if Util.const_time_eq t (tag ~key ~nonce ~ad body) then
      Some (Chacha20.xor_stream ~key ~nonce body)
    else None
  end
