(** Authenticated encryption: ChaCha20 + HMAC-SHA256, encrypt-then-MAC.

    Fills the role of NaCl secretbox in the Go prototype: onion layers and
    the symmetric half of hybrid IBE ciphertexts. Ciphertext layout is
    [body || tag16]; the 16-byte tag binds key, nonce and associated data. *)

val overhead : int
(** Bytes added by [seal]: 16. *)

val seal : key:string -> nonce:string -> ?ad:string -> string -> string
(** [key] 32 bytes, [nonce] 12 bytes. *)

val open_ : key:string -> nonce:string -> ?ad:string -> string -> string option
(** [None] when authentication fails. *)
