module Bigint = Alpenhorn_bigint.Bigint

(* ChaCha20 keystream with a 64-bit block counter spread over the RFC nonce
   space; rekeys never needed at simulation scales. *)
type t = { key : string; mutable counter : int; mutable pool : string; mutable pos : int }

let create ~seed = { key = Sha256.digest ("alpenhorn-drbg-seed" ^ seed); counter = 0; pool = ""; pos = 0 }

let derive t label = create ~seed:(Hmac.hmac_sha256 ~key:t.key ("derive:" ^ label))

let nonce_of_counter c =
  String.init 12 (fun i -> if i < 8 then Char.chr ((c lsr (8 * i)) land 0xff) else '\000')

let refill t =
  t.pool <- Chacha20.block ~key:t.key ~nonce:(nonce_of_counter t.counter) ~counter:0;
  t.counter <- t.counter + 1;
  t.pos <- 0

let byte t =
  if t.pos >= String.length t.pool then refill t;
  let b = Char.code t.pool.[t.pos] in
  t.pos <- t.pos + 1;
  b

let bytes t n =
  let out = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set out i (Char.chr (byte t))
  done;
  Bytes.to_string out

let int64 t =
  let v = ref 0L in
  for _ = 1 to 8 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (byte t))
  done;
  !v

let int t bound =
  if bound <= 0 then invalid_arg "Drbg.int";
  (* rejection sampling on 62-bit values *)
  let limit = (max_int / bound) * bound in
  let rec go () =
    let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
    if v < limit then v mod bound else go ()
  in
  go ()

let float t =
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int v /. 9007199254740992.0 (* 2^53 *)

let bigint_below t bound = Bigint.random_below ~rand_bytes:(bytes t) bound
let bigint_bits t n = Bigint.random_bits ~rand_bytes:(bytes t) n

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let laplace t ~mu ~b =
  if b = 0.0 then mu
  else begin
    let u = float t -. 0.5 in
    let s = if u < 0.0 then -1.0 else 1.0 in
    mu -. (b *. s *. log (1.0 -. (2.0 *. Float.abs u)))
  end
