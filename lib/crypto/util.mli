(** Small byte-string helpers shared across the crypto stack. *)

val const_time_eq : string -> string -> bool
(** Length-and-content equality without early exit on content (lengths are
    public for all uses in this library: tags and digests are fixed size). *)

val xor : string -> string -> string
(** Byte-wise XOR. @raise Invalid_argument on length mismatch. *)

val to_hex : string -> string
val of_hex : string -> string
(** @raise Invalid_argument on malformed hex. *)

val be32 : int -> string
(** 4-byte big-endian encoding of the low 32 bits. *)

val read_be32 : string -> int -> int

val be64 : int -> string
val read_be64 : string -> int -> int
