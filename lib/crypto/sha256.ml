(* SHA-256 over native ints masked to 32 bits (OCaml ints are 63-bit). *)

let ( &: ) a b = a land b
let m32 x = x land 0xffffffff
let ( +: ) a b = m32 (a + b)
let rotr x n = m32 ((x lsr n) lor (x lsl (32 - n)))
let shr x n = x lsr n

let k = [|
  0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1; 0x923f82a4; 0xab1c5ed5;
  0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3; 0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174;
  0xe49b69c1; 0xefbe4786; 0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
  0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147; 0x06ca6351; 0x14292967;
  0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13; 0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85;
  0xa2bfe8a1; 0xa81a664b; 0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
  0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a; 0x5b9cca4f; 0x682e6ff3;
  0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208; 0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2;
|]

type ctx = {
  h : int array; (* 8 words *)
  buf : Bytes.t; (* 64-byte block buffer *)
  mutable buf_len : int;
  mutable total : int; (* bytes processed *)
  w : int array; (* message schedule scratch *)
}

let init () =
  {
    h = [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f; 0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |];
    buf = Bytes.create 64;
    buf_len = 0;
    total = 0;
    w = Array.make 64 0;
  }

let compress ctx block off =
  let w = ctx.w in
  for i = 0 to 15 do
    w.(i) <-
      (Char.code (Bytes.get block (off + 4 * i)) lsl 24)
      lor (Char.code (Bytes.get block (off + 4 * i + 1)) lsl 16)
      lor (Char.code (Bytes.get block (off + 4 * i + 2)) lsl 8)
      lor Char.code (Bytes.get block (off + 4 * i + 3))
  done;
  for i = 16 to 63 do
    let s0 = rotr w.(i - 15) 7 lxor rotr w.(i - 15) 18 lxor shr w.(i - 15) 3 in
    let s1 = rotr w.(i - 2) 17 lxor rotr w.(i - 2) 19 lxor shr w.(i - 2) 10 in
    w.(i) <- w.(i - 16) +: s0 +: w.(i - 7) +: s1
  done;
  let h = ctx.h in
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for i = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = (!e &: !f) lxor (m32 (lnot !e) &: !g) in
    let t1 = !hh +: s1 +: ch +: k.(i) +: w.(i) in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = (!a &: !b) lxor (!a &: !c) lxor (!b &: !c) in
    let t2 = s0 +: maj in
    hh := !g; g := !f; f := !e; e := !d +: t1;
    d := !c; c := !b; b := !a; a := t1 +: t2
  done;
  h.(0) <- h.(0) +: !a; h.(1) <- h.(1) +: !b; h.(2) <- h.(2) +: !c; h.(3) <- h.(3) +: !d;
  h.(4) <- h.(4) +: !e; h.(5) <- h.(5) +: !f; h.(6) <- h.(6) +: !g; h.(7) <- h.(7) +: !hh

let update_bytes ctx data off len =
  ctx.total <- ctx.total + len;
  let pos = ref off and remaining = ref len in
  if ctx.buf_len > 0 then begin
    let need = 64 - ctx.buf_len in
    let take = Stdlib.min need !remaining in
    Bytes.blit data !pos ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if ctx.buf_len = 64 then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while !remaining >= 64 do
    compress ctx data !pos;
    pos := !pos + 64;
    remaining := !remaining - 64
  done;
  if !remaining > 0 then begin
    Bytes.blit data !pos ctx.buf 0 !remaining;
    ctx.buf_len <- !remaining
  end

let update ctx s = update_bytes ctx (Bytes.unsafe_of_string s) 0 (String.length s)

let finalize ctx =
  let bitlen = ctx.total * 8 in
  (* padding: 0x80, zeros, 8-byte big-endian length *)
  let pad_len =
    let r = (ctx.total + 1 + 8) mod 64 in
    if r = 0 then 1 else 1 + (64 - r)
  in
  let pad = Bytes.make (pad_len + 8) '\000' in
  Bytes.set pad 0 '\x80';
  for i = 0 to 7 do
    Bytes.set pad (pad_len + i) (Char.chr ((bitlen lsr (8 * (7 - i))) land 0xff))
  done;
  (* bypass total accounting for the padding itself *)
  let total = ctx.total in
  update_bytes ctx pad 0 (Bytes.length pad);
  ctx.total <- total;
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    let v = ctx.h.(i) in
    Bytes.set out (4 * i) (Char.chr ((v lsr 24) land 0xff));
    Bytes.set out (4 * i + 1) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set out (4 * i + 2) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set out (4 * i + 3) (Char.chr (v land 0xff))
  done;
  Bytes.to_string out

let digest s =
  let ctx = init () in
  update ctx s;
  finalize ctx

let digest_concat parts =
  let ctx = init () in
  List.iter (update ctx) parts;
  finalize ctx
