(** Deterministic random bit generator built on ChaCha20.

    All randomness in this reproduction flows through explicit [Drbg]
    instances so that whole-system simulations are reproducible from a
    single seed. Production deployments would seed from the OS; the rest of
    the library only ever takes a [t] as a parameter (anytrust hygiene: each
    simulated server owns an independent instance). *)

type t

val create : seed:string -> t
(** Seed of any length; it is hashed into the DRBG key. *)

val derive : t -> string -> t
(** [derive t label] forks an independent generator; same [t]/[label] pair
    always yields the same stream. Used to give each simulated party its own
    deterministic randomness. *)

val bytes : t -> int -> string
val byte : t -> int
val int : t -> int -> int
(** [int t bound] uniform in [\[0, bound)] via rejection sampling. *)

val int64 : t -> int64
val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bigint_below : t -> Alpenhorn_bigint.Bigint.t -> Alpenhorn_bigint.Bigint.t
val bigint_bits : t -> int -> Alpenhorn_bigint.Bigint.t

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates. The mixnet's secret permutation. *)

val laplace : t -> mu:float -> b:float -> float
(** Sample from the Laplace distribution with location [mu] and scale [b]
    (the Vuvuzela noise distribution; [b = 0] returns [mu] exactly, matching
    the paper's variance-free evaluation setting). *)
