(** HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).

    HMAC-SHA256 keyed with distinct one-byte labels implements the keywheel
    hash family H1/H2/H3 of the paper (Fig 4); HKDF derives onion-layer and
    session symmetric keys. *)

val hmac_sha256 : key:string -> string -> string
(** 32-byte tag. *)

val hkdf_extract : salt:string -> ikm:string -> string
(** 32-byte pseudorandom key. *)

val hkdf_expand : prk:string -> info:string -> len:int -> string
(** [len] bytes of output keying material, [len <= 255 * 32]. *)

val hkdf : ?salt:string -> info:string -> len:int -> string -> string
(** [hkdf ~info ~len ikm]: extract-then-expand convenience wrapper. *)
