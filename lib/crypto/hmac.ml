let block_size = 64

let hmac_sha256 ~key msg =
  let key = if String.length key > block_size then Sha256.digest key else key in
  let pad c =
    String.init block_size (fun i ->
        let k = if i < String.length key then Char.code key.[i] else 0 in
        Char.chr (k lxor c))
  in
  let inner = Sha256.digest_concat [ pad 0x36; msg ] in
  Sha256.digest_concat [ pad 0x5c; inner ]

let hkdf_extract ~salt ~ikm = hmac_sha256 ~key:salt ikm

let hkdf_expand ~prk ~info ~len =
  if len > 255 * 32 then invalid_arg "Hmac.hkdf_expand: len";
  let buf = Buffer.create len in
  let t = ref "" in
  let i = ref 1 in
  while Buffer.length buf < len do
    t := hmac_sha256 ~key:prk (!t ^ info ^ String.make 1 (Char.chr !i));
    Buffer.add_string buf !t;
    incr i
  done;
  String.sub (Buffer.contents buf) 0 len

let hkdf ?salt ~info ~len ikm =
  let salt = match salt with Some s -> s | None -> String.make 32 '\000' in
  hkdf_expand ~prk:(hkdf_extract ~salt ~ikm) ~info ~len
