let const_time_eq a b =
  String.length a = String.length b
  && begin
    let acc = ref 0 in
    String.iteri (fun i c -> acc := !acc lor (Char.code c lxor Char.code b.[i])) a;
    !acc = 0
  end

let xor a b =
  if String.length a <> String.length b then invalid_arg "Util.xor";
  String.init (String.length a) (fun i -> Char.chr (Char.code a.[i] lxor Char.code b.[i]))

let to_hex s =
  let buf = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buf

let of_hex s =
  if String.length s mod 2 <> 0 then invalid_arg "Util.of_hex";
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Util.of_hex"
  in
  String.init (String.length s / 2) (fun i -> Char.chr ((digit s.[2 * i] lsl 4) lor digit s.[(2 * i) + 1]))

let be32 v = String.init 4 (fun i -> Char.chr ((v lsr (8 * (3 - i))) land 0xff))
let read_be32 s off =
  (Char.code s.[off] lsl 24) lor (Char.code s.[off + 1] lsl 16) lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let be64 v = String.init 8 (fun i -> Char.chr ((v lsr (8 * (7 - i))) land 0xff))
let read_be64 s off =
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code s.[off + i]
  done;
  !v
