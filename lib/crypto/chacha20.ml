let m32 x = x land 0xffffffff
let rotl x n = m32 ((x lsl n) lor (x lsr (32 - n)))

let word s i =
  Char.code s.[i] lor (Char.code s.[i + 1] lsl 8) lor (Char.code s.[i + 2] lsl 16)
  lor (Char.code s.[i + 3] lsl 24)

let quarter st a b c d =
  st.(a) <- m32 (st.(a) + st.(b)); st.(d) <- rotl (st.(d) lxor st.(a)) 16;
  st.(c) <- m32 (st.(c) + st.(d)); st.(b) <- rotl (st.(b) lxor st.(c)) 12;
  st.(a) <- m32 (st.(a) + st.(b)); st.(d) <- rotl (st.(d) lxor st.(a)) 8;
  st.(c) <- m32 (st.(c) + st.(d)); st.(b) <- rotl (st.(b) lxor st.(c)) 7

let block ~key ~nonce ~counter =
  if String.length key <> 32 then invalid_arg "Chacha20.block: key";
  if String.length nonce <> 12 then invalid_arg "Chacha20.block: nonce";
  let init = Array.make 16 0 in
  init.(0) <- 0x61707865; init.(1) <- 0x3320646e; init.(2) <- 0x79622d32; init.(3) <- 0x6b206574;
  for i = 0 to 7 do init.(4 + i) <- word key (4 * i) done;
  init.(12) <- m32 counter;
  for i = 0 to 2 do init.(13 + i) <- word nonce (4 * i) done;
  let st = Array.copy init in
  for _ = 1 to 10 do
    quarter st 0 4 8 12; quarter st 1 5 9 13; quarter st 2 6 10 14; quarter st 3 7 11 15;
    quarter st 0 5 10 15; quarter st 1 6 11 12; quarter st 2 7 8 13; quarter st 3 4 9 14
  done;
  let out = Bytes.create 64 in
  for i = 0 to 15 do
    let v = m32 (st.(i) + init.(i)) in
    Bytes.set out (4 * i) (Char.chr (v land 0xff));
    Bytes.set out (4 * i + 1) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set out (4 * i + 2) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set out (4 * i + 3) (Char.chr ((v lsr 24) land 0xff))
  done;
  Bytes.to_string out

let xor_stream ~key ~nonce ?(counter = 1) msg =
  let n = String.length msg in
  let out = Bytes.create n in
  let pos = ref 0 and ctr = ref counter in
  while !pos < n do
    let ks = block ~key ~nonce ~counter:!ctr in
    let chunk = Stdlib.min 64 (n - !pos) in
    for i = 0 to chunk - 1 do
      Bytes.set out (!pos + i) (Char.chr (Char.code msg.[!pos + i] lxor Char.code ks.[i]))
    done;
    pos := !pos + chunk;
    incr ctr
  done;
  Bytes.to_string out
