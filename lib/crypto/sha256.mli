(** SHA-256 (FIPS 180-4), pure OCaml.

    Used for keywheel hashes, Bloom filter indices, mailbox assignment,
    IBE random oracles and HMAC. Validated against RFC 6234 test vectors. *)

type ctx

val init : unit -> ctx
val update : ctx -> string -> unit
val update_bytes : ctx -> bytes -> int -> int -> unit

val finalize : ctx -> string
(** 32-byte digest. The context must not be reused afterwards. *)

val digest : string -> string
(** One-shot hash of a full string; 32 bytes. *)

val digest_concat : string list -> string
(** Hash of the concatenation of the given strings, without building it. *)
