module Sha256 = Alpenhorn_crypto.Sha256
module Mailbox_id = Alpenhorn_mixnet.Mailbox_id
module Shard = Alpenhorn_mixnet.Shard
module Stream_writer = Alpenhorn_mixnet.Stream_writer
module Mailbox = Alpenhorn_mixnet.Mailbox
module Bloom = Alpenhorn_bloom.Bloom
module Parallel = Alpenhorn_parallel.Parallel
module Tel = Alpenhorn_telemetry.Telemetry

(* Million-user dialing rounds (DESIGN.md §15). The real deployment runs
   every onion layer and is bounded by public-key crypto to ~10^4 clients
   per round in-process; this driver keeps the paper's *distribution*
   pipeline — mailbox assignment, §5.1 sharding, §5.2 Bloom packing, the
   client scan — bit-exact while replacing the mixnet's crypto with
   synthetic 32-byte tokens, so 10^6 clients fit in one process and the
   per-client memory and download budgets can be asserted in CI.

   Everything round-sized lives in flat preallocated buffers:

   - [tok]     Bytes,            32 bytes per token (real + noise)
   - [mb_of]   Bigarray int32,   mailbox id per token
   - [order]   Bigarray int32,   token indices grouped by shard
                                 (counting sort: counts -> prefix sums)

   No per-client hashtable, list or closure exists anywhere on the path;
   per-client cost is a constant number of words, which {!budget_words}
   pins down and the scale suite enforces. *)

let token_bytes = 32

type result = {
  clients : int;
  active : int;
  shards : int;
  num_mailboxes : int;
  tokens : int;
  noise : int;
  round_seconds : float;
  bytes_per_client : int;
  total_filter_bytes : int;
  writer_peak_bytes : int;
  peak_words : int;
  words_per_client : float;
  scan_clients : int;
  scan_dialed : int;
  scan_hits : int;
  scan_false_positives : int;
}

(* Affine per-client memory budget, in heap words: a fixed process slack
   (runtime, pairing tables, metrics, the bounded writer) plus a constant
   per client. The flat buffers cost ~6 words per token and the paper's
   §6-balanced rounds carry ~1.3 tokens per client, so 48 words per client
   is several times the measured cost (calibrated in BENCH_scale.json)
   while still failing loudly on any O(n) regression such as a per-client
   hashtable slipping back in. *)
let budget_slack_words = 16_000_000
let budget_per_client_words = 48
let budget_words ~clients = budget_slack_words + (budget_per_client_words * clients)

let email i = "u" ^ string_of_int i

let g name = Tel.Gauge.v Tel.default name
let c name = Tel.Counter.v Tel.default name

let run ?(seed = "scale") ?shards ?(noise_per_mailbox = 75_000) ?(active_fraction = 0.05)
    ?(scan_sample = 4096) ~clients () =
  if clients < 1 then invalid_arg "Scale.run: clients";
  if noise_per_mailbox < 0 then invalid_arg "Scale.run: noise_per_mailbox";
  let pool = Parallel.get () in
  let active = Stdlib.max 1 (int_of_float (Float.round (float_of_int clients *. active_fraction))) in
  (* §6 balance picks K; §5.1 sharding needs K >= S. One shard per ~64k
     clients keeps shard downloads CDN-sized. *)
  let num_shards =
    match shards with
    | Some s ->
      if s < 1 then invalid_arg "Scale.run: shards";
      s
    | None -> Stdlib.max 1 (clients / 65_536)
  in
  let num_mailboxes =
    Stdlib.max
      (Mailbox.num_mailboxes_for ~expected_real:active
         ~noise_mu:(float_of_int noise_per_mailbox /. 3.0)
         ~chain_length:3)
      num_shards
  in
  let shard = Shard.create ~num_shards ~num_mailboxes in
  let noise = num_mailboxes * noise_per_mailbox in
  let n_tokens = active + noise in
  Gc.full_major ();
  let before = Gc.stat () in
  let t0 = Unix.gettimeofday () in
  (* -- generate: synthetic tokens straight into the flat buffers -- *)
  let tok = Bytes.create (n_tokens * token_bytes) in
  let mb_of = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout n_tokens in
  let n_chunks = Stdlib.max 1 (Stdlib.min (Parallel.size pool * 8) n_tokens) in
  let chunk_bounds i =
    (* contiguous, disjoint, exhaustive *)
    (i * n_tokens / n_chunks, (i + 1) * n_tokens / n_chunks)
  in
  ignore
    (Parallel.map_range pool
       (fun ci ->
         let lo, hi = chunk_bounds ci in
         for i = lo to hi - 1 do
           let mb =
             if i < active then
               (* real dial: client i calls client (i + 1) mod clients, so
                  the token lands in the callee's mailbox *)
               Mailbox_id.of_identity (email ((i + 1) mod clients)) ~num_mailboxes
             else (* noise: uniform over mailboxes, like the last hop's *)
               (i - active) mod num_mailboxes
           in
           Bigarray.Array1.set mb_of i (Int32.of_int mb);
           let d = Sha256.digest (Printf.sprintf "%s:tok:%d" seed i) in
           Bytes.blit_string d 0 tok (i * token_bytes) token_bytes
         done;
         ())
       n_chunks);
  (* -- shard: one counting-sort pass over the flat id buffer -- *)
  let counts = Array.make num_shards 0 in
  for i = 0 to n_tokens - 1 do
    let s = Shard.of_mailbox shard (Int32.to_int (Bigarray.Array1.get mb_of i)) in
    counts.(s) <- counts.(s) + 1
  done;
  let offsets = Array.make (num_shards + 1) 0 in
  for s = 0 to num_shards - 1 do
    offsets.(s + 1) <- offsets.(s) + counts.(s)
  done;
  let next = Array.copy offsets in
  let order = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout (Stdlib.max 1 n_tokens) in
  for i = 0 to n_tokens - 1 do
    let s = Shard.of_mailbox shard (Int32.to_int (Bigarray.Array1.get mb_of i)) in
    Bigarray.Array1.set order next.(s) (Int32.of_int i);
    next.(s) <- next.(s) + 1
  done;
  (* -- pack: per-shard Bloom filters built in parallel, hashing straight
     out of the token buffer -- *)
  let filters =
    Parallel.map_range pool
      (fun s ->
        let lo = offsets.(s) and hi = offsets.(s + 1) in
        let f = Bloom.create ~expected_elements:(Stdlib.max 1 (hi - lo)) in
        for j = lo to hi - 1 do
          let i = Int32.to_int (Bigarray.Array1.get order j) in
          Bloom.add_sub f tok ~pos:(i * token_bytes) ~len:token_bytes
        done;
        f)
      num_shards
  in
  (* -- publish: stream every shard through the bounded writer (a CDN
     upload in the real deployment); peak heap held by publishing is the
     writer's capacity, not the round size -- *)
  let sink, sunk = Stream_writer.counting_sink () in
  let w = Stream_writer.create sink in
  Array.iter (fun f -> Stream_writer.write w (Bloom.to_bytes f)) filters;
  Stream_writer.flush w;
  let writer_peak = Stream_writer.peak_buffered w in
  let total_filter_bytes = sunk () in
  (* -- scan: a sample of callees fetches its shard's filter and checks its
     expected token, chunked over the pool like a client fleet would be.
     Clients 1..active received a dial (from caller c-1); anyone else
     checking a fresh token measures false positives. -- *)
  let sample = Stdlib.min scan_sample clients in
  let scan_results =
    Parallel.map_range pool
      (fun k ->
        let cid = k * clients / Stdlib.max 1 sample in
        let f = filters.(Shard.of_identity shard (email cid)) in
        (* the token dialed *to* cid, if any: caller cid-1 sent token cid-1 *)
        let caller = (cid + clients - 1) mod clients in
        if caller < active then
          if Bloom.mem_sub f tok ~pos:(caller * token_bytes) ~len:token_bytes then `Hit
          else `Missed
        else begin
          let probe = Sha256.digest (Printf.sprintf "%s:probe:%d" seed cid) in
          if Bloom.mem f probe then `False_positive else `Clean
        end)
      sample
  in
  let scan_hits = Array.fold_left (fun n r -> if r = `Hit then n + 1 else n) 0 scan_results in
  let fps =
    Array.fold_left (fun n r -> if r = `False_positive then n + 1 else n) 0 scan_results
  in
  let scan_dialed =
    Array.fold_left (fun n r -> if r = `Hit || r = `Missed then n + 1 else n) 0 scan_results
  in
  let round_seconds = Unix.gettimeofday () -. t0 in
  let after = Gc.stat () in
  (* Peak additional heap attributable to the round: the high-water mark
     minus what was live before it started. Monotone [top_heap_words]
     under-reports later rounds in the same process (the heap is already
     grown), which only makes the asserted ceiling harder to cheat. *)
  let peak_words = Stdlib.max 0 (after.Gc.top_heap_words - before.Gc.live_words) in
  let words_per_client = float_of_int peak_words /. float_of_int clients in
  let bytes_per_client =
    Array.fold_left (fun acc f -> Stdlib.max acc (Bloom.size_bytes f)) 0 filters
  in
  Tel.Gauge.set (g "scale.clients") (float_of_int clients);
  Tel.Gauge.set (g "scale.shards") (float_of_int num_shards);
  Tel.Gauge.set (g "scale.bytes_per_client") (float_of_int bytes_per_client);
  Tel.Gauge.set (g "scale.words_per_client") words_per_client;
  Tel.Gauge.set (g "scale.round_seconds") round_seconds;
  Tel.Gauge.set (g "scale.writer_peak_bytes") (float_of_int writer_peak);
  Tel.Counter.add (c "scale.tokens") n_tokens;
  Tel.Counter.add (c "scale.noise") noise;
  Tel.Counter.add (c "scale.scan_hits") scan_hits;
  {
    clients;
    active;
    shards = num_shards;
    num_mailboxes;
    tokens = n_tokens;
    noise;
    round_seconds;
    bytes_per_client;
    total_filter_bytes;
    writer_peak_bytes = writer_peak;
    peak_words;
    words_per_client;
    scan_clients = sample;
    scan_dialed;
    scan_hits;
    scan_false_positives = fps;
  }

let within_budget r = r.peak_words <= budget_words ~clients:r.clients

let pp fmt r =
  Format.fprintf fmt
    "scale: %d clients, %d shards, %d mailboxes@\n\
    \  tokens %d (%d noise)  round %.2f s@\n\
    \  download %d B/client  filters %d B total  writer peak %d B@\n\
    \  heap %d words peak (%.1f words/client, budget %d)@\n\
    \  scan %d/%d dialed found (%d sampled), %d false positives@\n"
    r.clients r.shards r.num_mailboxes r.tokens r.noise r.round_seconds r.bytes_per_client
    r.total_filter_bytes r.writer_peak_bytes r.peak_words r.words_per_client
    (budget_words ~clients:r.clients)
    r.scan_hits r.scan_dialed r.scan_clients r.scan_false_positives
