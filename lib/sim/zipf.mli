(** Zipf-distributed sampling over ranks 1..n (paper §8.4): the probability
    of picking rank i is proportional to [i^-s]. [s = 0] degenerates to the
    uniform distribution. *)

type t

val create : n:int -> s:float -> t
(** Precomputes the CDF; O(n) memory. *)

val sample : t -> Alpenhorn_crypto.Drbg.t -> int
(** A rank in [1, n]. O(log n) per draw. *)

val pmf : t -> int -> float
val top_share : t -> int -> float
(** Fraction of mass on the top [k] ranks (the paper quotes: at s = 2 the
    top 10 of 1M users receive 94.2%). *)
