(** A minimal discrete-event simulation engine.

    Events are thunks scheduled at absolute times and executed in time
    order (FIFO among equal timestamps, so causally-ordered schedules stay
    deterministic). {!Round_sim} uses it to replay a mixnet round at
    message-batch granularity; it is generic enough for any future
    experiment that needs overlapping activities (stragglers, pipelining,
    server restarts). *)

type t

val create : unit -> t

val now : t -> float
(** Current simulation time (seconds); 0 at creation. *)

val schedule : t -> at:float -> (unit -> unit) -> unit
(** Schedule a thunk at absolute time [at].
    @raise Invalid_argument if [at] is in the simulated past. *)

val after : t -> delay:float -> (unit -> unit) -> unit
(** [schedule] relative to [now]. [delay] must be non-negative. *)

val run : t -> unit
(** Execute events (which may schedule further events) until none remain. *)

val step : t -> bool
(** Execute the single earliest event; [false] if the queue was empty. *)

val pending : t -> int
(** Events currently queued — the instantaneous queue depth. *)

val max_pending : t -> int
(** High-water mark of {!pending} over the engine's lifetime. Backs the
    [sim.des_pending_max] gauge {!Round_sim} samples for the SLO health
    engine. *)
