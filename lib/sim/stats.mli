(** Small descriptive-statistics helpers for the evaluation harness. *)

val min : float array -> float
val max : float array -> float
val mean : float array -> float
val median : float array -> float
val percentile : float array -> float -> float
(** [percentile xs p] with p in [0, 100], linear interpolation. Safe at the
    edges: a single-element array returns its element for any p, and
    [p = 100] returns the maximum.
    @raise Invalid_argument on an empty array or p outside [0, 100]. *)

val stddev : float array -> float
(** Population standard deviation (divides by n).
    @raise Invalid_argument on an empty array. *)

val weighted_percentile : (float * float) array -> float -> float
(** [(value, weight)] pairs; percentile of the weighted distribution. *)

val histogram : float array -> buckets:int -> (float * int) array
(** (bucket lower bound, count) pairs over the data range. *)
