(** Differential-privacy accounting for the mixnet noise (paper §6, §8.1).

    Alpenhorn inherits Vuvuzela's privacy argument: each honest mixnet
    server adds Laplace(µ, b) noise messages per mailbox, so the observable
    mailbox counts are a Laplace mechanism over the user's actions. One
    protected action (sending vs not sending a request) changes the counts
    by a bounded sensitivity, giving a per-round ε₀ = sensitivity / b; a
    lifetime of k protected actions composes.

    The paper's configuration (§8.1): b = 406 for add-friend and b = 2183
    for dialing, each yielding (ε = ln 2, δ = 10⁻⁴)-differential privacy
    for 900 add-friend requests and 26,000 calls respectively. This module
    reproduces those numbers via the strong (advanced) composition theorem
    and answers the inverse question: how many actions fit a target
    budget. *)

val epsilon_single : sensitivity:float -> b:float -> float
(** Per-action ε of the Laplace mechanism: [sensitivity / b]. *)

val compose_basic : epsilon0:float -> k:int -> float
(** Sequential composition: ε = k·ε₀ (δ unchanged). *)

val compose_advanced : epsilon0:float -> k:int -> delta:float -> float
(** Strong composition (Dwork-Rothblum-Vadhan): the total ε over k
    ε₀-private actions, paying [delta]:
    [ε = sqrt(2k ln(1/δ))·ε₀ + k·ε₀·(e^ε₀ − 1)]. *)

val max_actions : epsilon0:float -> delta:float -> budget:float -> int
(** Largest k such that [compose_advanced ~epsilon0 ~k ~delta <= budget]. *)

type protocol_budget = {
  b : float;  (** Laplace scale *)
  sensitivity : float;
  actions : int;  (** protected actions claimed by the paper *)
  epsilon_total : float;  (** at δ below *)
  delta : float;
}

val paper_addfriend : protocol_budget
(** b = 406, 900 requests at (ln 2, 10⁻⁴) — §8.1. *)

val paper_dialing : protocol_budget
(** b = 2183, 26,000 calls at (ln 2, 10⁻⁴) — §8.1 ("7 calls per day for 10
    years"). *)

val verify : protocol_budget -> bool
(** Does the advanced-composition bound stay within the claimed budget? *)
