(** Latency and bandwidth model for system-scale experiments (paper §8.2-§8.4).

    The paper ran 3-10 c4.8xlarge servers across three EC2 regions with up
    to 10M simulated clients. We cannot, so we price the protocol's exact
    message flows with a pipeline model:

    {v
    round latency = Σ over servers (unwrap batch + generate noise + transfer)
                  + client mailbox download + client mailbox scan
    v}

    Message counts and sizes come from the real wire formats
    ({!Alpenhorn_core.Wire}, {!Alpenhorn_bloom.Bloom}); only per-operation
    times are modeled. Two calibrations:

    - {!paper_machine}: constants back-solved from the paper's published
      measurements (800 IBE decryptions/s/core, 36 cores, 10 Gbps links,
      80 ms inter-region RTT; onion unwrap time fitted to the 10M-user /
      3-server figures of 152 s add-friend and 118 s dialing).
    - {!measure_local}: the same constants measured on this machine's
      pure-OCaml primitives, so absolute numbers reflect this
      implementation.

    EXPERIMENTS.md reports both; the claim is shape agreement, not absolute
    agreement. *)

module Params = Alpenhorn_pairing.Params

type machine = {
  cores : int;  (** per mixnet/PKG server *)
  client_cores : int;
  t_unwrap : float;  (** s/core per onion layer (DH + AEAD) *)
  t_ibe_decrypt : float;  (** s/core per mailbox-scan attempt *)
  t_ibe_encrypt : float;  (** s/core per noise request (add-friend) *)
  t_token : float;  (** s/core per dial-token hash *)
  t_pairing : float;  (** s/core per Tate pairing (the IBE/BLS kernel) *)
  link_bandwidth : float;  (** bytes/s between servers *)
  client_bandwidth : float;  (** bytes/s client downlink *)
  rtt : float;  (** inter-region round trip, s *)
}

val paper_machine : machine

val measure_local : ?pool:Alpenhorn_parallel.Parallel.t -> Params.t -> machine
(** Quick microbenchmark (a few hundred ms) of this host's primitives.
    With [?pool], [cores] (and [client_cores]) are calibrated from the
    pool's {e measured} speedup on the batch onion-unwrap path — not
    assumed from its size — so the pipeline model predicts with the
    parallelism this host actually delivers. Without a pool, [cores] is
    1. *)

val pp_machine : Format.formatter -> machine -> unit
(** Human-readable calibration record. *)

val machine_to_json : machine -> string
(** JSON object for a calibrated machine, so [measure_local] runs can be
    recorded alongside telemetry snapshots (DESIGN.md §7) instead of
    printed and lost. *)

type protocol_costs = {
  request_bytes : int;  (** one add-friend mailbox entry *)
  dial_token_bytes : int;  (** 32 *)
  bloom_bits_per_token : int;  (** 48 *)
  onion_layer_bytes : int;
  payload_header_bytes : int;
}

val protocol_costs : Params.t -> protocol_costs

type round_breakdown = {
  server_seconds : float array;  (** per-server processing + transfer *)
  download_seconds : float;
  scan_seconds : float;
  total_seconds : float;
  mailbox_bytes : int;  (** what the client downloads *)
  uplink_bytes : int;  (** per client per round *)
}

val addfriend_round :
  machine ->
  protocol_costs ->
  n_users:int ->
  n_servers:int ->
  noise_mu:float ->
  active_fraction:float ->
  ?mailbox_requests:int ->
  unit ->
  round_breakdown
(** End-to-end AddFriend latency (Fig 8). [mailbox_requests] overrides the
    balanced-mailbox estimate — used by the skew experiments to price a
    specific (larger or smaller) mailbox. *)

val dialing_round :
  machine ->
  protocol_costs ->
  n_users:int ->
  n_servers:int ->
  noise_mu:float ->
  active_fraction:float ->
  friends:int ->
  intents:int ->
  ?mailbox_tokens:int ->
  unit ->
  round_breakdown
(** End-to-end Call latency (Fig 9). [friends] × [intents] drives the
    client-side Bloom scan (paper: 1000 friends, 10 intents). *)

val addfriend_bandwidth :
  protocol_costs ->
  n_users:int ->
  n_servers:int ->
  noise_mu:float ->
  active_fraction:float ->
  round_seconds:float ->
  float
(** Client bandwidth in bytes/s (Fig 6). *)

val dialing_bandwidth :
  protocol_costs ->
  n_users:int ->
  n_servers:int ->
  noise_mu:float ->
  active_fraction:float ->
  round_seconds:float ->
  float
(** Client bandwidth in bytes/s (Fig 7). *)
