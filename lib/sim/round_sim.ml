module Mailbox = Alpenhorn_mixnet.Mailbox
module Tel = Alpenhorn_telemetry.Telemetry

type timeline = { server_done : float array; publish : float; client_done : float }

(* One round: [batch0] messages enter server 0 at t = 0 in [chunks] equal
   parts. Each server has a single processing pipeline (it works on one
   chunk at a time, in arrival order) and forwards each finished chunk
   after a link delay. Noise generation happens once per server, amortized
   into its first chunk. The last server publishes when its final chunk is
   done; the client then downloads and scans.

   The replay emits the same telemetry schema as a real deployment round
   (counter/histogram names match {!Alpenhorn_mixnet.Server}), but on the
   DES clock: spans carry simulated timestamps, and per-hop counters hold
   the modeled message counts. [scan_metric]/[scan_ops] name and size the
   client-side scan counter ("client.scan_attempts" = IBE decryptions for
   add-friend, "client.dial_tokens_checked" for dialing). *)
let replay (m : Costmodel.machine) ~phase ~scan_metric ~scan_ops ~n_servers ~batch0
    ~noise_per_server ~t_noise ~msg_bytes ~mailbox_bytes ~scan_seconds ~chunks =
  if chunks < 1 then invalid_arg "Round_sim: chunks";
  let des = Des.create () in
  let reg = Tel.default in
  let labels i = [ ("server", string_of_int i) ] in
  let c_in = Array.init n_servers (fun i -> Tel.Counter.v reg ~labels:(labels i) "mix.onions_in") in
  let c_out =
    Array.init n_servers (fun i -> Tel.Counter.v reg ~labels:(labels i) "mix.onions_out")
  in
  let c_noise =
    Array.init n_servers (fun i -> Tel.Counter.v reg ~labels:(labels i) "mix.noise_generated")
  in
  let h_unwrap =
    Array.init n_servers (fun i -> Tel.Histogram.v reg ~labels:(labels i) "mix.unwrap_seconds")
  in
  let c_scan = Tel.Counter.v reg scan_metric in
  let round_int x = int_of_float (Float.round x) in
  let server_done = Array.make n_servers 0.0 in
  let publish = ref 0.0 and client_done = ref 0.0 in
  (* per-server: when its pipeline becomes free *)
  let free_at = Array.make n_servers 0.0 in
  let chunks_seen = Array.make n_servers 0 in
  (* messages per chunk grows along the chain as servers add noise *)
  let rec deliver server chunk_msgs chunk_index =
    let unwrap_seconds = chunk_msgs *. m.Costmodel.t_unwrap /. float_of_int m.Costmodel.cores in
    (* amortize this server's noise generation into its first chunk *)
    let first_chunk = chunks_seen.(server) = 0 in
    let noise_seconds =
      if first_chunk then noise_per_server *. t_noise /. float_of_int m.Costmodel.cores else 0.0
    in
    let proc_seconds = unwrap_seconds +. noise_seconds in
    chunks_seen.(server) <- chunks_seen.(server) + 1;
    let start = Stdlib.max (Des.now des) free_at.(server) in
    let finish = start +. proc_seconds in
    free_at.(server) <- finish;
    server_done.(server) <- finish;
    Tel.Counter.add c_in.(server) (round_int chunk_msgs);
    Tel.Histogram.observe h_unwrap.(server) unwrap_seconds;
    if first_chunk then Tel.Counter.add c_noise.(server) (round_int noise_per_server);
    Tel.Span.emit reg ~labels:(labels server) ~depth:1 ~name:"mix.server_process" ~ts:start
      ~dur:proc_seconds ();
    let out_msgs = chunk_msgs +. (noise_per_server /. float_of_int chunks) in
    Tel.Counter.add c_out.(server) (round_int out_msgs);
    let transfer = out_msgs *. msg_bytes /. m.Costmodel.link_bandwidth in
    let arrival = finish +. transfer +. (m.Costmodel.rtt /. 2.0) in
    if server + 1 < n_servers then
      Des.schedule des ~at:arrival (fun () -> deliver (server + 1) out_msgs chunk_index)
    else begin
      (* last server: chunk lands in the mailboxes; publish after the final
         chunk, then the client downloads and scans *)
      Des.schedule des ~at:arrival (fun () ->
          if chunk_index = chunks - 1 then begin
            publish := Des.now des;
            let download = mailbox_bytes /. m.Costmodel.client_bandwidth in
            Tel.Span.emit reg ~depth:1 ~name:"client.download" ~ts:!publish ~dur:download ();
            Tel.Span.emit reg ~depth:1 ~name:"client.scan" ~ts:(!publish +. download)
              ~dur:scan_seconds ();
            Tel.Counter.add c_scan (round_int scan_ops);
            Des.after des ~delay:(download +. scan_seconds) (fun () ->
                client_done := Des.now des)
          end)
    end
  in
  Tel.with_clock reg ~kind:"sim" (fun () -> Des.now des) (fun () ->
      let per_chunk = float_of_int batch0 /. float_of_int chunks in
      for i = 0 to chunks - 1 do
        Des.schedule des ~at:0.0 (fun () -> deliver 0 per_chunk i)
      done;
      Des.run des;
      Tel.Span.emit reg ~name:("round." ^ phase) ~ts:0.0 ~dur:!client_done ());
  { server_done; publish = !publish; client_done = !client_done }

let addfriend m (pc : Costmodel.protocol_costs) ~n_users ~n_servers ~noise_mu ~active_fraction
    ~chunks =
  let active = int_of_float (Float.round (float_of_int n_users *. active_fraction)) in
  let k = Mailbox.num_mailboxes_for ~expected_real:active ~noise_mu ~chain_length:n_servers in
  let requests_in_mailbox =
    (float_of_int active /. float_of_int k) +. (noise_mu *. float_of_int n_servers)
  in
  replay m ~phase:"addfriend" ~scan_metric:"client.scan_attempts" ~scan_ops:requests_in_mailbox
    ~n_servers ~batch0:n_users ~noise_per_server:(noise_mu *. float_of_int k)
    ~t_noise:m.Costmodel.t_ibe_encrypt
    ~msg_bytes:(float_of_int (pc.Costmodel.request_bytes + pc.Costmodel.payload_header_bytes))
    ~mailbox_bytes:(requests_in_mailbox *. float_of_int pc.Costmodel.request_bytes)
    ~scan_seconds:
      (requests_in_mailbox *. m.Costmodel.t_ibe_decrypt /. float_of_int m.Costmodel.client_cores)
    ~chunks

let dialing m (pc : Costmodel.protocol_costs) ~n_users ~n_servers ~noise_mu ~active_fraction
    ~friends ~intents ~chunks =
  let active = int_of_float (Float.round (float_of_int n_users *. active_fraction)) in
  let k = Mailbox.num_mailboxes_for ~expected_real:active ~noise_mu ~chain_length:n_servers in
  let tokens_in_mailbox =
    (float_of_int active /. float_of_int k) +. (noise_mu *. float_of_int n_servers)
  in
  replay m ~phase:"dialing" ~scan_metric:"client.dial_tokens_checked"
    ~scan_ops:(float_of_int (friends * intents)) ~n_servers ~batch0:n_users
    ~noise_per_server:(noise_mu *. float_of_int k) ~t_noise:m.Costmodel.t_token
    ~msg_bytes:(float_of_int (pc.Costmodel.dial_token_bytes + pc.Costmodel.payload_header_bytes))
    ~mailbox_bytes:(tokens_in_mailbox *. float_of_int pc.Costmodel.bloom_bits_per_token /. 8.0)
    ~scan_seconds:
      (float_of_int (friends * intents) *. m.Costmodel.t_token /. float_of_int m.Costmodel.client_cores)
    ~chunks
