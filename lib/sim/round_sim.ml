module Mailbox = Alpenhorn_mixnet.Mailbox
module Tel = Alpenhorn_telemetry.Telemetry
module Trace = Alpenhorn_telemetry.Trace
module Events = Alpenhorn_telemetry.Events
module Runtime_stats = Alpenhorn_telemetry.Runtime_stats
module Timeseries = Alpenhorn_telemetry.Timeseries

type timeline = {
  server_done : float array;
  publish : float;
  client_done : float;
  attempts : int;
  completed : bool;
}

(* High-water mark of consecutive aborted attempts across every replay in
   the process, mirrored into the faults.consecutive_aborts gauge for the
   SLO engine (a gauge alone would be overwritten by the next round). *)
let worst_streak = ref 0

(* One round: [batch0] messages enter server 0 at t = 0 in [chunks] equal
   parts. Each server has a single processing pipeline (it works on one
   chunk at a time, in arrival order) and forwards each finished chunk
   after a link delay. Noise generation happens once per server, amortized
   into its first chunk. The last server publishes when its final chunk is
   done; the client then downloads and scans.

   The replay emits the same telemetry schema as a real deployment round
   (counter/histogram names match {!Alpenhorn_mixnet.Server}), but on the
   DES clock: spans carry simulated timestamps, and per-hop counters hold
   the modeled message counts. [scan_metric]/[scan_ops] name and size the
   client-side scan counter ("client.scan_attempts" = IBE decryptions for
   add-friend, "client.dial_tokens_checked" for dialing).

   When a [tracer] is supplied, one candidate message riding chunk 0 is
   offered to its sampler; if sampled, its causal path — client.submit →
   mix.hop per server → mailbox.publish → client.scan — is recorded as
   trace-labeled spans stitched by parent span ids. The context rides the
   chunk as an OCaml value only; modeled message sizes and counts are
   unchanged (trace contexts never touch the wire, DESIGN.md §9).

   With a [faults] schedule (DESIGN.md §10) the replay becomes an attempt
   loop on the same DES clock: a chunk arriving at a crashed server aborts
   the whole attempt (anytrust, §4.5 — nothing publishes), the round backs
   off deterministically ({!Faults.backoff_delay}) and re-runs; a stalled
   server delays its first chunk (or aborts, past the policy's round
   timeout); link latency multiplies a server's outbound transfer time and
   link loss thins its outbound chunks. Same schedule, same seed ⇒ the
   same failure trace and byte-identical event log. Without faults the
   code path is exactly the no-fault one — same floats, same events, no
   extra labels. *)
let replay (m : Costmodel.machine) ?tracer ?(events = Events.default) ?(faults = Faults.empty)
    ?(fault_round = 1) ?(policy = Faults.default_policy) ~phase ~scan_metric ~scan_ops ~n_servers
    ~batch0 ~noise_per_server ~t_noise ~msg_bytes ~mailbox_bytes ~mailbox_load ~scan_seconds
    ~chunks () =
  if chunks < 1 then invalid_arg "Round_sim: chunks";
  let have_faults = not (Faults.is_empty faults) in
  let des = Des.create () in
  let reg = Tel.default in
  let labels i = [ ("server", string_of_int i) ] in
  let c_in = Array.init n_servers (fun i -> Tel.Counter.v reg ~labels:(labels i) "mix.onions_in") in
  let c_out =
    Array.init n_servers (fun i -> Tel.Counter.v reg ~labels:(labels i) "mix.onions_out")
  in
  let c_noise =
    Array.init n_servers (fun i -> Tel.Counter.v reg ~labels:(labels i) "mix.noise_generated")
  in
  let h_unwrap =
    Array.init n_servers (fun i -> Tel.Histogram.v reg ~labels:(labels i) "mix.unwrap_seconds")
  in
  let c_scan = Tel.Counter.v reg scan_metric in
  let c_aborts = Tel.Counter.v reg "faults.rounds_aborted" in
  let c_retries = Tel.Counter.v reg "faults.retries" in
  let g_consec = Tel.Gauge.v reg "faults.consecutive_aborts" in
  let h_recovery = Tel.Histogram.v reg "faults.recovery_seconds" in
  let c_injected kind = Tel.Counter.v reg ~labels:[ ("kind", kind) ] "faults.injected" in
  let g_pending = Tel.Gauge.v reg "sim.des_pending" in
  let g_pending_max = Tel.Gauge.v reg "sim.des_pending_max" in
  let g_mailbox_load = Tel.Gauge.v reg "mailbox.max_load" in
  let round_int x = int_of_float (Float.round x) in
  let server_done = Array.make n_servers 0.0 in
  let publish = ref 0.0 and client_done = ref 0.0 in
  (* per-server: when its pipeline becomes free *)
  let free_at = Array.make n_servers 0.0 in
  let chunks_seen = Array.make n_servers 0 in
  let aborted = ref false in
  let first_abort = ref None in
  let sample_queue_depth () =
    Tel.Gauge.set g_pending (float_of_int (Des.pending des));
    Tel.Gauge.set g_pending_max (float_of_int (Des.max_pending des))
  in
  let trace_emit ctx ?labels name ~ts ~dur =
    match tracer with Some tr -> Trace.emit tr ctx ?labels ~name ~ts ~dur () | None -> ()
  in
  let trace_child ctx =
    match (tracer, ctx) with Some tr, Some c -> Some (Trace.child tr c) | _ -> None
  in
  (* the traced message's mailbox-publish context, kept so the scan span
     can parent to it even when publish waits for a later chunk *)
  let traced_mb = ref None in
  let abort_attempt ~attempt ~severity ~labels:ls ~detail name =
    aborted := true;
    if !first_abort = None then first_abort := Some (Des.now des);
    Tel.Counter.inc c_aborts;
    let streak = attempt in
    (* attempts abort consecutively until one succeeds, so the attempt
       number IS the streak within this round *)
    if streak > !worst_streak then begin
      worst_streak := streak;
      Tel.Gauge.set g_consec (float_of_int streak)
    end;
    Events.log events ~severity ~labels:(("attempt", string_of_int attempt) :: ls) ~detail name;
    sample_queue_depth ()
  in
  (* messages per chunk grows along the chain as servers add noise *)
  let rec deliver ~attempt server chunk_msgs chunk_index trace =
    if !aborted then sample_queue_depth () (* a sibling chunk already killed the attempt *)
    else if Faults.crash_attempts faults ~round:fault_round ~server >= attempt then begin
      Tel.Counter.inc (c_injected "crash");
      abort_attempt ~attempt ~severity:Events.Error ~labels:(labels server)
        ~detail:"server down mid-round; round aborted, no mailboxes published" "mix.round_abort"
    end
    else begin
      let first_chunk = chunks_seen.(server) = 0 in
      let stall =
        if attempt = 1 then Faults.stall_seconds faults ~round:fault_round ~server else 0.0
      in
      if first_chunk && stall > policy.Faults.round_timeout then begin
        Tel.Counter.inc (c_injected "stall");
        abort_attempt ~attempt ~severity:Events.Warn ~labels:(labels server)
          ~detail:
            (Printf.sprintf "stall of %g s exceeds the %g s round timeout; aborting" stall
               policy.Faults.round_timeout)
          "round.timeout"
      end
      else begin
        if first_chunk && stall > 0.0 then begin
          Tel.Counter.inc (c_injected "stall");
          Events.log events ~severity:Warn
            ~labels:(("attempt", string_of_int attempt) :: labels server)
            ~detail:(Printf.sprintf "server stalled %g s before processing" stall)
            "round.stall"
        end;
        let unwrap_seconds = chunk_msgs *. m.Costmodel.t_unwrap /. float_of_int m.Costmodel.cores in
        (* amortize this server's noise generation into its first chunk *)
        let noise_seconds =
          if first_chunk then noise_per_server *. t_noise /. float_of_int m.Costmodel.cores
          else 0.0
        in
        let proc_seconds = unwrap_seconds +. noise_seconds in
        chunks_seen.(server) <- chunks_seen.(server) + 1;
        let start =
          Stdlib.max (Des.now des) free_at.(server) +. (if first_chunk then stall else 0.0)
        in
        let finish = start +. proc_seconds in
        free_at.(server) <- finish;
        server_done.(server) <- finish;
        Tel.Counter.add c_in.(server) (round_int chunk_msgs);
        Tel.Histogram.observe h_unwrap.(server) unwrap_seconds;
        if first_chunk then Tel.Counter.add c_noise.(server) (round_int noise_per_server);
        Tel.Span.emit reg ~labels:(labels server) ~depth:1 ~name:"mix.server_process" ~ts:start
          ~dur:proc_seconds ();
        let hop = trace_child trace in
        Option.iter
          (fun ctx -> trace_emit ctx ~labels:(labels server) "mix.hop" ~ts:start ~dur:proc_seconds)
          hop;
        let out_msgs = chunk_msgs +. (noise_per_server /. float_of_int chunks) in
        Tel.Counter.add c_out.(server) (round_int out_msgs);
        let loss = Faults.loss_fraction faults ~round:fault_round ~server in
        if first_chunk && loss > 0.0 then Tel.Counter.inc (c_injected "loss");
        let forwarded = out_msgs *. (1.0 -. loss) in
        let lat = Faults.latency_factor faults ~round:fault_round ~server in
        if first_chunk && lat > 1.0 then Tel.Counter.inc (c_injected "latency");
        let transfer = forwarded *. msg_bytes /. m.Costmodel.link_bandwidth *. lat in
        let arrival = finish +. transfer +. (m.Costmodel.rtt /. 2.0) in
        let chunk_labels =
          if have_faults then
            ("attempt", string_of_int attempt) :: ("chunk", string_of_int chunk_index)
            :: labels server
          else ("chunk", string_of_int chunk_index) :: labels server
        in
        Events.log events ~severity:Debug ~labels:chunk_labels
          ~detail:(Printf.sprintf "%d messages" (round_int forwarded))
          "sim.chunk_forward";
        if server + 1 < n_servers then
          Des.schedule des ~at:arrival (fun () ->
              deliver ~attempt (server + 1) forwarded chunk_index hop)
        else begin
          (* last server: chunk lands in the mailboxes; publish after the final
             chunk, then the client downloads and scans *)
          Des.schedule des ~at:arrival (fun () ->
              if not !aborted then begin
                (match trace_child hop with
                | Some ctx ->
                  trace_emit ctx "mailbox.publish" ~ts:(Des.now des) ~dur:0.0;
                  traced_mb := Some ctx
                | None -> ());
                if chunk_index = chunks - 1 then begin
                  publish := Des.now des;
                  Events.log events ~labels:[ ("phase", phase) ] "round.publish";
                  Timeseries.record Timeseries.default;
                  let download = mailbox_bytes /. m.Costmodel.client_bandwidth in
                  Tel.Span.emit reg ~depth:1 ~name:"client.download" ~ts:!publish ~dur:download ();
                  Tel.Span.emit reg ~depth:1 ~name:"client.scan" ~ts:(!publish +. download)
                    ~dur:scan_seconds ();
                  (match trace_child !traced_mb with
                  | Some ctx ->
                    trace_emit ctx "client.scan" ~ts:(!publish +. download) ~dur:scan_seconds
                  | None -> ());
                  Tel.Counter.add c_scan (round_int scan_ops);
                  Des.after des ~delay:(download +. scan_seconds) (fun () ->
                      client_done := Des.now des;
                      sample_queue_depth ())
                end
              end;
              sample_queue_depth ())
        end;
        sample_queue_depth ()
      end
    end
  in
  let attempts = ref 0 and completed = ref false in
  Tel.with_clock reg ~kind:"sim" (fun () -> Des.now des) (fun () ->
      Events.log events
        ~labels:[ ("phase", phase) ]
        ~detail:(Printf.sprintf "%d messages in %d chunks over %d servers" batch0 chunks n_servers)
        "round.start";
      (* time-series baseline at simulated t=0 (windowed queries need the
         pair [start, close]); the ring detects a restarted sim clock and
         starts a new epoch by itself *)
      Timeseries.record Timeseries.default;
      Tel.Gauge.set g_mailbox_load mailbox_load;
      let per_chunk = float_of_int batch0 /. float_of_int chunks in
      let rec run_attempt attempt =
        attempts := attempt;
        aborted := false;
        let start_at = Des.now des in
        Array.fill free_at 0 n_servers start_at;
        Array.fill chunks_seen 0 n_servers 0;
        traced_mb := None;
        let root =
          (* one candidate message (riding chunk 0) offered to the sampler *)
          match tracer with Some tr -> Trace.sample tr | None -> None
        in
        Option.iter (fun ctx -> trace_emit ctx "client.submit" ~ts:start_at ~dur:0.0) root;
        for i = 0 to chunks - 1 do
          let trace = if i = 0 then root else None in
          Des.schedule des ~at:start_at (fun () -> deliver ~attempt 0 per_chunk i trace)
        done;
        Des.run des;
        sample_queue_depth ();
        if not !aborted then begin
          completed := true;
          if attempt > 1 then begin
            (match !first_abort with
            | Some t0 ->
              let recovery = !publish -. t0 in
              Tel.Histogram.observe h_recovery recovery;
              Events.log events
                ~labels:[ ("phase", phase) ]
                ~detail:(Printf.sprintf "recovered on attempt %d after %g s" attempt recovery)
                "round.recovered"
            | None -> ())
          end
        end
        else if attempt >= policy.Faults.max_attempts then
          Events.log events ~severity:Error
            ~labels:[ ("phase", phase) ]
            ~detail:(Printf.sprintf "gave up after %d attempts" attempt)
            "round.failed"
        else begin
          let delay =
            Faults.backoff_delay policy
              ~seed:(Printf.sprintf "%s:%s:%d" (Faults.seed faults) phase fault_round)
              ~attempt
          in
          Tel.Counter.inc c_retries;
          Events.log events ~severity:Warn
            ~labels:[ ("phase", phase) ]
            ~detail:(Printf.sprintf "attempt %d aborted; retrying after %.1f s backoff" attempt delay)
            "round.retry";
          Des.after des ~delay (fun () -> ());
          Des.run des;
          run_attempt (attempt + 1)
        end
      in
      run_attempt 1;
      Tel.Span.emit reg ~name:("round." ^ phase) ~ts:0.0 ~dur:!client_done ();
      if !completed then
        Tel.Counter.inc
          (Tel.Counter.v reg ~labels:[ ("phase", phase) ] "round.completed");
      Runtime_stats.sample (Runtime_stats.get_default ());
      Timeseries.record Timeseries.default;
      Events.log events
        ~labels:[ ("phase", phase) ]
        ~detail:
          (if !completed then Printf.sprintf "client done at %g s" !client_done
           else Printf.sprintf "round failed after %d attempts" !attempts)
        "round.close");
  {
    server_done;
    publish = !publish;
    client_done = !client_done;
    attempts = !attempts;
    completed = !completed;
  }

let addfriend m ?tracer ?events ?faults ?fault_round ?policy (pc : Costmodel.protocol_costs)
    ~n_users ~n_servers ~noise_mu ~active_fraction ~chunks =
  let active = int_of_float (Float.round (float_of_int n_users *. active_fraction)) in
  let k = Mailbox.num_mailboxes_for ~expected_real:active ~noise_mu ~chain_length:n_servers in
  let requests_in_mailbox =
    (float_of_int active /. float_of_int k) +. (noise_mu *. float_of_int n_servers)
  in
  replay m ?tracer ?events ?faults ?fault_round ?policy ~phase:"addfriend"
    ~scan_metric:"client.scan_attempts" ~scan_ops:requests_in_mailbox ~n_servers ~batch0:n_users
    ~noise_per_server:(noise_mu *. float_of_int k) ~t_noise:m.Costmodel.t_ibe_encrypt
    ~msg_bytes:(float_of_int (pc.Costmodel.request_bytes + pc.Costmodel.payload_header_bytes))
    ~mailbox_bytes:(requests_in_mailbox *. float_of_int pc.Costmodel.request_bytes)
    ~mailbox_load:requests_in_mailbox
    ~scan_seconds:
      (requests_in_mailbox *. m.Costmodel.t_ibe_decrypt /. float_of_int m.Costmodel.client_cores)
    ~chunks ()

let dialing m ?tracer ?events ?faults ?fault_round ?policy ?(num_shards = 0)
    (pc : Costmodel.protocol_costs) ~n_users ~n_servers ~noise_mu ~active_fraction ~friends
    ~intents ~chunks =
  if num_shards < 0 then invalid_arg "Round_sim.dialing: num_shards";
  let active = int_of_float (Float.round (float_of_int n_users *. active_fraction)) in
  let k =
    Stdlib.max
      (Mailbox.num_mailboxes_for ~expected_real:active ~noise_mu ~chain_length:n_servers)
      num_shards
  in
  let tokens_in_mailbox =
    (float_of_int active /. float_of_int k) +. (noise_mu *. float_of_int n_servers)
  in
  (* Sharded download (§5.1): the client fetches the Bloom filter of its
     whole shard — K/S mailboxes' worth of tokens — instead of one
     mailbox's. Per-mailbox load (the §6 ceiling) is unchanged. *)
  let download_tokens =
    if num_shards = 0 then tokens_in_mailbox
    else tokens_in_mailbox *. (float_of_int k /. float_of_int num_shards)
  in
  let mailbox_bytes = download_tokens *. float_of_int pc.Costmodel.bloom_bits_per_token /. 8.0 in
  if num_shards > 0 then begin
    Tel.Gauge.set (Tel.Gauge.v Tel.default "scale.shards") (float_of_int num_shards);
    Tel.Gauge.set (Tel.Gauge.v Tel.default "scale.bytes_per_client") mailbox_bytes
  end;
  replay m ?tracer ?events ?faults ?fault_round ?policy ~phase:"dialing"
    ~scan_metric:"client.dial_tokens_checked" ~scan_ops:(float_of_int (friends * intents))
    ~n_servers ~batch0:n_users ~noise_per_server:(noise_mu *. float_of_int k)
    ~t_noise:m.Costmodel.t_token
    ~msg_bytes:(float_of_int (pc.Costmodel.dial_token_bytes + pc.Costmodel.payload_header_bytes))
    ~mailbox_bytes ~mailbox_load:tokens_in_mailbox
    ~scan_seconds:
      (float_of_int (friends * intents) *. m.Costmodel.t_token
      /. float_of_int m.Costmodel.client_cores)
    ~chunks ()
