module Drbg = Alpenhorn_crypto.Drbg
module Mailbox = Alpenhorn_mixnet.Mailbox

type spec = {
  n_users : int;
  active_fraction : float;
  recipient_skew : float;
  noise_mu : float;
  laplace_b : float;
  chain_length : int;
}

let active_count spec =
  int_of_float (Float.round (float_of_int spec.n_users *. spec.active_fraction))

let num_mailboxes spec =
  Mailbox.num_mailboxes_for ~expected_real:(active_count spec) ~noise_mu:spec.noise_mu
    ~chain_length:spec.chain_length

type mailbox_load = { real : int array; noise : int array }

let generate spec rng =
  let k = num_mailboxes spec in
  let real = Array.make k 0 and noise = Array.make k 0 in
  let actives = active_count spec in
  let assign_mailbox rank =
    Mailbox.mailbox_of_identity (Printf.sprintf "user-%d@sim" rank) ~num_mailboxes:k
  in
  if spec.recipient_skew = 0.0 then
    (* uniform recipients: sample per-mailbox counts directly *)
    for _ = 1 to actives do
      let rank = 1 + Drbg.int rng spec.n_users in
      let m = assign_mailbox rank in
      real.(m) <- real.(m) + 1
    done
  else begin
    let zipf = Zipf.create ~n:spec.n_users ~s:spec.recipient_skew in
    for _ = 1 to actives do
      let m = assign_mailbox (Zipf.sample zipf rng) in
      real.(m) <- real.(m) + 1
    done
  end;
  for m = 0 to k - 1 do
    for _ = 1 to spec.chain_length do
      let x = Drbg.laplace rng ~mu:spec.noise_mu ~b:spec.laplace_b in
      noise.(m) <- noise.(m) + Stdlib.max 0 (int_of_float (Float.round x))
    done
  done;
  { real; noise }

let total load = Array.map2 ( + ) load.real load.noise
