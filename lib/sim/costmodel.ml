module Params = Alpenhorn_pairing.Params
module Wire = Alpenhorn_core.Wire
module Mailbox = Alpenhorn_mixnet.Mailbox
module Onion = Alpenhorn_mixnet.Onion
module Payload = Alpenhorn_mixnet.Payload
module Ibe = Alpenhorn_ibe.Ibe
module Dh = Alpenhorn_dh.Dh
module Keywheel = Alpenhorn_keywheel.Keywheel
module Drbg = Alpenhorn_crypto.Drbg

type machine = {
  cores : int;
  client_cores : int;
  t_unwrap : float;
  t_ibe_decrypt : float;
  t_ibe_encrypt : float;
  t_token : float;
  t_pairing : float;
  link_bandwidth : float;
  client_bandwidth : float;
  rtt : float;
}

(* c4.8xlarge constants; t_unwrap fitted so that the 10M-user 3-server
   points land on the paper's 152 s (add-friend) and 118 s (dialing). *)
let paper_machine =
  {
    cores = 36;
    client_cores = 4;
    t_unwrap = 140e-6;
    t_ibe_decrypt = 1.0 /. 800.0;
    t_ibe_encrypt = 1.0 /. 800.0;
    t_token = 1e-6;
    (* the paper's IBE decrypt is pairing-dominated: ~1 ms of the 1.25 ms *)
    t_pairing = 1.0e-3;
    link_bandwidth = 10e9 /. 8.0;
    client_bandwidth = 1e9 /. 8.0;
    rtt = 0.08;
  }

let time_per_op f reps =
  (* warm up once, then time *)
  ignore (f ());
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (f ())
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int reps

(* Effective parallelism of the domain pool on this host, measured on the
   actual batch-unwrap path rather than assumed from the pool size: on an
   oversubscribed or single-core machine a 4-domain pool may deliver ~1x,
   and the pipeline model should predict with that number. *)
let measure_pool_speedup pool (params : Params.t) ~sk ~onion =
  let n = Alpenhorn_parallel.Parallel.size pool in
  if n <= 1 then 1.0
  else begin
    Params.force_tables params;
    let batch = Array.make 64 onion in
    let unwrap o = Onion.unwrap params ~sk o in
    let seq = time_per_op (fun () -> Array.map unwrap batch) 3 in
    let par = time_per_op (fun () -> Alpenhorn_parallel.Parallel.map pool unwrap batch) 3 in
    if par <= 0.0 then 1.0 else Float.max 1.0 (Float.min (float_of_int n) (seq /. par))
  end

let measure_local ?pool (params : Params.t) =
  let rng = Drbg.create ~seed:"costmodel-measure" in
  let msk, mpk = Ibe.setup params rng in
  let d_id = Ibe.extract params msk "probe@local" in
  let ctxt = Ibe.encrypt params rng mpk ~id:"probe@local" (String.make 64 'x') in
  let t_ibe_decrypt = time_per_op (fun () -> Ibe.decrypt params d_id ctxt) 5 in
  let t_ibe_encrypt =
    time_per_op (fun () -> Ibe.encrypt params rng mpk ~id:"probe@local" (String.make 64 'x')) 5
  in
  let ssk, spk = Dh.keygen params rng in
  let onion = Onion.wrap params rng ~server_pks:[ spk ] (String.make 64 'y') in
  let t_unwrap = time_per_op (fun () -> Onion.unwrap params ~sk:ssk onion) 10 in
  let t_token =
    time_per_op (fun () -> Alpenhorn_crypto.Hmac.hmac_sha256 ~key:(String.make 32 'k') "tok") 1000
  in
  (* the raw pairing (uncached: pair_cached would measure a table lookup) *)
  let t_pairing =
    time_per_op (fun () -> Alpenhorn_pairing.Pairing.pair params d_id mpk) 5
  in
  let cores =
    match pool with
    | None -> 1
    | Some p ->
      let speedup = measure_pool_speedup p params ~sk:ssk ~onion in
      Stdlib.max 1 (int_of_float (Float.round speedup))
  in
  {
    cores;
    client_cores = cores;
    t_unwrap;
    t_ibe_decrypt;
    t_ibe_encrypt;
    t_token;
    t_pairing;
    link_bandwidth = 10e9 /. 8.0;
    client_bandwidth = 1e9 /. 8.0;
    rtt = 0.08;
  }

let pp_machine fmt m =
  Format.fprintf fmt
    "@[<v>machine calibration:@,\
     \  cores            %d (client: %d)@,\
     \  t_unwrap         %.3g s@,\
     \  t_ibe_decrypt    %.3g s@,\
     \  t_ibe_encrypt    %.3g s@,\
     \  t_token          %.3g s@,\
     \  t_pairing        %.3g s@,\
     \  link_bandwidth   %.3g B/s@,\
     \  client_bandwidth %.3g B/s@,\
     \  rtt              %.3g s@]"
    m.cores m.client_cores m.t_unwrap m.t_ibe_decrypt m.t_ibe_encrypt m.t_token m.t_pairing
    m.link_bandwidth m.client_bandwidth m.rtt

let machine_to_json m =
  Printf.sprintf
    "{\"cores\":%d,\"client_cores\":%d,\"t_unwrap\":%.9g,\"t_ibe_decrypt\":%.9g,\"t_ibe_encrypt\":%.9g,\"t_token\":%.9g,\"t_pairing\":%.9g,\"link_bandwidth\":%.9g,\"client_bandwidth\":%.9g,\"rtt\":%.9g}"
    m.cores m.client_cores m.t_unwrap m.t_ibe_decrypt m.t_ibe_encrypt m.t_token m.t_pairing
    m.link_bandwidth m.client_bandwidth m.rtt

type protocol_costs = {
  request_bytes : int;
  dial_token_bytes : int;
  bloom_bits_per_token : int;
  onion_layer_bytes : int;
  payload_header_bytes : int;
}

let protocol_costs (params : Params.t) =
  {
    request_bytes = Wire.request_ciphertext_size params;
    dial_token_bytes = Wire.dial_token_size;
    bloom_bits_per_token = Alpenhorn_bloom.Bloom.bits_per_element;
    onion_layer_bytes = Onion.layer_overhead params;
    payload_header_bytes = Payload.overhead;
  }

type round_breakdown = {
  server_seconds : float array;
  download_seconds : float;
  scan_seconds : float;
  total_seconds : float;
  mailbox_bytes : int;
  uplink_bytes : int;
}

(* Shared pipeline skeleton: each server unwraps the batch it receives,
   generates its noise, and ships the grown batch to the next hop. *)
let pipeline m ~n_servers ~batch0 ~noise_per_server ~t_noise ~body_bytes ~pc =
  let server_seconds = Array.make n_servers 0.0 in
  let batch = ref (float_of_int batch0) in
  for i = 0 to n_servers - 1 do
    let unwrap = !batch *. m.t_unwrap /. float_of_int m.cores in
    let noise_gen = noise_per_server *. t_noise /. float_of_int m.cores in
    batch := !batch +. noise_per_server;
    (* bytes on the wire to the next hop: remaining onion layers shrink, so
       approximate with the body + residual layers *)
    let layers_left = n_servers - 1 - i in
    let msg_bytes =
      float_of_int (body_bytes + pc.payload_header_bytes + (layers_left * pc.onion_layer_bytes))
    in
    let transfer = !batch *. msg_bytes /. m.link_bandwidth in
    server_seconds.(i) <- unwrap +. noise_gen +. transfer +. m.rtt
  done;
  (server_seconds, !batch)

let addfriend_round m pc ~n_users ~n_servers ~noise_mu ~active_fraction ?mailbox_requests () =
  let active = int_of_float (Float.round (float_of_int n_users *. active_fraction)) in
  let k = Mailbox.num_mailboxes_for ~expected_real:active ~noise_mu ~chain_length:n_servers in
  let noise_per_server = noise_mu *. float_of_int k in
  let server_seconds, _ =
    pipeline m ~n_servers ~batch0:n_users ~noise_per_server ~t_noise:m.t_ibe_encrypt
      ~body_bytes:pc.request_bytes ~pc
  in
  let requests_in_mailbox =
    match mailbox_requests with
    | Some r -> r
    | None ->
      int_of_float
        (Float.round ((float_of_int active /. float_of_int k) +. (noise_mu *. float_of_int n_servers)))
  in
  let mailbox_bytes = requests_in_mailbox * pc.request_bytes in
  let download_seconds = float_of_int mailbox_bytes /. m.client_bandwidth in
  let scan_seconds =
    float_of_int requests_in_mailbox *. m.t_ibe_decrypt /. float_of_int m.client_cores
  in
  let uplink_bytes =
    pc.request_bytes + pc.payload_header_bytes + (n_servers * pc.onion_layer_bytes)
  in
  {
    server_seconds;
    download_seconds;
    scan_seconds;
    total_seconds = Array.fold_left ( +. ) 0.0 server_seconds +. download_seconds +. scan_seconds;
    mailbox_bytes;
    uplink_bytes;
  }

let dialing_round m pc ~n_users ~n_servers ~noise_mu ~active_fraction ~friends ~intents
    ?mailbox_tokens () =
  let active = int_of_float (Float.round (float_of_int n_users *. active_fraction)) in
  let k = Mailbox.num_mailboxes_for ~expected_real:active ~noise_mu ~chain_length:n_servers in
  let noise_per_server = noise_mu *. float_of_int k in
  let server_seconds, _ =
    pipeline m ~n_servers ~batch0:n_users ~noise_per_server ~t_noise:m.t_token
      ~body_bytes:pc.dial_token_bytes ~pc
  in
  let tokens_in_mailbox =
    match mailbox_tokens with
    | Some t -> t
    | None ->
      int_of_float
        (Float.round ((float_of_int active /. float_of_int k) +. (noise_mu *. float_of_int n_servers)))
  in
  let mailbox_bytes = tokens_in_mailbox * pc.bloom_bits_per_token / 8 in
  let download_seconds = float_of_int mailbox_bytes /. m.client_bandwidth in
  let scan_seconds = float_of_int (friends * intents) *. m.t_token /. float_of_int m.client_cores in
  let uplink_bytes =
    pc.dial_token_bytes + pc.payload_header_bytes + (n_servers * pc.onion_layer_bytes)
  in
  {
    server_seconds;
    download_seconds;
    scan_seconds;
    total_seconds = Array.fold_left ( +. ) 0.0 server_seconds +. download_seconds +. scan_seconds;
    mailbox_bytes;
    uplink_bytes;
  }

let addfriend_bandwidth pc ~n_users ~n_servers ~noise_mu ~active_fraction ~round_seconds =
  let active = int_of_float (Float.round (float_of_int n_users *. active_fraction)) in
  let k = Mailbox.num_mailboxes_for ~expected_real:active ~noise_mu ~chain_length:n_servers in
  let per_mailbox =
    (float_of_int active /. float_of_int k) +. (noise_mu *. float_of_int n_servers)
  in
  let download = per_mailbox *. float_of_int pc.request_bytes in
  let uplink =
    float_of_int (pc.request_bytes + pc.payload_header_bytes + (n_servers * pc.onion_layer_bytes))
  in
  (download +. uplink) /. round_seconds

let dialing_bandwidth pc ~n_users ~n_servers ~noise_mu ~active_fraction ~round_seconds =
  let active = int_of_float (Float.round (float_of_int n_users *. active_fraction)) in
  let k = Mailbox.num_mailboxes_for ~expected_real:active ~noise_mu ~chain_length:n_servers in
  let per_mailbox =
    (float_of_int active /. float_of_int k) +. (noise_mu *. float_of_int n_servers)
  in
  let download = per_mailbox *. float_of_int pc.bloom_bits_per_token /. 8.0 in
  let uplink =
    float_of_int (pc.dial_token_bytes + pc.payload_header_bytes + (n_servers * pc.onion_layer_bytes))
  in
  (download +. uplink) /. round_seconds
