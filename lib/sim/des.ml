(* Binary min-heap on (time, seq) so simultaneous events run in scheduling
   order — determinism matters more than raw speed here. *)

type event = { time : float; seq : int; thunk : unit -> unit }

type t = {
  mutable heap : event array;
  mutable n : int;
  mutable clock : float;
  mutable next_seq : int;
  mutable max_n : int;
}

let dummy = { time = 0.0; seq = 0; thunk = ignore }

let create () = { heap = Array.make 64 dummy; n = 0; clock = 0.0; next_seq = 0; max_n = 0 }

let now t = t.clock
let pending t = t.n
let max_pending t = t.max_n

let earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap h i j =
  let tmp = h.(i) in
  h.(i) <- h.(j);
  h.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier h.(i) h.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h n i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < n && earlier h.(l) h.(!smallest) then smallest := l;
  if r < n && earlier h.(r) h.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h n !smallest
  end

let schedule t ~at thunk =
  if at < t.clock then invalid_arg "Des.schedule: time in the past";
  if t.n = Array.length t.heap then begin
    let bigger = Array.make (2 * t.n) dummy in
    Array.blit t.heap 0 bigger 0 t.n;
    t.heap <- bigger
  end;
  t.heap.(t.n) <- { time = at; seq = t.next_seq; thunk };
  t.next_seq <- t.next_seq + 1;
  t.n <- t.n + 1;
  if t.n > t.max_n then t.max_n <- t.n;
  sift_up t.heap (t.n - 1)

let after t ~delay thunk =
  if delay < 0.0 then invalid_arg "Des.after: negative delay";
  schedule t ~at:(t.clock +. delay) thunk

let step t =
  if t.n = 0 then false
  else begin
    let ev = t.heap.(0) in
    t.n <- t.n - 1;
    t.heap.(0) <- t.heap.(t.n);
    t.heap.(t.n) <- dummy;
    sift_down t.heap t.n 0;
    t.clock <- ev.time;
    ev.thunk ();
    true
  end

let run t =
  while step t do
    ()
  done
