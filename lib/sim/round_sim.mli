(** Message-granularity round replay on the {!Des} engine.

    The analytic {!Costmodel} prices a round as a sum of stages, which
    assumes each mixnet server finishes its whole batch before the next
    hop starts — the paper's store-and-forward design. This module replays
    the same round as discrete events, with the batch optionally split into
    [chunks] that flow through the chain independently:

    - [chunks = 1] reproduces store-and-forward; its total must agree with
      {!Costmodel} (cross-validated in the tests), which is what licenses
      the cheaper analytic model for the figures;
    - [chunks > 1] models a streaming mixnet in which a server forwards
      each chunk as soon as it is processed — an ablation the paper's
      design leaves on the table (at some privacy cost: early chunks leak
      arrival-order information, so a deployment would still batch per
      round; the experiment quantifies the latency price of that
      batching).

    Both entry points emit telemetry into {!Alpenhorn_telemetry.Telemetry}'s
    default registry under the {e same} metric names as a real deployment
    round ([mix.onions_in{server=i}], [mix.unwrap_seconds{server=i}],
    [client.scan_attempts], …), with spans timestamped on the simulated
    clock — so a [round_sim] run and a wall-clock run produce snapshots and
    Chrome traces with identical schema. *)

type timeline = {
  server_done : float array;  (** when each server finished its last chunk *)
  publish : float;  (** mailboxes available *)
  client_done : float;  (** download + scan complete *)
}

val addfriend :
  Costmodel.machine ->
  Costmodel.protocol_costs ->
  n_users:int ->
  n_servers:int ->
  noise_mu:float ->
  active_fraction:float ->
  chunks:int ->
  timeline
(** Replay one add-friend round. *)

val dialing :
  Costmodel.machine ->
  Costmodel.protocol_costs ->
  n_users:int ->
  n_servers:int ->
  noise_mu:float ->
  active_fraction:float ->
  friends:int ->
  intents:int ->
  chunks:int ->
  timeline
