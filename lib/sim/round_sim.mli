(** Message-granularity round replay on the {!Des} engine.

    The analytic {!Costmodel} prices a round as a sum of stages, which
    assumes each mixnet server finishes its whole batch before the next
    hop starts — the paper's store-and-forward design. This module replays
    the same round as discrete events, with the batch optionally split into
    [chunks] that flow through the chain independently:

    - [chunks = 1] reproduces store-and-forward; its total must agree with
      {!Costmodel} (cross-validated in the tests), which is what licenses
      the cheaper analytic model for the figures;
    - [chunks > 1] models a streaming mixnet in which a server forwards
      each chunk as soon as it is processed — an ablation the paper's
      design leaves on the table (at some privacy cost: early chunks leak
      arrival-order information, so a deployment would still batch per
      round; the experiment quantifies the latency price of that
      batching).

    Both entry points emit telemetry into {!Alpenhorn_telemetry.Telemetry}'s
    default registry under the {e same} metric names as a real deployment
    round ([mix.onions_in{server=i}], [mix.unwrap_seconds{server=i}],
    [client.scan_attempts], …), with spans timestamped on the simulated
    clock — so a [round_sim] run and a wall-clock run produce snapshots and
    Chrome traces with identical schema.

    Observability extensions (DESIGN.md §9):

    - [?tracer]: one candidate message riding chunk 0 is offered to the
      sampler; if sampled, its causal path (client.submit → one [mix.hop]
      per server → [mailbox.publish] → [client.scan]) is recorded as
      trace-labeled spans chained by parent span ids — the stitched
      per-message trace the Chrome exporter and
      {!Alpenhorn_telemetry.Trace.pp_timelines} render. The context is an
      OCaml value riding the chunk; nothing about the modeled messages
      changes.
    - [?events] (default {!Alpenhorn_telemetry.Events.default}): round
      start/publish/close and per-chunk forwards are logged as structured
      events on the simulated clock.
    - Queue-depth gauges: [sim.des_pending] is sampled from {!Des.pending}
      at every delivery event (zero again at quiescence) and
      [sim.des_pending_max] holds {!Des.max_pending}'s high-water mark;
      [mailbox.max_load] carries the modeled per-mailbox load for the
      {!Alpenhorn_telemetry.Slo} §6 ceiling rule.

    Fault injection (DESIGN.md §10): with [?faults] (a {!Faults.t}
    schedule, keyed by [?fault_round], default 1) the replay becomes a
    bounded attempt loop on the same DES clock. A chunk arriving at a
    crashed server aborts the whole attempt — nothing publishes, matching
    the anytrust abort (§4.5) — and the round re-runs after
    {!Faults.backoff_delay}'s deterministic backoff under [?policy]
    (default {!Faults.default_policy}). Stalls delay a server's first
    chunk, or abort past the policy's round timeout; link latency
    multiplies a server's outbound transfer time; link loss thins its
    outbound chunks. Aborts, retries and recovery time land in the
    [faults.*] metrics. Same schedule and seed ⇒ the same failure trace,
    event log included, byte for byte; an empty schedule follows the
    exact no-fault code path. *)

type timeline = {
  server_done : float array;  (** when each server finished its last chunk *)
  publish : float;  (** mailboxes available (0 when the round failed) *)
  client_done : float;  (** download + scan complete (0 when failed) *)
  attempts : int;  (** 1 = clean; > 1 = aborted then retried *)
  completed : bool;  (** false iff every allowed attempt aborted *)
}

val addfriend :
  Costmodel.machine ->
  ?tracer:Alpenhorn_telemetry.Trace.t ->
  ?events:Alpenhorn_telemetry.Events.t ->
  ?faults:Faults.t ->
  ?fault_round:int ->
  ?policy:Faults.policy ->
  Costmodel.protocol_costs ->
  n_users:int ->
  n_servers:int ->
  noise_mu:float ->
  active_fraction:float ->
  chunks:int ->
  timeline
(** Replay one add-friend round. *)

val dialing :
  Costmodel.machine ->
  ?tracer:Alpenhorn_telemetry.Trace.t ->
  ?events:Alpenhorn_telemetry.Events.t ->
  ?faults:Faults.t ->
  ?fault_round:int ->
  ?policy:Faults.policy ->
  ?num_shards:int ->
  Costmodel.protocol_costs ->
  n_users:int ->
  n_servers:int ->
  noise_mu:float ->
  active_fraction:float ->
  friends:int ->
  intents:int ->
  chunks:int ->
  timeline
(** Replay one dialing round. With [?num_shards > 0] the client download
    is modeled as one §5.1 shard — the Bloom filter covering [K/S]
    mailboxes' worth of tokens, where [K] is raised to at least [S] — and
    the [scale.shards] / [scale.bytes_per_client] gauges are set for the
    {!Alpenhorn_telemetry.Slo} scale rules. Per-mailbox load (the §6
    ceiling) is unchanged. Default [0]: per-mailbox download, exactly the
    legacy model. *)
