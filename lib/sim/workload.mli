(** Workload generation for the evaluation (paper §8.1, §8.4).

    The system-scale experiments never materialize individual messages:
    what drives latency and bandwidth is {e how many} requests land in each
    mailbox. This module samples exactly that — recipients drawn uniformly
    or Zipf-skewed, mapped to mailboxes by the same hash rule the real
    mixnet uses, plus per-server Laplace noise per mailbox. *)

module Drbg = Alpenhorn_crypto.Drbg

type spec = {
  n_users : int;
  active_fraction : float;  (** paper: 0.05 *)
  recipient_skew : float;  (** Zipf s; 0 = uniform *)
  noise_mu : float;  (** per mailbox per server *)
  laplace_b : float;
  chain_length : int;
}

val active_count : spec -> int

val num_mailboxes : spec -> int
(** The §6 balance rule: [max 1 (round (active / (µ · chain)))]. *)

type mailbox_load = {
  real : int array;  (** real requests per mailbox *)
  noise : int array;  (** noise messages per mailbox (all servers) *)
}

val generate : spec -> Drbg.t -> mailbox_load
(** Sample one round. Recipients are ranks 1..n mapped to mailboxes by
    hashing, so popular users cluster exactly as the hash happens to place
    them — matching the paper's observation that skew concentrates load
    only as far as popular users share mailboxes. *)

val total : mailbox_load -> int array
(** real + noise per mailbox. *)
