module Drbg = Alpenhorn_crypto.Drbg

type kind =
  | Server_crash of { server : int; attempts : int }
  | Server_stall of { server : int; seconds : float }
  | Link_latency of { server : int; factor : float }
  | Link_loss of { server : int; fraction : float }
  | Client_offline of { client : int; rounds : int }

type fault = { round : int; kind : kind }

type t = { seed : string; faults : fault list }

let validate_fault f =
  if f.round < 1 then invalid_arg "Faults: round must be >= 1";
  match f.kind with
  | Server_crash { server; attempts } ->
    if server < 0 then invalid_arg "Faults: crash server";
    if attempts < 1 then invalid_arg "Faults: crash attempts"
  | Server_stall { server; seconds } ->
    if server < 0 then invalid_arg "Faults: stall server";
    if seconds < 0.0 then invalid_arg "Faults: stall seconds"
  | Link_latency { server; factor } ->
    if server < 0 then invalid_arg "Faults: latency server";
    if factor < 1.0 then invalid_arg "Faults: latency factor must be >= 1"
  | Link_loss { server; fraction } ->
    if server < 0 then invalid_arg "Faults: loss server";
    if fraction < 0.0 || fraction > 1.0 then invalid_arg "Faults: loss fraction"
  | Client_offline { client; rounds } ->
    if client < 0 then invalid_arg "Faults: offline client";
    if rounds < 1 then invalid_arg "Faults: offline rounds"

(* Canonical order: by round, then by textual form — so a schedule prints,
   reparses and replays identically no matter how it was assembled. *)
let kind_rank = function
  | Server_crash _ -> 0
  | Server_stall _ -> 1
  | Link_latency _ -> 2
  | Link_loss _ -> 3
  | Client_offline _ -> 4

let compare_fault a b =
  match compare a.round b.round with
  | 0 -> (
    match compare (kind_rank a.kind) (kind_rank b.kind) with
    | 0 -> compare a.kind b.kind
    | c -> c)
  | c -> c

let of_list ?(seed = "faults") faults =
  List.iter validate_fault faults;
  { seed; faults = List.sort compare_fault faults }

let empty = of_list []
let seed t = t.seed
let to_list t = t.faults
let is_empty t = t.faults = []

let faults_at t ~round = List.filter (fun f -> f.round = round) t.faults

(* ---- queries (what does round [round] do to server/client X?) ---- *)

let crash_attempts t ~round ~server =
  List.fold_left
    (fun acc f ->
      match f.kind with
      | Server_crash c when f.round = round && c.server = server -> Stdlib.max acc c.attempts
      | _ -> acc)
    0 t.faults

let stall_seconds t ~round ~server =
  List.fold_left
    (fun acc f ->
      match f.kind with
      | Server_stall s when f.round = round && s.server = server -> acc +. s.seconds
      | _ -> acc)
    0.0 t.faults

let latency_factor t ~round ~server =
  List.fold_left
    (fun acc f ->
      match f.kind with
      | Link_latency l when f.round = round && l.server = server -> acc *. l.factor
      | _ -> acc)
    1.0 t.faults

let loss_fraction t ~round ~server =
  let surviving =
    List.fold_left
      (fun acc f ->
        match f.kind with
        | Link_loss l when f.round = round && l.server = server -> acc *. (1.0 -. l.fraction)
        | _ -> acc)
      1.0 t.faults
  in
  1.0 -. surviving

let client_offline t ~round ~client =
  List.exists
    (fun f ->
      match f.kind with
      | Client_offline c ->
        c.client = client && round >= f.round && round < f.round + c.rounds
      | _ -> false)
    t.faults

(* ---- textual schedule format (the CLI's --faults SPEC) ----

   Entries separated by ';', each   kind@round:key=value,key=value
     crash@2:server=1,attempts=2    latency@1:server=2,factor=3
     stall@3:server=0,seconds=45    loss@1:server=0,fraction=0.2
     offline@4:client=7,rounds=2
   [to_string]/[parse] round-trip on the canonical form. *)

let float_str v =
  (* shortest form that reparses exactly *)
  let s = Printf.sprintf "%.12g" v in
  s

let kind_to_string = function
  | Server_crash { server; attempts } ->
    if attempts = 1 then Printf.sprintf "crash:server=%d" server
    else Printf.sprintf "crash:server=%d,attempts=%d" server attempts
  | Server_stall { server; seconds } ->
    Printf.sprintf "stall:server=%d,seconds=%s" server (float_str seconds)
  | Link_latency { server; factor } ->
    Printf.sprintf "latency:server=%d,factor=%s" server (float_str factor)
  | Link_loss { server; fraction } ->
    Printf.sprintf "loss:server=%d,fraction=%s" server (float_str fraction)
  | Client_offline { client; rounds } ->
    if rounds = 1 then Printf.sprintf "offline:client=%d" client
    else Printf.sprintf "offline:client=%d,rounds=%d" client rounds

let fault_to_string f =
  match String.index_opt (kind_to_string f.kind) ':' with
  | Some i ->
    let s = kind_to_string f.kind in
    Printf.sprintf "%s@%d:%s" (String.sub s 0 i) f.round
      (String.sub s (i + 1) (String.length s - i - 1))
  | None -> assert false

let to_string t = String.concat ";" (List.map fault_to_string t.faults)

let pp fmt t =
  if is_empty t then Format.fprintf fmt "no faults"
  else
    List.iter (fun f -> Format.fprintf fmt "  round %-3d %s@\n" f.round (kind_to_string f.kind)) t.faults

let split_on sep s = String.split_on_char sep s |> List.filter (fun x -> x <> "")

let parse_kv entry =
  List.fold_left
    (fun acc kv ->
      match (acc, String.split_on_char '=' kv) with
      | Error _, _ -> acc
      | Ok l, [ k; v ] -> Ok ((k, v) :: l)
      | Ok _, _ -> Error (Printf.sprintf "bad key=value %S" kv))
    (Ok []) entry

let parse_entry s =
  let fail msg = Error (Printf.sprintf "%s in fault %S" msg s) in
  match String.index_opt s '@' with
  | None -> fail "missing '@round'"
  | Some at -> (
    let kind_name = String.sub s 0 at in
    let rest = String.sub s (at + 1) (String.length s - at - 1) in
    let round_str, kvs_str =
      match String.index_opt rest ':' with
      | None -> (rest, "")
      | Some c -> (String.sub rest 0 c, String.sub rest (c + 1) (String.length rest - c - 1))
    in
    match int_of_string_opt round_str with
    | None -> fail "bad round number"
    | Some round -> (
      match parse_kv (split_on ',' kvs_str) with
      | Error e -> fail e
      | Ok kvs -> (
        let int_kv ?default k =
          match (List.assoc_opt k kvs, default) with
          | Some v, _ -> Option.to_result ~none:(Printf.sprintf "bad %s" k) (int_of_string_opt v)
          | None, Some d -> Ok d
          | None, None -> Error (Printf.sprintf "missing %s" k)
        in
        let float_kv ?default k =
          match (List.assoc_opt k kvs, default) with
          | Some v, _ -> Option.to_result ~none:(Printf.sprintf "bad %s" k) (float_of_string_opt v)
          | None, Some d -> Ok d
          | None, None -> Error (Printf.sprintf "missing %s" k)
        in
        let ( let* ) r f = Result.bind r f in
        let kind =
          match kind_name with
          | "crash" ->
            let* server = int_kv "server" in
            let* attempts = int_kv ~default:1 "attempts" in
            Ok (Server_crash { server; attempts })
          | "stall" ->
            let* server = int_kv "server" in
            let* seconds = float_kv "seconds" in
            Ok (Server_stall { server; seconds })
          | "latency" ->
            let* server = int_kv "server" in
            let* factor = float_kv "factor" in
            Ok (Link_latency { server; factor })
          | "loss" ->
            let* server = int_kv "server" in
            let* fraction = float_kv "fraction" in
            Ok (Link_loss { server; fraction })
          | "offline" ->
            let* client = int_kv "client" in
            let* rounds = int_kv ~default:1 "rounds" in
            Ok (Client_offline { client; rounds })
          | k -> Error (Printf.sprintf "unknown fault kind %S" k)
        in
        match kind with Error e -> fail e | Ok kind -> Ok { round; kind })))

let parse ?(seed = "faults") s =
  let rec go acc = function
    | [] -> Ok (of_list ~seed (List.rev acc))
    | e :: rest -> (
      match parse_entry e with
      | Error _ as err -> err
      | Ok f -> ( match validate_fault f with () -> go (f :: acc) rest | exception Invalid_argument m -> Error m))
  in
  go [] (split_on ';' (String.trim s))

(* ---- seeded random schedules (the CLI's --fault-seed) ---- *)

let generate ~seed ~rounds ~n_servers ?(n_clients = 0) ?(crash_p = 0.3) ?(stall_p = 0.3)
    ?(latency_p = 0.2) ?(loss_p = 0.2) ?(offline_p = 0.2) () =
  if rounds < 1 then invalid_arg "Faults.generate: rounds";
  if n_servers < 1 then invalid_arg "Faults.generate: n_servers";
  let rng = Drbg.create ~seed:("fault-schedule:" ^ seed) in
  let faults = ref [] in
  let add round kind = faults := { round; kind } :: !faults in
  for round = 1 to rounds do
    if Drbg.float rng < crash_p then
      add round (Server_crash { server = Drbg.int rng n_servers; attempts = 1 });
    if Drbg.float rng < stall_p then
      add round
        (Server_stall
           { server = Drbg.int rng n_servers; seconds = 5.0 +. (Drbg.float rng *. 55.0) });
    if Drbg.float rng < latency_p then
      add round
        (Link_latency { server = Drbg.int rng n_servers; factor = 2.0 +. (Drbg.float rng *. 6.0) });
    if Drbg.float rng < loss_p then
      add round
        (Link_loss
           { server = Drbg.int rng n_servers; fraction = 0.05 +. (Drbg.float rng *. 0.25) });
    if n_clients > 0 && Drbg.float rng < offline_p then
      add round
        (Client_offline { client = Drbg.int rng n_clients; rounds = 1 + Drbg.int rng 3 })
  done;
  of_list ~seed (List.rev !faults)

(* ---- retry / backoff policy ----

   The policy itself lives in Client (lib/core cannot see lib/sim); this
   alias keeps the simulator's vocabulary self-contained. *)

type policy = Alpenhorn_core.Client.retry_policy = {
  max_attempts : int;
  base_delay : float;
  backoff_factor : float;
  max_delay : float;
  jitter : float;
  round_timeout : float;
}

let default_policy = Alpenhorn_core.Client.default_retry_policy
let backoff_delay = Alpenhorn_core.Client.backoff_delay

let deployment_view t =
  {
    Alpenhorn_core.Deployment.fv_seed = t.seed;
    fv_crash_attempts = (fun ~round ~server -> crash_attempts t ~round ~server);
    fv_stall_seconds = (fun ~round ~server -> stall_seconds t ~round ~server);
    fv_client_offline = (fun ~round ~client -> client_offline t ~round ~client);
  }
