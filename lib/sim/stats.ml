let check xs = if Array.length xs = 0 then invalid_arg "Stats: empty"

let min xs = check xs; Array.fold_left Stdlib.min xs.(0) xs
let max xs = check xs; Array.fold_left Stdlib.max xs.(0) xs
let mean xs = check xs; Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let percentile xs p =
  check xs;
  if Float.is_nan p || p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  (* clamp the index so n = 1 and p = 100 never index past the end *)
  let lo = Stdlib.min (int_of_float rank) (n - 1) in
  let frac = rank -. float_of_int lo in
  if lo >= n - 1 || frac <= 0.0 then sorted.(lo)
  else sorted.(lo) +. (frac *. (sorted.(lo + 1) -. sorted.(lo)))

let median xs = percentile xs 50.0

let stddev xs =
  check xs;
  let m = mean xs in
  sqrt (Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
        /. float_of_int (Array.length xs))

let weighted_percentile pairs p =
  if Array.length pairs = 0 then invalid_arg "Stats.weighted_percentile: empty";
  let sorted = Array.copy pairs in
  Array.sort (fun (a, _) (b, _) -> compare a b) sorted;
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 sorted in
  let target = p /. 100.0 *. total in
  let acc = ref 0.0 and result = ref (fst sorted.(Array.length sorted - 1)) in
  (try
     Array.iter
       (fun (v, w) ->
         acc := !acc +. w;
         if !acc >= target then begin
           result := v;
           raise Exit
         end)
       sorted
   with Exit -> ());
  !result

let histogram xs ~buckets =
  check xs;
  if buckets < 1 then invalid_arg "Stats.histogram";
  let lo = min xs and hi = max xs in
  let width = if hi > lo then (hi -. lo) /. float_of_int buckets else 1.0 in
  let counts = Array.make buckets 0 in
  Array.iter
    (fun x ->
      (* clamp both ends: x = hi maps to the last bucket, and float error on
         a single-element / constant array cannot produce a negative index *)
      let b = Stdlib.max 0 (Stdlib.min (buckets - 1) (int_of_float ((x -. lo) /. width))) in
      counts.(b) <- counts.(b) + 1)
    xs;
  Array.mapi (fun i c -> (lo +. (float_of_int i *. width), c)) counts
