let epsilon_single ~sensitivity ~b =
  if b <= 0.0 then invalid_arg "Privacy.epsilon_single: b";
  sensitivity /. b

let compose_basic ~epsilon0 ~k = float_of_int k *. epsilon0

let compose_advanced ~epsilon0 ~k ~delta =
  if delta <= 0.0 || delta >= 1.0 then invalid_arg "Privacy.compose_advanced: delta";
  let kf = float_of_int k in
  (sqrt (2.0 *. kf *. log (1.0 /. delta)) *. epsilon0)
  +. (kf *. epsilon0 *. (exp epsilon0 -. 1.0))

let max_actions ~epsilon0 ~delta ~budget =
  (* monotone in k: binary search *)
  let fits k = k = 0 || compose_advanced ~epsilon0 ~k ~delta <= budget in
  if not (fits 1) then 0
  else begin
    let hi = ref 1 in
    while fits (2 * !hi) do
      hi := 2 * !hi
    done;
    let lo = ref !hi and hi = ref (2 * !hi) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if fits mid then lo := mid else hi := mid
    done;
    !lo
  end

type protocol_budget = {
  b : float;
  sensitivity : float;
  actions : int;
  epsilon_total : float;
  delta : float;
}

let paper_addfriend =
  { b = 406.0; sensitivity = 1.0; actions = 900; epsilon_total = log 2.0; delta = 1e-4 }

let paper_dialing =
  { b = 2183.0; sensitivity = 1.0; actions = 26_000; epsilon_total = log 2.0; delta = 1e-4 }

let verify pb =
  let epsilon0 = epsilon_single ~sensitivity:pb.sensitivity ~b:pb.b in
  compose_advanced ~epsilon0 ~k:pb.actions ~delta:pb.delta <= pb.epsilon_total
