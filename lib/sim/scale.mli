(** Million-user round driver (DESIGN.md §15).

    Runs one dialing round's {e distribution} pipeline — mailbox
    assignment, §5.1 contiguous-range sharding, §5.2 Bloom packing,
    streaming publish, client scan — at 10^6 clients in-process, with
    synthetic 32-byte tokens standing in for the mixnet's onions (the real
    crypto path is exercised end-to-end by {!Alpenhorn_core.Deployment} at
    small scale; a regression test pins the two distributions to the same
    bytes).

    Everything round-sized lives in flat preallocated buffers ([Bytes] for
    tokens, [Bigarray] int32 for mailbox ids and the counting-sort
    permutation) built and consumed in contiguous chunks on the
    {!Alpenhorn_parallel.Parallel} pool; no per-client heap structure
    exists, so peak memory is affine in the client count. {!budget_words}
    states that budget and the scale suite (CI [@scale-smoke], [bench
    scale]) asserts it.

    Results land in the [scale.*] gauges/counters for the
    {!Alpenhorn_telemetry.Slo} scale rules. Deterministic for a given
    [seed] and pool size. *)

type result = {
  clients : int;
  active : int;  (** dialers this round (5% of clients by default, §8.1) *)
  shards : int;
  num_mailboxes : int;
  tokens : int;  (** real + noise tokens distributed *)
  noise : int;
  round_seconds : float;
  bytes_per_client : int;  (** largest shard download (§5.1) *)
  total_filter_bytes : int;
  writer_peak_bytes : int;  (** bounded-writer high-water mark *)
  peak_words : int;  (** heap high-water mark attributable to the round *)
  words_per_client : float;
  scan_clients : int;  (** sampled scanning clients *)
  scan_dialed : int;  (** sampled clients that actually received a dial *)
  scan_hits : int;
      (** dialed clients that found their token — must equal [scan_dialed]
          (Bloom filters have no false negatives) *)
  scan_false_positives : int;  (** undialed clients whose probe matched (§5.2 rate) *)
}

val budget_slack_words : int
val budget_per_client_words : int

val budget_words : clients:int -> int
(** The asserted memory budget, [slack + per_client * clients]: a fixed
    process slack plus a constant per client. Calibrated several times
    above the measured cost so only an O(n) regression (e.g. a per-client
    hashtable) can breach it. *)

val within_budget : result -> bool
(** [r.peak_words <= budget_words ~clients:r.clients]. *)

val run :
  ?seed:string ->
  ?shards:int ->
  ?noise_per_mailbox:int ->
  ?active_fraction:float ->
  ?scan_sample:int ->
  clients:int ->
  unit ->
  result
(** One synthetic dialing round. [shards] defaults to one per ~64k
    clients (at least 1); [noise_per_mailbox] to the paper's
    µ·chain = 25000·3; [scan_sample] to 4096 scanning clients spread
    evenly over the population. The §6 balance rule picks the mailbox
    count, raised to at least the shard count.
    @raise Invalid_argument on non-positive [clients] or [shards]. *)

val pp : Format.formatter -> result -> unit
(** Human-readable multi-line summary. *)
