module Drbg = Alpenhorn_crypto.Drbg

type t = { cdf : float array (* cdf.(i) = P(rank <= i+1) *) }

let create ~n ~s =
  if n < 1 then invalid_arg "Zipf.create";
  let w = Array.init n (fun i -> (float_of_int (i + 1)) ** -.s) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i x ->
      acc := !acc +. (x /. total);
      cdf.(i) <- !acc)
    w;
  cdf.(n - 1) <- 1.0;
  { cdf }

let sample t rng =
  let u = Drbg.float rng in
  (* first index with cdf >= u *)
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo + 1

let pmf t i =
  if i < 1 || i > Array.length t.cdf then invalid_arg "Zipf.pmf";
  if i = 1 then t.cdf.(0) else t.cdf.(i - 1) -. t.cdf.(i - 2)

let top_share t k =
  if k < 1 then 0.0 else t.cdf.(Stdlib.min k (Array.length t.cdf) - 1)
