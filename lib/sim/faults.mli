(** Deterministic fault schedules and the retry/backoff policy (DESIGN.md
    §10).

    Alpenhorn's anytrust design (§3, §4.5) means a round cannot complete
    when {e any} mixnet or PKG server is down: the paper aborts the round
    and has clients resubmit in the next one, and lets offline clients
    catch up on missed keywheel rounds (§5.3). A {!t} is the chaos
    harness's script for exercising exactly that machinery: a list of
    (round, fault) pairs — server crashes, stalls, link latency spikes and
    loss, client offline epochs — plus the seed that keyed any random
    generation. Everything is deterministic: the same schedule (and the
    same seed for backoff jitter) reproduces the same failure trace,
    event log included, byte for byte.

    The schedule is consumed two ways: {!Alpenhorn_sim.Round_sim} applies
    it on the DES clock (modeled timing), and
    {!Alpenhorn_core.Deployment.set_faults} applies it to the real
    in-process protocol (genuine abort/rollback/retry). Both key faults by
    the {e per-phase} round number — a fault at round 2 fires in the 2nd
    add-friend round and the 2nd dialing round alike. *)

type kind =
  | Server_crash of { server : int; attempts : int }
      (** the server is down for the round's first [attempts] tries and
          restarts before the next retry *)
  | Server_stall of { server : int; seconds : float }
      (** the server processes its batch [seconds] late (first attempt
          only); a stall past the policy's [round_timeout] aborts the
          round *)
  | Link_latency of { server : int; factor : float }
      (** the server's outbound link runs [factor] times slower *)
  | Link_loss of { server : int; fraction : float }
      (** the server's outbound link drops [fraction] of messages
          (simulator only — the in-process deployment has no lossy
          links) *)
  | Client_offline of { client : int; rounds : int }
      (** client [client] (by registration index) misses [rounds]
          consecutive rounds starting at the fault's round, then catches
          up (§5.3) *)

type fault = { round : int; kind : kind }

type t
(** An immutable schedule in canonical order. *)

val empty : t

val of_list : ?seed:string -> fault list -> t
(** Sorts into canonical order; [seed] (default ["faults"]) keys backoff
    jitter. @raise Invalid_argument on out-of-range fields. *)

val seed : t -> string
val to_list : t -> fault list
val is_empty : t -> bool
val faults_at : t -> round:int -> fault list

(** {1 Queries} Combined effect of every matching fault in the round:
    crash attempts take the max, stalls add, latency factors and loss
    survival rates multiply. All return the identity (0 / 0.0 / 1.0 /
    false) when nothing matches. *)

val crash_attempts : t -> round:int -> server:int -> int
val stall_seconds : t -> round:int -> server:int -> float
val latency_factor : t -> round:int -> server:int -> float
val loss_fraction : t -> round:int -> server:int -> float
val client_offline : t -> round:int -> client:int -> bool

(** {1 Textual schedules} ([--faults SPEC]) — semicolon-separated entries
    [kind@round:key=value,...]: [crash@2:server=1,attempts=2],
    [stall@3:server=0,seconds=45], [latency@1:server=2,factor=3],
    [loss@1:server=0,fraction=0.2], [offline@4:client=7,rounds=2].
    [attempts] and [rounds] default to 1. *)

val to_string : t -> string
(** Canonical spec; [parse (to_string t) = Ok t]. *)

val parse : ?seed:string -> string -> (t, string) result
val pp : Format.formatter -> t -> unit

val generate :
  seed:string ->
  rounds:int ->
  n_servers:int ->
  ?n_clients:int ->
  ?crash_p:float ->
  ?stall_p:float ->
  ?latency_p:float ->
  ?loss_p:float ->
  ?offline_p:float ->
  unit ->
  t
(** Seeded random schedule ([--fault-seed]): per round, each fault kind
    fires independently with its probability (crash/stall 0.3, latency/
    loss 0.2, offline 0.2 — offline only when [n_clients > 0]). Same seed,
    same schedule, forever. *)

(** {1 Retry policy} Bounded retry with exponential backoff and
    deterministic jitter. An alias of
    {!Alpenhorn_core.Client.retry_policy} (the policy lives in core for
    layering reasons; the simulator re-exports it). *)

type policy = Alpenhorn_core.Client.retry_policy = {
  max_attempts : int;  (** total tries per round, including the first *)
  base_delay : float;  (** seconds before the first retry *)
  backoff_factor : float;  (** delay multiplier per further retry *)
  max_delay : float;  (** backoff cap, before jitter *)
  jitter : float;  (** fraction in [0, 1]: delay varies by ±jitter *)
  round_timeout : float;  (** a round stalled past this is abandoned *)
}

val default_policy : policy
(** 4 attempts, 5 s base, x2 growth capped at 60 s, ±20% jitter, 600 s
    round timeout. *)

val backoff_delay : policy -> seed:string -> attempt:int -> float
(** Delay before re-running the round after failed [attempt] (>= 1):
    [min max_delay (base_delay * backoff_factor^(attempt-1))] jittered by
    ±[jitter], the jitter drawn from a DRBG keyed on [(seed, attempt)]
    only — deterministic under the sim clock and across reruns.
    @raise Invalid_argument on a malformed policy or [attempt < 1]. *)

val deployment_view : t -> Alpenhorn_core.Deployment.fault_view
(** The schedule as the closure record
    {!Alpenhorn_core.Deployment.set_faults} takes (link latency and loss
    are simulator-only and do not appear in the view). *)
