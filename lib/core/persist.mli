(** Encrypted client-state backup and restore (paper §9).

    The paper recommends keeping an offline backup of the long-term signing
    key and the friends' pinned keys — but {e discourages} backing up
    keywheels, "since that is bad for forward secrecy" (a backup freezes old
    wheel keys that the live client has already erased). This module
    implements exactly that split:

    - {!export_identity} serializes the signing key and TOFU store;
    - keywheel state is deliberately {e not} exportable;
    - the blob is sealed with a key stretched from a passphrase, so a
      stolen backup alone is useless.

    Restore yields the materials a fresh client needs to re-run the
    add-friend protocol with every friend ({!Client.add_friend} with the
    restored [expected_key]), which is the paper's prescribed recovery
    path. *)

module Params = Alpenhorn_pairing.Params
module Bigint = Alpenhorn_bigint.Bigint
module Bls = Alpenhorn_bls.Bls

type identity_backup = {
  email : string;
  signing_secret : Bigint.t;
  pinned : (string * Bls.public) list;  (** friends' long-term keys *)
}

val export_identity :
  Params.t -> passphrase:string -> email:string -> signing_secret:Bigint.t ->
  pinned:(string * Bls.public) list -> string
(** Serialize and seal. The passphrase is stretched with an iterated
    hash before keying the AEAD. *)

val import_identity : Params.t -> passphrase:string -> string -> identity_backup option
(** [None] on a wrong passphrase, tampered blob, or malformed contents. *)

(** {1 Inner (pre-seal) codec — exposed for tests} *)

val encode_plain :
  Params.t ->
  email:string ->
  signing_secret:Bigint.t ->
  pinned:(string * Bls.public) list ->
  string

val decode_plain : Params.t -> string -> identity_backup option
(** Total decoder for the sealed payload: rejects bad framing, undecodable
    points, and any trailing bytes after the pinned list (a
    corrupted-then-extended blob must not import silently). *)
