(** Deployment configuration: the knobs an application developer sets when
    standing up a set of Alpenhorn servers (§3, §8.1). *)

type t = {
  param_name : string;  (** pairing parameter set: "test" or "production" *)
  n_pkgs : int;  (** number of independent PKG servers *)
  chain_length : int;  (** mixnet servers in the chain *)
  addfriend_noise_mu : float;  (** mean noise per add-friend mailbox per server (paper: 4000) *)
  dialing_noise_mu : float;  (** mean noise per dialing mailbox per server (paper: 25000) *)
  laplace_b : float;  (** Laplace scale; paper's evaluation sets 0 to kill variance *)
  max_intents : int;  (** intents the application declares (§5.3; paper: 10) *)
  active_fraction : float;  (** expected fraction of users active per round (paper: 5%) *)
  addfriend_round_seconds : int;  (** round cadence, for bandwidth accounting *)
  dialing_round_seconds : int;
  faithful_noise : bool;
      (** when true, add-friend noise is a genuine IBE encryption of random
          bytes to a random identity (§4.3); when false, random bytes of the
          right length — cheaper for large simulations. *)
  dial_archive_rounds : int;
      (** how many rounds of dialing mailboxes stay fetchable for clients
          that were offline (§5.1: "maintained by the Alpenhorn servers for
          a relatively long time", e.g. a day); older rounds are erased and
          offline clients advance their keywheels past them. *)
  dial_shards : int;
      (** when > 0, the dialing round distributes into this many
          contiguous-mailbox-range shards (§5.1 CDN model,
          {!Alpenhorn_mixnet.Mailbox.distribute_sharded}): one Bloom filter
          per shard, clients download the shard covering their mailbox.
          The effective mailbox count is raised to at least the shard
          count. 0 (the default in both presets) keeps the per-mailbox
          filters. *)
}

val paper : t
(** The paper's evaluation settings (§8.1): 3 PKGs, 3 mixers, µ = 4000 /
    25000, b = 0, 10 intents, 5% active, 1-hour add-friend rounds, 5-minute
    dialing rounds, production curve. *)

val test : t
(** Small and fast: test curve, tiny noise, short rounds. *)

val params : t -> Alpenhorn_pairing.Params.t
(** Resolve (and memoize) the pairing parameters. *)

val validate : t -> (unit, string) result
