module Params = Alpenhorn_pairing.Params
module Bigint = Alpenhorn_bigint.Bigint
module Bls = Alpenhorn_bls.Bls
module Curve = Alpenhorn_pairing.Curve
module Aead = Alpenhorn_crypto.Aead
module Hmac = Alpenhorn_crypto.Hmac
module Sha256 = Alpenhorn_crypto.Sha256
module Util = Alpenhorn_crypto.Util

type identity_backup = {
  email : string;
  signing_secret : Bigint.t;
  pinned : (string * Bls.public) list;
}

let magic = "ALPENHORN-BACKUP-1"

(* Iterated-hash passphrase stretching (PBKDF-ish; deliberately slow). *)
let stretch ~passphrase ~salt =
  let acc = ref (Sha256.digest (salt ^ passphrase)) in
  for _ = 1 to 10_000 do
    acc := Sha256.digest (!acc ^ passphrase)
  done;
  Hmac.hkdf ~salt ~info:"alpenhorn-backup" ~len:32 !acc

let put_str buf s =
  Buffer.add_string buf (Util.be32 (String.length s));
  Buffer.add_string buf s

let get_str s pos =
  if !pos + 4 > String.length s then None
  else begin
    let n = Util.read_be32 s !pos in
    pos := !pos + 4;
    if n < 0 || !pos + n > String.length s then None
    else begin
      let v = String.sub s !pos n in
      pos := !pos + n;
      Some v
    end
  end

let encode_plain (params : Params.t) ~email ~signing_secret ~pinned =
  let buf = Buffer.create 256 in
  put_str buf magic;
  put_str buf email;
  put_str buf (Bigint.to_bytes_be signing_secret);
  Buffer.add_string buf (Util.be32 (List.length pinned));
  List.iter
    (fun (friend, key) ->
      put_str buf friend;
      put_str buf (Bls.public_bytes params key))
    pinned;
  Buffer.contents buf

let decode_plain (params : Params.t) s =
  let pos = ref 0 in
  let ( let* ) = Option.bind in
  let* m = get_str s pos in
  if m <> magic then None
  else begin
    let* email = get_str s pos in
    let* sk_bytes = get_str s pos in
    if !pos + 4 > String.length s then None
    else begin
      let n = Util.read_be32 s !pos in
      pos := !pos + 4;
      let rec entries i acc =
        if i = 0 then Some (List.rev acc)
        else begin
          let* friend = get_str s pos in
          let* key_bytes = get_str s pos in
          let* key = Bls.public_of_bytes params key_bytes in
          if Curve.equal key Curve.Inf then None else entries (i - 1) ((friend, key) :: acc)
        end
      in
      let* pinned = entries n [] in
      (* total: trailing bytes after the pinned list mean the blob was
         corrupted or extended — a silently-truncating import would let a
         tampered backup restore "successfully" *)
      if !pos <> String.length s then None
      else Some { email; signing_secret = Bigint.of_bytes_be sk_bytes; pinned }
    end
  end

let export_identity params ~passphrase ~email ~signing_secret ~pinned =
  (* deterministic salt/nonce from the content keeps the module free of an
     RNG dependency; a given backup is stable across exports *)
  let plain = encode_plain params ~email ~signing_secret ~pinned in
  let salt = String.sub (Sha256.digest ("backup-salt" ^ email)) 0 16 in
  let key = stretch ~passphrase ~salt in
  let nonce = String.sub (Sha256.digest ("backup-nonce" ^ plain)) 0 12 in
  salt ^ nonce ^ Aead.seal ~key ~nonce ~ad:magic plain

let import_identity params ~passphrase blob =
  if String.length blob < 16 + 12 + Aead.overhead then None
  else begin
    let salt = String.sub blob 0 16 in
    let nonce = String.sub blob 16 12 in
    let body = String.sub blob 28 (String.length blob - 28) in
    let key = stretch ~passphrase ~salt in
    match Aead.open_ ~key ~nonce ~ad:magic body with
    | None -> None
    | Some plain -> decode_plain params plain
  end
