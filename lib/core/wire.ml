module Bigint = Alpenhorn_bigint.Bigint
module Util = Alpenhorn_crypto.Util
module Params = Alpenhorn_pairing.Params
module Curve = Alpenhorn_pairing.Curve
module Bls = Alpenhorn_bls.Bls
module Dh = Alpenhorn_dh.Dh

type friend_request = {
  sender_email : string;
  sender_key : Bls.public;
  sender_sig : Bls.signature;
  pkg_sigs : Bls.signature;
  dialing_key : Dh.public;
  dialing_round : int;
}

let max_email_length = 64
let dial_token_size = 32

(* The signature must bind the ephemeral dialing key (and the long-term
   key it rides with) to the email and round — otherwise a malicious mix
   server could swap the DH half in transit and the sender signature would
   still verify, exactly the MITM Fig 3 rules out. *)
let sender_sig_message (params : Params.t) r =
  "friend-req" ^ Util.be32 (String.length r.sender_email) ^ r.sender_email
  ^ Bls.public_bytes params r.sender_key
  ^ Dh.public_bytes params r.dialing_key
  ^ Util.be32 r.dialing_round

let point_size (params : Params.t) = Curve.point_bytes params.fp

let request_plaintext_size params = 1 + max_email_length + (4 * point_size params) + 4

let request_ciphertext_size params =
  request_plaintext_size params + Alpenhorn_ibe.Ibe.ciphertext_overhead params

let encode_request (params : Params.t) r =
  let n = String.length r.sender_email in
  if n > max_email_length then invalid_arg "Wire.encode_request: email too long";
  let buf = Buffer.create (request_plaintext_size params) in
  Buffer.add_char buf (Char.chr n);
  Buffer.add_string buf r.sender_email;
  Buffer.add_string buf (String.make (max_email_length - n) '\000');
  Buffer.add_string buf (Bls.public_bytes params r.sender_key);
  Buffer.add_string buf (Bls.signature_bytes params r.sender_sig);
  Buffer.add_string buf (Bls.signature_bytes params r.pkg_sigs);
  Buffer.add_string buf (Dh.public_bytes params r.dialing_key);
  Buffer.add_string buf (Util.be32 r.dialing_round);
  Buffer.contents buf

let decode_request (params : Params.t) s =
  let ps = point_size params in
  if String.length s <> request_plaintext_size params then None
  else begin
    let n = Char.code s.[0] in
    if n > max_email_length then None
    else begin
      (* canonicality: the padding after the email must be all-zero, so
         exactly one encoding decodes to a given request (no covert
         channel, no signature-stripping games via padding malleability) *)
      let padding_zero = ref true in
      for i = 1 + n to max_email_length do
        if s.[i] <> '\000' then padding_zero := false
      done;
      if not !padding_zero then None
      else begin
      let sender_email = String.sub s 1 n in
      let off = 1 + max_email_length in
      let field i = String.sub s (off + (i * ps)) ps in
      let ( let* ) = Option.bind in
      let* sender_key = Bls.public_of_bytes params (field 0) in
      let* sender_sig = Bls.signature_of_bytes params (field 1) in
      let* pkg_sigs = Bls.signature_of_bytes params (field 2) in
      let* dialing_key = Dh.public_of_bytes params (field 3) in
      let dialing_round = Util.read_be32 s (off + (4 * ps)) in
      Some { sender_email; sender_key; sender_sig; pkg_sigs; dialing_key; dialing_round }
      end
    end
  end
