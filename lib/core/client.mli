(** The Alpenhorn client library: the paper's Figure 1 API.

    A client owns a long-term signing key, an address book (keywheel table
    plus trust-on-first-use key store), and queues of pending add-friend and
    call intents. It participates in every round with exactly one
    fixed-size submission — a real request when one is queued, cover
    traffic otherwise — so the servers learn nothing from traffic patterns.

    The client is transport-agnostic: round participation is broken into
    explicit steps ({!begin_addfriend_round} / {!addfriend_submission} /
    {!scan_addfriend_mailbox}, and the dialing equivalents) that a driver —
    the in-process {!Deployment}, the discrete-event simulator, or a real
    network layer — sequences. *)

module Bigint = Alpenhorn_bigint.Bigint
module Drbg = Alpenhorn_crypto.Drbg
module Params = Alpenhorn_pairing.Params
module Ibe = Alpenhorn_ibe.Ibe
module Bls = Alpenhorn_bls.Bls
module Dh = Alpenhorn_dh.Dh
module Pkg = Alpenhorn_pkg.Pkg

type t

type callbacks = {
  new_friend : email:string -> key:Bls.public -> bool;
      (** Incoming friend request (paper's NewFriend); return true to
          accept. *)
  confirmed_friend : email:string -> unit;
      (** A friend request we sent was confirmed; the keywheel entry now
          exists. *)
  incoming_call : email:string -> intent:int -> session_key:string -> unit;
      (** Paper's IncomingCall. *)
  call_placed : email:string -> intent:int -> session_key:string -> unit;
      (** Our own Call went out this round; the session key is what the
          paper's Call() returns. *)
}

val null_callbacks : callbacks
(** Accepts every friend request, ignores every notification. *)

val create :
  config:Config.t ->
  rng:Drbg.t ->
  email:string ->
  pkg_public_keys:Bls.public list ->
  callbacks:callbacks ->
  t
(** Fig 1 [Register] begins here; registration with the PKGs is completed
    by the driver (see {!Deployment.register}). [pkg_public_keys] are the
    servers' long-term keys, pre-distributed with the software (§3.3). *)

val email : t -> string
val signing_public : t -> Bls.public
(** Fig 1 [MySigningKey]. *)

val sign_extraction_request : t -> round:int -> Bls.signature
val sign_deregister : t -> Bls.signature

(** {1 Address book} *)

val add_friend : t -> ?expected_key:Bls.public -> email:string -> unit -> unit
(** Fig 1 [AddFriend]: queue a friend request to [email]. [expected_key] is
    the optional out-of-band key; if given, incoming confirmations must
    match it. *)

val call : t -> email:string -> intent:int -> unit
(** Fig 1 [Call]: queue a call. The session key is delivered through the
    [call_placed] callback when the dial token is actually sent.
    @raise Invalid_argument if [intent] is outside [0, max_intents). *)

val friends : t -> string list
val is_friend : t -> email:string -> bool
val remove_friend : t -> email:string -> unit
(** Erase the keywheel entry and pinned key (§3.2 worst-case guarantee). *)

val pinned_key : t -> email:string -> Bls.public option
(** The TOFU-pinned long-term key for a friend. *)

val pending_add_friends : t -> int
val pending_calls : t -> int

(** {1 Round abort recovery (DESIGN.md §10)}

    Anytrust (§4.5) aborts a whole round when any server is down. The
    driver retries the round under a {!retry_policy}; between attempts it
    rolls each client back to its pre-round {!checkpoint} so queued
    requests and DH state are replayed instead of silently dropped. *)

type retry_policy = {
  max_attempts : int;  (** total tries per round, including the first *)
  base_delay : float;  (** seconds before the first retry *)
  backoff_factor : float;  (** delay multiplier per further retry *)
  max_delay : float;  (** backoff cap, before jitter *)
  jitter : float;  (** fraction in [0, 1]: delay varies by ±jitter *)
  round_timeout : float;  (** a round stalled past this is abandoned *)
}

val default_retry_policy : retry_policy
(** 4 attempts, 5 s base, x2 growth capped at 60 s, ±20% jitter, 600 s
    round timeout. *)

val backoff_delay : retry_policy -> seed:string -> attempt:int -> float
(** Delay before re-running a round after failed [attempt] (>= 1):
    [min max_delay (base_delay * backoff_factor^(attempt-1))] jittered by
    ±[jitter]. The jitter is drawn from a DRBG keyed on [(seed, attempt)]
    only — never the client's protocol rng — so the delay sequence is
    deterministic and retries leave the protocol's randomness untouched.
    @raise Invalid_argument on a malformed policy or [attempt < 1]. *)

type checkpoint
(** The client state a round submission mutates: the three request queues
    and the pending-outgoing DH table. Deliberately excludes the keywheel
    (an aborted round never reaches the scan step). *)

val checkpoint : t -> checkpoint
val rollback : t -> checkpoint -> unit
(** Restore the state captured by {!checkpoint}; a checkpoint may be
    rolled back to any number of times. *)

(** {1 Add-friend rounds (Algorithm 1)} *)

type af_round
(** Per-round client state: the aggregated identity private key, the PKG
    attestations for this client, and the round number. Dropped at the end
    of the round (forward secrecy, §4.4). *)

val begin_addfriend_round :
  t ->
  round:int ->
  now:int ->
  pkgs:Pkg.t array ->
  (af_round, Pkg.error) result
(** Step 1: authenticate to every PKG, collect and aggregate identity keys
    and attestation signatures. *)

val begin_addfriend_round_with :
  t ->
  round:int ->
  n_pkgs:int ->
  extract:
    (int ->
    email:string ->
    signature:Bls.signature ->
    (Ibe.identity_key * Bls.signature, Pkg.error) result) ->
  (af_round, Pkg.error) result
(** The transport seam behind {!begin_addfriend_round}: [extract i] performs
    the authenticated key-extraction round trip with the [i]th PKG, however
    the caller reaches it — an in-process {!Pkg.t} handle or a network RPC
    ({!Alpenhorn_remote}'s framed TCP transport). Identical aggregation and
    first-error semantics. *)

val begin_addfriend_round_batch :
  t list ->
  round:int ->
  now:int ->
  pkgs:Pkg.t array ->
  (t * (af_round, Pkg.error) result) list
(** {!begin_addfriend_round} for a whole deployment at once: one
    {!Pkg.extract_batch} per PKG covers every client, fanning the
    verify/extract/sign work across the domain pool. Result order matches
    the input client list; per client the outcome (including which error
    is reported first) matches the sequential call. *)

val addfriend_submission :
  t ->
  af_round ->
  mpk_agg:Ibe.master_public ->
  num_mailboxes:int ->
  server_pks:Dh.public list ->
  string
(** Steps 2-3: one onion-wrapped, fixed-size submission — the queued friend
    request if any, otherwise cover traffic. *)

val addfriend_submission_traced :
  t ->
  af_round ->
  ?tracer:Alpenhorn_telemetry.Trace.t ->
  mpk_agg:Ibe.master_public ->
  num_mailboxes:int ->
  server_pks:Dh.public list ->
  unit ->
  string * Alpenhorn_telemetry.Trace.ctx option
(** {!addfriend_submission} plus an optional out-of-band trace context: a
    REAL submission (never cover traffic) is offered to the sampler and, if
    sampled, gets a root [client.submit] span whose context the caller
    threads through {!Alpenhorn_mixnet.Chain.run_round_traced}. The onion
    bytes are identical with or without a tracer. *)

type af_event =
  | Friend_request_accepted of string  (** new friend; confirmation queued *)
  | Friend_request_rejected of string  (** application declined *)
  | Friend_request_key_mismatch of string  (** TOFU or out-of-band key conflict *)
  | Friend_confirmed of string  (** our request was acked; keywheel entry live *)

val scan_addfriend_mailbox : t -> af_round -> string list -> af_event list
(** Steps 4-6: try to decrypt every ciphertext with the round identity key,
    validate signatures (sender sig and PKG multisignature), fire
    callbacks, update keywheels, queue confirmations. Consumes [af_round]:
    the identity key is erased. *)

val verify_request :
  t -> round:int -> Wire.friend_request -> (unit, [ `Bad_pkg_sigs | `Bad_sender_sig ]) result
(** The two signature checks of Algorithm 1 step 4, exposed for tests. *)

(** {1 Dialing rounds (§5)} *)

val dialing_round : t -> int
(** The keywheel clock. *)

val advance_dialing : t -> round:int -> unit
(** Roll all keywheels forward (erases old keys). *)

val dialing_submission : t -> num_mailboxes:int -> server_pks:Dh.public list -> string
(** One onion-wrapped dial token for the current round — the oldest queued
    call, or cover traffic. Fires [call_placed] when a real call goes
    out. *)

val dialing_submission_traced :
  t ->
  ?tracer:Alpenhorn_telemetry.Trace.t ->
  num_mailboxes:int ->
  server_pks:Dh.public list ->
  unit ->
  string * Alpenhorn_telemetry.Trace.ctx option
(** {!dialing_submission} with optional out-of-band tracing; see
    {!addfriend_submission_traced}. *)

type dial_event = Incoming_call of { peer : string; intent : int; session_key : string }

val scan_dialing_mailbox : t -> Alpenhorn_bloom.Bloom.t -> dial_event list
(** Check the Bloom filter against every (friend, intent) token for the
    current round; fire [incoming_call] for hits. *)

val catch_up_dialing : t -> through:(int * Alpenhorn_bloom.Bloom.t option) list -> dial_event list
(** Replay missed rounds in ascending order (§5.1): for each [(round,
    filter)] past the wheel's clock, advance the keywheel and scan the
    filter when the server still holds it; [None] filters (expired from the
    archive) advance the wheel without scanning, preserving forward secrecy
    at the cost of losing those calls. *)

(** {1 Backup and restore (§9)} *)

val export_backup : t -> passphrase:string -> string
(** Seal the long-term signing key and the pinned friend keys into an
    encrypted blob ({!Persist}). Keywheel state is deliberately excluded —
    the paper discourages keywheel backups as bad for forward secrecy. *)

val create_from_backup :
  config:Config.t ->
  rng:Drbg.t ->
  pkg_public_keys:Bls.public list ->
  callbacks:callbacks ->
  Persist.identity_backup ->
  t
(** Rebuild a client from a restored backup: same identity and long-term
    key, pinned friend keys pre-loaded, empty keywheel. The user then
    re-runs add-friend with each friend (the restored pins defeating any
    man-in-the-middle). *)

(** {1 Introspection} *)

val keywheel : t -> Alpenhorn_keywheel.Keywheel.t
val config : t -> Config.t
