type t = {
  param_name : string;
  n_pkgs : int;
  chain_length : int;
  addfriend_noise_mu : float;
  dialing_noise_mu : float;
  laplace_b : float;
  max_intents : int;
  active_fraction : float;
  addfriend_round_seconds : int;
  dialing_round_seconds : int;
  faithful_noise : bool;
  dial_archive_rounds : int;
  dial_shards : int;
}

let paper =
  {
    param_name = "production";
    n_pkgs = 3;
    chain_length = 3;
    addfriend_noise_mu = 4000.0;
    dialing_noise_mu = 25000.0;
    laplace_b = 0.0;
    max_intents = 10;
    active_fraction = 0.05;
    addfriend_round_seconds = 3600;
    dialing_round_seconds = 300;
    faithful_noise = true;
    dial_archive_rounds = 288 (* one day of 5-minute rounds, §5.1 *);
    dial_shards = 0;
  }

let test =
  {
    param_name = "test";
    n_pkgs = 3;
    chain_length = 3;
    addfriend_noise_mu = 2.0;
    dialing_noise_mu = 3.0;
    laplace_b = 0.0;
    max_intents = 4;
    active_fraction = 0.5;
    addfriend_round_seconds = 60;
    dialing_round_seconds = 10;
    faithful_noise = true;
    dial_archive_rounds = 4;
    dial_shards = 0;
  }

let params t = Alpenhorn_pairing.Params.of_named t.param_name

let validate t =
  if t.n_pkgs < 1 then Error "n_pkgs must be >= 1"
  else if t.chain_length < 1 then Error "chain_length must be >= 1"
  else if t.addfriend_noise_mu < 0.0 || t.dialing_noise_mu < 0.0 then Error "noise_mu must be >= 0"
  else if t.laplace_b < 0.0 then Error "laplace_b must be >= 0"
  else if t.max_intents < 1 then Error "max_intents must be >= 1"
  else if t.active_fraction <= 0.0 || t.active_fraction > 1.0 then
    Error "active_fraction must be in (0, 1]"
  else if t.addfriend_round_seconds < 1 || t.dialing_round_seconds < 1 then
    Error "round durations must be >= 1s"
  else if t.dial_archive_rounds < 0 then Error "dial_archive_rounds must be >= 0"
  else if t.dial_shards < 0 then Error "dial_shards must be >= 0"
  else begin
    match Alpenhorn_pairing.Params.of_named t.param_name with
    | exception Invalid_argument m -> Error m
    | _ -> Ok ()
  end
