(** In-process Alpenhorn deployment: N PKGs, an add-friend mixnet chain, a
    dialing mixnet chain, a simulated email provider for registration, and
    any number of clients — all driven round by round.

    This is the real protocol end to end (every onion layer, IBE
    ciphertext, signature and Bloom filter is genuine); only the network is
    collapsed into function calls. Examples and integration tests run on
    it; the latency/bandwidth figures of §8 use {!Alpenhorn_sim} instead,
    which prices the same message flows with a hardware cost model. *)

module Drbg = Alpenhorn_crypto.Drbg
module Params = Alpenhorn_pairing.Params
module Bls = Alpenhorn_bls.Bls
module Pkg = Alpenhorn_pkg.Pkg

type t

val create : config:Config.t -> seed:string -> t
val config : t -> Config.t
val params : t -> Params.t
val pkgs : t -> Pkg.t array
val pkg_public_keys : t -> Bls.public list
val now : t -> int
val advance_clock : t -> seconds:int -> unit

val new_client : t -> email:string -> callbacks:Client.callbacks -> Client.t
(** Create a client wired to this deployment's PKG keys (does not
    register it). *)

val register : t -> Client.t -> (unit, Pkg.error) result
(** Fig 1 [Register]: register the client's long-term key with every PKG,
    completing the email-confirmation flow through the simulated provider
    (§4.6). *)

val inbox : t -> email:string -> (int * string) list
(** Tokens the simulated email provider delivered to [email]:
    (pkg index, token) pairs, most recent first. For compromise tests. *)

(** {1 Fault injection and recovery (DESIGN.md §10)} *)

type fault_view = {
  fv_seed : string;  (** keys the deterministic backoff jitter *)
  fv_crash_attempts : round:int -> server:int -> int;
      (** the server is down for the round's first N attempts *)
  fv_stall_seconds : round:int -> server:int -> float;
      (** first-attempt processing delay; past the policy's
          [round_timeout] it aborts the round *)
  fv_client_offline : round:int -> client:int -> bool;
      (** client (by registration index) sits the round out *)
}
(** A fault schedule as plain closures. lib/core cannot see lib/sim, so
    {!Alpenhorn_sim.Faults} converts its schedule into this view
    ([Faults.deployment_view]); tests can also hand-roll one. *)

exception Round_failed of { phase : string; round : int; attempts : int }
(** Every attempt the retry policy allowed aborted. The deployment is
    left consistent: servers restarted, clients rolled back, nothing
    published — the next round can run normally. *)

val set_faults : t -> fault_view option -> unit
(** Install (or clear) the fault schedule applied to subsequent rounds.
    Faults are injected just after the chain announces its round keys —
    the server-dies-mid-round case the anytrust abort path (§4.5) exists
    for. An aborted round rolls every participant back and re-runs after
    deterministic exponential backoff (clock time, {!advance_clock});
    aborts, retries and recovery time land in the [faults.*] metrics. *)

val set_retry_policy : t -> Client.retry_policy -> unit
val retry_policy : t -> Client.retry_policy
(** Defaults to {!Client.default_retry_policy}. *)

type af_stats = {
  af_round : int;
  af_attempts : int;  (** 1 = no abort; [n] = recovered on the nth try *)
  requests_in : int;
  noise_added : int;
  dropped : int;
  num_mailboxes : int;
  mailbox_bytes : int array;
  events : (string * Client.af_event) list;  (** (client email, event) *)
}

val run_addfriend_round :
  t -> ?tracer:Alpenhorn_telemetry.Trace.t -> ?participants:Client.t list -> unit -> af_stats
(** One complete add-friend round (Algorithm 1): PKG key rotation with
    commit-reveal verification, per-client key extraction, submission,
    mixing with noise, mailbox distribution, download and scan, key
    erasure. [participants] defaults to every registered client.

    With [?tracer], sampled real submissions get stitched causal traces
    (client.submit → per-server mix.hop → mailbox.publish → client.scan);
    trace contexts ride out-of-band and the wire bytes are unchanged
    (DESIGN.md §9). The round also logs [round.start]/[round.close] events
    and sets the [mailbox.max_load] gauge for the SLO engine.

    Under a fault schedule ({!set_faults}) the round may abort and re-run;
    [af_attempts] reports how many tries it took.
    @raise Round_failed when the retry budget is exhausted. *)

type dial_stats = {
  dial_round : int;
  dial_attempts : int;  (** 1 = no abort; [n] = recovered on the nth try *)
  tokens_in : int;
  dial_noise_added : int;
  dial_dropped : int;
  dial_num_mailboxes : int;
  filter_bytes : int array;
  calls : (string * Client.dial_event) list;
}

val run_dialing_round :
  t -> ?tracer:Alpenhorn_telemetry.Trace.t -> ?participants:Client.t list -> unit -> dial_stats
(** One dialing round (§5); same observability hooks as
    {!run_addfriend_round}. Under a fault schedule, a round may abort and
    re-run (see {!set_faults}; [calls] then also carries events recovered
    by returning offline clients replaying archived filters).
    @raise Round_failed when the retry budget is exhausted. *)

val addfriend_round_number : t -> int
val dialing_round_number : t -> int

(** {1 Offline clients (§5.1)} *)

val archived_filter : t -> round:int -> email:string -> Alpenhorn_bloom.Bloom.t option
(** The dialing mailbox [email] would download for [round], if the archive
    still holds that round ([Config.dial_archive_rounds] retention). *)

val catch_up_client : t -> Client.t -> Client.dial_event list
(** Bring a client that skipped dialing rounds up to the current round:
    scan every archived round it missed, advance its keywheel past the
    expired ones (§5.1's give-up rule). *)
