module Params = Alpenhorn_pairing.Params
module Dh = Alpenhorn_dh.Dh
module Ibe = Alpenhorn_ibe.Ibe
module Ratelimit = Alpenhorn_mixnet.Ratelimit

type announcement = {
  round : int;
  mode : [ `AddFriend | `Dialing ];
  server_pks : Dh.public list;
  mpk_agg : Ibe.master_public option;
  num_mailboxes : int;
}

type t = {
  params : Params.t;
  gate : Ratelimit.gate option;
  mutable open_ : announcement option;
  mutable batch : string list;
  mutable rejected : int;
}

let create params ?token_issuer_key () =
  let gate = Option.map (fun issuer_key -> Ratelimit.create_gate params ~issuer_key) token_issuer_key in
  { params; gate; open_ = None; batch = []; rejected = 0 }

let requires_tokens t = t.gate <> None

let open_round t ann =
  match t.open_ with
  | Some _ -> invalid_arg "Entry.open_round: round already open"
  | None ->
    t.open_ <- Some ann;
    t.batch <- [];
    Option.iter Ratelimit.begin_round t.gate

let current t = t.open_

let submit t ?token onion =
  match t.open_ with
  | None -> Error `No_round
  | Some _ -> begin
    match t.gate with
    | None ->
      t.batch <- onion :: t.batch;
      Ok ()
    | Some gate -> begin
      match token with
      | None ->
        t.rejected <- t.rejected + 1;
        Error `Bad_token
      | Some tok -> begin
        match Ratelimit.admit gate tok with
        | Ok () ->
          t.batch <- onion :: t.batch;
          Ok ()
        | Error (`Bad_signature | `Double_spend) ->
          t.rejected <- t.rejected + 1;
          Error `Bad_token
      end
    end
  end

let close_round t =
  match t.open_ with
  | None -> invalid_arg "Entry.close_round: no open round"
  | Some _ ->
    let batch = Array.of_list (List.rev t.batch) in
    t.open_ <- None;
    t.batch <- [];
    Option.iter Ratelimit.commit_round t.gate;
    batch

(* Clean abort: the batch is discarded and every token admitted for this
   round is un-spent, so clients can resubmit the same token when the
   round is re-run (the §9 quota covers sends, not retries). *)
let abort_round t =
  match t.open_ with
  | None -> invalid_arg "Entry.abort_round: no open round"
  | Some _ ->
    t.open_ <- None;
    t.batch <- [];
    (match t.gate with None -> 0 | Some gate -> Ratelimit.rollback_round gate)

let submissions_rejected t = t.rejected
