(** Wire format for friend requests (paper Fig 3) and request sizing.

    Every add-friend request has the same plaintext size (the email field is
    padded to a fixed width), so every IBE ciphertext — and hence every
    onion a client submits — is indistinguishable by length. *)

module Bigint = Alpenhorn_bigint.Bigint
module Params = Alpenhorn_pairing.Params
module Bls = Alpenhorn_bls.Bls
module Dh = Alpenhorn_dh.Dh

type friend_request = {
  sender_email : string;
  sender_key : Bls.public;  (** sender's long-term signing key *)
  sender_sig : Bls.signature;  (** by sender over (email, dialing key, round) *)
  pkg_sigs : Bls.signature;  (** aggregated PKG attestations (PKGSigs) *)
  dialing_key : Dh.public;  (** ephemeral DH half for the keywheel secret *)
  dialing_round : int;  (** keywheel synchronization point (Fig 5) *)
}

val max_email_length : int
(** 64 bytes; longer addresses are rejected at registration. *)

val sender_sig_message : Params.t -> friend_request -> string
(** The bytes [sender_sig] covers: the sender email, the sender's
    long-term key, the ephemeral dialing key, and the dialing round
    (paper Fig 3). Binding the DH half is what stops a malicious server
    from swapping it in transit and mounting the MITM the design rules
    out. *)

val request_plaintext_size : Params.t -> int
(** Fixed size of an encoded friend request before IBE encryption. *)

val request_ciphertext_size : Params.t -> int
(** Size after IBE encryption — what sits in an add-friend mailbox
    (paper §8.6: 244 bytes + IBE ciphertext in the Go prototype). *)

val encode_request : Params.t -> friend_request -> string
(** @raise Invalid_argument if the email exceeds {!max_email_length}. *)

val decode_request : Params.t -> string -> friend_request option
(** Total and canonical: rejects wrong sizes, undecodable points, and
    nonzero email padding — exactly one encoding decodes per request. *)

val dial_token_size : int
(** 32 bytes (the paper's 256-bit dial tokens). *)
