(** The entry server (paper §7).

    The prototype's entry server fronts the mixnet: it manages client
    connections, announces when a round starts (carrying everything a
    client needs to participate: round number, per-round mixnet keys, the
    PKGs' revealed master keys, the mailbox count), aggregates the clients'
    fixed-size submissions into one batch, and hands the batch to the first
    mixnet server. It is {e untrusted}: everything it sees is either public
    round state or an onion it cannot open.

    This module also hosts the §9 rate-limiting gate: when constructed
    with an issuer key, every submission must be accompanied by a fresh
    blind-signature token (see {!Alpenhorn_mixnet.Ratelimit}); tokenless or
    double-spent submissions are dropped before they reach the mixnet. *)

module Params = Alpenhorn_pairing.Params
module Dh = Alpenhorn_dh.Dh
module Ibe = Alpenhorn_ibe.Ibe
module Ratelimit = Alpenhorn_mixnet.Ratelimit

type t

type announcement = {
  round : int;
  mode : [ `AddFriend | `Dialing ];
  server_pks : Dh.public list;  (** mixnet round keys, chain order *)
  mpk_agg : Ibe.master_public option;  (** aggregated PKG key (add-friend only) *)
  num_mailboxes : int;
}

val create : Params.t -> ?token_issuer_key:Alpenhorn_bls.Bls.public -> unit -> t

val requires_tokens : t -> bool

val open_round : t -> announcement -> unit
(** Start accepting submissions for a round.
    @raise Invalid_argument if a round is already open. *)

val current : t -> announcement option

val submit : t -> ?token:Ratelimit.token -> string -> (unit, [ `No_round | `Bad_token ]) result
(** Queue one onion for the open round. When the entry server enforces
    rate limiting, a missing, invalid or double-spent token rejects the
    submission (client DoS resilience, §3.3/§9) — the onion never reaches
    the mixnet. *)

val close_round : t -> string array
(** Stop accepting and return the batch for the first mixnet server; any
    tokens admitted for the round become permanently spent.
    @raise Invalid_argument if no round is open. *)

val abort_round : t -> int
(** Abort the open round cleanly (DESIGN.md §10): the queued batch is
    discarded and — when the gate is active — every token admitted for
    this round is un-spent (see {!Ratelimit.rollback_round}), so clients
    can resubmit the same token when the round is re-run. Returns the
    number of tokens rolled back.
    @raise Invalid_argument if no round is open. *)

val submissions_rejected : t -> int
(** Total submissions dropped by the token gate since creation. *)
