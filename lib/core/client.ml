module Bigint = Alpenhorn_bigint.Bigint
module Drbg = Alpenhorn_crypto.Drbg
module Params = Alpenhorn_pairing.Params
module Curve = Alpenhorn_pairing.Curve
module Ibe = Alpenhorn_ibe.Ibe
module Bls = Alpenhorn_bls.Bls
module Dh = Alpenhorn_dh.Dh
module Pkg = Alpenhorn_pkg.Pkg
module Keywheel = Alpenhorn_keywheel.Keywheel
module Bloom = Alpenhorn_bloom.Bloom
module Onion = Alpenhorn_mixnet.Onion
module Payload = Alpenhorn_mixnet.Payload
module Mailbox = Alpenhorn_mixnet.Mailbox
module Tel = Alpenhorn_telemetry.Telemetry
module Trace = Alpenhorn_telemetry.Trace
module Pairing = Alpenhorn_pairing.Pairing
module Parallel = Alpenhorn_parallel.Parallel

(* Aggregated over all client instances in the process — the evaluation
   (§8.1) cares about total scan attempts vs hits, not per-client splits. *)
let m_keywheel_advances = Tel.Counter.v Tel.default "client.keywheel_advances"
let m_scan_attempts = Tel.Counter.v Tel.default "client.scan_attempts"
let m_scan_hits = Tel.Counter.v Tel.default "client.scan_hits"
let m_dial_tokens_checked = Tel.Counter.v Tel.default "client.dial_tokens_checked"
let m_dial_hits = Tel.Counter.v Tel.default "client.dial_hits"

type callbacks = {
  new_friend : email:string -> key:Bls.public -> bool;
  confirmed_friend : email:string -> unit;
  incoming_call : email:string -> intent:int -> session_key:string -> unit;
  call_placed : email:string -> intent:int -> session_key:string -> unit;
}

let null_callbacks =
  {
    new_friend = (fun ~email:_ ~key:_ -> true);
    confirmed_friend = (fun ~email:_ -> ());
    incoming_call = (fun ~email:_ ~intent:_ ~session_key:_ -> ());
    call_placed = (fun ~email:_ ~intent:_ ~session_key:_ -> ());
  }

(* A friend request we initiated and whose confirmation we await. The DH
   secret is generated when the request actually goes out. *)
type outgoing = {
  mutable dh_secret : Dh.secret option;
  mutable proposed_round : int;
  expected_key : Bls.public option;
}

(* A confirmation we owe to a friend whose request we accepted. The keywheel
   entry already exists; we must send them the matching DH public half. *)
type confirmation = { peer : string; dh_public : Dh.public; entry_round : int }

type t = {
  config : Config.t;
  params : Params.t;
  rng : Drbg.t;
  email : string;
  sk : Bls.secret;
  pk : Bls.public;
  pkg_pks : Bls.public list; (* long-term PKG keys, pre-distributed (§3.3) *)
  callbacks : callbacks;
  wheel : Keywheel.t;
  pinned : (string, Bls.public) Hashtbl.t; (* TOFU store *)
  outgoing : (string, outgoing) Hashtbl.t;
  mutable addfriend_queue : string list;
  mutable confirm_queue : confirmation list;
  mutable call_queue : (string * int) list;
}

type af_round = {
  af_round_num : int;
  mutable identity_key : Ibe.identity_key option; (* None once erased (§4.4) *)
  pkg_sigs : Bls.signature;
}

let create ~config ~rng ~email ~pkg_public_keys ~callbacks =
  if String.length email > Wire.max_email_length then invalid_arg "Client.create: email too long";
  let params = Config.params config in
  let sk, pk = Bls.keygen params (Drbg.derive rng "longterm") in
  {
    config;
    params;
    rng;
    email;
    sk;
    pk;
    pkg_pks = pkg_public_keys;
    callbacks;
    wheel = Keywheel.create ~owner:email;
    pinned = Hashtbl.create 64;
    outgoing = Hashtbl.create 8;
    addfriend_queue = [];
    confirm_queue = [];
    call_queue = [];
  }

let email t = t.email
let signing_public t = t.pk
let keywheel t = t.wheel
let config t = t.config

let sign_extraction_request t ~round =
  Bls.sign t.params t.sk (Pkg.extraction_request_message ~email:t.email ~round)

let sign_deregister t = Bls.sign t.params t.sk ("deregister" ^ t.email)

(* ---- address book ---- *)

let add_friend t ?expected_key ~email () =
  if email = t.email then invalid_arg "Client.add_friend: cannot friend yourself";
  (* A repeat add is a retry (e.g. the first request was lost while the
     friend was offline): refresh the pending state and requeue, unless the
     original request is still waiting to go out. *)
  Hashtbl.replace t.outgoing email { dh_secret = None; proposed_round = 0; expected_key };
  if not (List.mem email t.addfriend_queue) then
    t.addfriend_queue <- t.addfriend_queue @ [ email ]

let call t ~email ~intent =
  if intent < 0 || intent >= t.config.Config.max_intents then invalid_arg "Client.call: intent";
  t.call_queue <- t.call_queue @ [ (email, intent) ]

let friends t = Keywheel.friends t.wheel
let is_friend t ~email = Keywheel.entry_round t.wheel ~email <> None

let remove_friend t ~email =
  Keywheel.remove_friend t.wheel ~email;
  Hashtbl.remove t.pinned email;
  Hashtbl.remove t.outgoing email

let pinned_key t ~email = Hashtbl.find_opt t.pinned email
let pending_add_friends t = List.length t.addfriend_queue + List.length t.confirm_queue
let pending_calls t = List.length t.call_queue

(* ---- round abort recovery (DESIGN.md §10) ---- *)

type retry_policy = {
  max_attempts : int;
  base_delay : float;
  backoff_factor : float;
  max_delay : float;
  jitter : float;
  round_timeout : float;
}

let default_retry_policy =
  {
    max_attempts = 4;
    base_delay = 5.0;
    backoff_factor = 2.0;
    max_delay = 60.0;
    jitter = 0.2;
    round_timeout = 600.0;
  }

let validate_retry_policy p =
  if p.max_attempts < 1 then invalid_arg "Client: max_attempts must be >= 1";
  if p.base_delay < 0.0 || p.max_delay < 0.0 then invalid_arg "Client: negative backoff delay";
  if p.backoff_factor < 1.0 then invalid_arg "Client: backoff_factor must be >= 1";
  if p.jitter < 0.0 || p.jitter > 1.0 then invalid_arg "Client: jitter must be in [0, 1]";
  if p.round_timeout <= 0.0 then invalid_arg "Client: round_timeout must be > 0"

let backoff_delay policy ~seed ~attempt =
  validate_retry_policy policy;
  if attempt < 1 then invalid_arg "Client.backoff_delay: attempt must be >= 1";
  let raw =
    Stdlib.min policy.max_delay
      (policy.base_delay *. (policy.backoff_factor ** float_of_int (attempt - 1)))
  in
  (* Jitter comes from a DRBG keyed on (seed, attempt) only — never from the
     client's protocol rng — so retries neither perturb the protocol's
     randomness stream nor depend on how many draws preceded them. *)
  let u = Drbg.float (Drbg.create ~seed:(Printf.sprintf "backoff:%s:%d" seed attempt)) in
  Stdlib.max 0.0 (raw *. (1.0 +. (policy.jitter *. ((2.0 *. u) -. 1.0))))

(* Building a submission consumes queue entries and stores fresh DH state in
   [outgoing]; if the round then aborts, the request never reached a mailbox
   and all of it must be replayed. A checkpoint captures exactly the state a
   submission mutates. The keywheel is deliberately excluded: an aborted
   round never reaches the scan step (its only mutation site besides
   [advance_to], which is idempotent). *)
type checkpoint = {
  cp_addfriend_queue : string list;
  cp_confirm_queue : confirmation list;
  cp_call_queue : (string * int) list;
  cp_outgoing : (string * outgoing) list;
}

let copy_outgoing (o : outgoing) =
  { dh_secret = o.dh_secret; proposed_round = o.proposed_round; expected_key = o.expected_key }

let checkpoint t =
  {
    cp_addfriend_queue = t.addfriend_queue;
    cp_confirm_queue = t.confirm_queue;
    cp_call_queue = t.call_queue;
    cp_outgoing = Hashtbl.fold (fun k v acc -> (k, copy_outgoing v) :: acc) t.outgoing [];
  }

let rollback t cp =
  t.addfriend_queue <- cp.cp_addfriend_queue;
  t.confirm_queue <- cp.cp_confirm_queue;
  t.call_queue <- cp.cp_call_queue;
  Hashtbl.reset t.outgoing;
  List.iter (fun (k, v) -> Hashtbl.replace t.outgoing k (copy_outgoing v)) cp.cp_outgoing

(* ---- add-friend rounds (Algorithm 1) ---- *)

(* The transport seam: extraction as an abstract per-PKG call, so the same
   client code runs against in-process [Pkg.t] handles or a network-backed
   transport (Alpenhorn_remote speaks this through its framed RPC). *)
let begin_addfriend_round_with t ~round ~n_pkgs ~extract =
  let signature = sign_extraction_request t ~round in
  let rec collect i keys sigs =
    if i = n_pkgs then Ok (keys, sigs)
    else begin
      match extract i ~email:t.email ~signature with
      | Error e -> Error e
      | Ok (key, att) -> collect (i + 1) (key :: keys) (att :: sigs)
    end
  in
  match collect 0 [] [] with
  | Error e -> Error e
  | Ok (keys, sigs) ->
    Ok
      {
        af_round_num = round;
        identity_key = Some (Ibe.aggregate_identity t.params keys);
        pkg_sigs = Bls.aggregate t.params sigs;
      }

let begin_addfriend_round t ~round ~now ~pkgs =
  begin_addfriend_round_with t ~round ~n_pkgs:(Array.length pkgs) ~extract:(fun i ~email ~signature ->
      Pkg.extract pkgs.(i) ~now ~round ~email ~signature)

(* Batched variant for a whole deployment: one Pkg.extract_batch call per
   PKG covers every client, so the per-request verify/extract/sign work
   fans out across the domain pool.  Per client the per-PKG results are
   consumed in the same order, with the same first-error short-circuit, as
   [begin_addfriend_round], so the healthy path is value-identical. *)
let begin_addfriend_round_batch clients ~round ~now ~pkgs =
  let arr = Array.of_list clients in
  let requests = Array.map (fun c -> (c.email, sign_extraction_request c ~round)) arr in
  let per_pkg = Array.map (fun pkg -> Pkg.extract_batch pkg ~now ~round requests) pkgs in
  Array.to_list arr
  |> List.mapi (fun i c ->
         let rec collect j keys sigs =
           if j = Array.length pkgs then
             Ok
               {
                 af_round_num = round;
                 identity_key = Some (Ibe.aggregate_identity c.params keys);
                 pkg_sigs = Bls.aggregate c.params sigs;
               }
           else begin
             match per_pkg.(j).(i) with
             | Error e -> Error e
             | Ok (key, att) -> collect (j + 1) (key :: keys) (att :: sigs)
           end
         in
         (c, collect 0 [] []))

(* DialingRound for a fresh keywheel entry: safely ahead of the wheel's
   clock so both clients can still reach it (Fig 5). *)
let propose_dialing_round t = Keywheel.current_round t.wheel + 2

let build_request t af ~dialing_key ~dialing_round =
  let skeleton =
    {
      Wire.sender_email = t.email;
      sender_key = t.pk;
      sender_sig = Curve.infinity;
      pkg_sigs = af.pkg_sigs;
      dialing_key;
      dialing_round;
    }
  in
  { skeleton with Wire.sender_sig = Bls.sign t.params t.sk (Wire.sender_sig_message t.params skeleton) }

let cover_addfriend_payload t =
  Payload.encode ~mailbox:Payload.cover (Drbg.bytes t.rng (Wire.request_ciphertext_size t.params))

(* Offer a REAL (non-cover) submission to the sampler; the root
   [client.submit] span starts the message's causal trace. The context is
   returned out-of-band — the wire bytes are exactly those of the untraced
   path (tracing consumes no protocol randomness). *)
let trace_submit t tracer =
  match tracer with
  | None -> None
  | Some tr -> (
    match Trace.sample tr with
    | None -> None
    | Some ctx ->
      Trace.emit tr ctx
        ~labels:[ ("client", t.email) ]
        ~name:"client.submit" ~ts:(Tel.now Tel.default) ~dur:0.0 ();
      Some ctx)

let addfriend_submission_traced t af ?tracer ~mpk_agg ~num_mailboxes ~server_pks () =
  let real =
    (* Confirmations first: a friend is waiting on them. *)
    match t.confirm_queue with
    | c :: rest ->
      t.confirm_queue <- rest;
      Some (c.peer, c.dh_public, c.entry_round)
    | [] ->
      (match t.addfriend_queue with
       | [] -> None
       | peer :: rest ->
         t.addfriend_queue <- rest;
         let dh_secret, dh_public = Dh.keygen t.params t.rng in
         let proposed = propose_dialing_round t in
         (match Hashtbl.find_opt t.outgoing peer with
          | Some o ->
            o.dh_secret <- Some dh_secret;
            o.proposed_round <- proposed
          | None ->
            Hashtbl.replace t.outgoing peer
              { dh_secret = Some dh_secret; proposed_round = proposed; expected_key = None });
         Some (peer, dh_public, proposed))
  in
  let payload, ctx =
    match real with
    | None -> (cover_addfriend_payload t, None)
    | Some (peer, dialing_key, dialing_round) ->
      let req = build_request t af ~dialing_key ~dialing_round in
      let ctxt = Ibe.encrypt t.params t.rng mpk_agg ~id:peer (Wire.encode_request t.params req) in
      ( Payload.encode ~mailbox:(Mailbox.mailbox_of_identity peer ~num_mailboxes) ctxt,
        trace_submit t tracer )
  in
  (Onion.wrap t.params t.rng ~server_pks payload, ctx)

let addfriend_submission t af ~mpk_agg ~num_mailboxes ~server_pks =
  fst (addfriend_submission_traced t af ~mpk_agg ~num_mailboxes ~server_pks ())

type af_event =
  | Friend_request_accepted of string
  | Friend_request_rejected of string
  | Friend_request_key_mismatch of string
  | Friend_confirmed of string

let verify_request t ~round (r : Wire.friend_request) =
  let pk_bytes = Bls.public_bytes t.params r.sender_key in
  let att = Pkg.attestation_message ~email:r.sender_email ~pk_bytes ~round in
  let agg = Bls.aggregate_public t.params t.pkg_pks in
  (* Batch the PKG multisignature and the sender signature under one shared
     final exponentiation; only a failing request pays for the individual
     re-verifies that name which signature was bad. *)
  if
    Bls.verify_batch t.params
      [| (agg, att, r.pkg_sigs); (r.sender_key, Wire.sender_sig_message t.params r, r.sender_sig) |]
  then Ok ()
  else if not (Bls.verify t.params agg att r.pkg_sigs) then Error `Bad_pkg_sigs
  else Error `Bad_sender_sig

(* TOFU plus optional out-of-band expectation (§3.2). *)
let key_acceptable t ~peer ~key ~expected =
  let matches_pin =
    match Hashtbl.find_opt t.pinned peer with None -> true | Some pinned -> Curve.equal pinned key
  in
  let matches_expected =
    match expected with None -> true | Some e -> Curve.equal e key
  in
  matches_pin && matches_expected

let process_request t (r : Wire.friend_request) =
  let peer = r.sender_email in
  match Hashtbl.find_opt t.outgoing peer with
  | Some ({ dh_secret = Some dh_secret; _ } as o) ->
    (* Confirmation of a request we sent (or a simultaneous add). *)
    if not (key_acceptable t ~peer ~key:r.sender_key ~expected:o.expected_key) then
      Some (Friend_request_key_mismatch peer)
    else begin
      let secret = Dh.shared_secret t.params dh_secret r.dialing_key in
      (* Symmetric round rule so simultaneous adds also agree: both sides
         take the max of what they sent and what they received. *)
      let entry_round = Stdlib.max o.proposed_round r.dialing_round in
      Keywheel.add_friend t.wheel ~email:peer ~secret ~round:entry_round;
      Hashtbl.replace t.pinned peer r.sender_key;
      Hashtbl.remove t.outgoing peer;
      t.callbacks.confirmed_friend ~email:peer;
      Some (Friend_confirmed peer)
    end
  | Some { dh_secret = None; _ } | None ->
    (* A fresh request from someone new (or one that raced ahead of our own
       queued-but-unsent request; treat it as incoming). *)
    if not (key_acceptable t ~peer ~key:r.sender_key ~expected:None) then
      Some (Friend_request_key_mismatch peer)
    else if not (t.callbacks.new_friend ~email:peer ~key:r.sender_key) then
      Some (Friend_request_rejected peer)
    else begin
      let dh_secret, dh_public = Dh.keygen t.params t.rng in
      let entry_round = Stdlib.max r.dialing_round (propose_dialing_round t) in
      let secret = Dh.shared_secret t.params dh_secret r.dialing_key in
      Keywheel.add_friend t.wheel ~email:peer ~secret ~round:entry_round;
      Hashtbl.replace t.pinned peer r.sender_key;
      Hashtbl.remove t.outgoing peer;
      t.addfriend_queue <- List.filter (fun e -> e <> peer) t.addfriend_queue;
      t.confirm_queue <- t.confirm_queue @ [ { peer; dh_public; entry_round } ];
      Some (Friend_request_accepted peer)
    end

let scan_addfriend_mailbox t af ciphertexts =
  let identity_key =
    match af.identity_key with
    | None -> invalid_arg "Client.scan_addfriend_mailbox: round already consumed"
    | Some k -> k
  in
  let events =
    Tel.Span.with_ Tel.default "client.scan_addfriend" (fun () ->
        Tel.Counter.add m_scan_attempts (List.length ciphertexts);
        (* Trial decryption is the expensive, randomness-free part of the
           scan: fan it out across the domain pool. The hits are then
           processed sequentially in mailbox order, because
           [process_request] draws DH keys from the client's DRBG. *)
        let pool = Parallel.get () in
        if Parallel.size pool > 1 then Pairing.warmup t.params;
        let plaintexts =
          Parallel.map_list pool (fun ctxt -> Ibe.decrypt t.params identity_key ctxt) ciphertexts
        in
        List.filter_map
          (fun plaintext ->
            match plaintext with
            | None -> None (* someone else's request, or noise (§3.1 step 6) *)
            | Some plaintext ->
              Tel.Counter.inc m_scan_hits;
              (match Wire.decode_request t.params plaintext with
               | None -> None
               | Some r ->
                 if r.sender_email = t.email then None
                 else begin
                   match verify_request t ~round:af.af_round_num r with
                   | Error _ -> None (* forged or damaged: drop silently *)
                   | Ok () -> process_request t r
                 end))
          plaintexts)
  in
  af.identity_key <- None;
  (* erase the round identity key (§4.4) *)
  events

(* ---- dialing (§5) ---- *)

let dialing_round t = Keywheel.current_round t.wheel

let advance_dialing t ~round =
  let delta = round - Keywheel.current_round t.wheel in
  if delta > 0 then Tel.Counter.add m_keywheel_advances delta;
  Keywheel.advance_to t.wheel ~round

let cover_dialing_payload t =
  Payload.encode ~mailbox:Payload.cover (Drbg.bytes t.rng Wire.dial_token_size)

let dialing_submission_traced t ?tracer ~num_mailboxes ~server_pks () =
  (* First sendable call wins; calls whose keywheel entry is still in the
     future stay queued, calls to strangers are dropped. *)
  let rec pick kept = function
    | [] -> (None, List.rev kept)
    | (peer, intent) :: rest -> begin
      match Keywheel.dial_token t.wheel ~email:peer ~intent with
      | Some token -> (Some (peer, intent, token), List.rev_append kept rest)
      | None ->
        if Keywheel.entry_round t.wheel ~email:peer <> None then pick ((peer, intent) :: kept) rest
        else pick kept rest
    end
  in
  let chosen, remaining = pick [] t.call_queue in
  t.call_queue <- remaining;
  let payload, ctx =
    match chosen with
    | None -> (cover_dialing_payload t, None)
    | Some (peer, intent, token) ->
      (match Keywheel.session_key t.wheel ~email:peer with
       | Some sk -> t.callbacks.call_placed ~email:peer ~intent ~session_key:sk
       | None -> ());
      ( Payload.encode ~mailbox:(Mailbox.mailbox_of_identity peer ~num_mailboxes) token,
        trace_submit t tracer )
  in
  (Onion.wrap t.params t.rng ~server_pks payload, ctx)

let dialing_submission t ~num_mailboxes ~server_pks =
  fst (dialing_submission_traced t ~num_mailboxes ~server_pks ())

type dial_event = Incoming_call of { peer : string; intent : int; session_key : string }

let scan_dialing_mailbox t filter =
  let hits =
    Tel.Span.with_ Tel.default "client.scan_dialing" (fun () ->
        let expected = Keywheel.expected_tokens t.wheel ~max_intents:t.config.Config.max_intents in
        Tel.Counter.add m_dial_tokens_checked (List.length expected);
        expected
        |> List.filter_map (fun (peer, intent, token) ->
               if Bloom.mem filter token then begin
                 Tel.Counter.inc m_dial_hits;
                 Option.map
                   (fun sk -> Incoming_call { peer; intent; session_key = sk })
                   (Keywheel.session_key t.wheel ~email:peer)
               end
               else None))
  in
  List.iter
    (fun (Incoming_call { peer; intent; session_key }) ->
      t.callbacks.incoming_call ~email:peer ~intent ~session_key)
    hits;
  hits

(* §5.1: a client coming back online replays the archived filters of the
   rounds it missed — advancing the keywheel one round at a time and
   scanning where the server still holds the mailbox. Rounds already past
   the archive's retention yield [None]: the wheel still advances (forward
   secrecy wins over completeness) but those calls are lost. *)
let catch_up_dialing t ~through =
  List.concat_map
    (fun (round, filter) ->
      if round <= Keywheel.current_round t.wheel then []
      else begin
        advance_dialing t ~round;
        match filter with None -> [] | Some f -> scan_dialing_mailbox t f
      end)
    through

(* ---- backup and restore (§9) ---- *)

let export_backup t ~passphrase =
  let pinned = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.pinned [] |> List.sort compare in
  Persist.export_identity t.params ~passphrase ~email:t.email ~signing_secret:t.sk ~pinned

let create_from_backup ~config ~rng ~pkg_public_keys ~callbacks (b : Persist.identity_backup) =
  let t =
    create ~config ~rng ~email:b.Persist.email ~pkg_public_keys ~callbacks
  in
  let t = { t with sk = b.Persist.signing_secret;
                   pk = Bls.public_of_secret t.params b.Persist.signing_secret } in
  List.iter (fun (friend, key) -> Hashtbl.replace t.pinned friend key) b.Persist.pinned;
  t
