module Drbg = Alpenhorn_crypto.Drbg
module Params = Alpenhorn_pairing.Params
module Ibe = Alpenhorn_ibe.Ibe
module Bls = Alpenhorn_bls.Bls
module Pkg = Alpenhorn_pkg.Pkg
module Chain = Alpenhorn_mixnet.Chain
module Mailbox = Alpenhorn_mixnet.Mailbox
module Bloom = Alpenhorn_bloom.Bloom
module Tel = Alpenhorn_telemetry.Telemetry
module Trace = Alpenhorn_telemetry.Trace
module Events = Alpenhorn_telemetry.Events

type t = {
  config : Config.t;
  params : Params.t;
  rng : Drbg.t;
  pkgs : Pkg.t array;
  af_chain : Chain.t;
  dial_chain : Chain.t;
  inboxes : (string, (int * string) list ref) Hashtbl.t; (* simulated email provider *)
  dial_archive : (int, Bloom.t array * int) Hashtbl.t; (* round -> filters, K (§5.1) *)
  mutable clients : Client.t list; (* registered clients *)
  mutable af_round : int;
  mutable dial_round : int;
  mutable clock : int;
}

let create ~config ~seed =
  (match Config.validate config with Ok () -> () | Error m -> invalid_arg ("Deployment.create: " ^ m));
  let params = Config.params config in
  let rng = Drbg.create ~seed:("deployment" ^ seed) in
  let inboxes = Hashtbl.create 256 in
  let deliver pkg_index ~to_ ~token =
    let box =
      match Hashtbl.find_opt inboxes to_ with
      | Some b -> b
      | None ->
        let b = ref [] in
        Hashtbl.replace inboxes to_ b;
        b
    in
    box := (pkg_index, token) :: !box
  in
  let pkgs =
    Array.init config.Config.n_pkgs (fun i ->
        Pkg.create params
          ~rng:(Drbg.derive rng (Printf.sprintf "pkg-%d" i))
          ~send_email:(deliver i) ())
  in
  {
    config;
    params;
    rng;
    pkgs;
    af_chain = Chain.create params ~rng:(Drbg.derive rng "af-chain") ~chain_length:config.Config.chain_length;
    dial_chain =
      Chain.create params ~rng:(Drbg.derive rng "dial-chain") ~chain_length:config.Config.chain_length;
    inboxes;
    dial_archive = Hashtbl.create 64;
    clients = [];
    af_round = 0;
    dial_round = 0;
    clock = 0;
  }

let config t = t.config
let params t = t.params
let pkgs t = t.pkgs
let pkg_public_keys t = Array.to_list (Array.map Pkg.long_term_public t.pkgs)
let now t = t.clock
let advance_clock t ~seconds = t.clock <- t.clock + seconds
let addfriend_round_number t = t.af_round
let dialing_round_number t = t.dial_round

let new_client t ~email ~callbacks =
  Client.create ~config:t.config
    ~rng:(Drbg.derive t.rng ("client-" ^ email))
    ~email ~pkg_public_keys:(pkg_public_keys t) ~callbacks

let inbox t ~email = match Hashtbl.find_opt t.inboxes email with Some b -> !b | None -> []

let register t client =
  let email = Client.email client in
  let pk = Client.signing_public client in
  let rec per_pkg i =
    if i = Array.length t.pkgs then Ok ()
    else begin
      match Pkg.register t.pkgs.(i) ~now:t.clock ~email ~pk with
      | Error e -> Error e
      | Ok () ->
        (* the user reads the confirmation email and echoes the token *)
        let token =
          match List.assoc_opt i (inbox t ~email) with
          | Some tok -> tok
          | None -> "" (* no email delivered: confirmation will fail below *)
        in
        (match Pkg.confirm t.pkgs.(i) ~now:t.clock ~email ~token with
         | Error e -> Error e
         | Ok () -> per_pkg (i + 1))
    end
  in
  match per_pkg 0 with
  | Error e -> Error e
  | Ok () ->
    if not (List.memq client t.clients) then t.clients <- t.clients @ [ client ];
    Ok ()

(* ---- add-friend round (Algorithm 1, orchestrated) ---- *)

type af_stats = {
  af_round : int;
  requests_in : int;
  noise_added : int;
  dropped : int;
  num_mailboxes : int;
  mailbox_bytes : int array;
  events : (string * Client.af_event) list;
}

let aggregate_mpk t ~round =
  let mpks =
    Array.to_list t.pkgs
    |> List.map (fun pkg ->
           match Pkg.master_public pkg ~round with
           | Some mpk -> mpk
           | None -> failwith "Deployment: PKG did not reveal round key")
  in
  Ibe.aggregate_public t.params mpks

let num_af_mailboxes t ~participants =
  let expected_real =
    int_of_float (Float.round (float_of_int participants *. t.config.Config.active_fraction))
  in
  Mailbox.num_mailboxes_for ~expected_real ~noise_mu:t.config.Config.addfriend_noise_mu
    ~chain_length:t.config.Config.chain_length

let af_noise_body t ~mpk_agg ~mailbox:_ =
  if t.config.Config.faithful_noise then begin
    (* genuine IBE encryption of random bytes to a random identity: relies
       on ciphertext anonymity (§4.3) *)
    let id = "noise-" ^ Alpenhorn_crypto.Util.to_hex (Drbg.bytes t.rng 8) in
    let body = Drbg.bytes t.rng (Wire.request_plaintext_size t.params) in
    Ibe.encrypt t.params t.rng mpk_agg ~id body
  end
  else Drbg.bytes t.rng (Wire.request_ciphertext_size t.params)

let g_mailbox_load = Tel.Gauge.v Tel.default "mailbox.max_load"

(* Record the modeled §6 mailbox-load ceiling input: the fullest mailbox of
   this round, in entries. *)
let set_mailbox_load counts =
  Tel.Gauge.set g_mailbox_load (float_of_int (Array.fold_left Stdlib.max 0 counts))

let run_addfriend_round t ?tracer ?participants () =
  Tel.Span.with_ Tel.default "round.addfriend" @@ fun () ->
  let clients = match participants with Some l -> l | None -> t.clients in
  t.af_round <- t.af_round + 1;
  let round = t.af_round in
  Events.log Events.default
    ~labels:[ ("phase", "addfriend") ]
    ~detail:(Printf.sprintf "round %d, %d clients" round (List.length clients))
    "round.start";
  (* 1. PKGs rotate master keys: commit, then reveal; verify the openings *)
  let mpk_agg =
    Tel.Span.with_ Tel.default "pkg.rotate" @@ fun () ->
    let commitments = Array.map (fun pkg -> Pkg.begin_round pkg ~round) t.pkgs in
    Array.iteri
      (fun i pkg ->
        match Pkg.reveal_round pkg ~round with
        | Error e -> failwith ("Deployment: reveal failed: " ^ Pkg.error_to_string e)
        | Ok (mpk, opening) ->
          if not (Pkg.verify_commitment t.params ~commitment:commitments.(i) ~mpk ~opening) then
            failwith "Deployment: PKG commitment mismatch")
      t.pkgs;
    aggregate_mpk t ~round
  in
  let num_mailboxes = num_af_mailboxes t ~participants:(List.length clients) in
  (* 2. every client extracts identity keys and submits one onion *)
  let server_pks = Chain.begin_round t.af_chain in
  let contexts, batch =
    Tel.Span.with_ Tel.default "client.submit" @@ fun () ->
    let contexts =
      List.map
        (fun c ->
          match Client.begin_addfriend_round c ~round ~now:t.clock ~pkgs:t.pkgs with
          | Error e -> failwith ("Deployment: extraction failed: " ^ Pkg.error_to_string e)
          | Ok ctx -> (c, ctx))
        clients
    in
    let batch =
      List.map
        (fun (c, ctx) ->
          Client.addfriend_submission_traced c ctx ?tracer ~mpk_agg ~num_mailboxes ~server_pks ())
        contexts
      |> Array.of_list
    in
    (contexts, batch)
  in
  (* 3. the mixnet chain runs the round *)
  let mailboxes, stats, published =
    Chain.run_round_traced t.af_chain ~mode:`AddFriend
      ~noise_mu:t.config.Config.addfriend_noise_mu ~laplace_b:t.config.Config.laplace_b
      ~num_mailboxes
      ~noise_body:(fun ~mailbox -> af_noise_body t ~mpk_agg ~mailbox)
      ?tracer batch
  in
  let buckets = Mailbox.plain_exn mailboxes in
  set_mailbox_load (Array.map List.length buckets);
  (* 4-6. every client downloads its mailbox and scans *)
  let events =
    Tel.Span.with_ Tel.default "client.scan" @@ fun () ->
    List.concat_map
      (fun (c, ctx) ->
        let mb = Mailbox.mailbox_of_identity (Client.email c) ~num_mailboxes in
        let t0 = Tel.now Tel.default in
        let evs = Client.scan_addfriend_mailbox c ctx buckets.(mb) in
        (match tracer with
        | Some tr ->
          (* stitch the recipient-side scan onto each traced message that
             landed in this client's mailbox *)
          List.iter
            (fun (pmb, pctx) ->
              if pmb = mb then
                Trace.emit tr (Trace.child tr pctx)
                  ~labels:[ ("client", Client.email c) ]
                  ~name:"client.scan" ~ts:t0 ~dur:(Tel.now Tel.default -. t0) ())
            published
        | None -> ());
        List.map (fun ev -> (Client.email c, ev)) evs)
      contexts
  in
  (* PKGs erase master secrets *)
  Array.iter (fun pkg -> Pkg.end_round pkg ~round) t.pkgs;
  advance_clock t ~seconds:t.config.Config.addfriend_round_seconds;
  Events.log Events.default
    ~labels:[ ("phase", "addfriend") ]
    ~detail:
      (Printf.sprintf "round %d: %d in, %d noise, %d dropped" round stats.Chain.real_in
         stats.Chain.noise_added stats.Chain.dropped)
    "round.close";
  {
    af_round = round;
    requests_in = stats.Chain.real_in;
    noise_added = stats.Chain.noise_added;
    dropped = stats.Chain.dropped;
    num_mailboxes;
    mailbox_bytes = Mailbox.size_bytes mailboxes;
    events;
  }

(* ---- dialing round (§5) ---- *)

type dial_stats = {
  dial_round : int;
  tokens_in : int;
  dial_noise_added : int;
  dial_dropped : int;
  dial_num_mailboxes : int;
  filter_bytes : int array;
  calls : (string * Client.dial_event) list;
}

let num_dial_mailboxes t ~participants =
  let expected_real =
    int_of_float (Float.round (float_of_int participants *. t.config.Config.active_fraction))
  in
  Mailbox.num_mailboxes_for ~expected_real ~noise_mu:t.config.Config.dialing_noise_mu
    ~chain_length:t.config.Config.chain_length

let run_dialing_round t ?tracer ?participants () =
  Tel.Span.with_ Tel.default "round.dialing" @@ fun () ->
  let clients = match participants with Some l -> l | None -> t.clients in
  t.dial_round <- t.dial_round + 1;
  let round = t.dial_round in
  Events.log Events.default
    ~labels:[ ("phase", "dialing") ]
    ~detail:(Printf.sprintf "round %d, %d clients" round (List.length clients))
    "round.start";
  let num_mailboxes = num_dial_mailboxes t ~participants:(List.length clients) in
  List.iter (fun c -> Client.advance_dialing c ~round) clients;
  let server_pks = Chain.begin_round t.dial_chain in
  let batch =
    Tel.Span.with_ Tel.default "client.submit" @@ fun () ->
    List.map (fun c -> Client.dialing_submission_traced c ?tracer ~num_mailboxes ~server_pks ())
      clients
    |> Array.of_list
  in
  let mailboxes, stats, published =
    Chain.run_round_traced t.dial_chain ~mode:`Dialing ~noise_mu:t.config.Config.dialing_noise_mu
      ~laplace_b:t.config.Config.laplace_b ~num_mailboxes
      ~noise_body:(fun ~mailbox:_ -> Drbg.bytes t.rng Wire.dial_token_size)
      ?tracer batch
  in
  let filters = Mailbox.filters_exn mailboxes in
  (* archive this round's filters; erase rounds past the retention window *)
  Hashtbl.replace t.dial_archive round (filters, num_mailboxes);
  Hashtbl.remove t.dial_archive (round - t.config.Config.dial_archive_rounds);
  let calls =
    Tel.Span.with_ Tel.default "client.scan" @@ fun () ->
    List.concat_map
      (fun c ->
        let mb = Mailbox.mailbox_of_identity (Client.email c) ~num_mailboxes in
        let t0 = Tel.now Tel.default in
        let evs = Client.scan_dialing_mailbox c filters.(mb) in
        (match tracer with
        | Some tr ->
          List.iter
            (fun (pmb, pctx) ->
              if pmb = mb then
                Trace.emit tr (Trace.child tr pctx)
                  ~labels:[ ("client", Client.email c) ]
                  ~name:"client.scan" ~ts:t0 ~dur:(Tel.now Tel.default -. t0) ())
            published
        | None -> ());
        List.map (fun ev -> (Client.email c, ev)) evs)
      clients
  in
  advance_clock t ~seconds:t.config.Config.dialing_round_seconds;
  Events.log Events.default
    ~labels:[ ("phase", "dialing") ]
    ~detail:
      (Printf.sprintf "round %d: %d in, %d noise, %d dropped" round stats.Chain.real_in
         stats.Chain.noise_added stats.Chain.dropped)
    "round.close";
  {
    dial_round = round;
    tokens_in = stats.Chain.real_in;
    dial_noise_added = stats.Chain.noise_added;
    dial_dropped = stats.Chain.dropped;
    dial_num_mailboxes = num_mailboxes;
    filter_bytes = Mailbox.size_bytes mailboxes;
    calls;
  }

let archived_filter (t : t) ~round ~email =
  match Hashtbl.find_opt t.dial_archive round with
  | None -> None
  | Some (filters, k) -> Some filters.(Mailbox.mailbox_of_identity email ~num_mailboxes:k)

let catch_up_client (t : t) client =
  let first = Client.dialing_round client + 1 in
  let through =
    List.init
      (Stdlib.max 0 (t.dial_round - first + 1))
      (fun i ->
        let round = first + i in
        (round, archived_filter t ~round ~email:(Client.email client)))
  in
  Client.catch_up_dialing client ~through
