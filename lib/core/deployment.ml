module Drbg = Alpenhorn_crypto.Drbg
module Params = Alpenhorn_pairing.Params
module Ibe = Alpenhorn_ibe.Ibe
module Bls = Alpenhorn_bls.Bls
module Pkg = Alpenhorn_pkg.Pkg
module Chain = Alpenhorn_mixnet.Chain
module Mailbox = Alpenhorn_mixnet.Mailbox
module Shard = Alpenhorn_mixnet.Shard
module Bloom = Alpenhorn_bloom.Bloom
module Tel = Alpenhorn_telemetry.Telemetry
module Trace = Alpenhorn_telemetry.Trace
module Events = Alpenhorn_telemetry.Events
module Runtime_stats = Alpenhorn_telemetry.Runtime_stats
module Timeseries = Alpenhorn_telemetry.Timeseries

(* What the recovery loop needs to know about a fault schedule, as plain
   closures: lib/core cannot depend on lib/sim, so Alpenhorn_sim.Faults
   converts its schedule into this view (Faults.deployment_view). *)
type fault_view = {
  fv_seed : string;
  fv_crash_attempts : round:int -> server:int -> int;
  fv_stall_seconds : round:int -> server:int -> float;
  fv_client_offline : round:int -> client:int -> bool;
}

exception Round_failed of { phase : string; round : int; attempts : int }

(* One archived dialing round (§5.1): either per-mailbox filters (legacy)
   or per-shard filters (Config.dial_shards > 0). Either way a client's
   download for that round is a single Bloom filter, found by its email. *)
type archived =
  | Per_mailbox of Bloom.t array * int (* filters, K *)
  | Per_shard of Bloom.t array * Shard.t

let archived_lookup entry ~email =
  match entry with
  | Per_mailbox (filters, k) -> filters.(Mailbox.mailbox_of_identity email ~num_mailboxes:k)
  | Per_shard (filters, shard) -> filters.(Shard.of_identity shard email)

type t = {
  config : Config.t;
  params : Params.t;
  rng : Drbg.t;
  pkgs : Pkg.t array;
  af_chain : Chain.t;
  dial_chain : Chain.t;
  inboxes : (string, (int * string) list ref) Hashtbl.t; (* simulated email provider *)
  dial_archive : (int, archived) Hashtbl.t; (* round -> that round's filters (§5.1) *)
  mutable clients : Client.t list; (* registered clients *)
  mutable af_round : int;
  mutable dial_round : int;
  mutable clock : int;
  mutable faults : fault_view option;
  mutable policy : Client.retry_policy;
  mutable abort_streak : int; (* consecutive aborted attempts; 0 after a good round *)
  mutable worst_streak : int;
}

let create ~config ~seed =
  (match Config.validate config with Ok () -> () | Error m -> invalid_arg ("Deployment.create: " ^ m));
  let params = Config.params config in
  let rng = Drbg.create ~seed:("deployment" ^ seed) in
  let inboxes = Hashtbl.create 256 in
  let deliver pkg_index ~to_ ~token =
    let box =
      match Hashtbl.find_opt inboxes to_ with
      | Some b -> b
      | None ->
        let b = ref [] in
        Hashtbl.replace inboxes to_ b;
        b
    in
    box := (pkg_index, token) :: !box
  in
  let pkgs =
    Array.init config.Config.n_pkgs (fun i ->
        Pkg.create params
          ~rng:(Drbg.derive rng (Printf.sprintf "pkg-%d" i))
          ~send_email:(deliver i) ())
  in
  {
    config;
    params;
    rng;
    pkgs;
    af_chain = Chain.create params ~rng:(Drbg.derive rng "af-chain") ~chain_length:config.Config.chain_length;
    dial_chain =
      Chain.create params ~rng:(Drbg.derive rng "dial-chain") ~chain_length:config.Config.chain_length;
    inboxes;
    dial_archive = Hashtbl.create 64;
    clients = [];
    af_round = 0;
    dial_round = 0;
    clock = 0;
    faults = None;
    policy = Client.default_retry_policy;
    abort_streak = 0;
    worst_streak = 0;
  }

let config t = t.config
let params t = t.params
let pkgs t = t.pkgs
let pkg_public_keys t = Array.to_list (Array.map Pkg.long_term_public t.pkgs)
let now t = t.clock
let advance_clock t ~seconds = t.clock <- t.clock + seconds
let addfriend_round_number t = t.af_round
let dialing_round_number t = t.dial_round

let new_client t ~email ~callbacks =
  Client.create ~config:t.config
    ~rng:(Drbg.derive t.rng ("client-" ^ email))
    ~email ~pkg_public_keys:(pkg_public_keys t) ~callbacks

let inbox t ~email = match Hashtbl.find_opt t.inboxes email with Some b -> !b | None -> []

let register t client =
  let email = Client.email client in
  let pk = Client.signing_public client in
  let rec per_pkg i =
    if i = Array.length t.pkgs then Ok ()
    else begin
      match Pkg.register t.pkgs.(i) ~now:t.clock ~email ~pk with
      | Error e -> Error e
      | Ok () ->
        (* the user reads the confirmation email and echoes the token *)
        let token =
          match List.assoc_opt i (inbox t ~email) with
          | Some tok -> tok
          | None -> "" (* no email delivered: confirmation will fail below *)
        in
        (match Pkg.confirm t.pkgs.(i) ~now:t.clock ~email ~token with
         | Error e -> Error e
         | Ok () -> per_pkg (i + 1))
    end
  in
  match per_pkg 0 with
  | Error e -> Error e
  | Ok () ->
    if not (List.memq client t.clients) then t.clients <- t.clients @ [ client ];
    Ok ()

(* ---- fault injection and recovery (DESIGN.md §10) ---- *)

let set_faults t fv = t.faults <- fv
let set_retry_policy t p = t.policy <- p
let retry_policy t = t.policy

let c_aborts = Tel.Counter.v Tel.default "faults.rounds_aborted"
let c_retries = Tel.Counter.v Tel.default "faults.retries"
let g_consec = Tel.Gauge.v Tel.default "faults.consecutive_aborts"
let h_recovery = Tel.Histogram.v Tel.default "faults.recovery_seconds"
let c_injected kind = Tel.Counter.v Tel.default ~labels:[ ("kind", kind) ] "faults.injected"

(* A stall longer than the policy's round timeout: the round is abandoned
   exactly like a crash-abort, just with a different event. *)
exception Stall_timeout

let record_abort t =
  t.abort_streak <- t.abort_streak + 1;
  if t.abort_streak > t.worst_streak then t.worst_streak <- t.abort_streak;
  (* high-water mark, so the SLO check sees mid-run streaks even when the
     final round succeeded *)
  Tel.Gauge.set g_consec (float_of_int t.worst_streak);
  Tel.Counter.inc c_aborts

(* Apply this attempt's scheduled faults. Called right after the chain's
   [begin_round] — a crash injected here models a server dying after it
   announced its round key, the case the anytrust abort path exists for. *)
let inject_faults t chain ~phase ~round ~attempt =
  match t.faults with
  | None -> ()
  | Some fv ->
    for s = 0 to Chain.chain_length chain - 1 do
      if fv.fv_crash_attempts ~round ~server:s >= attempt then begin
        Chain.crash_server chain ~server:s;
        Tel.Counter.inc (c_injected "crash")
      end
    done;
    if attempt = 1 then begin
      let stall = ref 0.0 in
      for s = 0 to Chain.chain_length chain - 1 do
        stall := !stall +. fv.fv_stall_seconds ~round ~server:s
      done;
      if !stall > 0.0 then begin
        Tel.Counter.inc (c_injected "stall");
        let timeout = t.policy.Client.round_timeout in
        if !stall > timeout then begin
          advance_clock t ~seconds:(int_of_float (Float.ceil timeout));
          Events.log Events.default ~severity:Warn
            ~labels:[ ("phase", phase); ("round", string_of_int round) ]
            ~detail:
              (Printf.sprintf "stall of %.0f s exceeds the %.0f s round timeout; aborting" !stall
                 timeout)
            "round.timeout";
          raise Stall_timeout
        end
        else begin
          advance_clock t ~seconds:(int_of_float (Float.ceil !stall));
          Events.log Events.default ~severity:Warn
            ~labels:[ ("phase", phase); ("round", string_of_int round) ]
            ~detail:
              (Printf.sprintf "server stalled %.0f s; round delayed but under the %.0f s timeout"
                 !stall timeout)
            "round.stall"
        end
      end
    end

(* The recovery loop around one round: checkpoint every participating
   client, run the round body, and on a clean abort (any server down, or a
   stall past the timeout) roll everything per-round back — chain keys,
   crashed servers restarted, client queues and DH state, [cleanup] for
   phase-specific state (PKG round secrets) — then re-run after
   deterministic backoff, up to the policy's attempt budget. *)
let with_recovery t ~phase ~round ~chain ~clients ~cleanup body =
  let policy = t.policy in
  let seed = match t.faults with Some fv -> fv.fv_seed | None -> "faults" in
  let checkpoints = List.map (fun c -> (c, Client.checkpoint c)) clients in
  let first_abort_clock = ref None in
  let rec attempt n =
    match body ~after_begin:(fun () -> inject_faults t chain ~phase ~round ~attempt:n) with
    | result ->
      t.abort_streak <- 0;
      (match !first_abort_clock with
       | None -> ()
       | Some t0 ->
         let recovery = float_of_int (t.clock - t0) in
         Tel.Histogram.observe h_recovery recovery;
         Events.log Events.default
           ~labels:[ ("phase", phase); ("round", string_of_int round) ]
           ~detail:(Printf.sprintf "recovered on attempt %d after %.0f s" n recovery)
           "round.recovered");
      (result, n)
    | exception (Chain.Aborted _ | Stall_timeout) ->
      if !first_abort_clock = None then first_abort_clock := Some t.clock;
      record_abort t;
      Chain.abort_round chain;
      for s = 0 to Chain.chain_length chain - 1 do
        if Chain.server_down chain ~server:s then Chain.restart_server chain ~server:s
      done;
      List.iter (fun (c, cp) -> Client.rollback c cp) checkpoints;
      cleanup ();
      if n >= policy.Client.max_attempts then begin
        Events.log Events.default ~severity:Error
          ~labels:[ ("phase", phase); ("round", string_of_int round) ]
          ~detail:(Printf.sprintf "gave up after %d attempts" n)
          "round.failed";
        raise (Round_failed { phase; round; attempts = n })
      end
      else begin
        let delay =
          Client.backoff_delay policy
            ~seed:(Printf.sprintf "%s:%s:%d" seed phase round)
            ~attempt:n
        in
        advance_clock t ~seconds:(int_of_float (Float.ceil delay));
        Tel.Counter.inc c_retries;
        Events.log Events.default ~severity:Warn
          ~labels:[ ("phase", phase); ("round", string_of_int round) ]
          ~detail:(Printf.sprintf "attempt %d aborted; retrying after %.1f s backoff" n delay)
          "round.retry";
        attempt (n + 1)
      end
  in
  attempt 1

(* Split out the clients the schedule holds offline this round, identified
   by registration index (stable across the whole run). *)
let online_clients t ~round clients =
  match t.faults with
  | None -> (clients, [])
  | Some fv ->
    let index c =
      let rec go i = function [] -> -1 | x :: rest -> if x == c then i else go (i + 1) rest in
      go 0 t.clients
    in
    List.partition
      (fun c ->
        let i = index c in
        i < 0 || not (fv.fv_client_offline ~round ~client:i))
      clients

let log_offline ~phase ~round offline =
  if offline <> [] then begin
    Tel.Counter.add (c_injected "offline") (List.length offline);
    Events.log Events.default
      ~labels:[ ("phase", phase) ]
      ~detail:(Printf.sprintf "round %d: %d clients offline" round (List.length offline))
      "client.offline"
  end

(* ---- add-friend round (Algorithm 1, orchestrated) ---- *)

type af_stats = {
  af_round : int;
  af_attempts : int;
  requests_in : int;
  noise_added : int;
  dropped : int;
  num_mailboxes : int;
  mailbox_bytes : int array;
  events : (string * Client.af_event) list;
}

let aggregate_mpk t ~round =
  let mpks =
    Array.to_list t.pkgs
    |> List.map (fun pkg ->
           match Pkg.master_public pkg ~round with
           | Some mpk -> mpk
           | None -> failwith "Deployment: PKG did not reveal round key")
  in
  Ibe.aggregate_public t.params mpks

let num_af_mailboxes t ~participants =
  let expected_real =
    int_of_float (Float.round (float_of_int participants *. t.config.Config.active_fraction))
  in
  Mailbox.num_mailboxes_for ~expected_real ~noise_mu:t.config.Config.addfriend_noise_mu
    ~chain_length:t.config.Config.chain_length

let af_noise_body t ~mpk_agg ~mailbox:_ =
  if t.config.Config.faithful_noise then begin
    (* genuine IBE encryption of random bytes to a random identity: relies
       on ciphertext anonymity (§4.3) *)
    let id = "noise-" ^ Alpenhorn_crypto.Util.to_hex (Drbg.bytes t.rng 8) in
    let body = Drbg.bytes t.rng (Wire.request_plaintext_size t.params) in
    Ibe.encrypt t.params t.rng mpk_agg ~id body
  end
  else Drbg.bytes t.rng (Wire.request_ciphertext_size t.params)

let g_mailbox_load = Tel.Gauge.v Tel.default "mailbox.max_load"

(* Live-telemetry round boundary: count the completed round, refresh the
   runtime/GC readings, and append one sample to the process-wide
   time-series ring so a live scrape (or [top]) sees history filling
   while rounds run. *)
let observe_round_close ~phase =
  Tel.Counter.inc (Tel.Counter.v Tel.default ~labels:[ ("phase", phase) ] "round.completed");
  Runtime_stats.sample (Runtime_stats.get_default ());
  Timeseries.record Timeseries.default

(* Record the modeled §6 mailbox-load ceiling input: the fullest mailbox of
   this round, in entries. *)
let set_mailbox_load counts =
  Tel.Gauge.set g_mailbox_load (float_of_int (Array.fold_left Stdlib.max 0 counts))

let run_addfriend_round t ?tracer ?participants () =
  let clients = match participants with Some l -> l | None -> t.clients in
  t.af_round <- t.af_round + 1;
  let round = t.af_round in
  let clients, offline = online_clients t ~round clients in
  log_offline ~phase:"addfriend" ~round offline;
  Events.log Events.default
    ~labels:[ ("phase", "addfriend") ]
    ~detail:(Printf.sprintf "round %d, %d clients" round (List.length clients))
    "round.start";
  let body ~after_begin =
    Tel.Span.with_ Tel.default "round.addfriend" @@ fun () ->
    (* 1. PKGs rotate master keys: commit, then reveal; verify the openings *)
    let mpk_agg =
      Tel.Span.with_ Tel.default "pkg.rotate" @@ fun () ->
      let commitments = Array.map (fun pkg -> Pkg.begin_round pkg ~round) t.pkgs in
      Array.iteri
        (fun i pkg ->
          match Pkg.reveal_round pkg ~round with
          | Error e -> failwith ("Deployment: reveal failed: " ^ Pkg.error_to_string e)
          | Ok (mpk, opening) ->
            if not (Pkg.verify_commitment t.params ~commitment:commitments.(i) ~mpk ~opening) then
              failwith "Deployment: PKG commitment mismatch")
        t.pkgs;
      aggregate_mpk t ~round
    in
    let num_mailboxes = num_af_mailboxes t ~participants:(List.length clients) in
    (* 2. every client extracts identity keys and submits one onion *)
    let server_pks = Chain.begin_round t.af_chain in
    after_begin ();
    let contexts, batch =
      Tel.Span.with_ Tel.default "client.submit" @@ fun () ->
      let contexts =
        Client.begin_addfriend_round_batch clients ~round ~now:t.clock ~pkgs:t.pkgs
        |> List.map (fun (c, result) ->
               match result with
               | Error e -> failwith ("Deployment: extraction failed: " ^ Pkg.error_to_string e)
               | Ok ctx -> (c, ctx))
      in
      let batch =
        List.map
          (fun (c, ctx) ->
            Client.addfriend_submission_traced c ctx ?tracer ~mpk_agg ~num_mailboxes ~server_pks ())
          contexts
        |> Array.of_list
      in
      (contexts, batch)
    in
    (* 3. the mixnet chain runs the round *)
    let mailboxes, stats, published =
      Chain.run_round_traced t.af_chain ~mode:`AddFriend
        ~noise_mu:t.config.Config.addfriend_noise_mu ~laplace_b:t.config.Config.laplace_b
        ~num_mailboxes
        ~noise_body:(fun ~mailbox -> af_noise_body t ~mpk_agg ~mailbox)
        ?tracer batch
    in
    let buckets = Mailbox.plain_exn mailboxes in
    set_mailbox_load (Array.map List.length buckets);
    (* 4-6. every client downloads its mailbox and scans *)
    let events =
      Tel.Span.with_ Tel.default "client.scan" @@ fun () ->
      List.concat_map
        (fun (c, ctx) ->
          let mb = Mailbox.mailbox_of_identity (Client.email c) ~num_mailboxes in
          let t0 = Tel.now Tel.default in
          let evs = Client.scan_addfriend_mailbox c ctx buckets.(mb) in
          (match tracer with
          | Some tr ->
            (* stitch the recipient-side scan onto each traced message that
               landed in this client's mailbox *)
            List.iter
              (fun (pmb, pctx) ->
                if pmb = mb then
                  Trace.emit tr (Trace.child tr pctx)
                    ~labels:[ ("client", Client.email c) ]
                    ~name:"client.scan" ~ts:t0 ~dur:(Tel.now Tel.default -. t0) ())
              published
          | None -> ());
          List.map (fun ev -> (Client.email c, ev)) evs)
        contexts
    in
    (* PKGs erase master secrets *)
    Array.iter (fun pkg -> Pkg.end_round pkg ~round) t.pkgs;
    advance_clock t ~seconds:t.config.Config.addfriend_round_seconds;
    Events.log Events.default
      ~labels:[ ("phase", "addfriend") ]
      ~detail:
        (Printf.sprintf "round %d: %d in, %d noise, %d dropped" round stats.Chain.real_in
           stats.Chain.noise_added stats.Chain.dropped)
      "round.close";
    {
      af_round = round;
      af_attempts = 1;
      requests_in = stats.Chain.real_in;
      noise_added = stats.Chain.noise_added;
      dropped = stats.Chain.dropped;
      num_mailboxes;
      mailbox_bytes = Mailbox.size_bytes mailboxes;
      events;
    }
  in
  let stats, attempts =
    with_recovery t ~phase:"addfriend" ~round ~chain:t.af_chain ~clients
      ~cleanup:(fun () -> Array.iter (fun pkg -> Pkg.end_round pkg ~round) t.pkgs)
      body
  in
  observe_round_close ~phase:"addfriend";
  { stats with af_attempts = attempts }

(* ---- dialing round (§5) ---- *)

type dial_stats = {
  dial_round : int;
  dial_attempts : int;
  tokens_in : int;
  dial_noise_added : int;
  dial_dropped : int;
  dial_num_mailboxes : int;
  filter_bytes : int array;
  calls : (string * Client.dial_event) list;
}

let num_dial_mailboxes t ~participants =
  let expected_real =
    int_of_float (Float.round (float_of_int participants *. t.config.Config.active_fraction))
  in
  Mailbox.num_mailboxes_for ~expected_real ~noise_mu:t.config.Config.dialing_noise_mu
    ~chain_length:t.config.Config.chain_length

let run_dialing_round t ?tracer ?participants () =
  let clients = match participants with Some l -> l | None -> t.clients in
  let round = t.dial_round + 1 in
  let clients, offline = online_clients t ~round clients in
  log_offline ~phase:"dialing" ~round offline;
  (* A faulted client coming back online first replays the archived filters
     of the rounds it slept through (§5.1/§5.3) — before this round runs,
     so its keywheel is caught up and this round's tokens still reach it.
     Only under a fault schedule: plain [?participants] churn keeps the
     explicit [catch_up_client] contract. *)
  let recovered =
    if t.faults = None then []
    else
      List.concat_map
        (fun c ->
          let first = Client.dialing_round c + 1 in
          if first > t.dial_round then []
          else begin
            let through =
              List.init
                (t.dial_round - first + 1)
                (fun i ->
                  let r = first + i in
                  match Hashtbl.find_opt t.dial_archive r with
                  | None -> (r, None)
                  | Some entry -> (r, Some (archived_lookup entry ~email:(Client.email c))))
            in
            List.map (fun ev -> (Client.email c, ev)) (Client.catch_up_dialing c ~through)
          end)
        clients
  in
  t.dial_round <- round;
  Events.log Events.default
    ~labels:[ ("phase", "dialing") ]
    ~detail:(Printf.sprintf "round %d, %d clients" round (List.length clients))
    "round.start";
  let body ~after_begin =
    Tel.Span.with_ Tel.default "round.dialing" @@ fun () ->
    let num_shards = t.config.Config.dial_shards in
    (* Sharded mode (§5.1): the mailbox count must be at least the shard
       count so every shard covers a non-empty mailbox range. *)
    let num_mailboxes =
      Stdlib.max (num_dial_mailboxes t ~participants:(List.length clients)) num_shards
    in
    List.iter (fun c -> Client.advance_dialing c ~round) clients;
    let server_pks = Chain.begin_round t.dial_chain in
    after_begin ();
    let batch =
      Tel.Span.with_ Tel.default "client.submit" @@ fun () ->
      List.map (fun c -> Client.dialing_submission_traced c ?tracer ~num_mailboxes ~server_pks ())
        clients
      |> Array.of_list
    in
    let noise_body ~mailbox:_ = Drbg.bytes t.rng Wire.dial_token_size in
    (* Run the chain, then express the result uniformly: the filter a given
       client downloads, the per-download sizes, and the archive entry.
       Both paths share the whole mix pipeline (Chain.run_pipeline), so the
       dial tokens are byte-identical; only the last-hop grouping differs.
       Trace stitching stays a per-mailbox concern ([published] is empty in
       sharded mode). *)
    let filter_for, sizes, stats, published, archive_entry =
      if num_shards = 0 then begin
        let mailboxes, stats, published =
          Chain.run_round_traced t.dial_chain ~mode:`Dialing
            ~noise_mu:t.config.Config.dialing_noise_mu ~laplace_b:t.config.Config.laplace_b
            ~num_mailboxes ~noise_body ?tracer batch
        in
        let filters = Mailbox.filters_exn mailboxes in
        ( (fun email -> filters.(Mailbox.mailbox_of_identity email ~num_mailboxes)),
          Mailbox.size_bytes mailboxes,
          stats,
          published,
          Per_mailbox (filters, num_mailboxes) )
      end
      else begin
        let shard = Shard.create ~num_shards ~num_mailboxes in
        let shards, stats =
          Chain.run_round_sharded t.dial_chain ~mode:`Dialing
            ~noise_mu:t.config.Config.dialing_noise_mu ~laplace_b:t.config.Config.laplace_b ~shard
            ~noise_body (Array.map fst batch)
        in
        let filters = Mailbox.filter_shards_exn shards in
        ( (fun email -> filters.(Shard.of_identity shard email)),
          Mailbox.sharded_size_bytes shards,
          stats,
          [],
          Per_shard (filters, shard) )
      end
    in
    (* archive this round's filters; erase rounds past the retention window.
       Only a completed round is archived — an aborted attempt never
       publishes, not even partially. *)
    Hashtbl.replace t.dial_archive round archive_entry;
    Hashtbl.remove t.dial_archive (round - t.config.Config.dial_archive_rounds);
    let calls =
      Tel.Span.with_ Tel.default "client.scan" @@ fun () ->
      List.concat_map
        (fun c ->
          let mb = Mailbox.mailbox_of_identity (Client.email c) ~num_mailboxes in
          let t0 = Tel.now Tel.default in
          let evs = Client.scan_dialing_mailbox c (filter_for (Client.email c)) in
          (match tracer with
          | Some tr ->
            List.iter
              (fun (pmb, pctx) ->
                if pmb = mb then
                  Trace.emit tr (Trace.child tr pctx)
                    ~labels:[ ("client", Client.email c) ]
                    ~name:"client.scan" ~ts:t0 ~dur:(Tel.now Tel.default -. t0) ())
              published
          | None -> ());
          List.map (fun ev -> (Client.email c, ev)) evs)
        clients
    in
    advance_clock t ~seconds:t.config.Config.dialing_round_seconds;
    Events.log Events.default
      ~labels:[ ("phase", "dialing") ]
      ~detail:
        (Printf.sprintf "round %d: %d in, %d noise, %d dropped" round stats.Chain.real_in
           stats.Chain.noise_added stats.Chain.dropped)
      "round.close";
    {
      dial_round = round;
      dial_attempts = 1;
      tokens_in = stats.Chain.real_in;
      dial_noise_added = stats.Chain.noise_added;
      dial_dropped = stats.Chain.dropped;
      dial_num_mailboxes = num_mailboxes;
      filter_bytes = sizes;
      calls;
    }
  in
  let stats, attempts =
    with_recovery t ~phase:"dialing" ~round ~chain:t.dial_chain ~clients ~cleanup:(fun () -> ())
      body
  in
  observe_round_close ~phase:"dialing";
  { stats with dial_attempts = attempts; calls = recovered @ stats.calls }

let archived_filter (t : t) ~round ~email =
  match Hashtbl.find_opt t.dial_archive round with
  | None -> None
  | Some entry -> Some (archived_lookup entry ~email)

let catch_up_client (t : t) client =
  let first = Client.dialing_round client + 1 in
  let through =
    List.init
      (Stdlib.max 0 (t.dial_round - first + 1))
      (fun i ->
        let round = first + i in
        (round, archived_filter t ~round ~email:(Client.email client)))
  in
  Client.catch_up_dialing client ~through
