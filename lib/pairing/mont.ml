(* Fixed-width Montgomery arithmetic kernel.

   Elements are flat little-endian arrays of exactly [ctx.n] limbs of 31
   bits, held in Montgomery form (a·R mod p with R = 2^(31n)). 31-bit
   limbs make every partial product fit a native 63-bit OCaml int:
   (2^31−1)² + 2·(2^31−1) = 2^62 − 1, so the CIOS inner loops need no
   overflow handling and no boxing. This is the multiplication that every
   pairing, IBE and BLS operation in the system bottoms out in; the
   generic Bigint + Barrett path in [Field] stays as the reference
   implementation the property tests compare against. *)

module Bigint = Alpenhorn_bigint.Bigint
module Tel = Alpenhorn_telemetry.Telemetry

let limb_bits = 31
let base = 1 lsl limb_bits
let mask = base - 1

type el = int array

type ctx = {
  n : int; (* limb count: ceil(numbits p / 31) *)
  p : int array; (* modulus, n limbs *)
  p0inv : int; (* -p⁻¹ mod 2^31 *)
  r2 : el; (* R² mod p: of_bigint multiplies by this *)
  one_m : el; (* R mod p = Montgomery form of 1 *)
  one_raw : el; (* plain 1; mont-mul by it converts out of Montgomery form *)
  pm2 : Bigint.t; (* p − 2, the Fermat inversion exponent *)
  p_big : Bigint.t;
  scratch : int array Domain.DLS.key; (* n+2 limbs reused by [mul], one per domain *)
  c_mul : Tel.Counter.t; (* kernel invocations ("pairing.mont_mul") *)
}

(* -p⁻¹ mod 2^31 by Newton's iteration: x ← x(2 − p₀x) doubles the number
   of correct low bits each step; x₀ = p₀ is correct mod 8 for odd p₀. *)
let neg_inv_limb p0 =
  let x = ref p0 in
  for _ = 1 to 5 do
    let t = (2 - (p0 * !x)) land mask in
    x := !x * t land mask
  done;
  (base - !x) land mask

let limbs_of_bigint n x =
  let l = Bigint.to_limbs x in
  if Array.length l > n then invalid_arg "Mont: value wider than modulus";
  let a = Array.make n 0 in
  Array.blit l 0 a 0 (Array.length l);
  a

let create p_big =
  if Bigint.is_even p_big || Bigint.sign p_big <= 0 then
    invalid_arg "Mont.create: modulus must be odd and positive";
  let n = (Bigint.numbits p_big + limb_bits - 1) / limb_bits in
  let p = limbs_of_bigint n p_big in
  let r = Bigint.shift_left Bigint.one (limb_bits * n) in
  let one_raw = Array.make n 0 in
  one_raw.(0) <- 1;
  {
    n;
    p;
    p0inv = neg_inv_limb p.(0);
    r2 = limbs_of_bigint n (Bigint.rem (Bigint.mul r r) p_big);
    one_m = limbs_of_bigint n (Bigint.rem r p_big);
    one_raw;
    pm2 = Bigint.sub p_big Bigint.two;
    p_big;
    scratch = Domain.DLS.new_key (fun () -> Array.make (n + 2) 0);
    c_mul = Tel.Counter.v Tel.default "pairing.mont_mul";
  }

let zero ctx = Array.make ctx.n 0
let one ctx = Array.copy ctx.one_m

let is_zero a =
  let rec go i = i < 0 || (Array.unsafe_get a i = 0 && go (i - 1)) in
  go (Array.length a - 1)

let equal a b =
  let rec go i = i < 0 || (Array.unsafe_get a i = Array.unsafe_get b i && go (i - 1)) in
  go (Array.length a - 1)

(* magnitude compare of an n-limb buffer against p *)
let geq_p ctx (t : int array) =
  let rec go i =
    if i < 0 then true
    else begin
      let ti = Array.unsafe_get t i and pi = Array.unsafe_get ctx.p i in
      if ti <> pi then ti > pi else go (i - 1)
    end
  in
  go (ctx.n - 1)

(* subtract p in place from an n-limb buffer; returns the final borrow *)
let sub_p_inplace ctx (t : int array) =
  let borrow = ref 0 in
  for i = 0 to ctx.n - 1 do
    let s = Array.unsafe_get t i - Array.unsafe_get ctx.p i - !borrow in
    if s < 0 then begin
      Array.unsafe_set t i (s + base);
      borrow := 1
    end
    else begin
      Array.unsafe_set t i s;
      borrow := 0
    end
  done;
  !borrow

(* CIOS Montgomery multiplication: interleaves the schoolbook product with
   per-word Montgomery reduction, keeping the accumulator at n+2 limbs.
   Inputs < p, output < p (one conditional final subtraction). *)
let mul ctx a b =
  Tel.Counter.inc ctx.c_mul;
  let n = ctx.n and p = ctx.p and p0inv = ctx.p0inv and t = Domain.DLS.get ctx.scratch in
  Array.fill t 0 (n + 2) 0;
  for i = 0 to n - 1 do
    let ai = Array.unsafe_get a i in
    (* t += ai · b *)
    let c = ref 0 in
    for j = 0 to n - 1 do
      let s = Array.unsafe_get t j + (ai * Array.unsafe_get b j) + !c in
      Array.unsafe_set t j (s land mask);
      c := s lsr limb_bits
    done;
    let s = Array.unsafe_get t n + !c in
    Array.unsafe_set t n (s land mask);
    Array.unsafe_set t (n + 1) (s lsr limb_bits);
    (* t := (t + m·p) / 2^31  with m chosen so t becomes divisible *)
    let m = Array.unsafe_get t 0 * p0inv land mask in
    let c = ref ((Array.unsafe_get t 0 + (m * Array.unsafe_get p 0)) lsr limb_bits) in
    for j = 1 to n - 1 do
      let s = Array.unsafe_get t j + (m * Array.unsafe_get p j) + !c in
      Array.unsafe_set t (j - 1) (s land mask);
      c := s lsr limb_bits
    done;
    let s = Array.unsafe_get t n + !c in
    Array.unsafe_set t (n - 1) (s land mask);
    Array.unsafe_set t n (Array.unsafe_get t (n + 1) + (s lsr limb_bits));
    Array.unsafe_set t (n + 1) 0
  done;
  (* t < 2p, so at most one subtraction; a set t.(n) bit is cancelled by
     the final borrow *)
  let r = Array.make n 0 in
  if t.(n) = 1 || geq_p ctx t then ignore (sub_p_inplace ctx t);
  Array.blit t 0 r 0 n;
  r

let sqr ctx a = mul ctx a a

let add ctx a b =
  let n = ctx.n in
  let r = Array.make n 0 in
  let c = ref 0 in
  for i = 0 to n - 1 do
    let s = Array.unsafe_get a i + Array.unsafe_get b i + !c in
    Array.unsafe_set r i (s land mask);
    c := s lsr limb_bits
  done;
  if !c = 1 || geq_p ctx r then ignore (sub_p_inplace ctx r);
  r

let sub ctx a b =
  let n = ctx.n in
  let r = Array.make n 0 in
  let borrow = ref 0 in
  for i = 0 to n - 1 do
    let s = Array.unsafe_get a i - Array.unsafe_get b i - !borrow in
    if s < 0 then begin
      Array.unsafe_set r i (s + base);
      borrow := 1
    end
    else begin
      Array.unsafe_set r i s;
      borrow := 0
    end
  done;
  if !borrow = 1 then begin
    (* went negative: add p back (final carry cancels the borrow) *)
    let c = ref 0 in
    for i = 0 to n - 1 do
      let s = Array.unsafe_get r i + Array.unsafe_get ctx.p i + !c in
      Array.unsafe_set r i (s land mask);
      c := s lsr limb_bits
    done
  end;
  r

let neg ctx a = if is_zero a then Array.copy a else sub ctx (zero ctx) a

(* a·k for a small non-negative int k (curve formulas use k ≤ 12): extend
   to n+1 limbs then subtract p until in range — at most k iterations. *)
let mul_small ctx a k =
  if k < 0 || k >= base then invalid_arg "Mont.mul_small";
  if k = 0 then zero ctx
  else begin
    let n = ctx.n in
    let r = Array.make n 0 in
    let c = ref 0 in
    for i = 0 to n - 1 do
      let s = (Array.unsafe_get a i * k) + !c in
      Array.unsafe_set r i (s land mask);
      c := s lsr limb_bits
    done;
    let hi = ref !c in
    while !hi > 0 || geq_p ctx r do
      hi := !hi - sub_p_inplace ctx r
    done;
    r
  end

let of_bigint ctx x =
  let x =
    if Bigint.sign x < 0 || Bigint.compare x ctx.p_big >= 0 then Bigint.rem x ctx.p_big else x
  in
  mul ctx (limbs_of_bigint ctx.n x) ctx.r2

let to_bigint ctx a = Bigint.of_limbs (mul ctx a ctx.one_raw)

(* LSB-first square-and-multiply; exponent is a plain Bigint (not in
   Montgomery form). *)
let pow ctx a e =
  if Bigint.sign e < 0 then invalid_arg "Mont.pow: negative exponent";
  let nb = Bigint.numbits e in
  let acc = ref (one ctx) and b = ref a in
  for i = 0 to nb - 1 do
    if Bigint.testbit e i then acc := mul ctx !acc !b;
    if i < nb - 1 then b := sqr ctx !b
  done;
  !acc

let inv ctx a =
  if is_zero a then raise Division_by_zero;
  pow ctx a ctx.pm2

(* ---- F_p² = F_p[i]/(i² + 1), components in Montgomery form ----

   Mirrors [Fp2] exactly (same Karatsuba 3-mult product, same inversion by
   the norm) so the Miller loop can stay in Montgomery form end to end. *)
module F2 = struct
  (* base-field operations, aliased before the names below shadow them *)
  let el_add = add
  and el_sub = sub
  and el_mul = mul
  and el_zero = zero
  and el_one = one
  and el_neg = neg
  and el_inv = inv
  and el_is_zero = is_zero
  and el_equal = equal

  type f2 = { re : el; im : el }

  let zero ctx = { re = el_zero ctx; im = el_zero ctx }
  let one ctx = { re = el_one ctx; im = el_zero ctx }
  let of_el ctx a = { re = a; im = el_zero ctx }
  let is_zero a = el_is_zero a.re && el_is_zero a.im
  let equal a b = el_equal a.re b.re && el_equal a.im b.im

  let add ctx a b = { re = el_add ctx a.re b.re; im = el_add ctx a.im b.im }
  let sub ctx a b = { re = el_sub ctx a.re b.re; im = el_sub ctx a.im b.im }
  let neg ctx a = { re = el_neg ctx a.re; im = el_neg ctx a.im }

  (* subtract a base-field element (touches only the real component) *)
  let sub_el ctx a c = { a with re = el_sub ctx a.re c }

  let mul ctx a b =
    let t0 = el_mul ctx a.re b.re in
    let t1 = el_mul ctx a.im b.im in
    let t2 = el_mul ctx (el_add ctx a.re a.im) (el_add ctx b.re b.im) in
    { re = el_sub ctx t0 t1; im = el_sub ctx (el_sub ctx t2 t0) t1 }

  let sqr ctx a =
    let t0 = el_mul ctx (el_add ctx a.re a.im) (el_sub ctx a.re a.im) in
    let t1 = el_mul ctx a.re a.im in
    { re = t0; im = el_add ctx t1 t1 }

  let mul_el ctx a c = { re = el_mul ctx a.re c; im = el_mul ctx a.im c }

  let inv ctx a =
    let norm = el_add ctx (el_mul ctx a.re a.re) (el_mul ctx a.im a.im) in
    let ninv = el_inv ctx norm in
    { re = el_mul ctx a.re ninv; im = el_neg ctx (el_mul ctx a.im ninv) }

  let pow ctx a e =
    if Bigint.sign e < 0 then invalid_arg "Mont.F2.pow: negative exponent";
    let nb = Bigint.numbits e in
    let acc = ref (one ctx) and b = ref a in
    for i = 0 to nb - 1 do
      if Bigint.testbit e i then acc := mul ctx !acc !b;
      if i < nb - 1 then b := sqr ctx !b
    done;
    !acc
end
