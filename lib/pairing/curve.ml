module Bigint = Alpenhorn_bigint.Bigint

type point = Inf | Affine of { x : Bigint.t; y : Bigint.t }

let infinity = Inf

let is_on_curve f p =
  match p with
  | Inf -> true
  | Affine { x; y } ->
    Field.equal (Field.sqr f y) (Field.add f (Field.mul f (Field.sqr f x) x) Bigint.one)

let make f ~x ~y =
  let p = Affine { x; y } in
  if is_on_curve f p then p else invalid_arg "Curve.make: not on curve"

let equal a b =
  match (a, b) with
  | Inf, Inf -> true
  | Affine a, Affine b -> Bigint.equal a.x b.x && Bigint.equal a.y b.y
  | Inf, Affine _ | Affine _, Inf -> false

let neg f p =
  match p with Inf -> Inf | Affine { x; y } -> Affine { x; y = Field.neg f y }

let double f p =
  match p with
  | Inf -> Inf
  | Affine { x; y } ->
    if Field.is_zero y then Inf
    else begin
      let lambda = Field.mul f (Field.mul_int f (Field.sqr f x) 3) (Field.inv f (Field.mul_int f y 2)) in
      let x3 = Field.sub f (Field.sqr f lambda) (Field.mul_int f x 2) in
      let y3 = Field.sub f (Field.mul f lambda (Field.sub f x x3)) y in
      Affine { x = x3; y = y3 }
    end

let add f p q =
  match (p, q) with
  | Inf, r | r, Inf -> r
  | Affine a, Affine b ->
    if Bigint.equal a.x b.x then begin
      if Bigint.equal a.y b.y then double f p else Inf
    end
    else begin
      let lambda = Field.mul f (Field.sub f b.y a.y) (Field.inv f (Field.sub f b.x a.x)) in
      let x3 = Field.sub f (Field.sub f (Field.sqr f lambda) a.x) b.x in
      let y3 = Field.sub f (Field.mul f lambda (Field.sub f a.x x3)) a.y in
      Affine { x = x3; y = y3 }
    end

let mul_affine f k p =
  if Bigint.sign k < 0 then invalid_arg "Curve.mul: negative scalar";
  let nb = Bigint.numbits k in
  let acc = ref Inf and b = ref p in
  for i = 0 to nb - 1 do
    if Bigint.testbit k i then acc := add f !acc !b;
    b := double f !b
  done;
  !acc

(* Jacobian coordinates (X : Y : Z) ≡ (X/Z², Y/Z³), Z = 0 for infinity:
   scalar multiplication with a single inversion at the end instead of one
   per point operation. This is the hot path under IBE encryption, BLS
   signing and DH keygen; the affine ladder above is kept as the reference
   the property tests compare against. *)
module Jac = struct
  type jpoint = { jx : Bigint.t; jy : Bigint.t; jz : Bigint.t }

  let infinity = { jx = Bigint.one; jy = Bigint.one; jz = Bigint.zero }
  let is_infinity p = Bigint.is_zero p.jz

  let of_affine = function
    | Inf -> infinity
    | Affine { x; y } -> { jx = x; jy = y; jz = Bigint.one }

  let to_affine f p =
    if is_infinity p then Inf
    else begin
      let zinv = Field.inv f p.jz in
      let zinv2 = Field.sqr f zinv in
      Affine { x = Field.mul f p.jx zinv2; y = Field.mul f p.jy (Field.mul f zinv2 zinv) }
    end

  (* dbl-2009-l (curve coefficient a = 0): 2M + 5S *)
  let double f p =
    if is_infinity p || Bigint.is_zero p.jy then infinity
    else begin
      let a = Field.sqr f p.jx in
      let b = Field.sqr f p.jy in
      let c = Field.sqr f b in
      let t = Field.sqr f (Field.add f p.jx b) in
      let d = Field.mul_int f (Field.sub f (Field.sub f t a) c) 2 in
      let e = Field.mul_int f a 3 in
      let ff = Field.sqr f e in
      let x3 = Field.sub f ff (Field.mul_int f d 2) in
      let y3 = Field.sub f (Field.mul f e (Field.sub f d x3)) (Field.mul_int f c 8) in
      let z3 = Field.mul_int f (Field.mul f p.jy p.jz) 2 in
      { jx = x3; jy = y3; jz = z3 }
    end

  (* add-2007-bl: general Jacobian addition, 11M + 5S *)
  let add f p q =
    if is_infinity p then q
    else if is_infinity q then p
    else begin
      let z1z1 = Field.sqr f p.jz in
      let z2z2 = Field.sqr f q.jz in
      let u1 = Field.mul f p.jx z2z2 in
      let u2 = Field.mul f q.jx z1z1 in
      let s1 = Field.mul f p.jy (Field.mul f q.jz z2z2) in
      let s2 = Field.mul f q.jy (Field.mul f p.jz z1z1) in
      if Field.equal u1 u2 then begin
        if Field.equal s1 s2 then double f p else infinity
      end
      else begin
        let h = Field.sub f u2 u1 in
        let i = Field.sqr f (Field.mul_int f h 2) in
        let j = Field.mul f h i in
        let r = Field.mul_int f (Field.sub f s2 s1) 2 in
        let v = Field.mul f u1 i in
        let x3 = Field.sub f (Field.sub f (Field.sqr f r) j) (Field.mul_int f v 2) in
        let y3 =
          Field.sub f (Field.mul f r (Field.sub f v x3)) (Field.mul_int f (Field.mul f s1 j) 2)
        in
        let z3 =
          Field.mul f
            (Field.sub f (Field.sqr f (Field.add f p.jz q.jz)) (Field.add f z1z1 z2z2))
            h
        in
        { jx = x3; jy = y3; jz = z3 }
      end
    end
end

let mul_jacobian f k p =
  if Bigint.sign k < 0 then invalid_arg "Curve.mul: negative scalar";
  let nb = Bigint.numbits k in
  let acc = ref Jac.infinity and b = ref (Jac.of_affine p) in
  for i = 0 to nb - 1 do
    if Bigint.testbit k i then acc := Jac.add f !acc !b;
    b := Jac.double f !b
  done;
  Jac.to_affine f !acc

(* Jacobian coordinates over the fixed-limb Montgomery kernel: the same
   dbl-2009-l / add-2007-bl formulas as [Jac], but every field operation is
   a flat int-array CIOS multiplication instead of Bigint + Barrett. This
   is what [mul], the fixed-base tables and the pairing's Miller loop run
   on; [Jac] and [mul_affine] stay as the references the property tests
   compare against. *)
module Jm = struct
  type t = { x : Mont.el; y : Mont.el; z : Mont.el }

  let infinity ctx = { x = Mont.one ctx; y = Mont.one ctx; z = Mont.zero ctx }
  let is_infinity p = Mont.is_zero p.z

  let of_affine ctx = function
    | Inf -> infinity ctx
    | Affine { x; y } -> { x = Mont.of_bigint ctx x; y = Mont.of_bigint ctx y; z = Mont.one ctx }

  let to_affine ctx p =
    if is_infinity p then Inf
    else begin
      let zinv = Mont.inv ctx p.z in
      let zinv2 = Mont.sqr ctx zinv in
      Affine
        {
          x = Mont.to_bigint ctx (Mont.mul ctx p.x zinv2);
          y = Mont.to_bigint ctx (Mont.mul ctx p.y (Mont.mul ctx zinv2 zinv));
        }
    end

  let double ctx p =
    if is_infinity p || Mont.is_zero p.y then infinity ctx
    else begin
      let a = Mont.sqr ctx p.x in
      let b = Mont.sqr ctx p.y in
      let c = Mont.sqr ctx b in
      let t = Mont.sqr ctx (Mont.add ctx p.x b) in
      let d = Mont.mul_small ctx (Mont.sub ctx (Mont.sub ctx t a) c) 2 in
      let e = Mont.mul_small ctx a 3 in
      let ff = Mont.sqr ctx e in
      let x3 = Mont.sub ctx ff (Mont.mul_small ctx d 2) in
      let y3 = Mont.sub ctx (Mont.mul ctx e (Mont.sub ctx d x3)) (Mont.mul_small ctx c 8) in
      let z3 = Mont.mul_small ctx (Mont.mul ctx p.y p.z) 2 in
      { x = x3; y = y3; z = z3 }
    end

  let add ctx p q =
    if is_infinity p then q
    else if is_infinity q then p
    else begin
      let z1z1 = Mont.sqr ctx p.z in
      let z2z2 = Mont.sqr ctx q.z in
      let u1 = Mont.mul ctx p.x z2z2 in
      let u2 = Mont.mul ctx q.x z1z1 in
      let s1 = Mont.mul ctx p.y (Mont.mul ctx q.z z2z2) in
      let s2 = Mont.mul ctx q.y (Mont.mul ctx p.z z1z1) in
      if Mont.equal u1 u2 then begin
        if Mont.equal s1 s2 then double ctx p else infinity ctx
      end
      else begin
        let h = Mont.sub ctx u2 u1 in
        let i = Mont.sqr ctx (Mont.mul_small ctx h 2) in
        let j = Mont.mul ctx h i in
        let r = Mont.mul_small ctx (Mont.sub ctx s2 s1) 2 in
        let v = Mont.mul ctx u1 i in
        let x3 = Mont.sub ctx (Mont.sub ctx (Mont.sqr ctx r) j) (Mont.mul_small ctx v 2) in
        let y3 =
          Mont.sub ctx (Mont.mul ctx r (Mont.sub ctx v x3))
            (Mont.mul_small ctx (Mont.mul ctx s1 j) 2)
        in
        let z3 =
          Mont.mul ctx
            (Mont.sub ctx (Mont.sqr ctx (Mont.add ctx p.z q.z)) (Mont.add ctx z1z1 z2z2))
            h
        in
        { x = x3; y = y3; z = z3 }
      end
    end
end

let window_bits = 4

(* bits [4w .. 4w+3] of k *)
let digit k w =
  let b = window_bits * w in
  (if Bigint.testbit k b then 1 else 0)
  lor (if Bigint.testbit k (b + 1) then 2 else 0)
  lor (if Bigint.testbit k (b + 2) then 4 else 0)
  lor (if Bigint.testbit k (b + 3) then 8 else 0)

(* odd multiples would halve the table, but 1..15 keeps the window loop
   branch-free: one add per nonzero digit, no signed recoding *)
let small_multiples ctx base =
  let tbl = Array.make 16 base in
  tbl.(0) <- Jm.infinity ctx;
  for i = 2 to 15 do
    tbl.(i) <- (if i land 1 = 0 then Jm.double ctx tbl.(i lsr 1) else Jm.add ctx tbl.(i - 1) base)
  done;
  tbl

(* windowed ladder core: [p] must be affine, [k] positive; the result
   stays Jacobian so callers can share the affine-conversion inversion *)
let mul_jm ctx k p =
  let tbl = small_multiples ctx (Jm.of_affine ctx p) in
  let nwin = (Bigint.numbits k + window_bits - 1) / window_bits in
  let acc = ref (Jm.infinity ctx) in
  for w = nwin - 1 downto 0 do
    if w < nwin - 1 then begin
      acc := Jm.double ctx !acc;
      acc := Jm.double ctx !acc;
      acc := Jm.double ctx !acc;
      acc := Jm.double ctx !acc
    end;
    let d = digit k w in
    if d <> 0 then acc := Jm.add ctx !acc tbl.(d)
  done;
  !acc

let mul f k p =
  if Bigint.sign k < 0 then invalid_arg "Curve.mul: negative scalar";
  match p with
  | Inf -> Inf
  | Affine _ when Bigint.is_zero k -> Inf
  | Affine _ ->
    let ctx = Field.mont_ctx f in
    Jm.to_affine ctx (mul_jm ctx k p)

(* shared Jacobian→affine conversion: Montgomery's trick turns the n
   inversions (one Fermat exponentiation each) into one inversion plus
   3(n−1) multiplications *)
let to_affine_batch ctx js =
  let zs =
    Array.of_list
      (List.filter_map (fun j -> if Jm.is_infinity j then None else Some j.Jm.z) js)
  in
  let n = Array.length zs in
  if n = 0 then List.map (fun _ -> Inf) js
  else begin
    let c = Array.make n zs.(0) in
    for i = 1 to n - 1 do
      c.(i) <- Mont.mul ctx c.(i - 1) zs.(i)
    done;
    let u = ref (Mont.inv ctx c.(n - 1)) in
    let zinvs = Array.make n !u in
    for i = n - 1 downto 1 do
      zinvs.(i) <- Mont.mul ctx !u c.(i - 1);
      u := Mont.mul ctx !u zs.(i)
    done;
    zinvs.(0) <- !u;
    let idx = ref 0 in
    List.map
      (fun j ->
        if Jm.is_infinity j then Inf
        else begin
          let zinv = zinvs.(!idx) in
          incr idx;
          let zinv2 = Mont.sqr ctx zinv in
          Affine
            {
              x = Mont.to_bigint ctx (Mont.mul ctx j.Jm.x zinv2);
              y = Mont.to_bigint ctx (Mont.mul ctx j.Jm.y (Mont.mul ctx zinv2 zinv));
            }
        end)
      js
  end

(* n scalar multiplications paying one field inversion total *)
let mul_batch f kps =
  let ctx = Field.mont_ctx f in
  let js =
    List.map
      (fun (k, p) ->
        if Bigint.sign k < 0 then invalid_arg "Curve.mul_batch: negative scalar";
        match p with
        | Inf -> Jm.infinity ctx
        | Affine _ when Bigint.is_zero k -> Jm.infinity ctx
        | Affine _ -> mul_jm ctx k p)
      kps
  in
  to_affine_batch ctx js

(* Σ kᵢ·Pᵢ with one shared window walk: the accumulator is doubled once
   per window for all terms together, and the whole sum pays a single
   Jacobian→affine inversion — folding [mul] and [add] would pay the
   doubling chain and an inversion per term. The win is largest for many
   short scalars (Bls.verify_batch's 64-bit blinding factors). *)
let msm_jm ctx kps =
  let kps =
    List.filter
      (fun (k, p) ->
        if Bigint.sign k < 0 then invalid_arg "Curve.msm: negative scalar";
        (not (Bigint.is_zero k)) && match p with Inf -> false | Affine _ -> true)
      kps
  in
  match kps with
  | [] -> Jm.infinity ctx
  | kps ->
    let terms = List.map (fun (k, p) -> (k, small_multiples ctx (Jm.of_affine ctx p))) kps in
    let maxbits = List.fold_left (fun m (k, _) -> Stdlib.max m (Bigint.numbits k)) 0 kps in
    let nwin = (maxbits + window_bits - 1) / window_bits in
    let acc = ref (Jm.infinity ctx) in
    for w = nwin - 1 downto 0 do
      if w < nwin - 1 then begin
        acc := Jm.double ctx !acc;
        acc := Jm.double ctx !acc;
        acc := Jm.double ctx !acc;
        acc := Jm.double ctx !acc
      end;
      List.iter
        (fun (k, tbl) ->
          let d = digit k w in
          if d <> 0 then acc := Jm.add ctx !acc tbl.(d))
        terms
    done;
    !acc

let msm f kps =
  let ctx = Field.mont_ctx f in
  Jm.to_affine ctx (msm_jm ctx kps)

(* one Σ kᵢ·Pᵢ per group, all groups sharing a single final inversion *)
let msm_batch f groups =
  let ctx = Field.mont_ctx f in
  to_affine_batch ctx (List.map (msm_jm ctx) groups)

(* Fixed-base comb: for a long-lived point (the generator, a PKG master
   key) precompute j·2^(4i)·P for every window i and digit j, turning each
   scalar multiplication into ~numbits(k)/4 additions and no doublings. *)
module Fixed_base = struct
  type table = { point : point; windows : Jm.t array array (* windows.(i).(j-1) = j·2^(4i)·P *) }

  let make f p =
    match p with
    | Inf -> { point = p; windows = [||] }
    | Affine _ ->
      let ctx = Field.mont_ctx f in
      (* cover any scalar below p; protocol scalars are below q < p *)
      let nwin = (Bigint.numbits (Field.modulus f) + window_bits - 1) / window_bits in
      let windows = Array.make nwin [||] in
      let b = ref (Jm.of_affine ctx p) in
      for i = 0 to nwin - 1 do
        let row = Array.make 15 !b in
        for j = 1 to 14 do
          row.(j) <- Jm.add ctx row.(j - 1) !b
        done;
        windows.(i) <- row;
        (* 2^(4(i+1))·P = 2 · (8·2^(4i)·P) *)
        b := Jm.double ctx row.(7)
      done;
      { point = p; windows }

  let mul f tbl k =
    if Bigint.sign k < 0 then invalid_arg "Curve.Fixed_base.mul: negative scalar";
    match tbl.point with
    | Inf -> Inf
    | Affine _ when Bigint.is_zero k -> Inf
    | Affine _ ->
      let nwin = Array.length tbl.windows in
      if Bigint.numbits k > window_bits * nwin then mul f k tbl.point
      else begin
        let ctx = Field.mont_ctx f in
        let acc = ref (Jm.infinity ctx) in
        for w = 0 to nwin - 1 do
          let d = digit k w in
          if d <> 0 then acc := Jm.add ctx !acc tbl.windows.(w).(d - 1)
        done;
        Jm.to_affine ctx !acc
      end
end

let point_bytes f = Field.element_bytes f + 1

let to_bytes f p =
  match p with
  | Inf -> String.make (point_bytes f) '\xff'
  | Affine { x; y } ->
    Field.to_bytes f x ^ String.make 1 (if Bigint.is_even y then '\x00' else '\x01')

let of_bytes f s =
  if String.length s <> point_bytes f then None
  else if String.for_all (fun c -> c = '\xff') s then Some Inf
  else begin
    let n = Field.element_bytes f in
    match s.[n] with
    | '\x00' | '\x01' -> begin
      match Field.of_bytes_opt f (String.sub s 0 n) with
      | None -> None
      | Some x ->
        let rhs = Field.add f (Field.mul f (Field.sqr f x) x) Bigint.one in
        (match Field.sqrt f rhs with
         | None -> None
         | Some y ->
           let want_odd = s.[n] = '\x01' in
           let y = if Bigint.is_even y = want_odd then Field.neg f y else y in
           Some (Affine { x; y }))
    end
    | _ -> None
  end
