module Bigint = Alpenhorn_bigint.Bigint

type point = Inf | Affine of { x : Bigint.t; y : Bigint.t }

let infinity = Inf

let is_on_curve f p =
  match p with
  | Inf -> true
  | Affine { x; y } ->
    Field.equal (Field.sqr f y) (Field.add f (Field.mul f (Field.sqr f x) x) Bigint.one)

let make f ~x ~y =
  let p = Affine { x; y } in
  if is_on_curve f p then p else invalid_arg "Curve.make: not on curve"

let equal a b =
  match (a, b) with
  | Inf, Inf -> true
  | Affine a, Affine b -> Bigint.equal a.x b.x && Bigint.equal a.y b.y
  | Inf, Affine _ | Affine _, Inf -> false

let neg f p =
  match p with Inf -> Inf | Affine { x; y } -> Affine { x; y = Field.neg f y }

let double f p =
  match p with
  | Inf -> Inf
  | Affine { x; y } ->
    if Field.is_zero y then Inf
    else begin
      let lambda = Field.mul f (Field.mul_int f (Field.sqr f x) 3) (Field.inv f (Field.mul_int f y 2)) in
      let x3 = Field.sub f (Field.sqr f lambda) (Field.mul_int f x 2) in
      let y3 = Field.sub f (Field.mul f lambda (Field.sub f x x3)) y in
      Affine { x = x3; y = y3 }
    end

let add f p q =
  match (p, q) with
  | Inf, r | r, Inf -> r
  | Affine a, Affine b ->
    if Bigint.equal a.x b.x then begin
      if Bigint.equal a.y b.y then double f p else Inf
    end
    else begin
      let lambda = Field.mul f (Field.sub f b.y a.y) (Field.inv f (Field.sub f b.x a.x)) in
      let x3 = Field.sub f (Field.sub f (Field.sqr f lambda) a.x) b.x in
      let y3 = Field.sub f (Field.mul f lambda (Field.sub f a.x x3)) a.y in
      Affine { x = x3; y = y3 }
    end

let mul_affine f k p =
  if Bigint.sign k < 0 then invalid_arg "Curve.mul: negative scalar";
  let nb = Bigint.numbits k in
  let acc = ref Inf and b = ref p in
  for i = 0 to nb - 1 do
    if Bigint.testbit k i then acc := add f !acc !b;
    b := double f !b
  done;
  !acc

(* Jacobian coordinates (X : Y : Z) ≡ (X/Z², Y/Z³), Z = 0 for infinity:
   scalar multiplication with a single inversion at the end instead of one
   per point operation. This is the hot path under IBE encryption, BLS
   signing and DH keygen; the affine ladder above is kept as the reference
   the property tests compare against. *)
module Jac = struct
  type jpoint = { jx : Bigint.t; jy : Bigint.t; jz : Bigint.t }

  let infinity = { jx = Bigint.one; jy = Bigint.one; jz = Bigint.zero }
  let is_infinity p = Bigint.is_zero p.jz

  let of_affine = function
    | Inf -> infinity
    | Affine { x; y } -> { jx = x; jy = y; jz = Bigint.one }

  let to_affine f p =
    if is_infinity p then Inf
    else begin
      let zinv = Field.inv f p.jz in
      let zinv2 = Field.sqr f zinv in
      Affine { x = Field.mul f p.jx zinv2; y = Field.mul f p.jy (Field.mul f zinv2 zinv) }
    end

  (* dbl-2009-l (curve coefficient a = 0): 2M + 5S *)
  let double f p =
    if is_infinity p || Bigint.is_zero p.jy then infinity
    else begin
      let a = Field.sqr f p.jx in
      let b = Field.sqr f p.jy in
      let c = Field.sqr f b in
      let t = Field.sqr f (Field.add f p.jx b) in
      let d = Field.mul_int f (Field.sub f (Field.sub f t a) c) 2 in
      let e = Field.mul_int f a 3 in
      let ff = Field.sqr f e in
      let x3 = Field.sub f ff (Field.mul_int f d 2) in
      let y3 = Field.sub f (Field.mul f e (Field.sub f d x3)) (Field.mul_int f c 8) in
      let z3 = Field.mul_int f (Field.mul f p.jy p.jz) 2 in
      { jx = x3; jy = y3; jz = z3 }
    end

  (* add-2007-bl: general Jacobian addition, 11M + 5S *)
  let add f p q =
    if is_infinity p then q
    else if is_infinity q then p
    else begin
      let z1z1 = Field.sqr f p.jz in
      let z2z2 = Field.sqr f q.jz in
      let u1 = Field.mul f p.jx z2z2 in
      let u2 = Field.mul f q.jx z1z1 in
      let s1 = Field.mul f p.jy (Field.mul f q.jz z2z2) in
      let s2 = Field.mul f q.jy (Field.mul f p.jz z1z1) in
      if Field.equal u1 u2 then begin
        if Field.equal s1 s2 then double f p else infinity
      end
      else begin
        let h = Field.sub f u2 u1 in
        let i = Field.sqr f (Field.mul_int f h 2) in
        let j = Field.mul f h i in
        let r = Field.mul_int f (Field.sub f s2 s1) 2 in
        let v = Field.mul f u1 i in
        let x3 = Field.sub f (Field.sub f (Field.sqr f r) j) (Field.mul_int f v 2) in
        let y3 =
          Field.sub f (Field.mul f r (Field.sub f v x3)) (Field.mul_int f (Field.mul f s1 j) 2)
        in
        let z3 =
          Field.mul f
            (Field.sub f (Field.sqr f (Field.add f p.jz q.jz)) (Field.add f z1z1 z2z2))
            h
        in
        { jx = x3; jy = y3; jz = z3 }
      end
    end
end

let mul f k p =
  if Bigint.sign k < 0 then invalid_arg "Curve.mul: negative scalar";
  let nb = Bigint.numbits k in
  let acc = ref Jac.infinity and b = ref (Jac.of_affine p) in
  for i = 0 to nb - 1 do
    if Bigint.testbit k i then acc := Jac.add f !acc !b;
    b := Jac.double f !b
  done;
  Jac.to_affine f !acc

let point_bytes f = Field.element_bytes f + 1

let to_bytes f p =
  match p with
  | Inf -> String.make (point_bytes f) '\xff'
  | Affine { x; y } ->
    Field.to_bytes f x ^ String.make 1 (if Bigint.is_even y then '\x00' else '\x01')

let of_bytes f s =
  if String.length s <> point_bytes f then None
  else if String.for_all (fun c -> c = '\xff') s then Some Inf
  else begin
    let n = Field.element_bytes f in
    match s.[n] with
    | '\x00' | '\x01' -> begin
      match Field.of_bytes f (String.sub s 0 n) with
      | exception Invalid_argument _ -> None
      | x ->
        let rhs = Field.add f (Field.mul f (Field.sqr f x) x) Bigint.one in
        (match Field.sqrt f rhs with
         | None -> None
         | Some y ->
           let want_odd = s.[n] = '\x01' in
           let y = if Bigint.is_even y = want_odd then Field.neg f y else y in
           Some (Affine { x; y }))
    end
    | _ -> None
  end
