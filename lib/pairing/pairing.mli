(** The modified Tate pairing ê : G1 × G1 → GT ⊂ F_p²*.

    [pair params a b] computes [f_{q,a}(φ(b))^((p²−1)/q)] by Miller's
    algorithm, where φ is the distortion map [(x, y) ↦ (ζx, y)]. The
    distortion map makes the pairing symmetric and non-degenerate on G1
    (ê(g, g) ≠ 1), which is what Boneh-Franklin IBE and BLS signatures
    need. Bilinearity: ê(aP, bQ) = ê(P, Q)^{ab}.

    Denominators are kept separate during the Miller loop and inverted once
    at the end (denominator elimination does not apply: the distorted
    point's x-coordinate is not in F_p). *)

module Bigint = Alpenhorn_bigint.Bigint

val pair : Params.t -> Curve.point -> Curve.point -> Fp2.el
(** @raise Invalid_argument if either argument is the point at infinity
    (those never arise in honest protocol runs; ciphertext decoding rejects
    them earlier). *)

val gt_bytes : Params.t -> Fp2.el -> string
(** Canonical serialization of a GT element, for hashing. *)

val hash_to_group : Params.t -> string -> Curve.point
(** Boneh-Franklin admissible encoding: hash the identity string to y,
    set x = (y² − 1)^(1/3), multiply by the cofactor; retry on degenerate
    outputs. Never returns the point at infinity. *)

val hash_to_scalar : Params.t -> string -> Bigint.t
(** Hash to a nonzero scalar in [\[1, q)]. *)
