(** The modified Tate pairing ê : G1 × G1 → GT ⊂ F_p²*.

    [pair params a b] computes [f_{q,a}(φ(b))^((p²−1)/q)] by Miller's
    algorithm, where φ is the distortion map [(x, y) ↦ (ζx, y)]. The
    distortion map makes the pairing symmetric and non-degenerate on G1
    (ê(g, g) ≠ 1), which is what Boneh-Franklin IBE and BLS signatures
    need. Bilinearity: ê(aP, bQ) = ê(P, Q)^{ab}.

    Denominators are kept separate during the Miller loop and inverted once
    at the end (denominator elimination does not apply: the distorted
    point's x-coordinate is not in F_p).

    [pair] runs the Miller loop in Jacobian coordinates over the
    fixed-limb Montgomery kernel ({!Mont}) — no field inversions inside
    the loop, every line scaled by factors in F_p* that the final
    exponentiation kills. [pair_reference] is the affine Bigint+Barrett
    implementation it is property-tested against. *)

module Bigint = Alpenhorn_bigint.Bigint

val pair : Params.t -> Curve.point -> Curve.point -> Fp2.el
(** @raise Invalid_argument if either argument is the point at infinity
    (those never arise in honest protocol runs; ciphertext decoding rejects
    them earlier). *)

val pair_reference : Params.t -> Curve.point -> Curve.point -> Fp2.el
(** Affine reference implementation; agrees with [pair] exactly. *)

val pair_cached : Params.t -> Curve.point -> Curve.point -> Fp2.el
(** [pair] through the parameter set's bounded fixed-argument memo
    (FIFO-evicted, one cache per domain so parallel verifies never
    contend). Callers with recurring pairs — IBE encryption to a master
    key, BLS verification against known signers — use this; hit and miss
    counts land on the ["pairing.cache_hits"/"pairing.cache_misses"]
    telemetry counters. *)

val pair_product : Params.t -> (Curve.point * Curve.point) list -> Fp2.el
(** [pair_product params \[(a1,b1); …; (an,bn)\]] is [Π ê(ai, bi)],
    computed by driving all n Miller loops in lockstep over one shared
    accumulator — the per-iteration accumulator squarings are paid once
    for the whole product, not once per pair — followed by a single
    shared final exponentiation (the final powering is multiplicative in
    F_p²). n pairings therefore cost well under n standalone [pair]
    calls. The workhorse of [Bls.verify_batch]. Returns [Fp2.one] on the
    empty list.
    @raise Invalid_argument if any point is the point at infinity. *)

val warmup : Params.t -> unit
(** Force lazily initialised shared state touched by pairing operations
    (fixed-base tables, Montgomery context, cache-counter handles) so that
    worker domains only ever read it. Called at the edge of every parallel
    region; idempotent. *)

val line_and_add :
  Field.t ->
  Curve.point ->
  Curve.point ->
  xq:Fp2.el ->
  yq:Fp2.el ->
  Fp2.el * Fp2.el * Curve.point
(** One reference Miller step: the line through [t] and [u] (tangent when
    equal, vertical when the sum is O — including the 2-torsion tangent)
    and the vertical at [t + u], both evaluated at [(xq, yq)]. Exposed for
    the regression tests. *)

val gt_bytes : Params.t -> Fp2.el -> string
(** Canonical serialization of a GT element, for hashing. *)

val hash_to_group : Params.t -> string -> Curve.point
(** Boneh-Franklin admissible encoding: hash the identity string to y,
    set x = (y² − 1)^(1/3), multiply by the cofactor; retry on degenerate
    outputs. Never returns the point at infinity. *)

val hash_to_scalar : Params.t -> string -> Bigint.t
(** Hash to a nonzero scalar in [\[1, q)]. *)
