(** The supersingular curve [E : y² = x³ + 1] over [F_p].

    With [p ≡ 2 (mod 3)] this curve is supersingular and
    [#E(F_p) = p + 1]. G1 is its order-q subgroup. Affine coordinates
    throughout (inversions via extended Euclid are cheap at our sizes and
    keep the Miller-loop line functions straightforward). *)

module Bigint = Alpenhorn_bigint.Bigint

type point = Inf | Affine of { x : Bigint.t; y : Bigint.t }

val infinity : point
val make : Field.t -> x:Bigint.t -> y:Bigint.t -> point
(** @raise Invalid_argument if not on the curve. *)

val is_on_curve : Field.t -> point -> bool
val equal : point -> point -> bool
val neg : Field.t -> point -> point
val add : Field.t -> point -> point -> point
val double : Field.t -> point -> point
val mul : Field.t -> Bigint.t -> point -> point
(** Scalar multiplication: double-and-add over Jacobian coordinates, one
    field inversion total (the hot path of IBE, BLS and DH). *)

val mul_affine : Field.t -> Bigint.t -> point -> point
(** Reference ladder over affine operations (one inversion per step);
    property tests check [mul] against it. *)

val point_bytes : Field.t -> int
(** Serialized size: one field element plus a parity byte. *)

val to_bytes : Field.t -> point -> string
(** Compressed: [x || sign-of-y] ; the point at infinity is all-0xFF. *)

val of_bytes : Field.t -> string -> point option
(** Decompress; [None] if malformed or not on the curve. *)
