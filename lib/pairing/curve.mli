(** The supersingular curve [E : y² = x³ + 1] over [F_p].

    With [p ≡ 2 (mod 3)] this curve is supersingular and
    [#E(F_p) = p + 1]. G1 is its order-q subgroup. Affine coordinates
    throughout (inversions via extended Euclid are cheap at our sizes and
    keep the Miller-loop line functions straightforward). *)

module Bigint = Alpenhorn_bigint.Bigint

type point = Inf | Affine of { x : Bigint.t; y : Bigint.t }

val infinity : point
val make : Field.t -> x:Bigint.t -> y:Bigint.t -> point
(** @raise Invalid_argument if not on the curve. *)

val is_on_curve : Field.t -> point -> bool
val equal : point -> point -> bool
val neg : Field.t -> point -> point
val add : Field.t -> point -> point -> point
val double : Field.t -> point -> point
val mul : Field.t -> Bigint.t -> point -> point
(** Scalar multiplication: windowed (w = 4) double-and-add over Jacobian
    coordinates on the fixed-limb Montgomery kernel, one field inversion
    total (the hot path of IBE, BLS and DH). *)

val mul_batch : Field.t -> (Bigint.t * point) list -> point list
(** [mul_batch f \[(k1,p1); …\]] is [\[k1·p1; …\]] — independent scalar
    multiplications sharing a single field inversion for all the
    Jacobian→affine conversions (Montgomery's batch-inversion trick).
    @raise Invalid_argument on negative scalars. *)

val msm : Field.t -> (Bigint.t * point) list -> point
(** [msm f \[(k1,p1); …\]] is [Σ ki·pi], sharing one doubling chain and
    one final inversion across all terms — much cheaper than n [mul]s
    plus n−1 [add]s for the many-short-scalars shape of
    [Bls.verify_batch]. Zero scalars and [Inf] points contribute nothing.
    @raise Invalid_argument on negative scalars. *)

val msm_batch : Field.t -> (Bigint.t * point) list list -> point list
(** One {!msm} per group, with a single shared inversion across all the
    groups' affine conversions.
    @raise Invalid_argument on negative scalars. *)

val mul_jacobian : Field.t -> Bigint.t -> point -> point
(** Reference double-and-add over Bigint Jacobian coordinates (the
    pre-Montgomery hot path, kept for cross-validation). *)

val mul_affine : Field.t -> Bigint.t -> point -> point
(** Reference ladder over affine operations (one inversion per step);
    property tests check [mul] and [mul_jacobian] against it. *)

(** Precomputed tables for long-lived base points (the generator, PKG
    master keys): [mul] over a table costs ~one point addition per
    4 scalar bits and no doublings. *)
module Fixed_base : sig
  type table

  val make : Field.t -> point -> table
  (** Precompute windows covering any scalar below the field modulus
      (~60 point operations per window row at production sizes). *)

  val mul : Field.t -> table -> Bigint.t -> point
  (** Falls back to the generic path for scalars wider than the table.
      @raise Invalid_argument on negative scalars. *)
end

val point_bytes : Field.t -> int
(** Serialized size: one field element plus a parity byte. *)

val to_bytes : Field.t -> point -> string
(** Compressed: [x || sign-of-y] ; the point at infinity is all-0xFF. *)

val of_bytes : Field.t -> string -> point option
(** Decompress; [None] if malformed or not on the curve. *)
