module Bigint = Alpenhorn_bigint.Bigint
module Drbg = Alpenhorn_crypto.Drbg

type pair_cache = {
  pc_table : (string, Fp2.el) Hashtbl.t;
  pc_fifo : string Queue.t;
}

type t = {
  fp : Field.t;
  q : Bigint.t;
  cofactor : Bigint.t;
  zeta : Fp2.el;
  g : Curve.point;
  tate_exp : Bigint.t;
  g_table : Curve.Fixed_base.table Lazy.t;
  table_mu : Mutex.t;
  pair_cache : pair_cache Domain.DLS.key;
}

let fresh_pair_cache () = { pc_table = Hashtbl.create 64; pc_fifo = Queue.create () }

(* Concurrent [Lazy.force] from two domains raises [Lazy.Undefined]; the
   mutex (with an is_val fast path once forced) makes first-use safe even if
   a caller forgot [force_tables] before going parallel. *)
let force_g_table t =
  if Lazy.is_val t.g_table then Lazy.force t.g_table
  else begin
    Mutex.lock t.table_mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.table_mu)
      (fun () -> Lazy.force t.g_table)
  end

let mul_g t k = Curve.Fixed_base.mul t.fp (force_g_table t) k

let force_tables t =
  ignore (force_g_table t);
  Mutex.lock t.table_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.table_mu)
    (fun () -> ignore (Field.mont_ctx t.fp))

let is_prime rng n =
  Bigint.is_probable_prime ~rounds:24 ~rand:(fun ~bits -> Drbg.bigint_bits rng bits) n

let random_prime rng bits =
  let rec go () =
    let c = Drbg.bigint_bits rng (bits - 1) in
    (* force top and bottom bits *)
    let c = Bigint.add (Bigint.add c c) Bigint.one in
    let c = Bigint.add c (Bigint.shift_left Bigint.one (bits - 1)) in
    let c = if Bigint.numbits c > bits then Bigint.sub c (Bigint.shift_left Bigint.one bits) else c in
    if Bigint.numbits c = bits && is_prime rng c then c else go ()
  in
  go ()

(* A primitive cube root of unity in F_p²: t^((p²-1)/3) for random t, retried
   until it is nontrivial. p ≡ 2 (mod 3) forces it out of F_p. *)
let find_zeta rng fp =
  let p = Field.modulus fp in
  let e = Bigint.div (Bigint.sub (Bigint.mul p p) Bigint.one) (Bigint.of_int 3) in
  let rec go () =
    let t = Fp2.make (Drbg.bigint_below rng p) (Drbg.bigint_below rng p) in
    if Fp2.is_zero t then go ()
    else begin
      let z = Fp2.pow fp t e in
      if Fp2.equal z Fp2.one then go () else z
    end
  in
  go ()

(* A generator of G1: random curve point times the cofactor. *)
let find_generator rng fp cofactor q =
  let p = Field.modulus fp in
  let rec go () =
    let y = Drbg.bigint_below rng p in
    let y2m1 = Field.sub fp (Field.sqr fp y) Bigint.one in
    let x = Field.cbrt fp y2m1 in
    let pt = Curve.Affine { x; y } in
    if not (Curve.is_on_curve fp pt) then go ()
    else begin
      let g = Curve.mul fp cofactor pt in
      match g with
      | Curve.Inf -> go ()
      | g -> if Curve.equal (Curve.mul fp q g) Curve.Inf then g else go ()
    end
  in
  go ()

let build q l =
  let twelve_l = Bigint.mul_int l 12 in
  let p = Bigint.sub (Bigint.mul twelve_l q) Bigint.one in
  let fp = Field.create p in
  let rng = Drbg.create ~seed:("alpenhorn-params" ^ Bigint.to_string p) in
  let zeta = find_zeta rng fp in
  let g = find_generator rng fp twelve_l q in
  {
    fp;
    q;
    cofactor = twelve_l;
    zeta;
    g;
    tate_exp = Bigint.div (Bigint.sub (Bigint.mul p p) Bigint.one) q;
    g_table = lazy (Curve.Fixed_base.make fp g);
    table_mu = Mutex.create ();
    pair_cache = Domain.DLS.new_key fresh_pair_cache;
  }

let generate rng ~qbits =
  let q = random_prime rng qbits in
  (* find l making p = 12·l·q - 1 prime *)
  let rec find_l l =
    let p = Bigint.sub (Bigint.mul_int (Bigint.mul l q) 12) Bigint.one in
    if is_prime rng p then l else find_l (Bigint.add l Bigint.one)
  in
  let l = find_l (Bigint.add (Drbg.bigint_bits rng 8) Bigint.one) in
  build q l

let validate t =
  let p = Field.modulus t.fp in
  let check name cond = if not cond then failwith ("Params.validate: " ^ name) in
  let rng = Drbg.create ~seed:"params-validate" in
  check "p prime" (is_prime rng p);
  check "q prime" (is_prime rng t.q);
  check "p = cofactor*q - 1" (Bigint.equal (Bigint.add p Bigint.one) (Bigint.mul t.cofactor t.q));
  check "cofactor divisible by 12" (Bigint.is_zero (Bigint.rem t.cofactor (Bigint.of_int 12)));
  check "zeta nontrivial" (not (Fp2.equal t.zeta Fp2.one));
  check "zeta^3 = 1" (Fp2.equal (Fp2.mul t.fp t.zeta (Fp2.sqr t.fp t.zeta)) Fp2.one);
  check "zeta not in F_p" (not (Fp2.in_base_field t.zeta));
  check "g on curve" (Curve.is_on_curve t.fp t.g);
  check "g not infinity" (not (Curve.equal t.g Curve.Inf));
  check "g has order q" (Curve.equal (Curve.mul t.fp t.q t.g) Curve.Inf);
  check "tate_exp * q = p^2 - 1"
    (Bigint.equal (Bigint.mul t.tate_exp t.q) (Bigint.sub (Bigint.mul p p) Bigint.one))

(* Pregenerated sets: (q, l) pairs found with [generate] (see
   devtools/genparams). [build] reconstructs everything else
   deterministically; [validate] re-checks the invariants. *)

let memo f =
  let cell = ref None in
  fun () ->
    match !cell with
    | Some v -> v
    | None ->
      let v = f () in
      validate v;
      cell := Some v;
      v

let test =
  memo (fun () ->
      build (Bigint.of_string "0x89ee8ad67fad84a5") (Bigint.of_string "0xe2"))

let production =
  memo (fun () ->
      build
        (Bigint.of_string "0x1249899b522a9407586a8c886a0059b4e241d85783d81f7be0d60d009")
        (Bigint.of_string "0x1b6"))

let of_named = function
  | "test" -> test ()
  | "production" -> production ()
  | s -> invalid_arg ("Params.of_named: " ^ s)
