module Bigint = Alpenhorn_bigint.Bigint

type t = {
  p : Bigint.t;
  k : int; (* Barrett shift: numbits p *)
  mu : Bigint.t; (* floor(2^(2k) / p) *)
  sqrt_exp : Bigint.t; (* (p+1)/4 *)
  cbrt_exp : Bigint.t; (* (2p-1)/3 *)
  nbytes : int;
  mont : Mont.ctx Lazy.t; (* fixed-limb Montgomery kernel for this modulus *)
}

let create p =
  let twelve = Bigint.of_int 12 in
  if not (Bigint.equal (Bigint.rem p twelve) (Bigint.of_int 11)) then
    invalid_arg "Field.create: modulus must be 11 mod 12";
  let k = Bigint.numbits p in
  {
    p;
    k;
    mu = Bigint.div (Bigint.shift_left Bigint.one (2 * k)) p;
    sqrt_exp = Bigint.div (Bigint.add p Bigint.one) (Bigint.of_int 4);
    cbrt_exp = Bigint.div (Bigint.sub (Bigint.mul_int p 2) Bigint.one) (Bigint.of_int 3);
    nbytes = (k + 7) / 8;
    mont = lazy (Mont.create p);
  }

let modulus f = f.p
let element_bytes f = f.nbytes
let mont_ctx f = Lazy.force f.mont

let reduce f x =
  if Bigint.sign x < 0 then Bigint.rem x f.p
  else if Bigint.numbits x > 2 * f.k then Bigint.rem x f.p
  else begin
    (* Barrett: q = ((x >> (k-1)) * mu) >> (k+1); r = x - q*p, then <= 2
       conditional subtractions. *)
    let q = Bigint.shift_right (Bigint.mul (Bigint.shift_right x (f.k - 1)) f.mu) (f.k + 1) in
    let r = ref (Bigint.sub x (Bigint.mul q f.p)) in
    while Bigint.compare !r f.p >= 0 do
      r := Bigint.sub !r f.p
    done;
    !r
  end

let add f a b =
  let s = Bigint.add a b in
  if Bigint.compare s f.p >= 0 then Bigint.sub s f.p else s

let sub f a b =
  let s = Bigint.sub a b in
  if Bigint.sign s < 0 then Bigint.add s f.p else s

let neg f a = if Bigint.is_zero a then a else Bigint.sub f.p a
let mul f a b = reduce f (Bigint.mul a b)
let sqr f a = mul f a a
let mul_int f a n = reduce f (Bigint.mul_int a n)
let inv f a = Bigint.mod_inv a f.p

let pow f base e =
  let nb = Bigint.numbits e in
  let acc = ref Bigint.one and b = ref (reduce f base) in
  for i = 0 to nb - 1 do
    if Bigint.testbit e i then acc := mul f !acc !b;
    b := sqr f !b
  done;
  !acc

let is_zero = Bigint.is_zero
let equal = Bigint.equal

let sqrt f a =
  if Bigint.is_zero a then Some Bigint.zero
  else begin
    let r = pow f a f.sqrt_exp in
    if equal (sqr f r) a then Some r else None
  end

let cbrt f a = pow f a f.cbrt_exp

let to_bytes f a = Bigint.to_bytes_be ~len:f.nbytes a

let of_bytes_opt f s =
  if String.length s <> f.nbytes then None
  else begin
    let v = Bigint.of_bytes_be s in
    if Bigint.compare v f.p >= 0 then None else Some v
  end

let of_bytes f s =
  match of_bytes_opt f s with
  | Some v -> v
  | None -> invalid_arg "Field.of_bytes: malformed"
