(** Pairing parameter sets (Boneh-Franklin style).

    A parameter set fixes a prime group order [q], a field prime
    [p = 12·l·q − 1] (hence [p ≡ 11 (mod 12)]), the curve
    [E : y² = x³ + 1 / F_p], a generator [g] of the order-q subgroup G1,
    a primitive cube root of unity [ζ ∈ F_p² \ F_p] for the distortion map
    [φ(x,y) = (ζx, y)], and the reduced-Tate final exponent [(p² − 1)/q].

    [production] targets the paper's ballpark (BN-256 had a 256-bit group
    order); [test] is small and fast for unit tests. Both are pregenerated
    and revalidated on first use. *)

module Bigint = Alpenhorn_bigint.Bigint

type pair_cache = {
  pc_table : (string, Fp2.el) Hashtbl.t; (* fixed-argument pairing memo, see Pairing.pair_cached *)
  pc_fifo : string Queue.t; (* insertion order, for bounded eviction *)
}

type t = {
  fp : Field.t;
  q : Bigint.t; (* prime order of G1 *)
  cofactor : Bigint.t; (* 12·l, with p + 1 = 12·l·q *)
  zeta : Fp2.el; (* primitive cube root of unity, distortion map *)
  g : Curve.point; (* generator of G1 *)
  tate_exp : Bigint.t; (* (p² − 1) / q *)
  g_table : Curve.Fixed_base.table Lazy.t; (* fixed-base windows for g *)
  table_mu : Mutex.t; (* guards first forcing of the lazy tables *)
  pair_cache : pair_cache Domain.DLS.key; (* per-domain, so parallel verifies never contend *)
}

val mul_g : t -> Bigint.t -> Curve.point
(** [k·g] through the precomputed fixed-base table (built lazily on first
    use) — every keygen / IBE ephemeral / blinding factor computes this. *)

val force_tables : t -> unit
(** Force the lazily built shared tables (fixed-base windows for [g] and
    the field's Montgomery context) before handing the parameter set to
    multiple domains.  Forcing the same lazy concurrently from two domains
    raises; the parallel wiring (Server/Pkg/Client) calls this at the edge
    of every parallel region. Idempotent and cheap once forced. *)

val generate : Alpenhorn_crypto.Drbg.t -> qbits:int -> t
(** Generate a fresh parameter set with a [qbits]-bit prime group order. *)

val validate : t -> unit
(** Check all structural invariants. @raise Failure on any violation. *)

val test : unit -> t
(** Small (64-bit q) parameters for fast tests. Memoized. *)

val production : unit -> t
(** Full-size (225-bit q, ~260-bit p) parameters. Memoized. *)

val of_named : string -> t
(** ["test"] or ["production"]. @raise Invalid_argument otherwise. *)
