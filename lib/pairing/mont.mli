(** Fixed-width Montgomery arithmetic over [F_p] — the multiplication
    kernel under the pairing stack's hot path.

    An {!el} is a flat little-endian array of exactly [n] 31-bit limbs
    holding [a·R mod p] with [R = 2^(31n)]; 31-bit limbs keep every CIOS
    partial product inside OCaml's 63-bit native [int]. A {!ctx} carries
    the modulus, the precomputed constants ([−p⁻¹ mod 2^31], [R² mod p])
    and a scratch buffer, so the per-multiplication cost is two tight
    int-array loops and one allocation for the result.

    Values stay in Montgomery form across whole computations (Miller
    loops, scalar ladders, final exponentiations); only
    {!of_bigint}/{!to_bigint} pay the conversion. The generic
    Bigint+Barrett path in {!Field} remains the reference implementation;
    [test/test_mont.ml] cross-validates every operation against it.

    Every [mul]/[sqr] bumps the ["pairing.mont_mul"] telemetry counter on
    the default registry, which is how `bench smoke` proves the fast path
    is actually selected. Not constant-time (see {!Alpenhorn_crypto}).
    A shared [ctx] is safe to use from several domains at once: the CIOS
    scratch buffer is domain-local ([Domain.DLS]), so the parallel batch
    paths ({!Alpenhorn_parallel.Parallel}) can hammer one context without
    corrupting each other's accumulators. *)

module Bigint = Alpenhorn_bigint.Bigint

type el = int array
(** One field element in Montgomery form, [n] limbs. Treat as opaque;
    aliasing is safe because no exported operation mutates its inputs. *)

type ctx

val create : Bigint.t -> ctx
(** Precompute a context for an odd modulus.
    @raise Invalid_argument if the modulus is even or not positive. *)

val zero : ctx -> el
val one : ctx -> el

val of_bigint : ctx -> Bigint.t -> el
(** Any value (reduced mod p first, negatives included). *)

val to_bigint : ctx -> el -> Bigint.t
(** Back to a canonical value in [[0, p)]. *)

val is_zero : el -> bool
val equal : el -> el -> bool

val add : ctx -> el -> el -> el
val sub : ctx -> el -> el -> el
val neg : ctx -> el -> el

val mul : ctx -> el -> el -> el
(** CIOS Montgomery multiplication: [abR⁻¹ mod p]. *)

val sqr : ctx -> el -> el

val mul_small : ctx -> el -> int -> el
(** Multiply by a small non-negative plain integer (the 2/3/8 of the
    curve formulas). @raise Invalid_argument outside [[0, 2^31)]. *)

val pow : ctx -> el -> Bigint.t -> el
(** Exponent is a plain (non-Montgomery) non-negative Bigint. *)

val inv : ctx -> el -> el
(** Fermat inversion [a^(p−2)]; p must be prime (true for every field
    this repo constructs). @raise Division_by_zero on zero. *)

(** [F_p² = F_p[i]/(i²+1)] with components in Montgomery form — mirrors
    {!Fp2} operation for operation so the Miller loop and final
    exponentiation never leave Montgomery representation. *)
module F2 : sig
  type f2 = { re : el; im : el }

  val zero : ctx -> f2
  val one : ctx -> f2
  val of_el : ctx -> el -> f2
  val is_zero : f2 -> bool
  val equal : f2 -> f2 -> bool
  val add : ctx -> f2 -> f2 -> f2
  val sub : ctx -> f2 -> f2 -> f2
  val neg : ctx -> f2 -> f2
  val sub_el : ctx -> f2 -> el -> f2
  val mul : ctx -> f2 -> f2 -> f2
  val sqr : ctx -> f2 -> f2
  val mul_el : ctx -> f2 -> el -> f2
  val inv : ctx -> f2 -> f2
  val pow : ctx -> f2 -> Bigint.t -> f2
end
