(** Quadratic extension [F_p² = F_p(i)] with [i² = -1].

    Valid because the parameter family fixes [p ≡ 3 (mod 4)]. This is the
    target field of the Tate pairing: GT is the order-q subgroup of
    [F_p²*]. *)

module Bigint = Alpenhorn_bigint.Bigint

type el = { re : Bigint.t; im : Bigint.t }

val zero : el
val one : el

val make : Bigint.t -> Bigint.t -> el
val of_fp : Bigint.t -> el

val equal : el -> el -> bool
val is_zero : el -> bool
val in_base_field : el -> bool

val add : Field.t -> el -> el -> el
val sub : Field.t -> el -> el -> el
val neg : Field.t -> el -> el
val mul : Field.t -> el -> el -> el
val sqr : Field.t -> el -> el
val mul_fp : Field.t -> el -> Bigint.t -> el
val conj : Field.t -> el -> el
val inv : Field.t -> el -> el
(** @raise Division_by_zero on zero. *)

val pow : Field.t -> el -> Bigint.t -> el

val to_bytes : Field.t -> el -> string
(** [re || im], each fixed width. *)

val of_bytes : Field.t -> string -> el option
(** Total decoder: [None] on wrong width or non-canonical components. *)
