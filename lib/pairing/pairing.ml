module Bigint = Alpenhorn_bigint.Bigint
module Sha256 = Alpenhorn_crypto.Sha256

(* Evaluate the line through [t] and [u] (tangent if equal) at the distorted
   point (xq, yq) ∈ F_p², and the vertical line at [t + u]. Returns
   (l, v, t_plus_u). Uses the fact that on y² = x³ + 1 two distinct affine
   points never share a y-coordinate (x ↦ x³ is a bijection), so line
   evaluations at distorted points are never zero. *)
let line_and_add fp t u ~xq ~yq =
  match (t, u) with
  | Curve.Inf, Curve.Inf -> (Fp2.one, Fp2.one, Curve.Inf)
  | Curve.Inf, Curve.Affine a | Curve.Affine a, Curve.Inf ->
    (* vertical line through the affine point *)
    let l = Fp2.sub fp xq (Fp2.of_fp a.x) in
    ((l, Fp2.one, Curve.add fp t u) : Fp2.el * Fp2.el * Curve.point)
  | Curve.Affine a, Curve.Affine b ->
    let tangent = Bigint.equal a.x b.x && Bigint.equal a.y b.y in
    if Bigint.equal a.x b.x && not tangent then begin
      (* u = -t: chord is the vertical through t; t+u = O so v ≡ 1 *)
      (Fp2.sub fp xq (Fp2.of_fp a.x), Fp2.one, Curve.Inf)
    end
    else begin
      let lambda =
        if tangent then
          Field.mul fp (Field.mul_int fp (Field.sqr fp a.x) 3) (Field.inv fp (Field.mul_int fp a.y 2))
        else Field.mul fp (Field.sub fp b.y a.y) (Field.inv fp (Field.sub fp b.x a.x))
      in
      let x3 = Field.sub fp (Field.sub fp (Field.sqr fp lambda) a.x) b.x in
      let y3 = Field.sub fp (Field.mul fp lambda (Field.sub fp a.x x3)) a.y in
      (* l(Q) = (yq - a.y) - λ(xq - a.x) *)
      let l =
        Fp2.sub fp (Fp2.sub fp yq (Fp2.of_fp a.y)) (Fp2.mul_fp fp (Fp2.sub fp xq (Fp2.of_fp a.x)) lambda)
      in
      let v = Fp2.sub fp xq (Fp2.of_fp x3) in
      (l, v, Curve.Affine { x = x3; y = y3 })
    end

let miller (params : Params.t) p ~xq ~yq =
  let fp = params.fp in
  let q = params.q in
  let num = ref Fp2.one and den = ref Fp2.one in
  let t = ref p in
  for i = Bigint.numbits q - 2 downto 0 do
    let l, v, t2 = line_and_add fp !t !t ~xq ~yq in
    num := Fp2.mul fp (Fp2.sqr fp !num) l;
    den := Fp2.mul fp (Fp2.sqr fp !den) v;
    t := t2;
    if Bigint.testbit q i then begin
      let l, v, t2 = line_and_add fp !t p ~xq ~yq in
      num := Fp2.mul fp !num l;
      den := Fp2.mul fp !den v;
      t := t2
    end
  done;
  Fp2.mul fp !num (Fp2.inv fp !den)

let pair (params : Params.t) a b =
  match (a, b) with
  | Curve.Inf, _ | _, Curve.Inf -> invalid_arg "Pairing.pair: point at infinity"
  | Curve.Affine _, Curve.Affine { x = bx; y = by } ->
    let fp = params.fp in
    (* distortion map: Q = (ζ·bx, by) ∈ E(F_p²) *)
    let xq = Fp2.mul_fp fp params.zeta bx in
    let yq = Fp2.of_fp by in
    let f = miller params a ~xq ~yq in
    Fp2.pow fp f params.tate_exp

let gt_bytes (params : Params.t) el = Fp2.to_bytes params.fp el

let hash_to_group (params : Params.t) id =
  let fp = params.fp in
  let p = Field.modulus fp in
  let rec attempt ctr =
    if ctr > 255 then failwith "Pairing.hash_to_group: exhausted"
    else begin
      (* expand the identity to enough bytes for near-uniform y mod p *)
      let need = Field.element_bytes fp + 16 in
      let stream =
        Alpenhorn_crypto.Hmac.hkdf ~info:(Printf.sprintf "alpenhorn-h2g-%d" ctr) ~len:need id
      in
      let y = Bigint.rem (Bigint.of_bytes_be stream) p in
      let y2m1 = Field.sub fp (Field.sqr fp y) Bigint.one in
      if Field.is_zero y2m1 then attempt (ctr + 1)
      else begin
        let x = Field.cbrt fp y2m1 in
        let pt = Curve.Affine { x; y } in
        match Curve.mul fp params.cofactor pt with
        | Curve.Inf -> attempt (ctr + 1)
        | g -> g
      end
    end
  in
  attempt 0

let hash_to_scalar (params : Params.t) msg =
  let rec attempt ctr =
    if ctr > 255 then failwith "Pairing.hash_to_scalar: exhausted"
    else begin
      let need = (Bigint.numbits params.q + 7) / 8 + 16 in
      let stream =
        Alpenhorn_crypto.Hmac.hkdf ~info:(Printf.sprintf "alpenhorn-h2s-%d" ctr) ~len:need msg
      in
      let v = Bigint.rem (Bigint.of_bytes_be stream) params.q in
      if Bigint.is_zero v then attempt (ctr + 1) else v
    end
  in
  attempt 0
