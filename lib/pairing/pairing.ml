module Bigint = Alpenhorn_bigint.Bigint
module Sha256 = Alpenhorn_crypto.Sha256
module Tel = Alpenhorn_telemetry.Telemetry
module Events = Alpenhorn_telemetry.Events

(* Evaluate the line through [t] and [u] (tangent if equal) at the distorted
   point (xq, yq) ∈ F_p², and the vertical line at [t + u]. Returns
   (l, v, t_plus_u). Uses the fact that on y² = x³ + 1 two distinct affine
   points never share a y-coordinate (x ↦ x³ is a bijection), so line
   evaluations at distorted points are never zero. *)
let line_and_add fp t u ~xq ~yq =
  match (t, u) with
  | Curve.Inf, Curve.Inf -> (Fp2.one, Fp2.one, Curve.Inf)
  | Curve.Inf, Curve.Affine a | Curve.Affine a, Curve.Inf ->
    (* vertical line through the affine point *)
    let l = Fp2.sub fp xq (Fp2.of_fp a.x) in
    ((l, Fp2.one, Curve.add fp t u) : Fp2.el * Fp2.el * Curve.point)
  | Curve.Affine a, Curve.Affine b ->
    let tangent = Bigint.equal a.x b.x && Bigint.equal a.y b.y in
    if Bigint.equal a.x b.x && (not tangent || Field.is_zero a.y) then begin
      (* u = -t (chord is the vertical through t), or t is 2-torsion (the
         tangent at y = 0 is that same vertical); t+u = O so v ≡ 1 *)
      (Fp2.sub fp xq (Fp2.of_fp a.x), Fp2.one, Curve.Inf)
    end
    else begin
      let lambda =
        if tangent then
          Field.mul fp (Field.mul_int fp (Field.sqr fp a.x) 3) (Field.inv fp (Field.mul_int fp a.y 2))
        else Field.mul fp (Field.sub fp b.y a.y) (Field.inv fp (Field.sub fp b.x a.x))
      in
      let x3 = Field.sub fp (Field.sub fp (Field.sqr fp lambda) a.x) b.x in
      let y3 = Field.sub fp (Field.mul fp lambda (Field.sub fp a.x x3)) a.y in
      (* l(Q) = (yq - a.y) - λ(xq - a.x) *)
      let l =
        Fp2.sub fp (Fp2.sub fp yq (Fp2.of_fp a.y)) (Fp2.mul_fp fp (Fp2.sub fp xq (Fp2.of_fp a.x)) lambda)
      in
      let v = Fp2.sub fp xq (Fp2.of_fp x3) in
      (l, v, Curve.Affine { x = x3; y = y3 })
    end

let miller (params : Params.t) p ~xq ~yq =
  let fp = params.fp in
  let q = params.q in
  let num = ref Fp2.one and den = ref Fp2.one in
  let t = ref p in
  for i = Bigint.numbits q - 2 downto 0 do
    let l, v, t2 = line_and_add fp !t !t ~xq ~yq in
    num := Fp2.mul fp (Fp2.sqr fp !num) l;
    den := Fp2.mul fp (Fp2.sqr fp !den) v;
    t := t2;
    if Bigint.testbit q i then begin
      let l, v, t2 = line_and_add fp !t p ~xq ~yq in
      num := Fp2.mul fp !num l;
      den := Fp2.mul fp !den v;
      t := t2
    end
  done;
  Fp2.mul fp !num (Fp2.inv fp !den)

let pair_reference (params : Params.t) a b =
  match (a, b) with
  | Curve.Inf, _ | _, Curve.Inf -> invalid_arg "Pairing.pair: point at infinity"
  | Curve.Affine _, Curve.Affine { x = bx; y = by } ->
    let fp = params.fp in
    (* distortion map: Q = (ζ·bx, by) ∈ E(F_p²) *)
    let xq = Fp2.mul_fp fp params.zeta bx in
    let yq = Fp2.of_fp by in
    let f = miller params a ~xq ~yq in
    Fp2.pow fp f params.tate_exp

(* ---- Montgomery-kernel Miller loop ----

   Same algorithm as [miller], but the first argument is tracked in
   Jacobian coordinates over [Mont] so the loop needs no field inversions,
   and every line/vertical evaluation is scaled by a factor in F_p*
   (powers of Z and small constants). The scaling is free: the final
   exponent is (p² − 1)/q = (p − 1)·12l, and c^(p−1) = 1 for any
   c ∈ F_p*, so every base-field scale factor dies in the final
   exponentiation and [pair] equals [pair_reference] exactly (the
   property tests check this on random inputs).

   Line formulas, anchored at the affine current point (X/Z², Y/Z³) and
   cleared of denominators:

   - tangent (doubling), scaled by 2y₀Z⁶:
       l = Z3·ZZ·yq − 2Y² − 3X²·(ZZ·xq − X)         with Z3 = 2YZ
   - chord through T and affine P = (px, py), scaled by 2Z³(px − x₀):
       l = Z3·(yq − py) − r·(xq − px)                with r = 2(S2 − Y),
                                                     Z3 = 2ZH
   - vertical at T' = (X', Y', Z'), scaled by Z'²:
       v = Z'²·xq − X'

   The squared Z of the current point is carried alongside (X, Y, Z) so
   each step reuses it instead of re-squaring. *)

(* Per-pair Miller state: sets up one (a, b) pair and returns the
   [dbl_step]/[add_step] closures that advance T and yield this step's
   (line, vertical) factors. [miller_fast] drives one stepper through the
   classic loop; [miller_product] drives many through a single shared
   accumulator. [f2one] must be the caller's accumulator identity so the
   degenerate-step fast path ([l != f2one]) stays a physical-equality
   check. *)
let miller_stepper (params : Params.t) ctx ~f2one a ~bx ~by =
  let module M = Mont in
  let module F2 = Mont.F2 in
  (* distorted second argument: Q = (ζ·bx, by) *)
  let bxm = M.of_bigint ctx bx in
  let xq =
    {
      F2.re = M.mul ctx (M.of_bigint ctx params.zeta.Fp2.re) bxm;
      im = M.mul ctx (M.of_bigint ctx params.zeta.Fp2.im) bxm;
    }
  in
  let yq = F2.of_el ctx (M.of_bigint ctx by) in
  (* affine Montgomery form of the (always affine here) first argument *)
  let px, py = match a with Curve.Affine { x; y } -> (M.of_bigint ctx x, M.of_bigint ctx y) | Curve.Inf -> assert false in
  (* current multiple of [a]: Jacobian with cached Z², infinity iff Z = 0 *)
  let tx = ref px and ty = ref py and tz = ref (M.one ctx) and tzz = ref (M.one ctx) in
  (* double T, returning (line, vertical) *)
  let dbl_step () =
    if M.is_zero !tz then (f2one, f2one)
    else if M.is_zero !ty then begin
      (* 2-torsion: the tangent at y = 0 is the vertical through T *)
      let l = F2.sub_el ctx (F2.mul_el ctx xq !tzz) !tx in
      tz := M.zero ctx;
      (l, f2one)
    end
    else begin
      let x = !tx and y = !ty and z = !tz and zz = !tzz in
      let a2 = M.sqr ctx x in
      let b = M.sqr ctx y in
      let c = M.sqr ctx b in
      let t = M.sqr ctx (M.add ctx x b) in
      let d = M.mul_small ctx (M.sub ctx (M.sub ctx t a2) c) 2 in
      let e = M.mul_small ctx a2 3 in
      let f = M.sqr ctx e in
      let x3 = M.sub ctx f (M.mul_small ctx d 2) in
      let y3 = M.sub ctx (M.mul ctx e (M.sub ctx d x3)) (M.mul_small ctx c 8) in
      let z3 = M.mul_small ctx (M.mul ctx y z) 2 in
      let zz3 = M.sqr ctx z3 in
      let l =
        F2.sub ctx
          (F2.sub_el ctx (F2.mul_el ctx yq (M.mul ctx z3 zz)) (M.mul_small ctx b 2))
          (F2.mul_el ctx (F2.sub_el ctx (F2.mul_el ctx xq zz) x) e)
      in
      let v = F2.sub_el ctx (F2.mul_el ctx xq zz3) x3 in
      tx := x3;
      ty := y3;
      tz := z3;
      tzz := zz3;
      (l, v)
    end
  in
  (* add the affine base point P to T (madd-2007-bl), returning (line,
     vertical) *)
  let add_step () =
    if M.is_zero !tz then begin
      (* O + P = P; the "line" is the vertical through P *)
      tx := px;
      ty := py;
      tz := M.one ctx;
      tzz := M.one ctx;
      (F2.sub_el ctx xq px, f2one)
    end
    else begin
      let x = !tx and y = !ty and z = !tz and zz = !tzz in
      let u2 = M.mul ctx px zz in
      let s2 = M.mul ctx py (M.mul ctx z zz) in
      if M.equal u2 x then begin
        if M.equal s2 y then dbl_step ()
        else begin
          (* P = -T: the chord is the vertical through T; T + P = O *)
          let l = F2.sub_el ctx (F2.mul_el ctx xq zz) x in
          tz := M.zero ctx;
          (l, f2one)
        end
      end
      else begin
        let h = M.sub ctx u2 x in
        let hh = M.sqr ctx h in
        let i = M.mul_small ctx hh 4 in
        let j = M.mul ctx h i in
        let r = M.mul_small ctx (M.sub ctx s2 y) 2 in
        let v = M.mul ctx x i in
        let x3 = M.sub ctx (M.sub ctx (M.sqr ctx r) j) (M.mul_small ctx v 2) in
        let y3 = M.sub ctx (M.mul ctx r (M.sub ctx v x3)) (M.mul_small ctx (M.mul ctx y j) 2) in
        let z3 = M.sub ctx (M.sub ctx (M.sqr ctx (M.add ctx z h)) zz) hh in
        let zz3 = M.sqr ctx z3 in
        let l =
          F2.sub ctx
            (F2.mul_el ctx (F2.sub_el ctx yq py) z3)
            (F2.mul_el ctx (F2.sub_el ctx xq px) r)
        in
        let vline = F2.sub_el ctx (F2.mul_el ctx xq zz3) x3 in
        tx := x3;
        ty := y3;
        tz := z3;
        tzz := zz3;
        (l, vline)
      end
    end
  in
  (dbl_step, add_step)

let miller_fast (params : Params.t) a ~bx ~by =
  let ctx = Field.mont_ctx params.fp in
  let module F2 = Mont.F2 in
  let f2one = F2.one ctx in
  let dbl_step, add_step = miller_stepper params ctx ~f2one a ~bx ~by in
  let num = ref f2one and den = ref f2one in
  let mul_line target l = if l != f2one then target := F2.mul ctx !target l in
  let q = params.q in
  for i = Bigint.numbits q - 2 downto 0 do
    num := F2.sqr ctx !num;
    den := F2.sqr ctx !den;
    let l, v = dbl_step () in
    mul_line num l;
    mul_line den v;
    if Bigint.testbit q i then begin
      let l, v = add_step () in
      mul_line num l;
      mul_line den v
    end
  done;
  F2.mul ctx !num (F2.inv ctx !den)

let pair (params : Params.t) a b =
  match (a, b) with
  | Curve.Inf, _ | _, Curve.Inf -> invalid_arg "Pairing.pair: point at infinity"
  | Curve.Affine _, Curve.Affine { x = bx; y = by } ->
    let ctx = Field.mont_ctx params.fp in
    let f = miller_fast params a ~bx ~by in
    let g = Mont.F2.pow ctx f params.tate_exp in
    Fp2.make (Mont.to_bigint ctx g.Mont.F2.re) (Mont.to_bigint ctx g.Mont.F2.im)

(* ---- product of pairings ----

   Batch verification (Bls.verify_batch) needs Π e(a_i, b_i): run all the
   Miller loops in lockstep over one shared accumulator (the squarings are
   paid once per iteration, not once per pair) and apply the expensive
   final exponentiation to the product once. Valid because the final
   powering is a homomorphism of F_p²*. *)

let pair_product (params : Params.t) pairs =
  let ctx = Field.mont_ctx params.fp in
  let module F2 = Mont.F2 in
  let f2one = F2.one ctx in
  (* one stepper per pair, one shared accumulator: each loop iteration
     squares num/den once and multiplies in every pair's line factors, so
     the 2·numbits(q) accumulator squarings are paid once for the whole
     product instead of once per pair. Valid because each individual loop
     computes f_i ← f_i²·l_i, so the product F = Π f_i satisfies
     F ← F²·Π l_i. *)
  let steppers =
    List.map
      (fun (a, b) ->
        match (a, b) with
        | Curve.Inf, _ | _, Curve.Inf ->
          invalid_arg "Pairing.pair_product: point at infinity"
        | Curve.Affine _, Curve.Affine { x = bx; y = by } ->
          miller_stepper params ctx ~f2one a ~bx ~by)
      pairs
  in
  let num = ref f2one and den = ref f2one in
  let mul_line target l = if l != f2one then target := F2.mul ctx !target l in
  let q = params.q in
  for i = Bigint.numbits q - 2 downto 0 do
    num := F2.sqr ctx !num;
    den := F2.sqr ctx !den;
    List.iter
      (fun (dbl_step, add_step) ->
        let l, v = dbl_step () in
        mul_line num l;
        mul_line den v;
        if Bigint.testbit q i then begin
          let l, v = add_step () in
          mul_line num l;
          mul_line den v
        end)
      steppers
  done;
  let acc = F2.mul ctx !num (F2.inv ctx !den) in
  let g = F2.pow ctx acc params.tate_exp in
  Fp2.make (Mont.to_bigint ctx g.Mont.F2.re) (Mont.to_bigint ctx g.Mont.F2.im)

(* ---- fixed-argument pairing cache ----

   IBE encryption pairs every request against the same PKG master key, and
   BLS verification pairs against long-lived signer keys and the fixed
   generator, so within a round the same (a, b) pairs recur constantly.
   The memo is domain-local state inside the parameter set (params are
   process-wide singletons): each domain of the parallel pool fills its own
   cache, so lookups never contend and need no lock.  Bounded by FIFO
   eviction; correctness never depends on it, it is purely a latency
   lever. *)

let pair_cache_capacity = 512

let c_cache_hit = lazy (Tel.Counter.v Tel.default "pairing.cache_hits")
let c_cache_miss = lazy (Tel.Counter.v Tel.default "pairing.cache_misses")

let warmup (params : Params.t) =
  ignore (Lazy.force c_cache_hit);
  ignore (Lazy.force c_cache_miss);
  Params.force_tables params

let pair_cached (params : Params.t) a b =
  match (a, b) with
  | Curve.Inf, _ | _, Curve.Inf -> invalid_arg "Pairing.pair: point at infinity"
  | Curve.Affine _, Curve.Affine _ -> begin
    let fp = params.fp in
    let cache = Domain.DLS.get params.pair_cache in
    let key = Curve.to_bytes fp a ^ Curve.to_bytes fp b in
    match Hashtbl.find_opt cache.Params.pc_table key with
    | Some gt ->
      Tel.Counter.inc (Lazy.force c_cache_hit);
      gt
    | None ->
      Tel.Counter.inc (Lazy.force c_cache_miss);
      let gt = pair params a b in
      if Hashtbl.length cache.Params.pc_table >= pair_cache_capacity then begin
        match Queue.take_opt cache.Params.pc_fifo with
        | Some oldest ->
          Hashtbl.remove cache.Params.pc_table oldest;
          Events.log Events.default ~severity:Debug
            ~detail:(Printf.sprintf "capacity %d" pair_cache_capacity)
            "pairing.cache_evict"
        | None -> ()
      end;
      Hashtbl.replace cache.Params.pc_table key gt;
      Queue.push key cache.Params.pc_fifo;
      gt
  end

let gt_bytes (params : Params.t) el = Fp2.to_bytes params.fp el

let hash_to_group (params : Params.t) id =
  let fp = params.fp in
  let p = Field.modulus fp in
  let rec attempt ctr =
    if ctr > 255 then failwith "Pairing.hash_to_group: exhausted"
    else begin
      (* expand the identity to enough bytes for near-uniform y mod p *)
      let need = Field.element_bytes fp + 16 in
      let stream =
        Alpenhorn_crypto.Hmac.hkdf ~info:(Printf.sprintf "alpenhorn-h2g-%d" ctr) ~len:need id
      in
      let y = Bigint.rem (Bigint.of_bytes_be stream) p in
      let y2m1 = Field.sub fp (Field.sqr fp y) Bigint.one in
      if Field.is_zero y2m1 then attempt (ctr + 1)
      else begin
        let x = Field.cbrt fp y2m1 in
        let pt = Curve.Affine { x; y } in
        match Curve.mul fp params.cofactor pt with
        | Curve.Inf -> attempt (ctr + 1)
        | g -> g
      end
    end
  in
  attempt 0

let hash_to_scalar (params : Params.t) msg =
  let rec attempt ctr =
    if ctr > 255 then failwith "Pairing.hash_to_scalar: exhausted"
    else begin
      let need = (Bigint.numbits params.q + 7) / 8 + 16 in
      let stream =
        Alpenhorn_crypto.Hmac.hkdf ~info:(Printf.sprintf "alpenhorn-h2s-%d" ctr) ~len:need msg
      in
      let v = Bigint.rem (Bigint.of_bytes_be stream) params.q in
      if Bigint.is_zero v then attempt (ctr + 1) else v
    end
  in
  attempt 0
