(** Prime field [F_p] arithmetic.

    A {!t} is a field descriptor holding the modulus and precomputed
    constants (Barrett µ for reduction, square/cube-root exponents).
    Elements are plain {!Alpenhorn_bigint.Bigint.t} values kept in
    [[0, p)]; all operations take the descriptor explicitly.

    The Alpenhorn parameter family guarantees [p ≡ 11 (mod 12)], i.e.
    [p ≡ 3 (mod 4)] (so [-1] is a non-residue and square roots are a single
    exponentiation) and [p ≡ 2 (mod 3)] (so cubing is a bijection and cube
    roots are a single exponentiation — the Boneh-Franklin admissible
    encoding). *)

module Bigint = Alpenhorn_bigint.Bigint

type t

val create : Bigint.t -> t
(** @raise Invalid_argument if the modulus is not ≡ 11 (mod 12). *)

val modulus : t -> Bigint.t
val element_bytes : t -> int
(** Fixed serialized size of one element. *)

val mont_ctx : t -> Mont.ctx
(** The field's fixed-limb Montgomery kernel (built lazily on first use
    and shared thereafter) — the hot path under {!Curve.mul} and the
    Miller loop. *)

val reduce : t -> Bigint.t -> Bigint.t
(** Barrett reduction of any non-negative value < p²; falls back to general
    division otherwise (and for negative inputs). *)

val add : t -> Bigint.t -> Bigint.t -> Bigint.t
val sub : t -> Bigint.t -> Bigint.t -> Bigint.t
val neg : t -> Bigint.t -> Bigint.t
val mul : t -> Bigint.t -> Bigint.t -> Bigint.t
val sqr : t -> Bigint.t -> Bigint.t
val mul_int : t -> Bigint.t -> int -> Bigint.t
val inv : t -> Bigint.t -> Bigint.t
(** @raise Division_by_zero on zero. *)

val pow : t -> Bigint.t -> Bigint.t -> Bigint.t

val sqrt : t -> Bigint.t -> Bigint.t option
(** [Some r] with [r² = a], or [None] if [a] is a non-residue. *)

val cbrt : t -> Bigint.t -> Bigint.t
(** Unique cube root (cubing is a bijection since p ≡ 2 mod 3). *)

val is_zero : Bigint.t -> bool
val equal : Bigint.t -> Bigint.t -> bool

val to_bytes : t -> Bigint.t -> string
(** Fixed-width big-endian. *)

val of_bytes_opt : t -> string -> Bigint.t option
(** Total decoder: [None] if not canonical (≥ p or wrong width). Wire
    paths use this so attacker-controlled bytes surface as a decode
    failure, never an exception. *)

val of_bytes : t -> string -> Bigint.t
(** @raise Invalid_argument if not canonical (≥ p or wrong width). *)
