module Bigint = Alpenhorn_bigint.Bigint

type el = { re : Bigint.t; im : Bigint.t }

let zero = { re = Bigint.zero; im = Bigint.zero }
let one = { re = Bigint.one; im = Bigint.zero }
let make re im = { re; im }
let of_fp re = { re; im = Bigint.zero }

let equal a b = Bigint.equal a.re b.re && Bigint.equal a.im b.im
let is_zero a = Bigint.is_zero a.re && Bigint.is_zero a.im
let in_base_field a = Bigint.is_zero a.im

let add f a b = { re = Field.add f a.re b.re; im = Field.add f a.im b.im }
let sub f a b = { re = Field.sub f a.re b.re; im = Field.sub f a.im b.im }
let neg f a = { re = Field.neg f a.re; im = Field.neg f a.im }

let mul f a b =
  (* (a.re + a.im i)(b.re + b.im i), i² = -1, Karatsuba-style 3 mults *)
  let t0 = Field.mul f a.re b.re in
  let t1 = Field.mul f a.im b.im in
  let t2 = Field.mul f (Field.add f a.re a.im) (Field.add f b.re b.im) in
  { re = Field.sub f t0 t1; im = Field.sub f (Field.sub f t2 t0) t1 }

let sqr f a =
  (* (re² - im²) + 2·re·im·i *)
  let t0 = Field.mul f (Field.add f a.re a.im) (Field.sub f a.re a.im) in
  let t1 = Field.mul f a.re a.im in
  { re = t0; im = Field.add f t1 t1 }

let mul_fp f a c = { re = Field.mul f a.re c; im = Field.mul f a.im c }
let conj f a = { re = a.re; im = Field.neg f a.im }

let inv f a =
  let norm = Field.add f (Field.sqr f a.re) (Field.sqr f a.im) in
  let ninv = Field.inv f norm in
  { re = Field.mul f a.re ninv; im = Field.neg f (Field.mul f a.im ninv) }

let pow f base e =
  let nb = Bigint.numbits e in
  let acc = ref one and b = ref base in
  for i = 0 to nb - 1 do
    if Bigint.testbit e i then acc := mul f !acc !b;
    b := sqr f !b
  done;
  !acc

let to_bytes f a = Field.to_bytes f a.re ^ Field.to_bytes f a.im

let of_bytes f s =
  let n = Field.element_bytes f in
  if String.length s <> 2 * n then None
  else begin
    match (Field.of_bytes_opt f (String.sub s 0 n), Field.of_bytes_opt f (String.sub s n n)) with
    | Some re, Some im -> Some { re; im }
    | _ -> None
  end
