module Drbg = Alpenhorn_crypto.Drbg
module Util = Alpenhorn_crypto.Util
module Params = Alpenhorn_pairing.Params
module Curve = Alpenhorn_pairing.Curve
module Bls = Alpenhorn_bls.Bls
module Blind = Alpenhorn_bls.Blind
module Events = Alpenhorn_telemetry.Events

type issuer = {
  params : Params.t;
  sk : Bls.secret;
  pk : Bls.public;
  quota : int;
  issued : (string * int, int) Hashtbl.t; (* (user, day) -> count *)
}

let create_issuer params ~rng ~quota_per_day =
  if quota_per_day < 1 then invalid_arg "Ratelimit.create_issuer: quota";
  let sk, pk = Bls.keygen params rng in
  { params; sk; pk; quota = quota_per_day; issued = Hashtbl.create 256 }

let issuer_public t = t.pk

let issue t ~now ~user blinded =
  let day = now / 86_400 in
  let used = Option.value ~default:0 (Hashtbl.find_opt t.issued (user, day)) in
  if used >= t.quota then begin
    Events.log Events.default ~severity:Warn
      ~labels:[ ("user", user) ]
      ~detail:(Printf.sprintf "quota %d reached on day %d" t.quota day)
      "ratelimit.quota_exhausted";
    Error `Quota_exhausted
  end
  else begin
    Hashtbl.replace t.issued (user, day) (used + 1);
    Ok (Blind.sign_blinded t.params t.sk blinded)
  end

type token = { serial : string; signature : Bls.signature }

let serial_size = 16

let fresh_serial rng = Drbg.bytes rng serial_size

let token_size (params : Params.t) = serial_size + Curve.point_bytes params.fp

let token_bytes (params : Params.t) t =
  if String.length t.serial <> serial_size then invalid_arg "Ratelimit.token_bytes: serial";
  t.serial ^ Bls.signature_bytes params t.signature

let token_of_bytes (params : Params.t) s =
  if String.length s <> token_size params then None
  else begin
    match Bls.signature_of_bytes params (String.sub s serial_size (String.length s - serial_size)) with
    | None -> None
    | Some signature -> Some { serial = String.sub s 0 serial_size; signature }
  end

type gate = {
  gparams : Params.t;
  issuer_key : Bls.public;
  seen : (string, unit) Hashtbl.t;
  (* serials admitted since [begin_round]: the rollback journal. [None]
     outside any round scope — admissions are then immediately final. *)
  mutable journal : string list option;
}

let create_gate params ~issuer_key =
  { gparams = params; issuer_key; seen = Hashtbl.create 4096; journal = None }

let admit g t =
  if Hashtbl.mem g.seen t.serial then begin
    Events.log Events.default ~severity:Warn "ratelimit.double_spend";
    Error `Double_spend
  end
  else if not (Blind.verify g.gparams g.issuer_key ~msg:t.serial t.signature) then
    Error `Bad_signature
  else begin
    Hashtbl.replace g.seen t.serial ();
    (match g.journal with Some j -> g.journal <- Some (t.serial :: j) | None -> ());
    Ok ()
  end

let begin_round g =
  match g.journal with
  | Some _ -> invalid_arg "Ratelimit.begin_round: round already open"
  | None -> g.journal <- Some []

let commit_round g =
  match g.journal with
  | None -> invalid_arg "Ratelimit.commit_round: no open round"
  | Some _ -> g.journal <- None

let rollback_round g =
  match g.journal with
  | None -> invalid_arg "Ratelimit.rollback_round: no open round"
  | Some serials ->
    List.iter (Hashtbl.remove g.seen) serials;
    g.journal <- None;
    Events.log Events.default ~severity:Warn
      ~detail:(Printf.sprintf "%d admitted tokens un-spent after round abort" (List.length serials))
      "ratelimit.rollback";
    List.length serials

let spent_count g = Hashtbl.length g.seen

let _ = Util.to_hex (* silence unused-module warning if Util becomes unused *)
