module Sha256 = Alpenhorn_crypto.Sha256
module Util = Alpenhorn_crypto.Util

let of_identity email ~num_mailboxes =
  let d = Sha256.digest ("mailbox" ^ email) in
  (Util.read_be64 d 0 land max_int) mod num_mailboxes
