(** Onion encryption for mixnet requests (Algorithm 1, step 3).

    A client wraps its fixed-size request once per mixnet server, innermost
    layer for the last server. Each layer is an ephemeral-DH box: a fresh
    client keypair per layer per message, ChaCha20+HMAC payload under the
    shared secret with that server's {e per-round} public key. Server round
    keys are erased at the end of the round, which is what gives mixnet
    metadata its forward secrecy. *)

module Drbg = Alpenhorn_crypto.Drbg
module Params = Alpenhorn_pairing.Params

val layer_overhead : Params.t -> int
(** Bytes added per wrap: ephemeral public key + AEAD tag. *)

val wrap : Params.t -> Drbg.t -> server_pks:Alpenhorn_dh.Dh.public list -> string -> string
(** Wrap for the given chain, first server's layer outermost. *)

val unwrap : Params.t -> sk:Alpenhorn_dh.Dh.secret -> string -> string option
(** Strip one layer with the server's round secret. [None] if malformed or
    not encrypted to this key. *)
