(* Mailbox-to-shard partition for the §5.1 CDN download model: shards are
   contiguous prefix ranges of the mailbox space, so a shard id is a
   function of the recipient-ID hash alone and both ends (last mixnet
   server, downloading client) agree on it with no shared state. *)

type t = { num_shards : int; num_mailboxes : int }

let create ~num_shards ~num_mailboxes =
  if num_shards < 1 then invalid_arg "Shard.create: num_shards must be >= 1";
  if num_mailboxes < 1 then invalid_arg "Shard.create: num_mailboxes must be >= 1";
  if num_shards > num_mailboxes then
    invalid_arg "Shard.create: num_shards must be <= num_mailboxes";
  { num_shards; num_mailboxes }

let size t = t.num_shards
let num_mailboxes t = t.num_mailboxes

(* Contiguous partition of [0, K) into S near-equal ranges: mailbox m of
   shard [m * S / K]. Integer arithmetic only, monotone in m, exhaustive
   and non-overlapping (see the property suite). *)
let of_mailbox t mailbox =
  if mailbox < 0 || mailbox >= t.num_mailboxes then invalid_arg "Shard.of_mailbox: mailbox";
  mailbox * t.num_shards / t.num_mailboxes

let of_identity t email =
  of_mailbox t (Mailbox_id.of_identity email ~num_mailboxes:t.num_mailboxes)

(* [lo, hi) of the mailboxes shard s covers: the preimage of [of_mailbox].
   ceil(s * K / S) is the first mailbox mapping to s. *)
let mailbox_range t s =
  if s < 0 || s >= t.num_shards then invalid_arg "Shard.mailbox_range: shard";
  let lo = ((s * t.num_mailboxes) + t.num_shards - 1) / t.num_shards in
  let hi = (((s + 1) * t.num_mailboxes) + t.num_shards - 1) / t.num_shards in
  (lo, hi)
