(** Recipient-identity hashing to a mailbox id (§3.1 step 4): [H(email)
    mod K], the one address computation the submitting client, the last
    mixnet server and the downloading client must all agree on.  Factored
    out of {!Mailbox} so {!Shard} (the §5.1 CDN shard partition) can share
    the exact hash without a module cycle. *)

val of_identity : string -> num_mailboxes:int -> int
(** [H(email) mod K]. *)
