(** One mixnet server (Vuvuzela design, §6).

    Each round, a server: announces a fresh DH public key; receives a batch
    of onions; strips its layer; adds Laplace-distributed noise addressed to
    every mailbox (wrapped for the rest of the chain, so downstream servers
    cannot tell noise from real traffic); applies a secret uniformly random
    permutation; and forwards. At the end of the round the server erases its
    round secret key — the forward-secrecy step.

    Anytrust: as long as one server's permutation and round key stay secret,
    the adversary cannot link an entering onion to an exiting payload. *)

module Drbg = Alpenhorn_crypto.Drbg
module Params = Alpenhorn_pairing.Params

type t

type noise_body = mailbox:int -> string
(** Generator for one noise message body destined to [mailbox]. *)

val create : Params.t -> rng:Drbg.t -> position:int -> chain_length:int -> t
(** [position] is 0-based within the chain. *)

val position : t -> int

(** {2 Fault injection (DESIGN.md §10)} *)

val crash : t -> unit
(** Take the server down: it refuses to process until {!restart}, and its
    round key is erased immediately so an aborted round can never resume
    with stale keys (anytrust failure mode, §4.5). Idempotent. *)

val restart : t -> unit
(** Bring a crashed server back. It has no round key until the next
    {!new_round}. Idempotent. *)

val is_down : t -> bool

val new_round : t -> Alpenhorn_dh.Dh.public
(** Rotate the round keypair and return the public half.
    @raise Invalid_argument if the server is down. *)

val round_public : t -> Alpenhorn_dh.Dh.public option

val process :
  t ->
  downstream_pks:Alpenhorn_dh.Dh.public list ->
  noise_mu:float ->
  laplace_b:float ->
  num_mailboxes:int ->
  noise_body:noise_body ->
  string array ->
  string array * int
(** Unwrap, add noise, shuffle. [downstream_pks] are the round keys of the
    servers after this one (empty for the last). Returns the outgoing batch
    and the number of noise messages added. Onions that fail to decrypt are
    dropped (client DoS resilience, §3.3) and logged as a
    [mix.decode_failure] event. *)

val process_traced :
  t ->
  downstream_pks:Alpenhorn_dh.Dh.public list ->
  noise_mu:float ->
  laplace_b:float ->
  num_mailboxes:int ->
  noise_body:noise_body ->
  ?tracer:Alpenhorn_telemetry.Trace.t ->
  (string * Alpenhorn_telemetry.Trace.ctx option) array ->
  (string * Alpenhorn_telemetry.Trace.ctx option) array * int
(** Like {!process}, but each onion carries an optional trace context
    {e out of band} — an OCaml value riding alongside the wire bytes, never
    serialized into them (DESIGN.md §9). A sampled message gets a [mix.hop]
    span at this server and its child context follows the unwrapped inner
    onion into the output. Noise entries carry no context. The DRBG stream
    (noise sampling, onion wrapping, shuffle) is identical to {!process},
    so wire bytes are unchanged whether or not tracing is enabled. *)

val end_round : t -> unit
(** Erase the round secret key. [process] after [end_round] raises. *)
