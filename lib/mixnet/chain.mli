(** Whole-chain round orchestration: announce keys, run every server's
    unwrap/noise/shuffle pass in order, distribute into mailboxes.

    This is the in-process deployment used by examples, tests and
    small-scale end-to-end benchmarks; the discrete-event simulator drives
    the same {!Server} objects with explicit timing instead. *)

module Drbg = Alpenhorn_crypto.Drbg
module Params = Alpenhorn_pairing.Params

type t

type stats = {
  real_in : int;  (** onions submitted by clients *)
  noise_added : int;  (** total noise messages across servers *)
  dropped : int;  (** cover traffic + undecryptable *)
  num_mailboxes : int;
}

exception Aborted of { server : int }
(** Raised by {!run_round} / {!run_round_traced} when a server is down:
    the anytrust design (§4.5) cannot complete a round without every
    server, so the round aborts {e cleanly} — all per-round keys erased,
    no mailbox published (not even partially), a severity-[Error]
    [mix.round_abort] event logged — and the caller re-runs it after
    backoff ({!Alpenhorn_core.Deployment} owns that retry loop). *)

val create : Params.t -> rng:Drbg.t -> chain_length:int -> t
val chain_length : t -> int
val servers : t -> Server.t array

(** {2 Fault injection (DESIGN.md §10)} *)

val crash_server : t -> server:int -> unit
(** {!Server.crash} by chain position: the next (or current) round run
    raises {!Aborted}. @raise Invalid_argument on a bad index. *)

val restart_server : t -> server:int -> unit
val server_down : t -> server:int -> bool

val abort_round : t -> unit
(** Erase every server's round key without processing anything — the
    explicit form of the cleanup {!Aborted} performs. Idempotent. *)

val begin_round : t -> Alpenhorn_dh.Dh.public list
(** Rotate every server's round key; returns the public keys, in chain
    order, for clients to onion-wrap against. *)

val round_pks : t -> Alpenhorn_dh.Dh.public list

val run_round :
  t ->
  mode:[ `AddFriend | `Dialing ] ->
  noise_mu:float ->
  laplace_b:float ->
  num_mailboxes:int ->
  noise_body:Server.noise_body ->
  string array ->
  Mailbox.t * stats
(** Process one batch end-to-end and erase all round keys.
    @raise Aborted when any server is down. *)

val run_round_sharded :
  t ->
  mode:[ `AddFriend | `Dialing ] ->
  noise_mu:float ->
  laplace_b:float ->
  shard:Shard.t ->
  noise_body:Server.noise_body ->
  string array ->
  Mailbox.sharded * stats
(** Like {!run_round} but the last hop distributes into contiguous
    mailbox-range shards ({!Mailbox.distribute_sharded}, §5.1) instead of
    individual mailboxes. Shares the entire mix pipeline with
    {!run_round}, so the final payloads — and therefore the dial tokens —
    are byte-identical to the unsharded path on the same inputs.
    @raise Aborted when any server is down. *)

val run_round_traced :
  t ->
  mode:[ `AddFriend | `Dialing ] ->
  noise_mu:float ->
  laplace_b:float ->
  num_mailboxes:int ->
  noise_body:Server.noise_body ->
  ?tracer:Alpenhorn_telemetry.Trace.t ->
  (string * Alpenhorn_telemetry.Trace.ctx option) array ->
  Mailbox.t * stats * (int * Alpenhorn_telemetry.Trace.ctx) list
(** Like {!run_round} but each submission carries an optional out-of-band
    trace context (see {!Server.process_traced}; contexts never touch the
    wire). Returns additionally the traced payloads that survived to a
    mailbox, as [(mailbox, ctx)] pairs whose [ctx] is the [mailbox.publish]
    span — parent for the recipient's [client.scan]. *)
