(** Bounded streaming writer for round state.

    Mailbox contents at million-user scale must not be materialized on the
    heap as one blob per round; they are streamed through a fixed-capacity
    buffer to a caller-supplied sink (a socket, a file, a counter).  The
    writer holds at most [capacity] bytes at any instant — {!peak_buffered}
    reports the high-water mark so tests and the scale SLO can assert the
    bound.

    Records framed with {!write_record} (u32be length + body) round-trip
    through {!iter_records}/{!fold_records}; that is the wire framing of
    sharded plain (add-friend) mailboxes. *)

type sink = bytes -> int -> int -> unit
(** [sink buf pos len] consumes [len] bytes of [buf] starting at [pos].
    The bytes are only valid during the call. *)

type t

val default_capacity : int
(** 64 KiB. *)

val create : ?capacity:int -> sink -> t
(** @raise Invalid_argument when [capacity < 8]. *)

val capacity : t -> int

val write : t -> string -> unit
(** Append [s], flushing to the sink whenever the buffer fills; input
    larger than the capacity is cut into capacity-sized flushes. *)

val write_sub : t -> string -> int -> int -> unit
(** [write_sub t s pos len] appends the slice [s[pos, pos+len)].
    @raise Invalid_argument on out-of-bounds slices. *)

val write_record : t -> string -> unit
(** Append a u32be length prefix followed by the body. *)

val flush : t -> unit
(** Push any buffered bytes to the sink. *)

val written : t -> int
(** Total bytes handed to the sink so far (excludes still-buffered bytes). *)

val buffered : t -> int
(** Bytes currently buffered, awaiting flush. *)

val peak_buffered : t -> int
(** High-water mark of {!buffered} — always [<= capacity]. *)

val iter_records : string -> (string -> unit) -> bool
(** Decode a concatenation of {!write_record} frames, calling [f] per body
    in order. Returns [false] when the blob is truncated or malformed
    (bodies before the corruption point are still delivered). *)

val fold_records : string -> ('a -> string -> 'a) -> 'a -> 'a * bool
(** Fold over record bodies; the boolean is {!iter_records}'s validity. *)

val counting_sink : unit -> sink * (unit -> int)
(** A sink that discards bytes but counts them — sizing passes and
    benchmarks that only need volume, not content. *)

val buffer_sink : Buffer.t -> sink
(** A sink appending into a [Buffer.t], for tests and small rounds. *)
