module Util = Alpenhorn_crypto.Util

let cover = 0xFFFFFFF
let overhead = 4

let encode ~mailbox body =
  if mailbox < 0 || mailbox > cover then invalid_arg "Payload.encode: mailbox";
  Util.be32 mailbox ^ body

let decode s =
  if String.length s < overhead then None
  else Some (Util.read_be32 s 0, String.sub s overhead (String.length s - overhead))

let mailbox s = if String.length s < overhead then None else Some (Util.read_be32 s 0)
