module Drbg = Alpenhorn_crypto.Drbg
module Params = Alpenhorn_pairing.Params
module Dh = Alpenhorn_dh.Dh
module Tel = Alpenhorn_telemetry.Telemetry
module Trace = Alpenhorn_telemetry.Trace
module Events = Alpenhorn_telemetry.Events
module Parallel = Alpenhorn_parallel.Parallel

(* Per-server metric handles, resolved once at construction so the round
   hot path never touches the registry (DESIGN.md §7). *)
type tel = {
  c_in : Tel.Counter.t;
  c_out : Tel.Counter.t;
  c_dropped : Tel.Counter.t;
  c_noise : Tel.Counter.t;
  h_unwrap : Tel.Histogram.t;
  h_noise_gen : Tel.Histogram.t;
  h_batch : Tel.Histogram.t;
}

type t = {
  params : Params.t;
  rng : Drbg.t;
  pos : int;
  chain_length : int;
  mutable round_key : (Dh.secret * Dh.public) option;
  mutable down : bool;
  tel : tel;
}

type noise_body = mailbox:int -> string

let create params ~rng ~position ~chain_length =
  if position < 0 || position >= chain_length then invalid_arg "Server.create: position";
  let labels = [ ("server", string_of_int position) ] in
  let tel =
    {
      c_in = Tel.Counter.v Tel.default ~labels "mix.onions_in";
      c_out = Tel.Counter.v Tel.default ~labels "mix.onions_out";
      c_dropped = Tel.Counter.v Tel.default ~labels "mix.onions_dropped";
      c_noise = Tel.Counter.v Tel.default ~labels "mix.noise_generated";
      h_unwrap = Tel.Histogram.v Tel.default ~labels "mix.unwrap_seconds";
      h_noise_gen = Tel.Histogram.v Tel.default ~labels "mix.noise_seconds";
      h_batch = Tel.Histogram.v Tel.default ~labels "mix.batch_size";
    }
  in
  { params; rng; pos = position; chain_length; round_key = None; down = false; tel }

let position t = t.pos

(* Crash/restart model the anytrust failure mode (§4.5): a down server
   refuses to process; its round key is dropped immediately so an aborted
   round can never be resumed with stale keys. *)
let crash t =
  t.down <- true;
  t.round_key <- None

let restart t = t.down <- false
let is_down t = t.down

let new_round t =
  if t.down then invalid_arg "Server.new_round: server is down";
  let kp = Dh.keygen t.params t.rng in
  t.round_key <- Some kp;
  snd kp

let round_public t = Option.map snd t.round_key

let sample_noise_count rng ~mu ~b =
  let x = Drbg.laplace rng ~mu ~b in
  let n = int_of_float (Float.round x) in
  if n < 0 then 0 else n

(* The traced variant carries an optional per-message trace context
   ALONGSIDE each onion — an OCaml value, never serialized — so a sampled
   message's hop can be recorded and its child context handed to the next
   server. Tracing draws no protocol randomness and adds no bytes: the
   onion processing, noise generation and shuffle consume exactly the same
   DRBG stream as the untraced path (byte-identity enforced by test). *)
let process_traced t ~downstream_pks ~noise_mu ~laplace_b ~num_mailboxes ~noise_body ?tracer
    batch =
  let sk =
    match t.round_key with
    | None -> invalid_arg "Server.process: no round key (call new_round)"
    | Some (sk, _) -> sk
  in
  Tel.Counter.add t.tel.c_in (Array.length batch);
  Tel.Histogram.observe t.tel.h_batch (float_of_int (Array.length batch));
  let t0 = Tel.now Tel.default in
  (* The unwrap of each onion is independent and draws no randomness, so it
     fans out across the domain pool; order is preserved, and the
     randomness-consuming phases below (noise, shuffle) stay sequential, so
     every pool size produces the same output as the 1-domain path. *)
  let pool = Parallel.get () in
  if Parallel.size pool > 1 then Params.force_tables t.params;
  let inners = Parallel.map pool (fun (onion, _) -> Onion.unwrap t.params ~sk onion) batch in
  let unwrapped =
    Array.to_list (Array.mapi (fun i (_, ctx) -> (inners.(i), ctx)) batch)
    |> List.filter_map (fun (inner, ctx) -> Option.map (fun x -> (x, ctx)) inner)
  in
  let t_unwrapped = Tel.now Tel.default in
  Tel.Histogram.observe t.tel.h_unwrap (t_unwrapped -. t0);
  let dropped = Array.length batch - List.length unwrapped in
  Tel.Counter.add t.tel.c_dropped dropped;
  if dropped > 0 then
    Events.log Events.default ~severity:Warn
      ~labels:[ ("server", string_of_int t.pos) ]
      ~detail:(Printf.sprintf "%d onions failed to decrypt" dropped)
      "mix.decode_failure";
  let unwrapped =
    match tracer with
    | None -> unwrapped
    | Some tr ->
      List.map
        (fun (inner, ctx) ->
          match ctx with
          | None -> (inner, None)
          | Some c ->
            let hop = Trace.child tr c in
            Trace.emit tr hop
              ~labels:[ ("server", string_of_int t.pos) ]
              ~name:"mix.hop" ~ts:t0 ~dur:(t_unwrapped -. t0) ();
            (inner, Some hop))
        unwrapped
  in
  (* Noise for every real mailbox, wrapped for the rest of the chain so the
     next servers cannot distinguish it from client traffic. *)
  let t1 = Tel.now Tel.default in
  let noise = ref [] and noise_count = ref 0 in
  for mailbox = 0 to num_mailboxes - 1 do
    let n = sample_noise_count t.rng ~mu:noise_mu ~b:laplace_b in
    noise_count := !noise_count + n;
    for _ = 1 to n do
      let payload = Payload.encode ~mailbox (noise_body ~mailbox) in
      let wrapped = Onion.wrap t.params t.rng ~server_pks:downstream_pks payload in
      noise := (wrapped, None) :: !noise
    done
  done;
  Tel.Histogram.observe t.tel.h_noise_gen (Tel.now Tel.default -. t1);
  Tel.Counter.add t.tel.c_noise !noise_count;
  let out = Array.of_list (List.rev_append !noise unwrapped) in
  Drbg.shuffle t.rng out;
  Tel.Counter.add t.tel.c_out (Array.length out);
  (out, !noise_count)

let process t ~downstream_pks ~noise_mu ~laplace_b ~num_mailboxes ~noise_body batch =
  let out, noise_count =
    process_traced t ~downstream_pks ~noise_mu ~laplace_b ~num_mailboxes ~noise_body
      (Array.map (fun onion -> (onion, None)) batch)
  in
  (Array.map fst out, noise_count)

let end_round t = t.round_key <- None
