(* Bounded streaming writer: mailbox contents flow through a fixed-size
   buffer to a sink instead of being materialized per round. The writer
   never holds more than [capacity] bytes; anything larger is cut into
   capacity-sized flushes, so peak heap per round is O(capacity), not
   O(round). *)

type sink = bytes -> int -> int -> unit

type t = {
  sink : sink;
  buf : Bytes.t;
  mutable fill : int;
  mutable written : int;
  mutable peak : int;
}

let default_capacity = 1 lsl 16

let create ?(capacity = default_capacity) sink =
  if capacity < 8 then invalid_arg "Stream_writer.create: capacity must be >= 8";
  { sink; buf = Bytes.create capacity; fill = 0; written = 0; peak = 0 }

let capacity t = Bytes.length t.buf
let written t = t.written
let buffered t = t.fill
let peak_buffered t = t.peak

let flush t =
  if t.fill > 0 then begin
    t.sink t.buf 0 t.fill;
    t.written <- t.written + t.fill;
    t.fill <- 0
  end

let write_sub t src pos len =
  if pos < 0 || len < 0 || pos + len > String.length src then
    invalid_arg "Stream_writer.write_sub";
  let cap = Bytes.length t.buf in
  let pos = ref pos and remaining = ref len in
  while !remaining > 0 do
    if t.fill = cap then flush t;
    let chunk = Stdlib.min !remaining (cap - t.fill) in
    Bytes.blit_string src !pos t.buf t.fill chunk;
    t.fill <- t.fill + chunk;
    if t.fill > t.peak then t.peak <- t.fill;
    pos := !pos + chunk;
    remaining := !remaining - chunk
  done

let write t s = write_sub t s 0 (String.length s)

(* Length-prefixed records (u32be + body): the framing the sharded plain
   mailboxes stream through, total to decode. *)

let write_record t body =
  let n = String.length body in
  let hdr = Bytes.create 4 in
  Bytes.set hdr 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set hdr 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set hdr 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set hdr 3 (Char.chr (n land 0xff));
  write t (Bytes.unsafe_to_string hdr);
  write t body

let iter_records blob f =
  let len = String.length blob in
  let pos = ref 0 in
  let ok = ref true in
  while !ok && !pos < len do
    if len - !pos < 4 then ok := false
    else begin
      let n =
        (Char.code blob.[!pos] lsl 24)
        lor (Char.code blob.[!pos + 1] lsl 16)
        lor (Char.code blob.[!pos + 2] lsl 8)
        lor Char.code blob.[!pos + 3]
      in
      if n < 0 || len - !pos - 4 < n then ok := false
      else begin
        f (String.sub blob (!pos + 4) n);
        pos := !pos + 4 + n
      end
    end
  done;
  !ok && !pos = len

let fold_records blob f acc =
  let acc = ref acc in
  let ok = iter_records blob (fun r -> acc := f !acc r) in
  (!acc, ok)

(* Convenience sinks. *)

let counting_sink () =
  let count = ref 0 in
  ((fun _ _ len -> count := !count + len), fun () -> !count)

let buffer_sink buffer : sink = fun buf pos len -> Buffer.add_subbytes buffer buf pos len
