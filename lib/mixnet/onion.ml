module Drbg = Alpenhorn_crypto.Drbg
module Aead = Alpenhorn_crypto.Aead
module Params = Alpenhorn_pairing.Params
module Dh = Alpenhorn_dh.Dh

let zero_nonce = String.make 12 '\000'

let layer_overhead (params : Params.t) = Dh.public_size params + Aead.overhead

let wrap_one (params : Params.t) rng ~server_pk body =
  let esk, epk = Dh.keygen params rng in
  let key = Dh.shared_secret params esk server_pk in
  Dh.public_bytes params epk ^ Aead.seal ~key ~nonce:zero_nonce body

let wrap (params : Params.t) rng ~server_pks body =
  List.fold_left (fun acc pk -> wrap_one params rng ~server_pk:pk acc) body (List.rev server_pks)

let unwrap (params : Params.t) ~sk msg =
  let pklen = Dh.public_size params in
  if String.length msg < pklen + Aead.overhead then None
  else begin
    match Dh.public_of_bytes params (String.sub msg 0 pklen) with
    | None -> None
    | Some epk ->
      let key = Dh.shared_secret params sk epk in
      Aead.open_ ~key ~nonce:zero_nonce (String.sub msg pklen (String.length msg - pklen))
  end
