(** Mailbox distribution at the end of the mixnet chain (§3.1 steps 3-4).

    The last server groups payloads by mailbox id. Add-friend mailboxes
    hold the raw encrypted requests; dialing mailboxes are packed into
    Bloom filters (§5.2). Clients fetch the mailbox [H(email) mod K].

    Mailbox-count policy (§6): keep real traffic and noise roughly balanced,
    i.e. [K ≈ expected_real / (µ · chain_length)], clamped to at least 1. *)

type t =
  | Plain of string list array  (** add-friend: one list of ciphertexts per mailbox *)
  | Filters of Alpenhorn_bloom.Bloom.t array  (** dialing: one Bloom filter per mailbox *)

val num_mailboxes_for : expected_real:int -> noise_mu:float -> chain_length:int -> int

val mailbox_of_identity : string -> num_mailboxes:int -> int
(** [H(email) mod K]. *)

val distribute : num_mailboxes:int -> mode:[ `AddFriend | `Dialing ] -> string array -> t * int
(** Split final payloads into mailboxes; cover traffic and out-of-range ids
    are dropped. Returns the mailboxes and the number of dropped
    messages. *)

val size_bytes : t -> int array
(** Download size of each mailbox as the client sees it. *)

val plain_exn : t -> string list array
val filters_exn : t -> Alpenhorn_bloom.Bloom.t array

(** {2 Sharded distribution (§5.1 CDN model)}

    At million-user scale a client downloads one {e shard} — a contiguous
    prefix range of mailbox ids ({!Shard}) — instead of one mailbox.
    Distribution runs a counting sort over flat int buffers (no
    per-mailbox lists) and builds each shard on the domain pool. *)

type sharded =
  | Plain_shards of string array
      (** add-friend: per shard, a {!Stream_writer} blob of length-prefixed
          records; each record body is a full payload (mailbox header
          included) so clients filter for their own mailbox locally *)
  | Filter_shards of Alpenhorn_bloom.Bloom.t array
      (** dialing: per shard, one Bloom filter over every dial token whose
          mailbox falls in the shard's range *)

val distribute_sharded :
  shard:Shard.t -> mode:[ `AddFriend | `Dialing ] -> string array -> sharded * int
(** Sharded counterpart of {!distribute}: same drop rules, and dial tokens
    are hashed from exactly the same bytes as the unsharded path
    (regression-tested byte-for-byte). Returns the shards and the number
    of dropped messages. *)

val sharded_size_bytes : sharded -> int array
(** Download size of each shard as the client sees it. *)

val plain_shards_exn : sharded -> string array
val filter_shards_exn : sharded -> Alpenhorn_bloom.Bloom.t array
