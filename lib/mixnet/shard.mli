(** Mailbox-to-shard partition for the §5.1 CDN download model.

    At million-user scale a client must not download a whole round: dials
    are grouped into [num_shards] shards, each a contiguous prefix range of
    the mailbox space, and a client fetches only the shard containing its
    own mailbox [H(email) mod K] ({!Mailbox_id}).  The shard id is a pure
    function of the recipient identity, so the last mixnet server (packing
    per-shard Bloom filters) and the downloading client need no shared
    state beyond these two integers.

    Partition contract (property-tested): every mailbox belongs to exactly
    one shard, {!mailbox_range}s are non-overlapping and exhaustive, and
    [of_mailbox] is monotone — shard [s] covers mailboxes
    [ceil(s*K/S), ceil((s+1)*K/S)). *)

type t
(** A shard partition: [num_shards] over [num_mailboxes]. *)

val create : num_shards:int -> num_mailboxes:int -> t
(** @raise Invalid_argument unless [1 <= num_shards <= num_mailboxes]. *)

val size : t -> int
(** Number of shards. *)

val num_mailboxes : t -> int

val of_mailbox : t -> int -> int
(** Shard of mailbox [m]: [m * S / K].
    @raise Invalid_argument when [m] is outside [0, K). *)

val of_identity : t -> string -> int
(** Shard of a recipient: [of_mailbox] of [H(email) mod K]. *)

val mailbox_range : t -> int -> int * int
(** [mailbox_range t s] is the half-open mailbox interval [lo, hi) shard
    [s] covers; never empty, since [S <= K].
    @raise Invalid_argument when [s] is outside [0, S). *)
