(** Rate-limited mixnet admission via blind signatures (paper §9).

    A malicious swarm of clients could fill mailboxes with real (non-cover)
    requests every round, forcing the mixnet to create extra mailboxes and
    inflating server cost. The paper's mitigation: servers issue each
    registered user a bounded number of blinded signatures per day; every
    submission must carry a fresh unblinded token or be rejected. Because
    the signatures are blind, the entry server cannot link a spent token to
    its issuance — no metadata leaks.

    {!issuer} enforces the per-user daily quota; {!gate} verifies tokens
    and rejects double-spends. *)

module Drbg = Alpenhorn_crypto.Drbg
module Params = Alpenhorn_pairing.Params
module Bls = Alpenhorn_bls.Bls

(** {1 Issuance (runs next to the PKGs, per registered user)} *)

type issuer

val create_issuer : Params.t -> rng:Drbg.t -> quota_per_day:int -> issuer
val issuer_public : issuer -> Bls.public

val issue :
  issuer -> now:int -> user:string -> Alpenhorn_bls.Blind.blinded -> (Alpenhorn_pairing.Curve.point, [ `Quota_exhausted ]) result
(** Sign one blinded serial for [user]; at most [quota_per_day] per user
    per UTC day. *)

(** {1 Tokens (client side)} *)

type token = { serial : string; signature : Bls.signature }

val fresh_serial : Drbg.t -> string
val token_bytes : Params.t -> token -> string
val token_of_bytes : Params.t -> string -> token option
val token_size : Params.t -> int

(** {1 Admission (runs on the entry/first mixnet server)} *)

type gate

val create_gate : Params.t -> issuer_key:Bls.public -> gate

val admit : gate -> token -> (unit, [ `Bad_signature | `Double_spend ]) result
(** Accept a token once: valid signature on an unseen serial. Inside a
    {!begin_round} scope the admission is provisional until
    {!commit_round}; outside any scope it is immediately final. *)

(** {2 Round scoping (DESIGN.md §10)}

    A mixnet round can abort after the entry server has already admitted
    tokens (anytrust: any server crash kills the round). Those
    submissions never reached a mailbox, so their serials must become
    spendable again — otherwise the client's retry is rejected as a
    double-spend and the token is silently burned. The gate therefore
    journals admissions per round: {!begin_round} opens the journal,
    {!commit_round} finalizes it, {!rollback_round} un-spends every
    serial admitted since {!begin_round}. *)

val begin_round : gate -> unit
(** Open a round scope. @raise Invalid_argument if one is already open. *)

val commit_round : gate -> unit
(** Finalize the open scope: admissions become permanent.
    @raise Invalid_argument if no scope is open. *)

val rollback_round : gate -> int
(** Un-spend every serial admitted in the open scope and close it;
    returns how many were rolled back (logged as a [ratelimit.rollback]
    event). @raise Invalid_argument if no scope is open. *)

val spent_count : gate -> int
