module Drbg = Alpenhorn_crypto.Drbg
module Params = Alpenhorn_pairing.Params
module Dh = Alpenhorn_dh.Dh
module Tel = Alpenhorn_telemetry.Telemetry
module Trace = Alpenhorn_telemetry.Trace

module Events = Alpenhorn_telemetry.Events
module Parallel = Alpenhorn_parallel.Parallel

type t = { params : Params.t; servers : Server.t array }

type stats = { real_in : int; noise_added : int; dropped : int; num_mailboxes : int }

exception Aborted of { server : int }

let create params ~rng ~chain_length =
  if chain_length < 1 then invalid_arg "Chain.create: length";
  let servers =
    Array.init chain_length (fun i ->
        Server.create params
          ~rng:(Drbg.derive rng (Printf.sprintf "mix-server-%d" i))
          ~position:i ~chain_length)
  in
  { params; servers }

let chain_length t = Array.length t.servers
let servers t = t.servers

let check_server t ~server =
  if server < 0 || server >= Array.length t.servers then invalid_arg "Chain: server index"

let crash_server t ~server =
  check_server t ~server;
  Server.crash t.servers.(server)

let restart_server t ~server =
  check_server t ~server;
  Server.restart t.servers.(server)

let server_down t ~server =
  check_server t ~server;
  Server.is_down t.servers.(server)

let abort_round t = Array.iter Server.end_round t.servers

let begin_round t = Array.to_list (Array.map Server.new_round t.servers)

let round_pks t =
  Array.to_list t.servers
  |> List.map (fun s ->
         match Server.round_public s with
         | Some pk -> pk
         | None -> invalid_arg "Chain.round_pks: round not started")

(* The mix pipeline shared by the unsharded and sharded round runners:
   abort checks, the per-hop unwrap/noise/shuffle passes, key erasure, and
   the traced-publish bookkeeping. Distribution into mailboxes (or shards)
   happens on the result, so both runners emit byte-identical final
   payloads for the same inputs. *)
let run_pipeline t ~noise_mu ~laplace_b ~num_mailboxes ~noise_body ?tracer batch =
  let n = Array.length t.servers in
  (* Anytrust: one dead server kills the round. Abort cleanly — every
     per-round key is erased, nothing reaches a mailbox (no partial
     publish) — and let the caller re-run after backoff. *)
  let abort server =
    abort_round t;
    Events.log Events.default ~severity:Error
      ~labels:[ ("server", string_of_int server) ]
      ~detail:"server down mid-round; round keys erased, no mailboxes published"
      "mix.round_abort";
    raise (Aborted { server })
  in
  Array.iteri (fun i s -> if Server.is_down s then abort i) t.servers;
  (* Force shared lazy tables before the per-hop unwraps fan out to the
     domain pool (each hop's Server.process_traced parallelizes its
     batch). *)
  if Parallel.size (Parallel.get ()) > 1 then Params.force_tables t.params;
  let pks = Array.of_list (round_pks t) in
  let total_noise = ref 0 in
  let current = ref batch in
  for i = 0 to n - 1 do
    (* re-checked per hop: a server can die mid-round (e.g. from a
       noise_body callback in the chaos tests) *)
    if Server.is_down t.servers.(i) then abort i;
    let downstream_pks = Array.to_list (Array.sub pks (i + 1) (n - i - 1)) in
    let out, noise =
      Tel.Span.with_ Tel.default
        ~labels:[ ("server", string_of_int i) ]
        "mix.server_process"
        (fun () ->
          Server.process_traced t.servers.(i) ~downstream_pks ~noise_mu ~laplace_b
            ~num_mailboxes ~noise_body ?tracer !current)
    in
    total_noise := !total_noise + noise;
    current := out
  done;
  Array.iter Server.end_round t.servers;
  (* A traced payload that survived the whole chain lands in a mailbox:
     record the publish hop and hand back (mailbox, ctx) so the caller
     can stitch the recipient's scan onto the same trace. *)
  let published =
    match tracer with
    | None -> []
    | Some tr ->
      Array.to_list !current
      |> List.filter_map (fun (payload, ctx) ->
             match ctx with
             | None -> None
             | Some c -> (
               match Payload.decode payload with
               | Some (mb, _) when mb >= 0 && mb < num_mailboxes ->
                 let child = Trace.child tr c in
                 let now = Tel.now Tel.default in
                 Trace.emit tr child
                   ~labels:[ ("mailbox", string_of_int mb) ]
                   ~name:"mailbox.publish" ~ts:now ~dur:0.0 ();
                 Some (mb, child)
               | Some _ | None -> None))
  in
  (Array.map fst !current, !total_noise, published)

let run_round_traced t ~mode ~noise_mu ~laplace_b ~num_mailboxes ~noise_body ?tracer batch =
  Tel.Span.with_ Tel.default "mix.round" (fun () ->
      Tel.Counter.inc (Tel.Counter.v Tel.default "mix.rounds");
      let final, noise_added, published =
        run_pipeline t ~noise_mu ~laplace_b ~num_mailboxes ~noise_body ?tracer batch
      in
      let mailboxes, dropped = Mailbox.distribute ~num_mailboxes ~mode final in
      ( mailboxes,
        { real_in = Array.length batch; noise_added; dropped; num_mailboxes },
        published ))

let run_round_sharded t ~mode ~noise_mu ~laplace_b ~shard ~noise_body batch =
  Tel.Span.with_ Tel.default "mix.round" (fun () ->
      Tel.Counter.inc (Tel.Counter.v Tel.default "mix.rounds");
      let num_mailboxes = Shard.num_mailboxes shard in
      let final, noise_added, _ =
        run_pipeline t ~noise_mu ~laplace_b ~num_mailboxes ~noise_body
          (Array.map (fun onion -> (onion, None)) batch)
      in
      let shards, dropped = Mailbox.distribute_sharded ~shard ~mode final in
      (shards, { real_in = Array.length batch; noise_added; dropped; num_mailboxes }))

let run_round t ~mode ~noise_mu ~laplace_b ~num_mailboxes ~noise_body batch =
  let mailboxes, stats, _ =
    run_round_traced t ~mode ~noise_mu ~laplace_b ~num_mailboxes ~noise_body
      (Array.map (fun onion -> (onion, None)) batch)
  in
  (mailboxes, stats)
