(** Innermost mixnet payload: destination mailbox id + body (§3.1 step 3).

    The mailbox id is in the clear {e inside} all onion layers, so only the
    last mixnet server sees it. The special id {!cover} marks cover traffic,
    which the last server drops without further processing. *)

val cover : int
(** Mailbox id reserved for cover traffic. *)

val encode : mailbox:int -> string -> string
val decode : string -> (int * string) option

val mailbox : string -> int option
(** Header-only peek at the mailbox id — no body substring. The sharded
    distribution's counting pass classifies millions of payloads with this
    before touching any body bytes. *)

val overhead : int
