module Sha256 = Alpenhorn_crypto.Sha256
module Util = Alpenhorn_crypto.Util
module Bloom = Alpenhorn_bloom.Bloom

type t = Plain of string list array | Filters of Bloom.t array

let num_mailboxes_for ~expected_real ~noise_mu ~chain_length =
  let per_mailbox = noise_mu *. float_of_int chain_length in
  Stdlib.max 1 (int_of_float (Float.round (float_of_int expected_real /. per_mailbox)))

let mailbox_of_identity email ~num_mailboxes =
  let d = Sha256.digest ("mailbox" ^ email) in
  (Util.read_be64 d 0 land max_int) mod num_mailboxes

let distribute ~num_mailboxes ~mode payloads =
  let buckets = Array.make num_mailboxes [] in
  let dropped = ref 0 in
  Array.iter
    (fun p ->
      match Payload.decode p with
      | Some (mb, body) when mb >= 0 && mb < num_mailboxes -> buckets.(mb) <- body :: buckets.(mb)
      | Some _ | None -> incr dropped)
    payloads;
  let t =
    match mode with
    | `AddFriend -> Plain buckets
    | `Dialing ->
      Filters
        (Array.map
           (fun tokens ->
             let f = Bloom.create ~expected_elements:(Stdlib.max 1 (List.length tokens)) in
             List.iter (Bloom.add f) tokens;
             f)
           buckets)
  in
  (t, !dropped)

let size_bytes t =
  match t with
  | Plain buckets -> Array.map (fun l -> List.fold_left (fun acc s -> acc + String.length s) 0 l) buckets
  | Filters fs -> Array.map Bloom.size_bytes fs

let plain_exn = function Plain p -> p | Filters _ -> invalid_arg "Mailbox.plain_exn"
let filters_exn = function Filters f -> f | Plain _ -> invalid_arg "Mailbox.filters_exn"
