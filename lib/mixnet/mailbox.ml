module Sha256 = Alpenhorn_crypto.Sha256
module Util = Alpenhorn_crypto.Util
module Bloom = Alpenhorn_bloom.Bloom
module Parallel = Alpenhorn_parallel.Parallel

type t = Plain of string list array | Filters of Bloom.t array

let num_mailboxes_for ~expected_real ~noise_mu ~chain_length =
  let per_mailbox = noise_mu *. float_of_int chain_length in
  Stdlib.max 1 (int_of_float (Float.round (float_of_int expected_real /. per_mailbox)))

let mailbox_of_identity = Mailbox_id.of_identity

let distribute ~num_mailboxes ~mode payloads =
  let buckets = Array.make num_mailboxes [] in
  let dropped = ref 0 in
  Array.iter
    (fun p ->
      match Payload.decode p with
      | Some (mb, body) when mb >= 0 && mb < num_mailboxes -> buckets.(mb) <- body :: buckets.(mb)
      | Some _ | None -> incr dropped)
    payloads;
  let t =
    match mode with
    | `AddFriend -> Plain buckets
    | `Dialing ->
      Filters
        (Array.map
           (fun tokens ->
             let f = Bloom.create ~expected_elements:(Stdlib.max 1 (List.length tokens)) in
             List.iter (Bloom.add f) tokens;
             f)
           buckets)
  in
  (t, !dropped)

(* Sharded distribution (§5.1 CDN model): payloads are grouped by the
   contiguous-prefix shard of their mailbox id with one counting-sort pass
   over flat int buffers — no per-mailbox lists, no substring per payload —
   then each shard is built independently on the domain pool. Plain shards
   are streamed through a bounded {!Stream_writer} as length-prefixed
   records (each record body is the full payload, mailbox header included,
   so clients filter for their own mailbox after download); dialing shards
   pack every token in the shard's mailbox range into one Bloom filter,
   hashing straight out of the payload buffer via {!Bloom.add_sub}. *)

type sharded = Plain_shards of string array | Filter_shards of Bloom.t array

let distribute_sharded ~shard ~mode payloads =
  let num_mailboxes = Shard.num_mailboxes shard in
  let num_shards = Shard.size shard in
  let n = Array.length payloads in
  (* Pass 1: shard id per payload (-1 = cover traffic / corrupt header),
     plus per-shard counts. *)
  let sid = Array.make n (-1) in
  let counts = Array.make num_shards 0 in
  let dropped = ref 0 in
  for i = 0 to n - 1 do
    match Payload.mailbox payloads.(i) with
    | Some mb when mb >= 0 && mb < num_mailboxes ->
      let s = Shard.of_mailbox shard mb in
      sid.(i) <- s;
      counts.(s) <- counts.(s) + 1
    | Some _ | None -> incr dropped
  done;
  (* Pass 2: prefix sums + stable permutation grouping payload indices by
     shard, so pass 3 reads each shard as one contiguous slice. *)
  let offsets = Array.make (num_shards + 1) 0 in
  for s = 0 to num_shards - 1 do
    offsets.(s + 1) <- offsets.(s) + counts.(s)
  done;
  let next = Array.copy offsets in
  let order = Array.make (Stdlib.max 1 offsets.(num_shards)) 0 in
  for i = 0 to n - 1 do
    let s = sid.(i) in
    if s >= 0 then begin
      order.(next.(s)) <- i;
      next.(s) <- next.(s) + 1
    end
  done;
  let pool = Parallel.get () in
  let content =
    match mode with
    | `Dialing ->
      Filter_shards
        (Parallel.map_range pool
           (fun s ->
             let lo = offsets.(s) and hi = offsets.(s + 1) in
             let f = Bloom.create ~expected_elements:(Stdlib.max 1 (hi - lo)) in
             for j = lo to hi - 1 do
               let p = payloads.(order.(j)) in
               (* same bytes as the unsharded [Bloom.add body]: the token is
                  the payload minus its mailbox header *)
               Bloom.add_sub f
                 (Bytes.unsafe_of_string p)
                 ~pos:Payload.overhead
                 ~len:(String.length p - Payload.overhead)
             done;
             f)
           num_shards)
    | `AddFriend ->
      Plain_shards
        (Parallel.map_range pool
           (fun s ->
             let lo = offsets.(s) and hi = offsets.(s + 1) in
             let buf = Buffer.create (Stdlib.max 64 ((hi - lo) * 64)) in
             let w = Stream_writer.create (Stream_writer.buffer_sink buf) in
             for j = lo to hi - 1 do
               Stream_writer.write_record w payloads.(order.(j))
             done;
             Stream_writer.flush w;
             Buffer.contents buf)
           num_shards)
  in
  (content, !dropped)

let size_bytes t =
  match t with
  | Plain buckets -> Array.map (fun l -> List.fold_left (fun acc s -> acc + String.length s) 0 l) buckets
  | Filters fs -> Array.map Bloom.size_bytes fs

let plain_exn = function Plain p -> p | Filters _ -> invalid_arg "Mailbox.plain_exn"
let filters_exn = function Filters f -> f | Plain _ -> invalid_arg "Mailbox.filters_exn"

let sharded_size_bytes = function
  | Plain_shards blobs -> Array.map String.length blobs
  | Filter_shards fs -> Array.map Bloom.size_bytes fs

let plain_shards_exn = function
  | Plain_shards p -> p
  | Filter_shards _ -> invalid_arg "Mailbox.plain_shards_exn"

let filter_shards_exn = function
  | Filter_shards f -> f
  | Plain_shards _ -> invalid_arg "Mailbox.filter_shards_exn"
