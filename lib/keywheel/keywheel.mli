(** The keywheel (paper §5, Figures 4-5): per-friend shared secrets that
    evolve every dialing round for metadata forward secrecy.

    One {!t} holds all of a client's keywheel entries. A keywheel entry for
    a friend stores the shared key [K_r] at the entry's round [r]. Three
    keyed hash operations (HMAC-SHA256 with distinct labels, standing in
    for the paper's [H1]/[H2]/[H3]) derive:

    - the next round's key [K_{r+1}] ([advance]),
    - a 32-byte dial token for a given intent ([dial_token]),
    - the session key handed to the application ([session_key]).

    Entries created by the add-friend protocol may carry a round number in
    the future (Fig 5: the friend's client chose [DialingRound] ahead of the
    current round); such entries simply do not advance or produce tokens
    until the wheel catches up. Old keys are erased on advance (strings are
    immutable in OCaml, so "erasure" here means dropping the reference; a
    hardened port would zeroize). *)

type t

val create : owner:string -> t
(** [owner] is this client's own identity; it is bound into incoming-token
    derivation so that dial tokens are directional. *)

val add_friend : t -> email:string -> secret:string -> round:int -> unit
(** Install the initial shared secret agreed at [round]. Replaces any
    existing entry for [email]. *)

val remove_friend : t -> email:string -> unit
(** Drop the entry entirely (§3.2: removing a friend destroys the evidence
    of the friendship). *)

val friends : t -> string list
val friend_count : t -> int
val entry_round : t -> email:string -> int option

val current_round : t -> int
(** The wheel's own clock: the round that [dial_token] will emit tokens
    for. Starts at 0 and only moves forward via {!advance_to}; entries
    whose round is still ahead of the clock are dormant until it catches
    up (Fig 5). *)

val advance_to : t -> round:int -> unit
(** Roll every entry forward to [round], erasing intermediate keys. Entries
    whose round is already ≥ [round] are untouched (future entries, Fig 5).
    @raise Invalid_argument if [round] is behind the wheel's clock. *)

val dial_token : t -> email:string -> intent:int -> string option
(** Token this client would send to call [email] in the wheel's current
    round — [None] if the friend is unknown or the entry's round is still in
    the future. 32 bytes. Bound to the callee's identity, so the caller's
    own mailbox scan never mistakes it for an incoming call. *)

val expected_tokens : t -> max_intents:int -> (string * int * string) list
(** All (friend, intent, token) triples that could arrive in the current
    round — what the client scans a dialing mailbox for (§5: enumerate all
    friends × intents; cheap because hashing is fast). *)

val session_key : t -> email:string -> string option
(** Session key for a call in the current round (H3 of the wheel key);
    both sides compute the same value. *)

val catch_up : t -> through:int -> int
(** Explicit offline catch-up (§5.3): roll every wheel forward to
    [through] in one pass, erasing the missed rounds' keys, and return how
    many rounds the clock moved (0 when already caught up — unlike
    {!advance_to} this never raises on a stale [through]). A wheel that
    catches up lands on exactly the keys of a wheel that never went
    offline (chaos-suite twin check, DESIGN.md §10). *)

val copy : t -> t
(** Independent deep copy — mutating either wheel leaves the other
    untouched. Powers the chaos suite's never-offline twin. *)

val peek_token_at :
  secret:string -> from_round:int -> at_round:int -> callee:string -> intent:int -> string
(** Stateless helper: the token a wheel seeded with [secret] at
    [from_round] would emit at [at_round] ≥ [from_round] when calling
    [callee]. Used by tests and by the simulator's oracle checks. *)
