module Hmac = Alpenhorn_crypto.Hmac
module Util = Alpenhorn_crypto.Util

type entry = { mutable key : string; mutable round : int }

type t = { owner : string; table : (string, entry) Hashtbl.t; mutable clock : int }

let create ~owner = { owner; table = Hashtbl.create 64; clock = 0 }

let add_friend t ~email ~secret ~round =
  if String.length secret <> 32 then invalid_arg "Keywheel.add_friend: secret must be 32 bytes";
  if round < 0 then invalid_arg "Keywheel.add_friend: negative round";
  Hashtbl.replace t.table email { key = secret; round }

let remove_friend t ~email = Hashtbl.remove t.table email

let friends t = Hashtbl.fold (fun email _ acc -> email :: acc) t.table [] |> List.sort compare
let friend_count t = Hashtbl.length t.table
let entry_round t ~email = Option.map (fun e -> e.round) (Hashtbl.find_opt t.table email)
let current_round t = t.clock

(* H1: evolve the wheel key; H2: dial token for an intent, bound to the
   callee so tokens are directional (a caller never mistakes their own
   outgoing token for an incoming call); H3: session key (shared, so no
   direction binding) *)
let next_key key = Hmac.hmac_sha256 ~key "keywheel-h1"

let token_of key ~callee intent =
  Hmac.hmac_sha256 ~key ("keywheel-h2" ^ Util.be32 intent ^ callee)

let session_of key = Hmac.hmac_sha256 ~key "keywheel-h3"

let advance_entry e ~round =
  while e.round < round do
    e.key <- next_key e.key;
    e.round <- e.round + 1
  done

let advance_to t ~round =
  if round < t.clock then invalid_arg "Keywheel.advance_to: cannot rewind";
  t.clock <- round;
  Hashtbl.iter (fun _ e -> advance_entry e ~round) t.table

let dial_token t ~email ~intent =
  match Hashtbl.find_opt t.table email with
  | None -> None
  | Some e -> if e.round > t.clock then None else Some (token_of e.key ~callee:email intent)

let expected_tokens t ~max_intents =
  Hashtbl.fold
    (fun email e acc ->
      if e.round > t.clock then acc
      else begin
        let rec go intent acc =
          if intent < 0 then acc
          else go (intent - 1) ((email, intent, token_of e.key ~callee:t.owner intent) :: acc)
        in
        go (max_intents - 1) acc
      end)
    t.table []

let session_key t ~email =
  match Hashtbl.find_opt t.table email with
  | None -> None
  | Some e -> if e.round > t.clock then None else Some (session_of e.key)

(* §5.3 offline catch-up: a client that missed rounds rolls every wheel
   forward in one pass. Same per-entry evolution as [advance_to] — the two
   paths land on identical keys (verified against a never-offline twin in
   the chaos suite). Returns how many rounds the clock moved. *)
let catch_up t ~through =
  if through <= t.clock then 0
  else begin
    let missed = through - t.clock in
    advance_to t ~round:through;
    missed
  end

let copy t =
  let table = Hashtbl.create (Hashtbl.length t.table) in
  Hashtbl.iter (fun email e -> Hashtbl.add table email { key = e.key; round = e.round }) t.table;
  { owner = t.owner; table; clock = t.clock }

let peek_token_at ~secret ~from_round ~at_round ~callee ~intent =
  if at_round < from_round then invalid_arg "Keywheel.peek_token_at";
  let key = ref secret in
  for _ = from_round + 1 to at_round do
    key := next_key !key
  done;
  token_of !key ~callee intent
