(** Data-parallel execution layer on OCaml 5 domains.

    A {!t} is a fixed-size pool: [size - 1] worker domains plus the
    submitting domain, all draining a shared job queue.  {!map} and
    {!map_list} split an input across the pool in contiguous chunks and
    reassemble results in input order, so output ordering is deterministic
    regardless of which domain ran which chunk.

    Determinism contract: with [size = 1] (the default) no domains are
    spawned and {!map} is literally [Array.map], so the 1-domain path is
    bit-identical to the sequential code it replaced.  With [size > 1] the
    function [f] must be pure with respect to the items it is given (no
    shared DRBG draws, no order-dependent mutation); under that contract
    the output is identical to the sequential run for every pool size.

    Shared lazy state (Montgomery contexts, fixed-base tables) must be
    forced before handing work to the pool — see [Params.force_tables].
    Nested {!map} calls from inside a worker run sequentially rather than
    deadlocking on the shared queue.

    Telemetry (multi-domain dispatches only): [parallel.pool_size] and
    [parallel.speedup]/[parallel.occupancy] gauges, [parallel.jobs] /
    [parallel.items] counters, a [parallel.chunk_size] histogram, and a
    per-slot [parallel.domain_util] gauge labeled [domain=0..size-1]
    (slot 0 is the submitting domain) giving each domain's busy fraction
    of the last dispatch — the [parallel.pool_util] SLO floor reads its
    minimum. *)

type t
(** A fixed-size domain pool. *)

val create : domains:int -> t
(** [create ~domains] builds a pool of [max 1 domains] domains (clamped to
    64).  [domains = 1] spawns nothing and makes {!map} sequential. *)

val size : t -> int
(** Number of domains in the pool (including the submitter). *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Subsequent {!map} calls on the pool
    fall back to the sequential path.  Idempotent. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f arr] is [Array.map f arr] with the work split across the
    pool's domains in contiguous chunks; results are returned in input
    order.  If any application of [f] raises, one of the raised exceptions
    is re-raised after all in-flight chunks finish.  Runs sequentially when
    [size t = 1], when the array has fewer than two elements, or when
    called from inside a pool worker. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over lists, preserving order. *)

val map_range : t -> (int -> 'b) -> int -> 'b array
(** [map_range t f n] is [Array.init n f] with the index range split across
    the pool in contiguous chunks — {!map} without an input array, for
    shard- or slice-indexed work over preallocated flat buffers.  Same
    determinism, exception and sequential-fallback behavior as {!map}.
    @raise Invalid_argument when [n < 0]. *)

val default_size_from_env : unit -> int
(** Pool size requested by the [ALPENHORN_DOMAINS] environment variable
    (default [1] when unset or unparseable). *)

val get : unit -> t
(** The process-wide default pool, created on first use with
    {!default_size_from_env} domains (unless {!set_default_size} was called
    first).  Shut down automatically at exit. *)

val set_default_size : int -> unit
(** Replace the default pool with a fresh one of the given size (shutting
    down the previous default, if any).  Used by the [--domains] CLI
    flag. *)

val with_default : domains:int -> (unit -> 'a) -> 'a
(** [with_default ~domains f] runs [f] with the default pool temporarily
    replaced by a fresh pool of [domains] domains, restoring (and not
    shutting down) the previous default afterwards.  For tests and
    benches that sweep pool sizes. *)
