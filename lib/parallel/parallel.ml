(* Fixed-size domain pool with deterministic-order chunked map.

   Design notes:
   - Workers block on a condition variable; the submitting domain also
     drains the job queue, so a pool of size n applies n domains to each
     dispatch (n-1 workers + the submitter).
   - Chunks are contiguous slices of the input and each chunk writes only
     its own slice of the result array, so output ordering never depends
     on scheduling.
   - A size-1 pool spawns no domains and [map] is literally [Array.map]:
     the sequential path of record for the determinism tests. *)

module Tel = Alpenhorn_telemetry.Telemetry

type t = {
  size : int;
  mutex : Mutex.t;
  work_cv : Condition.t; (* signalled when jobs are enqueued / pool stops *)
  done_cv : Condition.t; (* signalled when a dispatch's last chunk ends *)
  jobs : (unit -> unit) Queue.t;
  mutable live : bool;
  mutable workers : unit Domain.t list;
}

(* Workers mark themselves so a nested [map] from inside [f] degrades to
   the sequential path instead of deadlocking on the shared queue. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* Pool slot of the current domain: worker i occupies slot i+1, the
   submitting domain slot 0. Feeds the per-domain utilization gauges. *)
let worker_slot : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let m_pool_size = Tel.Gauge.v Tel.default "parallel.pool_size"
let m_jobs = Tel.Counter.v Tel.default "parallel.jobs"
let m_items = Tel.Counter.v Tel.default "parallel.items"
let m_chunk = Tel.Histogram.v Tel.default "parallel.chunk_size"
let m_speedup = Tel.Gauge.v Tel.default "parallel.speedup"
let m_occupancy = Tel.Gauge.v Tel.default "parallel.occupancy"

let rec worker_loop t =
  Mutex.lock t.mutex;
  let rec next () =
    if not t.live then (
      Mutex.unlock t.mutex;
      None)
    else
      match Queue.take_opt t.jobs with
      | Some job ->
          Mutex.unlock t.mutex;
          Some job
      | None ->
          Condition.wait t.work_cv t.mutex;
          next ()
  in
  match next () with
  | None -> ()
  | Some job ->
      job ();
      worker_loop t

let create ~domains =
  let size = max 1 (min 64 domains) in
  let t =
    {
      size;
      mutex = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      jobs = Queue.create ();
      live = true;
      workers = [];
    }
  in
  if size > 1 then
    t.workers <-
      List.init (size - 1) (fun i ->
          Domain.spawn (fun () ->
              Domain.DLS.set in_worker true;
              Domain.DLS.set worker_slot (i + 1);
              worker_loop t));
  t

let size t = t.size

let shutdown t =
  Mutex.lock t.mutex;
  t.live <- false;
  Condition.broadcast t.work_cv;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

(* Contiguous partition of [0, n) into [nchunks] near-equal slices. *)
let chunk_bounds ~n ~nchunks i =
  let base = n / nchunks and rem = n mod nchunks in
  let lo = (i * base) + min i rem in
  let hi = lo + base + if i < rem then 1 else 0 in
  (lo, hi)

(* Generic chunked dispatch over the index range [0, n): [produce j]
   computes element [j]. [map] instantiates it with an array read;
   [map_range] with the identity, so range jobs allocate no input array. *)
let map_n t produce n =
  if t.size = 1 || n < 2 || (not t.live) || Domain.DLS.get in_worker then
    Array.init n produce
  else begin
    let nchunks = min n (t.size * 4) in
    let results = Array.make n None in
    let error = Atomic.make None in
    let pending = Atomic.make nchunks in
    (* Per-chunk busy time, written by whichever domain ran the chunk and
       read by the submitter only after all chunks completed. Each pool
       slot also accumulates its own busy time (a slot runs its chunks
       serially, so slot_busy.(s) is written by one domain only). *)
    let busy = Array.make nchunks 0.0 in
    let slot_busy = Array.make t.size 0.0 in
    let run_chunk ci =
      let c0 = Unix.gettimeofday () in
      let lo, hi = chunk_bounds ~n ~nchunks ci in
      (try
         for j = lo to hi - 1 do
           results.(j) <- Some (produce j)
         done
       with e -> ignore (Atomic.compare_and_set error None (Some e)));
      let dt = Unix.gettimeofday () -. c0 in
      busy.(ci) <- dt;
      let slot = Domain.DLS.get worker_slot in
      slot_busy.(slot) <- slot_busy.(slot) +. dt;
      if Atomic.fetch_and_add pending (-1) = 1 then begin
        (* Last chunk: wake the submitter if it is parked in done_cv. *)
        Mutex.lock t.mutex;
        Condition.broadcast t.done_cv;
        Mutex.unlock t.mutex
      end
    in
    let t0 = Unix.gettimeofday () in
    Mutex.lock t.mutex;
    for ci = 1 to nchunks - 1 do
      Queue.push (fun () -> run_chunk ci) t.jobs
    done;
    Condition.broadcast t.work_cv;
    Mutex.unlock t.mutex;
    run_chunk 0;
    (* Help drain remaining chunks, then wait for in-flight ones. *)
    let rec help () =
      Mutex.lock t.mutex;
      match Queue.take_opt t.jobs with
      | Some job ->
          Mutex.unlock t.mutex;
          job ();
          help ()
      | None ->
          while Atomic.get pending > 0 do
            Condition.wait t.done_cv t.mutex
          done;
          Mutex.unlock t.mutex
    in
    help ();
    let wall = Unix.gettimeofday () -. t0 in
    Tel.Counter.inc m_jobs;
    Tel.Counter.add m_items n;
    for ci = 0 to nchunks - 1 do
      let lo, hi = chunk_bounds ~n ~nchunks ci in
      Tel.Histogram.observe m_chunk (float_of_int (hi - lo))
    done;
    if wall > 0.0 then begin
      let total_busy = Array.fold_left ( +. ) 0.0 busy in
      Tel.Gauge.set m_speedup (total_busy /. wall);
      Tel.Gauge.set m_occupancy (total_busy /. (wall *. float_of_int t.size));
      for s = 0 to t.size - 1 do
        let g =
          Tel.Gauge.v Tel.default ~labels:[ ("domain", string_of_int s) ] "parallel.domain_util"
        in
        Tel.Gauge.set g (Float.min 1.0 (slot_busy.(s) /. wall))
      done
    end;
    (match Atomic.get error with Some e -> raise e | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let map t f arr = map_n t (fun j -> f arr.(j)) (Array.length arr)

let map_list t f l = Array.to_list (map t f (Array.of_list l))

(* [map] over the index range [0, n) without materializing an input array:
   the shard-chunked paths (per-shard Bloom builds, flat-buffer token
   generation) hand the pool an index and write into disjoint slices of a
   preallocated buffer, so the only allocation here is the result array. *)
let map_range t f n =
  if n < 0 then invalid_arg "Parallel.map_range: negative range";
  map_n t f n

let default_size_from_env () =
  match Sys.getenv_opt "ALPENHORN_DOMAINS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> 1)

let default : t option ref = ref None
let () = at_exit (fun () -> match !default with Some p -> shutdown p | None -> ())

let get () =
  match !default with
  | Some p -> p
  | None ->
      let p = create ~domains:(default_size_from_env ()) in
      Tel.Gauge.set m_pool_size (float_of_int p.size);
      default := Some p;
      p

let set_default_size n =
  (match !default with Some p -> shutdown p | None -> ());
  let p = create ~domains:n in
  Tel.Gauge.set m_pool_size (float_of_int p.size);
  default := Some p

let with_default ~domains fn =
  let old = !default in
  let p = create ~domains in
  Tel.Gauge.set m_pool_size (float_of_int p.size);
  default := Some p;
  Fun.protect
    ~finally:(fun () ->
      shutdown p;
      default := old;
      match old with
      | Some prev -> Tel.Gauge.set m_pool_size (float_of_int prev.size)
      | None -> ())
    fn
