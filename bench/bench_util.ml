(* Shared helpers for the benchmark harness: a thin Bechamel wrapper that
   returns ns/op estimates, and aligned-table printing. *)

open Bechamel
open Bechamel.Toolkit

let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]

(* Estimated nanoseconds per run of [fn], via Bechamel OLS. *)
let time_ns ?(quota = 1.0) name fn =
  let test = Test.make ~name (Staged.stage fn) in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second quota) ~stabilize:false () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] test in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  match Hashtbl.fold (fun _ v acc -> v :: acc) results [] with
  | [ est ] -> (match Analyze.OLS.estimates est with Some (t :: _) -> t | _ -> nan)
  | _ -> nan

let human_time ns =
  if ns < 1e3 then Printf.sprintf "%.0f ns" ns
  else if ns < 1e6 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else Printf.sprintf "%.2f s" (ns /. 1e9)

let human_bytes b =
  let f = float_of_int b in
  if b < 1024 then Printf.sprintf "%d B" b
  else if f < 1048576.0 then Printf.sprintf "%.1f KB" (f /. 1024.0)
  else Printf.sprintf "%.2f MB" (f /. 1048576.0)

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

let row cols = print_endline (String.concat "  " cols)

let pad width s =
  if String.length s >= width then s else s ^ String.make (width - String.length s) ' '

let padl width s =
  if String.length s >= width then s else String.make (width - String.length s) ' ' ^ s

(* users axis used throughout §8.3 *)
let user_points = [ 10_000; 100_000; 1_000_000; 10_000_000 ]

let si n =
  if n >= 1_000_000 then Printf.sprintf "%dM" (n / 1_000_000)
  else if n >= 1_000 then Printf.sprintf "%dK" (n / 1_000)
  else string_of_int n
