(* Alpenhorn evaluation harness: one section per table/figure of the paper's
   §8, plus the DESIGN.md ablations.

   Usage: dune exec bench/main.exe [-- section...]
   Sections: fig6 fig7 fig8 fig9 fig10 figscale skewsize cpu parallel sizes
             extract e2e ablation-onion ablation-bloom ablation-mailboxes
             scale smoke
   With no arguments, every section runs. The "smoke" section also runs
   under `dune runtest`: it validates the telemetry exporters on one tiny
   instrumented round (see bench_smoke.ml). *)

module Costmodel = Alpenhorn_sim.Costmodel

let sections pc =
  [
    ("fig6", fun () -> Bench_figures.fig6 pc);
    ("fig7", fun () -> Bench_figures.fig7 pc);
    ("fig8", fun () -> Bench_figures.fig8 pc);
    ("fig9", fun () -> Bench_figures.fig9 pc);
    ("fig10", fun () -> Bench_figures.fig10 pc);
    ("figscale", fun () -> Bench_figures.figscale pc);
    ("skewsize", fun () -> Bench_figures.skewsize pc);
    ("privacy", Bench_privacy.privacy);
    ("cpu", Bench_cpu.cpu);
    ("parallel", Bench_cpu.parallel);
    ("sizes", Bench_cpu.sizes);
    ("extract", Bench_cpu.extract);
    ("e2e", Bench_e2e.e2e);
    ("ablation-onion", Bench_e2e.ablation_onion);
    ("ablation-bloom", Bench_e2e.ablation_bloom);
    ("ablation-mailboxes", Bench_e2e.ablation_mailboxes);
    ("ratelimit", Bench_e2e.ratelimit);
    ("ablation-pipeline", Bench_e2e.ablation_pipeline);
    ("scale", Bench_scale.scale);
    ("smoke", fun () -> Bench_smoke.smoke ());
  ]

let () =
  let params = Alpenhorn_pairing.Params.production () in
  let pc = Costmodel.protocol_costs params in
  let available = sections pc in
  let requested =
    match Array.to_list Sys.argv with [] | [ _ ] -> List.map fst available | _ :: args -> args
  in
  print_endline "Alpenhorn evaluation harness (paper: Lazar & Zeldovich, OSDI 2016)";
  Printf.printf "sections: %s\n" (String.concat " " requested);
  List.iter
    (fun name ->
      match List.assoc_opt name available with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown section %S; available: %s\n" name
          (String.concat " " (List.map fst available));
        exit 1)
    requested
