(* Million-user scale suite (`bench scale`, DESIGN.md §15): one sharded
   synthetic dialing round at 100k / 500k / 1M clients, with the per-client
   memory budget and Bloom correctness asserted — a breach exits nonzero so
   CI can gate on it. The machine-readable line at the end is transcribed
   into BENCH_scale.json for the @bench-diff perf gate. *)

module Scale = Alpenhorn_sim.Scale
open Bench_util

let points = [ 100_000; 500_000; 1_000_000 ]

let scale () =
  header "Scale: sharded dialing rounds with flat round state (synthetic tokens)";
  row
    [
      pad 10 "clients"; padl 8 "shards"; padl 8 "tokens"; padl 10 "round"; padl 12 "download";
      padl 14 "words/client"; padl 12 "writer peak"; padl 14 "scan";
    ];
  let machine = Buffer.create 256 in
  let mem = Buffer.create 256 in
  Buffer.add_string machine "{\"after\":{";
  Buffer.add_string mem "\"mem\":{";
  List.iteri
    (fun i n ->
      let r = Scale.run ~clients:n () in
      row
        [
          pad 10 (si n);
          padl 8 (string_of_int r.Scale.shards);
          padl 8 (si r.Scale.tokens);
          padl 10 (Printf.sprintf "%.2f s" r.Scale.round_seconds);
          padl 12 (human_bytes r.Scale.bytes_per_client);
          padl 14 (Printf.sprintf "%.1f w" r.Scale.words_per_client);
          padl 12 (human_bytes r.Scale.writer_peak_bytes);
          padl 14
            (Printf.sprintf "%d/%d (%d fp)" r.Scale.scan_hits r.Scale.scan_dialed
               r.Scale.scan_false_positives);
        ];
      if not (Scale.within_budget r) then begin
        Printf.eprintf
          "FAIL: %d clients peaked at %d heap words, over the %d-word budget (%d slack + %d/client)\n"
          n r.Scale.peak_words
          (Scale.budget_words ~clients:n)
          Scale.budget_slack_words Scale.budget_per_client_words;
        exit 1
      end;
      if r.Scale.scan_hits <> r.Scale.scan_dialed then begin
        Printf.eprintf "FAIL: %d clients: %d of %d dialed clients missed their token\n" n
          (r.Scale.scan_dialed - r.Scale.scan_hits)
          r.Scale.scan_dialed;
        exit 1
      end;
      let sep = if i = 0 then "" else "," in
      Buffer.add_string machine
        (Printf.sprintf "%s\"scale_%d_round_s\":%.3f,\"scale_%d_bytes_per_client\":%d" sep n
           r.Scale.round_seconds n r.Scale.bytes_per_client);
      Buffer.add_string mem
        (Printf.sprintf "%s\"scale_%d_words_per_client\":%.1f,\"scale_%d_writer_peak_bytes\":%d"
           sep n r.Scale.words_per_client n r.Scale.writer_peak_bytes))
    points;
  Buffer.add_string machine "},";
  Buffer.add_string mem "}}";
  print_endline "distribution is the real pipeline (mailbox ids, contiguous-range shards, per-shard";
  print_endline "Bloom filters, bounded-writer publish); tokens are synthetic 32-byte values so a";
  print_endline "million clients fit one process. Budget breach or a missed dial exits nonzero.";
  (* machine-readable line for transcribing into BENCH_scale.json *)
  print_endline (Buffer.contents machine ^ Buffer.contents mem)
