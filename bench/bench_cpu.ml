(* §8.2-§8.3 CPU microbenchmarks on this implementation's primitives, plus
   the wire-size accounting of §8.6. Each quantity the paper states for its
   Go/assembly prototype is re-measured here and printed side by side. *)

module Params = Alpenhorn_pairing.Params
module Pairing = Alpenhorn_pairing.Pairing
module Curve = Alpenhorn_pairing.Curve
module Ibe = Alpenhorn_ibe.Ibe
module Bls = Alpenhorn_bls.Bls
module Dh = Alpenhorn_dh.Dh
module Onion = Alpenhorn_mixnet.Onion
module Keywheel = Alpenhorn_keywheel.Keywheel
module Bloom = Alpenhorn_bloom.Bloom
module Hmac = Alpenhorn_crypto.Hmac
module Sha256 = Alpenhorn_crypto.Sha256
module Drbg = Alpenhorn_crypto.Drbg
module Wire = Alpenhorn_core.Wire
module Pkg = Alpenhorn_pkg.Pkg
module Parallel = Alpenhorn_parallel.Parallel
open Bench_util

let cpu () =
  let pr = Params.production () in
  let rng = Drbg.create ~seed:"bench-cpu" in
  header "Section 8.2/8.3 CPU microbenchmarks (production curve, 1 core, pure OCaml)";
  let msk, mpk = Ibe.setup pr rng in
  let d_id = Ibe.extract pr msk "bench@example.org" in
  let msg = String.make (Wire.request_plaintext_size pr) 'm' in
  let ctxt = Ibe.encrypt pr rng mpk ~id:"bench@example.org" msg in

  let t_pairing = time_ns "pairing" (fun () -> Pairing.pair pr pr.Params.g d_id) in
  let t_ibe_dec = time_ns "ibe-decrypt" (fun () -> Ibe.decrypt pr d_id ctxt) in
  let t_ibe_enc =
    time_ns "ibe-encrypt" (fun () -> Ibe.encrypt pr rng mpk ~id:"bench@example.org" msg)
  in
  let t_extract = time_ns "pkg-extract" (fun () -> Ibe.extract pr msk "someone@example.org") in
  let t_hash = time_ns "keywheel-hash" (fun () -> Hmac.hmac_sha256 ~key:(String.make 32 'k') "t") in
  let t_sha = time_ns "sha256-64B" (fun () -> Sha256.digest (String.make 64 'x')) in
  let ssk, spk = Dh.keygen pr rng in
  let onion = Onion.wrap pr rng ~server_pks:[ spk ] msg in
  let t_unwrap = time_ns "onion-unwrap" (fun () -> Onion.unwrap pr ~sk:ssk onion) in
  let bls_sk, _ = Bls.keygen pr rng in
  let t_sign = time_ns "bls-sign" (fun () -> Bls.sign pr bls_sk "msg") in
  let scalar = Drbg.bigint_below rng pr.Params.q in
  let t_smul = time_ns "g1-scalar-mult" (fun () -> Curve.mul pr.Params.fp scalar pr.Params.g) in
  ignore (Params.mul_g pr scalar) (* force the comb table before timing *);
  let t_smul_fb = time_ns "g1-scalar-mult-fixed" (fun () -> Params.mul_g pr scalar) in

  row [ pad 22 "operation"; padl 12 "this impl"; pad 34 "  paper (Go + AMD64 asm, BN-256)" ];
  row [ pad 22 "IBE decrypt"; padl 12 (human_time t_ibe_dec); pad 34 "  1.25 ms (800/s/core)" ];
  row [ pad 22 "IBE encrypt"; padl 12 (human_time t_ibe_enc); pad 34 "  ~1.25 ms" ];
  row [ pad 22 "pairing"; padl 12 (human_time t_pairing); pad 34 "  (dominates IBE ops)" ];
  row [ pad 22 "PKG key extraction"; padl 12 (human_time t_extract); pad 34 "  0.23 ms (4310/s)" ];
  row [ pad 22 "keywheel hash"; padl 12 (human_time t_hash); pad 34 "  ~1 us (1M hashes/s/core)" ];
  row [ pad 22 "sha256 (64 B)"; padl 12 (human_time t_sha); pad 34 "  -" ];
  row [ pad 22 "onion layer unwrap"; padl 12 (human_time t_unwrap); pad 34 "  ~0.14 ms (fitted)" ];
  row [ pad 22 "BLS sign"; padl 12 (human_time t_sign); pad 34 "  -" ];
  row [ pad 22 "G1 scalar mult"; padl 12 (human_time t_smul); pad 34 "  -" ];
  row [ pad 22 "G1 fixed-base mult"; padl 12 (human_time t_smul_fb); pad 34 "  -" ];

  header "Derived rates";
  Printf.printf "IBE decryptions/s/core: %.0f (paper: 800)\n" (1e9 /. t_ibe_dec);
  Printf.printf "keywheel hashes/s/core: %.0f (paper: ~1,000,000)\n" (1e9 /. t_hash);
  Printf.printf "PKG extractions/s/core: %.0f (paper: 4310)\n" (1e9 /. t_extract);
  Printf.printf "=> 1M-user key extraction on one PKG: %.0f s (paper: 232 s)\n"
    (1e6 *. t_extract /. 1e9);

  header "Mailbox scan projections (paper Section 8.2)";
  let scan_requests = 24_000 in
  Printf.printf "add-friend mailbox of %d requests: %.1f s on 1 core (paper: 8 s on 4 cores)\n"
    scan_requests
    (float_of_int scan_requests *. t_ibe_dec /. 1e9);
  let wheel = Keywheel.create ~owner:"bench@example.org" in
  for i = 1 to 1000 do
    Keywheel.add_friend wheel
      ~email:(Printf.sprintf "friend%d@x" i)
      ~secret:(Drbg.bytes rng 32) ~round:0
  done;
  let filter = Bloom.create ~expected_elements:150_000 in
  let t_scan =
    time_ns "bloom-scan" (fun () ->
        Keywheel.expected_tokens wheel ~max_intents:10
        |> List.iter (fun (_, _, tok) -> ignore (Bloom.mem filter tok)))
  in
  Printf.printf "dialing scan, 1000 friends x 10 intents: %s (paper: <1 s)\n" (human_time t_scan)

let sizes () =
  let pr = Params.production () in
  header "Section 8.6: wire sizes";
  let ibe_overhead = Ibe.ciphertext_overhead pr in
  Printf.printf "friend request plaintext: %d B (paper: 244 B)\n" (Wire.request_plaintext_size pr);
  Printf.printf "IBE ciphertext overhead: %d B (paper: 64 B; BN-256 G1 points are 32 B more compact)\n"
    ibe_overhead;
  Printf.printf "friend request on the wire: %d B (paper: 308 B)\n" (Wire.request_ciphertext_size pr);
  Printf.printf "dial token: %d B, Bloom-encoded at %d bits (paper: 32 B token, 48 bits encoded)\n"
    Wire.dial_token_size Bloom.bits_per_element;
  Printf.printf "onion layer overhead: %d B per mixnet server\n" (Onion.layer_overhead pr);
  Printf.printf "compressed G1 point: %d B\n" (Curve.point_bytes pr.Params.fp)

(* §8.2 key extraction end-to-end latency with N PKGs: measured extraction +
   simulated same-region RTT, contacted sequentially as the client does. *)
let extract () =
  let pr = Params.production () in
  header "Section 8.2: combined identity-key acquisition vs number of PKGs";
  let rng = Drbg.create ~seed:"bench-extract" in
  let rtt_ms = 1.0 (* same-region EC2, as in the paper's measurement *) in
  let t_extract_ms = time_ns "extract" (fun () -> Ibe.extract pr (fst (Ibe.setup pr rng)) "x@y") /. 1e6 in
  row [ pad 8 "PKGs"; padl 14 "this impl"; padl 14 "paper" ];
  List.iter
    (fun n ->
      let ours = (float_of_int n *. (rtt_ms +. t_extract_ms)) +. 1.0 (* aggregation *) in
      let paper = match n with 3 -> "4.9 ms" | 10 -> "5.2 ms" | _ -> "-" in
      row [ pad 8 (string_of_int n); padl 14 (Printf.sprintf "%.1f ms" ours); padl 14 paper ])
    [ 1; 3; 5; 10 ];
  print_endline "(paper contacted PKGs concurrently, so its latency is nearly flat in N;";
  print_endline " ours is sequential-RTT plus this implementation's slower extraction.)"

(* Domain-pool batch paths: batch onion unwrap and batch PKG extraction at
   pool sizes 1/2/4, and small-exponent batch BLS verification against n
   independent verifies. Speedups are whatever this host actually delivers
   (a single-core container reports ~1x for the pool rows; the algorithmic
   verify_batch win is host-independent). Numbers recorded in
   BENCH_parallel.json. *)
let parallel () =
  let pr = Params.production () in
  let rng = Drbg.create ~seed:"bench-parallel" in
  header "Parallel batch paths (domain pool; --domains / ALPENHORN_DOMAINS)";
  Printf.printf "host: %d domain(s) recommended by the runtime\n"
    (Domain.recommended_domain_count ());
  Params.force_tables pr;

  (* batch onion unwrap, 64 onions *)
  let ssk, spk = Dh.keygen pr rng in
  let msg = String.make (Wire.request_plaintext_size pr) 'm' in
  let batch = Array.init 64 (fun _ -> Onion.wrap pr rng ~server_pks:[ spk ] msg) in
  let unwrap o = Onion.unwrap pr ~sk:ssk o in
  let t_seq = time_ns "unwrap-seq" (fun () -> Array.map unwrap batch) in
  row [ pad 26 "operation"; padl 12 "per batch"; padl 10 "speedup" ];
  row [ pad 26 "onion unwrap x64, seq"; padl 12 (human_time t_seq); padl 10 "1.00x" ];
  let unwrap_rows =
    List.map
      (fun d ->
        let pool = Parallel.create ~domains:d in
        let t =
          time_ns (Printf.sprintf "unwrap-%dd" d) (fun () -> Parallel.map pool unwrap batch)
        in
        Parallel.shutdown pool;
        row
          [ pad 26 (Printf.sprintf "onion unwrap x64, %dd pool" d);
            padl 12 (human_time t); padl 10 (Printf.sprintf "%.2fx" (t_seq /. t)) ];
        (d, t_seq /. t))
      [ 1; 2; 4 ]
  in

  (* batch PKG extraction, 32 requests over 16 accounts *)
  let inbox = Hashtbl.create 16 in
  let pkg =
    Pkg.create pr ~rng:(Drbg.create ~seed:"bench-pkg")
      ~send_email:(fun ~to_ ~token -> Hashtbl.replace inbox to_ token) ()
  in
  let accounts =
    Array.init 16 (fun i ->
        let email = Printf.sprintf "u%d@bench" i in
        let sk, pk = Bls.keygen pr (Drbg.create ~seed:("bench-acct-" ^ string_of_int i)) in
        (match Pkg.register pkg ~now:0 ~email ~pk with Ok () -> () | Error _ -> assert false);
        (match Pkg.confirm pkg ~now:0 ~email ~token:(Hashtbl.find inbox email) with
         | Ok () -> () | Error _ -> assert false);
        (email, sk))
  in
  let _ = Pkg.begin_round pkg ~round:1 in
  let requests =
    Array.init 32 (fun i ->
        let email, sk = accounts.(i mod 16) in
        (email, Bls.sign pr sk (Pkg.extraction_request_message ~email ~round:1)))
  in
  let extract_rows =
    List.map
      (fun d ->
        let t =
          Parallel.with_default ~domains:d (fun () ->
              time_ns (Printf.sprintf "extract-%dd" d) (fun () ->
                  Pkg.extract_batch pkg ~now:0 ~round:1 requests))
        in
        row
          [ pad 26 (Printf.sprintf "pkg extract x32, %dd pool" d);
            padl 12 (human_time t); padl 10 "" ];
        (d, t))
      [ 1; 2; 4 ]
  in

  (* batch BLS verification: algorithmic, independent of the pool. Cycle
     through enough distinct batches that the per-domain pairing FIFO
     (512 entries) cannot serve the sequential baseline from cache. *)
  let nbatches = 40 in
  let mk_batches nsigners =
    Array.init nbatches (fun k ->
        Array.init 16 (fun i ->
            let sk, pk =
              Bls.keygen pr
                (Drbg.create ~seed:(Printf.sprintf "bls-par-%d-%d" k (i mod nsigners)))
            in
            let m = Printf.sprintf "msg-%d-%d" k i in
            (pk, m, Bls.sign pr sk m)))
  in
  let distinct = mk_batches 16 in
  (* the dominant protocol shape: a small anytrust PKG set signing many
     announcements — same-key pairings collapse in verify_batch *)
  let grouped = mk_batches 3 in
  let idx = ref 0 in
  let next batches =
    let b = batches.(!idx mod nbatches) in
    incr idx;
    b
  in
  let t_verify16 =
    time_ns ~quota:2.0 "bls-verify-x16" (fun () ->
        Array.for_all (fun (pk, m, s) -> Bls.verify pr pk m s) (next distinct))
  in
  let t_batch16 =
    time_ns ~quota:2.0 "bls-verify-batch-16" (fun () -> Bls.verify_batch pr (next distinct))
  in
  let t_batch16g =
    time_ns ~quota:2.0 "bls-verify-batch-16-3s" (fun () -> Bls.verify_batch pr (next grouped))
  in
  row [ pad 30 "bls verify x16, one by one"; padl 12 (human_time t_verify16); padl 10 "1.00x" ];
  row
    [ pad 30 "bls verify_batch(16)"; padl 12 (human_time t_batch16);
      padl 10 (Printf.sprintf "%.2fx" (t_verify16 /. t_batch16)) ];
  row
    [ pad 30 "bls verify_batch(16), 3 keys"; padl 12 (human_time t_batch16g);
      padl 10 (Printf.sprintf "%.2fx" (t_verify16 /. t_batch16g)) ];
  (* Alpenhorn batches are announcements signed by the small anytrust PKG
     set (3 servers here), so the 3-key row is the protocol-shape
     acceptance metric; all-distinct signers is the adversarial worst
     case, reported alongside. *)
  Printf.printf
    "verify_batch(16) / 16x verify ratio: %.3f (protocol shape, 3 signers; acceptance: <= 0.5)\n"
    (t_batch16g /. t_verify16);
  Printf.printf
    "verify_batch(16) / 16x verify ratio: %.3f (worst case, 16 distinct signers)\n"
    (t_batch16 /. t_verify16);

  (* machine-readable line for transcribing into BENCH_parallel.json *)
  let b = Buffer.create 256 in
  Buffer.add_string b "{\"unwrap_x64_seq_ms\":";
  Buffer.add_string b (Printf.sprintf "%.3f" (t_seq /. 1e6));
  List.iter
    (fun (d, s) -> Buffer.add_string b (Printf.sprintf ",\"unwrap_speedup_%dd\":%.2f" d s))
    unwrap_rows;
  List.iter
    (fun (d, t) -> Buffer.add_string b (Printf.sprintf ",\"extract_x32_%dd_ms\":%.3f" d (t /. 1e6)))
    extract_rows;
  Buffer.add_string b
    (Printf.sprintf
       ",\"verify16_ms\":%.3f,\"verify_batch16_ms\":%.3f,\"verify_batch16_3keys_ms\":%.3f,\"batch_ratio\":%.3f,\"batch_ratio_distinct\":%.3f}"
       (t_verify16 /. 1e6) (t_batch16 /. 1e6) (t_batch16g /. 1e6) (t_batch16g /. t_verify16)
       (t_batch16 /. t_verify16));
  Printf.printf "json: %s\n" (Buffer.contents b)
