(* Telemetry smoke target (wired into `dune runtest` from bench/dune).

   Runs one tiny instrumented round twice — once for real on the wall
   clock (in-process deployment, test curve) and once replayed on the DES
   simulated clock — then validates that every exporter emits well-formed
   JSON and that the per-hop mixnet counters are nonzero for every server
   in both snapshots. Exits nonzero on any failure, so `dune runtest`
   catches exporter regressions. *)

module Config = Alpenhorn_core.Config
module Client = Alpenhorn_core.Client
module Deployment = Alpenhorn_core.Deployment
module Costmodel = Alpenhorn_sim.Costmodel
module Round_sim = Alpenhorn_sim.Round_sim
module Tel = Alpenhorn_telemetry.Telemetry
module Events = Alpenhorn_telemetry.Events

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("smoke: FAIL " ^ s); exit 1) fmt

let check_json what s =
  if not (Tel.Json.is_valid s) then fail "%s is not well-formed JSON (%d bytes)" what (String.length s);
  Printf.printf "smoke: %-28s valid JSON, %d bytes\n" what (String.length s)

(* every hop must have seen onions and timed its unwraps *)
let check_hops what (snap : Tel.Snapshot.t) ~n_servers =
  for i = 0 to n_servers - 1 do
    let labels = [ ("server", string_of_int i) ] in
    List.iter
      (fun name ->
        match Tel.Snapshot.find_counter snap ~labels name with
        | Some v when v > 0 -> ()
        | _ -> fail "%s: counter %s{server=%d} missing or zero" what name i)
      [ "mix.onions_in"; "mix.onions_out"; "mix.noise_generated" ];
    let timed =
      List.exists
        (fun (n, l, (h : Tel.Histogram.snap)) ->
          n = "mix.unwrap_seconds" && l = labels && h.count > 0)
        snap.histograms
    in
    if not timed then fail "%s: histogram mix.unwrap_seconds{server=%d} missing or empty" what i
  done;
  Printf.printf "smoke: %-28s per-hop counters nonzero for %d servers\n" what n_servers

let smoke () =
  Bench_util.header "Smoke: one instrumented round, exporters validated";
  let n_servers = Config.test.Config.chain_length in
  (* --- real round, wall clock --- *)
  ignore (Tel.Snapshot.take ~reset:true Tel.default);
  let d = Deployment.create ~config:Config.test ~seed:"bench-smoke" in
  let clients =
    List.init 3 (fun i ->
        Deployment.new_client d
          ~email:(Printf.sprintf "s%d@smoke" i)
          ~callbacks:Client.null_callbacks)
  in
  List.iter
    (fun c -> match Deployment.register d c with Ok () -> () | Error _ -> fail "registration")
    clients;
  Client.add_friend (List.hd clients) ~email:"s1@smoke" ();
  Events.clear Events.default;
  ignore (Deployment.run_addfriend_round d ());
  ignore (Deployment.run_dialing_round d ());
  let wall = Tel.Snapshot.take ~reset:true Tel.default in
  if wall.clock <> "wall" then fail "real round snapshot clock = %S, expected wall" wall.clock;
  if Tel.Snapshot.counter_sum wall "pkg.extractions" = 0 then fail "no PKG extractions recorded";
  (* the round's IBE/BLS work must have gone through the Montgomery kernel *)
  if Tel.Snapshot.counter_sum wall "pairing.mont_mul" = 0 then
    fail "no Montgomery multiplications recorded — pairing fast path not in use";
  check_hops "wall snapshot" wall ~n_servers;
  check_json "wall to_json" (Tel.Snapshot.to_json wall);
  check_json "wall to_chrome_trace" (Tel.Snapshot.to_chrome_trace wall);
  (* the structured event log must have narrated the rounds, every line
     independently well-formed JSON *)
  let ev_lines = String.split_on_char '\n' (String.trim (Events.to_jsonl Events.default)) in
  if List.length ev_lines < 4 then
    fail "event log too small: %d lines (expected round.start/close pairs)"
      (List.length ev_lines);
  List.iteri
    (fun i l -> if not (Tel.Json.is_valid l) then fail "event line %d is not well-formed JSON: %s" i l)
    ev_lines;
  Printf.printf "smoke: %-28s %d JSONL events validated\n" "event log" (List.length ev_lines);
  (* --- same round shape replayed on the DES clock --- *)
  let m = Costmodel.paper_machine in
  let pc = Costmodel.protocol_costs (Alpenhorn_pairing.Params.production ()) in
  ignore
    (Round_sim.addfriend m pc ~n_users:2_000 ~n_servers ~noise_mu:10.0 ~active_fraction:0.05
       ~chunks:2);
  ignore
    (Round_sim.dialing m pc ~n_users:2_000 ~n_servers ~noise_mu:10.0 ~active_fraction:0.05
       ~friends:10 ~intents:4 ~chunks:2);
  let sim = Tel.Snapshot.take ~reset:true Tel.default in
  check_hops "sim snapshot" sim ~n_servers;
  if Tel.Snapshot.span_count sim "round.addfriend" = 0 then fail "sim round.addfriend span missing";
  if not (List.exists (fun (sp : Tel.Snapshot.span) -> sp.clock = "sim") sim.spans) then
    fail "no simulated-clock spans in the DES snapshot";
  check_json "sim to_json" (Tel.Snapshot.to_json sim);
  check_json "sim to_chrome_trace" (Tel.Snapshot.to_chrome_trace sim);
  check_json "machine+telemetry"
    (Printf.sprintf "{\"machine\":%s,\"telemetry\":%s}" (Costmodel.machine_to_json m)
       (Tel.Snapshot.to_json sim));
  (* the sim replay must emit the same metric names as the real round *)
  let names (s : Tel.Snapshot.t) =
    List.sort_uniq compare (List.map (fun (n, _, _) -> n) s.counters)
  in
  List.iter
    (fun n ->
      if String.length n >= 4 && String.sub n 0 4 = "mix." && not (List.mem n (names wall)) then
        fail "sim-only mixnet counter %s absent from the real round" n)
    (names sim);
  Format.printf "%a@?" Tel.Snapshot.pp_table sim;
  print_endline "smoke: OK"
