(* §8.1 noise configuration: reproduce the differential-privacy budgets the
   paper states for its Laplace parameters. *)

module Privacy = Alpenhorn_sim.Privacy
open Bench_util

let privacy () =
  header "Section 8.1: differential-privacy budgets of the noise configuration";
  row
    [
      pad 12 "protocol"; padl 8 "b"; padl 10 "actions"; padl 14 "eps (ours)"; padl 12 "paper";
      padl 8 "holds";
    ];
  List.iter
    (fun (name, (pb : Privacy.protocol_budget)) ->
      let epsilon0 = Privacy.epsilon_single ~sensitivity:pb.Privacy.sensitivity ~b:pb.Privacy.b in
      let eps = Privacy.compose_advanced ~epsilon0 ~k:pb.Privacy.actions ~delta:pb.Privacy.delta in
      row
        [
          pad 12 name;
          padl 8 (Printf.sprintf "%.0f" pb.Privacy.b);
          padl 10 (string_of_int pb.Privacy.actions);
          padl 14 (Printf.sprintf "%.3f" eps);
          padl 12 "ln 2=0.693";
          padl 8 (if Privacy.verify pb then "yes" else "NO");
        ])
    [ ("add-friend", Privacy.paper_addfriend); ("dialing", Privacy.paper_dialing) ];
  print_endline "(strong composition at delta = 1e-4; the paper claims (ln 2, 1e-4)-DP for";
  print_endline " 900 add-friend requests and 26,000 calls — e.g. 7 calls/day for 10 years.)";
  let cap_af =
    Privacy.max_actions
      ~epsilon0:(Privacy.epsilon_single ~sensitivity:1.0 ~b:406.0)
      ~delta:1e-4 ~budget:(log 2.0)
  in
  let cap_dial =
    Privacy.max_actions
      ~epsilon0:(Privacy.epsilon_single ~sensitivity:1.0 ~b:2183.0)
      ~delta:1e-4 ~budget:(log 2.0)
  in
  Printf.printf "max actions within (ln 2, 1e-4): add-friend %d, dialing %d\n" cap_af cap_dial
