(* End-to-end sanity benchmark: the real protocol (no cost model) at small
   scale, plus the ablations DESIGN.md calls out. *)

module B = Alpenhorn_bigint.Bigint
module Params = Alpenhorn_pairing.Params
module Curve = Alpenhorn_pairing.Curve
module Ibe = Alpenhorn_ibe.Ibe
module Bloom = Alpenhorn_bloom.Bloom
module Drbg = Alpenhorn_crypto.Drbg
module Config = Alpenhorn_core.Config
module Client = Alpenhorn_core.Client
module Deployment = Alpenhorn_core.Deployment
module Mailbox = Alpenhorn_mixnet.Mailbox
module Tel = Alpenhorn_telemetry.Telemetry
open Bench_util

(* Real end-to-end rounds with n in-process clients on the test curve.
   All timing comes out of the telemetry registry (round spans and the
   per-server unwrap histogram), not ad-hoc stopwatches — the same
   snapshot a deployment would export. *)
(* label-merged histogram of a snapshot (same fold the SLO engine uses) *)
let hist_merged (snap : Tel.Snapshot.t) name =
  List.fold_left
    (fun acc (n, _, s) -> if n = name then Tel.Histogram.merge acc s else acc)
    Tel.Histogram.empty snap.Tel.Snapshot.histograms

let e2e () =
  header "End-to-end: real protocol, in-process deployment (test curve)";
  row
    [
      pad 10 "clients"; padl 14 "add-friend"; padl 14 "dialing"; padl 12 "unwrap";
      padl 14 "scans (hits)"; padl 12 "mailbox"; padl 12 "alloc"; padl 10 "gc pause";
    ];
  let machine = Buffer.create 256 in
  Buffer.add_string machine "{";
  List.iteri
    (fun i n ->
      let config = { Config.test with Config.addfriend_noise_mu = 5.0; dialing_noise_mu = 10.0 } in
      let d = Deployment.create ~config ~seed:(Printf.sprintf "bench-e2e-%d" n) in
      let clients =
        List.init n (fun i ->
            Deployment.new_client d
              ~email:(Printf.sprintf "u%d@bench" i)
              ~callbacks:Client.null_callbacks)
      in
      List.iter
        (fun c -> match Deployment.register d c with Ok () -> () | Error _ -> assert false)
        clients;
      (* 10% of clients queue a real friend request *)
      let actives = Stdlib.max 1 (n / 10) in
      List.iteri
        (fun i c ->
          if i < actives then
            Client.add_friend c ~email:(Printf.sprintf "u%d@bench" ((i + (n / 2)) mod n)) ())
        clients;
      (* flush pending GC deltas into the pre-reset window so the post-round
         runtime counters cover exactly these two rounds *)
      Alpenhorn_telemetry.Runtime_stats.sample (Alpenhorn_telemetry.Runtime_stats.get_default ());
      ignore (Tel.Snapshot.take ~reset:true Tel.default);
      let s = Deployment.run_addfriend_round d () in
      let _ = Deployment.run_dialing_round d () in
      (* rounds already sampled at close (Deployment); the snapshot below
         carries runtime.alloc.* counters and the gc pause histogram *)
      let snap = Tel.Snapshot.take ~reset:true Tel.default in
      let af = Tel.Snapshot.span_total snap "round.addfriend" in
      let dial = Tel.Snapshot.span_total snap "round.dialing" in
      let unwrap = Tel.Snapshot.hist_sum snap "mix.unwrap_seconds" in
      let scans = Tel.Snapshot.counter_sum snap "client.scan_attempts" in
      let hits = Tel.Snapshot.counter_sum snap "client.scan_hits" in
      let alloc_words = Tel.Snapshot.counter_sum snap "runtime.alloc.minor_words" in
      let pause = hist_merged snap "runtime.gc.pause_seconds" in
      let pause_max = if pause.Tel.Histogram.count = 0 then 0.0 else pause.Tel.Histogram.max_v in
      row
        [
          pad 10 (string_of_int n);
          padl 14 (Printf.sprintf "%.2f s" af);
          padl 14 (Printf.sprintf "%.2f s" dial);
          padl 12 (Printf.sprintf "%.2f s" unwrap);
          padl 14 (Printf.sprintf "%d (%d)" scans hits);
          padl 12 (human_bytes (Array.fold_left ( + ) 0 s.Deployment.mailbox_bytes));
          padl 12 (Printf.sprintf "%s w" (si alloc_words));
          padl 10 (human_time (pause_max *. 1e9));
        ];
      Buffer.add_string machine
        (Printf.sprintf "%s\"e2e_%d_round_s\":%.3f,\"e2e_%d_alloc_mwords\":%.2f,\"e2e_%d_gc_pause_max_ms\":%.3f"
           (if i = 0 then "" else ",")
           n (af +. dial) n
           (float_of_int alloc_words /. 1e6)
           n (pause_max *. 1e3)))
    [ 10; 25; 50 ];
  Buffer.add_string machine "}";
  print_endline "every round runs genuine IBE, onions, noise, shuffles and Bloom filters;";
  print_endline "the phase breakdown is read from the telemetry snapshot, not stopwatches;";
  print_endline "alloc and gc pause come from the runtime sampler (lib/telemetry/runtime_stats).";
  (* machine-readable line for transcribing into BENCH_e2e.json *)
  print_endline (Buffer.contents machine)

(* Ablation (§4.2): Anytrust-IBE vs naive onion-IBE as PKG count grows. *)
let ablation_onion () =
  header "Ablation: Anytrust-IBE vs onion-IBE (naive nesting), by PKG count";
  let pr = Params.test () in
  let rng = Drbg.create ~seed:"ablation-onion" in
  let msg = String.make 100 'm' in
  row
    [
      pad 6 "PKGs"; padl 14 "anytrust size"; padl 14 "onion size"; padl 14 "anytrust dec";
      padl 14 "onion dec";
    ];
  List.iter
    (fun n ->
      let pkgs = List.init n (fun _ -> Ibe.setup pr rng) in
      let keys = List.map (fun (msk, _) -> Ibe.extract pr msk "a@b") pkgs in
      (* anytrust: one ciphertext under the key sum *)
      let mpk_agg = Ibe.aggregate_public pr (List.map snd pkgs) in
      let d_agg = Ibe.aggregate_identity pr keys in
      let c_any = Ibe.encrypt pr rng mpk_agg ~id:"a@b" msg in
      let t_any = time_ns ~quota:0.5 "any" (fun () -> Ibe.decrypt pr d_agg c_any) in
      (* onion: nested encryptions, innermost first *)
      let c_onion =
        List.fold_left (fun acc (_, mpk) -> Ibe.encrypt pr rng mpk ~id:"a@b" acc) msg pkgs
      in
      let t_onion =
        time_ns ~quota:0.5 "onion" (fun () ->
            List.fold_left
              (fun acc d -> match acc with Some m -> Ibe.decrypt pr d m | None -> None)
              (Some c_onion) (List.rev keys))
      in
      row
        [
          pad 6 (string_of_int n);
          padl 14 (human_bytes (String.length c_any));
          padl 14 (human_bytes (String.length c_onion));
          padl 14 (human_time t_any);
          padl 14 (human_time t_onion);
        ])
    [ 1; 2; 3; 5 ];
  print_endline "anytrust cost is flat in the number of PKGs; onion-IBE grows linearly (§4.2)."

(* Ablation (§5.2): Bloom filter vs raw token list download size. *)
let ablation_bloom () =
  header "Ablation: dialing mailbox encoding (Bloom filter vs raw 32-byte tokens)";
  row [ pad 10 "tokens"; padl 12 "bloom"; padl 12 "raw"; padl 8 "ratio" ];
  List.iter
    (fun n ->
      let bloom_bytes = n * Bloom.bits_per_element / 8 in
      let raw = n * 32 in
      row
        [
          pad 10 (si n);
          padl 12 (human_bytes bloom_bytes);
          padl 12 (human_bytes raw);
          padl 8 (Printf.sprintf "%.1fx" (float_of_int raw /. float_of_int bloom_bytes));
        ])
    [ 1_000; 125_000; 1_000_000 ];
  print_endline "paper: 48-bit encoding makes the 1M-user filter 0.75 MB instead of 4 MB."

(* Ablation (§6): mailbox-count balance — noise overhead vs download size. *)
let ablation_mailboxes () =
  header "Ablation: mailbox count vs noise overhead and client download (1M users, add-friend)";
  let pr = Params.production () in
  let request_bytes = Alpenhorn_core.Wire.request_ciphertext_size pr in
  let active = 50_000 and mu = 4000.0 and servers = 3 in
  row [ pad 10 "mailboxes"; padl 14 "download"; padl 16 "total noise"; padl 16 "noise fraction" ];
  List.iter
    (fun k ->
      let per_mailbox = (float_of_int active /. float_of_int k) +. (mu *. float_of_int servers) in
      let download = int_of_float (per_mailbox *. float_of_int request_bytes) in
      let total_noise = int_of_float (mu *. float_of_int (servers * k)) in
      row
        [
          pad 10 (string_of_int k);
          padl 14 (human_bytes download);
          padl 16 (Printf.sprintf "%d msgs" total_noise);
          padl 16
            (Printf.sprintf "%.0f%%"
               (100.0 *. float_of_int total_noise /. float_of_int (total_noise + active)));
        ])
    [ 1; 2; 4; 8; 16; 42 ];
  let balanced = Mailbox.num_mailboxes_for ~expected_real:active ~noise_mu:mu ~chain_length:servers in
  Printf.printf "the §6 balance rule picks K = %d: noise ≈ real per mailbox.\n" balanced

(* §9 DoS mitigation: cost of the blind-signature admission control. *)
let ratelimit () =
  header "Rate limiting (§9): blind-signature token costs";
  let pr = Params.production () in
  let rng = Drbg.create ~seed:"bench-ratelimit" in
  let module Blind = Alpenhorn_bls.Blind in
  let module Ratelimit = Alpenhorn_mixnet.Ratelimit in
  let issuer = Ratelimit.create_issuer pr ~rng ~quota_per_day:1_000_000 in
  let issuer_pk = Ratelimit.issuer_public issuer in
  let t_blind = time_ns "blind" (fun () -> Blind.blind pr rng ~msg:"serial") in
  let blinded, r = Blind.blind pr rng ~msg:"serial" in
  let t_issue =
    time_ns "issue" (fun () -> Ratelimit.issue issuer ~now:0 ~user:"u@x" blinded)
  in
  let signed =
    match Ratelimit.issue issuer ~now:0 ~user:"w@x" blinded with
    | Ok s -> s
    | Error _ -> assert false
  in
  let signature = Blind.unblind pr issuer_pk ~signed r in
  let t_unblind = time_ns "unblind" (fun () -> Blind.unblind pr issuer_pk ~signed r) in
  let t_verify = time_ns "gate-verify" (fun () -> Blind.verify pr issuer_pk ~msg:"serial" signature) in
  row [ pad 24 "operation"; padl 12 "cost"; pad 30 "  runs on" ];
  row [ pad 24 "blind a serial"; padl 12 (human_time t_blind); pad 30 "  client" ];
  row [ pad 24 "issue (sign blinded)"; padl 12 (human_time t_issue); pad 30 "  issuer, per token/day" ];
  row [ pad 24 "unblind"; padl 12 (human_time t_unblind); pad 30 "  client" ];
  row [ pad 24 "gate verification"; padl 12 (human_time t_verify); pad 30 "  entry server, per onion" ];
  Printf.printf "token size on the wire: %d bytes\n" (Ratelimit.token_size pr);
  print_endline "gate verification is two pairings; the entry server can parallelize per-core."

(* Ablation: store-and-forward (the paper's design) vs a streaming mixnet,
   replayed on the discrete-event engine. *)
let ablation_pipeline () =
  header "Ablation: store-and-forward vs streaming mixnet (DES replay, 10M users, 3 servers)";
  let module Round_sim = Alpenhorn_sim.Round_sim in
  let module Costmodel = Alpenhorn_sim.Costmodel in
  let pr = Params.production () in
  let pc = Costmodel.protocol_costs pr in
  let m = Costmodel.paper_machine in
  row [ pad 10 "chunks"; padl 14 "add-friend"; padl 14 "dialing" ];
  List.iter
    (fun chunks ->
      let af =
        (Round_sim.addfriend m pc ~n_users:10_000_000 ~n_servers:3 ~noise_mu:4000.0
           ~active_fraction:0.05 ~chunks)
          .Round_sim.client_done
      in
      let dial =
        (Round_sim.dialing m pc ~n_users:10_000_000 ~n_servers:3 ~noise_mu:25000.0
           ~active_fraction:0.05 ~friends:1000 ~intents:10 ~chunks)
          .Round_sim.client_done
      in
      row
        [
          pad 10 (string_of_int chunks);
          padl 14 (Printf.sprintf "%.1f s" af);
          padl 14 (Printf.sprintf "%.1f s" dial);
        ])
    [ 1; 2; 4; 8; 16; 64 ];
  print_endline "chunks = 1 is the paper's batch design (matches Fig 8/9); streaming would cut";
  print_endline "latency ~3x on a 3-server chain but leaks arrival-order information, which is";
  print_endline "why Alpenhorn batches entire rounds."
