(* System-scale figure reproductions (Figures 6-10 and the §8.4 mailbox-size
   table), priced by the calibrated cost model over the real wire formats. *)

module Costmodel = Alpenhorn_sim.Costmodel
module Workload = Alpenhorn_sim.Workload
module Stats = Alpenhorn_sim.Stats
module Zipf = Alpenhorn_sim.Zipf
module Round_sim = Alpenhorn_sim.Round_sim
module Bloom = Alpenhorn_bloom.Bloom
module Drbg = Alpenhorn_crypto.Drbg
open Bench_util

let durations_hours = [ 0.5; 1.0; 2.0; 4.0; 8.0; 12.0; 24.0 ]
let durations_minutes = [ 1.0; 2.0; 3.0; 5.0; 8.0; 10.0 ]

(* Fig 6: add-friend client bandwidth vs round duration. *)
let fig6 pc =
  header "Figure 6: add-friend client bandwidth (KB/s) vs round duration";
  row ([ pad 10 "hours" ] @ List.map (fun n -> padl 10 (si n)) user_points);
  List.iter
    (fun hours ->
      let cells =
        List.map
          (fun n_users ->
            let bw =
              Costmodel.addfriend_bandwidth pc ~n_users ~n_servers:3 ~noise_mu:4000.0
                ~active_fraction:0.05 ~round_seconds:(hours *. 3600.0)
            in
            padl 10 (Printf.sprintf "%.3f" (bw /. 1000.0)))
          user_points
      in
      row ([ pad 10 (Printf.sprintf "%.1f" hours) ] @ cells))
    durations_hours;
  print_endline "paper reference: ~2 KB/s at 1h/1M users, falling hyperbolically with duration;";
  print_endline "mailbox ~7.4 MB at >=1M users (ours is proportionally smaller: 256 B requests vs 308 B)."

(* Fig 7: dialing client bandwidth vs round duration. *)
let fig7 pc =
  header "Figure 7: dialing client bandwidth (KB/s) vs round duration";
  row ([ pad 10 "minutes" ] @ List.map (fun n -> padl 10 (si n)) user_points);
  List.iter
    (fun minutes ->
      let cells =
        List.map
          (fun n_users ->
            let bw =
              Costmodel.dialing_bandwidth pc ~n_users ~n_servers:3 ~noise_mu:25000.0
                ~active_fraction:0.05 ~round_seconds:(minutes *. 60.0)
            in
            padl 10 (Printf.sprintf "%.2f" (bw /. 1000.0)))
          user_points
      in
      row ([ pad 10 (Printf.sprintf "%.0f" minutes) ] @ cells))
    durations_minutes;
  print_endline "paper reference: 3 KB/s at 5-minute rounds with 10M users (Bloom filter ~0.9 MB);";
  print_endline "1M users fit one 0.75 MB filter."

let latency_table pc machine ~label ~dial =
  row ([ pad 10 "users" ] @ List.map (fun s -> padl 12 (Printf.sprintf "%d servers" s)) [ 3; 5; 10 ]);
  List.iter
    (fun n_users ->
      let cells =
        List.map
          (fun n_servers ->
            let breakdown =
              if dial then
                Costmodel.dialing_round machine pc ~n_users ~n_servers ~noise_mu:25000.0
                  ~active_fraction:0.05 ~friends:1000 ~intents:10 ()
              else
                Costmodel.addfriend_round machine pc ~n_users ~n_servers ~noise_mu:4000.0
                  ~active_fraction:0.05 ()
            in
            padl 12 (Printf.sprintf "%.1f s" breakdown.Costmodel.total_seconds))
          [ 3; 5; 10 ]
      in
      row ([ pad 10 (si n_users) ] @ cells))
    user_points;
  print_endline label

(* Fig 8: AddFriend latency vs number of users, for 3/5/10 servers. *)
let fig8 pc =
  header "Figure 8: AddFriend request latency vs online users (paper-calibrated machine)";
  latency_table pc Costmodel.paper_machine ~dial:false
    ~label:"paper reference: 152 s at 10M users / 3 servers; more servers = higher latency.";
  header "Figure 8 (local calibration: this machine's pure-OCaml crypto, 1 core)";
  let local = Costmodel.measure_local (Alpenhorn_pairing.Params.production ()) in
  latency_table pc local ~dial:false
    ~label:"absolute numbers differ (no assembly pairings, 1 core); the shape must match."

(* Fig 9: Call latency vs number of users. *)
let fig9 pc =
  header "Figure 9: Call request latency vs online users (paper-calibrated machine)";
  latency_table pc Costmodel.paper_machine ~dial:true
    ~label:"paper reference: 118 s at 10M users / 3 servers.";
  header "Figure 9 (local calibration)";
  let local = Costmodel.measure_local (Alpenhorn_pairing.Params.production ()) in
  latency_table pc local ~dial:true ~label:""

(* Fig 10 + §8.4: latency and mailbox sizes under Zipf-skewed popularity.
   We sample the real per-mailbox request distribution and price each
   mailbox's download+scan individually. *)
let fig10 pc =
  header "Figure 10: AddFriend latency under Zipf-skewed popularity (1M users, 3 servers)";
  let machine = Costmodel.paper_machine in
  row [ pad 8 "skew s"; padl 10 "min"; padl 10 "median"; padl 10 "max"; padl 14 "mailbox range" ];
  List.iter
    (fun s ->
      let spec =
        {
          Workload.n_users = 1_000_000;
          active_fraction = 0.05;
          recipient_skew = s;
          noise_mu = 4000.0;
          laplace_b = 0.0;
          chain_length = 3;
        }
      in
      let rng = Drbg.create ~seed:(Printf.sprintf "fig10-%.2f" s) in
      let load = Workload.generate spec rng in
      let totals = Workload.total load in
      (* per-request latency: each real request lands in a mailbox whose
         size fixes the receiver's download + scan time *)
      let lat_of_mailbox m =
        (Costmodel.addfriend_round machine pc ~n_users:1_000_000 ~n_servers:3 ~noise_mu:4000.0
           ~active_fraction:0.05 ~mailbox_requests:totals.(m) ())
          .Costmodel.total_seconds
      in
      let lat = Array.init (Array.length totals) lat_of_mailbox in
      let weighted =
        Array.mapi (fun m l -> (l, float_of_int load.Workload.real.(m))) lat
      in
      let bytes m = totals.(m) * pc.Costmodel.request_bytes in
      let sizes = Array.init (Array.length totals) bytes in
      row
        [
          pad 8 (Printf.sprintf "%.1f" s);
          padl 10 (Printf.sprintf "%.1f s" (Stats.min lat));
          padl 10 (Printf.sprintf "%.1f s" (Stats.weighted_percentile weighted 50.0));
          padl 10 (Printf.sprintf "%.1f s" (Stats.max lat));
          padl 14
            (Printf.sprintf "%s-%s"
               (human_bytes (Array.fold_left Stdlib.min sizes.(0) sizes))
               (human_bytes (Array.fold_left Stdlib.max sizes.(0) sizes)));
        ])
    [ 0.0; 0.5; 1.0; 1.5; 2.0 ];
  print_endline "paper reference: median flat (~20 s); min falls / max grows with skew;";
  print_endline "at s=2 mailboxes range 4.15-14.95 MB (308 B requests; ours are 256 B)."

(* §8.4 dialing sizes under skew at 10M users. *)
let skewsize pc =
  header "Section 8.4: dialing mailbox (Bloom filter) sizes under skew, 10M users";
  row [ pad 8 "skew s"; padl 12 "min filter"; padl 12 "max filter"; padl 12 "lat min"; padl 12 "lat max" ];
  let machine = Costmodel.paper_machine in
  List.iter
    (fun s ->
      let spec =
        {
          Workload.n_users = 10_000_000;
          active_fraction = 0.05;
          recipient_skew = s;
          noise_mu = 25000.0;
          laplace_b = 0.0;
          chain_length = 3;
        }
      in
      let rng = Drbg.create ~seed:(Printf.sprintf "skewsize-%.2f" s) in
      let load = Workload.generate spec rng in
      let totals = Workload.total load in
      let filter_bytes = Array.map (fun n -> n * Bloom.bits_per_element / 8) totals in
      let lat m =
        (Costmodel.dialing_round machine pc ~n_users:10_000_000 ~n_servers:3 ~noise_mu:25000.0
           ~active_fraction:0.05 ~friends:1000 ~intents:10 ~mailbox_tokens:totals.(m) ())
          .Costmodel.total_seconds
      in
      let lats = Array.init (Array.length totals) lat in
      row
        [
          pad 8 (Printf.sprintf "%.1f" s);
          padl 12 (human_bytes (Array.fold_left Stdlib.min filter_bytes.(0) filter_bytes));
          padl 12 (human_bytes (Array.fold_left Stdlib.max filter_bytes.(0) filter_bytes));
          padl 12 (Printf.sprintf "%.1f s" (Stats.min lats));
          padl 12 (Printf.sprintf "%.1f s" (Stats.max lats));
        ])
    [ 0.0; 2.0 ];
  print_endline "paper reference at s=2: filters 231 KB-1.39 MB, latency 119-120 s."

(* Full-scale cross-check (DESIGN.md §15): every §8.3 figure evaluated at
   1M users in one table, plus the sharded §5.1 download the scale path
   adds — the row `bench scale` measures for real with synthetic tokens. *)
let figscale pc =
  header "Full scale: Figures 6-10 at 1M users, with the sharded download model";
  let machine = Costmodel.paper_machine in
  let n_users = 1_000_000 in
  row [ pad 34 "figure"; padl 14 "value"; padl 26 "setting" ];
  let af_bw =
    Costmodel.addfriend_bandwidth pc ~n_users ~n_servers:3 ~noise_mu:4000.0 ~active_fraction:0.05
      ~round_seconds:3600.0
  in
  row
    [
      pad 34 "fig 6: add-friend bandwidth"; padl 14 (Printf.sprintf "%.3f KB/s" (af_bw /. 1000.0));
      padl 26 "1 h rounds, 3 servers";
    ];
  let dial_bw =
    Costmodel.dialing_bandwidth pc ~n_users ~n_servers:3 ~noise_mu:25000.0 ~active_fraction:0.05
      ~round_seconds:300.0
  in
  row
    [
      pad 34 "fig 7: dialing bandwidth"; padl 14 (Printf.sprintf "%.2f KB/s" (dial_bw /. 1000.0));
      padl 26 "5 min rounds, 3 servers";
    ];
  let af_lat =
    (Costmodel.addfriend_round machine pc ~n_users ~n_servers:3 ~noise_mu:4000.0
       ~active_fraction:0.05 ())
      .Costmodel.total_seconds
  in
  row
    [
      pad 34 "fig 8: add-friend latency"; padl 14 (Printf.sprintf "%.1f s" af_lat);
      padl 26 "paper-calibrated machine";
    ];
  let dial_lat =
    (Costmodel.dialing_round machine pc ~n_users ~n_servers:3 ~noise_mu:25000.0
       ~active_fraction:0.05 ~friends:1000 ~intents:10 ())
      .Costmodel.total_seconds
  in
  row
    [
      pad 34 "fig 9: dialing latency"; padl 14 (Printf.sprintf "%.1f s" dial_lat);
      padl 26 "paper-calibrated machine";
    ];
  (* fig 10 shape at 1M: the skewed median must stay flat vs the uniform row *)
  let median s =
    let spec =
      {
        Workload.n_users;
        active_fraction = 0.05;
        recipient_skew = s;
        noise_mu = 4000.0;
        laplace_b = 0.0;
        chain_length = 3;
      }
    in
    let rng = Drbg.create ~seed:(Printf.sprintf "figscale-%.2f" s) in
    let load = Workload.generate spec rng in
    let totals = Workload.total load in
    let lat m =
      (Costmodel.addfriend_round machine pc ~n_users ~n_servers:3 ~noise_mu:4000.0
         ~active_fraction:0.05 ~mailbox_requests:totals.(m) ())
        .Costmodel.total_seconds
    in
    let weighted =
      Array.mapi (fun m n -> (lat m, float_of_int n)) load.Workload.real
    in
    Stats.weighted_percentile weighted 50.0
  in
  let m0 = median 0.0 and m2 = median 2.0 in
  row
    [
      pad 34 "fig 10: median latency, s=0 vs s=2";
      padl 14 (Printf.sprintf "%.1f / %.1f s" m0 m2);
      padl 26 "median must stay flat";
    ];
  (* the sharded §5.1 variant on the DES replay: shard download instead of
     one mailbox, scale.* gauges set for the SLO rules *)
  let tl =
    Round_sim.dialing machine ~num_shards:16 pc ~n_users ~n_servers:3 ~noise_mu:25000.0
      ~active_fraction:0.05 ~friends:1000 ~intents:10 ~chunks:1
  in
  let snap = Alpenhorn_telemetry.Telemetry.Snapshot.take Alpenhorn_telemetry.Telemetry.default in
  let shard_bytes =
    List.fold_left
      (fun acc (n, _, v) -> if n = "scale.bytes_per_client" then v else acc)
      0.0 snap.Alpenhorn_telemetry.Telemetry.Snapshot.gauges
  in
  row
    [
      pad 34 "fig 9 + §5.1 sharding: dialing";
      padl 14 (Printf.sprintf "%.1f s" tl.Round_sim.client_done);
      padl 26 (Printf.sprintf "16 shards, %s/client" (human_bytes (int_of_float shard_bytes)));
    ];
  print_endline "all five figures priced at 1M users by the same calibrated model the per-figure";
  print_endline "sections sweep; the sharded row replays the round on the DES engine with the";
  print_endline "client downloading its contiguous-range shard (bench scale measures it for real)."
