(* bench_diff engine: the CI perf gate's regression detection, series
   filtering, vanished-series handling and telemetry-snapshot flattening. *)

module Tel = Alpenhorn_telemetry.Telemetry
module Diff = Alpenhorn_bench_diff.Diff_engine

let parse s =
  match Tel.Json.parse s with
  | Some d -> d
  | None -> Alcotest.failf "fixture is not valid JSON: %s" s

let row rows series =
  match List.find_opt (fun (r : Diff.row) -> r.series = series) rows with
  | Some r -> r
  | None -> Alcotest.failf "no row for series %s" series

let suite =
  [
    Alcotest.test_case "a 20%% regression trips a 10%% gate but not a 25%% one" `Quick
      (fun () ->
        let before = parse {|{"after": {"pairing": 10.0, "ibe": 4.0}}|} in
        let after = parse {|{"after": {"pairing": 12.0, "ibe": 4.0}}|} in
        let rows = Diff.diff ~threshold_pct:10.0 ~before ~after () in
        Alcotest.(check int) "both series compared" 2 (List.length rows);
        let bad = Diff.regressions rows in
        Alcotest.(check (list string)) "exactly the slowed series flagged"
          [ "after.pairing" ]
          (List.map (fun (r : Diff.row) -> r.Diff.series) bad);
        Alcotest.(check (float 1e-9)) "pct change computed" 20.0
          (row rows "after.pairing").Diff.pct;
        let lenient = Diff.diff ~threshold_pct:25.0 ~before ~after () in
        Alcotest.(check (list string)) "25% gate passes it" []
          (List.map (fun (r : Diff.row) -> r.Diff.series) (Diff.regressions lenient)));
    Alcotest.test_case "series prefix filter" `Quick (fun () ->
        let before = parse {|{"after": {"pairing": 10.0}, "before": {"pairing": 50.0}}|} in
        let after = parse {|{"after": {"pairing": 30.0}, "before": {"pairing": 90.0}}|} in
        let rows = Diff.diff ~threshold_pct:10.0 ~series:[ "after." ] ~before ~after () in
        Alcotest.(check (list string)) "only the filtered prefix is compared"
          [ "after.pairing" ]
          (List.map (fun (r : Diff.row) -> r.Diff.series) rows));
    Alcotest.test_case "a vanished series is reported but never a regression" `Quick
      (fun () ->
        let before = parse {|{"a": 1.0, "b": 2.0}|} in
        let after = parse {|{"a": 1.0}|} in
        let rows = Diff.diff ~threshold_pct:10.0 ~before ~after () in
        let gone = row rows "b" in
        Alcotest.(check (option (float 1e-9))) "no after value" None gone.Diff.after_v;
        Alcotest.(check bool) "not counted as regressed" false gone.Diff.regressed;
        ignore (Format.asprintf "%a" Diff.pp rows));
    Alcotest.test_case "telemetry snapshots flatten by metric name, not position" `Quick
      (fun () ->
        let r = Tel.create () in
        Tel.Counter.add (Tel.Counter.v r ~labels:[ ("server", "1") ] "mix.onions_in") 7;
        Tel.Gauge.set (Tel.Gauge.v r "mailbox.max_load") 42.0;
        Tel.Histogram.observe (Tel.Histogram.v r "scan.bytes") 128.0;
        let doc = parse (Tel.Snapshot.to_json (Tel.Snapshot.take r)) in
        let leaves = Diff.flatten doc in
        let v key =
          match List.assoc_opt key leaves with
          | Some x -> x
          | None ->
            Alcotest.failf "missing series %s in %s" key
              (String.concat ", " (List.map fst leaves))
        in
        Alcotest.(check (float 1e-9)) "labeled counter keyed by name+labels" 7.0
          (v "counters.mix.onions_in{server=1}");
        Alcotest.(check (float 1e-9)) "gauge value" 42.0 (v "gauges.mailbox.max_load");
        Alcotest.(check (float 1e-9)) "histogram count field" 1.0
          (v "histograms.scan.bytes.count");
        Alcotest.(check (float 1e-9)) "histogram sum field" 128.0
          (v "histograms.scan.bytes.sum"));
    Alcotest.test_case "checked-in pairing benchmark compares clean against itself" `Quick
      (fun () ->
        (* cwd is the test dir under `dune runtest`, the workspace root
           under `dune exec` *)
        let path =
          List.find Sys.file_exists [ "../BENCH_pairing.json"; "BENCH_pairing.json" ]
        in
        let doc =
          let ic = open_in_bin path in
          let s = really_input_string ic (in_channel_length ic) in
          close_in ic;
          parse s
        in
        let rows = Diff.diff ~threshold_pct:10.0 ~series:[ "after." ] ~before:doc ~after:doc () in
        Alcotest.(check bool) "baseline has series" true (rows <> []);
        Alcotest.(check (list string)) "self-diff never regresses" []
          (List.map (fun (r : Diff.row) -> r.Diff.series) (Diff.regressions rows)));
  ]
