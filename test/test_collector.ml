(* Fleet collector and exposition constant labels (DESIGN.md §14):
   Prometheus constant-label rendering, snapshot merging under instance
   labels, /metrics.json round-trips, and the staleness machinery —
   everything the orchestrator-side scraper relies on, with no sockets
   (the HTTP client is injected). *)

module Tel = Alpenhorn_telemetry.Telemetry
module Collector = Alpenhorn_telemetry.Collector
module Expose = Alpenhorn_telemetry.Expose
module Slo = Alpenhorn_telemetry.Slo

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let check_contains body needle =
  if not (contains body needle) then
    Alcotest.failf "expected %S in:\n%s" needle body

(* fetch for collectors that only hold Local instances *)
let no_fetch ~host:_ ~port:_ _ = Error "refused: no network in tests"

let find_check (report : Slo.report) name =
  match List.find_opt (fun (c : Slo.check) -> c.rule.Slo.name = name) report.checks with
  | Some c -> c
  | None -> Alcotest.failf "rule %s missing from report" name

let gauge_value snap ~labels name =
  List.find_map
    (fun (n, l, v) -> if n = name && l = List.sort compare labels then Some v else None)
    snap.Tel.Snapshot.gauges

(* ---------- exposition: constant labels ---------- *)

let exposition_tests =
  [
    Alcotest.test_case "constant labels merge into every sample" `Quick (fun () ->
        let reg = Tel.create () in
        Tel.Counter.inc (Tel.Counter.v reg ~labels:[ ("tag", "0x10") ] "rpc.call");
        Tel.Gauge.set (Tel.Gauge.v reg "net.open_connections") 3.0;
        (* a metric carrying its own [instance] label must beat the
           constant one *)
        Tel.Counter.inc (Tel.Counter.v reg ~labels:[ ("instance", "me") ] "pkg.requests");
        let body =
          Expose.metrics_text
            ~labels:[ ("instance", "pkg-0"); ("role", "pkg") ]
            (Tel.Snapshot.take reg)
        in
        check_contains body {|rpc_call{instance="pkg-0",role="pkg",tag="0x10"} 1|};
        check_contains body {|net_open_connections{instance="pkg-0",role="pkg"} 3|};
        check_contains body {|instance="me"|};
        if contains body {|pkg_requests{instance="pkg-0"|} then
          Alcotest.fail "constant label overrode the metric's own instance label");
    Alcotest.test_case "constant label values are escaped" `Quick (fun () ->
        Alcotest.(check string)
          "escapes" "a\\\\b\\\"c\\nd"
          (Expose.escape_label_value "a\\b\"c\nd");
        let reg = Tel.create () in
        Tel.Counter.inc (Tel.Counter.v reg "x");
        let body =
          Expose.metrics_text ~labels:[ ("note", "say \"hi\"\n") ] (Tel.Snapshot.take reg)
        in
        check_contains body {|x{note="say \"hi\"\n"} 1|});
  ]

(* ---------- merging ---------- *)

let merge_tests =
  [
    Alcotest.test_case "two local instances merge under instance labels" `Quick (fun () ->
        let reg_a = Tel.create () and reg_b = Tel.create () in
        Tel.Counter.add (Tel.Counter.v reg_a "rpc.errors") 2;
        Tel.Counter.add (Tel.Counter.v reg_b "rpc.errors") 3;
        Tel.Gauge.set (Tel.Gauge.v reg_a "runtime.heap_words") 100.0;
        Tel.Gauge.set (Tel.Gauge.v reg_b "runtime.heap_words") 250.0;
        (Tel.Histogram.observe (Tel.Histogram.v reg_a "rpc.request_seconds")) 0.010;
        (Tel.Histogram.observe (Tel.Histogram.v reg_b "rpc.request_seconds")) 0.050;
        Tel.Span.emit reg_a ~name:"pkg.extract" ~ts:0.0 ~dur:0.002 ();
        let coll =
          Collector.create ~clock:(fun () -> 0.0) ~fetch:no_fetch
            [
              Collector.instance ~name:"pkg-0" (Collector.Local reg_a);
              Collector.instance ~name:"mixer-1" (Collector.Local reg_b);
            ]
        in
        Collector.scrape coll;
        let m = Collector.merged coll in
        (* fleet sum crosses instances; per-instance series stay distinct *)
        Alcotest.(check int) "fleet rpc.errors" 5 (Tel.Snapshot.counter_sum m "rpc.errors");
        Alcotest.(check (option int))
          "pkg-0 share" (Some 2)
          (Tel.Snapshot.find_counter m
             ~labels:[ ("instance", "pkg-0"); ("role", "pkg") ]
             "rpc.errors");
        Alcotest.(check (option (float 0.0)))
          "mixer heap" (Some 250.0)
          (gauge_value m ~labels:[ ("instance", "mixer-1"); ("role", "mixer") ]
             "runtime.heap_words");
        (* both up, zero staleness *)
        Alcotest.(check (option (float 0.0)))
          "pkg-0 up" (Some 1.0)
          (gauge_value m ~labels:[ ("instance", "pkg-0"); ("role", "pkg") ]
             "fleet.instance_up");
        Alcotest.(check (option (float 0.0)))
          "mixer-1 up" (Some 1.0)
          (gauge_value m ~labels:[ ("instance", "mixer-1"); ("role", "mixer") ]
             "fleet.instance_up");
        (* spans keep their owner's label for trace stitching *)
        (match m.Tel.Snapshot.spans with
        | [ s ] ->
          Alcotest.(check string) "span name" "pkg.extract" s.Tel.Snapshot.name;
          Alcotest.(check (option string))
            "span instance" (Some "pkg-0")
            (List.assoc_opt "instance" s.Tel.Snapshot.labels)
        | l -> Alcotest.failf "expected 1 merged span, got %d" (List.length l));
        (* the stock rules see the fleet: 5 errors breach zero_rpc_errors,
           liveness holds *)
        let report = Collector.evaluate coll (Collector.fleet_rules ()) in
        Alcotest.(check bool) "unhealthy" false report.Slo.healthy;
        Alcotest.(check bool) "errors rule fails" false (find_check report "fleet.zero_rpc_errors").Slo.pass;
        Alcotest.(check bool) "liveness holds" true (find_check report "fleet.instances_up").Slo.pass;
        (* rows: the top --fleet data source *)
        match Collector.rows coll with
        | [ a; b ] ->
          Alcotest.(check string) "row order" "pkg-0" a.Collector.row_name;
          Alcotest.(check bool) "row up" true a.Collector.row_up;
          Alcotest.(check int) "row errors" 3 b.Collector.row_rpc_errors;
          Alcotest.(check int) "row spans" 1 a.Collector.row_spans
        | l -> Alcotest.failf "expected 2 rows, got %d" (List.length l));
  ]

(* ---------- /metrics.json round-trip ---------- *)

let parse_tests =
  [
    Alcotest.test_case "snapshot_of_json round-trips a live snapshot" `Quick (fun () ->
        (* fixed clock: the registry epoch is 2.0, so a span emitted at
           absolute 3.5 round-trips as epoch-relative 1.5 *)
        let reg = Tel.create ~clock:(fun () -> 2.0) () in
        Tel.Counter.add (Tel.Counter.v reg ~labels:[ ("tag", "0x20") ] "rpc.call") 7;
        Tel.Gauge.set (Tel.Gauge.v reg "mix.noise") 12.5;
        let h = Tel.Histogram.v reg "rpc.request_seconds" in
        List.iter (Tel.Histogram.observe h) [ 0.001; 0.004; 0.020 ];
        Tel.Span.emit reg ~labels:[ ("trace", "9") ] ~name:"mix.process" ~ts:3.5 ~dur:0.25 ();
        let snap = Tel.Snapshot.take reg in
        let doc =
          match Tel.Json.parse (Tel.Snapshot.to_json snap) with
          | Some d -> d
          | None -> Alcotest.fail "snapshot JSON did not parse"
        in
        let back =
          match Collector.snapshot_of_json doc with
          | Ok s -> s
          | Error e -> Alcotest.failf "snapshot_of_json: %s" e
        in
        Alcotest.(check (option int))
          "counter" (Some 7)
          (Tel.Snapshot.find_counter back ~labels:[ ("tag", "0x20") ] "rpc.call");
        Alcotest.(check (option (float 0.0)))
          "gauge" (Some 12.5) (gauge_value back ~labels:[] "mix.noise");
        (match back.Tel.Snapshot.histograms with
        | [ (n, [], hs) ] ->
          Alcotest.(check string) "hist name" "rpc.request_seconds" n;
          Alcotest.(check int) "hist count" 3 hs.Tel.Histogram.count;
          Alcotest.(check (float 1e-9)) "hist sum" 0.025 hs.Tel.Histogram.sum;
          Alcotest.(check (float 1e-9)) "hist min" 0.001 hs.Tel.Histogram.min_v;
          Alcotest.(check (float 1e-9)) "hist max" 0.020 hs.Tel.Histogram.max_v
        | l -> Alcotest.failf "expected 1 histogram, got %d" (List.length l));
        match back.Tel.Snapshot.spans with
        | [ s ] ->
          Alcotest.(check string) "span" "mix.process" s.Tel.Snapshot.name;
          Alcotest.(check (float 1e-9)) "span ts" 1.5 s.Tel.Snapshot.ts;
          Alcotest.(check (float 1e-9)) "span dur" 0.25 s.Tel.Snapshot.dur
        | l -> Alcotest.failf "expected 1 span, got %d" (List.length l));
    Alcotest.test_case "snapshot_of_json unwraps the labeled endpoint form" `Quick (fun () ->
        (* the per-server endpoint wraps the snapshot when constant labels
           are configured: {"labels":{...},"telemetry":<snapshot>} *)
        let reg = Tel.create () in
        Tel.Counter.inc (Tel.Counter.v reg "x");
        let wrapped =
          Printf.sprintf {|{"labels":{"instance":"pkg-0"},"telemetry":%s}|}
            (Tel.Snapshot.to_json (Tel.Snapshot.take reg))
        in
        match Tel.Json.parse wrapped with
        | None -> Alcotest.fail "wrapped JSON did not parse"
        | Some doc -> (
          match Collector.snapshot_of_json doc with
          | Error e -> Alcotest.failf "wrapped form rejected: %s" e
          | Ok s ->
            Alcotest.(check int) "counter survives" 1 (Tel.Snapshot.counter_sum s "x")));
    Alcotest.test_case "snapshot_of_json rejects non-snapshots" `Quick (fun () ->
        let reject s =
          match Tel.Json.parse s with
          | None -> ()
          | Some doc -> (
            match Collector.snapshot_of_json doc with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "accepted %s" s)
        in
        List.iter reject [ {|42|}; {|"text"|}; {|[1,2]|} ]);
  ]

(* ---------- staleness ---------- *)

let staleness_tests =
  [
    Alcotest.test_case "failed scrapes freeze the snapshot and trip the SLO" `Quick
      (fun () ->
        let now = ref 100.0 in
        let reachable = ref true in
        let served = Tel.create () in
        Tel.Counter.add (Tel.Counter.v served "rpc.calls") 11;
        let fetch ~host:_ ~port:_ path =
          Alcotest.(check string) "path" "/metrics.json" path;
          if !reachable then Ok (200, Tel.Snapshot.to_json (Tel.Snapshot.take served))
          else Error "refused: connect 127.0.0.1:9: Connection refused"
        in
        let coll =
          Collector.create
            ~clock:(fun () -> !now)
            ~fetch
            [
              Collector.instance ~name:"mixer-0"
                (Collector.Remote { host = "127.0.0.1"; port = 9 });
            ]
        in
        (* before any scrape: nothing known *)
        (match Collector.status coll with
        | [ (_, Collector.Never _, _) ] -> ()
        | _ -> Alcotest.fail "expected Never before first scrape");
        Collector.scrape coll;
        (match Collector.status coll with
        | [ ("mixer-0", Collector.Fresh, age) ] ->
          Alcotest.(check (float 0.0)) "fresh age" 0.0 age
        | _ -> Alcotest.fail "expected Fresh after first scrape");
        (* process dies; 30 simulated seconds pass *)
        reachable := false;
        now := !now +. 30.0;
        Collector.scrape coll;
        (match Collector.status coll with
        | [ ("mixer-0", Collector.Stale reason, age) ] ->
          Alcotest.(check bool)
            ("class prefix kept: " ^ reason)
            true
            (String.length reason >= 8 && String.sub reason 0 8 = "refused:");
          Alcotest.(check (float 1e-9)) "staleness age" 30.0 age
        | _ -> Alcotest.fail "expected Stale after failed scrape");
        let m = Collector.merged coll in
        (* the last good snapshot stays in the merged view... *)
        Alcotest.(check int) "frozen counter" 11 (Tel.Snapshot.counter_sum m "rpc.calls");
        (* ...while the liveness gauges report the failure *)
        let labels = [ ("instance", "mixer-0"); ("role", "mixer") ] in
        Alcotest.(check (option (float 0.0)))
          "down" (Some 0.0) (gauge_value m ~labels "fleet.instance_up");
        Alcotest.(check (option (float 1e-9)))
          "staleness gauge" (Some 30.0) (gauge_value m ~labels "fleet.staleness_seconds");
        let report =
          Collector.evaluate coll (Collector.fleet_rules ~max_staleness:10.0 ())
        in
        Alcotest.(check bool) "fleet unhealthy" false report.Slo.healthy;
        Alcotest.(check bool) "liveness breached" false (find_check report "fleet.instances_up").Slo.pass;
        Alcotest.(check bool) "staleness breached" false
          (find_check report "fleet.staleness_seconds").Slo.pass;
        (* recovery on a new port: repoint, scrape, fresh again *)
        reachable := true;
        now := !now +. 5.0;
        Collector.set_target coll ~name:"mixer-0"
          (Collector.Remote { host = "127.0.0.1"; port = 10 });
        Collector.scrape coll;
        (match Collector.status coll with
        | [ ("mixer-0", Collector.Fresh, _) ] -> ()
        | _ -> Alcotest.fail "expected Fresh after recovery");
        Alcotest.(check (option (float 0.0)))
          "up again" (Some 1.0)
          (gauge_value (Collector.merged coll) ~labels "fleet.instance_up");
        Alcotest.(check int) "three scrapes ringed" 3 (Collector.scrapes coll));
    Alcotest.test_case "create validates instances" `Quick (fun () ->
        Alcotest.check_raises "empty"
          (Invalid_argument "Collector.create: no instances") (fun () ->
            ignore (Collector.create ~fetch:no_fetch []));
        let dup () =
          ignore
            (Collector.create ~fetch:no_fetch
               [
                 Collector.instance ~name:"a" (Collector.Local (Tel.create ()));
                 Collector.instance ~name:"a" (Collector.Local (Tel.create ()));
               ])
        in
        match dup () with
        | () -> Alcotest.fail "duplicate names accepted"
        | exception Invalid_argument _ -> ());
  ]

let suite = exposition_tests @ merge_tests @ parse_tests @ staleness_tests
