(* Aggregated test runner: one suite per library plus integration. *)

let () =
  Alcotest.run "alpenhorn"
    [
      ("bigint", Test_bigint.suite);
      ("crypto", Test_crypto.suite);
      ("field", Test_field.suite);
      ("mont", Test_mont.suite);
      ("curve", Test_curve.suite);
      ("pairing", Test_pairing.suite);
      ("ibe", Test_ibe.suite);
      ("bls", Test_bls.suite);
      ("dh", Test_dh.suite);
      ("keywheel", Test_keywheel.suite);
      ("bloom", Test_bloom.suite);
      ("mixnet", Test_mixnet.suite);
      ("pkg", Test_pkg.suite);
      ("client", Test_client.suite);
      ("integration", Test_integration.suite);
      ("vuvuzela", Test_vuvuzela.suite);
      ("sim", Test_sim.suite);
      ("telemetry", Test_telemetry.suite);
      ("observe", Test_observe.suite);
      ("parallel", Test_parallel.suite);
      ("trace", Test_trace.suite);
      ("slo", Test_slo.suite);
      ("bench_diff", Test_bench_diff.suite);
      ("privacy", Test_privacy.suite);
      ("ratelimit", Test_ratelimit.suite);
      ("entry", Test_entry.suite);
      ("persist", Test_persist.suite);
      ("net", Test_net.suite);
      ("robustness", Test_robustness.suite);
      ("faults", Test_faults.suite);
      ("ledger", Test_ledger.suite);
      ("collector", Test_collector.suite);
      ("shard", Test_shard.suite);
      ("scale", Test_scale.suite);
    ]
