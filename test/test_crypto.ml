(* Crypto primitives against RFC test vectors plus behavioural properties. *)

module C = Alpenhorn_crypto
module Sha256 = C.Sha256
module Hmac = C.Hmac
module Chacha20 = C.Chacha20
module Aead = C.Aead
module Drbg = C.Drbg
module Util = C.Util

let hex = Util.to_hex

let sha256_vectors =
  (* FIPS 180-4 / RFC 6234 *)
  [
    ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
  ]

let unit_tests =
  [
    Alcotest.test_case "sha256 vectors" `Quick (fun () ->
        List.iter
          (fun (input, expect) ->
            Alcotest.(check string) ("sha256 of " ^ input) expect (hex (Sha256.digest input)))
          sha256_vectors);
    Alcotest.test_case "sha256 million a's" `Slow (fun () ->
        Alcotest.(check string) "million"
          "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
          (hex (Sha256.digest (String.make 1_000_000 'a'))));
    Alcotest.test_case "sha256 incremental equals one-shot" `Quick (fun () ->
        let data = String.init 1000 (fun i -> Char.chr (i land 0xff)) in
        List.iter
          (fun chunk ->
            let ctx = Sha256.init () in
            let rec feed pos =
              if pos < String.length data then begin
                let n = Stdlib.min chunk (String.length data - pos) in
                Sha256.update ctx (String.sub data pos n);
                feed (pos + n)
              end
            in
            feed 0;
            Alcotest.(check string)
              (Printf.sprintf "chunk=%d" chunk)
              (hex (Sha256.digest data))
              (hex (Sha256.finalize ctx)))
          [ 1; 7; 63; 64; 65; 128; 1000 ]);
    Alcotest.test_case "sha256 padding boundaries" `Quick (fun () ->
        (* lengths straddling the 55/56/64-byte padding edges must all differ *)
        let digests = List.map (fun n -> Sha256.digest (String.make n 'x')) [ 54; 55; 56; 57; 63; 64; 65 ] in
        let uniq = List.sort_uniq compare digests in
        Alcotest.(check int) "all distinct" (List.length digests) (List.length uniq));
    Alcotest.test_case "hmac rfc4231 cases" `Quick (fun () ->
        Alcotest.(check string) "case 1"
          "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
          (hex (Hmac.hmac_sha256 ~key:(String.make 20 '\x0b') "Hi There"));
        Alcotest.(check string) "case 2"
          "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
          (hex (Hmac.hmac_sha256 ~key:"Jefe" "what do ya want for nothing?"));
        (* case 6: key longer than block size *)
        Alcotest.(check string) "case 6 long key"
          "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
          (hex
             (Hmac.hmac_sha256 ~key:(String.make 131 '\xaa')
                "Test Using Larger Than Block-Size Key - Hash Key First")));
    Alcotest.test_case "hkdf rfc5869 case 1" `Quick (fun () ->
        let ikm = Util.of_hex "0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b" in
        let salt = Util.of_hex "000102030405060708090a0b0c" in
        let info = Util.of_hex "f0f1f2f3f4f5f6f7f8f9" in
        Alcotest.(check string) "okm"
          "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
          (hex (Hmac.hkdf ~salt ~info ~len:42 ikm)));
    Alcotest.test_case "chacha20 rfc8439" `Quick (fun () ->
        let key = Util.of_hex "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f" in
        let nonce = Util.of_hex "000000000000004a00000000" in
        let pt =
          "Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the \
           future, sunscreen would be it."
        in
        let ct = Chacha20.xor_stream ~key ~nonce ~counter:1 pt in
        Alcotest.(check string) "first block"
          "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
          (String.sub (hex ct) 0 64);
        Alcotest.(check string) "decrypt" pt (Chacha20.xor_stream ~key ~nonce ~counter:1 ct));
    Alcotest.test_case "chacha20 rejects bad key/nonce sizes" `Quick (fun () ->
        Alcotest.check_raises "key" (Invalid_argument "Chacha20.block: key") (fun () ->
            ignore (Chacha20.block ~key:"short" ~nonce:(String.make 12 '\000') ~counter:0));
        Alcotest.check_raises "nonce" (Invalid_argument "Chacha20.block: nonce") (fun () ->
            ignore (Chacha20.block ~key:(String.make 32 'k') ~nonce:"short" ~counter:0)));
    Alcotest.test_case "aead roundtrip and tamper detection" `Quick (fun () ->
        let key = String.make 32 'k' and nonce = String.make 12 'n' in
        let ct = Aead.seal ~key ~nonce ~ad:"header" "payload" in
        Alcotest.(check int) "overhead" (String.length "payload" + Aead.overhead) (String.length ct);
        Alcotest.(check (option string)) "open" (Some "payload") (Aead.open_ ~key ~nonce ~ad:"header" ct);
        Alcotest.(check (option string)) "wrong ad" None (Aead.open_ ~key ~nonce ~ad:"other" ct);
        Alcotest.(check (option string)) "wrong key" None
          (Aead.open_ ~key:(String.make 32 'x') ~nonce ~ad:"header" ct);
        let flipped = Bytes.of_string ct in
        Bytes.set flipped 0 (Char.chr (Char.code (Bytes.get flipped 0) lxor 1));
        Alcotest.(check (option string)) "bit flip" None
          (Aead.open_ ~key ~nonce ~ad:"header" (Bytes.to_string flipped));
        Alcotest.(check (option string)) "truncated" None
          (Aead.open_ ~key ~nonce ~ad:"header" (String.sub ct 0 3)));
    Alcotest.test_case "aead empty message" `Quick (fun () ->
        let key = String.make 32 'k' and nonce = String.make 12 'n' in
        let ct = Aead.seal ~key ~nonce "" in
        Alcotest.(check (option string)) "empty" (Some "") (Aead.open_ ~key ~nonce ct));
    Alcotest.test_case "drbg determinism and derivation" `Quick (fun () ->
        let a = Drbg.create ~seed:"s" and b = Drbg.create ~seed:"s" in
        Alcotest.(check string) "same seed same stream" (hex (Drbg.bytes a 64)) (hex (Drbg.bytes b 64));
        let c = Drbg.create ~seed:"t" in
        Alcotest.(check bool) "different seed differs" false
          (Drbg.bytes (Drbg.create ~seed:"s") 64 = Drbg.bytes c 64);
        let d1 = Drbg.derive (Drbg.create ~seed:"s") "x" in
        let d2 = Drbg.derive (Drbg.create ~seed:"s") "x" in
        let d3 = Drbg.derive (Drbg.create ~seed:"s") "y" in
        Alcotest.(check string) "derive deterministic" (hex (Drbg.bytes d1 32)) (hex (Drbg.bytes d2 32));
        Alcotest.(check bool) "derive label matters" false (Drbg.bytes d1 32 = Drbg.bytes d3 32));
    Alcotest.test_case "drbg int bounds" `Quick (fun () ->
        let rng = Drbg.create ~seed:"bounds" in
        for _ = 1 to 1000 do
          let v = Drbg.int rng 7 in
          Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
        done;
        Alcotest.check_raises "zero bound" (Invalid_argument "Drbg.int") (fun () ->
            ignore (Drbg.int rng 0)));
    Alcotest.test_case "drbg float in [0,1)" `Quick (fun () ->
        let rng = Drbg.create ~seed:"floats" in
        for _ = 1 to 1000 do
          let f = Drbg.float rng in
          Alcotest.(check bool) "in range" true (f >= 0.0 && f < 1.0)
        done);
    Alcotest.test_case "laplace b=0 is deterministic" `Quick (fun () ->
        let rng = Drbg.create ~seed:"lap" in
        Alcotest.(check (float 0.0)) "mu exactly" 5.0 (Drbg.laplace rng ~mu:5.0 ~b:0.0));
    Alcotest.test_case "laplace sample mean near mu" `Quick (fun () ->
        let rng = Drbg.create ~seed:"lap2" in
        let n = 20_000 in
        let sum = ref 0.0 in
        for _ = 1 to n do
          sum := !sum +. Drbg.laplace rng ~mu:100.0 ~b:10.0
        done;
        let mean = !sum /. float_of_int n in
        Alcotest.(check bool) "mean within 1" true (Float.abs (mean -. 100.0) < 1.0));
    Alcotest.test_case "shuffle is a permutation" `Quick (fun () ->
        let rng = Drbg.create ~seed:"shuffle" in
        let a = Array.init 100 Fun.id in
        Drbg.shuffle rng a;
        let sorted = Array.copy a in
        Array.sort compare sorted;
        Alcotest.(check (array int)) "multiset preserved" (Array.init 100 Fun.id) sorted;
        Alcotest.(check bool) "actually shuffled" false (a = Array.init 100 Fun.id));
    Alcotest.test_case "util hex roundtrip and errors" `Quick (fun () ->
        Alcotest.(check string) "roundtrip" "\x00\xff\x10" (Util.of_hex (Util.to_hex "\x00\xff\x10"));
        Alcotest.check_raises "odd length" (Invalid_argument "Util.of_hex") (fun () ->
            ignore (Util.of_hex "abc"));
        Alcotest.check_raises "bad char" (Invalid_argument "Util.of_hex") (fun () ->
            ignore (Util.of_hex "zz")));
    Alcotest.test_case "util const_time_eq" `Quick (fun () ->
        Alcotest.(check bool) "equal" true (Util.const_time_eq "abc" "abc");
        Alcotest.(check bool) "differs" false (Util.const_time_eq "abc" "abd");
        Alcotest.(check bool) "length" false (Util.const_time_eq "abc" "abcd"));
    Alcotest.test_case "util be32/be64" `Quick (fun () ->
        Alcotest.(check int) "be32" 0xdeadbeef (Util.read_be32 (Util.be32 0xdeadbeef) 0);
        Alcotest.(check int) "be64" 0x1234567890ab (Util.read_be64 (Util.be64 0x1234567890ab) 0));
  ]

let prop name ?(count = 50) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let property_tests =
  [
    prop "chacha20 xor_stream is an involution"
      QCheck.(pair small_string (int_range 0 1000))
      (fun (msg, seed) ->
        let rng = Drbg.create ~seed:(string_of_int seed) in
        let key = Drbg.bytes rng 32 and nonce = Drbg.bytes rng 12 in
        Chacha20.xor_stream ~key ~nonce (Chacha20.xor_stream ~key ~nonce msg) = msg);
    prop "aead roundtrips arbitrary messages"
      QCheck.(pair string (int_range 0 1000))
      (fun (msg, seed) ->
        let rng = Drbg.create ~seed:(string_of_int seed) in
        let key = Drbg.bytes rng 32 and nonce = Drbg.bytes rng 12 in
        Aead.open_ ~key ~nonce (Aead.seal ~key ~nonce msg) = Some msg);
    prop "xor self-inverse" QCheck.(pair small_string small_string) (fun (a, b) ->
        QCheck.assume (String.length a = String.length b);
        Util.xor (Util.xor a b) b = a);
    prop "hmac differs on key and message" QCheck.(int_range 0 10_000) (fun seed ->
        let rng = Drbg.create ~seed:(string_of_int seed) in
        let k1 = Drbg.bytes rng 32 and k2 = Drbg.bytes rng 32 and m = Drbg.bytes rng 20 in
        Hmac.hmac_sha256 ~key:k1 m <> Hmac.hmac_sha256 ~key:k2 m);
  ]

let suite = unit_tests @ property_tests
