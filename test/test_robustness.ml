(* Robustness: every decoder in the system must reject (never crash on)
   arbitrary bytes — mailbox scanning feeds untrusted input to most of
   them — and deployment variants exercise less-traveled configuration
   paths. *)

module Params = Alpenhorn_pairing.Params
module Curve = Alpenhorn_pairing.Curve
module Ibe = Alpenhorn_ibe.Ibe
module Bls = Alpenhorn_bls.Bls
module Dh = Alpenhorn_dh.Dh
module Bloom = Alpenhorn_bloom.Bloom
module Onion = Alpenhorn_mixnet.Onion
module Payload = Alpenhorn_mixnet.Payload
module Ratelimit = Alpenhorn_mixnet.Ratelimit
module Wire = Alpenhorn_core.Wire
module Config = Alpenhorn_core.Config
module Client = Alpenhorn_core.Client
module Deployment = Alpenhorn_core.Deployment
module Persist = Alpenhorn_core.Persist
module Drbg = Alpenhorn_crypto.Drbg

let params = lazy (Params.test ())
let p () = Lazy.force params

(* feed a decoder random strings of assorted lengths; success = no exception
   (None/failure results are fine) *)
let fuzz name decode =
  Alcotest.test_case ("fuzz " ^ name) `Quick (fun () ->
      let rng = Drbg.create ~seed:("fuzz-" ^ name) in
      List.iter
        (fun len ->
          for _ = 1 to 20 do
            decode (Drbg.bytes rng len)
          done)
        [ 0; 1; 7; 31; 32; 63; 64; 100; 256; 1000 ])

let fuzz_tests =
  let pr = p () in
  let msk, _ = Ibe.setup pr (Drbg.create ~seed:"fuzz-setup") in
  let d_id = Ibe.extract pr msk "fuzz@x" in
  let dh_sk, _ = Dh.keygen pr (Drbg.create ~seed:"fuzz-dh") in
  [
    fuzz "curve point" (fun s -> ignore (Curve.of_bytes pr.Params.fp s));
    fuzz "ibe ciphertext" (fun s -> ignore (Ibe.decrypt pr d_id s));
    fuzz "onion" (fun s -> ignore (Onion.unwrap pr ~sk:dh_sk s));
    fuzz "payload" (fun s -> ignore (Payload.decode s));
    fuzz "bloom filter" (fun s -> ignore (Bloom.of_bytes s));
    fuzz "friend request" (fun s -> ignore (Wire.decode_request pr s));
    fuzz "ratelimit token" (fun s -> ignore (Ratelimit.token_of_bytes pr s));
    fuzz "backup blob" (fun s -> ignore (Persist.import_identity pr ~passphrase:"x" s));
    fuzz "bls public" (fun s -> ignore (Bls.public_of_bytes pr s));
  ]

let config_tests =
  [
    Alcotest.test_case "deployment with cheap (non-IBE) noise still delivers" `Quick (fun () ->
        let config = { Config.test with Config.faithful_noise = false } in
        let d = Deployment.create ~config ~seed:"cheap-noise" in
        let alice = Deployment.new_client d ~email:"alice@x" ~callbacks:Client.null_callbacks in
        let bob = Deployment.new_client d ~email:"bob@x" ~callbacks:Client.null_callbacks in
        (match Deployment.register d alice with Ok () -> () | Error _ -> assert false);
        (match Deployment.register d bob with Ok () -> () | Error _ -> assert false);
        Client.add_friend alice ~email:"bob@x" ();
        ignore (Deployment.run_addfriend_round d ());
        ignore (Deployment.run_addfriend_round d ());
        Alcotest.(check bool) "friends" true (Client.is_friend bob ~email:"alice@x"));
    Alcotest.test_case "single mixnet server and single PKG still work" `Quick (fun () ->
        let config = { Config.test with Config.chain_length = 1; n_pkgs = 1 } in
        let d = Deployment.create ~config ~seed:"minimal" in
        let alice = Deployment.new_client d ~email:"alice@x" ~callbacks:Client.null_callbacks in
        let bob = Deployment.new_client d ~email:"bob@x" ~callbacks:Client.null_callbacks in
        (match Deployment.register d alice with Ok () -> () | Error _ -> assert false);
        (match Deployment.register d bob with Ok () -> () | Error _ -> assert false);
        Client.add_friend alice ~email:"bob@x" ();
        ignore (Deployment.run_addfriend_round d ());
        ignore (Deployment.run_addfriend_round d ());
        Client.call alice ~email:"bob@x" ~intent:0;
        let delivered = ref false in
        for _ = 1 to 4 do
          let s = Deployment.run_dialing_round d () in
          if s.Deployment.calls <> [] then delivered := true
        done;
        Alcotest.(check bool) "call delivered" true !delivered);
    Alcotest.test_case "five-server chain works end to end" `Quick (fun () ->
        let config = { Config.test with Config.chain_length = 5 } in
        let d = Deployment.create ~config ~seed:"five" in
        let alice = Deployment.new_client d ~email:"alice@x" ~callbacks:Client.null_callbacks in
        let bob = Deployment.new_client d ~email:"bob@x" ~callbacks:Client.null_callbacks in
        (match Deployment.register d alice with Ok () -> () | Error _ -> assert false);
        (match Deployment.register d bob with Ok () -> () | Error _ -> assert false);
        Client.add_friend alice ~email:"bob@x" ();
        ignore (Deployment.run_addfriend_round d ());
        ignore (Deployment.run_addfriend_round d ());
        Alcotest.(check bool) "friends" true (Client.is_friend bob ~email:"alice@x"));
    Alcotest.test_case "nonzero Laplace b produces noise and still delivers" `Quick (fun () ->
        let config =
          { Config.test with Config.laplace_b = 1.5; addfriend_noise_mu = 4.0 }
        in
        let d = Deployment.create ~config ~seed:"laplace" in
        let alice = Deployment.new_client d ~email:"alice@x" ~callbacks:Client.null_callbacks in
        let bob = Deployment.new_client d ~email:"bob@x" ~callbacks:Client.null_callbacks in
        (match Deployment.register d alice with Ok () -> () | Error _ -> assert false);
        (match Deployment.register d bob with Ok () -> () | Error _ -> assert false);
        Client.add_friend alice ~email:"bob@x" ();
        let s1 = Deployment.run_addfriend_round d () in
        ignore (Deployment.run_addfriend_round d ());
        Alcotest.(check bool) "noise sampled" true (s1.Deployment.noise_added >= 0);
        Alcotest.(check bool) "friends" true (Client.is_friend bob ~email:"alice@x"));
    Alcotest.test_case "config validation rejects bad settings" `Quick (fun () ->
        let bad field config = (field, Config.validate config) in
        List.iter
          (fun (field, result) ->
            Alcotest.(check bool) field true (Result.is_error result))
          [
            bad "n_pkgs" { Config.test with Config.n_pkgs = 0 };
            bad "chain" { Config.test with Config.chain_length = 0 };
            bad "noise" { Config.test with Config.addfriend_noise_mu = -1.0 };
            bad "intents" { Config.test with Config.max_intents = 0 };
            bad "active" { Config.test with Config.active_fraction = 0.0 };
            bad "round secs" { Config.test with Config.dialing_round_seconds = 0 };
            bad "archive" { Config.test with Config.dial_archive_rounds = -1 };
            bad "params" { Config.test with Config.param_name = "bogus" };
          ];
        Alcotest.(check bool) "good config passes" true (Result.is_ok (Config.validate Config.test)));
  ]

let suite = fuzz_tests @ config_tests
