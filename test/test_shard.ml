(* Sharded mailbox distribution (§5.1 CDN model, DESIGN.md §15): the
   Shard partition contract, union-equivalence of sharded and unsharded
   distribution, per-shard Bloom false-positive bounds, and the
   byte-identity of dial tokens across the two paths. *)

module Shard = Alpenhorn_mixnet.Shard
module Mailbox = Alpenhorn_mixnet.Mailbox
module Payload = Alpenhorn_mixnet.Payload
module Stream_writer = Alpenhorn_mixnet.Stream_writer
module Bloom = Alpenhorn_bloom.Bloom
module Sha256 = Alpenhorn_crypto.Sha256

(* deterministic payload batch: [n] tokens spread over [k] mailboxes,
   bodies unique per index so multiset comparisons are meaningful *)
let batch ~seed ~n ~k =
  Array.init n (fun i ->
      let body = Sha256.digest (Printf.sprintf "%s:%d" seed i) in
      Payload.encode ~mailbox:(i * 7 mod k) body)

let property_tests =
  let open QCheck in
  let partition_arb =
    (* K in [1, 5000], S in [1, K] *)
    map
      (fun (k, s_raw) ->
        let k = 1 + (abs k mod 5000) in
        (k, 1 + (abs s_raw mod k)))
      (pair int int)
  in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"every mailbox lands in exactly one shard's range" ~count:200 partition_arb
         (fun (k, s) ->
           let t = Shard.create ~num_shards:s ~num_mailboxes:k in
           let ok = ref true in
           for m = 0 to k - 1 do
             let owner = Shard.of_mailbox t m in
             let covering = ref 0 in
             for sid = 0 to s - 1 do
               let lo, hi = Shard.mailbox_range t sid in
               if m >= lo && m < hi then begin
                 incr covering;
                 if sid <> owner then ok := false
               end
             done;
             if !covering <> 1 then ok := false
           done;
           !ok));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"shard ranges are non-empty, contiguous and exhaustive" ~count:200
         partition_arb (fun (k, s) ->
           let t = Shard.create ~num_shards:s ~num_mailboxes:k in
           let ok = ref true in
           let prev_hi = ref 0 in
           for sid = 0 to s - 1 do
             let lo, hi = Shard.mailbox_range t sid in
             if lo <> !prev_hi || hi <= lo then ok := false;
             prev_hi := hi
           done;
           !ok && !prev_hi = k));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"of_identity agrees with of_mailbox on the recipient's mailbox" ~count:100
         (pair partition_arb small_nat) (fun ((k, s), i) ->
           let t = Shard.create ~num_shards:s ~num_mailboxes:k in
           let email = Printf.sprintf "user%d@example.org" i in
           Shard.of_identity t email
           = Shard.of_mailbox t (Mailbox.mailbox_of_identity email ~num_mailboxes:k)));
  ]

let unit_tests =
  [
    Alcotest.test_case "create rejects degenerate partitions" `Quick (fun () ->
        List.iter
          (fun (s, k) ->
            match Shard.create ~num_shards:s ~num_mailboxes:k with
            | exception Invalid_argument _ -> ()
            | _ -> Alcotest.failf "S=%d K=%d accepted" s k)
          [ (0, 4); (-1, 4); (5, 4); (1, 0) ]);
    Alcotest.test_case "add-friend shard union equals the unsharded mailbox union" `Quick
      (fun () ->
        let k = 32 and s = 5 in
        let payloads = batch ~seed:"union" ~n:400 ~k in
        let shard = Shard.create ~num_shards:s ~num_mailboxes:k in
        let plain, dropped = Mailbox.distribute ~num_mailboxes:k ~mode:`AddFriend payloads in
        let sharded, dropped' = Mailbox.distribute_sharded ~shard ~mode:`AddFriend payloads in
        Alcotest.(check int) "same drop count" dropped dropped';
        let buckets = Mailbox.plain_exn plain in
        let blobs = Mailbox.plain_shards_exn sharded in
        Alcotest.(check int) "one blob per shard" s (Array.length blobs);
        (* decode every framed record of every shard; each is a full
           payload (header included) and must land in its shard's range *)
        let recovered = ref [] in
        Array.iteri
          (fun sid blob ->
            let lo, hi = Shard.mailbox_range shard sid in
            let ok =
              Stream_writer.iter_records blob (fun record ->
                  (match Payload.mailbox record with
                  | Some m when m >= lo && m < hi -> ()
                  | _ -> Alcotest.failf "record outside shard %d's range" sid);
                  recovered := record :: !recovered)
            in
            Alcotest.(check bool) "framing valid" true ok)
          blobs;
        let expected =
          Array.to_list buckets
          |> List.concat_map (fun bodies ->
                 (* unsharded buckets hold stripped bodies keyed by index;
                    re-attach nothing — compare by body multiset instead *)
                 bodies)
          |> List.sort compare
        in
        let got =
          List.filter_map (fun r -> Option.map snd (Payload.decode r)) !recovered
          |> List.sort compare
        in
        Alcotest.(check (list string)) "same payload multiset" expected got);
    Alcotest.test_case "dialing: every unsharded token is found in its shard's filter" `Quick
      (fun () ->
        let k = 24 and s = 7 in
        let payloads = batch ~seed:"dial-union" ~n:300 ~k in
        let shard = Shard.create ~num_shards:s ~num_mailboxes:k in
        let sharded, _ = Mailbox.distribute_sharded ~shard ~mode:`Dialing payloads in
        let filters = Mailbox.filter_shards_exn sharded in
        Array.iter
          (fun p ->
            match Payload.decode p with
            | None -> ()
            | Some (m, token) when m <> Payload.cover && m < k ->
              let f = filters.(Shard.of_mailbox shard m) in
              Alcotest.(check bool) "token present" true (Bloom.mem f token)
            | Some _ -> ())
          payloads);
    Alcotest.test_case "dialing: one shard per mailbox is byte-identical to unsharded" `Quick
      (fun () ->
        (* S = K: each shard covers exactly one mailbox, so the sharded
           path must reproduce the unsharded filters bit for bit — the
           strongest form of the dial-token byte-identity guarantee *)
        let k = 16 in
        let payloads = batch ~seed:"identity" ~n:256 ~k in
        let shard = Shard.create ~num_shards:k ~num_mailboxes:k in
        let plain, _ = Mailbox.distribute ~num_mailboxes:k ~mode:`Dialing payloads in
        let sharded, _ = Mailbox.distribute_sharded ~shard ~mode:`Dialing payloads in
        let unsharded = Mailbox.filters_exn plain in
        let per_shard = Mailbox.filter_shards_exn sharded in
        Alcotest.(check int) "same count" (Array.length unsharded) (Array.length per_shard);
        Array.iteri
          (fun m f ->
            Alcotest.(check string)
              (Printf.sprintf "mailbox %d filter bytes" m)
              (Bloom.to_bytes f)
              (Bloom.to_bytes per_shard.(m)))
          unsharded);
    Alcotest.test_case "per-shard Bloom false-positive estimate honors the §5.2 bound" `Quick
      (fun () ->
        let k = 40 and s = 4 in
        let payloads = batch ~seed:"fp" ~n:2000 ~k in
        let shard = Shard.create ~num_shards:s ~num_mailboxes:k in
        let sharded, _ = Mailbox.distribute_sharded ~shard ~mode:`Dialing payloads in
        Array.iter
          (fun f ->
            let est = Bloom.false_positive_estimate f in
            Alcotest.(check bool)
              (Printf.sprintf "estimate %g within bound" est)
              true
              (est <= Bloom.target_fp_rate *. 2.))
          (Mailbox.filter_shards_exn sharded));
    Alcotest.test_case "sharded_size_bytes matches the filters" `Quick (fun () ->
        let k = 12 and s = 3 in
        let payloads = batch ~seed:"sizes" ~n:120 ~k in
        let shard = Shard.create ~num_shards:s ~num_mailboxes:k in
        let sharded, _ = Mailbox.distribute_sharded ~shard ~mode:`Dialing payloads in
        let sizes = Mailbox.sharded_size_bytes sharded in
        let filters = Mailbox.filter_shards_exn sharded in
        Array.iteri
          (fun i f -> Alcotest.(check int) "size" (Bloom.size_bytes f) sizes.(i))
          filters);
    Alcotest.test_case "cover traffic and out-of-range ids are dropped identically" `Quick
      (fun () ->
        let k = 8 in
        let payloads =
          Array.append (batch ~seed:"drop" ~n:50 ~k)
            [|
              Payload.encode ~mailbox:Payload.cover "";
              Payload.encode ~mailbox:(k + 3) "out of range";
              "short";
            |]
        in
        let shard = Shard.create ~num_shards:2 ~num_mailboxes:k in
        let _, dropped = Mailbox.distribute ~num_mailboxes:k ~mode:`Dialing payloads in
        let _, dropped' = Mailbox.distribute_sharded ~shard ~mode:`Dialing payloads in
        Alcotest.(check int) "same drops" dropped dropped';
        Alcotest.(check int) "three dropped" 3 dropped');
  ]

let suite = unit_tests @ property_tests
