(* Telemetry registry: metric semantics, snapshot/reset isolation,
   simulated-clock spans, histogram merge algebra, exporter validity. *)

module Tel = Alpenhorn_telemetry.Telemetry
module Des = Alpenhorn_sim.Des

let fresh () = Tel.create ()

let unit_tests =
  [
    Alcotest.test_case "counter add and handle identity" `Quick (fun () ->
        let r = fresh () in
        let c = Tel.Counter.v r "hits" in
        Tel.Counter.inc c;
        Tel.Counter.add c 4;
        Alcotest.(check int) "value" 5 (Tel.Counter.value c);
        (* same name + labels resolves to the same cell, any label order *)
        let c' = Tel.Counter.v r ~labels:[ ("b", "2"); ("a", "1") ] "hits" in
        let c'' = Tel.Counter.v r ~labels:[ ("a", "1"); ("b", "2") ] "hits" in
        Tel.Counter.inc c';
        Tel.Counter.inc c'';
        Alcotest.(check int) "shared cell" 2 (Tel.Counter.value c');
        Alcotest.(check int) "plain cell untouched" 5 (Tel.Counter.value c));
    Alcotest.test_case "kind mismatch is rejected" `Quick (fun () ->
        let r = fresh () in
        ignore (Tel.Counter.v r "m");
        Alcotest.(check bool) "raises" true
          (try
             ignore (Tel.Histogram.v r "m");
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "gauge keeps the last value" `Quick (fun () ->
        let r = fresh () in
        let g = Tel.Gauge.v r "depth" in
        Tel.Gauge.set g 3.5;
        Tel.Gauge.set g 1.25;
        Alcotest.(check (float 1e-12)) "last write wins" 1.25 (Tel.Gauge.value g));
    Alcotest.test_case "histogram buckets and quantiles" `Quick (fun () ->
        (* bucket layout invariants *)
        Alcotest.(check bool) "lower bound honors bucket_of" true
          (List.for_all
             (fun v ->
               let b = Tel.Histogram.bucket_of v in
               b >= 0 && b < Tel.Histogram.bucket_count && Tel.Histogram.bucket_lower b <= v)
             [ 1e-9; 0.001; 1.0; 3.7; 1e6 ]);
        let r = fresh () in
        let h = Tel.Histogram.v r "lat" in
        List.iter (Tel.Histogram.observe h) [ 0.001; 0.002; 0.004; 0.008; 1.0 ];
        let s = Tel.Histogram.snapshot h in
        Alcotest.(check int) "count" 5 s.Tel.Histogram.count;
        Alcotest.(check (float 1e-9)) "sum" 1.015 s.Tel.Histogram.sum;
        Alcotest.(check (float 1e-12)) "min" 0.001 s.Tel.Histogram.min_v;
        Alcotest.(check (float 1e-12)) "max" 1.0 s.Tel.Histogram.max_v;
        let q50 = Tel.Histogram.quantile s 0.5 in
        Alcotest.(check bool) "p50 in range" true (q50 >= 0.001 && q50 <= 1.0);
        Alcotest.(check (float 1e-12)) "p100 clamps to max" 1.0 (Tel.Histogram.quantile s 1.0);
        Alcotest.(check (float 1e-12)) "empty mean" 0.0 (Tel.Histogram.mean Tel.Histogram.empty));
    Alcotest.test_case "histogram merge is associative with empty identity" `Quick (fun () ->
        let mk vs =
          let r = fresh () in
          let h = Tel.Histogram.v r "x" in
          List.iter (Tel.Histogram.observe h) vs;
          Tel.Histogram.snapshot h
        in
        let a = mk [ 0.001; 0.5 ] and b = mk [ 2.0 ] and c = mk [ 1e-6; 30.0; 0.25 ] in
        let eq what x y =
          Alcotest.(check int) (what ^ " count") x.Tel.Histogram.count y.Tel.Histogram.count;
          Alcotest.(check (float 1e-9)) (what ^ " sum") x.Tel.Histogram.sum y.Tel.Histogram.sum;
          Alcotest.(check (float 1e-12)) (what ^ " min") x.Tel.Histogram.min_v y.Tel.Histogram.min_v;
          Alcotest.(check (float 1e-12)) (what ^ " max") x.Tel.Histogram.max_v y.Tel.Histogram.max_v;
          Alcotest.(check bool) (what ^ " buckets") true
            (x.Tel.Histogram.buckets = y.Tel.Histogram.buckets)
        in
        let ( + ) = Tel.Histogram.merge in
        eq "assoc" ((a + b) + c) (a + (b + c));
        eq "comm" (a + b) (b + a);
        eq "identity" (a + Tel.Histogram.empty) a;
        eq "all" ((a + b) + c) (mk [ 0.001; 0.5; 2.0; 1e-6; 30.0; 0.25 ]));
    Alcotest.test_case "snapshot reset isolates rounds" `Quick (fun () ->
        let r = fresh () in
        let c = Tel.Counter.v r "n" and h = Tel.Histogram.v r "t" in
        Tel.Counter.add c 7;
        Tel.Histogram.observe h 0.5;
        Tel.Span.with_ r "work" (fun () -> ());
        let s1 = Tel.Snapshot.take ~reset:true r in
        Alcotest.(check int) "round 1 counter" 7 (Tel.Snapshot.counter_sum s1 "n");
        Alcotest.(check int) "round 1 spans" 1 (Tel.Snapshot.span_count s1 "work");
        (* after reset, the old handles still work but start from zero *)
        Tel.Counter.inc c;
        let s2 = Tel.Snapshot.take r in
        Alcotest.(check int) "round 2 counter" 1 (Tel.Snapshot.counter_sum s2 "n");
        Alcotest.(check (float 1e-12)) "round 2 histogram" 0.0 (Tel.Snapshot.hist_sum s2 "t");
        Alcotest.(check int) "round 2 spans" 0 (Tel.Snapshot.span_count s2 "work"));
    Alcotest.test_case "span nesting tracks depth" `Quick (fun () ->
        let r = fresh () in
        Tel.Span.with_ r "outer" (fun () ->
            Tel.Span.with_ r "inner" (fun () -> ());
            Tel.Span.with_ r "inner" (fun () -> ()));
        let s = Tel.Snapshot.take r in
        Alcotest.(check int) "three spans" 3 (List.length s.Tel.Snapshot.spans);
        List.iter
          (fun (sp : Tel.Snapshot.span) ->
            let expect = if sp.name = "outer" then 0 else 1 in
            Alcotest.(check int) ("depth of " ^ sp.name) expect sp.depth;
            Alcotest.(check string) "wall clock" "wall" sp.clock;
            Alcotest.(check bool) "nonneg" true (sp.ts >= 0.0 && sp.dur >= 0.0))
          s.Tel.Snapshot.spans;
        (* exception safety: the span is recorded and depth restored *)
        (try Tel.Span.with_ r "boom" (fun () -> failwith "x") with Failure _ -> ());
        Tel.Span.with_ r "after" (fun () -> ());
        let s2 = Tel.Snapshot.take r in
        List.iter
          (fun n -> Alcotest.(check int) (n ^ " at depth 0") 0
             (List.find (fun (sp : Tel.Snapshot.span) -> sp.name = n) s2.Tel.Snapshot.spans).depth)
          [ "boom"; "after" ]);
    Alcotest.test_case "simulated clock spans share the wall schema" `Quick (fun () ->
        let wall = fresh () in
        Tel.Counter.add (Tel.Counter.v wall ~labels:[ ("server", "0") ] "mix.onions_in") 5;
        Tel.Span.with_ wall "round.addfriend" (fun () -> ());
        let sw = Tel.Snapshot.take wall in
        (* same instrumentation driven by the DES clock *)
        let des = Des.create () in
        let sim = Tel.create ~clock:(fun () -> Des.now des) ~clock_kind:"sim" () in
        Tel.Counter.add (Tel.Counter.v sim ~labels:[ ("server", "0") ] "mix.onions_in") 5;
        Des.schedule des ~at:2.0 (fun () ->
            Tel.Span.emit sim ~name:"round.addfriend" ~ts:(Des.now des) ~dur:3.0 ());
        Des.run des;
        let ss = Tel.Snapshot.take sim in
        Alcotest.(check string) "clock kind" "sim" ss.Tel.Snapshot.clock;
        let sp = List.hd ss.Tel.Snapshot.spans in
        Alcotest.(check string) "span clock" "sim" sp.Tel.Snapshot.clock;
        Alcotest.(check (float 1e-9)) "simulated ts" 2.0 sp.Tel.Snapshot.ts;
        Alcotest.(check (float 1e-9)) "simulated dur" 3.0 sp.Tel.Snapshot.dur;
        (* identical JSON schema: same key set in both exports *)
        let keys s =
          let j = Tel.Snapshot.to_json s in
          List.filter
            (fun k -> k <> "")
            (List.map
               (fun part ->
                 match String.index_opt part '"' with
                 | Some 0 -> ( match String.index_from_opt part 1 '"' with
                               | Some e -> String.sub part 1 (e - 1)
                               | None -> "" )
                 | _ -> "")
               (String.split_on_char ',' (String.concat "," (String.split_on_char '{' j))))
          |> List.sort_uniq compare
        in
        Alcotest.(check (list string)) "schema keys match" (keys sw) (keys ss));
    Alcotest.test_case "with_clock restores and re-anchors" `Quick (fun () ->
        let r = fresh () in
        let des = Des.create () in
        Des.schedule des ~at:5.0 (fun () -> ());
        Tel.with_clock r ~kind:"sim" (fun () -> Des.now des) (fun () ->
            Alcotest.(check string) "inside" "sim" (Tel.clock_kind r);
            Des.run des;
            Tel.Span.emit r ~name:"evt" ~ts:(Des.now des) ~dur:1.0 ());
        Alcotest.(check string) "restored" "wall" (Tel.clock_kind r);
        let s = Tel.Snapshot.take r in
        let sp = List.hd s.Tel.Snapshot.spans in
        Alcotest.(check string) "span kept sim clock" "sim" sp.Tel.Snapshot.clock;
        Alcotest.(check (float 1e-9)) "span kept sim ts" 5.0 sp.Tel.Snapshot.ts);
    Alcotest.test_case "exporters emit valid JSON" `Quick (fun () ->
        let r = fresh () in
        Tel.Counter.add (Tel.Counter.v r ~labels:[ ("server", "1") ] "mix.onions_in") 3;
        Tel.Gauge.set (Tel.Gauge.v r "load") 0.5;
        Tel.Histogram.observe (Tel.Histogram.v r "lat\"ency\\") 0.004;
        Tel.Span.with_ r ~labels:[ ("server", "1") ] "mix.server_process" (fun () -> ());
        let s = Tel.Snapshot.take r in
        Alcotest.(check bool) "to_json" true (Tel.Json.is_valid (Tel.Snapshot.to_json s));
        Alcotest.(check bool) "to_chrome_trace" true
          (Tel.Json.is_valid (Tel.Snapshot.to_chrome_trace s));
        (* the table printer must not raise *)
        ignore (Format.asprintf "%a" Tel.Snapshot.pp_table s));
    Alcotest.test_case "Json.is_valid agrees with RFC 8259" `Quick (fun () ->
        List.iter
          (fun j -> Alcotest.(check bool) ("valid: " ^ j) true (Tel.Json.is_valid j))
          [
            "{}"; "[]"; "null"; "true"; "-0.5e-3"; "\"a\\u00e9\\n\"";
            "{\"a\":[1,2,{\"b\":null}],\"c\":\"\"}"; " [ 1 , 2 ] ";
          ];
        List.iter
          (fun j -> Alcotest.(check bool) ("invalid: " ^ j) false (Tel.Json.is_valid j))
          [
            ""; "{"; "[1,]"; "{\"a\":}"; "{a:1}"; "01"; "1.2.3"; "\"unterminated";
            "\"bad\\x\""; "nulll"; "[1] trailing"; "+1"; "\"\\u12g4\"";
          ]);
  ]

(* A span straddling a clock swap must keep its opening clock — both the
   recorded kind and the timebase (a wall-epoch span read against a sim
   clock would show an absurd ts/dur). *)
let straddle_tests =
  [
    Alcotest.test_case "clock swap mid-span cannot mix timebases" `Quick (fun () ->
        let r = fresh () in
        let sim = ref 1_000_000.0 in
        Tel.Span.with_ r "straddler" (fun () ->
            Tel.set_clock r ~kind:"sim" (fun () -> !sim);
            sim := !sim +. 5.0);
        let s = Tel.Snapshot.take r in
        match s.Tel.Snapshot.spans with
        | [ sp ] ->
          Alcotest.(check string) "keeps its opening clock kind" "wall" sp.clock;
          Alcotest.(check bool) "ts stays epoch-relative wall, not sim-absolute" true
            (sp.ts >= 0.0 && sp.ts < 60.0);
          Alcotest.(check bool) "dur sane and non-negative" true
            (sp.dur >= 0.0 && sp.dur < 60.0)
        | l -> Alcotest.failf "expected 1 span, got %d" (List.length l));
  ]

let json_parse_tests =
  [
    Alcotest.test_case "Json.parse structure and accessors" `Quick (fun () ->
        let doc =
          match Tel.Json.parse {|{"a": [1, {"b": -2.5e1}], "s": "xé", "n": null}|} with
          | Some d -> d
          | None -> Alcotest.fail "parse failed"
        in
        let num path_steps =
          List.fold_left
            (fun acc step -> Option.bind acc step)
            (Some doc) path_steps
          |> fun v -> Option.bind v Tel.Json.to_num
        in
        Alcotest.(check (option (float 1e-9))) "a[0]" (Some 1.0)
          (num [ Tel.Json.member "a"; Tel.Json.index 0 ]);
        Alcotest.(check (option (float 1e-9))) "a[1].b" (Some (-25.0))
          (num [ Tel.Json.member "a"; Tel.Json.index 1; Tel.Json.member "b" ]);
        Alcotest.(check (option string)) "unicode escape decoded" (Some "x\xc3\xa9")
          (Option.bind (Tel.Json.member "s" doc) Tel.Json.to_str);
        Alcotest.(check bool) "null member present" true (Tel.Json.member "n" doc = Some Tel.Json.Null);
        Alcotest.(check bool) "absent member" true (Tel.Json.member "zz" doc = None);
        Alcotest.(check (list (pair string (float 1e-9)))) "number_leaves with array paths"
          [ ("a.0", 1.0); ("a.1.b", -25.0) ]
          (Tel.Json.number_leaves doc));
  ]

let events_tests =
  [
    Alcotest.test_case "ring overwrites oldest and counts drops" `Quick (fun () ->
        let r = fresh () in
        let ev = Alpenhorn_telemetry.Events.create ~capacity:3 r in
        let module E = Alpenhorn_telemetry.Events in
        for i = 1 to 5 do
          E.log ev ~labels:[ ("i", string_of_int i) ] "tick"
        done;
        Alcotest.(check int) "length capped at capacity" 3 (E.length ev);
        Alcotest.(check int) "two events overwritten" 2 (E.dropped ev);
        Alcotest.(check (list string)) "oldest-first, oldest two gone"
          [ "3"; "4"; "5" ]
          (List.map (fun (e : E.event) -> List.assoc "i" e.E.labels) (E.to_list ev));
        E.clear ev;
        Alcotest.(check int) "clear empties" 0 (E.length ev);
        Alcotest.(check int) "clear resets drops" 0 (E.dropped ev);
        Alcotest.(check bool) "capacity < 1 rejected" true
          (try
             ignore (E.create ~capacity:0 r);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "JSON-lines exporter is valid on both clocks" `Quick (fun () ->
        let module E = Alpenhorn_telemetry.Events in
        let check_registry r expected_clock =
          let ev = E.create ~capacity:16 r in
          E.log ev ~severity:E.Warn
            ~labels:[ ("server", "2") ]
            ~detail:"7 onions failed to decrypt \"quoted\"" "mix.decode_failure";
          E.log ev "round.close";
          let lines = String.split_on_char '\n' (String.trim (E.to_jsonl ev)) in
          Alcotest.(check int) "one line per event" 2 (List.length lines);
          List.iter
            (fun line ->
              Alcotest.(check bool) ("valid JSON: " ^ line) true (Tel.Json.is_valid line);
              let doc = Option.get (Tel.Json.parse line) in
              Alcotest.(check (option string)) "clock field" (Some expected_clock)
                (Option.bind (Tel.Json.member "clock" doc) Tel.Json.to_str);
              Alcotest.(check bool) "severity field present" true
                (Tel.Json.member "severity" doc <> None))
            lines
        in
        check_registry (fresh ()) "wall";
        let sim = fresh () in
        Tel.set_clock sim ~kind:"sim" (fun () -> 42.0);
        check_registry sim "sim");
  ]

(* Satellite regression: Snapshot.take ~reset:true is linearizable
   against concurrent writers. Four domains hammer a counter and a
   histogram while the main domain snapshots-and-resets in a loop; every
   increment must land in exactly one snapshot or in the final live
   value — never lost, never doubled (the lost-update window the atomic
   exchange closed). *)
let reset_conservation_tests =
  [
    Alcotest.test_case "reset snapshots conserve concurrent increments" `Quick (fun () ->
        let r = fresh () in
        let per_domain = 20_000 and domains = 4 in
        let still_writing = Atomic.make domains in
        let writer () =
          let c = Tel.Counter.v r "conserved" in
          let h = Tel.Histogram.v r "conserved_h" in
          for i = 1 to per_domain do
            Tel.Counter.inc c;
            Tel.Histogram.observe h (float_of_int (i land 7))
          done;
          ignore (Atomic.fetch_and_add still_writing (-1))
        in
        let ds = List.init domains (fun _ -> Domain.spawn writer) in
        let seen = ref 0 and seen_h = ref 0 in
        let accumulate (snap : Tel.Snapshot.t) =
          List.iter (fun (n, _, v) -> if n = "conserved" then seen := !seen + v) snap.counters;
          List.iter
            (fun (n, _, (h : Tel.Histogram.snap)) ->
              if n = "conserved_h" then seen_h := !seen_h + h.count)
            snap.histograms
        in
        (* snapshot-and-reset while the writers are mid-flight *)
        while Atomic.get still_writing > 0 do
          accumulate (Tel.Snapshot.take ~reset:true r)
        done;
        List.iter Domain.join ds;
        (* the stragglers land in the final live snapshot *)
        accumulate (Tel.Snapshot.take r);
        Alcotest.(check int) "counter increments conserved" (domains * per_domain) !seen;
        Alcotest.(check int) "histogram observations conserved" (domains * per_domain) !seen_h);
  ]

let suite =
  unit_tests @ straddle_tests @ json_parse_tests @ events_tests @ reset_conservation_tests
