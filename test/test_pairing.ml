(* The Tate pairing: bilinearity, non-degeneracy, hash-to-group. *)

module B = Alpenhorn_bigint.Bigint
module Curve = Alpenhorn_pairing.Curve
module Fp2 = Alpenhorn_pairing.Fp2
module Params = Alpenhorn_pairing.Params
module Pairing = Alpenhorn_pairing.Pairing
module Drbg = Alpenhorn_crypto.Drbg

let params = lazy (Params.test ())
let p () = Lazy.force params

let unit_tests =
  [
    Alcotest.test_case "parameter sets validate" `Quick (fun () ->
        Params.validate (Params.test ());
        (* of_named resolves both presets *)
        ignore (Params.of_named "test");
        Alcotest.check_raises "unknown set" (Invalid_argument "Params.of_named: nope") (fun () ->
            ignore (Params.of_named "nope")));
    Alcotest.test_case "non-degeneracy: e(g,g) <> 1" `Quick (fun () ->
        let pr = p () in
        Alcotest.(check bool) "e(g,g)" false
          (Fp2.equal (Pairing.pair pr pr.Params.g pr.Params.g) Fp2.one));
    Alcotest.test_case "pairing value has order q" `Quick (fun () ->
        let pr = p () in
        let e = Pairing.pair pr pr.Params.g pr.Params.g in
        Alcotest.(check bool) "e^q = 1" true (Fp2.equal (Fp2.pow pr.Params.fp e pr.Params.q) Fp2.one));
    Alcotest.test_case "rejects infinity" `Quick (fun () ->
        let pr = p () in
        Alcotest.check_raises "left" (Invalid_argument "Pairing.pair: point at infinity") (fun () ->
            ignore (Pairing.pair pr Curve.Inf pr.Params.g)));
    Alcotest.test_case "symmetry: e(a,b) = e(b,a)" `Quick (fun () ->
        let pr = p () in
        let f = pr.Params.fp and g = pr.Params.g in
        let a = Curve.mul f (B.of_int 123) g and b = Curve.mul f (B.of_int 456) g in
        Alcotest.(check bool) "symmetric" true (Fp2.equal (Pairing.pair pr a b) (Pairing.pair pr b a)));
    Alcotest.test_case "hash_to_group produces order-q curve points" `Quick (fun () ->
        let pr = p () in
        List.iter
          (fun id ->
            let h = Pairing.hash_to_group pr id in
            Alcotest.(check bool) (id ^ " on curve") true (Curve.is_on_curve pr.Params.fp h);
            Alcotest.(check bool) (id ^ " not inf") false (Curve.equal h Curve.Inf);
            Alcotest.(check bool) (id ^ " order q") true
              (Curve.equal (Curve.mul pr.Params.fp pr.Params.q h) Curve.Inf))
          [ "alice@example.org"; "bob@example.org"; ""; "x"; String.make 200 'z' ]);
    Alcotest.test_case "hash_to_group deterministic and collision-free on sample" `Quick (fun () ->
        let pr = p () in
        let h1 = Pairing.hash_to_group pr "alice@example.org" in
        let h2 = Pairing.hash_to_group pr "alice@example.org" in
        let h3 = Pairing.hash_to_group pr "bob@example.org" in
        Alcotest.(check bool) "deterministic" true (Curve.equal h1 h2);
        Alcotest.(check bool) "distinct ids distinct points" false (Curve.equal h1 h3));
    Alcotest.test_case "hash_to_scalar in range and deterministic" `Quick (fun () ->
        let pr = p () in
        let s1 = Pairing.hash_to_scalar pr "msg" and s2 = Pairing.hash_to_scalar pr "msg" in
        Alcotest.(check bool) "deterministic" true (B.equal s1 s2);
        Alcotest.(check bool) "in (0, q)" true (B.sign s1 > 0 && B.compare s1 pr.Params.q < 0);
        Alcotest.(check bool) "differs by msg" false
          (B.equal s1 (Pairing.hash_to_scalar pr "other")));
    Alcotest.test_case "gt serialization is canonical" `Quick (fun () ->
        let pr = p () in
        let e = Pairing.pair pr pr.Params.g pr.Params.g in
        Alcotest.(check string) "same bytes" (Pairing.gt_bytes pr e) (Pairing.gt_bytes pr e));
  ]

(* regression: the 2-torsion point (-1, 0) used to hit the tangent branch
   with y = 0 and raise Division_by_zero; the tangent there is vertical *)
let two_torsion_tests =
  let tt pr = Curve.make pr.Params.fp ~x:(Alpenhorn_pairing.Field.neg pr.Params.fp B.one) ~y:B.zero in
  [
    Alcotest.test_case "line_and_add doubles 2-torsion as a vertical" `Quick (fun () ->
        let pr = p () in
        let f = pr.Params.fp in
        let t = tt pr in
        let xq = Fp2.mul_fp f pr.Params.zeta (B.of_int 7) and yq = Fp2.of_fp (B.of_int 9) in
        let l, v, sum = Pairing.line_and_add f t t ~xq ~yq in
        Alcotest.(check bool) "t + t = O" true (Curve.equal sum Curve.Inf);
        Alcotest.(check bool) "v = 1" true (Fp2.equal v Fp2.one);
        (* the vertical through x = -1, evaluated at xq *)
        Alcotest.(check bool) "l = xq + 1" true
          (Fp2.equal l (Fp2.sub f xq (Fp2.of_fp (Alpenhorn_pairing.Field.neg f B.one)))));
    Alcotest.test_case "Curve.double of 2-torsion is O" `Quick (fun () ->
        let pr = p () in
        Alcotest.(check bool) "double" true (Curve.equal (Curve.double pr.Params.fp (tt pr)) Curve.Inf));
    Alcotest.test_case "pairing with a 2-torsion first argument does not raise" `Quick (fun () ->
        let pr = p () in
        let t = tt pr in
        (* the Miller loop doubles through y = 0 immediately; both paths
           must survive and agree *)
        Alcotest.(check bool) "fast = reference" true
          (Fp2.equal (Pairing.pair pr t pr.Params.g) (Pairing.pair_reference pr t pr.Params.g)));
  ]

let fast_path_tests =
  [
    Alcotest.test_case "fast pairing equals reference on random points" `Quick (fun () ->
        let pr = p () in
        let f = pr.Params.fp and g = pr.Params.g in
        let rng = Drbg.create ~seed:"pair-fast" in
        for i = 1 to 12 do
          let a = Curve.mul f (Drbg.bigint_below rng pr.Params.q) g in
          let b =
            if i mod 2 = 0 then Pairing.hash_to_group pr (string_of_int i)
            else Curve.mul f (Drbg.bigint_below rng pr.Params.q) g
          in
          match (a, b) with
          | Curve.Inf, _ | _, Curve.Inf -> ()
          | _ ->
            Alcotest.(check bool) "fast = reference" true
              (Fp2.equal (Pairing.pair pr a b) (Pairing.pair_reference pr a b))
        done);
    Alcotest.test_case "fast pairing equals reference on the production curve" `Slow (fun () ->
        let pr = Params.production () in
        let h = Pairing.hash_to_group pr "production-probe" in
        Alcotest.(check bool) "fast = reference" true
          (Fp2.equal (Pairing.pair pr pr.Params.g h) (Pairing.pair_reference pr pr.Params.g h)));
    Alcotest.test_case "pair_cached equals pair and hits on repeats" `Quick (fun () ->
        let pr = p () in
        let module Tel = Alpenhorn_telemetry.Telemetry in
        let h = Pairing.hash_to_group pr "cache-probe" in
        ignore (Tel.Snapshot.take ~reset:true Tel.default);
        let e1 = Pairing.pair_cached pr h pr.Params.g in
        let e2 = Pairing.pair_cached pr h pr.Params.g in
        Alcotest.(check bool) "cached = direct" true (Fp2.equal e1 (Pairing.pair pr h pr.Params.g));
        Alcotest.(check bool) "stable" true (Fp2.equal e1 e2);
        let snap = Tel.Snapshot.take Tel.default in
        Alcotest.(check bool) "at least one hit" true
          (Tel.Snapshot.counter_sum snap "pairing.cache_hits" >= 1);
        Alcotest.(check bool) "at least one miss" true
          (Tel.Snapshot.counter_sum snap "pairing.cache_misses" >= 1));
  ]

let prop name ?(count = 15) arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let property_tests =
  [
    prop "bilinearity in the first argument" QCheck.(pair (int_range 1 500) (int_range 1 500))
      (fun (a, b) ->
        let pr = p () in
        let f = pr.Params.fp and g = pr.Params.g in
        let lhs = Pairing.pair pr (Curve.mul f (B.of_int a) g) (Curve.mul f (B.of_int b) g) in
        let rhs = Fp2.pow f (Pairing.pair pr g g) (B.of_int (a * b)) in
        Fp2.equal lhs rhs);
    prop "pairing with hashed points is bilinear" QCheck.(pair (int_range 1 300) small_string)
      (fun (a, id) ->
        let pr = p () in
        let f = pr.Params.fp in
        let h = Pairing.hash_to_group pr id in
        let lhs = Pairing.pair pr (Curve.mul f (B.of_int a) pr.Params.g) h in
        let rhs = Fp2.pow f (Pairing.pair pr pr.Params.g h) (B.of_int a) in
        Fp2.equal lhs rhs);
    prop "e(aP, bQ) = e(bP, aQ)" QCheck.(pair (int_range 1 200) (int_range 1 200)) (fun (a, b) ->
        let pr = p () in
        let f = pr.Params.fp and g = pr.Params.g in
        let h = Pairing.hash_to_group pr "swap-test" in
        Fp2.equal
          (Pairing.pair pr (Curve.mul f (B.of_int a) g) (Curve.mul f (B.of_int b) h))
          (Pairing.pair pr (Curve.mul f (B.of_int b) g) (Curve.mul f (B.of_int a) h)));
  ]

let suite = unit_tests @ two_torsion_tests @ fast_path_tests @ property_tests
