(* Boneh-Franklin FullIdent and Anytrust-IBE. *)

module B = Alpenhorn_bigint.Bigint
module Curve = Alpenhorn_pairing.Curve
module Params = Alpenhorn_pairing.Params
module Ibe = Alpenhorn_ibe.Ibe
module Drbg = Alpenhorn_crypto.Drbg

let params = lazy (Params.test ())
let p () = Lazy.force params
let rng () = Drbg.create ~seed:"ibe-tests"

let unit_tests =
  [
    Alcotest.test_case "encrypt/decrypt roundtrip" `Quick (fun () ->
        let pr = p () and rng = rng () in
        let msk, mpk = Ibe.setup pr rng in
        let d = Ibe.extract pr msk "alice@example.org" in
        let msg = "hello alice, this is a friend request" in
        let ctxt = Ibe.encrypt pr rng mpk ~id:"alice@example.org" msg in
        Alcotest.(check (option string)) "roundtrip" (Some msg) (Ibe.decrypt pr d ctxt));
    Alcotest.test_case "wrong identity cannot decrypt" `Quick (fun () ->
        let pr = p () and rng = rng () in
        let msk, mpk = Ibe.setup pr rng in
        let d_bob = Ibe.extract pr msk "bob@example.org" in
        let ctxt = Ibe.encrypt pr rng mpk ~id:"alice@example.org" "secret" in
        Alcotest.(check (option string)) "bob fails" None (Ibe.decrypt pr d_bob ctxt));
    Alcotest.test_case "wrong master key cannot decrypt" `Quick (fun () ->
        let pr = p () and rng = rng () in
        let _, mpk1 = Ibe.setup pr rng in
        let msk2, _ = Ibe.setup pr rng in
        let d = Ibe.extract pr msk2 "alice@example.org" in
        let ctxt = Ibe.encrypt pr rng mpk1 ~id:"alice@example.org" "secret" in
        Alcotest.(check (option string)) "other PKG fails" None (Ibe.decrypt pr d ctxt));
    Alcotest.test_case "tampered ciphertext rejected (FO check)" `Quick (fun () ->
        let pr = p () and rng = rng () in
        let msk, mpk = Ibe.setup pr rng in
        let d = Ibe.extract pr msk "alice@example.org" in
        let ctxt = Ibe.encrypt pr rng mpk ~id:"alice@example.org" "secret message" in
        (* flip one bit anywhere: every position must cause rejection *)
        List.iter
          (fun pos ->
            let b = Bytes.of_string ctxt in
            Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1));
            Alcotest.(check (option string))
              (Printf.sprintf "flip at %d" pos)
              None
              (Ibe.decrypt pr d (Bytes.to_string b)))
          [ 0; String.length ctxt / 2; String.length ctxt - 1 ]);
    Alcotest.test_case "malformed ciphertexts rejected" `Quick (fun () ->
        let pr = p () and rng = rng () in
        let msk, _ = Ibe.setup pr rng in
        let d = Ibe.extract pr msk "alice@example.org" in
        Alcotest.(check (option string)) "empty" None (Ibe.decrypt pr d "");
        Alcotest.(check (option string)) "short" None (Ibe.decrypt pr d "abc");
        Alcotest.(check (option string)) "garbage" None
          (Ibe.decrypt pr d (String.make (Ibe.ciphertext_overhead pr + 10) '\xAB')));
    Alcotest.test_case "ciphertext size is plaintext + overhead" `Quick (fun () ->
        let pr = p () and rng = rng () in
        let _, mpk = Ibe.setup pr rng in
        List.iter
          (fun n ->
            let ctxt = Ibe.encrypt pr rng mpk ~id:"x@y" (String.make n 'm') in
            Alcotest.(check int)
              (Printf.sprintf "len %d" n)
              (n + Ibe.ciphertext_overhead pr)
              (String.length ctxt))
          [ 0; 1; 100; 500 ]);
    Alcotest.test_case "anytrust: all PKG keys decrypt, subsets do not" `Quick (fun () ->
        let pr = p () and rng = rng () in
        let pkgs = List.init 3 (fun _ -> Ibe.setup pr rng) in
        let mpk_agg = Ibe.aggregate_public pr (List.map snd pkgs) in
        let keys = List.map (fun (msk, _) -> Ibe.extract pr msk "alice@example.org") pkgs in
        let d_all = Ibe.aggregate_identity pr keys in
        let ctxt = Ibe.encrypt pr rng mpk_agg ~id:"alice@example.org" "anytrust secret" in
        Alcotest.(check (option string)) "all three" (Some "anytrust secret")
          (Ibe.decrypt pr d_all ctxt);
        (* any proper subset of identity keys fails: the missing honest PKG
           protects the ciphertext *)
        List.iteri
          (fun i _ ->
            let subset = List.filteri (fun j _ -> j <> i) keys in
            let d_sub = Ibe.aggregate_identity pr subset in
            Alcotest.(check (option string))
              (Printf.sprintf "without pkg %d" i)
              None (Ibe.decrypt pr d_sub ctxt))
          keys);
    Alcotest.test_case "anytrust ciphertext size independent of PKG count" `Quick (fun () ->
        let pr = p () and rng = rng () in
        let sizes =
          List.map
            (fun n ->
              let pkgs = List.init n (fun _ -> Ibe.setup pr rng) in
              let mpk = Ibe.aggregate_public pr (List.map snd pkgs) in
              String.length (Ibe.encrypt pr rng mpk ~id:"a@b" "constant message"))
            [ 1; 3; 10 ]
        in
        match sizes with
        | [ a; b; c ] ->
          Alcotest.(check int) "1 vs 3" a b;
          Alcotest.(check int) "3 vs 10" b c
        | _ -> assert false);
    Alcotest.test_case "master public key serialization" `Quick (fun () ->
        let pr = p () and rng = rng () in
        let _, mpk = Ibe.setup pr rng in
        Alcotest.(check bool) "roundtrip" true
          (match Ibe.master_public_of_bytes pr (Ibe.master_public_bytes pr mpk) with
           | Some m -> Curve.equal m mpk
           | None -> false));
    Alcotest.test_case "distinct randomness yields distinct ciphertexts" `Quick (fun () ->
        let pr = p () and rng = rng () in
        let _, mpk = Ibe.setup pr rng in
        let c1 = Ibe.encrypt pr rng mpk ~id:"a@b" "same message" in
        let c2 = Ibe.encrypt pr rng mpk ~id:"a@b" "same message" in
        Alcotest.(check bool) "probabilistic encryption" false (c1 = c2));
  ]

let prop name ?(count = 10) arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let property_tests =
  [
    prop "roundtrip for arbitrary messages and identities"
      QCheck.(pair small_string small_string)
      (fun (id, msg) ->
        let pr = p () in
        let rng = Drbg.create ~seed:("prop" ^ id ^ msg) in
        let msk, mpk = Ibe.setup pr rng in
        let d = Ibe.extract pr msk id in
        Ibe.decrypt pr d (Ibe.encrypt pr rng mpk ~id msg) = Some msg);
    prop "ciphertext anonymity: decryption is the only distinguisher" QCheck.(int_range 0 1000)
      (fun seed ->
        (* both ciphertexts have identical length and successfully decrypt
           only under their own identity *)
        let pr = p () in
        let rng = Drbg.create ~seed:(string_of_int seed) in
        let msk, mpk = Ibe.setup pr rng in
        let ca = Ibe.encrypt pr rng mpk ~id:"alice@x" "m" in
        let cb = Ibe.encrypt pr rng mpk ~id:"bob@x" "m" in
        let da = Ibe.extract pr msk "alice@x" in
        String.length ca = String.length cb
        && Ibe.decrypt pr da ca = Some "m"
        && Ibe.decrypt pr da cb = None);
  ]

let suite = unit_tests @ property_tests
