(* Per-message causal tracing: sampler determinism, label round-trip,
   stitched traces across the sim and the real pipeline, the wire
   byte-identity privacy invariant, and the DES queue-depth gauges. *)

module Tel = Alpenhorn_telemetry.Telemetry
module Trace = Alpenhorn_telemetry.Trace
module Drbg = Alpenhorn_crypto.Drbg
module Onion = Alpenhorn_mixnet.Onion
module Payload = Alpenhorn_mixnet.Payload
module Mailbox = Alpenhorn_mixnet.Mailbox
module Chain = Alpenhorn_mixnet.Chain
module Costmodel = Alpenhorn_sim.Costmodel
module Round_sim = Alpenhorn_sim.Round_sim
module Config = Alpenhorn_core.Config
module Client = Alpenhorn_core.Client
module Deployment = Alpenhorn_core.Deployment

let params = lazy (Alpenhorn_pairing.Params.test ())

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let gauge snap name =
  List.filter_map
    (fun (n, _, v) -> if n = name then Some v else None)
    snap.Tel.Snapshot.gauges
  |> List.fold_left Float.max neg_infinity

(* Follow parent pointers from the root: the causal chain of one trace. *)
let causal_chain spans =
  let root =
    match List.find_opt (fun ((c : Trace.ctx), _) -> c.parent = None) spans with
    | Some r -> r
    | None -> Alcotest.fail "trace has no root span"
  in
  let rec walk ((c : Trace.ctx), (sp : Tel.Snapshot.span)) acc =
    let acc = (sp.name, sp) :: acc in
    match
      List.find_opt (fun ((c' : Trace.ctx), _) -> c'.parent = Some c.span_id) spans
    with
    | None -> List.rev acc
    | Some next -> walk next acc
  in
  walk root []

let run_sim_round tracer =
  ignore (Tel.Snapshot.take ~reset:true Tel.default);
  let pr = Lazy.force params in
  let pc = Costmodel.protocol_costs pr in
  ignore
    (Round_sim.addfriend Costmodel.paper_machine ?tracer pc ~n_users:100_000 ~n_servers:3
       ~noise_mu:4000.0 ~active_fraction:0.05 ~chunks:1);
  Tel.Snapshot.take Tel.default

let sampler_tests =
  [
    Alcotest.test_case "sampling is deterministic and respects the rate" `Quick (fun () ->
        let r = Tel.create () in
        let decisions tr = List.init 200 (fun _ -> Trace.sample tr <> None) in
        let a = decisions (Trace.create ~rate:0.5 ~seed:42 r) in
        let b = decisions (Trace.create ~rate:0.5 ~seed:42 r) in
        Alcotest.(check (list bool)) "same seed, same decisions" a b;
        let hits = List.length (List.filter Fun.id a) in
        Alcotest.(check bool) "rate 0.5 samples roughly half" true (hits > 50 && hits < 150);
        let all = decisions (Trace.create ~rate:1.0 r) in
        Alcotest.(check bool) "rate 1 samples everything" true (List.for_all Fun.id all);
        let none = decisions (Trace.create ~rate:0.0 r) in
        Alcotest.(check bool) "rate 0 samples nothing" true (not (List.exists Fun.id none));
        Alcotest.(check bool) "rate outside [0,1] rejected" true
          (try
             ignore (Trace.create ~rate:1.5 r);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "contexts round-trip through span labels" `Quick (fun () ->
        let r = Tel.create () in
        let tr = Trace.create r in
        let root = Option.get (Trace.sample tr) in
        let kid = Trace.child tr root in
        List.iter
          (fun ctx ->
            Alcotest.(check bool) "round-trip" true
              (Trace.ctx_of_labels (Trace.labels_of ctx) = Some ctx))
          [ root; kid ];
        Alcotest.(check bool) "child keeps the trace id" true
          (kid.Trace.trace_id = root.Trace.trace_id);
        Alcotest.(check bool) "child parents to the root span" true
          (kid.Trace.parent = Some root.Trace.span_id);
        Alcotest.(check (option unit)) "plain labels are not a context" None
          (Option.map ignore (Trace.ctx_of_labels [ ("server", "1") ])));
  ]

let sim_tests =
  [
    Alcotest.test_case "round_sim emits one stitched multi-hop trace" `Quick (fun () ->
        let tr = Trace.create ~rate:1.0 ~seed:7 Tel.default in
        let snap = run_sim_round (Some tr) in
        (match Trace.traces snap with
        | [ (_, spans) ] ->
          let chain = causal_chain spans in
          Alcotest.(check (list string)) "client -> 3 hops -> mailbox -> scan"
            [ "client.submit"; "mix.hop"; "mix.hop"; "mix.hop"; "mailbox.publish"; "client.scan" ]
            (List.map fst chain);
          Alcotest.(check int) "chain covers every span of the trace" (List.length spans)
            (List.length chain);
          (* hops visit servers 0,1,2 in order, at non-decreasing times *)
          let hops = List.filter (fun (n, _) -> n = "mix.hop") chain in
          List.iteri
            (fun i (_, (sp : Tel.Snapshot.span)) ->
              Alcotest.(check (option string))
                (Printf.sprintf "hop %d server label" i)
                (Some (string_of_int i))
                (List.assoc_opt "server" sp.labels))
            hops;
          let times = List.map (fun (_, (sp : Tel.Snapshot.span)) -> sp.ts) chain in
          Alcotest.(check bool) "timestamps non-decreasing along the chain" true
            (List.for_all2 ( <= ) (List.filteri (fun i _ -> i < 5) times) (List.tl times));
          List.iter
            (fun (_, (sp : Tel.Snapshot.span)) ->
              Alcotest.(check string) "simulated clock" "sim" sp.clock)
            chain
        | ts -> Alcotest.failf "expected exactly one trace, got %d" (List.length ts));
        (* the Chrome exporter carries the trace labels through *)
        let chrome = Tel.Snapshot.to_chrome_trace snap in
        Alcotest.(check bool) "chrome trace is valid JSON" true (Tel.Json.is_valid chrome);
        Alcotest.(check bool) "chrome trace carries trace labels" true
          (contains chrome "\"trace\"");
        ignore (Format.asprintf "%a" Trace.pp_timelines snap));
    Alcotest.test_case "queue-depth gauges: busy mid-round, quiescent after" `Quick (fun () ->
        let snap = run_sim_round None in
        Alcotest.(check bool) "des queue was non-empty mid-round" true
          (gauge snap "sim.des_pending_max" >= 1.0);
        Alcotest.(check (float 1e-9)) "des queue drained at quiescence" 0.0
          (gauge snap "sim.des_pending");
        Alcotest.(check bool) "mailbox load recorded" true (gauge snap "mailbox.max_load" > 0.0));
  ]

(* One chain round, same DRBG seeds, with and without tracing: every wire
   artifact (submitted onions, mailbox contents) must be byte-identical —
   trace contexts ride out-of-band only (DESIGN.md §9). *)
let chain_round tracer =
  ignore (Tel.Snapshot.take ~reset:true Tel.default);
  let pr = Lazy.force params in
  let rng = Drbg.create ~seed:"wire-identity" in
  let chain = Chain.create pr ~rng:(Drbg.derive rng "chain") ~chain_length:3 in
  let server_pks = Chain.begin_round chain in
  let crng = Drbg.derive rng "clients" in
  let onions =
    Array.init 4 (fun i ->
        Onion.wrap pr crng ~server_pks
          (Payload.encode ~mailbox:(i mod 3) (Printf.sprintf "body-%04d" i)))
  in
  let ctx0 = Option.bind tracer Trace.sample in
  (* the client normally emits the root span at submission time *)
  (match (tracer, ctx0) with
  | Some tr, Some c ->
    Trace.emit tr c ~labels:[ ("client", "alice") ] ~name:"client.submit"
      ~ts:(Tel.now Tel.default) ~dur:0.0 ()
  | _ -> ());
  let batch = Array.mapi (fun i o -> (o, if i = 0 then ctx0 else None)) onions in
  let nrng = Drbg.derive rng "noise" in
  let mailboxes, stats, published =
    Chain.run_round_traced chain ~mode:`AddFriend ~noise_mu:2.0 ~laplace_b:0.5 ~num_mailboxes:3
      ~noise_body:(fun ~mailbox:_ -> Drbg.bytes nrng 24)
      ?tracer batch
  in
  (onions, Mailbox.plain_exn mailboxes, stats, published)

let wire_tests =
  [
    Alcotest.test_case "wire formats are byte-identical with tracing on or off" `Quick (fun () ->
        let onions_off, boxes_off, stats_off, published_off = chain_round None in
        let tr = Trace.create ~rate:1.0 Tel.default in
        let onions_on, boxes_on, stats_on, published_on = chain_round (Some tr) in
        Alcotest.(check bool) "submitted onions identical" true (onions_off = onions_on);
        Alcotest.(check int) "same mailbox count" (Array.length boxes_off) (Array.length boxes_on);
        Array.iteri
          (fun i entries ->
            Alcotest.(check (list string))
              (Printf.sprintf "mailbox %d entries byte-identical" i)
              entries boxes_on.(i))
          boxes_off;
        Alcotest.(check bool) "chain stats identical" true (stats_off = stats_on);
        (* and the traced run really did trace: the sampled message's hops
           and publish landed in the registry, parented into one chain *)
        Alcotest.(check (list int)) "untraced run published no contexts" []
          (List.map fst published_off);
        (match published_on with
        | [ (mb, _) ] -> Alcotest.(check int) "traced payload landed in its mailbox" 0 mb
        | l -> Alcotest.failf "expected one traced publish, got %d" (List.length l));
        let snap = Tel.Snapshot.take Tel.default in
        match Trace.traces snap with
        | [ (_, spans) ] ->
          Alcotest.(check (list string)) "submit, hops, then publish"
            [ "client.submit"; "mix.hop"; "mix.hop"; "mix.hop"; "mailbox.publish" ]
            (List.map (fun (_, s) -> s.Tel.Snapshot.name) (causal_chain spans))
        | ts -> Alcotest.failf "expected one trace, got %d" (List.length ts));
  ]

(* Full deployment, same seed, traced vs untraced: identical round results
   (the client path is also perturbation-free), and the traced run stitches
   a scan span onto the published trace. *)
let deployment_round tracer =
  ignore (Tel.Snapshot.take ~reset:true Tel.default);
  let d = Deployment.create ~config:Config.test ~seed:"dep-wire" in
  let a = Deployment.new_client d ~email:"alice@example.org" ~callbacks:Client.null_callbacks in
  let b = Deployment.new_client d ~email:"bob@example.org" ~callbacks:Client.null_callbacks in
  List.iter
    (fun c ->
      match Deployment.register d c with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Alpenhorn_pkg.Pkg.error_to_string e))
    [ a; b ];
  Client.add_friend a ~email:"bob@example.org" ();
  let s1 = Deployment.run_addfriend_round d ?tracer () in
  let s2 = Deployment.run_addfriend_round d ?tracer () in
  (s1, s2)

let deployment_tests =
  [
    Alcotest.test_case "deployment rounds are unperturbed by tracing" `Quick (fun () ->
        let off1, off2 = deployment_round None in
        let tr = Trace.create ~rate:1.0 Tel.default in
        let on1, on2 = deployment_round (Some tr) in
        Alcotest.(check bool) "round 1 stats identical" true (off1 = on1);
        Alcotest.(check bool) "round 2 stats identical" true (off2 = on2);
        Alcotest.(check bool) "friendship actually established" true
          (List.exists
             (function _, Client.Friend_confirmed _ -> true | _ -> false)
             off2.Deployment.events);
        (* the traced run produced at least one full client->scan chain *)
        let snap = Tel.Snapshot.take Tel.default in
        let chains =
          List.map (fun (_, spans) -> List.map fst (causal_chain spans)) (Trace.traces snap)
        in
        Alcotest.(check bool) "a stitched submit->hops->publish->scan trace exists" true
          (List.exists
             (fun names ->
               names
               = [
                   "client.submit"; "mix.hop"; "mix.hop"; "mix.hop"; "mailbox.publish";
                   "client.scan";
                 ])
             chains));
  ]

let suite = sampler_tests @ sim_tests @ wire_tests @ deployment_tests
