(* The verifiable key ledger (§3.2 worst-case defense). *)

module Ledger = Alpenhorn_ledger.Ledger
module Drbg = Alpenhorn_crypto.Drbg

let unit_tests =
  [
    Alcotest.test_case "empty log" `Quick (fun () ->
        let l = Ledger.create () in
        Alcotest.(check int) "size" 0 (Ledger.size l);
        Alcotest.(check string) "root" "" (Ledger.root l);
        Alcotest.(check bool) "consistent with itself" true
          (Ledger.consistent l ~old_size:0 ~old_root:""));
    Alcotest.test_case "append and prove across sizes" `Quick (fun () ->
        (* exercise every tree shape from 1 to 33 leaves *)
        let l = Ledger.create () in
        for i = 0 to 32 do
          let identity = Printf.sprintf "user%d@x" i in
          let key = Printf.sprintf "key-%d" i in
          let idx = Ledger.append l ~identity ~key_bytes:key in
          Alcotest.(check int) "index" i idx;
          (* every older leaf still proves against the new root *)
          let root = Ledger.root l and size = Ledger.size l in
          for j = 0 to i do
            let leaf =
              Ledger.leaf_hash
                ~identity:(Printf.sprintf "user%d@x" j)
                ~key_bytes:(Printf.sprintf "key-%d" j)
            in
            Alcotest.(check bool)
              (Printf.sprintf "leaf %d of %d" j size)
              true
              (Ledger.verify_inclusion ~root ~size ~index:j ~leaf (Ledger.prove l j))
          done
        done);
    Alcotest.test_case "proofs are logarithmic" `Quick (fun () ->
        let l = Ledger.create () in
        for i = 0 to 1023 do
          ignore (Ledger.append l ~identity:(string_of_int i) ~key_bytes:"k")
        done;
        Alcotest.(check int) "1024 leaves -> 10 hashes" 10 (Ledger.proof_size (Ledger.prove l 0)));
    Alcotest.test_case "wrong leaf, index or root fails" `Quick (fun () ->
        let l = Ledger.create () in
        ignore (Ledger.append l ~identity:"alice@x" ~key_bytes:"ka");
        ignore (Ledger.append l ~identity:"bob@x" ~key_bytes:"kb");
        ignore (Ledger.append l ~identity:"carol@x" ~key_bytes:"kc");
        let root = Ledger.root l and size = Ledger.size l in
        let leaf = Ledger.leaf_hash ~identity:"alice@x" ~key_bytes:"ka" in
        let proof = Ledger.prove l 0 in
        Alcotest.(check bool) "good" true
          (Ledger.verify_inclusion ~root ~size ~index:0 ~leaf proof);
        Alcotest.(check bool) "wrong leaf" false
          (Ledger.verify_inclusion ~root ~size ~index:0
             ~leaf:(Ledger.leaf_hash ~identity:"alice@x" ~key_bytes:"EVIL")
             proof);
        Alcotest.(check bool) "wrong index" false
          (Ledger.verify_inclusion ~root ~size ~index:1 ~leaf proof);
        Alcotest.(check bool) "wrong root" false
          (Ledger.verify_inclusion ~root:(String.make 32 'x') ~size ~index:0 ~leaf proof);
        Alcotest.(check bool) "out of range" false
          (Ledger.verify_inclusion ~root ~size ~index:99 ~leaf proof);
        Alcotest.check_raises "prove out of range" (Invalid_argument "Ledger.prove: index")
          (fun () -> ignore (Ledger.prove l 5)));
    Alcotest.test_case "consistency across appends (monitor flow)" `Quick (fun () ->
        let l = Ledger.create () in
        ignore (Ledger.append l ~identity:"alice@x" ~key_bytes:"ka");
        ignore (Ledger.append l ~identity:"bob@x" ~key_bytes:"kb");
        let pinned_root = Ledger.root l and pinned_size = Ledger.size l in
        (* the log grows; the old pin must still be an ancestor *)
        ignore (Ledger.append l ~identity:"carol@x" ~key_bytes:"kc");
        ignore (Ledger.append l ~identity:"dave@x" ~key_bytes:"kd");
        Alcotest.(check bool) "extends pin" true
          (Ledger.consistent l ~old_size:pinned_size ~old_root:pinned_root);
        Alcotest.(check bool) "fake history rejected" false
          (Ledger.consistent l ~old_size:pinned_size ~old_root:(String.make 32 'z')));
    Alcotest.test_case "impersonation is visible to a monitoring user (§3.2)" `Quick (fun () ->
        let l = Ledger.create () in
        ignore (Ledger.append l ~identity:"alice@x" ~key_bytes:"alice-real-key");
        (* a MITM must publish a conflicting binding to be believed *)
        ignore (Ledger.append l ~identity:"alice@x" ~key_bytes:"mitm-key");
        let bindings = Ledger.bindings_for l ~identity:"alice@x" in
        Alcotest.(check int) "two bindings visible" 2 (List.length bindings);
        Alcotest.(check bool) "the rogue key is right there" true
          (List.exists (fun (_, k) -> k = "mitm-key") bindings));
    Alcotest.test_case "proof from a real BLS key registration verifies" `Quick (fun () ->
        (* the full §3.2 flow: register a long-term key, hand a friend the
           (root, index, proof); the friend checks the binding offline *)
        let pr = Alpenhorn_pairing.Params.test () in
        let rng = Drbg.create ~seed:"ledger-bls" in
        let _, pk = Alpenhorn_bls.Bls.keygen pr rng in
        let key_bytes = Alpenhorn_bls.Bls.public_bytes pr pk in
        let l = Ledger.create () in
        ignore (Ledger.append l ~identity:"seed@x" ~key_bytes:"other");
        let idx = Ledger.append l ~identity:"alice@x" ~key_bytes in
        let proof = Ledger.prove l idx in
        Alcotest.(check bool) "binding verifies" true
          (Ledger.verify_inclusion ~root:(Ledger.root l) ~size:(Ledger.size l) ~index:idx
             ~leaf:(Ledger.leaf_hash ~identity:"alice@x" ~key_bytes)
             proof));
  ]

let suite = unit_tests
