(* Encrypted identity backups (§9). *)

module B = Alpenhorn_bigint.Bigint
module Curve = Alpenhorn_pairing.Curve
module Params = Alpenhorn_pairing.Params
module Bls = Alpenhorn_bls.Bls
module Persist = Alpenhorn_core.Persist
module Config = Alpenhorn_core.Config
module Client = Alpenhorn_core.Client
module Deployment = Alpenhorn_core.Deployment
module Drbg = Alpenhorn_crypto.Drbg

let params = lazy (Params.test ())
let p () = Lazy.force params

let sample_backup () =
  let pr = p () in
  let rng = Drbg.create ~seed:"persist" in
  let sk, _ = Bls.keygen pr rng in
  let _, friend_pk = Bls.keygen pr rng in
  let _, friend_pk2 = Bls.keygen pr rng in
  (sk, [ ("bob@x", friend_pk); ("carol@x", friend_pk2) ])

let unit_tests =
  [
    Alcotest.test_case "roundtrip" `Quick (fun () ->
        let pr = p () in
        let sk, pinned = sample_backup () in
        let blob =
          Persist.export_identity pr ~passphrase:"hunter2" ~email:"alice@x" ~signing_secret:sk
            ~pinned
        in
        match Persist.import_identity pr ~passphrase:"hunter2" blob with
        | None -> Alcotest.fail "import failed"
        | Some b ->
          Alcotest.(check string) "email" "alice@x" b.Persist.email;
          Alcotest.(check bool) "secret" true (B.equal sk b.Persist.signing_secret);
          Alcotest.(check int) "pins" 2 (List.length b.Persist.pinned);
          List.iter2
            (fun (f1, k1) (f2, k2) ->
              Alcotest.(check string) "friend" f1 f2;
              Alcotest.(check bool) "key" true (Curve.equal k1 k2))
            pinned b.Persist.pinned);
    Alcotest.test_case "wrong passphrase is rejected" `Quick (fun () ->
        let pr = p () in
        let sk, pinned = sample_backup () in
        let blob =
          Persist.export_identity pr ~passphrase:"right" ~email:"alice@x" ~signing_secret:sk ~pinned
        in
        Alcotest.(check bool) "wrong" true
          (Persist.import_identity pr ~passphrase:"wrong" blob = None));
    Alcotest.test_case "tampered blob is rejected" `Quick (fun () ->
        let pr = p () in
        let sk, pinned = sample_backup () in
        let blob =
          Persist.export_identity pr ~passphrase:"pw" ~email:"alice@x" ~signing_secret:sk ~pinned
        in
        List.iter
          (fun pos ->
            let b = Bytes.of_string blob in
            Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1));
            Alcotest.(check bool)
              (Printf.sprintf "flip %d" pos)
              true
              (Persist.import_identity pr ~passphrase:"pw" (Bytes.to_string b) = None))
          [ 0; 20; String.length blob - 1 ];
        Alcotest.(check bool) "truncated" true
          (Persist.import_identity pr ~passphrase:"pw" (String.sub blob 0 10) = None));
    Alcotest.test_case "decode_plain rejects trailing bytes" `Quick (fun () ->
        let pr = p () in
        let sk, pinned = sample_backup () in
        let plain = Persist.encode_plain pr ~email:"alice@x" ~signing_secret:sk ~pinned in
        Alcotest.(check bool) "exact blob decodes" true (Persist.decode_plain pr plain <> None);
        (* a corrupted-then-extended payload must not import silently *)
        Alcotest.(check bool) "trailing byte rejected" true
          (Persist.decode_plain pr (plain ^ "\x00") = None);
        Alcotest.(check bool) "trailing run rejected" true
          (Persist.decode_plain pr (plain ^ String.make 8 'z') = None));
    Alcotest.test_case "empty pin list works" `Quick (fun () ->
        let pr = p () in
        let sk, _ = sample_backup () in
        let blob =
          Persist.export_identity pr ~passphrase:"pw" ~email:"a@x" ~signing_secret:sk ~pinned:[]
        in
        match Persist.import_identity pr ~passphrase:"pw" blob with
        | Some b -> Alcotest.(check int) "no pins" 0 (List.length b.Persist.pinned)
        | None -> Alcotest.fail "import failed");
    Alcotest.test_case "client export -> restore preserves identity and pins" `Quick (fun () ->
        let d = Deployment.create ~config:Config.test ~seed:"persist-client" in
        let alice = Deployment.new_client d ~email:"alice@x" ~callbacks:Client.null_callbacks in
        let bob = Deployment.new_client d ~email:"bob@x" ~callbacks:Client.null_callbacks in
        (match Deployment.register d alice with Ok () -> () | Error _ -> assert false);
        (match Deployment.register d bob with Ok () -> () | Error _ -> assert false);
        Client.add_friend alice ~email:"bob@x" ();
        ignore (Deployment.run_addfriend_round d ());
        ignore (Deployment.run_addfriend_round d ());
        let blob = Client.export_backup alice ~passphrase:"pw" in
        match Persist.import_identity (Deployment.params d) ~passphrase:"pw" blob with
        | None -> Alcotest.fail "import failed"
        | Some backup ->
          let restored =
            Client.create_from_backup ~config:Config.test
              ~rng:(Drbg.create ~seed:"restored")
              ~pkg_public_keys:(Deployment.pkg_public_keys d)
              ~callbacks:Client.null_callbacks backup
          in
          Alcotest.(check string) "email" "alice@x" (Client.email restored);
          Alcotest.(check bool) "same long-term key" true
            (Curve.equal (Client.signing_public alice) (Client.signing_public restored));
          (* bob's key survived the backup; the keywheel did not *)
          Alcotest.(check bool) "pin restored" true
            (match Client.pinned_key restored ~email:"bob@x" with
             | Some k -> Curve.equal k (Client.signing_public bob)
             | None -> false);
          Alcotest.(check (list string)) "keywheel empty (forward secrecy)" []
            (Client.friends restored));
  ]

let suite = unit_tests
