(* Parallel pool: map semantics, domain-safety hammer, determinism. *)

module Parallel = Alpenhorn_parallel.Parallel
module Params = Alpenhorn_pairing.Params
module Pairing = Alpenhorn_pairing.Pairing
module Fp2 = Alpenhorn_pairing.Fp2
module Tel = Alpenhorn_telemetry.Telemetry
module Events = Alpenhorn_telemetry.Events
module Chain = Alpenhorn_mixnet.Chain
module Onion = Alpenhorn_mixnet.Onion
module Payload = Alpenhorn_mixnet.Payload
module Mailbox = Alpenhorn_mixnet.Mailbox
module Drbg = Alpenhorn_crypto.Drbg

let params = lazy (Params.test ())
let p () = Lazy.force params

let with_pool domains f =
  let pool = Parallel.create ~domains in
  Fun.protect ~finally:(fun () -> Parallel.shutdown pool) (fun () -> f pool)

let map_semantics =
  [
    Alcotest.test_case "map matches Array.map across pool sizes" `Quick (fun () ->
        let f x = (x * 7919) lxor (x lsr 3) in
        List.iter
          (fun domains ->
            with_pool domains (fun pool ->
                List.iter
                  (fun n ->
                    let input = Array.init n (fun i -> i) in
                    Alcotest.(check (array int))
                      (Printf.sprintf "%d domains, %d items" domains n)
                      (Array.map f input) (Parallel.map pool f input))
                  [ 0; 1; 7; 100 ]))
          [ 1; 2; 4 ]);
    Alcotest.test_case "map_list preserves order" `Quick (fun () ->
        with_pool 4 (fun pool ->
            let input = List.init 33 string_of_int in
            Alcotest.(check (list string))
              "order" (List.map (fun s -> s ^ "!") input)
              (Parallel.map_list pool (fun s -> s ^ "!") input)));
    Alcotest.test_case "exception in f propagates" `Quick (fun () ->
        with_pool 4 (fun pool ->
            Alcotest.check_raises "raised" (Failure "boom") (fun () ->
                ignore
                  (Parallel.map pool
                     (fun i -> if i = 13 then failwith "boom" else i)
                     (Array.init 40 (fun i -> i))))));
    Alcotest.test_case "nested map runs sequentially, no deadlock" `Quick (fun () ->
        with_pool 4 (fun pool ->
            let out =
              Parallel.map pool
                (fun i ->
                  Array.fold_left ( + ) 0
                    (Parallel.map pool (fun j -> (i * 10) + j) (Array.init 5 (fun j -> j))))
                (Array.init 8 (fun i -> i))
            in
            Alcotest.(check (array int))
              "nested results"
              (Array.init 8 (fun i -> (i * 50) + 10))
              out));
    Alcotest.test_case "shutdown is idempotent, map falls back" `Quick (fun () ->
        let pool = Parallel.create ~domains:3 in
        Parallel.shutdown pool;
        Parallel.shutdown pool;
        Alcotest.(check (array int))
          "post-shutdown map" [| 2; 4 |]
          (Parallel.map pool (fun x -> x * 2) [| 1; 2 |]));
  ]

(* Satellite: a 4-domain hammer over shared state — the per-domain pairing
   cache, atomic telemetry counters, the event ring and a histogram — all
   exercised concurrently, with exact totals checked afterwards. *)
let hammer_tests =
  [
    Alcotest.test_case "4-domain hammer: pair_cached + telemetry" `Quick (fun () ->
        let pr = p () in
        Pairing.warmup pr;
        let reg = Tel.create () in
        let c = Tel.Counter.v reg "hammer.items" in
        let h = Tel.Histogram.v reg "hammer.obs" in
        let ev = Events.create ~capacity:8192 reg in
        let rng = Drbg.create ~seed:"hammer" in
        let pts =
          Array.init 8 (fun _ -> Pairing.hash_to_group pr (Drbg.bytes rng 16))
        in
        let expected =
          Array.map (fun pt -> Pairing.pair pr pt pr.Params.g) pts
        in
        let n = 64 in
        with_pool 4 (fun pool ->
            let out =
              Parallel.map pool
                (fun i ->
                  Tel.Counter.inc c;
                  Tel.Histogram.observe h (float_of_int i);
                  Events.log ev ~detail:(string_of_int i) "hammer.tick";
                  let pt = pts.(i mod 8) in
                  (* hit the per-domain memo twice: miss then hit *)
                  let a = Pairing.pair_cached pr pt pr.Params.g in
                  let b = Pairing.pair_cached pr pt pr.Params.g in
                  Alcotest.(check bool) "memo stable" true (Fp2.equal a b);
                  a)
                (Array.init n (fun i -> i))
            in
            Array.iteri
              (fun i got ->
                Alcotest.(check bool)
                  (Printf.sprintf "pairing %d correct under contention" i)
                  true
                  (Fp2.equal got expected.(i mod 8)))
              out);
        Alcotest.(check int) "counter exact" n (Tel.Counter.value c);
        Alcotest.(check int) "no events lost" n (Events.length ev + Events.dropped ev);
        let snap = Tel.Histogram.snapshot h in
        Alcotest.(check int) "histogram count exact" n snap.Tel.Histogram.count);
  ]

(* Satellite: pool size must not affect results. The same seeded chain
   round is run at 1, 2 and 4 domains; mailbox contents must be
   byte-identical and the event-log narrative identical. *)
let determinism_tests =
  [
    Alcotest.test_case "chain round identical at 1/2/4 domains" `Quick (fun () ->
        let pr = p () in
        Pairing.warmup pr;
        let run domains =
          Parallel.with_default ~domains (fun () ->
              let rng = Drbg.create ~seed:"chain-det" in
              let chain = Chain.create pr ~rng ~chain_length:3 in
              let pks = Chain.begin_round chain in
              let batch =
                Array.init 12 (fun i ->
                    Onion.wrap pr rng ~server_pks:pks
                      (Payload.encode ~mailbox:(i mod 4) (Printf.sprintf "det-%02d" i)))
              in
              Events.clear Events.default;
              let mailboxes, stats =
                Chain.run_round chain ~mode:`AddFriend ~noise_mu:2.0 ~laplace_b:0.0
                  ~num_mailboxes:4
                  ~noise_body:(fun ~mailbox:_ -> "nnnn")
                  batch
              in
              let names =
                List.map (fun e -> e.Events.name) (Events.to_list Events.default)
              in
              (Mailbox.plain_exn mailboxes, stats, names))
        in
        let base_boxes, base_stats, base_names = run 1 in
        Alcotest.(check int) "baseline real_in" 12 base_stats.Chain.real_in;
        List.iter
          (fun domains ->
            let boxes, stats, names = run domains in
            Alcotest.(check bool)
              (Printf.sprintf "mailboxes byte-identical at %d domains" domains)
              true (boxes = base_boxes);
            Alcotest.(check int)
              (Printf.sprintf "stats identical at %d domains" domains)
              base_stats.Chain.real_in stats.Chain.real_in;
            Alcotest.(check (list string))
              (Printf.sprintf "event narrative identical at %d domains" domains)
              base_names names)
          [ 2; 4 ]);
    Alcotest.test_case "with_default restores the previous pool" `Quick (fun () ->
        let before = Parallel.size (Parallel.get ()) in
        Parallel.with_default ~domains:3 (fun () ->
            Alcotest.(check int) "inside" 3 (Parallel.size (Parallel.get ())));
        Alcotest.(check int) "restored" before (Parallel.size (Parallel.get ())));
    Alcotest.test_case "default size comes from ALPENHORN_DOMAINS" `Quick (fun () ->
        let expected =
          match Sys.getenv_opt "ALPENHORN_DOMAINS" with
          | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 1)
          | None -> 1
        in
        Alcotest.(check int) "env parse" expected (Parallel.default_size_from_env ()));
  ]

let suite = map_semantics @ hammer_tests @ determinism_tests
