(* F_p and F_p² arithmetic against bignum reference computations and the
   field axioms. *)

module B = Alpenhorn_bigint.Bigint
module Field = Alpenhorn_pairing.Field
module Fp2 = Alpenhorn_pairing.Fp2
module Drbg = Alpenhorn_crypto.Drbg

let params = lazy (Alpenhorn_pairing.Params.test ())
let fp () = (Lazy.force params).Alpenhorn_pairing.Params.fp

let gen_el =
  QCheck.Gen.map
    (fun seed ->
      let rng = Drbg.create ~seed:(string_of_int seed) in
      Drbg.bigint_below rng (Field.modulus (fp ())))
    QCheck.Gen.(int_range 0 1_000_000)

let arb_el = QCheck.make ~print:B.to_string gen_el

let arb_fp2 =
  QCheck.make
    ~print:(fun (e : Fp2.el) -> B.to_string e.Fp2.re ^ "+" ^ B.to_string e.Fp2.im ^ "i")
    QCheck.Gen.(map2 Fp2.make gen_el gen_el)

let unit_tests =
  [
    Alcotest.test_case "create rejects bad modulus" `Quick (fun () ->
        Alcotest.check_raises "13 mod 12 = 1"
          (Invalid_argument "Field.create: modulus must be 11 mod 12") (fun () ->
            ignore (Field.create (B.of_int 13))));
    Alcotest.test_case "reduce matches rem" `Quick (fun () ->
        let f = fp () in
        let p = Field.modulus f in
        let rng = Drbg.create ~seed:"reduce" in
        for _ = 1 to 50 do
          let x = Drbg.bigint_bits rng (2 * B.numbits p - 2) in
          Alcotest.(check string) "barrett" (B.to_string (B.rem x p)) (B.to_string (Field.reduce f x))
        done);
    Alcotest.test_case "sqrt of squares" `Quick (fun () ->
        let f = fp () in
        let rng = Drbg.create ~seed:"sqrt" in
        for _ = 1 to 20 do
          let x = Drbg.bigint_below rng (Field.modulus f) in
          let sq = Field.sqr f x in
          match Field.sqrt f sq with
          | None -> Alcotest.fail "square had no root"
          | Some r -> Alcotest.(check bool) "root squares back" true (Field.equal (Field.sqr f r) sq)
        done);
    Alcotest.test_case "sqrt rejects non-residues" `Quick (fun () ->
        (* -1 is a non-residue when p ≡ 3 mod 4 *)
        let f = fp () in
        Alcotest.(check bool) "sqrt(-1) = None" true (Field.sqrt f (Field.neg f B.one) = None));
    Alcotest.test_case "cbrt is cube-inverse" `Quick (fun () ->
        let f = fp () in
        let rng = Drbg.create ~seed:"cbrt" in
        for _ = 1 to 20 do
          let x = Drbg.bigint_below rng (Field.modulus f) in
          let cube = Field.mul f (Field.sqr f x) x in
          Alcotest.(check string) "cbrt(x^3) = x" (B.to_string x) (B.to_string (Field.cbrt f cube))
        done);
    Alcotest.test_case "element bytes roundtrip" `Quick (fun () ->
        let f = fp () in
        let rng = Drbg.create ~seed:"fbytes" in
        let x = Drbg.bigint_below rng (Field.modulus f) in
        Alcotest.(check string) "roundtrip" (B.to_string x)
          (B.to_string (Field.of_bytes f (Field.to_bytes f x)));
        Alcotest.check_raises "non-canonical" (Invalid_argument "Field.of_bytes: malformed")
          (fun () -> ignore (Field.of_bytes f (String.make (Field.element_bytes f) '\xff'))));
    Alcotest.test_case "of_bytes_opt is total" `Quick (fun () ->
        let f = fp () in
        let n = Field.element_bytes f in
        (* wrong widths *)
        Alcotest.(check bool) "short" true (Field.of_bytes_opt f (String.make (n - 1) '\x00') = None);
        Alcotest.(check bool) "long" true (Field.of_bytes_opt f (String.make (n + 1) '\x00') = None);
        Alcotest.(check bool) "empty" true (Field.of_bytes_opt f "" = None);
        (* non-canonical: exactly p, and all-ones *)
        Alcotest.(check bool) "p itself" true
          (Field.of_bytes_opt f (B.to_bytes_be ~len:n (Field.modulus f)) = None);
        Alcotest.(check bool) "all ones" true (Field.of_bytes_opt f (String.make n '\xff') = None);
        (* canonical boundary: p - 1 decodes *)
        let pm1 = B.sub (Field.modulus f) B.one in
        (match Field.of_bytes_opt f (B.to_bytes_be ~len:n pm1) with
        | Some v -> Alcotest.(check bool) "p-1 roundtrips" true (Field.equal v pm1)
        | None -> Alcotest.fail "p-1 should decode"));
    Alcotest.test_case "fp2 one and zero" `Quick (fun () ->
        let f = fp () in
        Alcotest.(check bool) "1*1=1" true (Fp2.equal (Fp2.mul f Fp2.one Fp2.one) Fp2.one);
        Alcotest.(check bool) "0+0=0" true (Fp2.is_zero (Fp2.add f Fp2.zero Fp2.zero));
        Alcotest.(check bool) "one in base field" true (Fp2.in_base_field Fp2.one));
    Alcotest.test_case "fp2 i^2 = -1" `Quick (fun () ->
        let f = fp () in
        let i = Fp2.make B.zero B.one in
        let minus_one = Fp2.of_fp (Field.neg f B.one) in
        Alcotest.(check bool) "i*i" true (Fp2.equal (Fp2.mul f i i) minus_one));
    Alcotest.test_case "fp2 conj multiplies to norm" `Quick (fun () ->
        let f = fp () in
        let rng = Drbg.create ~seed:"conj" in
        let a = Fp2.make (Drbg.bigint_below rng (Field.modulus f)) (Drbg.bigint_below rng (Field.modulus f)) in
        let n = Fp2.mul f a (Fp2.conj f a) in
        Alcotest.(check bool) "norm is in F_p" true (Fp2.in_base_field n));
    Alcotest.test_case "fp2 bytes roundtrip" `Quick (fun () ->
        let f = fp () in
        let rng = Drbg.create ~seed:"fp2bytes" in
        let a = Fp2.make (Drbg.bigint_below rng (Field.modulus f)) (Drbg.bigint_below rng (Field.modulus f)) in
        Alcotest.(check bool) "roundtrip" true
          (match Fp2.of_bytes f (Fp2.to_bytes f a) with
           | Some b -> Fp2.equal a b
           | None -> false));
  ]

(* Barrett fast-path boundary audit: reduce switches to Bigint.rem exactly
   when numbits x > 2k; exercise the boundary (2k-1, 2k, 2k+1 bits), zero
   exponents, and non-canonical inverses against the bignum reference. *)
let boundary_tests =
  [
    Alcotest.test_case "reduce at the 2k-bit boundary" `Quick (fun () ->
        let f = fp () in
        let p = Field.modulus f in
        let k = B.numbits p in
        let rng = Drbg.create ~seed:"barrett-boundary" in
        List.iter
          (fun bits ->
            for _ = 1 to 40 do
              (* force the top bit so numbits is exactly [bits] *)
              let x = B.add (Drbg.bigint_bits rng (bits - 1)) (B.shift_left B.one (bits - 1)) in
              Alcotest.(check string)
                (Printf.sprintf "numbits=%d" bits)
                (B.to_string (B.rem x p))
                (B.to_string (Field.reduce f x))
            done)
          [ (2 * k) - 1; 2 * k; (2 * k) + 1 ];
        (* degenerate small inputs *)
        Alcotest.(check string) "reduce 0" "0" (B.to_string (Field.reduce f B.zero));
        Alcotest.(check string) "reduce p" "0" (B.to_string (Field.reduce f p));
        Alcotest.(check string) "reduce (p-1)"
          (B.to_string (B.sub p B.one))
          (B.to_string (Field.reduce f (B.sub p B.one)));
        Alcotest.(check string) "reduce -1 wraps"
          (B.to_string (B.sub p B.one))
          (B.to_string (Field.reduce f (B.neg B.one))));
    Alcotest.test_case "pow with zero exponent" `Quick (fun () ->
        let f = fp () in
        let rng = Drbg.create ~seed:"pow-zero" in
        Alcotest.(check string) "0^0 = 1" "1" (B.to_string (Field.pow f B.zero B.zero));
        for _ = 1 to 10 do
          let a = Drbg.bigint_below rng (Field.modulus f) in
          Alcotest.(check string) "a^0 = 1" "1" (B.to_string (Field.pow f a B.zero))
        done);
    Alcotest.test_case "inv accepts non-canonical input" `Quick (fun () ->
        (* mod_inv reduces its argument first, so a and a+p must agree *)
        let f = fp () in
        let p = Field.modulus f in
        let rng = Drbg.create ~seed:"inv-noncanon" in
        for _ = 1 to 20 do
          let a = Drbg.bigint_below rng p in
          if not (B.is_zero a) then begin
            let i1 = Field.inv f a in
            let i2 = Field.inv f (B.add a p) in
            let i3 = Field.inv f (B.sub a (B.mul p p)) in
            Alcotest.(check string) "inv (a+p)" (B.to_string i1) (B.to_string i2);
            Alcotest.(check string) "inv (a-p²)" (B.to_string i1) (B.to_string i3);
            Alcotest.(check string) "a · a⁻¹ = 1" "1" (B.to_string (Field.mul f a i1))
          end
        done;
        Alcotest.check_raises "inv 0" Division_by_zero (fun () -> ignore (Field.inv f B.zero));
        Alcotest.check_raises "inv p" Division_by_zero (fun () -> ignore (Field.inv f p)));
  ]

let prop name ?(count = 60) arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let property_tests =
  [
    prop "fp add inverse" arb_el (fun a ->
        let f = fp () in
        Field.is_zero (Field.add f a (Field.neg f a)));
    prop "fp mul inverse" arb_el (fun a ->
        let f = fp () in
        QCheck.assume (not (Field.is_zero a));
        Field.equal (Field.mul f a (Field.inv f a)) B.one);
    prop "fp mul distributes" QCheck.(triple arb_el arb_el arb_el) (fun (a, b, c) ->
        let f = fp () in
        Field.equal (Field.mul f a (Field.add f b c)) (Field.add f (Field.mul f a b) (Field.mul f a c)));
    prop "fp pow adds exponents" QCheck.(triple arb_el (QCheck.int_range 0 50) (QCheck.int_range 0 50))
      (fun (a, m, n) ->
        let f = fp () in
        Field.equal
          (Field.mul f (Field.pow f a (B.of_int m)) (Field.pow f a (B.of_int n)))
          (Field.pow f a (B.of_int (m + n))));
    prop "fp2 mul comm" QCheck.(pair arb_fp2 arb_fp2) (fun (a, b) ->
        let f = fp () in
        Fp2.equal (Fp2.mul f a b) (Fp2.mul f b a));
    prop "fp2 mul assoc" QCheck.(triple arb_fp2 arb_fp2 arb_fp2) (fun (a, b, c) ->
        let f = fp () in
        Fp2.equal (Fp2.mul f (Fp2.mul f a b) c) (Fp2.mul f a (Fp2.mul f b c)));
    prop "fp2 sqr matches mul" arb_fp2 (fun a ->
        let f = fp () in
        Fp2.equal (Fp2.sqr f a) (Fp2.mul f a a));
    prop "fp2 inv is inverse" arb_fp2 (fun a ->
        let f = fp () in
        QCheck.assume (not (Fp2.is_zero a));
        Fp2.equal (Fp2.mul f a (Fp2.inv f a)) Fp2.one);
    prop "fp2 distributivity" QCheck.(triple arb_fp2 arb_fp2 arb_fp2) (fun (a, b, c) ->
        let f = fp () in
        Fp2.equal (Fp2.mul f a (Fp2.add f b c)) (Fp2.add f (Fp2.mul f a b) (Fp2.mul f a c)));
    prop "fp2 pow adds exponents" QCheck.(triple arb_fp2 (QCheck.int_range 0 30) (QCheck.int_range 0 30))
      (fun (a, m, n) ->
        let f = fp () in
        Fp2.equal
          (Fp2.mul f (Fp2.pow f a (B.of_int m)) (Fp2.pow f a (B.of_int n)))
          (Fp2.pow f a (B.of_int (m + n))));
  ]

let suite = unit_tests @ boundary_tests @ property_tests
