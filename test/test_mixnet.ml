(* Mixnet: onion layers, payloads, server processing, chain, mailboxes. *)

module Params = Alpenhorn_pairing.Params
module Dh = Alpenhorn_dh.Dh
module Onion = Alpenhorn_mixnet.Onion
module Payload = Alpenhorn_mixnet.Payload
module Server = Alpenhorn_mixnet.Server
module Chain = Alpenhorn_mixnet.Chain
module Mailbox = Alpenhorn_mixnet.Mailbox
module Bloom = Alpenhorn_bloom.Bloom
module Drbg = Alpenhorn_crypto.Drbg

let params = lazy (Params.test ())
let p () = Lazy.force params

let unit_tests =
  [
    Alcotest.test_case "onion wrap/unwrap through three layers" `Quick (fun () ->
        let pr = p () in
        let rng = Drbg.create ~seed:"onion" in
        let keys = List.init 3 (fun _ -> Dh.keygen pr rng) in
        let onion = Onion.wrap pr rng ~server_pks:(List.map snd keys) "the payload" in
        let result =
          List.fold_left
            (fun acc (sk, _) -> Option.bind acc (fun msg -> Onion.unwrap pr ~sk msg))
            (Some onion) keys
        in
        Alcotest.(check (option string)) "restored" (Some "the payload") result);
    Alcotest.test_case "wrong server key fails to unwrap" `Quick (fun () ->
        let pr = p () in
        let rng = Drbg.create ~seed:"onion2" in
        let _, pk = Dh.keygen pr rng in
        let sk2, _ = Dh.keygen pr rng in
        let onion = Onion.wrap pr rng ~server_pks:[ pk ] "payload" in
        Alcotest.(check (option string)) "reject" None (Onion.unwrap pr ~sk:sk2 onion));
    Alcotest.test_case "unwrap order matters" `Quick (fun () ->
        let pr = p () in
        let rng = Drbg.create ~seed:"onion3" in
        let (sk1, pk1) = Dh.keygen pr rng and (sk2, pk2) = Dh.keygen pr rng in
        let onion = Onion.wrap pr rng ~server_pks:[ pk1; pk2 ] "payload" in
        (* second server's key cannot strip the first layer *)
        Alcotest.(check (option string)) "out of order" None (Onion.unwrap pr ~sk:sk2 onion);
        Alcotest.(check (option string)) "in order" (Some "payload")
          (Option.bind (Onion.unwrap pr ~sk:sk1 onion) (fun m -> Onion.unwrap pr ~sk:sk2 m)));
    Alcotest.test_case "layer overhead is exact" `Quick (fun () ->
        let pr = p () in
        let rng = Drbg.create ~seed:"onion4" in
        let keys = List.init 3 (fun _ -> snd (Dh.keygen pr rng)) in
        let body = String.make 100 'b' in
        let onion = Onion.wrap pr rng ~server_pks:keys body in
        Alcotest.(check int) "3 layers" (100 + (3 * Onion.layer_overhead pr)) (String.length onion));
    Alcotest.test_case "payload codec" `Quick (fun () ->
        Alcotest.(check (option (pair int string))) "roundtrip" (Some (7, "body"))
          (Payload.decode (Payload.encode ~mailbox:7 "body"));
        Alcotest.(check (option (pair int string))) "cover id" (Some (Payload.cover, ""))
          (Payload.decode (Payload.encode ~mailbox:Payload.cover ""));
        Alcotest.(check bool) "short input" true (Payload.decode "ab" = None);
        Alcotest.check_raises "negative mailbox" (Invalid_argument "Payload.encode: mailbox")
          (fun () -> ignore (Payload.encode ~mailbox:(-1) "x")));
    Alcotest.test_case "server process unwraps, adds noise, shuffles" `Quick (fun () ->
        let pr = p () in
        let rng = Drbg.create ~seed:"server" in
        let s = Server.create pr ~rng:(Drbg.derive rng "s0") ~position:0 ~chain_length:1 in
        let pk = Server.new_round s in
        let msgs =
          Array.init 20 (fun i ->
              Onion.wrap pr rng ~server_pks:[ pk ]
                (Payload.encode ~mailbox:0 (Printf.sprintf "msg-%02d" i)))
        in
        let out, noise =
          Server.process s ~downstream_pks:[] ~noise_mu:5.0 ~laplace_b:0.0 ~num_mailboxes:2
            ~noise_body:(fun ~mailbox:_ -> "nnnnnn") msgs
        in
        Alcotest.(check int) "noise count: mu per mailbox" 10 noise;
        Alcotest.(check int) "total out" 30 (Array.length out);
        (* all real payloads survive the shuffle *)
        let decoded = Array.to_list out |> List.filter_map Payload.decode |> List.map snd in
        for i = 0 to 19 do
          let m = Printf.sprintf "msg-%02d" i in
          Alcotest.(check bool) m true (List.mem m decoded)
        done);
    Alcotest.test_case "server drops undecryptable input (client DoS)" `Quick (fun () ->
        let pr = p () in
        let rng = Drbg.create ~seed:"server2" in
        let s = Server.create pr ~rng:(Drbg.derive rng "s0") ~position:0 ~chain_length:1 in
        let _ = Server.new_round s in
        let out, _ =
          Server.process s ~downstream_pks:[] ~noise_mu:0.0 ~laplace_b:0.0 ~num_mailboxes:1
            ~noise_body:(fun ~mailbox:_ -> "")
            [| "garbage"; String.make 200 'x' |]
        in
        Alcotest.(check int) "all dropped" 0 (Array.length out));
    Alcotest.test_case "server refuses to process without a round key" `Quick (fun () ->
        let pr = p () in
        let rng = Drbg.create ~seed:"server3" in
        let s = Server.create pr ~rng ~position:0 ~chain_length:1 in
        Alcotest.check_raises "no key" (Invalid_argument "Server.process: no round key (call new_round)")
          (fun () ->
            ignore
              (Server.process s ~downstream_pks:[] ~noise_mu:0.0 ~laplace_b:0.0 ~num_mailboxes:1
                 ~noise_body:(fun ~mailbox:_ -> "")
                 [||]));
        let _ = Server.new_round s in
        Server.end_round s;
        (* after end_round, the key is erased again *)
        Alcotest.(check bool) "key erased" true (Server.round_public s = None));
    Alcotest.test_case "chain delivers payloads to the right mailboxes" `Quick (fun () ->
        let pr = p () in
        let rng = Drbg.create ~seed:"chain" in
        let chain = Chain.create pr ~rng ~chain_length:3 in
        let pks = Chain.begin_round chain in
        let batch =
          Array.init 10 (fun i ->
              Onion.wrap pr rng ~server_pks:pks
                (Payload.encode ~mailbox:(i mod 3) (Printf.sprintf "p%d" i)))
        in
        let mailboxes, stats =
          Chain.run_round chain ~mode:`AddFriend ~noise_mu:1.0 ~laplace_b:0.0 ~num_mailboxes:3
            ~noise_body:(fun ~mailbox:_ -> "noise!") batch
        in
        Alcotest.(check int) "real in" 10 stats.Chain.real_in;
        let buckets = Mailbox.plain_exn mailboxes in
        Alcotest.(check int) "3 mailboxes" 3 (Array.length buckets);
        for i = 0 to 9 do
          Alcotest.(check bool)
            (Printf.sprintf "p%d in mailbox %d" i (i mod 3))
            true
            (List.mem (Printf.sprintf "p%d" i) buckets.(i mod 3))
        done);
    Alcotest.test_case "chain cover traffic is dropped" `Quick (fun () ->
        let pr = p () in
        let rng = Drbg.create ~seed:"chain2" in
        let chain = Chain.create pr ~rng ~chain_length:2 in
        let pks = Chain.begin_round chain in
        let batch =
          Array.init 5 (fun _ ->
              Onion.wrap pr rng ~server_pks:pks (Payload.encode ~mailbox:Payload.cover "cover"))
        in
        let mailboxes, stats =
          Chain.run_round chain ~mode:`AddFriend ~noise_mu:0.0 ~laplace_b:0.0 ~num_mailboxes:1
            ~noise_body:(fun ~mailbox:_ -> "") batch
        in
        Alcotest.(check int) "all cover dropped" 5 stats.Chain.dropped;
        Alcotest.(check int) "mailbox empty" 0 (List.length (Mailbox.plain_exn mailboxes).(0)));
    Alcotest.test_case "dialing mode packs Bloom filters" `Quick (fun () ->
        let pr = p () in
        let rng = Drbg.create ~seed:"chain3" in
        let chain = Chain.create pr ~rng ~chain_length:2 in
        let pks = Chain.begin_round chain in
        let token = Drbg.bytes rng 32 in
        let batch = [| Onion.wrap pr rng ~server_pks:pks (Payload.encode ~mailbox:0 token) |] in
        let mailboxes, _ =
          Chain.run_round chain ~mode:`Dialing ~noise_mu:2.0 ~laplace_b:0.0 ~num_mailboxes:1
            ~noise_body:(fun ~mailbox:_ -> Drbg.bytes rng 32)
            batch
        in
        let filters = Mailbox.filters_exn mailboxes in
        Alcotest.(check bool) "token in filter" true (Bloom.mem filters.(0) token);
        Alcotest.(check bool) "random token not in filter" false
          (Bloom.mem filters.(0) (Drbg.bytes rng 32)));
    Alcotest.test_case "mailbox count policy (§6 balance)" `Quick (fun () ->
        (* paper's own examples: 1M users 5% active -> 4 add-friend mailboxes,
           42 at 10M; dialing: 1 at 1M, 7 at 10M *)
        let check name expected ~real ~mu =
          Alcotest.(check int) name expected
            (Mailbox.num_mailboxes_for ~expected_real:real ~noise_mu:mu ~chain_length:3)
        in
        check "1M addfriend" 4 ~real:50_000 ~mu:4000.0;
        check "10M addfriend" 42 ~real:500_000 ~mu:4000.0;
        check "1M dialing" 1 ~real:50_000 ~mu:25000.0;
        check "10M dialing" 7 ~real:500_000 ~mu:25000.0;
        check "tiny load still 1" 1 ~real:10 ~mu:4000.0);
    Alcotest.test_case "mailbox_of_identity is stable and in range" `Quick (fun () ->
        let m1 = Mailbox.mailbox_of_identity "alice@x" ~num_mailboxes:7 in
        let m2 = Mailbox.mailbox_of_identity "alice@x" ~num_mailboxes:7 in
        Alcotest.(check int) "stable" m1 m2;
        Alcotest.(check bool) "range" true (m1 >= 0 && m1 < 7));
  ]

(* Attacker-controlled bytes entering the mixnet decode path must surface
   as [None], never as an exception: corrupt *valid* encodings in the
   structured ways a malicious client could (non-canonical field element,
   bad point-format byte, point at infinity as a public key, truncation)
   and push them through every decoder a server runs. *)
let corrupt_encoding_tests =
  let module Wire = Alpenhorn_core.Wire in
  let module Bls = Alpenhorn_bls.Bls in
  let no_raise what f =
    match f () with
    | None -> ()
    | Some _ -> Alcotest.failf "%s: corrupt encoding decoded successfully" what
    | exception e -> Alcotest.failf "%s: decoder raised %s" what (Printexc.to_string e)
  in
  [
    Alcotest.test_case "corrupt onion header never raises" `Quick (fun () ->
        let pr = p () in
        let rng = Drbg.create ~seed:"corrupt-onion" in
        let sk, pk = Dh.keygen pr rng in
        let onion = Onion.wrap pr rng ~server_pks:[ pk ] "payload" in
        let ps = Dh.public_size pr in
        let fe = ps - 1 in
        (* each mutation targets the ephemeral-key point prefix *)
        let set_prefix prefix =
          prefix ^ String.sub onion ps (String.length onion - ps)
        in
        let mutations =
          [
            (* x coordinate >= p: non-canonical field element *)
            ("non-canonical x", set_prefix (String.make fe '\xff' ^ "\x00"));
            (* format byte outside {00, 01, ff...} *)
            ("bad parity byte", set_prefix (String.sub onion 0 fe ^ "\x7f"));
            (* all-ff encodes the point at infinity: not a valid DH key *)
            ("infinity as epk", set_prefix (String.make ps '\xff'));
            (* truncated to a partial header *)
            ("truncated", String.sub onion 0 (ps - 1));
            ("empty", "");
          ]
        in
        List.iter (fun (what, m) -> no_raise what (fun () -> Onion.unwrap pr ~sk m)) mutations;
        (* an off-curve x (x³+1 a non-residue) must also be rejected; scan
           for one deterministically so the vector is stable *)
        let fp = pr.Params.fp in
        let module Field = Alpenhorn_pairing.Field in
        let module B = Alpenhorn_bigint.Bigint in
        let off_curve = ref None in
        let x = ref B.two in
        while !off_curve = None do
          let rhs = Field.add fp (Field.mul fp (Field.sqr fp !x) !x) B.one in
          if Field.sqrt fp rhs = None then off_curve := Some !x else x := B.add !x B.one
        done;
        let xb = Field.to_bytes fp (Option.get !off_curve) in
        no_raise "off-curve x" (fun () -> Onion.unwrap pr ~sk (set_prefix (xb ^ "\x00"))));
    Alcotest.test_case "corrupt friend request never raises" `Quick (fun () ->
        let pr = p () in
        let rng = Drbg.create ~seed:"corrupt-req" in
        let bsk, bpk = Bls.keygen pr rng in
        let _, dpk = Dh.keygen pr rng in
        let r =
          {
            Wire.sender_email = "mallory@example.org";
            sender_key = bpk;
            sender_sig = Bls.sign pr bsk "placeholder";
            pkg_sigs = Bls.sign pr bsk "placeholder2";
            dialing_key = dpk;
            dialing_round = 7;
          }
        in
        let enc = Wire.encode_request pr r in
        (match Wire.decode_request pr enc with
        | Some _ -> ()
        | None -> Alcotest.fail "valid request must decode");
        let ps = Dh.public_size pr in
        let fe = ps - 1 in
        let splice off sub =
          String.sub enc 0 off ^ sub ^ String.sub enc (off + String.length sub)
            (String.length enc - off - String.length sub)
        in
        (* corrupt each of the four embedded points in turn *)
        for i = 0 to 3 do
          let off = 1 + Wire.max_email_length + (i * ps) in
          no_raise
            (Printf.sprintf "point %d non-canonical" i)
            (fun () -> Wire.decode_request pr (splice off (String.make fe '\xff' ^ "\x00")));
          no_raise
            (Printf.sprintf "point %d bad parity" i)
            (fun () -> Wire.decode_request pr (splice (off + fe) "\x7f"))
        done;
        (* oversized claimed email length *)
        no_raise "bad email length" (fun () ->
            Wire.decode_request pr (splice 0 (String.make 1 '\xff')));
        (* wrong total size *)
        no_raise "truncated request" (fun () ->
            Wire.decode_request pr (String.sub enc 0 (String.length enc - 1))));
    Alcotest.test_case "corrupt bloom filter never raises" `Quick (fun () ->
        let b = Bloom.create ~expected_elements:16 in
        Bloom.add b "tok";
        let enc = Bloom.to_bytes b in
        let no_raise_b what f =
          match f () with
          | (None | Some _) -> ()
          | exception e -> Alcotest.failf "%s: raised %s" what (Printexc.to_string e)
        in
        (* claimed nbits inconsistent with the actual byte count *)
        no_raise_b "huge nbits" (fun () ->
            Bloom.of_bytes ("\x7f\xff\xff\xff" ^ String.sub enc 4 (String.length enc - 4)));
        no_raise_b "zero nbits" (fun () ->
            Bloom.of_bytes (String.make 4 '\x00' ^ String.sub enc 4 (String.length enc - 4)));
        no_raise_b "truncated" (fun () -> Bloom.of_bytes (String.sub enc 0 11));
        (match Bloom.of_bytes ("\x7f\xff\xff\xff" ^ String.sub enc 4 (String.length enc - 4)) with
        | Some _ -> Alcotest.fail "inconsistent header must be rejected"
        | None -> ()));
  ]

let prop name ?(count = 15) arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let property_tests =
  [
    prop "onion roundtrip for arbitrary bodies and chain lengths"
      QCheck.(pair small_string (int_range 1 4))
      (fun (body, n) ->
        let pr = p () in
        let rng = Drbg.create ~seed:(body ^ string_of_int n) in
        let keys = List.init n (fun _ -> Dh.keygen pr rng) in
        let onion = Onion.wrap pr rng ~server_pks:(List.map snd keys) body in
        List.fold_left
          (fun acc (sk, _) -> Option.bind acc (fun m -> Onion.unwrap pr ~sk m))
          (Some onion) keys
        = Some body);
  ]

let suite = unit_tests @ corrupt_encoding_tests @ property_tests
