(* Blind signatures and the §9 rate-limiting gate. *)

module B = Alpenhorn_bigint.Bigint
module Curve = Alpenhorn_pairing.Curve
module Params = Alpenhorn_pairing.Params
module Bls = Alpenhorn_bls.Bls
module Blind = Alpenhorn_bls.Blind
module Ratelimit = Alpenhorn_mixnet.Ratelimit
module Drbg = Alpenhorn_crypto.Drbg

let params = lazy (Params.test ())
let p () = Lazy.force params

let unit_tests =
  [
    Alcotest.test_case "blind-sign-unblind verifies" `Quick (fun () ->
        let pr = p () in
        let rng = Drbg.create ~seed:"blind1" in
        let sk, pk = Bls.keygen pr rng in
        let blinded, r = Blind.blind pr rng ~msg:"serial-123" in
        let signed = Blind.sign_blinded pr sk blinded in
        let signature = Blind.unblind pr pk ~signed r in
        Alcotest.(check bool) "verifies" true (Blind.verify pr pk ~msg:"serial-123" signature);
        Alcotest.(check bool) "wrong msg" false (Blind.verify pr pk ~msg:"serial-124" signature));
    Alcotest.test_case "signer never sees the message point" `Quick (fun () ->
        let pr = p () in
        let rng = Drbg.create ~seed:"blind2" in
        let blinded1, _ = Blind.blind pr rng ~msg:"same" in
        let blinded2, _ = Blind.blind pr rng ~msg:"same" in
        (* fresh blinding factors make repeated requests unlinkable *)
        Alcotest.(check bool) "different blindings" false (Curve.equal blinded1 blinded2));
    Alcotest.test_case "domain separation from ordinary BLS" `Quick (fun () ->
        let pr = p () in
        let rng = Drbg.create ~seed:"blind3" in
        let sk, pk = Bls.keygen pr rng in
        (* a blind-domain signature must not verify as an ordinary BLS
           signature on the same string, and vice versa *)
        let blinded, r = Blind.blind pr rng ~msg:"m" in
        let blind_sig = Blind.unblind pr pk ~signed:(Blind.sign_blinded pr sk blinded) r in
        Alcotest.(check bool) "not plain-valid" false (Bls.verify pr pk "m" blind_sig);
        let plain_sig = Bls.sign pr sk "m" in
        Alcotest.(check bool) "plain not blind-valid" false (Blind.verify pr pk ~msg:"m" plain_sig));
    Alcotest.test_case "unblinding with the wrong factor fails" `Quick (fun () ->
        let pr = p () in
        let rng = Drbg.create ~seed:"blind4" in
        let sk, pk = Bls.keygen pr rng in
        let blinded, _ = Blind.blind pr rng ~msg:"m" in
        let signed = Blind.sign_blinded pr sk blinded in
        let bad = Blind.unblind pr pk ~signed (B.of_int 12345) in
        Alcotest.(check bool) "invalid" false (Blind.verify pr pk ~msg:"m" bad));
    Alcotest.test_case "gate admits a valid token exactly once" `Quick (fun () ->
        let pr = p () in
        let rng = Drbg.create ~seed:"gate1" in
        let issuer = Ratelimit.create_issuer pr ~rng ~quota_per_day:5 in
        let gate = Ratelimit.create_gate pr ~issuer_key:(Ratelimit.issuer_public issuer) in
        let serial = Ratelimit.fresh_serial rng in
        let blinded, r = Blind.blind pr rng ~msg:serial in
        let signed =
          match Ratelimit.issue issuer ~now:0 ~user:"alice@x" blinded with
          | Ok s -> s
          | Error `Quota_exhausted -> Alcotest.fail "quota"
        in
        let signature = Blind.unblind pr (Ratelimit.issuer_public issuer) ~signed r in
        let token = { Ratelimit.serial; signature } in
        (match Ratelimit.admit gate token with Ok () -> () | Error _ -> Alcotest.fail "rejected");
        Alcotest.(check int) "spent" 1 (Ratelimit.spent_count gate);
        (match Ratelimit.admit gate token with
         | Error `Double_spend -> ()
         | _ -> Alcotest.fail "double spend accepted"));
    Alcotest.test_case "gate rejects forged tokens" `Quick (fun () ->
        let pr = p () in
        let rng = Drbg.create ~seed:"gate2" in
        let issuer = Ratelimit.create_issuer pr ~rng ~quota_per_day:5 in
        let gate = Ratelimit.create_gate pr ~issuer_key:(Ratelimit.issuer_public issuer) in
        let forger_sk, _ = Bls.keygen pr rng in
        let serial = Ratelimit.fresh_serial rng in
        let blinded, r = Blind.blind pr rng ~msg:serial in
        let forged =
          Blind.unblind pr
            (Bls.public_of_secret pr forger_sk)
            ~signed:(Blind.sign_blinded pr forger_sk blinded)
            r
        in
        (match Ratelimit.admit gate { Ratelimit.serial; signature = forged } with
         | Error `Bad_signature -> ()
         | _ -> Alcotest.fail "forged token accepted"));
    Alcotest.test_case "daily quota is enforced and resets" `Quick (fun () ->
        let pr = p () in
        let rng = Drbg.create ~seed:"gate3" in
        let issuer = Ratelimit.create_issuer pr ~rng ~quota_per_day:2 in
        let get now =
          let blinded, _ = Blind.blind pr rng ~msg:(Ratelimit.fresh_serial rng) in
          Ratelimit.issue issuer ~now ~user:"alice@x" blinded
        in
        Alcotest.(check bool) "1st ok" true (Result.is_ok (get 0));
        Alcotest.(check bool) "2nd ok" true (Result.is_ok (get 0));
        (match get 0 with
         | Error `Quota_exhausted -> ()
         | Ok _ -> Alcotest.fail "quota not enforced");
        (* other users are unaffected *)
        let blinded, _ = Blind.blind pr rng ~msg:(Ratelimit.fresh_serial rng) in
        Alcotest.(check bool) "other user ok" true
          (Result.is_ok (Ratelimit.issue issuer ~now:0 ~user:"bob@x" blinded));
        (* next day the quota resets *)
        Alcotest.(check bool) "next day ok" true (Result.is_ok (get 86_400)));
    Alcotest.test_case "token wire format roundtrips" `Quick (fun () ->
        let pr = p () in
        let rng = Drbg.create ~seed:"gate4" in
        let sk, pk = Bls.keygen pr rng in
        let serial = Ratelimit.fresh_serial rng in
        let blinded, r = Blind.blind pr rng ~msg:serial in
        let signature = Blind.unblind pr pk ~signed:(Blind.sign_blinded pr sk blinded) r in
        let token = { Ratelimit.serial; signature } in
        let bytes = Ratelimit.token_bytes pr token in
        Alcotest.(check int) "size" (Ratelimit.token_size pr) (String.length bytes);
        (match Ratelimit.token_of_bytes pr bytes with
         | Some t2 ->
           Alcotest.(check string) "serial" serial t2.Ratelimit.serial;
           Alcotest.(check bool) "sig" true (Curve.equal signature t2.Ratelimit.signature)
         | None -> Alcotest.fail "decode failed");
        Alcotest.(check bool) "garbage rejected" true (Ratelimit.token_of_bytes pr "short" = None));
    Alcotest.test_case "full flow: blind issuance cannot be linked but gates spam" `Quick
      (fun () ->
        let pr = p () in
        let rng = Drbg.create ~seed:"gate5" in
        let issuer = Ratelimit.create_issuer pr ~rng ~quota_per_day:3 in
        let gate = Ratelimit.create_gate pr ~issuer_key:(Ratelimit.issuer_public issuer) in
        (* a legitimate user spends all three tokens *)
        for _ = 1 to 3 do
          let serial = Ratelimit.fresh_serial rng in
          let blinded, r = Blind.blind pr rng ~msg:serial in
          match Ratelimit.issue issuer ~now:0 ~user:"alice@x" blinded with
          | Error `Quota_exhausted -> Alcotest.fail "quota too small"
          | Ok signed ->
            let signature = Blind.unblind pr (Ratelimit.issuer_public issuer) ~signed r in
            (match Ratelimit.admit gate { Ratelimit.serial; signature } with
             | Ok () -> ()
             | Error _ -> Alcotest.fail "legit token rejected")
        done;
        (* the fourth submission has no token to back it *)
        let blinded, _ = Blind.blind pr rng ~msg:(Ratelimit.fresh_serial rng) in
        (match Ratelimit.issue issuer ~now:0 ~user:"alice@x" blinded with
         | Error `Quota_exhausted -> ()
         | Ok _ -> Alcotest.fail "spam not limited");
        Alcotest.(check int) "exactly 3 spent" 3 (Ratelimit.spent_count gate));
  ]

let suite = unit_tests
