(* Simulation substrate: Zipf sampling, statistics, workloads, cost model. *)

module Zipf = Alpenhorn_sim.Zipf
module Stats = Alpenhorn_sim.Stats
module Workload = Alpenhorn_sim.Workload
module Costmodel = Alpenhorn_sim.Costmodel
module Drbg = Alpenhorn_crypto.Drbg

let params = lazy (Alpenhorn_pairing.Params.test ())

let unit_tests =
  [
    Alcotest.test_case "zipf s=2 top-10 share matches the paper" `Quick (fun () ->
        (* §8.4: at s = 2 with 1M users, the top 10 receive 94.2% *)
        let z = Zipf.create ~n:1_000_000 ~s:2.0 in
        let share = Zipf.top_share z 10 in
        Alcotest.(check bool) "94.2% ± 0.5" true (Float.abs (share -. 0.942) < 0.005));
    Alcotest.test_case "zipf s=0 is uniform" `Quick (fun () ->
        let z = Zipf.create ~n:100 ~s:0.0 in
        Alcotest.(check bool) "pmf flat" true (Float.abs (Zipf.pmf z 1 -. Zipf.pmf z 100) < 1e-12);
        Alcotest.(check bool) "top 10 = 10%" true (Float.abs (Zipf.top_share z 10 -. 0.1) < 1e-9));
    Alcotest.test_case "zipf samples in range with correct skew" `Quick (fun () ->
        let z = Zipf.create ~n:1000 ~s:1.5 in
        let rng = Drbg.create ~seed:"zipf" in
        let ones = ref 0 in
        for _ = 1 to 10_000 do
          let v = Zipf.sample z rng in
          Alcotest.(check bool) "range" true (v >= 1 && v <= 1000);
          if v = 1 then incr ones
        done;
        let expected = Zipf.pmf z 1 *. 10_000.0 in
        Alcotest.(check bool) "rank-1 frequency plausible" true
          (Float.abs (float_of_int !ones -. expected) < 5.0 *. sqrt expected));
    Alcotest.test_case "stats basics" `Quick (fun () ->
        let xs = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
        Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min xs);
        Alcotest.(check (float 1e-9)) "max" 5.0 (Stats.max xs);
        Alcotest.(check (float 1e-9)) "mean" 3.0 (Stats.mean xs);
        Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.median xs);
        Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile xs 0.0);
        Alcotest.(check (float 1e-9)) "p100" 5.0 (Stats.percentile xs 100.0);
        Alcotest.check_raises "empty" (Invalid_argument "Stats: empty") (fun () ->
            ignore (Stats.mean [||])));
    Alcotest.test_case "percentile edge cases and stddev" `Quick (fun () ->
        (* single element: any p returns it, no out-of-bounds *)
        let one = [| 42.0 |] in
        List.iter
          (fun p ->
            Alcotest.(check (float 1e-9)) (Printf.sprintf "single p%g" p) 42.0
              (Stats.percentile one p))
          [ 0.0; 50.0; 99.9; 100.0 ];
        (* p = 100 is exactly the max, and high p never overshoots it *)
        let xs = [| 1.0; 2.0 |] in
        Alcotest.(check (float 1e-9)) "p100 = max" 2.0 (Stats.percentile xs 100.0);
        let p999 = Stats.percentile xs 99.9 in
        Alcotest.(check bool) "p99.9 finite, within range" true
          ((not (Float.is_nan p999)) && p999 >= 1.0 && p999 <= 2.0);
        Alcotest.check_raises "NaN p rejected" (Invalid_argument "Stats.percentile") (fun () ->
            ignore (Stats.percentile xs Float.nan));
        Alcotest.check_raises "p > 100 rejected" (Invalid_argument "Stats.percentile") (fun () ->
            ignore (Stats.percentile xs 100.5));
        (* histogram of a single element: one bucket gets the count *)
        let h = Stats.histogram [| 7.0 |] ~buckets:3 in
        Alcotest.(check int) "single-element histogram total" 1
          (Array.fold_left (fun acc (_, c) -> acc + c) 0 h);
        (* population stddev *)
        Alcotest.(check (float 1e-9)) "stddev constant" 0.0 (Stats.stddev [| 5.0; 5.0 |]);
        Alcotest.(check (float 1e-9)) "stddev 1..4" (sqrt 1.25)
          (Stats.stddev [| 1.0; 2.0; 3.0; 4.0 |]));
    Alcotest.test_case "weighted percentile" `Quick (fun () ->
        let pairs = [| (1.0, 1.0); (10.0, 99.0) |] in
        Alcotest.(check (float 1e-9)) "p50 dominated by weight" 10.0
          (Stats.weighted_percentile pairs 50.0));
    Alcotest.test_case "workload conserves request counts" `Quick (fun () ->
        let spec =
          {
            Workload.n_users = 100_000;
            active_fraction = 0.05;
            recipient_skew = 0.0;
            noise_mu = 400.0;
            laplace_b = 0.0;
            chain_length = 3;
          }
        in
        let rng = Drbg.create ~seed:"wl" in
        let load = Workload.generate spec rng in
        Alcotest.(check int) "real total" (Workload.active_count spec)
          (Array.fold_left ( + ) 0 load.Workload.real);
        Alcotest.(check int) "mailboxes" (Workload.num_mailboxes spec)
          (Array.length load.Workload.real);
        (* b = 0 noise is exactly mu per server per mailbox *)
        Array.iter
          (fun n -> Alcotest.(check int) "noise per mailbox" 1200 n)
          load.Workload.noise);
    Alcotest.test_case "skewed workload concentrates but noise floors it" `Quick (fun () ->
        let mk skew =
          let spec =
            {
              Workload.n_users = 1_000_000;
              active_fraction = 0.05;
              recipient_skew = skew;
              noise_mu = 4000.0;
              laplace_b = 0.0;
              chain_length = 3;
            }
          in
          let rng = Drbg.create ~seed:"skew" in
          Workload.generate spec rng
        in
        let uniform = mk 0.0 and skewed = mk 2.0 in
        let spread load =
          let totals = Array.map float_of_int (Workload.total load) in
          Stats.max totals -. Stats.min totals
        in
        Alcotest.(check bool) "skew widens the spread" true (spread skewed > spread uniform));
    Alcotest.test_case "paper calibration hits the headline numbers" `Quick (fun () ->
        let pr = Lazy.force params in
        let pc = Costmodel.protocol_costs pr in
        let m = Costmodel.paper_machine in
        let af =
          Costmodel.addfriend_round m pc ~n_users:10_000_000 ~n_servers:3 ~noise_mu:4000.0
            ~active_fraction:0.05 ()
        in
        (* paper: 152 s; our calibrated model must land within 15% *)
        Alcotest.(check bool) "addfriend 10M/3srv ~152s" true
          (Float.abs (af.Costmodel.total_seconds -. 152.0) /. 152.0 < 0.15);
        let dial =
          Costmodel.dialing_round m pc ~n_users:10_000_000 ~n_servers:3 ~noise_mu:25000.0
            ~active_fraction:0.05 ~friends:1000 ~intents:10 ()
        in
        (* paper: 118 s *)
        Alcotest.(check bool) "dialing 10M/3srv ~118s" true
          (Float.abs (dial.Costmodel.total_seconds -. 118.0) /. 118.0 < 0.15);
        (* paper: 3 KB/s for dialing at 5-minute rounds with 10M users *)
        let bw =
          Costmodel.dialing_bandwidth pc ~n_users:10_000_000 ~n_servers:3 ~noise_mu:25000.0
            ~active_fraction:0.05 ~round_seconds:300.0
        in
        Alcotest.(check bool) "3 KB/s dialing" true (Float.abs ((bw /. 1000.0) -. 3.0) < 0.5));
    Alcotest.test_case "latency grows with users and with servers (Fig 8/9 shape)" `Quick
      (fun () ->
        let pr = Lazy.force params in
        let pc = Costmodel.protocol_costs pr in
        let m = Costmodel.paper_machine in
        let lat users servers =
          (Costmodel.addfriend_round m pc ~n_users:users ~n_servers:servers ~noise_mu:4000.0
             ~active_fraction:0.05 ())
            .Costmodel.total_seconds
        in
        Alcotest.(check bool) "more users slower" true (lat 1_000_000 3 > lat 100_000 3);
        Alcotest.(check bool) "more servers slower" true (lat 1_000_000 10 > lat 1_000_000 3);
        Alcotest.(check bool) "5 between 3 and 10" true
          (lat 1_000_000 5 > lat 1_000_000 3 && lat 1_000_000 5 < lat 1_000_000 10));
    Alcotest.test_case "bandwidth decreases with round duration (Fig 6/7 shape)" `Quick (fun () ->
        let pr = Lazy.force params in
        let pc = Costmodel.protocol_costs pr in
        let bw secs =
          Costmodel.addfriend_bandwidth pc ~n_users:1_000_000 ~n_servers:3 ~noise_mu:4000.0
            ~active_fraction:0.05 ~round_seconds:secs
        in
        Alcotest.(check bool) "monotone" true (bw 3600.0 > bw 7200.0 && bw 7200.0 > bw 86400.0);
        (* mailbox size stays ~constant as users grow (the K policy):
           per-user bandwidth at 1M vs 10M within 25% *)
        let bw10 =
          Costmodel.addfriend_bandwidth pc ~n_users:10_000_000 ~n_servers:3 ~noise_mu:4000.0
            ~active_fraction:0.05 ~round_seconds:3600.0
        in
        Alcotest.(check bool) "mailbox size plateaus" true
          (Float.abs (bw10 -. bw 3600.0) /. bw 3600.0 < 0.25));
    Alcotest.test_case "local calibration measures sane values" `Quick (fun () ->
        let pr = Lazy.force params in
        let m = Costmodel.measure_local pr in
        Alcotest.(check bool) "ibe decrypt positive" true (m.Costmodel.t_ibe_decrypt > 0.0);
        Alcotest.(check bool) "unwrap positive" true (m.Costmodel.t_unwrap > 0.0);
        Alcotest.(check bool) "token under 1ms" true (m.Costmodel.t_token < 1e-3);
        Alcotest.(check bool) "ibe slower than token hash" true
          (m.Costmodel.t_ibe_decrypt > m.Costmodel.t_token));
  ]

let suite = unit_tests

(* second batch: histogram, noisy workloads, cost-model internals *)
let more_tests =
  [
    Alcotest.test_case "histogram covers the range" `Quick (fun () ->
        let xs = Array.init 100 float_of_int in
        let h = Stats.histogram xs ~buckets:10 in
        Alcotest.(check int) "buckets" 10 (Array.length h);
        Alcotest.(check int) "total count" 100 (Array.fold_left (fun a (_, c) -> a + c) 0 h);
        Alcotest.(check (float 1e-9)) "first lower bound" 0.0 (fst h.(0)));
    Alcotest.test_case "histogram of constant data" `Quick (fun () ->
        let h = Stats.histogram [| 5.0; 5.0; 5.0 |] ~buckets:4 in
        Alcotest.(check int) "all in one bucket" 3
          (Array.fold_left (fun a (_, c) -> Stdlib.max a c) 0 h));
    Alcotest.test_case "workload with laplace noise varies but stays plausible" `Quick (fun () ->
        let spec =
          {
            Workload.n_users = 10_000;
            active_fraction = 0.05;
            recipient_skew = 0.0;
            noise_mu = 100.0;
            laplace_b = 10.0;
            chain_length = 3;
          }
        in
        let rng = Drbg.create ~seed:"wl-noise" in
        let load = Workload.generate spec rng in
        Array.iter
          (fun noise ->
            Alcotest.(check bool) "non-negative" true (noise >= 0);
            (* 3 servers x Laplace(100, 10): extremely unlikely outside [150, 450] *)
            Alcotest.(check bool) "plausible range" true (noise > 150 && noise < 450))
          load.Workload.noise);
    Alcotest.test_case "cost-model breakdown fields are coherent" `Quick (fun () ->
        let pr = Lazy.force params in
        let pc = Costmodel.protocol_costs pr in
        let m = Costmodel.paper_machine in
        let b =
          Costmodel.addfriend_round m pc ~n_users:1_000_000 ~n_servers:3 ~noise_mu:4000.0
            ~active_fraction:0.05 ()
        in
        Alcotest.(check int) "one entry per server" 3 (Array.length b.Costmodel.server_seconds);
        let parts =
          Array.fold_left ( +. ) 0.0 b.Costmodel.server_seconds
          +. b.Costmodel.download_seconds +. b.Costmodel.scan_seconds
        in
        Alcotest.(check (float 1e-6)) "total = sum of parts" b.Costmodel.total_seconds parts;
        Alcotest.(check bool) "uplink is small" true (b.Costmodel.uplink_bytes < 1000);
        Alcotest.(check bool) "mailbox override grows latency" true
          ((Costmodel.addfriend_round m pc ~n_users:1_000_000 ~n_servers:3 ~noise_mu:4000.0
              ~active_fraction:0.05 ~mailbox_requests:100_000 ())
             .Costmodel.total_seconds > b.Costmodel.total_seconds));
    Alcotest.test_case "protocol costs reflect the wire formats" `Quick (fun () ->
        let pr = Lazy.force params in
        let pc = Costmodel.protocol_costs pr in
        Alcotest.(check int) "request bytes" (Alpenhorn_core.Wire.request_ciphertext_size pr)
          pc.Costmodel.request_bytes;
        Alcotest.(check int) "token bytes" 32 pc.Costmodel.dial_token_bytes;
        Alcotest.(check int) "bloom bits" 48 pc.Costmodel.bloom_bits_per_token);
  ]

let suite = suite @ more_tests

(* third batch: the DES engine and the message-granularity round replay *)
module Des = Alpenhorn_sim.Des
module Round_sim = Alpenhorn_sim.Round_sim

let des_tests =
  [
    Alcotest.test_case "des executes in time order" `Quick (fun () ->
        let des = Des.create () in
        let log = ref [] in
        Des.schedule des ~at:3.0 (fun () -> log := 3 :: !log);
        Des.schedule des ~at:1.0 (fun () -> log := 1 :: !log);
        Des.schedule des ~at:2.0 (fun () -> log := 2 :: !log);
        Des.run des;
        Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !log);
        Alcotest.(check (float 1e-9)) "clock at last event" 3.0 (Des.now des));
    Alcotest.test_case "simultaneous events run in scheduling order" `Quick (fun () ->
        let des = Des.create () in
        let log = ref [] in
        for i = 1 to 5 do
          Des.schedule des ~at:1.0 (fun () -> log := i :: !log)
        done;
        Des.run des;
        Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !log));
    Alcotest.test_case "events can schedule events" `Quick (fun () ->
        let des = Des.create () in
        let count = ref 0 in
        let rec tick () =
          incr count;
          if !count < 10 then Des.after des ~delay:0.5 tick
        in
        Des.after des ~delay:0.5 tick;
        Des.run des;
        Alcotest.(check int) "ran 10 ticks" 10 !count;
        Alcotest.(check (float 1e-9)) "5 seconds" 5.0 (Des.now des));
    Alcotest.test_case "scheduling in the past is rejected" `Quick (fun () ->
        let des = Des.create () in
        Des.schedule des ~at:2.0 (fun () ->
            Alcotest.check_raises "past" (Invalid_argument "Des.schedule: time in the past")
              (fun () -> Des.schedule des ~at:1.0 ignore));
        Des.run des);
    Alcotest.test_case "heap survives many interleaved events" `Quick (fun () ->
        let des = Des.create () in
        let rng = Drbg.create ~seed:"des-heap" in
        let last = ref 0.0 and count = ref 0 in
        for _ = 1 to 1000 do
          let at = Drbg.float rng *. 100.0 in
          Des.schedule des ~at (fun () ->
              Alcotest.(check bool) "monotone" true (Des.now des >= !last);
              last := Des.now des;
              incr count)
        done;
        Des.run des;
        Alcotest.(check int) "all ran" 1000 !count);
  ]

let round_sim_tests =
  [
    Alcotest.test_case "store-and-forward replay agrees with the analytic model" `Quick
      (fun () ->
        let pr = Lazy.force params in
        let pc = Costmodel.protocol_costs pr in
        let m = Costmodel.paper_machine in
        List.iter
          (fun n_users ->
            let analytic =
              (Costmodel.addfriend_round m pc ~n_users ~n_servers:3 ~noise_mu:4000.0
                 ~active_fraction:0.05 ())
                .Costmodel.total_seconds
            in
            let replay =
              (Round_sim.addfriend m pc ~n_users ~n_servers:3 ~noise_mu:4000.0
                 ~active_fraction:0.05 ~chunks:1)
                .Round_sim.client_done
            in
            Alcotest.(check bool)
              (Printf.sprintf "within 5%% at %d users" n_users)
              true
              (Float.abs (replay -. analytic) /. analytic < 0.05))
          [ 1_000_000; 10_000_000 ]);
    Alcotest.test_case "dialing replay agrees too" `Quick (fun () ->
        let pr = Lazy.force params in
        let pc = Costmodel.protocol_costs pr in
        let m = Costmodel.paper_machine in
        let analytic =
          (Costmodel.dialing_round m pc ~n_users:10_000_000 ~n_servers:3 ~noise_mu:25000.0
             ~active_fraction:0.05 ~friends:1000 ~intents:10 ())
            .Costmodel.total_seconds
        in
        let replay =
          (Round_sim.dialing m pc ~n_users:10_000_000 ~n_servers:3 ~noise_mu:25000.0
             ~active_fraction:0.05 ~friends:1000 ~intents:10 ~chunks:1)
            .Round_sim.client_done
        in
        Alcotest.(check bool) "within 5%" true (Float.abs (replay -. analytic) /. analytic < 0.05));
    Alcotest.test_case "streaming chunks cut latency, more chunks cut more" `Quick (fun () ->
        let pr = Lazy.force params in
        let pc = Costmodel.protocol_costs pr in
        let m = Costmodel.paper_machine in
        let lat chunks =
          (Round_sim.addfriend m pc ~n_users:10_000_000 ~n_servers:3 ~noise_mu:4000.0
             ~active_fraction:0.05 ~chunks)
            .Round_sim.client_done
        in
        let l1 = lat 1 and l4 = lat 4 and l16 = lat 16 in
        Alcotest.(check bool) "4 chunks faster" true (l4 < l1);
        Alcotest.(check bool) "16 chunks faster still" true (l16 < l4);
        (* with many chunks the pipeline approaches the single-server bound:
           at least a 2x win on a 3-server chain *)
        Alcotest.(check bool) "at least 2x" true (l16 *. 2.0 < l1));
    Alcotest.test_case "timeline fields are ordered" `Quick (fun () ->
        let pr = Lazy.force params in
        let pc = Costmodel.protocol_costs pr in
        let m = Costmodel.paper_machine in
        let t =
          Round_sim.addfriend m pc ~n_users:1_000_000 ~n_servers:3 ~noise_mu:4000.0
            ~active_fraction:0.05 ~chunks:4
        in
        Alcotest.(check bool) "servers finish in order" true
          (t.Round_sim.server_done.(0) <= t.Round_sim.server_done.(1)
          && t.Round_sim.server_done.(1) <= t.Round_sim.server_done.(2));
        Alcotest.(check bool) "publish after servers" true
          (t.Round_sim.publish >= t.Round_sim.server_done.(2));
        Alcotest.(check bool) "client last" true (t.Round_sim.client_done > t.Round_sim.publish));
  ]

let suite = suite @ des_tests @ round_sim_tests
