(* The mini Vuvuzela conversation layer (§8.5 integration target). *)

module V = Alpenhorn_vuvuzela.Vuvuzela

let session_key = String.make 32 'k'

let unit_tests =
  [
    Alcotest.test_case "two peers exchange messages" `Quick (fun () ->
        let server = V.create_server () in
        let alice = V.start ~session_key ~role:`Caller in
        let bob = V.start ~session_key ~role:`Callee in
        V.deposit alice server (Some "hi bob");
        V.deposit bob server (Some "hi alice");
        V.exchange server;
        Alcotest.(check (option (option string))) "bob reads alice" (Some (Some "hi bob"))
          (V.retrieve bob server);
        Alcotest.(check (option (option string))) "alice reads bob" (Some (Some "hi alice"))
          (V.retrieve alice server));
    Alcotest.test_case "padding reads as Some None" `Quick (fun () ->
        let server = V.create_server () in
        let alice = V.start ~session_key ~role:`Caller in
        let bob = V.start ~session_key ~role:`Callee in
        V.deposit alice server None;
        V.deposit bob server (Some "real");
        V.exchange server;
        Alcotest.(check (option (option string))) "bob sees padding" (Some None)
          (V.retrieve bob server);
        Alcotest.(check (option (option string))) "alice sees message" (Some (Some "real"))
          (V.retrieve alice server));
    Alcotest.test_case "offline peer yields None" `Quick (fun () ->
        let server = V.create_server () in
        let alice = V.start ~session_key ~role:`Caller in
        let bob = V.start ~session_key ~role:`Callee in
        V.deposit alice server (Some "anyone there?");
        V.exchange server;
        Alcotest.(check (option (option string))) "nobody answered" None (V.retrieve alice server);
        (* rounds stay in sync even through the missed exchange *)
        Alcotest.(check int) "alice round" 1 (V.round alice);
        V.deposit alice server (Some "retry");
        (* bob comes back but his round counter is behind: he must catch up *)
        let _ = V.retrieve bob server in
        V.deposit bob server (Some "back");
        V.exchange server;
        Alcotest.(check (option (option string))) "delivered" (Some (Some "back"))
          (V.retrieve alice server));
    Alcotest.test_case "multi-round conversation" `Quick (fun () ->
        let server = V.create_server () in
        let alice = V.start ~session_key ~role:`Caller in
        let bob = V.start ~session_key ~role:`Callee in
        for i = 1 to 5 do
          V.deposit alice server (Some (Printf.sprintf "a%d" i));
          V.deposit bob server (Some (Printf.sprintf "b%d" i));
          V.exchange server;
          Alcotest.(check (option (option string)))
            (Printf.sprintf "round %d to bob" i)
            (Some (Some (Printf.sprintf "a%d" i)))
            (V.retrieve bob server);
          Alcotest.(check (option (option string)))
            (Printf.sprintf "round %d to alice" i)
            (Some (Some (Printf.sprintf "b%d" i)))
            (V.retrieve alice server)
        done);
    Alcotest.test_case "different session keys never cross" `Quick (fun () ->
        let server = V.create_server () in
        let alice = V.start ~session_key ~role:`Caller in
        let eve = V.start ~session_key:(String.make 32 'e') ~role:`Callee in
        V.deposit alice server (Some "private");
        V.deposit eve server (Some "intercept?");
        V.exchange server;
        Alcotest.(check (option (option string))) "eve gets nothing" None (V.retrieve eve server));
    Alcotest.test_case "double deposit in a round is rejected" `Quick (fun () ->
        let server = V.create_server () in
        let alice = V.start ~session_key ~role:`Caller in
        V.deposit alice server (Some "one");
        Alcotest.check_raises "double" (Invalid_argument "Vuvuzela.deposit: already deposited this round")
          (fun () -> V.deposit alice server (Some "two")));
    Alcotest.test_case "message size limit enforced" `Quick (fun () ->
        let server = V.create_server () in
        let alice = V.start ~session_key ~role:`Caller in
        Alcotest.check_raises "too long" (Invalid_argument "Vuvuzela.deposit: message too long")
          (fun () -> V.deposit alice server (Some (String.make (V.message_size + 1) 'x')));
        (* exactly at the limit is fine *)
        V.deposit alice server (Some (String.make V.message_size 'y')));
    Alcotest.test_case "bad session key length rejected" `Quick (fun () ->
        Alcotest.check_raises "short key"
          (Invalid_argument "Vuvuzela.start: session key must be 32 bytes") (fun () ->
            ignore (V.start ~session_key:"short" ~role:`Caller)));
    Alcotest.test_case "end-to-end: alpenhorn call bootstraps a conversation" `Quick (fun () ->
        (* the §8.5 integration in miniature: the session key produced by a
           real Alpenhorn call keys the conversation *)
        let module Config = Alpenhorn_core.Config in
        let module Client = Alpenhorn_core.Client in
        let module Deployment = Alpenhorn_core.Deployment in
        let d = Deployment.create ~config:Config.test ~seed:"vuv-e2e" in
        let key_at_bob = ref None in
        let bob_callbacks =
          {
            Client.null_callbacks with
            Client.incoming_call =
              (fun ~email:_ ~intent:_ ~session_key -> key_at_bob := Some session_key);
          }
        in
        let key_at_alice = ref None in
        let alice_callbacks =
          {
            Client.null_callbacks with
            Client.call_placed =
              (fun ~email:_ ~intent:_ ~session_key -> key_at_alice := Some session_key);
          }
        in
        let alice = Deployment.new_client d ~email:"alice@x" ~callbacks:alice_callbacks in
        let bob = Deployment.new_client d ~email:"bob@x" ~callbacks:bob_callbacks in
        (match Deployment.register d alice with Ok () -> () | Error _ -> assert false);
        (match Deployment.register d bob with Ok () -> () | Error _ -> assert false);
        Client.add_friend alice ~email:"bob@x" ();
        ignore (Deployment.run_addfriend_round d ());
        ignore (Deployment.run_addfriend_round d ());
        Client.call alice ~email:"bob@x" ~intent:0;
        for _ = 1 to 4 do
          ignore (Deployment.run_dialing_round d ())
        done;
        match (!key_at_alice, !key_at_bob) with
        | Some ka, Some kb ->
          Alcotest.(check string) "keys agree" ka kb;
          let server = V.create_server () in
          let ca = V.start ~session_key:ka ~role:`Caller in
          let cb = V.start ~session_key:kb ~role:`Callee in
          V.deposit ca server (Some "bootstrapped!");
          V.deposit cb server None;
          V.exchange server;
          Alcotest.(check (option (option string))) "delivered" (Some (Some "bootstrapped!"))
            (V.retrieve cb server)
        | _ -> Alcotest.fail "call did not complete");
  ]

let suite = unit_tests
