(* Differential-privacy accounting (§8.1's noise configuration). *)

module Privacy = Alpenhorn_sim.Privacy

let unit_tests =
  [
    Alcotest.test_case "single-action epsilon" `Quick (fun () ->
        Alcotest.(check (float 1e-12)) "1/406" (1.0 /. 406.0)
          (Privacy.epsilon_single ~sensitivity:1.0 ~b:406.0);
        Alcotest.check_raises "bad scale" (Invalid_argument "Privacy.epsilon_single: b") (fun () ->
            ignore (Privacy.epsilon_single ~sensitivity:1.0 ~b:0.0)));
    Alcotest.test_case "basic composition is linear" `Quick (fun () ->
        Alcotest.(check (float 1e-12)) "k*eps" 0.5 (Privacy.compose_basic ~epsilon0:0.05 ~k:10));
    Alcotest.test_case "advanced composition beats basic for many actions" `Quick (fun () ->
        let epsilon0 = 1.0 /. 406.0 in
        let adv = Privacy.compose_advanced ~epsilon0 ~k:900 ~delta:1e-4 in
        let basic = Privacy.compose_basic ~epsilon0 ~k:900 in
        Alcotest.(check bool) "advanced smaller" true (adv < basic);
        Alcotest.(check bool) "advanced positive" true (adv > 0.0));
    Alcotest.test_case "paper budgets hold (ln 2, 1e-4)" `Quick (fun () ->
        (* §8.1: b=406 gives (ln2, 1e-4)-DP for 900 add-friend requests;
           b=2183 gives the same for 26,000 calls *)
        Alcotest.(check bool) "add-friend" true (Privacy.verify Privacy.paper_addfriend);
        Alcotest.(check bool) "dialing" true (Privacy.verify Privacy.paper_dialing));
    Alcotest.test_case "paper budgets are not wildly loose" `Quick (fun () ->
        (* the claimed action counts should be within ~10x of what the
           composition bound allows — the paper picked them to fit *)
        let check (pb : Privacy.protocol_budget) =
          let epsilon0 = Privacy.epsilon_single ~sensitivity:pb.Privacy.sensitivity ~b:pb.Privacy.b in
          let cap = Privacy.max_actions ~epsilon0 ~delta:pb.Privacy.delta ~budget:pb.Privacy.epsilon_total in
          Alcotest.(check bool) "within 10x" true (cap < 10 * pb.Privacy.actions && cap >= pb.Privacy.actions)
        in
        check Privacy.paper_addfriend;
        check Privacy.paper_dialing);
    Alcotest.test_case "max_actions is the inverse of compose_advanced" `Quick (fun () ->
        let epsilon0 = 0.01 and delta = 1e-4 and budget = 0.5 in
        let k = Privacy.max_actions ~epsilon0 ~delta ~budget in
        Alcotest.(check bool) "k fits" true (Privacy.compose_advanced ~epsilon0 ~k ~delta <= budget);
        Alcotest.(check bool) "k+1 does not" true
          (Privacy.compose_advanced ~epsilon0 ~k:(k + 1) ~delta > budget));
    Alcotest.test_case "max_actions edge cases" `Quick (fun () ->
        Alcotest.(check int) "huge epsilon0" 0
          (Privacy.max_actions ~epsilon0:100.0 ~delta:1e-4 ~budget:0.1);
        Alcotest.(check bool) "tiny epsilon0 allows many" true
          (Privacy.max_actions ~epsilon0:1e-6 ~delta:1e-4 ~budget:1.0 > 1_000_000));
    Alcotest.test_case "more noise allows more actions" `Quick (fun () ->
        let cap b =
          Privacy.max_actions
            ~epsilon0:(Privacy.epsilon_single ~sensitivity:1.0 ~b)
            ~delta:1e-4 ~budget:(log 2.0)
        in
        Alcotest.(check bool) "monotone in b" true (cap 2183.0 > cap 406.0 && cap 406.0 > cap 100.0));
  ]

let suite = unit_tests
