(* Wire-protocol tests: the framing codec, framed RPC over real sockets,
   the HTTP listener fed one byte at a time, and a Net_deployment round
   with a mixer server killed mid-round and restarted — every socket in
   this file is a real TCP socket on localhost. *)

module F = Alpenhorn_net.Framing
module Rpc = Alpenhorn_net.Rpc
module Listener = Alpenhorn_net.Listener
module Servers = Alpenhorn_remote.Servers
module Net_deployment = Alpenhorn_remote.Net_deployment
module Config = Alpenhorn_core.Config
module Client = Alpenhorn_core.Client
module Deployment = Alpenhorn_core.Deployment

(* ---------- framing ---------- *)

let frame = Alcotest.testable (fun fmt (f : F.frame) ->
    Format.fprintf fmt "{tag=%d; payload=%S}" f.F.tag f.F.payload)
    (fun a b -> a.F.tag = b.F.tag && String.equal a.F.payload b.F.payload)

let framing_tests =
  [
    Alcotest.test_case "encode/decode roundtrip incl. tag boundaries" `Quick (fun () ->
        let payloads = [ ""; "x"; String.init 1000 (fun i -> Char.chr (i land 0xff)) ] in
        List.iter
          (fun tag ->
            List.iter
              (fun payload ->
                let f = { F.tag; payload } in
                match F.of_string (F.encode f) with
                | Some got -> Alcotest.check frame "roundtrip" f got
                | None -> Alcotest.failf "tag %d payload %d bytes: decode failed" tag
                            (String.length payload))
              payloads)
          [ 0; 7; 255 ];
        (* two concatenated frames decode in sequence at the right offsets *)
        let f1 = { F.tag = 1; payload = "abc" } and f2 = { F.tag = 2; payload = "" } in
        let s = F.encode f1 ^ F.encode f2 in
        (match F.decode s ~pos:0 with
         | F.Frame (got, off) ->
           Alcotest.check frame "first" f1 got;
           (match F.decode s ~pos:off with
            | F.Frame (got2, off2) ->
              Alcotest.check frame "second" f2 got2;
              Alcotest.(check int) "consumed all" (String.length s) off2
            | _ -> Alcotest.fail "second frame did not decode")
         | _ -> Alcotest.fail "first frame did not decode"));
    Alcotest.test_case "every truncation is Need_more, never Corrupt" `Quick (fun () ->
        let full = F.encode { F.tag = 9; payload = "hello" } in
        for i = 0 to String.length full - 1 do
          match F.decode (String.sub full 0 i) ~pos:0 with
          | F.Need_more -> ()
          | F.Frame _ -> Alcotest.failf "prefix %d decoded a frame" i
          | F.Corrupt msg -> Alcotest.failf "prefix %d corrupt: %s" i msg
        done;
        (* a cursor exactly at the end of the buffer just wants more bytes *)
        match F.decode full ~pos:(String.length full) with
        | F.Need_more -> ()
        | _ -> Alcotest.fail "pos at end must be Need_more");
    Alcotest.test_case "zero length, oversize and trailing bytes are rejected" `Quick (fun () ->
        (* len counts the tag byte, so 0 can never frame anything *)
        (match F.decode "\x00\x00\x00\x00" ~pos:0 with
         | F.Corrupt _ -> ()
         | _ -> Alcotest.fail "len=0 must be Corrupt");
        (match F.decode "\xff\xff\xff\xff!!!!" ~pos:0 with
         | F.Corrupt _ -> ()
         | _ -> Alcotest.fail "absurd length must be Corrupt before buffering");
        (* a per-connection ceiling rejects frames the default would allow *)
        let big = F.encode { F.tag = 3; payload = String.make 64 'p' } in
        (match F.decode ~max_payload:16 big ~pos:0 with
         | F.Corrupt _ -> ()
         | _ -> Alcotest.fail "payload above max_payload must be Corrupt");
        Alcotest.check_raises "encode refuses oversize"
          (Invalid_argument "Framing.encode: payload too large")
          (fun () -> ignore (F.encode ~max_payload:16 { F.tag = 3; payload = String.make 64 'p' }));
        (* of_string is exact: no trailing garbage, no empty input *)
        Alcotest.(check bool) "trailing byte" true
          (F.of_string (F.encode { F.tag = 1; payload = "a" } ^ "z") = None);
        Alcotest.(check bool) "empty" true (F.of_string "" = None);
        (match F.decode "abcd" ~pos:9 with
         | F.Corrupt _ -> ()
         | _ -> Alcotest.fail "pos past the buffer must be Corrupt"));
    Alcotest.test_case "Fields: roundtrip, trailing detection, hostile headers" `Quick (fun () ->
        let b = Buffer.create 64 in
        F.Fields.u8 b 200;
        F.Fields.u32 b 123_456_789;
        F.Fields.f64 b 3.5;
        F.Fields.str b "hello";
        F.Fields.strs b [ "a"; ""; "bb" ];
        let c = F.Fields.cursor (Buffer.contents b) in
        Alcotest.(check (option int)) "u8" (Some 200) (F.Fields.get_u8 c);
        Alcotest.(check (option int)) "u32" (Some 123_456_789) (F.Fields.get_u32 c);
        Alcotest.(check bool) "f64" true (F.Fields.get_f64 c = Some 3.5);
        Alcotest.(check (option string)) "str" (Some "hello") (F.Fields.get_str c);
        Alcotest.(check bool) "strs" true (F.Fields.get_strs c = Some [ "a"; ""; "bb" ]);
        Alcotest.(check bool) "finished" true (F.Fields.finished c);
        Alcotest.(check (option int)) "read past end" None (F.Fields.get_u8 c);
        (* trailing byte is visible to the caller *)
        let c2 = F.Fields.cursor "\x05x" in
        Alcotest.(check (option int)) "one byte" (Some 5) (F.Fields.get_u8 c2);
        Alcotest.(check bool) "not finished" false (F.Fields.finished c2);
        (* a list header claiming 2^24 entries backed by 0 bytes must not
           allocate or loop — the count is bounded by the remaining bytes *)
        let hostile = Buffer.create 8 in
        F.Fields.u32 hostile 0xFF_FF_FF;
        Alcotest.(check bool) "hostile strs header" true
          (F.Fields.get_strs (F.Fields.cursor (Buffer.contents hostile)) = None);
        Alcotest.(check bool) "short u32" true
          (F.Fields.get_u32 (F.Fields.cursor "ab") = None);
        Alcotest.(check bool) "str length past end" true
          (F.Fields.get_str (F.Fields.cursor "\x00\x00\x00\x09abc") = None));
  ]

(* ---------- trace envelope (DESIGN.md §14) ---------- *)

module Tel = Alpenhorn_telemetry.Telemetry

let has_prefix p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p

let trace_envelope_tests =
  [
    Alcotest.test_case "envelope roundtrip; absent trace is byte-identical" `Quick (fun () ->
        let frames =
          [
            { F.tag = 0; payload = "" };
            { F.tag = 0x22; payload = String.init 257 (fun i -> Char.chr (i land 0xff)) };
            { F.tag = 255; payload = "x" };
          ]
        in
        (* the acceptance-criteria identity: no trace, no byte changes *)
        List.iter
          (fun f ->
            Alcotest.(check string) "encode_traced ~trace:None = encode" (F.encode f)
              (F.encode_traced f))
          frames;
        let labels = [ ("parent", "3"); ("trace", "7"); ("span", "9"); ("empty", "") ] in
        List.iter
          (fun f ->
            let wire = F.encode_traced ~trace:labels f in
            match F.of_string wire with
            | None -> Alcotest.fail "envelope did not decode as a frame"
            | Some env ->
              Alcotest.(check int) "wrapper tag" F.trace_tag env.F.tag;
              (* the inner bytes are exactly [encode f]: the protocol
                 payload a handler sees cannot depend on tracing *)
              let enc = F.encode f in
              let tail =
                String.sub env.F.payload
                  (String.length env.F.payload - String.length enc)
                  (String.length enc)
              in
              Alcotest.(check string) "inner encoding rides verbatim" enc tail;
              (match F.split_traced env with
              | None -> Alcotest.fail "split_traced rejected a valid envelope"
              | Some (got_labels, inner) ->
                Alcotest.(check bool) "labels" true (got_labels = labels);
                Alcotest.check frame "inner frame" f inner))
          frames);
    Alcotest.test_case "envelope rejects non-envelopes, truncation, nesting" `Quick (fun () ->
        (* a plain frame is not an envelope *)
        Alcotest.(check bool) "plain frame" true
          (F.split_traced { F.tag = 0x22; payload = "data" } = None);
        (* count claims one pair, zero bytes follow *)
        Alcotest.(check bool) "truncated labels" true
          (F.split_traced { F.tag = F.trace_tag; payload = "\x00\x00\x00\x01" } = None);
        (* labels parse but no inner frame follows *)
        Alcotest.(check bool) "no inner frame" true
          (F.split_traced { F.tag = F.trace_tag; payload = "\x00\x00\x00\x00" } = None);
        (* hostile pair count bounded by remaining bytes, no allocation *)
        Alcotest.(check bool) "hostile count" true
          (F.split_traced { F.tag = F.trace_tag; payload = "\x3f\xff\xff\xff" } = None);
        (* an envelope inside an envelope is rejected, not recursed *)
        let nested =
          F.encode_traced ~trace:[ ("trace", "1"); ("span", "2") ]
            { F.tag = F.trace_tag; payload = "inner-envelope" }
        in
        match F.of_string nested with
        | None -> Alcotest.fail "nested envelope did not decode"
        | Some env -> Alcotest.(check bool) "nested rejected" true (F.split_traced env = None));
    Alcotest.test_case "rpc: labels cross the socket, payload identical, one-shot" `Quick
      (fun () ->
        let seen = Atomic.make [] in
        let srv =
          Rpc.Server.create_traced ~port:0 (fun ~trace req ->
              Atomic.set seen (Atomic.get seen @ [ (trace, req.F.payload) ]);
              { F.tag = req.F.tag; payload = "ok" })
        in
        let port = Rpc.Server.port srv in
        let dom = Domain.spawn (fun () -> Rpc.Server.run srv) in
        Fun.protect
          ~finally:(fun () ->
            Rpc.Server.stop srv;
            Domain.join dom)
          (fun () ->
            match Rpc.Client.connect ~port () with
            | Error e -> Alcotest.failf "connect: %s" e
            | Ok c ->
              Fun.protect
                ~finally:(fun () -> Rpc.Client.close c)
                (fun () ->
                  let labels = [ ("trace", "42"); ("span", "7") ] in
                  let f = { F.tag = 0x2a; payload = "protocol-bytes" } in
                  Rpc.Client.set_trace c (Some labels);
                  (match Rpc.Client.call c f with
                  | Ok r -> Alcotest.(check int) "traced reply tag" 0x2a r.F.tag
                  | Error e -> Alcotest.failf "traced call: %s" e);
                  (* set_trace arms exactly one call *)
                  (match Rpc.Client.call c f with
                  | Ok _ -> ()
                  | Error e -> Alcotest.failf "untraced call: %s" e);
                  (match Atomic.get seen with
                  | [ (Some l1, p1); (None, p2) ] ->
                    Alcotest.(check bool) "labels delivered" true (l1 = labels);
                    (* the handler's payload bytes are identical with
                       tracing on and off *)
                    Alcotest.(check string) "traced payload" "protocol-bytes" p1;
                    Alcotest.(check string) "untraced payload" "protocol-bytes" p2
                  | l -> Alcotest.failf "expected 2 handler calls, saw %d" (List.length l));
                  (* satellite: per-tag rpc telemetry on the default registry *)
                  let snap = Tel.Snapshot.take Tel.default in
                  let tag_labels = [ ("tag", "0x2a") ] in
                  (match Tel.Snapshot.find_counter snap ~labels:tag_labels "rpc.call" with
                  | Some n -> Alcotest.(check bool) "rpc.call{tag} counted" true (n >= 2)
                  | None -> Alcotest.fail "rpc.call{tag=0x2a} missing");
                  let hist name =
                    List.exists
                      (fun (n, l, (h : Tel.Histogram.snap)) ->
                        n = name && l = tag_labels && h.Tel.Histogram.count >= 2)
                      snap.Tel.Snapshot.histograms
                  in
                  Alcotest.(check bool) "rpc.request_seconds{tag}" true (hist "rpc.request_seconds");
                  Alcotest.(check bool) "rpc.payload_bytes{tag}" true (hist "rpc.payload_bytes"))));
    Alcotest.test_case "fetch error classes: refused vs accept-then-silent" `Quick (fun () ->
        (* a port nothing listens on: bind, read the port back, close *)
        let probe = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.bind probe (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
        let dead_port =
          match Unix.getsockname probe with Unix.ADDR_INET (_, p) -> p | _ -> assert false
        in
        Unix.close probe;
        (match Listener.fetch ~timeout:2.0 ~port:dead_port "/metrics" with
        | Ok _ -> Alcotest.fail "fetch to a dead port succeeded"
        | Error e -> Alcotest.(check bool) ("refused prefix: " ^ e) true (has_prefix "refused:" e));
        (* a server that accepts (kernel backlog) and then never responds:
           the error must be classed a timeout, not a read failure *)
        let silent = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt silent Unix.SO_REUSEADDR true;
        Unix.bind silent (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
        Unix.listen silent 4;
        let silent_port =
          match Unix.getsockname silent with Unix.ADDR_INET (_, p) -> p | _ -> assert false
        in
        Fun.protect
          ~finally:(fun () -> Unix.close silent)
          (fun () ->
            match Listener.fetch ~timeout:0.4 ~port:silent_port "/metrics" with
            | Ok _ -> Alcotest.fail "fetch to a silent server succeeded"
            | Error e ->
              Alcotest.(check bool) ("timeout prefix: " ^ e) true (has_prefix "timeout:" e)));
  ]

(* ---------- rpc over real sockets ---------- *)

let rpc_tests =
  [
    Alcotest.test_case "echo server: persistent connection, errors as frames" `Quick (fun () ->
        let srv =
          Rpc.Server.create ~port:0 (fun f ->
              if f.F.tag = 0x0f then failwith "boom"
              else { F.tag = f.F.tag; payload = "echo:" ^ f.F.payload })
        in
        let port = Rpc.Server.port srv in
        let dom = Domain.spawn (fun () -> Rpc.Server.run srv) in
        Fun.protect
          ~finally:(fun () ->
            Rpc.Server.stop srv;
            Domain.join dom)
          (fun () ->
            match Rpc.Client.connect ~port () with
            | Error e -> Alcotest.failf "connect: %s" e
            | Ok c ->
              Fun.protect
                ~finally:(fun () -> Rpc.Client.close c)
                (fun () ->
                  (* several calls over the one connection, in order *)
                  (match Rpc.Client.call c { F.tag = 1; payload = "hello" } with
                   | Ok r -> Alcotest.check frame "echo" { F.tag = 1; payload = "echo:hello" } r
                   | Error e -> Alcotest.failf "call 1: %s" e);
                  (match Rpc.Client.call c { F.tag = 2; payload = "" } with
                   | Ok r -> Alcotest.check frame "empty" { F.tag = 2; payload = "echo:" } r
                   | Error e -> Alcotest.failf "call 2: %s" e);
                  let big = String.make 100_000 'q' in
                  (match Rpc.Client.call c { F.tag = 3; payload = big } with
                   | Ok r ->
                     Alcotest.(check int) "big payload" (String.length big + 5)
                       (String.length r.F.payload)
                   | Error e -> Alcotest.failf "call 3: %s" e);
                  (* a raising handler answers with the error frame and the
                     connection survives for the next request *)
                  (match Rpc.Client.call c { F.tag = 0x0f; payload = "" } with
                   | Ok r ->
                     Alcotest.(check int) "error tag" Rpc.error_tag r.F.tag;
                     Alcotest.(check bool) "carries the exception" true
                       (let rec find i =
                          i + 4 <= String.length r.F.payload
                          && (String.sub r.F.payload i 4 = "boom" || find (i + 1))
                        in
                        find 0)
                   | Error e -> Alcotest.failf "error call: %s" e);
                  match Rpc.Client.call c { F.tag = 4; payload = "still here" } with
                  | Ok r ->
                    Alcotest.check frame "after error" { F.tag = 4; payload = "echo:still here" } r
                  | Error e -> Alcotest.failf "call after error: %s" e)));
  ]

(* ---------- listener fed one byte at a time ---------- *)

let listener_tests =
  [
    Alcotest.test_case "byte-at-a-time request still parses (head scan offset)" `Quick (fun () ->
        let l =
          Listener.create ~port:0 (fun req ->
              { Listener.status = 200; content_type = "text/plain"; body = "ok:" ^ req.Listener.path })
        in
        let port = Listener.port l in
        let dom = Domain.spawn (fun () -> Listener.run l) in
        Fun.protect
          ~finally:(fun () ->
            Listener.stop l;
            Domain.join dom)
          (fun () ->
            let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
            Fun.protect
              ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
                Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
                (* drip the request one byte per write: the header-complete
                   scan must pick up where it left off, not give up because
                   no single read contains the blank line *)
                let req = "GET /trickle HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n" in
                String.iter
                  (fun ch ->
                    let n = Unix.write fd (Bytes.make 1 ch) 0 1 in
                    Alcotest.(check int) "wrote one byte" 1 n)
                  req;
                let buf = Buffer.create 256 in
                let chunk = Bytes.create 1024 in
                let rec drain () =
                  match Unix.read fd chunk 0 1024 with
                  | 0 -> ()
                  | n ->
                    Buffer.add_subbytes buf chunk 0 n;
                    drain ()
                  | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
                in
                drain ();
                let resp = Buffer.contents buf in
                Alcotest.(check bool) "status 200" true
                  (String.length resp >= 12 && String.sub resp 0 12 = "HTTP/1.1 200");
                let body_ok =
                  let marker = "\r\n\r\n" in
                  let rec find i =
                    if i + 4 > String.length resp then None
                    else if String.sub resp i 4 = marker then Some (i + 4)
                    else find (i + 1)
                  in
                  match find 0 with
                  | Some body_start ->
                    String.sub resp body_start (String.length resp - body_start) = "ok:/trickle"
                  | None -> false
                in
                Alcotest.(check bool) "body" true body_ok)));
  ]

(* ---------- kill a mixer mid-round, recover, match in-process results ---- *)

type hosted = { srv : Rpc.Server.t; dom : unit Domain.t }

let host handler =
  let srv = Rpc.Server.create ~port:0 handler in
  let dom = Domain.spawn (fun () -> Rpc.Server.run srv) in
  { srv; dom }

let stop_hosted h =
  Rpc.Server.stop h.srv;
  Domain.join h.dom

(* crash mixer 1 on the first attempt of round 1 — of both phases *)
let faults seed =
  {
    Deployment.fv_seed = seed;
    fv_crash_attempts = (fun ~round ~server -> if round = 1 && server = 1 then 1 else 0);
    fv_stall_seconds = (fun ~round:_ ~server:_ -> 0.0);
    fv_client_offline = (fun ~round:_ ~client:_ -> false);
  }

(* the same two-client scenario, against either deployment *)
let scenario ~register ~new_client ~af_round ~dial_round =
  let alice = new_client "alice@x" in
  let bob = new_client "bob@x" in
  register alice;
  register bob;
  Client.add_friend alice ~email:"bob@x" ();
  let s1 = af_round () in
  let s2 = af_round () in
  Client.call alice ~email:"bob@x" ~intent:1;
  (* the keywheel sync point is a couple of dial rounds ahead
     (propose_dialing_round), so run a few — the call rings when the
     wheel reaches the agreed round *)
  let dials = List.init 3 (fun _ -> dial_round ()) in
  (s1, s2, dials)

let recovery_tests =
  [
    Alcotest.test_case "killed mixer: recover over sockets, match in-process" `Quick (fun () ->
        let config = { Config.test with Config.n_pkgs = 1 } in
        let seed = "net-kill" in
        let pkg_hosted =
          host (Servers.Pkg_server.handler (Servers.Pkg_server.create ~config ~seed ~index:0))
        in
        let mixer_at i =
          host (Servers.Mixer_server.handler (Servers.Mixer_server.create ~config ~seed ~position:i))
        in
        let hosted = Array.init config.Config.chain_length (fun i -> ref (mixer_at i)) in
        Fun.protect
          ~finally:(fun () ->
            stop_hosted pkg_hosted;
            Array.iter (fun r -> try stop_hosted !r with _ -> ()) hosted)
          (fun () ->
            let ep h = { Net_deployment.host = "127.0.0.1"; port = Rpc.Server.port h.srv } in
            let mixers =
              Array.init config.Config.chain_length (fun i ->
                  {
                    Net_deployment.ep = ep !(hosted.(i));
                    kill = (fun () -> stop_hosted !(hosted.(i)));
                    restart =
                      (fun () ->
                        hosted.(i) := mixer_at i;
                        ep !(hosted.(i)));
                  })
            in
            let nd = Net_deployment.create ~config ~seed ~pkgs:[| ep pkg_hosted |] ~mixers () in
            Fun.protect
              ~finally:(fun () -> Net_deployment.close nd)
              (fun () ->
                Net_deployment.set_faults nd (Some (faults seed));
                let n1, n2, ndials =
                  scenario
                    ~register:(fun c ->
                      match Net_deployment.register nd c with
                      | Ok () -> ()
                      | Error e -> Alcotest.failf "register: %s" (Alpenhorn_pkg.Pkg.error_to_string e))
                    ~new_client:(fun email ->
                      Net_deployment.new_client nd ~email ~callbacks:Client.null_callbacks)
                    ~af_round:(fun () -> Net_deployment.run_addfriend_round nd ())
                    ~dial_round:(fun () -> Net_deployment.run_dialing_round nd ())
                in
                (* the kill really aborted attempt 1 and recovery really ran *)
                Alcotest.(check int) "af round 1 recovered on attempt 2" 2 n1.Deployment.af_attempts;
                Alcotest.(check int) "af round 2 clean" 1 n2.Deployment.af_attempts;
                Alcotest.(check int) "dial round 1 recovered on attempt 2" 2
                  (List.hd ndials).Deployment.dial_attempts;
                Alcotest.(check bool) "bob accepted alice" true
                  (List.exists
                     (function "bob@x", Client.Friend_request_accepted "alice@x" -> true | _ -> false)
                     n1.Deployment.events);
                Alcotest.(check bool) "alice confirmed" true
                  (List.exists
                     (function "alice@x", Client.Friend_confirmed "bob@x" -> true | _ -> false)
                     n2.Deployment.events);
                Alcotest.(check bool) "bob rang" true
                  (List.exists
                     (fun d ->
                       List.exists
                         (function
                           | "bob@x", Client.Incoming_call { peer = "alice@x"; intent = 1; _ } ->
                             true
                           | _ -> false)
                         d.Deployment.calls)
                     ndials);
                (* byte-identical protocol results: replay the scenario
                   in-process under the same seed and fault schedule *)
                let ip = Deployment.create ~config ~seed in
                Deployment.set_faults ip (Some (faults seed));
                let i1, i2, idials =
                  scenario
                    ~register:(fun c ->
                      match Deployment.register ip c with
                      | Ok () -> ()
                      | Error _ -> Alcotest.fail "in-process register")
                    ~new_client:(fun email ->
                      Deployment.new_client ip ~email ~callbacks:Client.null_callbacks)
                    ~af_round:(fun () -> Deployment.run_addfriend_round ip ())
                    ~dial_round:(fun () -> Deployment.run_dialing_round ip ())
                in
                Alcotest.(check bool) "af round 1 events identical" true
                  (n1.Deployment.events = i1.Deployment.events);
                Alcotest.(check bool) "af round 2 events identical" true
                  (n2.Deployment.events = i2.Deployment.events);
                Alcotest.(check bool) "dial events identical (incl. session keys)" true
                  (List.map (fun d -> d.Deployment.calls) ndials
                  = List.map (fun d -> d.Deployment.calls) idials);
                Alcotest.(check int) "same af retries" i1.Deployment.af_attempts
                  n1.Deployment.af_attempts;
                Alcotest.(check (list int)) "same dial retries"
                  (List.map (fun d -> d.Deployment.dial_attempts) idials)
                  (List.map (fun d -> d.Deployment.dial_attempts) ndials))));
  ]

let suite = framing_tests @ rpc_tests @ listener_tests @ recovery_tests
