(* Group laws and serialization for the supersingular curve. *)

module B = Alpenhorn_bigint.Bigint
module Curve = Alpenhorn_pairing.Curve
module Field = Alpenhorn_pairing.Field
module Params = Alpenhorn_pairing.Params
module Pairing = Alpenhorn_pairing.Pairing
module Drbg = Alpenhorn_crypto.Drbg

let params = lazy (Params.test ())
let p () = Lazy.force params
let fp () = (p ()).Params.fp

(* random G1 elements as scalar multiples of the generator *)
let gen_point =
  QCheck.Gen.map
    (fun seed ->
      let pr = p () in
      let rng = Drbg.create ~seed:(string_of_int seed) in
      Curve.mul pr.Params.fp (Drbg.bigint_below rng pr.Params.q) pr.Params.g)
    QCheck.Gen.(int_range 0 1_000_000)

let print_point pt =
  match pt with
  | Curve.Inf -> "Inf"
  | Curve.Affine { x; y } -> Printf.sprintf "(%s, %s)" (B.to_hex x) (B.to_hex y)

let arb_point = QCheck.make ~print:print_point gen_point

let unit_tests =
  [
    Alcotest.test_case "generator on curve with order q" `Quick (fun () ->
        let pr = p () in
        Alcotest.(check bool) "on curve" true (Curve.is_on_curve pr.Params.fp pr.Params.g);
        Alcotest.(check bool) "q*g = O" true
          (Curve.equal (Curve.mul pr.Params.fp pr.Params.q pr.Params.g) Curve.Inf);
        Alcotest.(check bool) "g <> O" false (Curve.equal pr.Params.g Curve.Inf));
    Alcotest.test_case "identity laws" `Quick (fun () ->
        let pr = p () in
        let g = pr.Params.g and f = pr.Params.fp in
        Alcotest.(check bool) "g + O = g" true (Curve.equal (Curve.add f g Curve.Inf) g);
        Alcotest.(check bool) "O + g = g" true (Curve.equal (Curve.add f Curve.Inf g) g);
        Alcotest.(check bool) "g + (-g) = O" true (Curve.equal (Curve.add f g (Curve.neg f g)) Curve.Inf);
        Alcotest.(check bool) "0*g = O" true (Curve.equal (Curve.mul f B.zero g) Curve.Inf);
        Alcotest.(check bool) "1*g = g" true (Curve.equal (Curve.mul f B.one g) g));
    Alcotest.test_case "double equals add to self" `Quick (fun () ->
        let pr = p () in
        let f = pr.Params.fp and g = pr.Params.g in
        Alcotest.(check bool) "2g" true (Curve.equal (Curve.double f g) (Curve.add f g g));
        Alcotest.(check bool) "2g = mul 2" true
          (Curve.equal (Curve.double f g) (Curve.mul f B.two g)));
    Alcotest.test_case "make validates curve membership" `Quick (fun () ->
        let f = fp () in
        Alcotest.check_raises "off-curve" (Invalid_argument "Curve.make: not on curve") (fun () ->
            ignore (Curve.make f ~x:(B.of_int 12345) ~y:(B.of_int 1))));
    Alcotest.test_case "order-2 point doubles to infinity" `Quick (fun () ->
        (* (-1, 0) is on y² = x³ + 1 and has order 2 *)
        let f = fp () in
        let pt = Curve.make f ~x:(Field.neg f B.one) ~y:B.zero in
        Alcotest.(check bool) "2*(-1,0) = O" true (Curve.equal (Curve.double f pt) Curve.Inf));
    Alcotest.test_case "compress/decompress golden cases" `Quick (fun () ->
        let pr = p () in
        let f = pr.Params.fp in
        (* infinity encodes as all-0xff *)
        let inf_bytes = Curve.to_bytes f Curve.Inf in
        Alcotest.(check bool) "inf roundtrip" true (Curve.of_bytes f inf_bytes = Some Curve.Inf);
        (* malformed length and parity byte *)
        Alcotest.(check bool) "short" true (Curve.of_bytes f "xx" = None);
        let bad = Bytes.of_string (Curve.to_bytes f pr.Params.g) in
        Bytes.set bad (Bytes.length bad - 1) '\x07';
        Alcotest.(check bool) "bad parity byte" true (Curve.of_bytes f (Bytes.to_string bad) = None));
  ]

let prop name ?(count = 40) arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let property_tests =
  [
    prop "closure" QCheck.(pair arb_point arb_point) (fun (a, b) ->
        Curve.is_on_curve (fp ()) (Curve.add (fp ()) a b));
    prop "commutativity" QCheck.(pair arb_point arb_point) (fun (a, b) ->
        let f = fp () in
        Curve.equal (Curve.add f a b) (Curve.add f b a));
    prop "associativity" QCheck.(triple arb_point arb_point arb_point) (fun (a, b, c) ->
        let f = fp () in
        Curve.equal (Curve.add f (Curve.add f a b) c) (Curve.add f a (Curve.add f b c)));
    prop "scalar mul linearity" QCheck.(pair (int_range 0 1000) (int_range 0 1000)) (fun (m, n) ->
        let pr = p () in
        let f = pr.Params.fp and g = pr.Params.g in
        Curve.equal
          (Curve.add f (Curve.mul f (B.of_int m) g) (Curve.mul f (B.of_int n) g))
          (Curve.mul f (B.of_int (m + n)) g));
    prop "scalar mul composes" QCheck.(pair (int_range 0 200) (int_range 0 200)) (fun (m, n) ->
        let pr = p () in
        let f = pr.Params.fp and g = pr.Params.g in
        Curve.equal
          (Curve.mul f (B.of_int m) (Curve.mul f (B.of_int n) g))
          (Curve.mul f (B.of_int (m * n)) g));
    prop "compression roundtrip" arb_point (fun pt ->
        let f = fp () in
        Curve.of_bytes f (Curve.to_bytes f pt) = Some pt);
    prop "neg negates" arb_point (fun pt ->
        let f = fp () in
        Curve.equal (Curve.add f pt (Curve.neg f pt)) Curve.Inf);
  ]

let suite = unit_tests @ property_tests

(* Jacobian scalar multiplication vs the affine reference ladder. *)
let jacobian_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"jacobian mul matches affine ladder" ~count:40
         QCheck.(pair (int_range 0 100_000) (int_range 0 1_000_000))
         (fun (k, seed) ->
           let pr = p () in
           let rng = Drbg.create ~seed:(string_of_int seed) in
           let pt = Curve.mul pr.Params.fp (Drbg.bigint_below rng pr.Params.q) pr.Params.g in
           Curve.equal
             (Curve.mul pr.Params.fp (B.of_int k) pt)
             (Curve.mul_affine pr.Params.fp (B.of_int k) pt)));
    Alcotest.test_case "jacobian edge cases" `Quick (fun () ->
        let pr = p () in
        let f = pr.Params.fp and g = pr.Params.g in
        Alcotest.(check bool) "0*g" true (Curve.equal (Curve.mul f B.zero g) Curve.Inf);
        Alcotest.(check bool) "k*O" true (Curve.equal (Curve.mul f (B.of_int 7) Curve.Inf) Curve.Inf);
        Alcotest.(check bool) "q*g" true (Curve.equal (Curve.mul f pr.Params.q g) Curve.Inf);
        (* through an order-2 point: doubling must hit infinity cleanly *)
        let two_torsion = Curve.make f ~x:(Alpenhorn_pairing.Field.neg f B.one) ~y:B.zero in
        Alcotest.(check bool) "2*(order-2)" true
          (Curve.equal (Curve.mul f B.two two_torsion) Curve.Inf);
        Alcotest.(check bool) "3*(order-2) = itself" true
          (Curve.equal (Curve.mul f (B.of_int 3) two_torsion) two_torsion));
  ]

let suite = suite @ jacobian_tests
