(* Million-user round machinery at test scale (DESIGN.md §15): the
   synthetic Scale driver's invariants, the bounded Stream_writer, the
   pool's chunked map_range, and the sharded dialing deployment's
   equivalence with the per-mailbox one. *)

module Scale = Alpenhorn_sim.Scale
module Stream_writer = Alpenhorn_mixnet.Stream_writer
module Parallel = Alpenhorn_parallel.Parallel
module Config = Alpenhorn_core.Config
module Client = Alpenhorn_core.Client
module Deployment = Alpenhorn_core.Deployment
module Pkg = Alpenhorn_pkg.Pkg

let writer_tests =
  [
    Alcotest.test_case "writer never buffers past its capacity" `Quick (fun () ->
        let sink, total = Stream_writer.counting_sink () in
        let w = Stream_writer.create ~capacity:64 sink in
        for i = 0 to 99 do
          Stream_writer.write w (String.make (1 + (i * 13 mod 150)) 'x')
        done;
        Stream_writer.flush w;
        Alcotest.(check bool) "peak <= capacity" true (Stream_writer.peak_buffered w <= 64);
        Alcotest.(check int) "sink saw every byte" (Stream_writer.written w) (total ()));
    Alcotest.test_case "record framing round-trips through the sink" `Quick (fun () ->
        let buf = Buffer.create 256 in
        let w = Stream_writer.create ~capacity:16 (Stream_writer.buffer_sink buf) in
        let records = [ ""; "a"; String.make 100 'b'; "end" ] in
        List.iter (Stream_writer.write_record w) records;
        Stream_writer.flush w;
        let got, ok = Stream_writer.fold_records (Buffer.contents buf) (fun acc r -> r :: acc) [] in
        Alcotest.(check bool) "valid framing" true ok;
        Alcotest.(check (list string)) "same records in order" records (List.rev got));
    Alcotest.test_case "truncated blob is reported, not crashed on" `Quick (fun () ->
        let buf = Buffer.create 64 in
        let w = Stream_writer.create (Stream_writer.buffer_sink buf) in
        Stream_writer.write_record w "whole record";
        Stream_writer.flush w;
        let blob = Buffer.contents buf in
        let truncated = String.sub blob 0 (String.length blob - 3) in
        let seen = ref 0 in
        let ok = Stream_writer.iter_records truncated (fun _ -> incr seen) in
        Alcotest.(check bool) "invalid" false ok;
        Alcotest.(check int) "no partial record delivered" 0 !seen);
  ]

let parallel_tests =
  [
    Alcotest.test_case "map_range covers every index exactly once" `Quick (fun () ->
        Parallel.with_default ~domains:4 (fun () ->
            let pool = Parallel.get () in
            let out = Parallel.map_range pool (fun i -> i * i) 1000 in
            Alcotest.(check int) "length" 1000 (Array.length out);
            Array.iteri (fun i v -> Alcotest.(check int) "value" (i * i) v) out));
    Alcotest.test_case "map_range of zero width is empty" `Quick (fun () ->
        let pool = Parallel.get () in
        Alcotest.(check int) "empty" 0 (Array.length (Parallel.map_range pool (fun i -> i) 0)));
  ]

let scale_tests =
  [
    Alcotest.test_case "small synthetic round stays within budget, no false negatives" `Quick
      (fun () ->
        let r = Scale.run ~seed:"t1" ~clients:5000 ~shards:4 ~noise_per_mailbox:500
            ~scan_sample:512 () in
        Alcotest.(check int) "clients" 5000 r.Scale.clients;
        Alcotest.(check int) "shards" 4 r.Scale.shards;
        Alcotest.(check bool) "mailboxes >= shards" true (r.Scale.num_mailboxes >= r.Scale.shards);
        Alcotest.(check int) "tokens = real + noise" r.Scale.tokens
          (r.Scale.active + r.Scale.noise);
        Alcotest.(check bool) "within memory budget" true (Scale.within_budget r);
        Alcotest.(check int) "every dialed scanner finds its token" r.Scale.scan_dialed
          r.Scale.scan_hits;
        Alcotest.(check bool) "writer bounded" true
          (r.Scale.writer_peak_bytes <= Stream_writer.default_capacity);
        Alcotest.(check bool) "download is one shard, not the round" true
          (r.Scale.bytes_per_client < r.Scale.total_filter_bytes
          || r.Scale.shards = 1));
    Alcotest.test_case "deterministic for a fixed seed" `Quick (fun () ->
        let a = Scale.run ~seed:"t2" ~clients:3000 ~shards:3 ~noise_per_mailbox:300
            ~scan_sample:256 () in
        let b = Scale.run ~seed:"t2" ~clients:3000 ~shards:3 ~noise_per_mailbox:300
            ~scan_sample:256 () in
        Alcotest.(check int) "tokens" a.Scale.tokens b.Scale.tokens;
        Alcotest.(check int) "bytes/client" a.Scale.bytes_per_client b.Scale.bytes_per_client;
        Alcotest.(check int) "total bytes" a.Scale.total_filter_bytes b.Scale.total_filter_bytes;
        Alcotest.(check int) "scan hits" a.Scale.scan_hits b.Scale.scan_hits;
        Alcotest.(check int) "scan dialed" a.Scale.scan_dialed b.Scale.scan_dialed;
        Alcotest.(check int) "false positives" a.Scale.scan_false_positives
          b.Scale.scan_false_positives);
    Alcotest.test_case "budget is affine in the client count" `Quick (fun () ->
        Alcotest.(check int) "formula"
          (Scale.budget_slack_words + (Scale.budget_per_client_words * 1_000_000))
          (Scale.budget_words ~clients:1_000_000);
        Alcotest.check_raises "zero clients" (Invalid_argument "Scale.run: clients") (fun () ->
            ignore (Scale.run ~clients:0 ())));
  ]

(* The sharded dialing deployment must deliver exactly the calls the
   per-mailbox one does: same config, seed and dial pattern, only
   [dial_shards] differs. *)
let deployment_tests =
  let setup ~config ~seed =
    let d = Deployment.create ~config ~seed in
    let clients =
      List.map
        (fun email -> Deployment.new_client d ~email ~callbacks:Client.null_callbacks)
        [ "alice@x"; "bob@x"; "carol@x"; "dave@x" ]
    in
    List.iter
      (fun c ->
        match Deployment.register d c with
        | Ok () -> ()
        | Error e -> Alcotest.failf "register: %s" (Pkg.error_to_string e))
      clients;
    (d, clients)
  in
  let befriend d a b =
    Client.add_friend a ~email:(Client.email b) ();
    for _ = 1 to 2 do
      ignore (Deployment.run_addfriend_round d ())
    done;
    Alcotest.(check bool) "befriended" true (Client.is_friend a ~email:(Client.email b))
  in
  let dial_calls ~config ~seed =
    let d, clients = setup ~config ~seed in
    let alice = List.nth clients 0
    and bob = List.nth clients 1
    and carol = List.nth clients 2 in
    befriend d alice bob;
    befriend d carol alice;
    Client.call alice ~email:"bob@x" ~intent:1;
    Client.call carol ~email:"alice@x" ~intent:2;
    let stats = List.init 2 (fun _ -> Deployment.run_dialing_round d ()) in
    let calls = List.concat_map (fun s -> s.Deployment.calls) stats in
    (List.sort compare calls, List.nth stats 1)
  in
  [
    Alcotest.test_case "sharded dialing delivers the same calls as per-mailbox" `Quick (fun () ->
        let calls0, s0 = dial_calls ~config:Config.test ~seed:"shdep" in
        let calls3, s3 =
          dial_calls ~config:{ Config.test with dial_shards = 3 } ~seed:"shdep"
        in
        Alcotest.(check int) "both delivered two calls" 2 (List.length calls0);
        Alcotest.(check bool) "same call events" true (calls0 = calls3);
        Alcotest.(check int) "same submissions" s0.Deployment.tokens_in s3.Deployment.tokens_in;
        Alcotest.(check int) "one download per shard" 3
          (Array.length s3.Deployment.filter_bytes));
    Alcotest.test_case "offline client catches up from the sharded archive" `Quick (fun () ->
        let config = { Config.test with dial_shards = 2 } in
        let d, clients = setup ~config ~seed:"shcu" in
        let alice = List.nth clients 0 and bob = List.nth clients 1 in
        befriend d alice bob;
        Client.call alice ~email:"bob@x" ~intent:3;
        for _ = 1 to 3 do
          ignore (Deployment.run_dialing_round d ~participants:[ alice ] ())
        done;
        let events = Deployment.catch_up_client d bob in
        Alcotest.(check bool) "archived shard replayed the call" true
          (List.exists
             (function
               | Client.Incoming_call { peer = "alice@x"; intent = 3; _ } -> true
               | _ -> false)
             events));
  ]

let suite = writer_tests @ parallel_tests @ scale_tests @ deployment_tests
