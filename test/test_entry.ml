(* The entry server: round lifecycle, batching, and the token gate. *)

module Params = Alpenhorn_pairing.Params
module Bls = Alpenhorn_bls.Bls
module Blind = Alpenhorn_bls.Blind
module Ratelimit = Alpenhorn_mixnet.Ratelimit
module Entry = Alpenhorn_core.Entry
module Drbg = Alpenhorn_crypto.Drbg

let params = lazy (Params.test ())
let p () = Lazy.force params

let announcement round =
  {
    Entry.round;
    mode = `Dialing;
    server_pks = [];
    mpk_agg = None;
    num_mailboxes = 1;
  }

let make_token pr rng issuer =
  let serial = Ratelimit.fresh_serial rng in
  let blinded, r = Blind.blind pr rng ~msg:serial in
  match Ratelimit.issue issuer ~now:0 ~user:"alice@x" blinded with
  | Error `Quota_exhausted -> Alcotest.fail "quota"
  | Ok signed ->
    let signature = Blind.unblind pr (Ratelimit.issuer_public issuer) ~signed r in
    { Ratelimit.serial; signature }

let unit_tests =
  [
    Alcotest.test_case "round lifecycle and batching order" `Quick (fun () ->
        let e = Entry.create (p ()) () in
        Alcotest.(check bool) "no tokens required" false (Entry.requires_tokens e);
        Alcotest.(check bool) "no round" true (Entry.current e = None);
        (match Entry.submit e "early" with
         | Error `No_round -> ()
         | _ -> Alcotest.fail "accepted before round");
        Entry.open_round e (announcement 1);
        List.iter
          (fun s -> match Entry.submit e s with Ok () -> () | Error _ -> Alcotest.fail "reject")
          [ "a"; "b"; "c" ];
        Alcotest.(check (array string)) "batch in order" [| "a"; "b"; "c" |] (Entry.close_round e);
        Alcotest.(check bool) "closed" true (Entry.current e = None));
    Alcotest.test_case "cannot open twice or close unopened" `Quick (fun () ->
        let e = Entry.create (p ()) () in
        Entry.open_round e (announcement 1);
        Alcotest.check_raises "double open" (Invalid_argument "Entry.open_round: round already open")
          (fun () -> Entry.open_round e (announcement 2));
        ignore (Entry.close_round e);
        Alcotest.check_raises "close unopened" (Invalid_argument "Entry.close_round: no open round")
          (fun () -> ignore (Entry.close_round e)));
    Alcotest.test_case "token gate admits valid tokens once" `Quick (fun () ->
        let pr = p () in
        let rng = Drbg.create ~seed:"entry1" in
        let issuer = Ratelimit.create_issuer pr ~rng ~quota_per_day:10 in
        let e = Entry.create pr ~token_issuer_key:(Ratelimit.issuer_public issuer) () in
        Alcotest.(check bool) "tokens required" true (Entry.requires_tokens e);
        Entry.open_round e (announcement 1);
        let token = make_token pr rng issuer in
        (match Entry.submit e ~token "real" with Ok () -> () | Error _ -> Alcotest.fail "rejected");
        (* replaying the same token is refused *)
        (match Entry.submit e ~token "replay" with
         | Error `Bad_token -> ()
         | _ -> Alcotest.fail "replay accepted");
        (* and a tokenless submission too *)
        (match Entry.submit e "bare" with
         | Error `Bad_token -> ()
         | _ -> Alcotest.fail "tokenless accepted");
        Alcotest.(check (array string)) "only the real one" [| "real" |] (Entry.close_round e);
        Alcotest.(check int) "rejections counted" 2 (Entry.submissions_rejected e));
    Alcotest.test_case "forged tokens never pass the gate" `Quick (fun () ->
        let pr = p () in
        let rng = Drbg.create ~seed:"entry2" in
        let issuer = Ratelimit.create_issuer pr ~rng ~quota_per_day:10 in
        let e = Entry.create pr ~token_issuer_key:(Ratelimit.issuer_public issuer) () in
        Entry.open_round e (announcement 1);
        (* sign with a key that is not the issuer's *)
        let rogue_sk, rogue_pk = Bls.keygen pr rng in
        let serial = Ratelimit.fresh_serial rng in
        let blinded, r = Blind.blind pr rng ~msg:serial in
        let signature = Blind.unblind pr rogue_pk ~signed:(Blind.sign_blinded pr rogue_sk blinded) r in
        (match Entry.submit e ~token:{ Ratelimit.serial; signature } "spam" with
         | Error `Bad_token -> ()
         | _ -> Alcotest.fail "forged token accepted");
        Alcotest.(check (array string)) "empty batch" [||] (Entry.close_round e));
    Alcotest.test_case "a flood without tokens cannot grow the batch" `Quick (fun () ->
        (* the §9 scenario: a swarm sends real-looking traffic every round *)
        let pr = p () in
        let rng = Drbg.create ~seed:"entry3" in
        let issuer = Ratelimit.create_issuer pr ~rng ~quota_per_day:2 in
        let e = Entry.create pr ~token_issuer_key:(Ratelimit.issuer_public issuer) () in
        Entry.open_round e (announcement 1);
        for _ = 1 to 100 do
          ignore (Entry.submit e "flood")
        done;
        (* the legitimate user still gets their two submissions through *)
        for _ = 1 to 2 do
          match Entry.submit e ~token:(make_token pr rng issuer) "legit" with
          | Ok () -> ()
          | Error _ -> Alcotest.fail "legit rejected"
        done;
        Alcotest.(check int) "batch is just the legit traffic" 2
          (Array.length (Entry.close_round e));
        Alcotest.(check int) "flood counted as rejected" 100 (Entry.submissions_rejected e));
  ]

let suite = unit_tests
