(* The keywheel: evolution, synchronization, forward secrecy semantics. *)

module Keywheel = Alpenhorn_keywheel.Keywheel

let secret = String.make 32 's'
let secret2 = String.make 32 't'

let unit_tests =
  [
    Alcotest.test_case "caller token matches callee expectation" `Quick (fun () ->
        let a = Keywheel.create ~owner:"alice@x" and b = Keywheel.create ~owner:"bob@x" in
        Keywheel.add_friend a ~email:"bob@x" ~secret ~round:3;
        Keywheel.add_friend b ~email:"alice@x" ~secret ~round:3;
        Keywheel.advance_to a ~round:7;
        Keywheel.advance_to b ~round:7;
        (* alice's outgoing token to bob is exactly what bob scans for *)
        let expected =
          Keywheel.expected_tokens b ~max_intents:2
          |> List.filter_map (fun (peer, intent, tok) ->
                 if peer = "alice@x" && intent = 1 then Some tok else None)
        in
        (match (Keywheel.dial_token a ~email:"bob@x" ~intent:1, expected) with
         | Some t1, [ t2 ] -> Alcotest.(check string) "token agrees" t1 t2
         | _ -> Alcotest.fail "missing token");
        Alcotest.(check (option string)) "session agrees"
          (Keywheel.session_key a ~email:"bob@x")
          (Keywheel.session_key b ~email:"alice@x"));
    Alcotest.test_case "tokens are directional" `Quick (fun () ->
        (* alice->bob and bob->alice tokens differ even with identical wheel
           state, so a caller never sees their own call as incoming *)
        let a = Keywheel.create ~owner:"alice@x" and b = Keywheel.create ~owner:"bob@x" in
        Keywheel.add_friend a ~email:"bob@x" ~secret ~round:0;
        Keywheel.add_friend b ~email:"alice@x" ~secret ~round:0;
        Alcotest.(check bool) "directional" false
          (Keywheel.dial_token a ~email:"bob@x" ~intent:0
          = Keywheel.dial_token b ~email:"alice@x" ~intent:0));
    Alcotest.test_case "tokens differ by intent and round" `Quick (fun () ->
        let a = Keywheel.create ~owner:"alice@x" in
        Keywheel.add_friend a ~email:"bob@x" ~secret ~round:0;
        let t0 = Keywheel.dial_token a ~email:"bob@x" ~intent:0 in
        let t1 = Keywheel.dial_token a ~email:"bob@x" ~intent:1 in
        Alcotest.(check bool) "intents differ" false (t0 = t1);
        Keywheel.advance_to a ~round:1;
        let t0' = Keywheel.dial_token a ~email:"bob@x" ~intent:0 in
        Alcotest.(check bool) "rounds differ" false (t0 = t0'));
    Alcotest.test_case "token differs from session key" `Quick (fun () ->
        let a = Keywheel.create ~owner:"alice@x" in
        Keywheel.add_friend a ~email:"bob@x" ~secret ~round:0;
        Alcotest.(check bool) "separation" false
          (Keywheel.dial_token a ~email:"bob@x" ~intent:0 = Keywheel.session_key a ~email:"bob@x"));
    Alcotest.test_case "future entries are dormant until the clock catches up" `Quick (fun () ->
        let a = Keywheel.create ~owner:"alice@x" in
        Keywheel.add_friend a ~email:"chris@x" ~secret ~round:28 (* Fig 5 *);
        Alcotest.(check (option string)) "dormant" None
          (Keywheel.dial_token a ~email:"chris@x" ~intent:0);
        Keywheel.advance_to a ~round:26;
        Alcotest.(check (option string)) "still dormant" None
          (Keywheel.dial_token a ~email:"chris@x" ~intent:0);
        Alcotest.(check (option int)) "entry not advanced" (Some 28)
          (Keywheel.entry_round a ~email:"chris@x");
        Keywheel.advance_to a ~round:28;
        Alcotest.(check bool) "live at 28" true
          (Keywheel.dial_token a ~email:"chris@x" ~intent:0 <> None));
    Alcotest.test_case "cannot rewind" `Quick (fun () ->
        let a = Keywheel.create ~owner:"alice@x" in
        Keywheel.advance_to a ~round:5;
        Alcotest.check_raises "rewind" (Invalid_argument "Keywheel.advance_to: cannot rewind")
          (fun () -> Keywheel.advance_to a ~round:4));
    Alcotest.test_case "remove_friend erases the entry" `Quick (fun () ->
        let a = Keywheel.create ~owner:"alice@x" in
        Keywheel.add_friend a ~email:"bob@x" ~secret ~round:0;
        Keywheel.remove_friend a ~email:"bob@x";
        Alcotest.(check (option string)) "gone" None (Keywheel.dial_token a ~email:"bob@x" ~intent:0);
        Alcotest.(check int) "count" 0 (Keywheel.friend_count a));
    Alcotest.test_case "expected_tokens enumerates friends x intents" `Quick (fun () ->
        let a = Keywheel.create ~owner:"alice@x" in
        Keywheel.add_friend a ~email:"bob@x" ~secret ~round:0;
        Keywheel.add_friend a ~email:"carol@x" ~secret:secret2 ~round:0;
        Keywheel.add_friend a ~email:"future@x" ~secret ~round:99;
        let tokens = Keywheel.expected_tokens a ~max_intents:3 in
        Alcotest.(check int) "2 live friends x 3 intents" 6 (List.length tokens);
        let uniq = List.sort_uniq compare (List.map (fun (_, _, t) -> t) tokens) in
        Alcotest.(check int) "all distinct" 6 (List.length uniq));
    Alcotest.test_case "peek_token_at matches a stepped wheel" `Quick (fun () ->
        let a = Keywheel.create ~owner:"alice@x" in
        Keywheel.add_friend a ~email:"bob@x" ~secret ~round:2;
        Keywheel.advance_to a ~round:9;
        Alcotest.(check (option string)) "oracle"
          (Some (Keywheel.peek_token_at ~secret ~from_round:2 ~at_round:9 ~callee:"bob@x" ~intent:1))
          (Keywheel.dial_token a ~email:"bob@x" ~intent:1));
    Alcotest.test_case "forward secrecy: old keys are unrecoverable from state" `Quick (fun () ->
        (* After advancing, the wheel's stored key is the new one; the old
           token can no longer be produced by any API. *)
        let a = Keywheel.create ~owner:"alice@x" in
        Keywheel.add_friend a ~email:"bob@x" ~secret ~round:0;
        let old_token = Keywheel.dial_token a ~email:"bob@x" ~intent:0 in
        Keywheel.advance_to a ~round:1;
        Alcotest.(check bool) "token changed" false
          (Keywheel.dial_token a ~email:"bob@x" ~intent:0 = old_token));
    Alcotest.test_case "rejects bad secrets and rounds" `Quick (fun () ->
        let a = Keywheel.create ~owner:"alice@x" in
        Alcotest.check_raises "short secret"
          (Invalid_argument "Keywheel.add_friend: secret must be 32 bytes") (fun () ->
            Keywheel.add_friend a ~email:"x@y" ~secret:"short" ~round:0);
        Alcotest.check_raises "negative round"
          (Invalid_argument "Keywheel.add_friend: negative round") (fun () ->
            Keywheel.add_friend a ~email:"x@y" ~secret ~round:(-1)));
    Alcotest.test_case "re-adding a friend replaces the entry" `Quick (fun () ->
        let a = Keywheel.create ~owner:"alice@x" in
        Keywheel.add_friend a ~email:"bob@x" ~secret ~round:0;
        Keywheel.add_friend a ~email:"bob@x" ~secret:secret2 ~round:5;
        Alcotest.(check (option int)) "new round" (Some 5) (Keywheel.entry_round a ~email:"bob@x");
        Alcotest.(check int) "still one entry" 1 (Keywheel.friend_count a));
  ]

let prop name ?(count = 30) arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let property_tests =
  [
    prop "advancing in steps equals advancing at once"
      QCheck.(pair (int_range 0 20) (int_range 0 20))
      (fun (r1, r2) ->
        let target = r1 + r2 in
        let a = Keywheel.create ~owner:"alice@x" and b = Keywheel.create ~owner:"alice@x" in
        Keywheel.add_friend a ~email:"f@x" ~secret ~round:0;
        Keywheel.add_friend b ~email:"f@x" ~secret ~round:0;
        Keywheel.advance_to a ~round:r1;
        Keywheel.advance_to a ~round:target;
        Keywheel.advance_to b ~round:target;
        Keywheel.dial_token a ~email:"f@x" ~intent:0 = Keywheel.dial_token b ~email:"f@x" ~intent:0);
    prop "tokens at distinct rounds are distinct" QCheck.(pair (int_range 0 50) (int_range 0 50))
      (fun (r1, r2) ->
        QCheck.assume (r1 <> r2);
        Keywheel.peek_token_at ~secret ~from_round:0 ~at_round:r1 ~callee:"c@x" ~intent:0
        <> Keywheel.peek_token_at ~secret ~from_round:0 ~at_round:r2 ~callee:"c@x" ~intent:0);
  ]

let suite = unit_tests @ property_tests
