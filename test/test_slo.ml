(* SLO / health engine: rule evaluation, skip semantics for absent
   metrics, the built-in rule set, and the report exporters. *)

module Tel = Alpenhorn_telemetry.Telemetry
module Slo = Alpenhorn_telemetry.Slo
module Costmodel = Alpenhorn_sim.Costmodel
module Round_sim = Alpenhorn_sim.Round_sim

let params = lazy (Alpenhorn_pairing.Params.test ())

let check_named report name =
  match
    List.find_opt (fun (c : Slo.check) -> c.rule.Slo.name = name) report.Slo.checks
  with
  | Some c -> c
  | None -> Alcotest.failf "no check named %s in report" name

let deadline_rule limit =
  Slo.rule ~name:"af.deadline" ~description:"add-friend round under deadline"
    (Slo.Span_max "round.addfriend") Slo.Le limit

let basic_tests =
  [
    Alcotest.test_case "deadline rule passes, then fails on an injected miss" `Quick (fun () ->
        let r = Tel.create () in
        Tel.Span.emit r ~name:"round.addfriend" ~ts:0.0 ~dur:200.0 ();
        let snap = Tel.Snapshot.take r in
        let ok = Slo.evaluate [ deadline_rule 300.0 ] snap in
        Alcotest.(check bool) "within deadline: healthy" true ok.Slo.healthy;
        let miss = Slo.evaluate [ deadline_rule 100.0 ] snap in
        Alcotest.(check bool) "deadline miss: unhealthy" false miss.Slo.healthy;
        let c = check_named miss "af.deadline" in
        Alcotest.(check bool) "the failing check is the deadline" false c.Slo.pass;
        Alcotest.(check (option (float 1e-9))) "observed worst span" (Some 200.0) c.Slo.value);
    Alcotest.test_case "absent metrics are skipped, not failed" `Quick (fun () ->
        let snap = Tel.Snapshot.take (Tel.create ()) in
        let report = Slo.evaluate [ deadline_rule 0.0 ] snap in
        Alcotest.(check bool) "empty snapshot is healthy" true report.Slo.healthy;
        let c = check_named report "af.deadline" in
        Alcotest.(check (option (float 1e-9))) "skipped check has no value" None c.Slo.value;
        Alcotest.(check bool) "skipped check passes" true c.Slo.pass);
    Alcotest.test_case "hit-rate source" `Quick (fun () ->
        let r = Tel.create () in
        Tel.Counter.add (Tel.Counter.v r "c.hits") 9;
        Tel.Counter.add (Tel.Counter.v r "c.misses") 1;
        let snap = Tel.Snapshot.take r in
        Alcotest.(check (option (float 1e-9))) "9/10" (Some 0.9)
          (Slo.value_of snap (Slo.Hit_rate ("c.hits", "c.misses")));
        let floor th =
          Slo.rule ~name:"hr" ~description:"" (Slo.Hit_rate ("c.hits", "c.misses")) Slo.Ge th
        in
        Alcotest.(check bool) "above floor" true (Slo.evaluate [ floor 0.8 ] snap).Slo.healthy;
        Alcotest.(check bool) "below floor" false (Slo.evaluate [ floor 0.95 ] snap).Slo.healthy;
        Alcotest.(check (option (float 1e-9))) "no observations = absent" None
          (Slo.value_of snap (Slo.Hit_rate ("c.nope", "c.nada"))));
  ]

let default_rules_tests =
  [
    Alcotest.test_case "always-armed drop rule trips on undecryptable onions" `Quick (fun () ->
        let r = Tel.create () in
        Tel.Counter.add (Tel.Counter.v r ~labels:[ ("server", "1") ] "mix.onions_dropped") 3;
        let snap = Tel.Snapshot.take r in
        let report = Slo.evaluate (Slo.default_rules ()) snap in
        Alcotest.(check bool) "unhealthy" false report.Slo.healthy;
        Alcotest.(check bool) "mix.drops is the failure" false
          (check_named report "mix.drops").Slo.pass);
    Alcotest.test_case "simulated round: healthy under a generous deadline, not a tight one"
      `Quick (fun () ->
        ignore (Tel.Snapshot.take ~reset:true Tel.default);
        let pc = Costmodel.protocol_costs (Lazy.force params) in
        ignore
          (Round_sim.addfriend Costmodel.paper_machine pc ~n_users:100_000 ~n_servers:3
             ~noise_mu:4000.0 ~active_fraction:0.05 ~chunks:1);
        let snap = Tel.Snapshot.take Tel.default in
        let healthy =
          Slo.evaluate (Slo.default_rules ~addfriend_deadline:86_400.0 ()) snap
        in
        Alcotest.(check bool) "a day is plenty" true healthy.Slo.healthy;
        let strained =
          Slo.evaluate (Slo.default_rules ~addfriend_deadline:0.001 ()) snap
        in
        Alcotest.(check bool) "a millisecond is not" false strained.Slo.healthy;
        (* quiescence rule is armed and evaluated, not skipped *)
        let q = check_named healthy "sim.quiescent" in
        Alcotest.(check bool) "quiescence checked and passing" true
          (q.Slo.value <> None && q.Slo.pass));
  ]

let exporter_tests =
  [
    Alcotest.test_case "pp_report and report_to_json" `Quick (fun () ->
        let r = Tel.create () in
        Tel.Span.emit r ~name:"round.addfriend" ~ts:0.0 ~dur:200.0 ();
        let snap = Tel.Snapshot.take r in
        let report =
          Slo.evaluate (deadline_rule 100.0 :: Slo.default_rules ()) snap
        in
        let text = Format.asprintf "%a" Slo.pp_report report in
        let has needle =
          let nh = String.length text and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub text i nn = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "report names the failure" true (has "FAIL");
        Alcotest.(check bool) "report marks skipped rules" true (has "skip");
        let json = Slo.report_to_json report in
        Alcotest.(check bool) "report JSON is valid" true (Tel.Json.is_valid json);
        match Tel.Json.parse json with
        | Some doc ->
          Alcotest.(check (option bool)) "healthy field serialized" (Some false)
            (match Tel.Json.member "healthy" doc with
            | Some (Tel.Json.Bool b) -> Some b
            | _ -> None)
        | None -> Alcotest.fail "unparseable report JSON");
  ]

let suite = basic_tests @ default_rules_tests @ exporter_tests
