(* Diffie-Hellman over G1. *)

module Curve = Alpenhorn_pairing.Curve
module Params = Alpenhorn_pairing.Params
module Dh = Alpenhorn_dh.Dh
module Drbg = Alpenhorn_crypto.Drbg

let params = lazy (Params.test ())
let p () = Lazy.force params

let unit_tests =
  [
    Alcotest.test_case "both sides derive the same secret" `Quick (fun () ->
        let pr = p () in
        let rng = Drbg.create ~seed:"dh1" in
        let ska, pka = Dh.keygen pr rng in
        let skb, pkb = Dh.keygen pr rng in
        Alcotest.(check string) "agree" (Dh.shared_secret pr ska pkb) (Dh.shared_secret pr skb pka));
    Alcotest.test_case "secret is 32 bytes" `Quick (fun () ->
        let pr = p () in
        let rng = Drbg.create ~seed:"dh2" in
        let ska, _ = Dh.keygen pr rng in
        let _, pkb = Dh.keygen pr rng in
        Alcotest.(check int) "len" 32 (String.length (Dh.shared_secret pr ska pkb)));
    Alcotest.test_case "different peers different secrets" `Quick (fun () ->
        let pr = p () in
        let rng = Drbg.create ~seed:"dh3" in
        let ska, _ = Dh.keygen pr rng in
        let _, pkb = Dh.keygen pr rng in
        let _, pkc = Dh.keygen pr rng in
        Alcotest.(check bool) "differ" false
          (Dh.shared_secret pr ska pkb = Dh.shared_secret pr ska pkc));
    Alcotest.test_case "rejects the point at infinity" `Quick (fun () ->
        let pr = p () in
        let rng = Drbg.create ~seed:"dh4" in
        let ska, _ = Dh.keygen pr rng in
        Alcotest.check_raises "infinity" (Invalid_argument "Dh.shared_secret: infinity") (fun () ->
            ignore (Dh.shared_secret pr ska Curve.Inf));
        (* the wire decoder also refuses an infinity encoding *)
        let inf_bytes = Curve.to_bytes pr.Params.fp Curve.Inf in
        Alcotest.(check bool) "of_bytes inf" true (Dh.public_of_bytes pr inf_bytes = None));
    Alcotest.test_case "public key bytes roundtrip" `Quick (fun () ->
        let pr = p () in
        let rng = Drbg.create ~seed:"dh5" in
        let _, pk = Dh.keygen pr rng in
        Alcotest.(check bool) "roundtrip" true
          (match Dh.public_of_bytes pr (Dh.public_bytes pr pk) with
           | Some p2 -> Curve.equal p2 pk
           | None -> false);
        Alcotest.(check int) "size" (Dh.public_size pr) (String.length (Dh.public_bytes pr pk)));
  ]

let prop name ?(count = 20) arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let property_tests =
  [
    prop "agreement for arbitrary keypairs" QCheck.(int_range 0 100_000) (fun seed ->
        let pr = p () in
        let rng = Drbg.create ~seed:(string_of_int seed) in
        let ska, pka = Dh.keygen pr rng in
        let skb, pkb = Dh.keygen pr rng in
        Dh.shared_secret pr ska pkb = Dh.shared_secret pr skb pka);
  ]

let suite = unit_tests @ property_tests
