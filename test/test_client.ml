(* Client-side unit tests: wire format, request verification, submission
   uniformity. Full protocol flows live in test_integration.ml. *)

module B = Alpenhorn_bigint.Bigint
module Curve = Alpenhorn_pairing.Curve
module Params = Alpenhorn_pairing.Params
module Bls = Alpenhorn_bls.Bls
module Dh = Alpenhorn_dh.Dh
module Drbg = Alpenhorn_crypto.Drbg
module Config = Alpenhorn_core.Config
module Wire = Alpenhorn_core.Wire
module Client = Alpenhorn_core.Client
module Deployment = Alpenhorn_core.Deployment
module Pkg = Alpenhorn_pkg.Pkg

let params = lazy (Params.test ())
let p () = Lazy.force params

let sample_request seed =
  let pr = p () in
  let rng = Drbg.create ~seed in
  let sk, pk = Bls.keygen pr rng in
  let _, dh_pk = Dh.keygen pr rng in
  let skeleton =
    {
      Wire.sender_email = "alice@example.org";
      sender_key = pk;
      sender_sig = Curve.infinity;
      pkg_sigs = Curve.infinity;
      dialing_key = dh_pk;
      dialing_round = 42;
    }
  in
  (sk, { skeleton with Wire.sender_sig = Bls.sign pr sk (Wire.sender_sig_message pr skeleton) })

let unit_tests =
  [
    Alcotest.test_case "wire roundtrip (Fig 3)" `Quick (fun () ->
        let pr = p () in
        let _, req = sample_request "w1" in
        (* pkg_sigs must be a decodable point: use a real signature *)
        let rng = Drbg.create ~seed:"w1b" in
        let sk2, _ = Bls.keygen pr rng in
        let req = { req with Wire.pkg_sigs = Bls.sign pr sk2 "att" } in
        match Wire.decode_request pr (Wire.encode_request pr req) with
        | None -> Alcotest.fail "decode failed"
        | Some got ->
          Alcotest.(check string) "email" req.Wire.sender_email got.Wire.sender_email;
          Alcotest.(check int) "round" req.Wire.dialing_round got.Wire.dialing_round;
          Alcotest.(check bool) "key" true (Curve.equal req.Wire.sender_key got.Wire.sender_key);
          Alcotest.(check bool) "sig" true (Curve.equal req.Wire.sender_sig got.Wire.sender_sig);
          Alcotest.(check bool) "dh" true (Curve.equal req.Wire.dialing_key got.Wire.dialing_key));
    Alcotest.test_case "requests are fixed size regardless of email length" `Quick (fun () ->
        let pr = p () in
        let rng = Drbg.create ~seed:"w2" in
        let sk2, _ = Bls.keygen pr rng in
        let _, base = sample_request "w2a" in
        let base = { base with Wire.pkg_sigs = Bls.sign pr sk2 "a" } in
        let short = { base with Wire.sender_email = "a@b" } in
        let long = { base with Wire.sender_email = String.make 60 'x' ^ "@y.z" } in
        Alcotest.(check int) "same size"
          (String.length (Wire.encode_request pr short))
          (String.length (Wire.encode_request pr long));
        Alcotest.(check int) "declared size" (Wire.request_plaintext_size pr)
          (String.length (Wire.encode_request pr short)));
    Alcotest.test_case "oversized email rejected" `Quick (fun () ->
        let pr = p () in
        let _, req = sample_request "w3" in
        let req = { req with Wire.sender_email = String.make 100 'e' } in
        Alcotest.check_raises "too long" (Invalid_argument "Wire.encode_request: email too long")
          (fun () -> ignore (Wire.encode_request pr req)));
    Alcotest.test_case "decode rejects wrong-size and corrupt input" `Quick (fun () ->
        let pr = p () in
        Alcotest.(check bool) "empty" true (Wire.decode_request pr "" = None);
        Alcotest.(check bool) "short" true (Wire.decode_request pr "abc" = None);
        Alcotest.(check bool) "garbage of right size" true
          (Wire.decode_request pr (String.make (Wire.request_plaintext_size pr) '\xee') = None));
    Alcotest.test_case "client basics: queues, friends, self-friend" `Quick (fun () ->
        let d = Deployment.create ~config:Config.test ~seed:"client-basics" in
        let c = Deployment.new_client d ~email:"me@x" ~callbacks:Client.null_callbacks in
        Alcotest.(check string) "email" "me@x" (Client.email c);
        Alcotest.check_raises "self" (Invalid_argument "Client.add_friend: cannot friend yourself")
          (fun () -> Client.add_friend c ~email:"me@x" ());
        Client.add_friend c ~email:"you@x" ();
        Client.add_friend c ~email:"you@x" () (* duplicate is a no-op *);
        Alcotest.(check int) "one pending" 1 (Client.pending_add_friends c);
        Alcotest.(check bool) "not a friend yet" false (Client.is_friend c ~email:"you@x");
        Alcotest.check_raises "intent out of range" (Invalid_argument "Client.call: intent")
          (fun () -> Client.call c ~email:"you@x" ~intent:99));
    Alcotest.test_case "verify_request detects forged PKG attestations" `Quick (fun () ->
        let d = Deployment.create ~config:Config.test ~seed:"client-verify" in
        let alice = Deployment.new_client d ~email:"alice@x" ~callbacks:Client.null_callbacks in
        let bob = Deployment.new_client d ~email:"bob@x" ~callbacks:Client.null_callbacks in
        (match Deployment.register d alice with Ok () -> () | Error _ -> assert false);
        (match Deployment.register d bob with Ok () -> () | Error _ -> assert false);
        (* run a real round so alice obtains genuine PKG attestation material;
           capture bob's view by hand-building a request *)
        Client.add_friend alice ~email:"bob@x" ();
        let stats = Deployment.run_addfriend_round d () in
        Alcotest.(check bool) "bob accepted" true
          (List.exists
             (function _, Client.Friend_request_accepted _ -> true | _ -> false)
             stats.Deployment.events);
        (* a self-signed request without PKG attestation must fail ok1 *)
        let pr = Deployment.params d in
        let rng = Drbg.create ~seed:"forger" in
        let fsk, fpk = Bls.keygen pr rng in
        let _, dh_pk = Dh.keygen pr rng in
        let skeleton =
          {
            Wire.sender_email = "mallory@x";
            sender_key = fpk;
            sender_sig = Curve.infinity;
            pkg_sigs = Bls.sign pr fsk "not an attestation";
            dialing_key = dh_pk;
            dialing_round = 3;
          }
        in
        let forged =
          { skeleton with Wire.sender_sig = Bls.sign pr fsk (Wire.sender_sig_message pr skeleton) }
        in
        (match Client.verify_request bob ~round:2 forged with
         | Error `Bad_pkg_sigs -> ()
         | Ok () -> Alcotest.fail "forged attestation accepted"
         | Error `Bad_sender_sig -> Alcotest.fail "wrong error"));
    Alcotest.test_case "submissions are uniform: cover vs real same length" `Quick (fun () ->
        let d = Deployment.create ~config:Config.test ~seed:"uniform" in
        let alice = Deployment.new_client d ~email:"alice@x" ~callbacks:Client.null_callbacks in
        let bob = Deployment.new_client d ~email:"bob@x" ~callbacks:Client.null_callbacks in
        (match Deployment.register d alice with Ok () -> () | Error _ -> assert false);
        (match Deployment.register d bob with Ok () -> () | Error _ -> assert false);
        (* alice has a queued request, bob sends cover: capture both onions *)
        Client.add_friend alice ~email:"bob@x" ();
        let pkgs = Deployment.pkgs d in
        let round = 1 in
        let commitments = Array.map (fun pkg -> Pkg.begin_round pkg ~round) pkgs in
        ignore commitments;
        Array.iter (fun pkg -> ignore (Pkg.reveal_round pkg ~round)) pkgs;
        let mpks =
          Array.to_list pkgs |> List.map (fun pkg -> Option.get (Pkg.master_public pkg ~round))
        in
        let mpk_agg = Alpenhorn_ibe.Ibe.aggregate_public (Deployment.params d) mpks in
        let rng = Drbg.create ~seed:"uniform-keys" in
        let server_pks = [ snd (Dh.keygen (Deployment.params d) rng) ] in
        let ctx c =
          match Client.begin_addfriend_round c ~round ~now:0 ~pkgs with
          | Ok ctx -> ctx
          | Error e -> Alcotest.failf "begin: %s" (Pkg.error_to_string e)
        in
        let real =
          Client.addfriend_submission alice (ctx alice) ~mpk_agg ~num_mailboxes:2 ~server_pks
        in
        let cover =
          Client.addfriend_submission bob (ctx bob) ~mpk_agg ~num_mailboxes:2 ~server_pks
        in
        Alcotest.(check int) "same size" (String.length real) (String.length cover));
    Alcotest.test_case "dialing submissions are uniform too" `Quick (fun () ->
        let d = Deployment.create ~config:Config.test ~seed:"uniform-dial" in
        let alice = Deployment.new_client d ~email:"alice@x" ~callbacks:Client.null_callbacks in
        let rng = Drbg.create ~seed:"uniform-dial-keys" in
        let server_pks = [ snd (Dh.keygen (Deployment.params d) rng) ] in
        (* no friends: cover traffic *)
        let cover = Client.dialing_submission alice ~num_mailboxes:1 ~server_pks in
        (* with a live friend and a queued call: real token *)
        Alpenhorn_keywheel.Keywheel.add_friend (Client.keywheel alice) ~email:"bob@x"
          ~secret:(String.make 32 's') ~round:0;
        Client.call alice ~email:"bob@x" ~intent:0;
        let real = Client.dialing_submission alice ~num_mailboxes:1 ~server_pks in
        Alcotest.(check int) "same size" (String.length cover) (String.length real));
    Alcotest.test_case "sender_sig binds the dialing key (MITM swap rejected)" `Quick (fun () ->
        let d = Deployment.create ~config:Config.test ~seed:"client-swap" in
        let pr = Deployment.params d in
        let bob = Deployment.new_client d ~email:"bob@x" ~callbacks:Client.null_callbacks in
        (* register a raw keypair for mallory directly with the PKGs so the
           request carries genuine attestations — swapping the DH half must
           then fail on the sender signature, not on PKGSigs *)
        let rng = Drbg.create ~seed:"client-swap-keys" in
        let msk, mpk = Bls.keygen pr rng in
        let email = "mallory@x" in
        let now = Deployment.now d in
        Array.iter
          (fun pkg ->
            match Pkg.register pkg ~now ~email ~pk:mpk with
            | Ok () -> ()
            | Error e -> Alcotest.failf "register: %s" (Pkg.error_to_string e))
          (Deployment.pkgs d);
        List.iter
          (fun (i, token) ->
            match Pkg.confirm (Deployment.pkgs d).(i) ~now ~email ~token with
            | Ok () -> ()
            | Error e -> Alcotest.failf "confirm: %s" (Pkg.error_to_string e))
          (Deployment.inbox d ~email);
        let round = 1 in
        Array.iter (fun pkg -> ignore (Pkg.begin_round pkg ~round)) (Deployment.pkgs d);
        Array.iter
          (fun pkg ->
            match Pkg.reveal_round pkg ~round with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "reveal: %s" (Pkg.error_to_string e))
          (Deployment.pkgs d);
        let ext_sig = Bls.sign pr msk (Pkg.extraction_request_message ~email ~round) in
        let atts =
          Array.to_list (Deployment.pkgs d)
          |> List.map (fun pkg ->
                 match Pkg.extract pkg ~now ~round ~email ~signature:ext_sig with
                 | Ok (_, att) -> att
                 | Error e -> Alcotest.failf "extract: %s" (Pkg.error_to_string e))
        in
        let _, dh_pk = Dh.keygen pr rng in
        let skeleton =
          {
            Wire.sender_email = email;
            sender_key = mpk;
            sender_sig = Curve.infinity;
            pkg_sigs = Bls.aggregate pr atts;
            dialing_key = dh_pk;
            dialing_round = 7;
          }
        in
        let req =
          { skeleton with Wire.sender_sig = Bls.sign pr msk (Wire.sender_sig_message pr skeleton) }
        in
        (match Client.verify_request bob ~round req with
         | Ok () -> ()
         | Error _ -> Alcotest.fail "genuine request rejected");
        (* an in-path attacker re-wraps the request around their own DH key *)
        let _, evil_dh = Dh.keygen pr (Drbg.create ~seed:"client-swap-evil") in
        let swapped = { req with Wire.dialing_key = evil_dh } in
        match Client.verify_request bob ~round swapped with
        | Error `Bad_sender_sig -> ()
        | Ok () -> Alcotest.fail "swapped dialing key accepted (MITM)"
        | Error `Bad_pkg_sigs -> Alcotest.fail "wrong error: PKGSigs must still verify");
    Alcotest.test_case "decode_request rejects nonzero email padding" `Quick (fun () ->
        let pr = p () in
        let rng = Drbg.create ~seed:"pad" in
        let sk2, _ = Bls.keygen pr rng in
        let _, req = sample_request "pad-req" in
        let req = { req with Wire.pkg_sigs = Bls.sign pr sk2 "att"; sender_email = "a@b" } in
        let enc = Wire.encode_request pr req in
        Alcotest.(check bool) "canonical form decodes" true (Wire.decode_request pr enc <> None);
        (* byte 0 is the email length; bytes 1+len .. max_email_length are
           padding and must be all-zero — anything else is a covert channel *)
        let len = Char.code enc.[0] in
        Alcotest.(check int) "email length" 3 len;
        let tweaked = Bytes.of_string enc in
        Bytes.set tweaked (1 + len) 'Z';
        Alcotest.(check bool) "nonzero padding rejected" true
          (Wire.decode_request pr (Bytes.to_string tweaked) = None));
    Alcotest.test_case "remove_friend erases all traces" `Quick (fun () ->
        let d = Deployment.create ~config:Config.test ~seed:"remove" in
        let c = Deployment.new_client d ~email:"me@x" ~callbacks:Client.null_callbacks in
        Alpenhorn_keywheel.Keywheel.add_friend (Client.keywheel c) ~email:"bob@x"
          ~secret:(String.make 32 's') ~round:0;
        Alcotest.(check bool) "friend" true (Client.is_friend c ~email:"bob@x");
        Client.remove_friend c ~email:"bob@x";
        Alcotest.(check bool) "gone" false (Client.is_friend c ~email:"bob@x");
        Alcotest.(check (option reject)) "no pinned key" None (Client.pinned_key c ~email:"bob@x"));
  ]

let suite = unit_tests
