(* Unit and property tests for the bignum substrate. *)

module B = Alpenhorn_bigint.Bigint

let check_eq msg a b = Alcotest.(check string) msg (B.to_string a) (B.to_string b)

(* deterministic RNG for property generators *)
let gen_bigint bits =
  QCheck.Gen.(
    map
      (fun (seed, neg) ->
        let rng = Alpenhorn_crypto.Drbg.create ~seed:(string_of_int seed) in
        let v = Alpenhorn_crypto.Drbg.bigint_bits rng bits in
        if neg then B.neg v else v)
      (pair (int_range 0 1_000_000) bool))

let arb_bigint ?(bits = 256) () = QCheck.make ~print:B.to_string (gen_bigint bits)

let arb_pos ?(bits = 256) () =
  QCheck.make ~print:B.to_string QCheck.Gen.(map B.abs (gen_bigint bits))

let unit_tests =
  [
    Alcotest.test_case "zero and one" `Quick (fun () ->
        Alcotest.(check bool) "zero is zero" true (B.is_zero B.zero);
        Alcotest.(check int) "sign zero" 0 (B.sign B.zero);
        check_eq "0+1" B.one (B.add B.zero B.one);
        check_eq "1*1" B.one (B.mul B.one B.one));
    Alcotest.test_case "of_int/to_int roundtrip" `Quick (fun () ->
        List.iter
          (fun n -> Alcotest.(check int) (string_of_int n) n (B.to_int (B.of_int n)))
          [ 0; 1; -1; 42; -42; max_int; min_int + 1; 1 lsl 40; -(1 lsl 40) ]);
    Alcotest.test_case "decimal string roundtrip" `Quick (fun () ->
        List.iter
          (fun s -> Alcotest.(check string) s s (B.to_string (B.of_string s)))
          [ "0"; "1"; "-1"; "123456789012345678901234567890"; "-987654321098765432109876543210" ]);
    Alcotest.test_case "hex parsing" `Quick (fun () ->
        check_eq "0xff" (B.of_int 255) (B.of_string "0xff");
        check_eq "0xFF" (B.of_int 255) (B.of_string "0xFF");
        check_eq "-0x10" (B.of_int (-16)) (B.of_string "-0x10");
        Alcotest.(check string) "to_hex" "ff" (B.to_hex (B.of_int 255)));
    Alcotest.test_case "malformed strings rejected" `Quick (fun () ->
        List.iter
          (fun s ->
            Alcotest.check_raises s (Invalid_argument "Bigint.of_string") (fun () ->
                ignore (B.of_string s)))
          [ ""; "-"; "12a"; "0x"; "0xzz" ]);
    Alcotest.test_case "division by zero" `Quick (fun () ->
        Alcotest.check_raises "divmod" Division_by_zero (fun () ->
            ignore (B.divmod B.one B.zero)));
    Alcotest.test_case "euclidean remainder is non-negative" `Quick (fun () ->
        let a = B.of_int (-7) and b = B.of_int 3 in
        let q, r = B.divmod a b in
        check_eq "q" (B.of_int (-3)) q;
        check_eq "r" (B.of_int 2) r;
        let q, r = B.divmod a (B.of_int (-3)) in
        check_eq "q neg divisor" (B.of_int 3) q;
        check_eq "r neg divisor" (B.of_int 2) r);
    Alcotest.test_case "pow" `Quick (fun () ->
        check_eq "2^10" (B.of_int 1024) (B.pow B.two 10);
        check_eq "x^0" B.one (B.pow (B.of_int 7) 0);
        check_eq "0^0" B.one (B.pow B.zero 0));
    Alcotest.test_case "mod_pow known values" `Quick (fun () ->
        (* 2^10 mod 1000 = 24, 3^100 mod 7: 3^6=1 mod 7, 100 mod 6 = 4 -> 3^4=81=4 *)
        check_eq "2^10 mod 1000" (B.of_int 24) (B.mod_pow B.two (B.of_int 10) (B.of_int 1000));
        check_eq "3^100 mod 7" (B.of_int 4) (B.mod_pow (B.of_int 3) (B.of_int 100) (B.of_int 7)));
    Alcotest.test_case "mod_inv" `Quick (fun () ->
        check_eq "3^-1 mod 7" (B.of_int 5) (B.mod_inv (B.of_int 3) (B.of_int 7));
        Alcotest.check_raises "non-invertible" Division_by_zero (fun () ->
            ignore (B.mod_inv (B.of_int 4) (B.of_int 8))));
    Alcotest.test_case "gcd" `Quick (fun () ->
        check_eq "gcd(12,18)" (B.of_int 6) (B.gcd (B.of_int 12) (B.of_int 18));
        check_eq "gcd(-12,18)" (B.of_int 6) (B.gcd (B.of_int (-12)) (B.of_int 18));
        check_eq "gcd(0,5)" (B.of_int 5) (B.gcd B.zero (B.of_int 5)));
    Alcotest.test_case "numbits and testbit" `Quick (fun () ->
        Alcotest.(check int) "numbits 0" 0 (B.numbits B.zero);
        Alcotest.(check int) "numbits 1" 1 (B.numbits B.one);
        Alcotest.(check int) "numbits 255" 8 (B.numbits (B.of_int 255));
        Alcotest.(check int) "numbits 256" 9 (B.numbits (B.of_int 256));
        Alcotest.(check bool) "bit 0 of 5" true (B.testbit (B.of_int 5) 0);
        Alcotest.(check bool) "bit 1 of 5" false (B.testbit (B.of_int 5) 1);
        Alcotest.(check bool) "bit 2 of 5" true (B.testbit (B.of_int 5) 2));
    Alcotest.test_case "shifts" `Quick (fun () ->
        check_eq "1<<100 >>100" B.one (B.shift_right (B.shift_left B.one 100) 100);
        check_eq "5<<3" (B.of_int 40) (B.shift_left (B.of_int 5) 3);
        check_eq "40>>3" (B.of_int 5) (B.shift_right (B.of_int 40) 3);
        check_eq "-8>>1 floor" (B.of_int (-4)) (B.shift_right (B.of_int (-8)) 1));
    Alcotest.test_case "bytes roundtrip" `Quick (fun () ->
        let v = B.of_string "0xdeadbeefcafebabe1234" in
        check_eq "roundtrip" v (B.of_bytes_be (B.to_bytes_be v));
        Alcotest.(check int) "padded length" 32 (String.length (B.to_bytes_be ~len:32 v));
        Alcotest.check_raises "len too small" (Invalid_argument "Bigint.to_bytes_be: len too small")
          (fun () -> ignore (B.to_bytes_be ~len:2 v)));
    Alcotest.test_case "primality known values" `Quick (fun () ->
        let rng = Alpenhorn_crypto.Drbg.create ~seed:"prime-test" in
        let rand ~bits = Alpenhorn_crypto.Drbg.bigint_bits rng bits in
        let prime n = B.is_probable_prime ~rand (B.of_string n) in
        List.iter (fun n -> Alcotest.(check bool) (n ^ " prime") true (prime n))
          [ "2"; "3"; "5"; "7"; "65537"; "2147483647"; "170141183460469231731687303715884105727" ];
        List.iter (fun n -> Alcotest.(check bool) (n ^ " composite") false (prime n))
          [ "0"; "1"; "4"; "9"; "561"; "1105"; "6601"; "341550071728321" ]);
    Alcotest.test_case "karatsuba threshold crossing" `Quick (fun () ->
        (* multiply numbers big enough to trigger the Karatsuba path and
           check against the schoolbook result via a distributivity split *)
        let rng = Alpenhorn_crypto.Drbg.create ~seed:"karatsuba" in
        let a = Alpenhorn_crypto.Drbg.bigint_bits rng 4000 in
        let b = Alpenhorn_crypto.Drbg.bigint_bits rng 3500 in
        let half = B.shift_right b 1750 and rest = B.sub b (B.shift_left (B.shift_right b 1750) 1750) in
        let expected = B.add (B.mul a (B.shift_left half 1750)) (B.mul a rest) in
        check_eq "a*(hi+lo)" expected (B.mul a b));
  ]

let prop name ?(count = 100) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let property_tests =
  [
    prop "add comm" QCheck.(pair (arb_bigint ()) (arb_bigint ())) (fun (a, b) ->
        B.equal (B.add a b) (B.add b a));
    prop "add assoc" QCheck.(triple (arb_bigint ()) (arb_bigint ()) (arb_bigint ()))
      (fun (a, b, c) -> B.equal (B.add (B.add a b) c) (B.add a (B.add b c)));
    prop "sub inverse" QCheck.(pair (arb_bigint ()) (arb_bigint ())) (fun (a, b) ->
        B.equal (B.sub (B.add a b) b) a);
    prop "mul comm" QCheck.(pair (arb_bigint ~bits:300 ()) (arb_bigint ~bits:300 ()))
      (fun (a, b) -> B.equal (B.mul a b) (B.mul b a));
    prop "mul distributes" QCheck.(triple (arb_bigint ()) (arb_bigint ()) (arb_bigint ()))
      (fun (a, b, c) -> B.equal (B.mul a (B.add b c)) (B.add (B.mul a b) (B.mul a c)));
    prop "divmod identity" QCheck.(pair (arb_bigint ~bits:400 ()) (arb_pos ~bits:200 ()))
      (fun (a, b) ->
        QCheck.assume (not (B.is_zero b));
        let q, r = B.divmod a b in
        B.equal a (B.add (B.mul q b) r) && B.sign r >= 0 && B.compare r (B.abs b) < 0);
    prop "string roundtrip" (arb_bigint ()) (fun a -> B.equal a (B.of_string (B.to_string a)));
    prop "hex roundtrip via bytes" (arb_pos ()) (fun a ->
        B.equal a (B.of_bytes_be (B.to_bytes_be a)));
    prop "shift is mul by 2^k"
      QCheck.(pair (arb_bigint ~bits:200 ()) (int_range 0 100))
      (fun (a, k) -> B.equal (B.shift_left a k) (B.mul a (B.pow B.two k)));
    prop "mod_pow matches naive" ~count:30
      QCheck.(triple (arb_pos ~bits:64 ()) (int_range 0 40) (arb_pos ~bits:64 ()))
      (fun (a, e, m) ->
        QCheck.assume (B.compare m B.two >= 0);
        B.equal (B.mod_pow a (B.of_int e) m) (B.rem (B.pow a e) m));
    prop "mod_inv is inverse" ~count:50
      QCheck.(pair (arb_pos ~bits:128 ()) (arb_pos ~bits:128 ()))
      (fun (a, m) ->
        QCheck.assume (B.compare m B.two >= 0 && B.equal (B.gcd a m) B.one);
        B.equal (B.rem (B.mul a (B.mod_inv a m)) m) (B.rem B.one m));
    prop "gcd divides both" QCheck.(pair (arb_pos ~bits:128 ()) (arb_pos ~bits:128 ()))
      (fun (a, b) ->
        QCheck.assume (not (B.is_zero a) || not (B.is_zero b));
        let g = B.gcd a b in
        B.is_zero (B.rem a g) && B.is_zero (B.rem b g));
    prop "compare total order" QCheck.(triple (arb_bigint ()) (arb_bigint ()) (arb_bigint ()))
      (fun (a, b, c) ->
        (* transitivity on this triple *)
        let sorted = List.sort B.compare [ a; b; c ] in
        match sorted with
        | [ x; y; z ] -> B.compare x y <= 0 && B.compare y z <= 0 && B.compare x z <= 0
        | _ -> false);
    prop "neg involutive" (arb_bigint ()) (fun a -> B.equal a (B.neg (B.neg a)));
    prop "abs non-negative" (arb_bigint ()) (fun a -> B.sign (B.abs a) >= 0);
  ]

let suite = unit_tests @ property_tests

(* third batch: overflow and boundary paths *)
let edge_tests =
  [
    Alcotest.test_case "to_int overflows raise" `Quick (fun () ->
        let big = B.shift_left B.one 70 in
        Alcotest.check_raises "positive" (Failure "Bigint.to_int: overflow") (fun () ->
            ignore (B.to_int big));
        Alcotest.check_raises "negative" (Failure "Bigint.to_int: overflow") (fun () ->
            ignore (B.to_int (B.neg big))));
    Alcotest.test_case "max_int boundary survives roundtrip" `Quick (fun () ->
        Alcotest.(check int) "max_int" max_int (B.to_int (B.of_int max_int));
        Alcotest.(check int) "min_int+1" (min_int + 1) (B.to_int (B.of_int (min_int + 1))));
    Alcotest.test_case "mod_pow rejects bad inputs" `Quick (fun () ->
        Alcotest.check_raises "zero modulus" (Invalid_argument "Bigint.mod_pow: modulus")
          (fun () -> ignore (B.mod_pow B.two B.two B.zero));
        Alcotest.check_raises "negative exponent" (Invalid_argument "Bigint.mod_pow: exponent")
          (fun () -> ignore (B.mod_pow B.two (B.of_int (-1)) (B.of_int 7))));
    Alcotest.test_case "pow rejects negative exponent" `Quick (fun () ->
        Alcotest.check_raises "neg" (Invalid_argument "Bigint.pow") (fun () ->
            ignore (B.pow B.two (-1))));
    Alcotest.test_case "shift by zero and by multiples of limb size" `Quick (fun () ->
        let v = B.of_string "0x123456789abcdef0123456789" in
        Alcotest.(check string) "<<0" (B.to_hex v) (B.to_hex (B.shift_left v 0));
        Alcotest.(check string) ">>0" (B.to_hex v) (B.to_hex (B.shift_right v 0));
        Alcotest.(check string) "<<31>>31" (B.to_hex v)
          (B.to_hex (B.shift_right (B.shift_left v 31) 31));
        Alcotest.(check string) "<<62>>62" (B.to_hex v)
          (B.to_hex (B.shift_right (B.shift_left v 62) 62)));
    Alcotest.test_case "divmod near powers of the limb base" `Quick (fun () ->
        (* exercise the Knuth normalization/add-back region *)
        let b31 = B.shift_left B.one 31 in
        List.iter
          (fun (a, b) ->
            let q, r = B.divmod a b in
            Alcotest.(check bool) "identity" true (B.equal a (B.add (B.mul q b) r));
            Alcotest.(check bool) "remainder range" true
              (B.sign r >= 0 && B.compare r (B.abs b) < 0))
          [
            (B.sub (B.pow b31 3) B.one, B.sub (B.pow b31 2) B.one);
            (B.pow b31 4, B.add (B.pow b31 2) B.one);
            (B.sub (B.pow b31 2) B.one, B.sub b31 B.one);
            (B.pow b31 2, b31);
          ]);
    Alcotest.test_case "random_below stays under tight bounds" `Quick (fun () ->
        let rng = Alpenhorn_crypto.Drbg.create ~seed:"below" in
        let bound = B.of_int 3 in
        for _ = 1 to 200 do
          let v = B.random_below ~rand_bytes:(Alpenhorn_crypto.Drbg.bytes rng) bound in
          Alcotest.(check bool) "in [0,3)" true (B.sign v >= 0 && B.compare v bound < 0)
        done;
        Alcotest.check_raises "zero bound" (Invalid_argument "Bigint.random_below") (fun () ->
            ignore (B.random_below ~rand_bytes:(Alpenhorn_crypto.Drbg.bytes rng) B.zero)));
    Alcotest.test_case "to_limbs/of_limbs roundtrip" `Quick (fun () ->
        let vals =
          [
            B.zero;
            B.one;
            B.of_int max_int;
            B.shift_left B.one 31;
            B.sub (B.shift_left B.one 31) B.one;
            B.of_string "0x123456789abcdef0123456789abcdef0123456789";
          ]
        in
        List.iter
          (fun v ->
            Alcotest.(check string) "roundtrip" (B.to_hex v) (B.to_hex (B.of_limbs (B.to_limbs v))))
          vals;
        (* of_limbs strips leading zero limbs and copies its input *)
        let limbs = [| 5; 0; 0 |] in
        let v = B.of_limbs limbs in
        limbs.(0) <- 7;
        Alcotest.(check int) "copied, zeros stripped" 5 (B.to_int v);
        (* to_limbs is little-endian base 2^31 *)
        let w = B.add (B.shift_left (B.of_int 3) 31) B.two in
        Alcotest.(check bool) "limb order" true (B.to_limbs w = [| 2; 3 |]));
    Alcotest.test_case "is_even and parity arithmetic" `Quick (fun () ->
        Alcotest.(check bool) "0 even" true (B.is_even B.zero);
        Alcotest.(check bool) "1 odd" false (B.is_even B.one);
        Alcotest.(check bool) "-2 even" true (B.is_even (B.of_int (-2)));
        let big_odd = B.add (B.shift_left B.one 200) B.one in
        Alcotest.(check bool) "2^200+1 odd" false (B.is_even big_odd));
  ]

let suite = suite @ edge_tests
