(* PKG server: registration, lockout policy, round lifecycle, extraction. *)

module Params = Alpenhorn_pairing.Params
module Pkg = Alpenhorn_pkg.Pkg
module Bls = Alpenhorn_bls.Bls
module Ibe = Alpenhorn_ibe.Ibe
module Drbg = Alpenhorn_crypto.Drbg

let params = lazy (Params.test ())
let p () = Lazy.force params

let day = 24 * 3600

(* a PKG plus an inbox capturing the confirmation emails it sends *)
let make_pkg ?lockout () =
  let inbox = Hashtbl.create 8 in
  let pkg =
    Pkg.create (p ())
      ~rng:(Drbg.create ~seed:"pkg-test")
      ?lockout
      ~send_email:(fun ~to_ ~token -> Hashtbl.replace inbox to_ token)
      ()
  in
  (pkg, inbox)

let token_for inbox email = Hashtbl.find inbox email

let user_keypair seed = Bls.keygen (p ()) (Drbg.create ~seed)

let register_ok pkg inbox ~now ~email ~pk =
  (match Pkg.register pkg ~now ~email ~pk with
   | Ok () -> ()
   | Error e -> Alcotest.failf "register: %s" (Pkg.error_to_string e));
  match Pkg.confirm pkg ~now ~email ~token:(token_for inbox email) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "confirm: %s" (Pkg.error_to_string e)

let err = Alcotest.testable Pkg.pp_error ( = )

let unit_tests =
  [
    Alcotest.test_case "register + confirm flow" `Quick (fun () ->
        let pkg, inbox = make_pkg () in
        let _, pk = user_keypair "u1" in
        register_ok pkg inbox ~now:0 ~email:"alice@x" ~pk;
        Alcotest.(check bool) "registered" true (Pkg.is_registered pkg ~email:"alice@x");
        Alcotest.(check bool) "key locked" true
          (match Pkg.registered_key pkg ~email:"alice@x" with
           | Some k -> Alpenhorn_pairing.Curve.equal k pk
           | None -> false));
    Alcotest.test_case "confirm with wrong token fails" `Quick (fun () ->
        let pkg, _ = make_pkg () in
        let _, pk = user_keypair "u2" in
        (match Pkg.register pkg ~now:0 ~email:"bob@x" ~pk with Ok () -> () | Error _ -> assert false);
        Alcotest.(check (result unit err)) "bad token" (Error Pkg.Bad_token)
          (Pkg.confirm pkg ~now:0 ~email:"bob@x" ~token:"wrong");
        Alcotest.(check bool) "not active" false (Pkg.is_registered pkg ~email:"bob@x"));
    Alcotest.test_case "cannot re-register an active fresh account" `Quick (fun () ->
        (* an attacker controlling the email account cannot displace the key *)
        let pkg, inbox = make_pkg () in
        let _, pk = user_keypair "u3" in
        register_ok pkg inbox ~now:0 ~email:"carol@x" ~pk;
        let _, attacker_pk = user_keypair "attacker" in
        Alcotest.(check (result unit err)) "locked" (Error Pkg.Already_registered)
          (Pkg.register pkg ~now:day ~email:"carol@x" ~pk:attacker_pk));
    Alcotest.test_case "30-day liveness lockout allows re-registration" `Quick (fun () ->
        let pkg, inbox = make_pkg () in
        let _, pk = user_keypair "u4" in
        register_ok pkg inbox ~now:0 ~email:"dave@x" ~pk;
        let _, new_pk = user_keypair "u4-new" in
        (* 29 days of inactivity: still locked *)
        Alcotest.(check (result unit err)) "29 days" (Error Pkg.Already_registered)
          (Pkg.register pkg ~now:(29 * day) ~email:"dave@x" ~pk:new_pk);
        (* 31 days: the stale account can be taken over by email validation *)
        register_ok pkg inbox ~now:(31 * day) ~email:"dave@x" ~pk:new_pk;
        Alcotest.(check bool) "new key" true
          (match Pkg.registered_key pkg ~email:"dave@x" with
           | Some k -> Alpenhorn_pairing.Curve.equal k new_pk
           | None -> false));
    Alcotest.test_case "extraction refreshes the liveness clock" `Quick (fun () ->
        let pkg, inbox = make_pkg () in
        let sk, pk = user_keypair "u5" in
        register_ok pkg inbox ~now:0 ~email:"eve@x" ~pk;
        (* user extracts at day 20, so day 35 is only 15 days idle *)
        let _ = Pkg.begin_round pkg ~round:1 in
        (match Pkg.reveal_round pkg ~round:1 with Ok _ -> () | Error _ -> assert false);
        let signature =
          Bls.sign (p ()) sk (Pkg.extraction_request_message ~email:"eve@x" ~round:1)
        in
        (match Pkg.extract pkg ~now:(20 * day) ~round:1 ~email:"eve@x" ~signature with
         | Ok _ -> ()
         | Error e -> Alcotest.failf "extract: %s" (Pkg.error_to_string e));
        let _, squatter = user_keypair "squatter" in
        Alcotest.(check (result unit err)) "day 35 still locked" (Error Pkg.Already_registered)
          (Pkg.register pkg ~now:(35 * day) ~email:"eve@x" ~pk:squatter));
    Alcotest.test_case "deregister requires a valid signature and locks out" `Quick (fun () ->
        let pkg, inbox = make_pkg () in
        let sk, pk = user_keypair "u6" in
        register_ok pkg inbox ~now:0 ~email:"frank@x" ~pk;
        let bad = Bls.sign (p ()) (fst (user_keypair "other")) "deregisterfrank@x" in
        Alcotest.(check (result unit err)) "bad sig" (Error Pkg.Bad_signature)
          (Pkg.deregister pkg ~now:0 ~email:"frank@x" ~signature:bad);
        let good = Bls.sign (p ()) sk "deregisterfrank@x" in
        (match Pkg.deregister pkg ~now:0 ~email:"frank@x" ~signature:good with
         | Ok () -> ()
         | Error e -> Alcotest.failf "deregister: %s" (Pkg.error_to_string e));
        (* within the lockout window nobody can re-register (§9) *)
        let _, pk2 = user_keypair "u6b" in
        (match Pkg.register pkg ~now:day ~email:"frank@x" ~pk:pk2 with
         | Error (Pkg.Locked_out remaining) ->
           Alcotest.(check bool) "remaining sane" true (remaining > 0 && remaining <= 30 * day)
         | _ -> Alcotest.fail "expected lockout");
        (* after the window, registration reopens *)
        register_ok pkg inbox ~now:(31 * day) ~email:"frank@x" ~pk:pk2);
    Alcotest.test_case "extraction authentication" `Quick (fun () ->
        let pkg, inbox = make_pkg () in
        let _, pk = user_keypair "u7" in
        register_ok pkg inbox ~now:0 ~email:"grace@x" ~pk;
        let _ = Pkg.begin_round pkg ~round:1 in
        (match Pkg.reveal_round pkg ~round:1 with Ok _ -> () | Error _ -> assert false);
        let forged =
          Bls.sign (p ()) (fst (user_keypair "mallory"))
            (Pkg.extraction_request_message ~email:"grace@x" ~round:1)
        in
        (match Pkg.extract pkg ~now:0 ~round:1 ~email:"grace@x" ~signature:forged with
         | Error Pkg.Bad_signature -> ()
         | _ -> Alcotest.fail "forged extraction accepted");
        (match Pkg.extract pkg ~now:0 ~round:1 ~email:"nobody@x" ~signature:forged with
         | Error Pkg.Unknown_account -> ()
         | _ -> Alcotest.fail "unknown account accepted"));
    Alcotest.test_case "extraction needs the right round, revealed, unerased" `Quick (fun () ->
        let pkg, inbox = make_pkg () in
        let sk, pk = user_keypair "u8" in
        register_ok pkg inbox ~now:0 ~email:"heidi@x" ~pk;
        let sign round = Bls.sign (p ()) sk (Pkg.extraction_request_message ~email:"heidi@x" ~round) in
        (match Pkg.extract pkg ~now:0 ~round:9 ~email:"heidi@x" ~signature:(sign 9) with
         | Error Pkg.Wrong_round -> ()
         | _ -> Alcotest.fail "nonexistent round accepted");
        let _ = Pkg.begin_round pkg ~round:1 in
        (match Pkg.extract pkg ~now:0 ~round:1 ~email:"heidi@x" ~signature:(sign 1) with
         | Error Pkg.Not_revealed -> ()
         | _ -> Alcotest.fail "unrevealed round accepted");
        (match Pkg.reveal_round pkg ~round:1 with Ok _ -> () | Error _ -> assert false);
        (match Pkg.extract pkg ~now:0 ~round:1 ~email:"heidi@x" ~signature:(sign 1) with
         | Ok _ -> ()
         | Error e -> Alcotest.failf "extract: %s" (Pkg.error_to_string e));
        (* end_round erases the master secret: no more extraction (§4.4) *)
        Pkg.end_round pkg ~round:1;
        (match Pkg.extract pkg ~now:0 ~round:1 ~email:"heidi@x" ~signature:(sign 1) with
         | Error Pkg.Wrong_round -> ()
         | _ -> Alcotest.fail "erased round still extracts"));
    Alcotest.test_case "commit-reveal binds the master public key" `Quick (fun () ->
        let pkg, _ = make_pkg () in
        let commitment = Pkg.begin_round pkg ~round:1 in
        match Pkg.reveal_round pkg ~round:1 with
        | Error _ -> Alcotest.fail "reveal failed"
        | Ok (mpk, opening) ->
          Alcotest.(check bool) "opens" true
            (Pkg.verify_commitment (p ()) ~commitment ~mpk ~opening);
          Alcotest.(check bool) "wrong opening" false
            (Pkg.verify_commitment (p ()) ~commitment ~mpk ~opening:(String.make 32 'x'));
          (* a different round's mpk does not open this commitment *)
          let _ = Pkg.begin_round pkg ~round:2 in
          (match Pkg.reveal_round pkg ~round:2 with
           | Ok (mpk2, _) ->
             Alcotest.(check bool) "wrong mpk" false
               (Pkg.verify_commitment (p ()) ~commitment ~mpk:mpk2 ~opening)
           | Error _ -> Alcotest.fail "round 2 reveal"));
    Alcotest.test_case "extracted keys decrypt; attestation verifies" `Quick (fun () ->
        let pkg, inbox = make_pkg () in
        let sk, pk = user_keypair "u9" in
        register_ok pkg inbox ~now:0 ~email:"ivan@x" ~pk;
        let _ = Pkg.begin_round pkg ~round:1 in
        (match Pkg.reveal_round pkg ~round:1 with Ok _ -> () | Error _ -> assert false);
        let signature = Bls.sign (p ()) sk (Pkg.extraction_request_message ~email:"ivan@x" ~round:1) in
        match Pkg.extract pkg ~now:0 ~round:1 ~email:"ivan@x" ~signature with
        | Error e -> Alcotest.failf "extract: %s" (Pkg.error_to_string e)
        | Ok (d_id, att) ->
          let mpk = Option.get (Pkg.master_public pkg ~round:1) in
          let rng = Drbg.create ~seed:"pkg-enc" in
          let ctxt = Ibe.encrypt (p ()) rng mpk ~id:"ivan@x" "for ivan" in
          Alcotest.(check (option string)) "decrypts" (Some "for ivan")
            (Ibe.decrypt (p ()) d_id ctxt);
          let msg =
            Pkg.attestation_message ~email:"ivan@x" ~pk_bytes:(Bls.public_bytes (p ()) pk) ~round:1
          in
          Alcotest.(check bool) "attestation" true
            (Bls.verify (p ()) (Pkg.long_term_public pkg) msg att));
    Alcotest.test_case "pending registration can restart with a fresh token" `Quick (fun () ->
        let pkg, inbox = make_pkg () in
        let _, pk = user_keypair "u10" in
        (match Pkg.register pkg ~now:0 ~email:"judy@x" ~pk with Ok () -> () | Error _ -> assert false);
        let t1 = token_for inbox "judy@x" in
        (match Pkg.register pkg ~now:0 ~email:"judy@x" ~pk with Ok () -> () | Error _ -> assert false);
        let t2 = token_for inbox "judy@x" in
        Alcotest.(check bool) "fresh token" false (t1 = t2);
        (* the stale token no longer works *)
        Alcotest.(check (result unit err)) "old token dead" (Error Pkg.Bad_token)
          (Pkg.confirm pkg ~now:0 ~email:"judy@x" ~token:t1);
        (match Pkg.confirm pkg ~now:0 ~email:"judy@x" ~token:t2 with
         | Ok () -> ()
         | Error e -> Alcotest.failf "confirm: %s" (Pkg.error_to_string e)));
  ]

let suite = unit_tests

(* second batch: error formatting and account introspection *)
let more_tests =
  [
    Alcotest.test_case "error messages are distinct and readable" `Quick (fun () ->
        let msgs =
          List.map Pkg.error_to_string
            [ Pkg.Unknown_account; Pkg.Not_confirmed; Pkg.Already_registered; Pkg.Bad_token;
              Pkg.Bad_signature; Pkg.Locked_out 60; Pkg.Wrong_round; Pkg.Not_revealed ]
        in
        Alcotest.(check int) "all distinct" (List.length msgs)
          (List.length (List.sort_uniq compare msgs));
        List.iter (fun m -> Alcotest.(check bool) m true (String.length m > 3)) msgs);
    Alcotest.test_case "registered_key and is_registered track state" `Quick (fun () ->
        let pkg, inbox = make_pkg () in
        Alcotest.(check bool) "unknown" false (Pkg.is_registered pkg ~email:"x@y");
        Alcotest.(check bool) "no key" true (Pkg.registered_key pkg ~email:"x@y" = None);
        let _, pk = user_keypair "intro" in
        register_ok pkg inbox ~now:0 ~email:"x@y" ~pk;
        Alcotest.(check bool) "registered" true (Pkg.is_registered pkg ~email:"x@y"));
    Alcotest.test_case "master_public hidden until reveal" `Quick (fun () ->
        let pkg, _ = make_pkg () in
        let _ = Pkg.begin_round pkg ~round:5 in
        Alcotest.(check bool) "hidden" true (Pkg.master_public pkg ~round:5 = None);
        (match Pkg.reveal_round pkg ~round:5 with Ok _ -> () | Error _ -> assert false);
        Alcotest.(check bool) "visible" true (Pkg.master_public pkg ~round:5 <> None);
        Alcotest.(check bool) "other round hidden" true (Pkg.master_public pkg ~round:6 = None));
  ]

let suite = suite @ more_tests

(* DKIM single-email registration (§4.6 footnote 4) *)
let dkim_tests =
  [
    Alcotest.test_case "dkim registration activates immediately" `Quick (fun () ->
        let pkg, _ = make_pkg () in
        let provider_sk, provider_pk = user_keypair "provider-gmail" in
        Pkg.trust_provider pkg ~domain:"gmail.com" ~key:provider_pk;
        let _, pk = user_keypair "dkim-user" in
        let msg = Pkg.dkim_message ~email:"alice@gmail.com" ~pk_bytes:(Bls.public_bytes (p ()) pk) in
        let signature = Bls.sign (p ()) provider_sk msg in
        (match Pkg.register_dkim pkg ~now:0 ~email:"alice@gmail.com" ~pk ~signature with
         | Ok () -> ()
         | Error e -> Alcotest.failf "register_dkim: %s" (Pkg.error_to_string e));
        Alcotest.(check bool) "active without confirm" true
          (Pkg.is_registered pkg ~email:"alice@gmail.com"));
    Alcotest.test_case "dkim from an untrusted domain is rejected" `Quick (fun () ->
        let pkg, _ = make_pkg () in
        let provider_sk, _ = user_keypair "provider-evil" in
        let _, pk = user_keypair "dkim-user2" in
        let msg = Pkg.dkim_message ~email:"bob@evil.com" ~pk_bytes:(Bls.public_bytes (p ()) pk) in
        let signature = Bls.sign (p ()) provider_sk msg in
        (match Pkg.register_dkim pkg ~now:0 ~email:"bob@evil.com" ~pk ~signature with
         | Error Pkg.Unknown_provider -> ()
         | _ -> Alcotest.fail "untrusted provider accepted");
        (* malformed addresses have no domain *)
        (match Pkg.register_dkim pkg ~now:0 ~email:"nodomain" ~pk ~signature with
         | Error Pkg.Unknown_provider -> ()
         | _ -> Alcotest.fail "domainless accepted"));
    Alcotest.test_case "dkim with a forged provider signature is rejected" `Quick (fun () ->
        let pkg, _ = make_pkg () in
        let _, provider_pk = user_keypair "provider-real" in
        Pkg.trust_provider pkg ~domain:"mail.org" ~key:provider_pk;
        let forger_sk, _ = user_keypair "forger" in
        let _, pk = user_keypair "dkim-user3" in
        let msg = Pkg.dkim_message ~email:"carol@mail.org" ~pk_bytes:(Bls.public_bytes (p ()) pk) in
        let signature = Bls.sign (p ()) forger_sk msg in
        (match Pkg.register_dkim pkg ~now:0 ~email:"carol@mail.org" ~pk ~signature with
         | Error Pkg.Bad_signature -> ()
         | _ -> Alcotest.fail "forged DKIM accepted"));
    Alcotest.test_case "dkim respects the lockout rules" `Quick (fun () ->
        (* even a valid DKIM registration cannot displace a fresh account:
           the provider (possibly compromised, §4.6) must not override the
           key binding *)
        let pkg, inbox = make_pkg () in
        let provider_sk, provider_pk = user_keypair "provider-x" in
        Pkg.trust_provider pkg ~domain:"x.io" ~key:provider_pk;
        let _, pk1 = user_keypair "orig" in
        register_ok pkg inbox ~now:0 ~email:"dana@x.io" ~pk:pk1;
        let _, pk2 = user_keypair "takeover" in
        let msg = Pkg.dkim_message ~email:"dana@x.io" ~pk_bytes:(Bls.public_bytes (p ()) pk2) in
        let signature = Bls.sign (p ()) provider_sk msg in
        (match Pkg.register_dkim pkg ~now:day ~email:"dana@x.io" ~pk:pk2 ~signature with
         | Error Pkg.Already_registered -> ()
         | _ -> Alcotest.fail "DKIM displaced a live account");
        (* after 31 idle days the same message succeeds, per the §4.6 policy *)
        (match Pkg.register_dkim pkg ~now:(31 * day) ~email:"dana@x.io" ~pk:pk2 ~signature with
         | Ok () -> ()
         | Error e -> Alcotest.failf "stale takeover: %s" (Pkg.error_to_string e)));
    Alcotest.test_case "dkim-registered accounts extract keys normally" `Quick (fun () ->
        let pkg, _ = make_pkg () in
        let provider_sk, provider_pk = user_keypair "provider-y" in
        Pkg.trust_provider pkg ~domain:"y.io" ~key:provider_pk;
        let sk, pk = user_keypair "dkim-extract" in
        let msg = Pkg.dkim_message ~email:"erin@y.io" ~pk_bytes:(Bls.public_bytes (p ()) pk) in
        (match Pkg.register_dkim pkg ~now:0 ~email:"erin@y.io" ~pk
                 ~signature:(Bls.sign (p ()) provider_sk msg) with
         | Ok () -> ()
         | Error e -> Alcotest.failf "register: %s" (Pkg.error_to_string e));
        let _ = Pkg.begin_round pkg ~round:1 in
        (match Pkg.reveal_round pkg ~round:1 with Ok _ -> () | Error _ -> assert false);
        let signature = Bls.sign (p ()) sk (Pkg.extraction_request_message ~email:"erin@y.io" ~round:1) in
        match Pkg.extract pkg ~now:0 ~round:1 ~email:"erin@y.io" ~signature with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "extract: %s" (Pkg.error_to_string e));
  ]

let suite = suite @ dkim_tests
