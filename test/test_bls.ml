(* BLS signatures and same-message multisignatures. *)

module B = Alpenhorn_bigint.Bigint
module Curve = Alpenhorn_pairing.Curve
module Params = Alpenhorn_pairing.Params
module Bls = Alpenhorn_bls.Bls
module Drbg = Alpenhorn_crypto.Drbg

let params = lazy (Params.test ())
let p () = Lazy.force params
let rng () = Drbg.create ~seed:"bls-tests"

let unit_tests =
  [
    Alcotest.test_case "sign/verify" `Quick (fun () ->
        let pr = p () and rng = rng () in
        let sk, pk = Bls.keygen pr rng in
        let s = Bls.sign pr sk "the message" in
        Alcotest.(check bool) "valid" true (Bls.verify pr pk "the message" s);
        Alcotest.(check bool) "wrong message" false (Bls.verify pr pk "another message" s));
    Alcotest.test_case "wrong key rejects" `Quick (fun () ->
        let pr = p () and rng = rng () in
        let sk, _ = Bls.keygen pr rng in
        let _, pk2 = Bls.keygen pr rng in
        let s = Bls.sign pr sk "msg" in
        Alcotest.(check bool) "other key" false (Bls.verify pr pk2 "msg" s));
    Alcotest.test_case "deterministic signatures" `Quick (fun () ->
        let pr = p () and rng = rng () in
        let sk, _ = Bls.keygen pr rng in
        Alcotest.(check bool) "same" true
          (Curve.equal (Bls.sign pr sk "m") (Bls.sign pr sk "m")));
    Alcotest.test_case "infinity is never valid" `Quick (fun () ->
        let pr = p () and rng = rng () in
        let _, pk = Bls.keygen pr rng in
        Alcotest.(check bool) "inf sig" false (Bls.verify pr pk "m" Curve.Inf);
        Alcotest.(check bool) "inf key" false (Bls.verify pr Curve.Inf "m" (Bls.sign pr B.one "m")));
    Alcotest.test_case "multisignature verifies with all signers" `Quick (fun () ->
        let pr = p () and rng = rng () in
        let signers = List.init 5 (fun _ -> Bls.keygen pr rng) in
        let msg = "attest: alice@example.org round 7" in
        let agg = Bls.aggregate pr (List.map (fun (sk, _) -> Bls.sign pr sk msg) signers) in
        let pks = List.map snd signers in
        Alcotest.(check bool) "multi ok" true (Bls.verify_multi pr pks msg agg));
    Alcotest.test_case "multisignature missing one signer fails" `Quick (fun () ->
        let pr = p () and rng = rng () in
        let signers = List.init 3 (fun _ -> Bls.keygen pr rng) in
        let msg = "binding" in
        let sigs = List.map (fun (sk, _) -> Bls.sign pr sk msg) signers in
        let partial = Bls.aggregate pr (List.tl sigs) in
        Alcotest.(check bool) "partial aggregate" false
          (Bls.verify_multi pr (List.map snd signers) msg partial));
    Alcotest.test_case "multisignature over different messages fails" `Quick (fun () ->
        let pr = p () and rng = rng () in
        let (sk1, pk1) = Bls.keygen pr rng and (sk2, pk2) = Bls.keygen pr rng in
        let agg = Bls.aggregate pr [ Bls.sign pr sk1 "m1"; Bls.sign pr sk2 "m2" ] in
        Alcotest.(check bool) "mixed messages" false (Bls.verify_multi pr [ pk1; pk2 ] "m1" agg));
    Alcotest.test_case "serialization roundtrips" `Quick (fun () ->
        let pr = p () and rng = rng () in
        let sk, pk = Bls.keygen pr rng in
        let s = Bls.sign pr sk "ser" in
        Alcotest.(check bool) "pk" true
          (match Bls.public_of_bytes pr (Bls.public_bytes pr pk) with
           | Some p2 -> Curve.equal p2 pk
           | None -> false);
        Alcotest.(check bool) "sig" true
          (match Bls.signature_of_bytes pr (Bls.signature_bytes pr s) with
           | Some s2 -> Curve.equal s2 s
           | None -> false));
  ]

(* batch verification: the product-of-pairings fast path must agree with
   one-by-one verification, and a single forgery anywhere must sink the
   whole batch (small-exponent soundness). *)
let batch_of pr n ~seed =
  Array.init n (fun i ->
      let sk, pk = Bls.keygen pr (Drbg.create ~seed:(Printf.sprintf "%s-%d" seed i)) in
      let m = Printf.sprintf "batch message %d" i in
      (pk, m, Bls.sign pr sk m))

let batch_tests =
  [
    Alcotest.test_case "verify_batch agrees with verify on valid batches" `Quick (fun () ->
        let pr = p () in
        List.iter
          (fun n ->
            let items = batch_of pr n ~seed:"vb-ok" in
            Alcotest.(check bool)
              (Printf.sprintf "all-valid batch of %d" n)
              true (Bls.verify_batch pr items))
          [ 0; 1; 2; 5; 16 ]);
    Alcotest.test_case "singleton batch equals plain verify" `Quick (fun () ->
        let pr = p () in
        let sk, pk = Bls.keygen pr (rng ()) in
        let good = Bls.sign pr sk "solo" in
        Alcotest.(check bool) "valid" true (Bls.verify_batch pr [| (pk, "solo", good) |]);
        Alcotest.(check bool) "invalid" false (Bls.verify_batch pr [| (pk, "other", good) |]));
    Alcotest.test_case "one forgery anywhere rejects the batch" `Quick (fun () ->
        let pr = p () in
        let n = 8 in
        for bad = 0 to n - 1 do
          let items = batch_of pr n ~seed:"vb-forge" in
          let pk, m, _ = items.(bad) in
          let forger, _ = Bls.keygen pr (Drbg.create ~seed:"vb-forger") in
          items.(bad) <- (pk, m, Bls.sign pr forger m);
          Alcotest.(check bool)
            (Printf.sprintf "forgery at %d" bad)
            false (Bls.verify_batch pr items)
        done);
    Alcotest.test_case "swapped signatures reject even though both verify alone" `Quick
      (fun () ->
        (* a_i mismatched to m_j: every individual signature is genuine, but
           under the wrong message slot — the batch must notice *)
        let pr = p () in
        let items = batch_of pr 4 ~seed:"vb-swap" in
        let pk0, m0, s0 = items.(0) and pk1, m1, s1 = items.(1) in
        items.(0) <- (pk0, m0, s1);
        items.(1) <- (pk1, m1, s0);
        Alcotest.(check bool) "swapped" false (Bls.verify_batch pr items));
    Alcotest.test_case "infinity key or signature rejects the batch" `Quick (fun () ->
        let pr = p () in
        let items = batch_of pr 3 ~seed:"vb-inf" in
        let with_inf_sig = Array.copy items in
        let pk, m, _ = with_inf_sig.(1) in
        with_inf_sig.(1) <- (pk, m, Curve.Inf);
        Alcotest.(check bool) "inf sig" false (Bls.verify_batch pr with_inf_sig);
        let with_inf_pk = Array.copy items in
        let _, m, s = with_inf_pk.(2) in
        with_inf_pk.(2) <- (Curve.Inf, m, s);
        Alcotest.(check bool) "inf key" false (Bls.verify_batch pr with_inf_pk));
  ]

let prop name ?(count = 15) arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let property_tests =
  [
    prop "any signed message verifies" QCheck.small_string (fun msg ->
        let pr = p () in
        let rng = Drbg.create ~seed:("p1" ^ msg) in
        let sk, pk = Bls.keygen pr rng in
        Bls.verify pr pk msg (Bls.sign pr sk msg));
    prop "signature on m never verifies m'" QCheck.(pair small_string small_string)
      (fun (m1, m2) ->
        QCheck.assume (m1 <> m2);
        let pr = p () in
        let rng = Drbg.create ~seed:("p2" ^ m1 ^ m2) in
        let sk, pk = Bls.keygen pr rng in
        not (Bls.verify pr pk m2 (Bls.sign pr sk m1)));
    prop "aggregation order is irrelevant" QCheck.(int_range 0 1000) (fun seed ->
        let pr = p () in
        let rng = Drbg.create ~seed:(string_of_int seed) in
        let signers = List.init 4 (fun _ -> Bls.keygen pr rng) in
        let sigs = List.map (fun (sk, _) -> Bls.sign pr sk "order") signers in
        Curve.equal (Bls.aggregate pr sigs) (Bls.aggregate pr (List.rev sigs)));
  ]

let suite = unit_tests @ batch_tests @ property_tests
