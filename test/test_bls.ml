(* BLS signatures and same-message multisignatures. *)

module B = Alpenhorn_bigint.Bigint
module Curve = Alpenhorn_pairing.Curve
module Params = Alpenhorn_pairing.Params
module Bls = Alpenhorn_bls.Bls
module Drbg = Alpenhorn_crypto.Drbg

let params = lazy (Params.test ())
let p () = Lazy.force params
let rng () = Drbg.create ~seed:"bls-tests"

let unit_tests =
  [
    Alcotest.test_case "sign/verify" `Quick (fun () ->
        let pr = p () and rng = rng () in
        let sk, pk = Bls.keygen pr rng in
        let s = Bls.sign pr sk "the message" in
        Alcotest.(check bool) "valid" true (Bls.verify pr pk "the message" s);
        Alcotest.(check bool) "wrong message" false (Bls.verify pr pk "another message" s));
    Alcotest.test_case "wrong key rejects" `Quick (fun () ->
        let pr = p () and rng = rng () in
        let sk, _ = Bls.keygen pr rng in
        let _, pk2 = Bls.keygen pr rng in
        let s = Bls.sign pr sk "msg" in
        Alcotest.(check bool) "other key" false (Bls.verify pr pk2 "msg" s));
    Alcotest.test_case "deterministic signatures" `Quick (fun () ->
        let pr = p () and rng = rng () in
        let sk, _ = Bls.keygen pr rng in
        Alcotest.(check bool) "same" true
          (Curve.equal (Bls.sign pr sk "m") (Bls.sign pr sk "m")));
    Alcotest.test_case "infinity is never valid" `Quick (fun () ->
        let pr = p () and rng = rng () in
        let _, pk = Bls.keygen pr rng in
        Alcotest.(check bool) "inf sig" false (Bls.verify pr pk "m" Curve.Inf);
        Alcotest.(check bool) "inf key" false (Bls.verify pr Curve.Inf "m" (Bls.sign pr B.one "m")));
    Alcotest.test_case "multisignature verifies with all signers" `Quick (fun () ->
        let pr = p () and rng = rng () in
        let signers = List.init 5 (fun _ -> Bls.keygen pr rng) in
        let msg = "attest: alice@example.org round 7" in
        let agg = Bls.aggregate pr (List.map (fun (sk, _) -> Bls.sign pr sk msg) signers) in
        let pks = List.map snd signers in
        Alcotest.(check bool) "multi ok" true (Bls.verify_multi pr pks msg agg));
    Alcotest.test_case "multisignature missing one signer fails" `Quick (fun () ->
        let pr = p () and rng = rng () in
        let signers = List.init 3 (fun _ -> Bls.keygen pr rng) in
        let msg = "binding" in
        let sigs = List.map (fun (sk, _) -> Bls.sign pr sk msg) signers in
        let partial = Bls.aggregate pr (List.tl sigs) in
        Alcotest.(check bool) "partial aggregate" false
          (Bls.verify_multi pr (List.map snd signers) msg partial));
    Alcotest.test_case "multisignature over different messages fails" `Quick (fun () ->
        let pr = p () and rng = rng () in
        let (sk1, pk1) = Bls.keygen pr rng and (sk2, pk2) = Bls.keygen pr rng in
        let agg = Bls.aggregate pr [ Bls.sign pr sk1 "m1"; Bls.sign pr sk2 "m2" ] in
        Alcotest.(check bool) "mixed messages" false (Bls.verify_multi pr [ pk1; pk2 ] "m1" agg));
    Alcotest.test_case "serialization roundtrips" `Quick (fun () ->
        let pr = p () and rng = rng () in
        let sk, pk = Bls.keygen pr rng in
        let s = Bls.sign pr sk "ser" in
        Alcotest.(check bool) "pk" true
          (match Bls.public_of_bytes pr (Bls.public_bytes pr pk) with
           | Some p2 -> Curve.equal p2 pk
           | None -> false);
        Alcotest.(check bool) "sig" true
          (match Bls.signature_of_bytes pr (Bls.signature_bytes pr s) with
           | Some s2 -> Curve.equal s2 s
           | None -> false));
  ]

let prop name ?(count = 15) arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let property_tests =
  [
    prop "any signed message verifies" QCheck.small_string (fun msg ->
        let pr = p () in
        let rng = Drbg.create ~seed:("p1" ^ msg) in
        let sk, pk = Bls.keygen pr rng in
        Bls.verify pr pk msg (Bls.sign pr sk msg));
    prop "signature on m never verifies m'" QCheck.(pair small_string small_string)
      (fun (m1, m2) ->
        QCheck.assume (m1 <> m2);
        let pr = p () in
        let rng = Drbg.create ~seed:("p2" ^ m1 ^ m2) in
        let sk, pk = Bls.keygen pr rng in
        not (Bls.verify pr pk m2 (Bls.sign pr sk m1)));
    prop "aggregation order is irrelevant" QCheck.(int_range 0 1000) (fun seed ->
        let pr = p () in
        let rng = Drbg.create ~seed:(string_of_int seed) in
        let signers = List.init 4 (fun _ -> Bls.keygen pr rng) in
        let sigs = List.map (fun (sk, _) -> Bls.sign pr sk "order") signers in
        Curve.equal (Bls.aggregate pr sigs) (Bls.aggregate pr (List.rev sigs)));
  ]

let suite = unit_tests @ property_tests
